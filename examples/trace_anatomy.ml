(* Trace anatomy: what restructuring does to per-disk idle periods.

   Generates the AST workload's trace in original and restructured order
   (two modes of the same pipeline context — the dependence graph is
   built once), saves/reloads the restructured one through the text
   format, and prints a per-disk idle-gap histogram for both — the
   quantity every power policy feeds on ("most prior techniques become
   more effective with long disk idle periods", Section 1).

   Run with: dune exec examples/trace_anatomy.exe *)

module App = Dp_workloads.App
module Request = Dp_trace.Request
module Runner = Dp_harness.Runner
module Pipeline = Dp_pipeline.Pipeline

let print_histogram label reqs =
  let h = Dp_trace.Idle_stats.of_requests reqs in
  Format.printf "--- %s (%d gaps, %.0f s idle; %.0f s in TPM-exploitable gaps) ---@.%a@."
    label
    (Dp_trace.Idle_stats.total_gaps h)
    (Dp_trace.Idle_stats.total_mass_s h)
    (Dp_trace.Idle_stats.exploitable_mass_s h ~threshold_s:15.2)
    Dp_trace.Idle_stats.pp h

let () =
  let app = Option.get (Dp_workloads.Workloads.by_name "AST") in
  let ctx = Runner.context app in

  let base_trace = Pipeline.trace ctx ~procs:1 Pipeline.Original in
  let reuse_trace = Pipeline.trace ctx ~procs:1 Pipeline.Reuse_single in

  (* Round-trip the restructured trace through the text format. *)
  let path = Filename.temp_file "dpower_ast" ".trace" in
  Request.save path reuse_trace;
  let reloaded = Request.load path in
  Sys.remove path;
  assert (List.length reloaded = List.length reuse_trace);
  Format.printf "trace of %d requests round-tripped through %s format@."
    (List.length reloaded) "the text";

  Format.printf
    "@.per-disk idle gaps (the restructured order concentrates idleness into long gaps):@.";
  print_histogram "original" base_trace;
  print_histogram "restructured" reloaded;
  Format.printf
    "@.scheduler: %d rounds (the stencil's inter-step dependences bound each disk visit)@."
    (Option.value ~default:0 (Pipeline.rounds ctx ~procs:1 Pipeline.Reuse_single))
