(* Quickstart: the whole pipeline in ~60 lines.

   Build a small out-of-core program, restructure it for disk reuse
   (Section 5 of the paper), and compare disk energy under TPM and DRPM
   with and without the restructuring — all through the staged
   {!Dp_pipeline.Pipeline}, the same stages `dpcc` and the harness use.

   Run with: dune exec examples/quickstart.exe *)

module Ir = Dp_ir.Ir
module A = Dp_affine.Affine
module Striping = Dp_layout.Striping
module Reuse = Dp_restructure.Reuse_scheduler
module Engine = Dp_disksim.Engine
module Policy = Dp_disksim.Policy
module Pipeline = Dp_pipeline.Pipeline

let () =
  (* 1. A program: two sweeps over a disk-resident matrix of 64 KB pages
     — one row-order, one column-order (the classic conflicting pair). *)
  let page = 64 * 1024 in
  let rows, cols = (64, 48) in
  let i = A.var "i" and j = A.var "j" and c = A.const in
  let program =
    Ir.program
      [ Ir.array_decl ~elem_size:page "m" [ rows; cols ] ]
      [
        Ir.nest 0
          [ Ir.loop "i" (c 0) (c (rows - 1)); Ir.loop "j" (c 0) (c (cols - 1)) ]
          [ Ir.stmt 0 ~work_cycles:2_000_000 [ Ir.read "m" [ i; j ] ] ];
        Ir.nest 1
          [ Ir.loop "j" (c 0) (c (cols - 1)); Ir.loop "i" (c 0) (c (rows - 1)) ]
          [ Ir.stmt 1 ~work_cycles:2_000_000 [ Ir.read "m" [ i; j ] ] ];
      ]
  in

  (* 2. A pipeline context over a disk layout: one row per stripe,
     round-robin over 8 I/O nodes (the paper's Table-1 system). *)
  let striping = Striping.make ~unit_bytes:(cols * page) ~factor:8 ~start_disk:0 in
  let ctx = Pipeline.create ~origin:"quickstart" ~default:striping program in

  (* 3. Restructure: cluster iterations disk by disk (Fig. 3).  The
     scheduler itself runs on the pipeline's shared dependence graph. *)
  let schedule = Reuse.schedule (Pipeline.layout ctx) program (Pipeline.graph ctx) in
  Format.printf "restructured in %d round(s); visits:" schedule.Reuse.rounds;
  List.iter (fun (d, n) -> Format.printf " d%d:%d" d n) schedule.Reuse.visits;
  Format.printf "@.";

  (* 4+5. Traces for the original and restructured orders are memoized
     stages; simulate each policy on its mode and report. *)
  let base = Pipeline.simulate ctx ~procs:1 ~policy:Policy.No_pm Pipeline.Original in
  let report name policy mode =
    let r = Pipeline.simulate ctx ~procs:1 ~policy mode in
    Format.printf "%-22s energy %8.1f J  (%.3f of base)  io %.1f s@." name
      r.Engine.energy_j
      (r.Engine.energy_j /. base.Engine.energy_j)
      (r.Engine.io_time_ms /. 1000.)
  in
  Format.printf "base (no PM)           energy %8.1f J  io %.1f s@." base.Engine.energy_j
    (base.Engine.io_time_ms /. 1000.);
  report "TPM on original" Policy.default_tpm Pipeline.Original;
  report "DRPM on original" Policy.default_drpm Pipeline.Original;
  report "TPM on restructured" (Policy.tpm ~proactive:true ()) Pipeline.Reuse_single;
  report "DRPM on restructured" Policy.default_drpm Pipeline.Reuse_single
