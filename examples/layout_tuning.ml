(* Layout tuning: the paper's future work, running.

   "We plan to extend this work by investigating a framework that
   combines application code restructuring with disk layout
   reorganization under a unified optimizer." (Section 8)

   This example runs that optimizer on the AST workload: it searches
   per-array start disks and stripe heights to minimize a sampled
   co-location + balance objective, then shows what the better layout
   buys the restructured code under DRPM.  Each candidate layout is a
   {!Dp_pipeline.Pipeline.derive}d context: the dependence graph is
   built once and shared; only the layout-dependent stages re-run.

   Run with: dune exec examples/layout_tuning.exe *)

module App = Dp_workloads.App
module Layout = Dp_layout.Layout
module Striping = Dp_layout.Striping
module Opt = Dp_restructure.Layout_opt
module Engine = Dp_disksim.Engine
module Policy = Dp_disksim.Policy
module Pipeline = Dp_pipeline.Pipeline

let () =
  let app = Option.get (Dp_workloads.Workloads.by_name "AST") in
  let prog = app.App.program in
  let ctx = Pipeline.of_app app in
  let g = Pipeline.graph ctx in

  Format.printf "optimizing the layout of %s (%d arrays, 8 I/O nodes)...@." app.App.name
    (List.length prog.Dp_ir.Ir.arrays);
  let res = Opt.optimize ~factor:8 ~initial:app.App.overrides prog g in
  Format.printf "objective: %.3f -> %.3f@." res.Opt.baseline_cost res.Opt.cost;
  List.iter2
    (fun (name, (before : Striping.t)) (_, (after : Striping.t)) ->
      Format.printf "  %-4s start %d -> %d, stripe %3d KB -> %3d KB@." name
        before.Striping.start_disk after.Striping.start_disk
        (before.Striping.unit_bytes / 1024)
        (after.Striping.unit_bytes / 1024))
    app.App.overrides res.Opt.stripings;

  (* Energy consequence: restructure + DRPM under both layouts,
     normalized against the original layout's unmanaged base. *)
  let energy overrides =
    let layout = Layout.make ~default:app.App.striping ~overrides prog in
    let dctx = Pipeline.derive ~layout ctx in
    let base = Pipeline.simulate dctx ~procs:1 ~policy:Policy.No_pm Pipeline.Original in
    let r = Pipeline.simulate dctx ~procs:1 ~policy:Policy.default_drpm Pipeline.Reuse_single in
    r.Engine.energy_j /. base.Engine.energy_j
  in
  Format.printf "@.T-DRPM-s normalized energy:@.";
  Format.printf "  original (staggered) layout: %.3f@." (energy app.App.overrides);
  Format.printf "  optimized layout:            %.3f@." (energy res.Opt.stripings);
  Format.printf
    "@.the optimizer co-locates the ping-pong arrays so a stencil iteration's reads and \
     write land on one node, deepening the other nodes' idle periods@."
