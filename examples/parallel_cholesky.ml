(* Multiprocessor restructuring demo on the Cholesky workload.

   Compares, at 4 processors, conventional parallelization (Section 6.1)
   against the disk-layout-aware scheme (Section 6.2): how well each
   localizes disk accesses to their owning processor, and what that does
   to disk energy under DRPM.

   Run with: dune exec examples/parallel_cholesky.exe *)

module App = Dp_workloads.App
module Ir = Dp_ir.Ir
module Layout = Dp_layout.Layout
module Concrete = Dp_dependence.Concrete
module Parallelize = Dp_restructure.Parallelize
module Version = Dp_harness.Version
module Runner = Dp_harness.Runner
module Pipeline = Dp_pipeline.Pipeline

let procs = 4

let localization (ctx : Runner.ctx) (a : Parallelize.assignment) =
  let layout = Pipeline.layout ctx and prog = Pipeline.program ctx in
  let disks = layout.Layout.disk_count in
  let hits = ref 0 and total = ref 0 in
  Array.iter
    (fun (inst : Concrete.instance) ->
      let nest =
        List.find (fun (n : Ir.nest) -> n.Ir.nest_id = inst.Concrete.nest_id) prog.Ir.nests
      in
      List.iter
        (fun ((r : Ir.array_ref), coords) ->
          incr total;
          let d = Dp_layout.Layout.disk_of_element layout r.Ir.array coords in
          if
            Parallelize.proc_of_disk ~disks ~procs d
            = a.Parallelize.owner.(inst.Concrete.seq)
          then incr hits)
        (Ir.element_accesses nest inst.Concrete.iter))
    (Pipeline.graph ctx).Concrete.instances;
  float_of_int !hits /. float_of_int !total

let () =
  let app = Option.get (Dp_workloads.Workloads.by_name "Cholesky") in
  let ctx = Runner.context app in
  Format.printf "%s on %d processors, %d I/O nodes@." app.App.name procs
    (Pipeline.disks ctx);

  let conv = Parallelize.conventional app.App.program (Pipeline.graph ctx) ~procs in
  let aware =
    Parallelize.layout_aware (Pipeline.layout ctx) app.App.program (Pipeline.graph ctx)
      ~procs
  in
  Format.printf "access localization: conventional %.1f%%, layout-aware %.1f%%@."
    (100. *. localization ctx conv)
    (100. *. localization ctx aware);
  Format.printf "instances per processor (layout-aware):";
  Array.iter (Format.printf " %d") (Parallelize.proc_counts aware);
  Format.printf "@.";

  (* The energy consequence: the full version matrix at 4 processors. *)
  let base = Runner.run ctx ~procs Version.Base in
  Format.printf "Base: %.1f J, io %.1f s@." base.Runner.result.Dp_disksim.Engine.energy_j
    (base.Runner.result.Dp_disksim.Engine.io_time_ms /. 1000.);
  List.iter
    (fun v ->
      let r = Runner.run ctx ~procs v in
      Format.printf "%-10s normalized energy %.3f, perf %+.1f%%@." (Version.name v)
        (Runner.normalized_energy ~base r)
        (100. *. Runner.perf_degradation ~base r))
    [ Version.Drpm; Version.T_drpm_s; Version.T_drpm_m ]
