(* Benchmark and experiment harness.

   Regenerates every table and figure of the paper's evaluation
   (Section 7) — Table 1, Table 2, Figures 9(a), 9(b), 10(a), 10(b) —
   plus the ablations called out in DESIGN.md and a set of Bechamel
   microbenchmarks of the compiler passes.

   Usage: dune exec bench/main.exe [-- SECTION...]
   Sections: table1 table2 fig9a fig9b fig10a fig10b ablate-cluster
             ablate-tpm ablate-drpm ablate-stripes layout-opt
             proactive-drpm fusion pipeline serve shard trace-codec
             micro all
   (default: all). *)

module App = Dp_workloads.App
module Workloads = Dp_workloads.Workloads
module Ir = Dp_ir.Ir
module Striping = Dp_layout.Striping
module Layout = Dp_layout.Layout
module Concrete = Dp_dependence.Concrete
module Cluster = Dp_restructure.Cluster
module Reuse = Dp_restructure.Reuse_scheduler
module Generate = Dp_trace.Generate
module Request = Dp_trace.Request
module Engine = Dp_disksim.Engine
module Policy = Dp_disksim.Policy
module Version = Dp_harness.Version
module Runner = Dp_harness.Runner
module Experiments = Dp_harness.Experiments
module Tabulate = Dp_harness.Tabulate
module Pipeline = Dp_pipeline.Pipeline

let ppf = Format.std_formatter
let section title = Format.printf "@.==================== %s ====================@." title

(* Matrices are shared across sections; compute lazily once. *)
let matrix_1p =
  lazy
    (Experiments.build_matrix ~procs:1
       ~versions:
         [ Version.Base; Version.Tpm; Version.Drpm; Version.T_tpm_s; Version.T_drpm_s ]
       ())

let matrix_4p =
  lazy (Experiments.build_matrix ~procs:4 ~versions:Version.multi_cpu ())

let table1 () =
  section "Table 1";
  Experiments.table1 ppf;
  Format.printf "@."

let table2 () =
  section "Table 2";
  Experiments.table2 ~matrix:(Lazy.force matrix_1p) ppf;
  Format.printf "@."

let fig9a () =
  section "Figure 9(a) — energy, 1 CPU";
  Experiments.fig_energy (Lazy.force matrix_1p) ppf;
  Format.printf
    "paper reference (average savings): TPM ~0%%, DRPM 9.95%%, T-TPM-s 8.30%%, T-DRPM-s \
     18.30%%@."

let fig9b () =
  section "Figure 9(b) — energy, 4 CPUs";
  Experiments.fig_energy (Lazy.force matrix_4p) ppf;
  Format.printf
    "paper reference (average savings): T-TPM-s 3.84%%, T-DRPM-s 10.66%%, T-TPM-m \
     11.04%%, T-DRPM-m 18.04%%@."

let fig10a () =
  section "Figure 10(a) — performance degradation, 1 CPU";
  Experiments.fig_perf (Lazy.force matrix_1p) ppf;
  Format.printf
    "paper reference (averages): TPM ~0%%, DRPM 11.9%%, T-TPM-s 2.1%%, T-DRPM-s 4.7%%@."

let fig10b () =
  section "Figure 10(b) — performance degradation, 4 CPUs";
  Experiments.fig_perf (Lazy.force matrix_4p) ppf;
  Format.printf
    "paper reference (averages): DRPM 16.8%%, T-TPM-s 4.7%%, T-DRPM-s 8.7%%, T-TPM-m \
     2.8%%, T-DRPM-m 5.0%%@."

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md section 5).  Each varies one design choice on a
   subset of applications, reporting normalized T-DRPM-s / T-TPM-s
   energy. *)

let ablation_apps = [ "AST"; "RSense 2.0" ]

let contexts =
  lazy
    (List.map (fun name -> Runner.context (Option.get (Workloads.by_name name))) ablation_apps)

(* The T-*-s trace of a context (a memoized pipeline stage), plus the
   scheduler round count. *)
let restructured_trace ?policy (ctx : Runner.ctx) =
  ( Pipeline.trace ?cluster:policy ctx ~procs:1 Pipeline.Reuse_single,
    Option.value ~default:0 (Pipeline.rounds ?cluster:policy ctx ~procs:1 Pipeline.Reuse_single)
  )

let base_trace (ctx : Runner.ctx) = Pipeline.trace ctx ~procs:1 Pipeline.Original

let normalized (ctx : Runner.ctx) policy trace =
  let disks = Pipeline.disks ctx in
  let base = Engine.simulate ~disks Policy.No_pm (base_trace ctx) in
  let r = Engine.simulate ~disks policy trace in
  r.Engine.energy_j /. base.Engine.energy_j

let ablate_cluster () =
  section "Ablation — clustering key for multi-disk iterations";
  let rows =
    List.map2
      (fun name ctx ->
        name
        :: List.map
             (fun policy ->
               let trace, _ = restructured_trace ~policy ctx in
               Tabulate.fmt_norm (normalized ctx Policy.default_drpm trace))
             Cluster.all_policies)
      ablation_apps (Lazy.force contexts)
  in
  Tabulate.render ppf
    ~header:("App (T-DRPM-s energy)" :: List.map Cluster.policy_name Cluster.all_policies)
    ~rows;
  Format.printf "@."

let ablate_tpm () =
  section "Ablation — TPM idleness threshold (x0.5 / x1 / x2 of break-even)";
  let breakeven = Dp_disksim.Disk_model.ultrastar_36z15.Dp_disksim.Disk_model.tpm_breakeven_s in
  let factors = [ 0.5; 1.0; 2.0 ] in
  let rows =
    List.map2
      (fun name ctx ->
        let trace, _ = restructured_trace ctx in
        name
        :: List.map
             (fun f ->
               Tabulate.fmt_norm
                 (normalized ctx
                    (Policy.tpm ~idle_threshold_s:(f *. breakeven) ~proactive:true ())
                    trace))
             factors)
      ablation_apps (Lazy.force contexts)
  in
  Tabulate.render ppf
    ~header:("App (T-TPM-s energy)" :: List.map (Printf.sprintf "x%.1f") factors)
    ~rows;
  Format.printf "@."

let ablate_drpm () =
  section "Ablation — DRPM per-level downshift idleness";
  let thresholds = [ 500.0; 1_000.0; 2_000.0; 4_000.0 ] in
  let rows =
    List.map2
      (fun name ctx ->
        let trace, _ = restructured_trace ctx in
        name
        :: List.map
             (fun ms ->
               Tabulate.fmt_norm
                 (normalized ctx (Policy.drpm ~downshift_idle_ms:ms ()) trace))
             thresholds)
      ablation_apps (Lazy.force contexts)
  in
  Tabulate.render ppf
    ~header:
      ("App (T-DRPM-s energy)" :: List.map (fun ms -> Printf.sprintf "%.1fs" (ms /. 1000.)) thresholds)
    ~rows;
  Format.printf "@."

(* Rebuild an application's layout with a different stripe factor; the
   derived context shares the parent's dependence graph. *)
let ctx_with_factor (app : App.t) parent factor =
  let overrides =
    List.mapi
      (fun k (a : Ir.array_decl) ->
        let row_pages =
          match a.Ir.dims with [] -> 1 | _ :: rest -> List.fold_left ( * ) 1 rest
        in
        let prev = List.assoc a.Ir.name app.App.overrides in
        let rows = prev.Striping.unit_bytes / (row_pages * App.page_bytes) in
        ( a.Ir.name,
          Striping.make
            ~unit_bytes:(max 1 rows * row_pages * App.page_bytes)
            ~factor
            ~start_disk:(k * 2 mod factor) ))
      app.App.program.Ir.arrays
  in
  let layout = Layout.make ~default:app.App.striping ~overrides app.App.program in
  Pipeline.derive ~layout parent

let ablate_stripes () =
  section "Ablation — stripe factor (number of I/O nodes)";
  let factors = [ 4; 8; 16 ] in
  let rows =
    List.map
      (fun name ->
        let app = Option.get (Workloads.by_name name) in
        let parent = Pipeline.of_app app in
        name
        :: List.map
             (fun f ->
               let ctx = ctx_with_factor app parent f in
               let trace, _ = restructured_trace ctx in
               Tabulate.fmt_norm (normalized ctx Policy.default_drpm trace))
             factors)
      ablation_apps
  in
  Tabulate.render ppf
    ~header:("App (T-DRPM-s energy)" :: List.map (Printf.sprintf "%d disks") factors)
    ~rows;
  Format.printf "@."

let ablate_layout_opt () =
  section "Extension — unified layout optimizer (paper's future work)";
  let rows =
    List.map
      (fun name ->
        let app = Option.get (Workloads.by_name name) in
        let parent = Pipeline.of_app app in
        let res =
          Dp_restructure.Layout_opt.optimize ~factor:8 ~initial:app.App.overrides
            app.App.program (Pipeline.graph parent)
        in
        let energy overrides =
          let layout = Layout.make ~default:app.App.striping ~overrides app.App.program in
          let ctx = Pipeline.derive ~layout parent in
          let trace, _ = restructured_trace ctx in
          normalized ctx Policy.default_drpm trace
        in
        [
          name;
          Printf.sprintf "%.3f" res.Dp_restructure.Layout_opt.baseline_cost;
          Printf.sprintf "%.3f" res.Dp_restructure.Layout_opt.cost;
          Tabulate.fmt_norm (energy app.App.overrides);
          Tabulate.fmt_norm (energy res.Dp_restructure.Layout_opt.stripings);
        ])
      ablation_apps
  in
  Tabulate.render ppf
    ~header:[ "App"; "cost before"; "cost after"; "T-DRPM-s energy"; "with optimized layout" ]
    ~rows;
  Format.printf "@."

let ablate_proactive_drpm () =
  section "Extension — compiler-directed (proactive) DRPM speed setting";
  let rows =
    List.map2
      (fun name ctx ->
        let trace, _ = restructured_trace ctx in
        let cell policy =
          let disks = Pipeline.disks ctx in
          let base = Engine.simulate ~disks Policy.No_pm (base_trace ctx) in
          let r = Engine.simulate ~disks policy trace in
          Printf.sprintf "%s / %+.1f%%"
            (Tabulate.fmt_norm (r.Engine.energy_j /. base.Engine.energy_j))
            (100. *. (r.Engine.io_time_ms -. base.Engine.io_time_ms) /. base.Engine.io_time_ms)
        in
        [ name; cell Policy.default_drpm; cell (Policy.drpm ~proactive:true ()) ])
      ablation_apps (Lazy.force contexts)
  in
  Tabulate.render ppf
    ~header:[ "App (T-DRPM-s energy/perf)"; "reactive DRPM"; "proactive DRPM" ]
    ~rows;
  Format.printf "@."

let fusion_baseline () =
  section "Baseline — loop fusion vs disk-reuse restructuring";
  let rows =
    List.map2
      (fun name ctx ->
        let g = Pipeline.graph ctx and prog = Pipeline.program ctx in
        let layout = Pipeline.layout ctx in
        let table = Cluster.build_table layout prog g in
        let switch order = Reuse.disk_switches table order in
        let fused = Dp_restructure.Fusion.order prog g in
        let reuse, _ = ((Reuse.schedule layout prog g).Reuse.order, ()) in
        let energy order =
          let trace = Generate.trace layout prog g (Generate.single_stream g ~order) in
          Tabulate.fmt_norm (normalized ctx Policy.default_drpm trace)
        in
        [
          name;
          string_of_int (switch (Concrete.original_order g));
          string_of_int (switch fused);
          string_of_int (switch reuse);
          energy fused;
          energy reuse;
        ])
      ablation_apps (Lazy.force contexts)
  in
  Tabulate.render ppf
    ~header:
      [ "App"; "switches orig"; "fused"; "reuse"; "E fused+DRPM"; "E reuse+DRPM" ]
    ~rows;
  Format.printf
    "loop fusion cannot reproduce the disk clustering (the paper's Section 6.2 remark)@."

let caching_baseline () =
  section "Baseline — power-aware caching (PA-LRU) vs restructuring";
  let rows =
    List.map2
      (fun name ctx ->
        let base = base_trace ctx in
        let layout = Pipeline.layout ctx in
        let disks = layout.Layout.disk_count in
        let base_r = Engine.simulate ~disks Policy.No_pm base in
        let capacity = 2048 (* blocks: a 128 MB storage cache *) in
        (* Per-disk activity on the base trace, for PA-LRU's priorities. *)
        let activity = Array.make disks 0.0 in
        List.iter
          (fun (r : Dp_trace.Request.t) -> activity.(r.disk) <- activity.(r.disk) +. 1.0)
          base;
        let filtered_lru, st_lru =
          Dp_cache.Filter.apply ~cache:(fun () -> Dp_cache.Lru.create ~capacity ()) base
        in
        let filtered_pa, st_pa =
          Dp_cache.Filter.apply
            ~cache:(fun () ->
              Dp_cache.Filter.pa_lru ~capacity
                ~priority_disk:(fun addr -> Layout.disk_of_address layout addr)
                ~disk_activity:(fun d -> activity.(d))
                ())
            base
        in
        let reuse_trace, _ = restructured_trace ctx in
        let combined, _ =
          Dp_cache.Filter.apply
            ~cache:(fun () -> Dp_cache.Lru.create ~capacity ())
            reuse_trace
        in
        let e trace =
          Tabulate.fmt_norm
            ((Engine.simulate ~disks Policy.default_drpm trace).Engine.energy_j
            /. base_r.Engine.energy_j)
        in
        [
          name;
          Printf.sprintf "%.0f%%" (100. *. st_lru.Dp_cache.Filter.hit_rate);
          e filtered_lru;
          Printf.sprintf "%.0f%%" (100. *. st_pa.Dp_cache.Filter.hit_rate);
          e filtered_pa;
          e reuse_trace;
          e combined;
        ])
      ablation_apps (Lazy.force contexts)
  in
  Tabulate.render ppf
    ~header:
      [
        "App (DRPM energy)"; "LRU hits"; "LRU+DRPM"; "PA-LRU hits"; "PA-LRU+DRPM";
        "reuse+DRPM"; "reuse+LRU+DRPM";
      ]
    ~rows;
  Format.printf
    "restructuring composes with caching (the paper: its approach is complementary to \
     the prior research)@."

let transform_ablation () =
  section "Extension — row-outermost loop interchange before reuse scheduling";
  let rows =
    List.map
      (fun name ->
        let app = Option.get (Workloads.by_name name) in
        let ctx = Runner.context app in
        let trace, rounds = restructured_trace ctx in
        let prog', changed =
          Dp_restructure.Transform.normalize_rows_outermost (Pipeline.layout ctx)
            app.App.program
        in
        let ctx' =
          Pipeline.create ~origin:app.App.name ~default:app.App.striping
            ~overrides:app.App.overrides prog'
        in
        let trace', rounds' = restructured_trace ctx' in
        (* Both normalized against the ORIGINAL base. *)
        let disks = Pipeline.disks ctx in
        let base = Engine.simulate ~disks Policy.No_pm (base_trace ctx) in
        let e trace =
          Tabulate.fmt_norm
            ((Engine.simulate ~disks Policy.default_drpm trace).Engine.energy_j
            /. base.Engine.energy_j)
        in
        [
          name;
          string_of_int changed;
          Printf.sprintf "%d" rounds;
          e trace;
          Printf.sprintf "%d" rounds';
          e trace';
        ])
      [ "Visuo"; "SCF 3.0" ]
  in
  Tabulate.render ppf
    ~header:
      [
        "App"; "nests interchanged"; "rounds (reuse)"; "E reuse+DRPM";
        "rounds (ic+reuse)"; "E ic+reuse+DRPM";
      ]
    ~rows;
  Format.printf "@."

let prefetch_baseline () =
  section "Baseline — energy-aware prefetching (burst shaping) vs restructuring";
  let rows =
    List.map2
      (fun name ctx ->
        let base = base_trace ctx in
        let disks = Pipeline.disks ctx in
        let base_r = Engine.simulate ~disks Policy.No_pm base in
        let e trace =
          Tabulate.fmt_norm
            ((Engine.simulate ~disks Policy.default_drpm trace).Engine.energy_j
            /. base_r.Engine.energy_j)
        in
        let bursty d = Dp_cache.Prefetch.apply ~depth:d base in
        let reuse_trace, _ = restructured_trace ctx in
        [
          name;
          Printf.sprintf "%.2f" (Dp_cache.Prefetch.burstiness base);
          Printf.sprintf "%.2f" (Dp_cache.Prefetch.burstiness (bursty 32));
          e (bursty 8);
          e (bursty 32);
          e reuse_trace;
        ])
      ablation_apps (Lazy.force contexts)
  in
  Tabulate.render ppf
    ~header:
      [
        "App (DRPM energy)"; "burstiness base"; "burstiness d=32"; "prefetch d=8";
        "prefetch d=32"; "reuse";
      ]
    ~rows;
  Format.printf
    "bursts lengthen gaps on every disk a little; clustering lengthens one disk's gap a lot@."

let two_speed () =
  section "Ablation — two-speed disks (Carrera et al.) vs full multi-speed DRPM";
  let rows =
    List.map2
      (fun name ctx ->
        let trace, _ = restructured_trace ctx in
        [
          name;
          Tabulate.fmt_norm (normalized ctx (Policy.drpm ~min_rpm:9000 ()) trace);
          Tabulate.fmt_norm (normalized ctx Policy.default_drpm trace);
        ])
      ablation_apps (Lazy.force contexts)
  in
  Tabulate.render ppf
    ~header:[ "App (T-DRPM-s energy)"; "two-speed (floor 9000)"; "multi-speed (3000)" ]
    ~rows;
  Format.printf "@."

let breakdown () =
  section "Analysis — disk-time decomposition (Base vs T-DRPM-s, 1 CPU)";
  let rows =
    List.concat_map
      (fun ((app : App.t), runs) ->
        let split (r : Runner.run) =
          let sum f =
            Array.fold_left (fun acc d -> acc +. f d) 0.0 r.Runner.result.Engine.per_disk
          in
          let busy = sum (fun (d : Engine.disk_stats) -> d.Engine.busy_ms) in
          let idle = sum (fun (d : Engine.disk_stats) -> d.Engine.idle_ms) in
          let standby = sum (fun (d : Engine.disk_stats) -> d.Engine.standby_ms) in
          let trans = sum (fun (d : Engine.disk_stats) -> d.Engine.transition_ms) in
          let total = busy +. idle +. standby +. trans in
          List.map
            (fun v -> Tabulate.fmt_pct (v /. total))
            [ busy; idle; standby; trans ]
        in
        match (List.assoc_opt Version.Base runs, List.assoc_opt Version.T_drpm_s runs) with
        | Some base, Some reuse ->
            [
              (app.App.name ^ " Base") :: split base;
              (app.App.name ^ " T-DRPM-s") :: split reuse;
            ]
        | _ -> [])
      (Lazy.force matrix_1p)
  in
  Tabulate.render ppf ~header:[ "Run"; "busy"; "idle"; "standby"; "transition" ] ~rows;
  Format.printf
    "(DRPM idles at reduced speed, so its savings hide inside the idle share; the busy \
     share is what no disk policy can touch)@."

(* ------------------------------------------------------------------ *)
(* Observability overhead: the engine takes a sink on every run, so the
   disabled (null) path must cost nothing.  Compares the default run,
   an explicit null sink, and a live ring sink; the null-vs-default
   delta is the number CI gates on (<2%), and the minor-words delta
   shows the null path adds no per-event allocation. *)

let obs_overhead () =
  section "Observability — null-sink overhead";
  let app = Option.get (Workloads.by_name "FFT") in
  let ctx = Runner.context app in
  let trace = base_trace ctx in
  let disks = Pipeline.disks ctx in
  let run ?obs () = ignore (Engine.simulate ?obs ~disks Policy.default_drpm trace) in
  (* Sys.time is CPU time: immune to wall-clock noise from a loaded CI
     box.  Best-of-7 over 3 inner reps tames the rest. *)
  let time_best f =
    let best = ref infinity in
    for _ = 1 to 7 do
      let t0 = Sys.time () in
      f ();
      f ();
      f ();
      let dt = (Sys.time () -. t0) /. 3.0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let alloc_words f =
    let w0 = Gc.minor_words () in
    f ();
    Gc.minor_words () -. w0
  in
  run () (* warm up *);
  let t_default = time_best (fun () -> run ()) in
  let t_null = time_best (fun () -> run ~obs:Dp_obs.Sink.null ()) in
  let ring () = Dp_obs.Sink.ring ~capacity:(1 lsl 20) () in
  let t_ring = time_best (fun () -> run ~obs:(ring ()) ()) in
  let live () =
    let lv = Dp_obs.Live.create ~disks () in
    Dp_obs.Sink.stream (fun e -> Dp_obs.Live.feed lv e)
  in
  let t_live = time_best (fun () -> run ~obs:(live ()) ()) in
  let a_default = alloc_words (fun () -> run ()) in
  let a_null = alloc_words (fun () -> run ~obs:Dp_obs.Sink.null ()) in
  let a_ring = alloc_words (fun () -> run ~obs:(ring ()) ()) in
  let a_live = alloc_words (fun () -> run ~obs:(live ()) ()) in
  Tabulate.render ppf
    ~header:[ "sink"; "time (ms/run)"; "minor words/run" ]
    ~rows:
      [
        [ "default (no --obs)"; Printf.sprintf "%.2f" (1e3 *. t_default);
          Printf.sprintf "%.0f" a_default ];
        [ "explicit null"; Printf.sprintf "%.2f" (1e3 *. t_null);
          Printf.sprintf "%.0f" a_null ];
        [ "ring (1M events)"; Printf.sprintf "%.2f" (1e3 *. t_ring);
          Printf.sprintf "%.0f" a_ring ];
        [ "live aggregator"; Printf.sprintf "%.2f" (1e3 *. t_live);
          Printf.sprintf "%.0f" a_live ];
      ];
  let overhead = Float.max 0.0 ((t_null -. t_default) /. t_default) in
  Format.printf "ring sink costs %+.1f%% and %.0f extra minor words@."
    (100. *. (t_ring -. t_default) /. t_default)
    (a_ring -. a_default);
  Format.printf "live aggregator costs %+.1f%% and %.0f extra minor words@."
    (100. *. (t_live -. t_default) /. t_default)
    (a_live -. a_default);
  if overhead < 0.02 then
    Format.printf "null-sink overhead check: OK (%.2f%% <= 2%%)@." (100. *. overhead)
  else begin
    Format.printf "null-sink overhead check: FAILED (%.2f%% > 2%%)@." (100. *. overhead);
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Pipeline: the memoization win of the shared staged context, and the
   wall-clock effect of fanning the experiment matrix out over domains.
   Wall clock (Unix.gettimeofday, not Sys.time): domain parallelism is
   invisible to CPU time. *)

let pipeline_bench () =
  section "Pipeline — stage memoization and domain-parallel matrix";
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* Stage memoization: one context serving a full 4-CPU matrix builds
     the dependence graph once and shares traces between rows. *)
  let app = Option.get (Workloads.by_name "AST") in
  let versions = Version.multi_cpu @ Version.oracle in
  let ctx = Runner.context app in
  let (), t_first = wall (fun () -> ignore (Runner.run ctx ~procs:4 Version.T_drpm_m)) in
  let (), t_rest =
    wall (fun () -> List.iter (fun v -> ignore (Runner.run ctx ~procs:4 v)) versions)
  in
  let st = Pipeline.stats ctx in
  Format.printf
    "one context, %d versions at 4 CPUs: first T-DRPM-m row %.0f ms, the other %d rows \
     %.0f ms total@."
    (List.length versions) (1e3 *. t_first) (List.length versions) (1e3 *. t_rest);
  Format.printf
    "stage builds: graph %d, streams %d, traces %d, hints %d; memo hits %d@."
    st.Pipeline.graph_builds st.Pipeline.stream_builds st.Pipeline.trace_builds
    st.Pipeline.hint_builds st.Pipeline.memo_hits;
  let (), t_cold =
    wall (fun () ->
        ignore (Pipeline.trace (Pipeline.of_app app) ~procs:4 Pipeline.Reuse_multi))
  in
  let (), t_warm = wall (fun () -> ignore (Pipeline.trace ctx ~procs:4 Pipeline.Reuse_multi)) in
  Format.printf "T-*-m trace stage: cold %.1f ms, memoized %.3f ms@." (1e3 *. t_cold)
    (1e3 *. t_warm);
  (* Domain-parallel matrix: same rows, jobs=1 vs jobs=4; the JSON must
     be byte-identical (the determinism contract CI enforces).  The
     speedup only materializes with real cores — on a single-core host
     extra domains just add GC pressure, so only the mismatch is fatal. *)
  let apps = List.filter_map Workloads.by_name [ "AST"; "RSense 2.0" ] in
  let build jobs =
    Experiments.build_matrix ~apps ~jobs ~procs:4 ~versions:Version.multi_cpu ()
  in
  let m1, t1 = wall (fun () -> build 1) in
  let m4, t4 = wall (fun () -> build 4) in
  let j1 = Dp_harness.Json_out.to_string (Dp_harness.Json_out.of_matrix m1) in
  let j4 = Dp_harness.Json_out.to_string (Dp_harness.Json_out.of_matrix m4) in
  Format.printf "%d-app x %d-version matrix: jobs=1 %.2f s, jobs=4 %.2f s (%.2fx speedup)@."
    (List.length apps) (List.length Version.multi_cpu) t1 t4 (t1 /. t4);
  (let cores = Domain.recommended_domain_count () in
   if cores < 2 then
     Format.printf "(host reports %d core(s); no parallel speedup is possible here)@." cores);
  if String.equal j1 j4 then Format.printf "jobs=4 JSON identical to jobs=1: OK@."
  else begin
    Format.printf "jobs=4 JSON differs from jobs=1: FAILED@.";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Persistent stage cache: the wall-clock effect of serving the compile
   stages of a full report from the on-disk store.  Three builds of the
   same report matrix: cold (empty store — pays the writes), warm (a new
   process image would see exactly this: fresh contexts, populated
   store), and uncached.  The JSON must be byte-identical across all
   three — the cache is a pure memoization layer. *)

let cache_bench () =
  section "Persistent cache — cold vs warm report matrix";
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let module Cachefs = Dp_cachefs.Cachefs in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dpower-bench-cache-%d" (Unix.getpid ()))
  in
  ignore (Cachefs.clear ~dir);
  let build ?cache () =
    Dp_harness.Json_out.to_string
      (Dp_harness.Json_out.of_matrix
         (Experiments.build_matrix ?cache ~procs:4 ~versions:Version.multi_cpu ()))
  in
  let with_cache () =
    match Cachefs.open_store ~dir () with
    | Error msg -> Format.printf "cache store unavailable (%s)@." msg; exit 1
    | Ok cache -> build ~cache ()
  in
  let j_none, t_none = wall (fun () -> build ()) in
  let j_cold, t_cold = wall with_cache in
  let u = Cachefs.usage ~dir in
  (* A fresh store handle and fresh contexts: the next process. *)
  let j_warm, t_warm = wall with_cache in
  Format.printf
    "full report matrix (6 apps x %d versions, 4 CPUs): uncached %.2f s, cold cache \
     %.2f s, warm cache %.2f s (%.1fx)@."
    (List.length Version.multi_cpu) t_none t_cold t_warm (t_none /. t_warm);
  Format.printf "store after cold run: %d entries, %d bytes@." u.Cachefs.entries
    u.Cachefs.bytes;
  ignore (Cachefs.clear ~dir);
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  if String.equal j_none j_cold && String.equal j_cold j_warm then
    Format.printf "uncached / cold / warm JSON identical: OK@."
  else begin
    Format.printf "cached JSON differs from uncached: FAILED@.";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Served array: simulation throughput as the tenant population grows.
   Each run simulates the merged trace once per policy row, so the
   events/sec figure is merged-requests x simulated-rows over the wall
   clock of the whole report (population build, merge, rows, oracle
   bound and accounting included).  Jitter scales the array's busy
   window, not the work, so throughput should hold roughly flat while
   wall time grows with the population. *)

let serve_bench () =
  section "Served array — tenant scaling";
  let module Serve = Dp_serve.Serve in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let jobs = min 4 (Domain.recommended_domain_count ()) in
  let rows =
    List.map
      (fun tenants ->
        let cfg = Serve.config ~jobs ~tenants ~seed:42 () in
        let report, t = wall (fun () -> Serve.run cfg) in
        let simulated_rows =
          List.length
            (List.filter (fun (r : Serve.row) -> Option.is_some r.Serve.summary)
               report.Serve.rows)
        in
        let events = report.Serve.requests * simulated_rows in
        [
          string_of_int tenants;
          string_of_int report.Serve.requests;
          Printf.sprintf "%.2f" t;
          Printf.sprintf "%.0f" (float_of_int events /. t);
        ])
      [ 10; 100; 1000 ]
  in
  Tabulate.render ppf
    ~header:
      [ "tenants"; "merged requests"; Printf.sprintf "wall (s, jobs=%d)" jobs;
        "simulated events/s" ]
    ~rows;
  Format.printf "@."

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the compiler passes. *)

let micro () =
  section "Microbenchmarks (Bechamel)";
  let open Bechamel in
  let app = Option.get (Workloads.by_name "FFT") in
  let ctx = Runner.context app in
  let trace = base_trace ctx in
  let prog = app.App.program in
  let tests =
    [
      Test.make ~name:"dependence-graph build (FFT)"
        (Staged.stage (fun () -> ignore (Concrete.build prog)));
      Test.make ~name:"reuse schedule (FFT)"
        (Staged.stage (fun () ->
             ignore (Reuse.schedule (Pipeline.layout ctx) prog (Pipeline.graph ctx))));
      Test.make ~name:"trace generation (FFT)"
        (Staged.stage (fun () ->
             let g = Pipeline.graph ctx in
             ignore
               (Generate.trace (Pipeline.layout ctx) prog g
                  (Generate.single_stream g ~order:(Concrete.original_order g)))));
      Test.make ~name:"simulate DRPM (FFT)"
        (Staged.stage (fun () ->
             ignore (Engine.simulate ~disks:8 Policy.default_drpm trace)));
      Test.make ~name:"symbolic per-disk codegen"
        (Staged.stage (fun () ->
             let free =
               Ir.program
                 [ Ir.array_decl ~elem_size:65536 "u" [ 64; 16 ] ]
                 [
                   Ir.nest 0
                     [
                       Ir.loop "i" (Dp_affine.Affine.const 0) (Dp_affine.Affine.const 63);
                       Ir.loop "j" (Dp_affine.Affine.const 0) (Dp_affine.Affine.const 15);
                     ]
                     [
                       Ir.stmt 0
                         [ Ir.read "u" [ Dp_affine.Affine.var "i"; Dp_affine.Affine.var "j" ] ];
                     ];
                 ]
             in
             let layout =
               Layout.make
                 ~default:(Striping.make ~unit_bytes:(16 * 65536) ~factor:8 ~start_disk:0)
                 free
             in
             ignore (Dp_restructure.Symbolic.restructure layout free)));
    ]
  in
  let benchmark test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    let raw = Benchmark.all cfg [ instance ] test in
    let results = Analyze.all ols instance raw in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Format.printf "%-36s %12.0f ns/run@." name est
        | _ -> Format.printf "%-36s (no estimate)@." name)
      results
  in
  List.iter (fun t -> benchmark (Test.make_grouped ~name:"" [ t ])) tests

(* ------------------------------------------------------------------ *)
(* Persistent-failure domain: serve wall time with media decay, a scrub
   budget and the default deadline armed, against the clean closed loop
   on the same population — what the repair machinery (bad-sector maps,
   remap charges, scrubbing, SLO accounting) costs per request. *)

let repair_bench () =
  section "Repair domain — decay + scrub overhead";
  let module Serve = Dp_serve.Serve in
  let module Fault_model = Dp_faults.Fault_model in
  let module Repair = Dp_repair.Repair in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let row label mk =
    let report, t = wall (fun () -> Serve.run (mk ())) in
    let rows =
      List.length
        (List.filter (fun (r : Serve.row) -> Option.is_some r.Serve.summary)
           report.Serve.rows)
    in
    let events = report.Serve.requests * rows in
    [
      label;
      string_of_int report.Serve.requests;
      Printf.sprintf "%.2f" t;
      Printf.sprintf "%.0f" (float_of_int events /. t);
    ]
  in
  let decay rate =
    Fault_model.make ~seed:11 ~rate ~classes:[ Fault_model.Media_decay ] ()
  in
  let rows =
    [
      row "clean" (fun () -> Serve.config ~jobs:1 ~tenants:20 ~seed:42 ());
      row "decay 0.05" (fun () ->
          Serve.config ~jobs:1 ~tenants:20 ~seed:42 ~faults:(decay 0.05)
            ~deadline_ms:500.0 ());
      row "decay 0.05 + scrub 40ms" (fun () ->
          Serve.config ~jobs:1 ~tenants:20 ~seed:42 ~faults:(decay 0.05)
            ~repair:(Repair.config ~scrub_budget_ms:40.0 ())
            ~deadline_ms:500.0 ());
    ]
  in
  Tabulate.render ppf
    ~header:[ "config"; "requests"; "wall s"; "req-rows/s" ]
    ~rows

(* ------------------------------------------------------------------ *)
(* Engine sharding: events/sec serial vs sharded on a trace whose
   segments split into independent components (proc p owns disk p) —
   the shape the per-segment shard groups parallelize.  Identity with
   the serial run is asserted on every cell, and the 10x/4-shard cell
   gates on beating serial wall-clock. *)

let shard_bench () =
  section "Engine sharding — serial vs domains";
  let mk_trace scale =
    List.concat
      (List.init 8 (fun p ->
           List.init (500 * scale) (fun i ->
               {
                 Request.arrival_ms = 0.0;
                 think_ms = float_of_int (1 + ((p + i) mod 37));
                 seg = 0;
                 address = i * 4096;
                 lba = i * 4096;
                 size = 64 * 1024;
                 mode = Ir.Read;
                 proc = p;
                 disk = p;
               })))
  in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let best n f =
    let br = ref None and bt = ref infinity in
    for _ = 1 to n do
      let r, t = wall f in
      if t < !bt then begin
        bt := t;
        br := Some r
      end
    done;
    (Option.get !br, !bt)
  in
  let speedup_10x = ref 0.0 in
  let rows =
    List.concat_map
      (fun scale ->
        let reqs = mk_trace scale in
        let n = List.length reqs in
        let serial, t1 =
          best 3 (fun () -> Engine.simulate ~disks:8 Policy.default_tpm reqs)
        in
        List.map
          (fun shards ->
            let r, t =
              if shards = 1 then (serial, t1)
              else
                best 3 (fun () ->
                    Engine.simulate ~shards ~disks:8 Policy.default_tpm reqs)
            in
            if r <> serial then begin
              Format.printf "shard identity check: FAILED (shards %d, scale %dx)@."
                shards scale;
              exit 1
            end;
            if scale = 10 && shards = 4 then speedup_10x := t1 /. t;
            [
              Printf.sprintf "%dx" scale;
              string_of_int n;
              (if shards = 1 then "serial" else Printf.sprintf "%d shards" shards);
              Printf.sprintf "%.3f" t;
              Printf.sprintf "%.0f" (float_of_int n /. t);
              Printf.sprintf "x%.2f" (t1 /. t);
            ])
          [ 1; 2; 4; 8 ])
      [ 1; 10; 100 ]
  in
  Tabulate.render ppf
    ~header:[ "trace"; "requests"; "mode"; "wall s"; "events/s"; "speedup" ]
    ~rows;
  if !speedup_10x >= 1.0 then
    Format.printf "shard speedup check: OK (x%.2f at 10x, 4 shards)@." !speedup_10x
  else begin
    Format.printf "shard speedup check: FAILED (x%.2f < 1.0 at 10x, 4 shards)@."
      !speedup_10x;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Chaos harness: what the differential oracle costs on top of running
   the same paired configurations directly, and what shrinking adds on
   a failing scenario.  CI gates on the oracle staying within 2x of the
   direct runs — the invariants and artifact comparisons must not
   dominate the engine work they check. *)

let chaos_bench () =
  section "Chaos harness — oracle overhead and shrink cost";
  let module Scenario = Dp_chaos.Scenario in
  let module Check = Dp_chaos.Check in
  let module Shrink = Dp_chaos.Shrink in
  let scenarios = List.map (fun i -> Scenario.generate (Int64.of_int i)) [ 1; 2; 3; 4; 5; 6 ] in
  let n = List.length scenarios in
  let wall f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let best k f =
    let bt = ref infinity in
    for _ = 1 to k do
      let t = wall f in
      if t < !bt then bt := t
    done;
    !bt
  in
  let t_direct = best 3 (fun () -> List.iter Check.run_direct scenarios) in
  let t_oracle =
    best 3 (fun () ->
        List.iter
          (fun s ->
            match (Check.run s).Check.violations with
            | [] -> ()
            | v :: _ ->
                Format.printf "oracle violation during bench: %s: %s@." v.Check.check
                  v.Check.detail;
                exit 1)
          scenarios)
  in
  (* Shrinking only ever runs on failures: measure it on sabotaged
     scenarios, where every one fails and minimizes. *)
  let t_shrink =
    wall (fun () ->
        List.iter
          (fun s -> ignore (Shrink.minimize ~sabotage:Check.Energy_skew s))
          scenarios)
  in
  let row label t =
    [ label; string_of_int n; Printf.sprintf "%.3f" t;
      Printf.sprintf "%.1f" (float_of_int n /. t) ]
  in
  Tabulate.render ppf
    ~header:[ "mode"; "scenarios"; "wall s"; "scenarios/s" ]
    ~rows:
      [
        row "paired configs, no oracle" t_direct;
        row "full oracle" t_oracle;
        row "full oracle + shrink (sabotaged)" (t_oracle +. t_shrink);
      ];
  let overhead = t_oracle /. t_direct in
  if overhead <= 2.0 then
    Format.printf "chaos oracle overhead check: OK (x%.2f <= x2 of direct runs)@." overhead
  else begin
    Format.printf "chaos oracle overhead check: FAILED (x%.2f > x2 of direct runs)@."
      overhead;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Trace codec: throughput and density of the binary format against the
   text rendering of the same trace. *)

let trace_codec_bench () =
  section "Trace codec — text vs binary";
  let module Bin = Dp_trace.Bin in
  let app = Option.get (Workloads.by_name "AST") in
  let reqs = List.map Bin.quantize (base_trace (Runner.context app)) in
  let n = List.length reqs in
  let text =
    let b = Buffer.create (1 lsl 20) in
    List.iter (fun r -> Buffer.add_string b (Format.asprintf "%a@." Request.pp r)) reqs;
    Buffer.contents b
  in
  let data = Bin.encode reqs in
  let time_best f =
    let best = ref infinity in
    for _ = 1 to 5 do
      let t0 = Sys.time () in
      f ();
      let dt = Sys.time () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let t_enc = time_best (fun () -> ignore (Bin.encode reqs)) in
  let t_dec =
    time_best (fun () ->
        match Bin.decode data with Ok _ -> () | Error _ -> assert false)
  in
  let mb bytes = float_of_int bytes /. 1024. /. 1024. in
  Tabulate.render ppf
    ~header:[ "format"; "bytes"; "bytes/record"; "encode MB/s"; "decode MB/s" ]
    ~rows:
      [
        [
          "text"; string_of_int (String.length text);
          Printf.sprintf "%.1f" (float_of_int (String.length text) /. float_of_int n);
          "-"; "-";
        ];
        [
          "binary"; string_of_int (String.length data);
          Printf.sprintf "%.1f" (float_of_int (String.length data) /. float_of_int n);
          Printf.sprintf "%.1f" (mb (String.length data) /. t_enc);
          Printf.sprintf "%.1f" (mb (String.length data) /. t_dec);
        ];
      ];
  Format.printf "binary/text size ratio: %.3f (%d records)@."
    (float_of_int (String.length data) /. float_of_int (String.length text))
    n

(* ------------------------------------------------------------------ *)

let sections =
  [
    ("table1", table1);
    ("table2", table2);
    ("fig9a", fig9a);
    ("fig10a", fig10a);
    ("fig9b", fig9b);
    ("fig10b", fig10b);
    ("ablate-cluster", ablate_cluster);
    ("ablate-tpm", ablate_tpm);
    ("ablate-drpm", ablate_drpm);
    ("ablate-stripes", ablate_stripes);
    ("layout-opt", ablate_layout_opt);
    ("proactive-drpm", ablate_proactive_drpm);
    ("fusion", fusion_baseline);
    ("caching", caching_baseline);
    ("transform", transform_ablation);
    ("prefetch", prefetch_baseline);
    ("two-speed", two_speed);
    ("breakdown", breakdown);
    ("obs-overhead", obs_overhead);
    ("pipeline", pipeline_bench);
    ("cache", cache_bench);
    ("serve", serve_bench);
    ("repair", repair_bench);
    ("shard", shard_bench);
    ("chaos", chaos_bench);
    ("trace-codec", trace_codec_bench);
    ("micro", micro);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as args) when not (List.mem "all" args) -> args
    | _ -> List.map fst sections
  in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
          Format.eprintf "unknown section %s (available: %s)@." name
            (String.concat " " (List.map fst sections));
          exit 1)
    requested
