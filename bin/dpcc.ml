(* dpcc — the disk-power compiler driver.

   Loads a program (a [.dpl] source file or a built-in workload via
   [app:NAME]), and can show the IR and its analyses, print the
   restructured code, emit an I/O trace, or run the full trace-driven
   power simulation. *)

module Ir = Dp_ir.Ir
module Resolver = Dp_lang.Resolver
module Analysis = Dp_dependence.Analysis
module Concrete = Dp_dependence.Concrete
module Striping = Dp_layout.Striping
module Layout = Dp_layout.Layout
module Reuse = Dp_restructure.Reuse_scheduler
module Cluster = Dp_restructure.Cluster
module Symbolic = Dp_restructure.Symbolic
module Parallelize = Dp_restructure.Parallelize
module Generate = Dp_trace.Generate
module Request = Dp_trace.Request
module Hint = Dp_trace.Hint
module Engine = Dp_disksim.Engine
module Policy = Dp_disksim.Policy
module Fault_model = Dp_faults.Fault_model
module Oracle = Dp_oracle.Oracle
module Workloads = Dp_workloads.Workloads
module App = Dp_workloads.App

let fail fmt = Format.kasprintf (fun s -> raise (Failure s)) fmt

(* A loaded compilation unit: program + layout. *)
type unit_ = { program : Ir.program; layout : Layout.t; origin : string }

let stripe_of_spec (sp : Dp_lang.Ast.stripe_spec) =
  Striping.make ~unit_bytes:sp.unit_bytes ~factor:sp.factor ~start_disk:sp.start_disk

let load source =
  if String.length source > 4 && String.sub source 0 4 = "app:" then begin
    let name = String.sub source 4 (String.length source - 4) in
    match Workloads.by_name name with
    | Some app ->
        {
          program = app.App.program;
          layout =
            Layout.make ~default:app.App.striping ~overrides:app.App.overrides
              app.App.program;
          origin = app.App.name;
        }
    | None ->
        fail "unknown application %s (available: %s)" name
          (String.concat ", " (Workloads.names ()))
  end
  else begin
    let { Resolver.program; stripes } = Resolver.load_file source in
    let overrides = List.map (fun (name, sp) -> (name, stripe_of_spec sp)) stripes in
    { program; layout = Layout.make ~overrides program; origin = source }
  end

(* Malformed input — source programs, trace/hint/fault lines, bad flag
   values — is a usage-class failure: one-line diagnostic, exit 2, the
   same code cmdliner uses for CLI errors. *)
let with_errors f =
  try f () with
  | Failure msg | Sys_error msg ->
      Format.eprintf "dpcc: %s@." msg;
      exit 2
  | Dp_lang.Parser.Error (loc, msg) | Dp_lang.Resolver.Error (loc, msg) ->
      Format.eprintf "dpcc: %a: %s@." Dp_lang.Srcloc.pp loc msg;
      exit 2
  | Dp_lang.Lexer.Error (loc, msg) ->
      Format.eprintf "dpcc: %a: %s@." Dp_lang.Srcloc.pp loc msg;
      exit 2
  | Symbolic.Unsupported msg ->
      Format.eprintf "dpcc: symbolic restructuring unsupported: %s@." msg;
      exit 1

let faults_of_spec = function
  | None -> None
  | Some spec -> (
      match Fault_model.of_spec spec with
      | Ok f -> Some f
      | Error msg -> fail "--faults: %s" msg)

(* Pass profiling (--profile): the compiler stages carry Dp_obs.Prof
   hooks; enabling the collector before the pipeline and printing the
   table after costs nothing when the flag is off. *)
let with_profile profile f =
  if profile then Dp_obs.Prof.enable ();
  let r = f () in
  if profile then Format.eprintf "%a" Dp_obs.Prof.pp_table ();
  r

(* --- show --- *)

let show source deps profile =
  with_profile profile @@ fun () ->
  with_errors (fun () ->
      let u = load source in
      Format.printf "// %s@.%a@." u.origin Ir.pp_program u.program;
      Format.printf "%a@." Layout.pp u.layout;
      if deps then
        List.iter
          (fun (n : Ir.nest) ->
            let ds = Analysis.nest_dependences n in
            Format.printf "nest %d: %d dependence(s)@." n.Ir.nest_id (List.length ds);
            List.iter (fun d -> Format.printf "  %a@." Analysis.pp_dep d) ds;
            match Analysis.outermost_parallel_loop n with
            | Some k -> Format.printf "  outermost parallel loop: depth %d@." k
            | None -> Format.printf "  no parallelizable loop@.")
          u.program.Ir.nests)

(* --- restructure --- *)

let restructure source symbolic profile =
  with_profile profile @@ fun () ->
  with_errors (fun () ->
      let u = load source in
      if symbolic then begin
        let ds = Symbolic.restructure u.layout u.program in
        Format.printf "%a@." Symbolic.pp ds
      end
      else begin
        let g = Concrete.build u.program in
        let s = Reuse.schedule u.layout u.program g in
        let table = Cluster.build_table u.layout u.program g in
        Format.printf
          "restructured %d iterations in %d round(s), %d disk visit(s)@."
          (Array.length s.Reuse.order) s.Reuse.rounds (List.length s.Reuse.visits);
        Format.printf "disk switches: %d original -> %d restructured@."
          (Reuse.disk_switches table (Concrete.original_order g))
          (Reuse.disk_switches table s.Reuse.order);
        List.iter
          (fun (d, n) -> Format.printf "  visit disk %d: %d iterations@." d n)
          s.Reuse.visits
      end)

(* --- shared pipeline pieces --- *)

let streams u ~procs ~restructured =
  let g = Concrete.build u.program in
  let segs =
    if procs = 1 then
      if restructured then
        Generate.single_stream g ~order:(Reuse.schedule u.layout u.program g).Reuse.order
      else Generate.single_stream g ~order:(Concrete.original_order g)
    else begin
      let disks = u.layout.Layout.disk_count in
      if restructured then begin
        let a = Parallelize.layout_aware u.layout u.program g ~procs in
        Generate.reordered_segments a ~order_of_proc:(fun p ->
            (Reuse.schedule_subset u.layout u.program g
               ~start_disk:(p * disks / procs)
               ~member:(fun seq -> a.Parallelize.owner.(seq) = p))
              .Reuse.order)
      end
      else Generate.original_segments u.program g (Parallelize.conventional u.program g ~procs)
    end
  in
  (g, segs)

let trace source output procs restructured gaps with_hints faults_spec profile =
  with_profile profile @@ fun () ->
  with_errors (fun () ->
      let u = load source in
      let g, segs = streams u ~procs ~restructured in
      let reqs = Generate.trace u.layout u.program g segs in
      let hints =
        if with_hints then
          Oracle.hints_of_trace ~disks:u.layout.Layout.disk_count reqs
        else []
      in
      let faults = faults_of_spec faults_spec in
      (match output with
      | Some path -> Request.save ~hints ?faults path reqs
      | None when not gaps ->
          List.iter (fun r -> Format.printf "%a@." Request.pp r) reqs;
          List.iter (fun h -> Format.printf "%a@." Hint.pp h) hints;
          Option.iter (fun f -> Format.printf "F %s@." (Fault_model.to_spec f)) faults
      | None -> ());
      if gaps then begin
        let h = Dp_trace.Idle_stats.of_requests reqs in
        Format.printf "%a" Dp_trace.Idle_stats.pp h;
        Format.printf "TPM-exploitable idle (>= 15.2 s gaps): %.0f s@."
          (Dp_trace.Idle_stats.exploitable_mass_s h ~threshold_s:15.2)
      end;
      let s = Generate.summarize reqs in
      Format.eprintf "%d requests%s, %.1f MB, makespan %.1f s, io fraction %.1f%%@."
        s.Generate.requests
        (if with_hints then Printf.sprintf ", %d power hints" (List.length hints) else "")
        (float_of_int s.Generate.bytes /. 1024. /. 1024.)
        (s.Generate.makespan_ms /. 1000.)
        (100. *. Generate.io_fraction s))

let policy_of_string = function
  | "none" | "base" -> Policy.No_pm
  | "tpm" -> Policy.default_tpm
  | "tpm-proactive" -> Policy.tpm ~proactive:true ()
  | "drpm" -> Policy.default_drpm
  | "drpm-proactive" -> Policy.drpm ~proactive:true ()
  | p ->
      fail
        "unknown policy %s (none | tpm | tpm-proactive | drpm | drpm-proactive | oracle-tpm \
         | oracle-drpm)"
        p

(* The oracle "policies" are offline bounds, not simulated controllers. *)
let oracle_space_of_string = function
  | "oracle-tpm" -> Some Oracle.Tpm_space
  | "oracle-drpm" -> Some Oracle.Drpm_space
  | "oracle" -> Some Oracle.Full_space
  | _ -> None

(* Compiler hints for the proactive policies: the engine executes the
   directive stream instead of consulting its omniscient gap planner. *)
let hints_for policy ~disks reqs =
  match policy with
  | Policy.Tpm { Policy.proactive = true; _ } ->
      Oracle.hints_of_trace ~space:Oracle.Tpm_space ~disks reqs
  | Policy.Drpm { Policy.proactive = true; _ } ->
      Oracle.hints_of_trace ~space:Oracle.Drpm_space ~disks reqs
  | _ -> []

let simulate source procs restructured policy_name per_disk timeline faults_spec profile =
  with_profile profile @@ fun () ->
  with_errors (fun () ->
      let u = load source in
      let g, segs = streams u ~procs ~restructured in
      let reqs = Generate.trace u.layout u.program g segs in
      let disks = u.layout.Layout.disk_count in
      match oracle_space_of_string policy_name with
      | Some space ->
          let bound = Oracle.lower_bound ~space ~disks reqs in
          Format.printf "%a@." Oracle.pp_bound bound;
          Format.printf "analytic standby floor: %.1f J@."
            (Oracle.standby_floor_j bound.Oracle.base)
      | None ->
      let policy = policy_of_string policy_name in
      let faults = faults_of_spec faults_spec in
      let hints = hints_for policy ~disks reqs in
      let r = Engine.simulate ~record_timeline:timeline ~hints ?faults ~disks policy reqs in
      (match faults with
      | Some f -> Format.printf "%a@." Fault_model.pp f
      | None -> ());
      Format.printf "policy %s: energy %.1f J, disk I/O time %.1f s, makespan %.1f s@."
        r.Engine.policy r.Engine.energy_j
        (r.Engine.io_time_ms /. 1000.)
        (r.Engine.makespan_ms /. 1000.);
      (let wear, su, media, spikes, degraded =
         Array.fold_left
           (fun (w, s, m, l, d) (ds : Engine.disk_stats) ->
             ( Float.max w (Engine.wear_fraction Dp_disksim.Disk_model.ultrastar_36z15 ds),
               s + ds.Engine.spin_up_retries,
               m + ds.Engine.media_retries,
               l + ds.Engine.latency_spikes,
               d +. ds.Engine.degraded_ms ))
           (0.0, 0, 0, 0, 0.0) r.Engine.per_disk
       in
       Format.printf
         "reliability: wear %.4f%% of start-stop budget (worst disk), %d spin-up retries, \
          %d media retries, %d latency spikes, degraded %.1f ms@."
         (100.0 *. wear) su media spikes degraded);
      if per_disk then
        Array.iter (fun d -> Format.printf "%a@." Engine.pp_disk_stats d) r.Engine.per_disk;
      (match r.Engine.timeline with
      | Some t ->
          print_string
            (Dp_disksim.Timeline.render ~model:Dp_disksim.Disk_model.ultrastar_36z15
               ~until_ms:r.Engine.makespan_ms t)
      | None -> ());
      (* Also report against the no-PM baseline on the same trace. *)
      if policy <> Policy.No_pm then begin
        let base = Engine.simulate ?faults ~disks Policy.No_pm reqs in
        Format.printf "normalized energy vs no-PM on this trace: %.3f@."
          (r.Engine.energy_j /. base.Engine.energy_j)
      end)

(* --- report: the version matrix for one program --- *)

let report source procs json_path obs profile =
  with_profile profile @@ fun () ->
  with_errors (fun () ->
      let u = load source in
      let app =
        (* Wrap the unit as an App so the harness runner drives it. *)
        {
          App.name = u.origin;
          description = u.origin;
          program = u.program;
          striping = Striping.default;
          overrides =
            List.map
              (fun (e : Layout.entry) -> (e.Layout.decl.Ir.name, e.Layout.striping))
              u.layout.Layout.entries;
          paper_data_gb = 0.0;
          paper_requests = 0;
          paper_base_energy_j = 0.0;
          paper_io_time_ms = 0.0;
        }
      in
      let versions =
        (if procs = 1 then Dp_harness.Version.single_cpu else Dp_harness.Version.multi_cpu)
        @ Dp_harness.Version.oracle
      in
      let matrix = Dp_harness.Experiments.build_matrix ~apps:[ app ] ~obs ~procs ~versions () in
      Dp_harness.Experiments.fig_energy matrix Format.std_formatter;
      Dp_harness.Experiments.fig_perf matrix Format.std_formatter;
      match json_path with
      | Some path ->
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () ->
              output_string oc (Dp_harness.Json_out.to_string (Dp_harness.Json_out.of_matrix matrix));
              output_char oc '\n')
      | None -> ())

(* --- fault-sweep: degradation under increasing fault rates --- *)

let fault_sweep source procs seed rates classes json_path profile =
  with_profile profile @@ fun () ->
  with_errors (fun () ->
      let u = load source in
      let app =
        {
          App.name = u.origin;
          description = u.origin;
          program = u.program;
          striping = Striping.default;
          overrides =
            List.map
              (fun (e : Layout.entry) -> (e.Layout.decl.Ir.name, e.Layout.striping))
              u.layout.Layout.entries;
          paper_data_gb = 0.0;
          paper_requests = 0;
          paper_base_energy_j = 0.0;
          paper_io_time_ms = 0.0;
        }
      in
      let classes =
        match classes with
        | None -> None
        | Some s -> (
            match Dp_faults.Fault_model.of_spec (Printf.sprintf "0:0:%s" s) with
            | Ok f -> Some f.Dp_faults.Fault_model.classes
            | Error msg -> fail "--classes: %s" msg)
      in
      let versions =
        if procs = 1 then Dp_harness.Version.single_cpu else Dp_harness.Version.multi_cpu
      in
      let sweep =
        Dp_harness.Experiments.fault_sweep ~seed ?rates ?classes ~procs ~versions app
      in
      Dp_harness.Experiments.fig_sweep sweep Format.std_formatter;
      match json_path with
      | Some path ->
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () ->
              output_string oc
                (Dp_harness.Json_out.to_string (Dp_harness.Json_out.of_sweep sweep));
              output_char oc '\n')
      | None -> ())

(* --- emit --- *)

let emit source output =
  with_errors (fun () ->
      let u = load source in
      let stripes =
        List.map
          (fun (e : Layout.entry) ->
            (e.Layout.decl.Ir.name, Dp_lang.Emit.stripe_spec e.Layout.striping))
          u.layout.Layout.entries
      in
      let text = Dp_lang.Emit.to_string ~stripes u.program in
      match output with
      | Some path ->
          let oc = open_out path in
          Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text)
      | None -> print_string text)

(* --- cmdliner wiring --- *)

open Cmdliner

let source_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"PROG" ~doc:"A .dpl source file, or app:NAME for a built-in workload")

let procs_arg =
  Arg.(value & opt int 1 & info [ "procs"; "p" ] ~docv:"N" ~doc:"Number of processors")

let restructured_arg =
  Arg.(
    value & flag
    & info [ "restructure"; "t" ]
        ~doc:"Apply disk-reuse restructuring (layout-aware when --procs > 1)")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Time the compiler passes (dependence-graph build, reuse scheduling, layout \
           unification, trace generation, simulation) and print a per-pass table to \
           stderr")

let show_cmd =
  let deps = Arg.(value & flag & info [ "deps" ] ~doc:"Also print dependence analysis") in
  Cmd.v
    (Cmd.info "show" ~doc:"Parse a program and print its IR, layout and analyses")
    Term.(const show $ source_arg $ deps $ profile_arg)

let restructure_cmd =
  let symbolic =
    Arg.(
      value & flag
      & info [ "symbolic" ]
          ~doc:
            "Emit the omega-lite transformed loop nests (dependence-free programs only) \
             instead of the concrete schedule summary")
  in
  Cmd.v
    (Cmd.info "restructure" ~doc:"Print the disk-reuse restructuring of a program")
    Term.(const restructure $ source_arg $ symbolic $ profile_arg)

let trace_cmd =
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Trace file")
  in
  let gaps =
    Arg.(value & flag & info [ "gaps" ] ~doc:"Print the per-disk idle-gap histogram")
  in
  let hints =
    Arg.(
      value & flag
      & info [ "hints" ]
          ~doc:
            "Also emit the compiler power-hint stream (spin-down, pre-spin-up and \
             set-RPM directives planned on the nominal timeline) into the trace")
  in
  let faults =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"SEED:RATE:CLASSES"
          ~doc:"Embed a fault-injection window (an F line) into the trace")
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Generate the timed I/O request trace of a program")
    Term.(
      const trace $ source_arg $ output $ procs_arg $ restructured_arg $ gaps $ hints
      $ faults $ profile_arg)

let simulate_cmd =
  let policy =
    Arg.(
      value & opt string "none"
      & info [ "policy" ] ~docv:"P"
          ~doc:
            "none | tpm | tpm-proactive | drpm | drpm-proactive | oracle-tpm | oracle-drpm \
             (proactive policies execute compiler hints; oracle-* print the offline-optimal \
             bound instead of simulating)")
  in
  let per_disk = Arg.(value & flag & info [ "per-disk" ] ~doc:"Print per-disk statistics") in
  let timeline =
    Arg.(value & flag & info [ "timeline" ] ~doc:"Render the per-disk power-state chart")
  in
  let faults =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"SEED:RATE:CLASSES"
          ~doc:
            "Arm the deterministic fault injector, e.g. 42:0.01:all or 7:0.05:sm \
             (s spin-up, m media, l latency spike, r stuck RPM)")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run the trace-driven disk power simulation")
    Term.(
      const simulate $ source_arg $ procs_arg $ restructured_arg $ policy $ per_disk
      $ timeline $ faults $ profile_arg)

let report_cmd =
  let json =
    Arg.(
      value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc:"Also write JSON results")
  in
  let obs =
    Arg.(
      value & flag
      & info [ "obs" ]
          ~doc:
            "Attach per-run observability reports (idle-gap / response-time / \
             standby-residency histograms); they appear under \"obs\" in the JSON output")
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Run the full version matrix for a program and print figures")
    Term.(const report $ source_arg $ procs_arg $ json $ obs $ profile_arg)

let fault_sweep_cmd =
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Fault injector seed")
  in
  let rates =
    Arg.(
      value
      & opt (some (list float)) None
      & info [ "rates" ] ~docv:"R1,R2,..."
          ~doc:"Fault rates to sweep (default 0,0.001,0.01,0.05,0.1)")
  in
  let classes =
    Arg.(
      value
      & opt (some string) None
      & info [ "classes" ] ~docv:"CLASSES"
          ~doc:
            "Fault classes: letters from smlr (s spin-up, m media, l latency spike, \
             r stuck RPM) or all")
  in
  let json =
    Arg.(
      value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc:"Also write JSON results")
  in
  Cmd.v
    (Cmd.info "fault-sweep"
       ~doc:
         "Re-simulate the version matrix of a program across a fault-rate ramp (same seed \
          at every point) and report energy and degraded time per version")
    Term.(const fault_sweep $ source_arg $ procs_arg $ seed $ rates $ classes $ json
      $ profile_arg)

let emit_cmd =
  let output =
    Arg.(
      value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file")
  in
  Cmd.v
    (Cmd.info "emit" ~doc:"Emit a program back as .dpl source (with its striping)")
    Term.(const emit $ source_arg $ output)

(* cmdliner's own unknown-command diagnostic is a terse hint; a wrong
   subcommand deserves the full command list.  Scan argv before handing
   over: the first non-flag argument must name a known command. *)
let command_docs =
  [
    ("show", "Parse a program and print its IR, layout and analyses");
    ("restructure", "Print the disk-reuse restructuring of a program");
    ("trace", "Generate the timed I/O request trace of a program");
    ("simulate", "Run the trace-driven disk power simulation");
    ("emit", "Emit a program back as .dpl source (with its striping)");
    ("report", "Run the full version matrix for a program and print figures");
    ("fault-sweep", "Re-simulate the version matrix across a fault-rate ramp");
  ]

let check_subcommand () =
  if Array.length Sys.argv > 1 then begin
    let arg = Sys.argv.(1) in
    let is_prefix_of (name, _) =
      String.length arg <= String.length name
      && String.equal arg (String.sub name 0 (String.length arg))
    in
    (* cmdliner accepts unambiguous command prefixes; only a name that
       matches no command at all is truly unknown. *)
    if String.length arg > 0 && arg.[0] <> '-' && not (List.exists is_prefix_of command_docs)
    then begin
      Format.eprintf "dpcc: unknown command %S@.@.Usage: dpcc COMMAND ...@.@.Commands:@."
        arg;
      List.iter (fun (n, d) -> Format.eprintf "  %-12s %s@." n d) command_docs;
      Format.eprintf "@.Run 'dpcc COMMAND --help' for command-specific options.@.";
      exit 2
    end
  end

let () =
  check_subcommand ();
  let info =
    Cmd.info "dpcc" ~version:"1.0.0"
      ~doc:"Compiler-guided disk power reduction (CGO 2006 reproduction)"
  in
  exit
    (Cmd.eval ~term_err:2
       (Cmd.group info
          [
            show_cmd; restructure_cmd; trace_cmd; simulate_cmd; emit_cmd; report_cmd;
            fault_sweep_cmd;
          ]))
