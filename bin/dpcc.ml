(* dpcc — the disk-power compiler driver.

   Loads a program (a [.dpl] source file or a built-in workload via
   [app:NAME]), and can show the IR and its analyses, print the
   restructured code, emit an I/O trace, or run the full trace-driven
   power simulation.  Every data-producing command drives the one
   staged pipeline ({!Dp_pipeline.Pipeline}) — the same stages the
   harness matrix and the examples use. *)

module Ir = Dp_ir.Ir
module Analysis = Dp_dependence.Analysis
module Layout = Dp_layout.Layout
module Reuse = Dp_restructure.Reuse_scheduler
module Cluster = Dp_restructure.Cluster
module Symbolic = Dp_restructure.Symbolic
module Generate = Dp_trace.Generate
module Request = Dp_trace.Request
module Hint = Dp_trace.Hint
module Bin = Dp_trace.Bin
module Engine = Dp_disksim.Engine
module Policy = Dp_disksim.Policy
module Fault_model = Dp_faults.Fault_model
module Repair = Dp_repair.Repair
module Oracle = Dp_oracle.Oracle
module Pipeline = Dp_pipeline.Pipeline
module Cachefs = Dp_cachefs.Cachefs
module Fsx = Dp_util.Fsx

let fail fmt = Format.kasprintf (fun s -> raise (Failure s)) fmt

(* Malformed input — source programs, trace/hint/fault lines, bad flag
   values — is a usage-class failure: one-line diagnostic, exit 2, the
   same code cmdliner uses for CLI errors. *)
let with_errors f =
  try f () with
  | Failure msg | Sys_error msg ->
      Format.eprintf "dpcc: %s@." msg;
      exit 2
  | Dp_lang.Parser.Error (loc, msg) | Dp_lang.Resolver.Error (loc, msg) ->
      Format.eprintf "dpcc: %a: %s@." Dp_lang.Srcloc.pp loc msg;
      exit 2
  | Dp_lang.Lexer.Error (loc, msg) ->
      Format.eprintf "dpcc: %a: %s@." Dp_lang.Srcloc.pp loc msg;
      exit 2
  | Symbolic.Unsupported msg ->
      Format.eprintf "dpcc: symbolic restructuring unsupported: %s@." msg;
      exit 1

let faults_of_spec = function
  | None -> None
  | Some spec -> (
      match Fault_model.of_spec spec with
      | Ok f -> Some f
      | Error msg -> fail "--faults: %s" msg)

(* --mode names the restructured stream family explicitly; without it
   the historical default applies (the single-CPU algorithm at one
   processor, the layout-aware scheme otherwise).  Contradictory
   combinations are usage errors (exit 2). *)
let resolve_mode ~procs ~restructured = function
  | None ->
      if not restructured then Pipeline.Original
      else if procs = 1 then Pipeline.Reuse_single
      else Pipeline.Reuse_multi
  | Some name -> (
      if not restructured then
        fail "--mode %s requires --restructure (unmodified code has no stream family)" name;
      match Pipeline.mode_of_name name with
      | Some Pipeline.Reuse_single -> Pipeline.Reuse_single
      | Some Pipeline.Reuse_multi ->
          if procs = 1 then
            fail
              "--mode multi needs --procs > 1 (the layout-aware scheme tours per-processor \
               disk shares)"
          else Pipeline.Reuse_multi
      | Some Pipeline.Original | None -> fail "unknown --mode %s (expected single | multi)" name)

let check_jobs jobs = if jobs < 1 then fail "--jobs must be at least 1 (got %d)" jobs
let check_procs procs = if procs < 1 then fail "--procs must be at least 1 (got %d)" procs

let check_shards shards =
  if shards < 1 then fail "--shards must be at least 1 (got %d)" shards

(* Trace output format: the human text format or the streaming binary
   codec.  Binary output quantizes timestamps to the text format's
   3-decimal precision first, so text <-> bin conversion round-trips
   byte-identically. *)
let trace_format_of_name = function
  | "text" -> `Text
  | "bin" -> `Bin
  | f -> fail "unknown --format %s (expected text | bin)" f

let save_trace ~format ~hints ?faults path reqs =
  match format with
  | `Text -> Request.save ~hints ?faults path reqs
  | `Bin ->
      Bin.save
        ~hints:(List.map Bin.quantize_hint hints)
        ?faults path
        (List.map Bin.quantize reqs)

(* Pass profiling (--profile): the compiler stages carry Dp_obs.Prof
   hooks; enabling the collector before the pipeline and printing the
   table after costs nothing when the flag is off. *)
let with_profile profile f =
  if profile then Dp_obs.Prof.enable ();
  let r = f () in
  if profile then Format.eprintf "%a" Dp_obs.Prof.pp_table ();
  r

(* --- the persistent stage cache ---

   On by default for every pipeline-driving command; --no-cache
   bypasses it, --cache-dir relocates it.  An unusable store (read-only
   directory, ENOSPC, ...) silently degrades to an uncached run — the
   cache must never turn a working invocation into a failing one. *)

let open_cache ~no_cache ~dir () =
  if no_cache then None
  else
    let dir = match dir with Some d -> d | None -> Cachefs.default_dir () in
    match Cachefs.open_store ~dir () with Ok c -> Some c | Error _ -> None

let finish_cache cache = Option.iter Cachefs.save_run_counters cache

(* Under --profile, split stage hits between memory and disk so a warm
   cache is visible in the numbers, not just the wall clock. *)
let profile_stats profile ctx =
  if profile then begin
    let s = Pipeline.stats ctx in
    Format.eprintf
      "pipeline: %d memo hit(s), %d disk hit(s), %d disk miss(es), %d corrupt eviction(s)@."
      s.Pipeline.memo_hits s.Pipeline.disk_hits s.Pipeline.disk_misses
      s.Pipeline.corrupt_evictions
  end

let profile_cache profile cache =
  if profile then
    Option.iter
      (fun c ->
        let k = Cachefs.counters c in
        Format.eprintf "cache: %d disk hit(s), %d miss(es), %d corrupt, %d dropped write(s)@."
          k.Cachefs.hits k.Cachefs.misses k.Cachefs.corrupt k.Cachefs.write_failures)
      cache

(* --- show --- *)

let show source deps profile =
  with_profile profile @@ fun () ->
  with_errors (fun () ->
      let ctx = Pipeline.load source in
      Format.printf "// %s@.%a@." (Pipeline.origin ctx) Ir.pp_program (Pipeline.program ctx);
      Format.printf "%a@." Layout.pp (Pipeline.layout ctx);
      if deps then
        List.iter
          (fun (n : Ir.nest) ->
            let ds = Analysis.nest_dependences n in
            Format.printf "nest %d: %d dependence(s)@." n.Ir.nest_id (List.length ds);
            List.iter (fun d -> Format.printf "  %a@." Analysis.pp_dep d) ds;
            match Analysis.outermost_parallel_loop n with
            | Some k -> Format.printf "  outermost parallel loop: depth %d@." k
            | None -> Format.printf "  no parallelizable loop@.")
          (Pipeline.program ctx).Ir.nests)

(* --- restructure --- *)

let restructure source symbolic profile =
  with_profile profile @@ fun () ->
  with_errors (fun () ->
      let ctx = Pipeline.load source in
      let layout = Pipeline.layout ctx and program = Pipeline.program ctx in
      if symbolic then begin
        let ds = Symbolic.restructure layout program in
        Format.printf "%a@." Symbolic.pp ds
      end
      else begin
        let g = Pipeline.graph ctx in
        let s = Reuse.schedule layout program g in
        let table = Cluster.build_table layout program g in
        Format.printf
          "restructured %d iterations in %d round(s), %d disk visit(s)@."
          (Array.length s.Reuse.order) s.Reuse.rounds (List.length s.Reuse.visits);
        Format.printf "disk switches: %d original -> %d restructured@."
          (Reuse.disk_switches table (Dp_dependence.Concrete.original_order g))
          (Reuse.disk_switches table s.Reuse.order);
        List.iter
          (fun (d, n) -> Format.printf "  visit disk %d: %d iterations@." d n)
          s.Reuse.visits
      end)

(* --- trace --- *)

let trace source output procs restructured mode_name gaps with_hints faults_spec
    format_name cache_dir no_cache profile =
  with_profile profile @@ fun () ->
  with_errors (fun () ->
      check_procs procs;
      let format = trace_format_of_name format_name in
      if format = `Bin && output = None then
        fail "--format bin needs -o FILE (binary traces are not written to a terminal)";
      let cache = open_cache ~no_cache ~dir:cache_dir () in
      let ctx = Pipeline.load ?cache source in
      let mode = resolve_mode ~procs ~restructured mode_name in
      let reqs = Pipeline.trace ctx ~procs mode in
      let hints =
        if with_hints then Oracle.hints_of_trace ~disks:(Pipeline.disks ctx) reqs else []
      in
      let faults = faults_of_spec faults_spec in
      (match output with
      | Some path -> save_trace ~format ~hints ?faults path reqs
      | None when not gaps ->
          List.iter (fun r -> Format.printf "%a@." Request.pp r) reqs;
          List.iter (fun h -> Format.printf "%a@." Hint.pp h) hints;
          Option.iter (fun f -> Format.printf "F %s@." (Fault_model.to_spec f)) faults
      | None -> ());
      if gaps then begin
        let h = Dp_trace.Idle_stats.of_requests reqs in
        Format.printf "%a" Dp_trace.Idle_stats.pp h;
        Format.printf "TPM-exploitable idle (>= 15.2 s gaps): %.0f s@."
          (Dp_trace.Idle_stats.exploitable_mass_s h ~threshold_s:15.2)
      end;
      let s = Generate.summarize reqs in
      Format.eprintf "%d requests%s, %.1f MB, makespan %.1f s, io fraction %.1f%%@."
        s.Generate.requests
        (if with_hints then Printf.sprintf ", %d power hints" (List.length hints) else "")
        (float_of_int s.Generate.bytes /. 1024. /. 1024.)
        (s.Generate.makespan_ms /. 1000.)
        (100. *. Generate.io_fraction s);
      profile_stats profile ctx;
      finish_cache cache)

let policy_of_string = function
  | "none" | "base" -> Policy.No_pm
  | "tpm" -> Policy.default_tpm
  | "tpm-proactive" -> Policy.tpm ~proactive:true ()
  | "drpm" -> Policy.default_drpm
  | "drpm-proactive" -> Policy.drpm ~proactive:true ()
  | "online" -> Policy.default_adaptive
  | p ->
      fail
        "unknown policy %s (none | tpm | tpm-proactive | drpm | drpm-proactive | online | \
         oracle-tpm | oracle-drpm)"
        p

(* --- simulate --- *)

let simulate source procs restructured mode_name policy_name per_disk timeline faults_spec
    shards cache_dir no_cache profile =
  with_profile profile @@ fun () ->
  with_errors (fun () ->
      check_procs procs;
      check_shards shards;
      let cache = open_cache ~no_cache ~dir:cache_dir () in
      let ctx = Pipeline.load ?cache source in
      let mode = resolve_mode ~procs ~restructured mode_name in
      let disks = Pipeline.disks ctx in
      (* The oracle "policies" are offline bounds, not simulated
         controllers. *)
      (match Oracle.space_of_name policy_name with
      | Some space ->
          let reqs = Pipeline.trace ctx ~procs mode in
          let bound = Oracle.lower_bound ~space ~disks reqs in
          Format.printf "%a@." Oracle.pp_bound bound;
          Format.printf "analytic standby floor: %.1f J@."
            (Oracle.standby_floor_j bound.Oracle.base)
      | None ->
          let policy = policy_of_string policy_name in
          let faults = faults_of_spec faults_spec in
          let r =
            Pipeline.simulate ?faults ~record_timeline:timeline ~shards ctx ~procs ~policy
              mode
          in
          (match faults with
          | Some f -> Format.printf "%a@." Fault_model.pp f
          | None -> ());
          Format.printf "policy %s: energy %.1f J, disk I/O time %.1f s, makespan %.1f s@."
            r.Engine.policy r.Engine.energy_j
            (r.Engine.io_time_ms /. 1000.)
            (r.Engine.makespan_ms /. 1000.);
          Format.printf "%a@." (fun ppf r -> Engine.pp_reliability ppf r) r;
          if per_disk then
            Array.iter
              (fun d -> Format.printf "%a@." Engine.pp_disk_stats d)
              r.Engine.per_disk;
          (match r.Engine.timeline with
          | Some t ->
              print_string
                (Dp_disksim.Timeline.render ~model:Dp_disksim.Disk_model.ultrastar_36z15
                   ~until_ms:r.Engine.makespan_ms t)
          | None -> ());
          (* Also report against the no-PM baseline on the same trace. *)
          if policy <> Policy.No_pm then begin
            let base =
              Pipeline.simulate ?faults ~shards ctx ~procs ~policy:Policy.No_pm mode
            in
            Format.printf "normalized energy vs no-PM on this trace: %.3f@."
              (r.Engine.energy_j /. base.Engine.energy_j)
          end);
      profile_stats profile ctx;
      finish_cache cache)

(* --- report: the version matrix for one program --- *)

let report source procs jobs shards json_path obs cache_dir no_cache profile =
  with_profile profile @@ fun () ->
  with_errors (fun () ->
      check_jobs jobs;
      check_procs procs;
      check_shards shards;
      let cache = open_cache ~no_cache ~dir:cache_dir () in
      let app = Pipeline.app (Pipeline.load source) in
      let versions =
        (if procs = 1 then Dp_harness.Version.single_cpu else Dp_harness.Version.multi_cpu)
        @ Dp_harness.Version.oracle
      in
      let matrix =
        Dp_harness.Experiments.build_matrix ~apps:[ app ] ?cache ~obs ~jobs ~shards ~procs
          ~versions ()
      in
      Dp_harness.Experiments.fig_energy matrix Format.std_formatter;
      Dp_harness.Experiments.fig_perf matrix Format.std_formatter;
      (match json_path with
      | Some path ->
          Fsx.atomic_write path
            (Dp_harness.Json_out.to_string (Dp_harness.Json_out.of_matrix matrix) ^ "\n")
      | None -> ());
      profile_cache profile cache;
      finish_cache cache)

(* --- fault-sweep: degradation under increasing fault rates --- *)

let fault_sweep source procs jobs shards seed rates classes json_path obs_jsonl cache_dir
    no_cache profile =
  with_profile profile @@ fun () ->
  with_errors (fun () ->
      check_jobs jobs;
      check_procs procs;
      check_shards shards;
      let cache = open_cache ~no_cache ~dir:cache_dir () in
      let app = Pipeline.app (Pipeline.load source) in
      let classes =
        match classes with
        | None -> None
        | Some s -> (
            match Dp_faults.Fault_model.of_spec (Printf.sprintf "0:0:%s" s) with
            | Ok f -> Some f.Dp_faults.Fault_model.classes
            | Error msg -> fail "--classes: %s" msg)
      in
      let versions =
        if procs = 1 then Dp_harness.Version.single_cpu else Dp_harness.Version.multi_cpu
      in
      let sweep =
        Dp_harness.Experiments.fault_sweep ~seed ?rates ?cache ?classes
          ~obs:(obs_jsonl <> None) ~jobs ~shards ~procs ~versions app
      in
      Dp_harness.Experiments.fig_sweep sweep Format.std_formatter;
      (match json_path with
      | Some path ->
          Fsx.atomic_write path
            (Dp_harness.Json_out.to_string (Dp_harness.Json_out.of_sweep sweep) ^ "\n")
      | None -> ());
      (match obs_jsonl with
      | Some path ->
          (* One artifact for the whole ramp: every observed run's
             per-disk lines, concatenated in (rate, version) order —
             diff-ready input for [dpcc obs diff]. *)
          let b = Buffer.create 4096 in
          List.iter
            (fun (pt : Dp_harness.Experiments.sweep_point) ->
              List.iter
                (fun ((_ : Dp_harness.Version.t), (run : Dp_harness.Runner.run)) ->
                  match run.Dp_harness.Runner.obs with
                  | Some reports -> Buffer.add_string b (Dp_obs.Report.jsonl reports)
                  | None -> ())
                pt.Dp_harness.Experiments.runs)
            sweep.Dp_harness.Experiments.points;
          Fsx.atomic_write path (Buffer.contents b);
          Format.eprintf "observability: gap-histogram artifact written to %s@." path
      | None -> ());
      profile_cache profile cache;
      finish_cache cache)

(* --- serve: the multi-tenant server-array experiment --- *)

let serve tenants seed disks jitter_ms policy_name jobs shards faults_spec decay_spec
    scrub_ms spare deadline json obs_jsonl live cache_dir no_cache profile =
  with_profile profile @@ fun () ->
  with_errors (fun () ->
      check_jobs jobs;
      check_shards shards;
      if tenants < 1 then fail "--tenants must be at least 1 (got %d)" tenants;
      if disks < 1 then fail "--disks must be at least 1 (got %d)" disks;
      if jitter_ms < 0.0 then fail "--jitter-ms must be non-negative (got %g)" jitter_ms;
      let selection =
        match Dp_serve.Serve.selection_of_name policy_name with
        | Some s -> s
        | None -> fail "unknown --policy %s (expected all | offline | online | oracle)" policy_name
      in
      if faults_spec <> None && decay_spec <> None then
        fail "--decay cannot be combined with --faults (--decay SEED:RATE is shorthand \
              for --faults SEED:RATE:d)";
      let faults =
        match decay_spec with
        | None -> faults_of_spec faults_spec
        | Some spec -> (
            (* SEED:RATE, reusing the fault-spec field validation; the
               shape check runs first so the diagnostic never leaks the
               internal ":d" class suffix. *)
            (match String.split_on_char ':' spec with
            | [ _; _ ] -> ()
            | _ -> fail "--decay: bad decay spec %S (expected SEED:RATE)" spec);
            match Fault_model.of_spec (spec ^ ":d") with
            | Ok f -> Some f
            | Error msg -> fail "--decay: %s" msg)
      in
      if scrub_ms < 0.0 then fail "--scrub-ms must be non-negative (got %g)" scrub_ms;
      (match spare with
      | Some n when n < 1 -> fail "--spare must be at least 1 block (got %d)" n
      | _ -> ());
      (match deadline with
      | Some d when d <= 0.0 -> fail "--deadline must be positive (got %g)" d
      | _ -> ());
      let repair =
        if scrub_ms > 0.0 then Some (Repair.config ~scrub_budget_ms:scrub_ms ())
        else None
      in
      (* Decay without an explicit deadline serves under the default SLO,
         so `dpcc serve --decay SEED:RATE` reports availability next to
         energy out of the box. *)
      let deadline_ms =
        match deadline with
        | Some d -> Some d
        | None ->
            if
              match faults with
              | Some f ->
                  f.Fault_model.rate > 0.0
                  && List.mem Fault_model.Media_decay f.Fault_model.classes
              | None -> false
            then Some 500.0
            else None
      in
      let cache = open_cache ~no_cache ~dir:cache_dir () in
      let cfg =
        Dp_serve.Serve.config ~disks ~jitter_ms ~jobs ~shards ~selection ?faults ?repair
          ?deadline_ms ?spare_blocks:spare ~obs:(obs_jsonl <> None) ~live ~tenants ~seed
          ()
      in
      let report = Dp_serve.Serve.run ?cache cfg in
      (* Rows render their live frames into their own buffers during the
         fan-out; printing them here in row order keeps the byte stream
         identical across --jobs settings. *)
      if live then
        List.iter
          (fun (row : Dp_serve.Serve.row) ->
            match row.Dp_serve.Serve.frames with
            | Some frames ->
                Format.printf "== live: %s ==@." row.Dp_serve.Serve.label;
                print_string frames
            | None -> ())
          report.Dp_serve.Serve.rows;
      (match obs_jsonl with
      | Some path ->
          let b = Buffer.create 4096 in
          List.iter
            (fun (row : Dp_serve.Serve.row) ->
              match row.Dp_serve.Serve.obs with
              | Some reports -> Buffer.add_string b (Dp_obs.Report.jsonl reports)
              | None -> ())
            report.Dp_serve.Serve.rows;
          Fsx.atomic_write path (Buffer.contents b);
          Format.eprintf "observability: gap-histogram artifact written to %s@." path
      | None -> ());
      (match json with
      | Some "-" ->
          print_string (Dp_harness.Json_out.to_string (Dp_harness.Json_out.of_serve report));
          print_newline ()
      | Some path ->
          Fsx.atomic_write path
            (Dp_harness.Json_out.to_string (Dp_harness.Json_out.of_serve report) ^ "\n");
          Format.printf "%a@." Dp_serve.Serve.pp_report report
      | None -> Format.printf "%a@." Dp_serve.Serve.pp_report report);
      profile_cache profile cache;
      finish_cache cache)

(* --- cache: inspect / clear the persistent stage store --- *)

let resolved_cache_dir = function Some d -> d | None -> Cachefs.default_dir ()

(* Sizes rendered for humans: a store holding megabytes of traces
   should not print a nine-digit byte count. *)
let human_bytes n =
  let f = float_of_int n in
  if n < 1024 then Printf.sprintf "%d B" n
  else if f < 1024. *. 1024. then Printf.sprintf "%.1f KB" (f /. 1024.)
  else Printf.sprintf "%.1f MB" (f /. (1024. *. 1024.))

let cache_stat dir_opt json =
  with_errors (fun () ->
      let dir = resolved_cache_dir dir_opt in
      let u = Cachefs.usage ~dir in
      let counters = Cachefs.load_run_counters ~dir in
      if json then begin
        let module J = Dp_harness.Json_out in
        let last_run =
          match counters with
          | None -> J.Null
          | Some k ->
              J.Obj
                [
                  ("hits", J.Int k.Cachefs.hits);
                  ("misses", J.Int k.Cachefs.misses);
                  ("corrupt", J.Int k.Cachefs.corrupt);
                  ("dropped_writes", J.Int k.Cachefs.write_failures);
                ]
        in
        print_string
          (J.to_string
             (J.Obj
                [
                  ("dir", J.String dir);
                  ("entries", J.Int u.Cachefs.entries);
                  ("bytes", J.Int u.Cachefs.bytes);
                  ( "formats",
                    J.Obj
                      [
                        ( "trace_bin",
                          J.Obj
                            [
                              ("entries", J.Int u.Cachefs.trace_entries);
                              ("bytes", J.Int u.Cachefs.trace_bytes);
                            ] );
                        ( "marshal",
                          J.Obj
                            [
                              ("entries", J.Int (u.Cachefs.entries - u.Cachefs.trace_entries));
                              ("bytes", J.Int (u.Cachefs.bytes - u.Cachefs.trace_bytes));
                            ] );
                      ] );
                  ("quarantined", J.Int u.Cachefs.quarantined);
                  ("temp", J.Int u.Cachefs.temp);
                  ("last_run", last_run);
                ]));
        print_newline ()
      end
      else begin
        Format.printf "cache directory: %s@." dir;
        Format.printf "entries: %d (%s)@." u.Cachefs.entries (human_bytes u.Cachefs.bytes);
        if u.Cachefs.entries > 0 then
          Format.printf "  binary traces: %d (%s), marshal: %d (%s)@."
            u.Cachefs.trace_entries
            (human_bytes u.Cachefs.trace_bytes)
            (u.Cachefs.entries - u.Cachefs.trace_entries)
            (human_bytes (u.Cachefs.bytes - u.Cachefs.trace_bytes));
        Format.printf "quarantined: %d, leftover temp files: %d@." u.Cachefs.quarantined
          u.Cachefs.temp;
        match counters with
        | None -> Format.printf "last run: no statistics recorded@."
        | Some k ->
            Format.printf "last run: %d hit(s), %d miss(es), %d corrupt, %d dropped write(s)@."
              k.Cachefs.hits k.Cachefs.misses k.Cachefs.corrupt k.Cachefs.write_failures
      end)

let cache_clear dir_opt =
  with_errors (fun () ->
      let dir = resolved_cache_dir dir_opt in
      let removed = Cachefs.clear ~dir in
      Format.printf "removed %d cache entrie(s) from %s@." removed dir)

(* --- obs: analyze observability artifacts --- *)

let obs_diff file_a file_b json threshold =
  (match threshold with
  | Some t when t < 0.0 ->
      Format.eprintf "dpcc: --threshold must be non-negative (got %g)@." t;
      exit 2
  | _ -> ());
  let load path =
    match Dp_obs.Diff.load path with
    | Ok sides -> sides
    | Error msg ->
        Format.eprintf "dpcc: %s@." msg;
        exit 2
  in
  let a = load file_a and b = load file_b in
  match Dp_obs.Diff.diff ~a ~b with
  | Error msg ->
      Format.eprintf "dpcc: %s@." msg;
      exit 2
  | Ok r -> (
      if json then print_string (Dp_obs.Diff.to_json r)
      else Format.printf "%a@." Dp_obs.Diff.pp r;
      match threshold with
      | Some t when Dp_obs.Diff.exceeds ~threshold:t r ->
          Format.eprintf "dpcc: distribution shift: max KS %.6f exceeds --threshold %g@."
            r.Dp_obs.Diff.max_ks t;
          exit 1
      | _ -> ())

(* --- emit --- *)

let emit source output =
  with_errors (fun () ->
      let ctx = Pipeline.load source in
      let stripes =
        List.map
          (fun (e : Layout.entry) ->
            (e.Layout.decl.Ir.name, Dp_lang.Emit.stripe_spec e.Layout.striping))
          (Pipeline.layout ctx).Layout.entries
      in
      let text = Dp_lang.Emit.to_string ~stripes (Pipeline.program ctx) in
      match output with
      | Some path ->
          let oc = open_out path in
          Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text)
      | None -> print_string text)

(* --- convert: trace files between the text and binary formats --- *)

let convert input output format_name =
  with_errors (fun () ->
      let reqs, hints, faults =
        match Bin.load_result input with
        | Ok v -> v
        | Error e -> fail "%s" (Request.load_error_to_string e)
      in
      let format =
        match format_name with
        (* No --format: convert to the opposite of what the input is. *)
        | None -> if Bin.sniff input then `Text else `Bin
        | Some name -> trace_format_of_name name
      in
      save_trace ~format ~hints ?faults output reqs;
      Format.eprintf "%s: %d requests, %d hints -> %s (%s)@." input (List.length reqs)
        (List.length hints) output
        (match format with `Bin -> "binary" | `Text -> "text"))

(* --- chaos: randomized fault-schedule soak with differential oracles ---

   Scenarios stream from one root seed; every failing one becomes a
   reproducer directory (shrunk first under --shrink).  Exit 0 when the
   soak is green, 1 when any violation survives, 2 on bad flags — the
   CI contract. *)

let chaos_outcome_json (s : Dp_chaos.Scenario.t) (o : Dp_chaos.Check.outcome) =
  let module J = Dp_harness.Json_out in
  J.Obj
    [
      ("token", J.String (Dp_chaos.Scenario.token_string s));
      ("scenario", J.String (Dp_chaos.Scenario.describe s));
      ("runs", J.Int o.Dp_chaos.Check.runs);
      ("requests", J.Int o.Dp_chaos.Check.requests);
      ( "violations",
        J.List
          (List.map
             (fun (v : Dp_chaos.Check.violation) ->
               J.Obj
                 [
                   ("check", J.String v.Dp_chaos.Check.check);
                   ("detail", J.String v.Dp_chaos.Check.detail);
                 ])
             o.Dp_chaos.Check.violations) );
    ]

let chaos_emit_json json payload =
  match json with
  | None -> ()
  | Some "-" -> print_string (Dp_harness.Json_out.to_string payload ^ "\n")
  | Some path -> Fsx.atomic_write path (Dp_harness.Json_out.to_string payload ^ "\n")

let chaos seed budget wall_ms shrink replay_dir sabotage_name out_dir json profile =
  with_profile profile @@ fun () ->
  with_errors (fun () ->
      let sabotage =
        match sabotage_name with
        | None -> None
        | Some name -> (
            match Dp_chaos.Check.sabotage_of_name name with
            | Some _ as s -> s
            | None ->
                fail "unknown --sabotage %s (expected %s)" name
                  (String.concat " | "
                     (List.map Dp_chaos.Check.sabotage_name Dp_chaos.Check.all_sabotages)))
      in
      (match budget with
      | Some n when n < 1 -> fail "--budget must be at least 1 (got %d)" n
      | _ -> ());
      (match wall_ms with
      | Some t when t <= 0.0 -> fail "--wall-ms must be positive (got %g)" t
      | _ -> ());
      match replay_dir with
      | Some dir -> (
          match Dp_chaos.Chaos.replay ?sabotage ~dir () with
          | Error msg -> fail "--replay %s: %s" dir msg
          | Ok (s, outcome) ->
              let module J = Dp_harness.Json_out in
              chaos_emit_json json
                (J.Obj [ ("replay", J.String dir); ("result", chaos_outcome_json s outcome) ]);
              (match outcome.Dp_chaos.Check.violations with
              | [] ->
                  if json = None then
                    Format.printf "replay %s: clean (%s; %d runs)@." dir
                      (Dp_chaos.Scenario.describe s) outcome.Dp_chaos.Check.runs
              | vs ->
                  if json = None then begin
                    Format.printf "replay %s: %d violation%s (%s)@." dir (List.length vs)
                      (if List.length vs = 1 then "" else "s")
                      (Dp_chaos.Scenario.describe s);
                    List.iter
                      (fun (v : Dp_chaos.Check.violation) ->
                        Format.printf "  %s: %s@." v.Dp_chaos.Check.check
                          v.Dp_chaos.Check.detail)
                      vs
                  end;
                  exit 1))
      | None ->
          let cfg =
            {
              Dp_chaos.Chaos.seed;
              budget;
              wall_ms;
              shrink;
              sabotage;
              out_dir;
            }
          in
          let progress (n, s, (o : Dp_chaos.Check.outcome)) =
            if json = None && o.Dp_chaos.Check.violations <> [] then
              Format.printf "scenario %d (token %s): %d violation%s — %s@." n
                (Dp_chaos.Scenario.token_string s)
                (List.length o.Dp_chaos.Check.violations)
                (if List.length o.Dp_chaos.Check.violations = 1 then "" else "s")
                (Dp_chaos.Scenario.describe s)
          in
          let summary = Dp_chaos.Chaos.soak ~progress cfg in
          let module J = Dp_harness.Json_out in
          chaos_emit_json json
            (J.Obj
               [
                 ("seed", J.Int seed);
                 ("scenarios", J.Int summary.Dp_chaos.Chaos.scenarios);
                 ("runs", J.Int summary.Dp_chaos.Chaos.runs);
                 ("elapsed_ms", J.Float summary.Dp_chaos.Chaos.elapsed_ms);
                 ( "findings",
                   J.List
                     (List.map
                        (fun (f : Dp_chaos.Chaos.finding) ->
                          let shrink_fields =
                            match (f.Dp_chaos.Chaos.shrunk, f.Dp_chaos.Chaos.shrink_stats)
                            with
                            | Some small, Some st ->
                                [
                                  ( "shrunk",
                                    J.Obj
                                      [
                                        ( "nests",
                                          J.Int (Dp_chaos.Scenario.nest_count small) );
                                        ( "fault_classes",
                                          J.Int (Dp_chaos.Scenario.fault_class_count small)
                                        );
                                        ("attempts", J.Int st.Dp_chaos.Shrink.attempts);
                                        ("kept", J.Int st.Dp_chaos.Shrink.kept);
                                      ] );
                                ]
                            | _ -> []
                          in
                          J.Obj
                            ([
                               ( "result",
                                 chaos_outcome_json f.Dp_chaos.Chaos.scenario
                                   f.Dp_chaos.Chaos.outcome );
                               ("repro_dir", J.String f.Dp_chaos.Chaos.repro_dir);
                             ]
                            @ shrink_fields))
                        summary.Dp_chaos.Chaos.findings) );
               ]);
          if json = None then
            Format.printf "chaos: %d scenarios, %d engine runs, %d finding%s (%.0f ms)@."
              summary.Dp_chaos.Chaos.scenarios summary.Dp_chaos.Chaos.runs
              (List.length summary.Dp_chaos.Chaos.findings)
              (if List.length summary.Dp_chaos.Chaos.findings = 1 then "" else "s")
              summary.Dp_chaos.Chaos.elapsed_ms;
          List.iter
            (fun (f : Dp_chaos.Chaos.finding) ->
              if json = None then
                Format.printf "  reproducer: %s (replay: %s)@." f.Dp_chaos.Chaos.repro_dir
                  (Dp_chaos.Repro.replay_command ?sabotage ~dir:f.Dp_chaos.Chaos.repro_dir ()))
            summary.Dp_chaos.Chaos.findings;
          if summary.Dp_chaos.Chaos.findings <> [] then exit 1)

(* --- cmdliner wiring --- *)

open Cmdliner

let source_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"PROG" ~doc:"A .dpl source file, or app:NAME for a built-in workload")

let procs_arg =
  Arg.(value & opt int 1 & info [ "procs"; "p" ] ~docv:"N" ~doc:"Number of processors")

let restructured_arg =
  Arg.(
    value & flag
    & info [ "restructure"; "t" ]
        ~doc:
          "Apply disk-reuse restructuring (defaults to the single-CPU algorithm at one \
           processor and the layout-aware scheme when --procs > 1; override with --mode)")

let mode_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "mode" ] ~docv:"single|multi"
        ~doc:
          "Which restructured stream family to produce (requires --restructure): single \
           (the single-CPU reuse algorithm applied per processor, fork-join barriers \
           kept — the T-*-s rows) or multi (the layout-aware parallelization, per-CPU \
           disk tours, needs --procs > 1 — the T-*-m rows)")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Run matrix rows on N domains in parallel; results are deterministic — output \
           is byte-identical to --jobs 1")

let shards_arg =
  Arg.(
    value & opt int 1
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Fan each simulation across up to N domains: every trace segment splits into \
           the connected components of its processor-disk interaction graph and the \
           components run in parallel, rejoining at the segment barrier.  Results are \
           byte-identical to --shards 1.  Composes with --jobs (rows x intra-run \
           shards).")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Time the compiler passes (dependence-graph build, reuse scheduling, layout \
           unification, pipeline stages, trace generation, simulation) and print a \
           per-pass table to stderr")

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Persistent stage-cache directory (default: \\$DPOWER_CACHE_DIR, else \
           \\$XDG_CACHE_HOME/dpower, else ~/.cache/dpower)")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:
          "Bypass the persistent stage cache entirely (compute every stage in memory; \
           output is identical either way)")

let show_cmd =
  let deps = Arg.(value & flag & info [ "deps" ] ~doc:"Also print dependence analysis") in
  Cmd.v
    (Cmd.info "show" ~doc:"Parse a program and print its IR, layout and analyses")
    Term.(const show $ source_arg $ deps $ profile_arg)

let restructure_cmd =
  let symbolic =
    Arg.(
      value & flag
      & info [ "symbolic" ]
          ~doc:
            "Emit the omega-lite transformed loop nests (dependence-free programs only) \
             instead of the concrete schedule summary")
  in
  Cmd.v
    (Cmd.info "restructure" ~doc:"Print the disk-reuse restructuring of a program")
    Term.(const restructure $ source_arg $ symbolic $ profile_arg)

let trace_cmd =
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Trace file")
  in
  let gaps =
    Arg.(value & flag & info [ "gaps" ] ~doc:"Print the per-disk idle-gap histogram")
  in
  let hints =
    Arg.(
      value & flag
      & info [ "hints" ]
          ~doc:
            "Also emit the compiler power-hint stream (spin-down, pre-spin-up and \
             set-RPM directives planned on the nominal timeline) into the trace")
  in
  let faults =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"SEED:RATE:CLASSES"
          ~doc:"Embed a fault-injection window (an F line) into the trace")
  in
  let format =
    Arg.(
      value & opt string "text"
      & info [ "format" ] ~docv:"text|bin"
          ~doc:
            "Trace file format: text (the human line format) or bin (the chunked, \
             checksummed binary codec — a fraction of the size, streamable; needs -o).  \
             Both carry the same requests, hints and fault window; dpsim auto-detects \
             either.")
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Generate the timed I/O request trace of a program")
    Term.(
      const trace $ source_arg $ output $ procs_arg $ restructured_arg $ mode_arg $ gaps
      $ hints $ faults $ format $ cache_dir_arg $ no_cache_arg $ profile_arg)

let simulate_cmd =
  let policy =
    Arg.(
      value & opt string "none"
      & info [ "policy" ] ~docv:"P"
          ~doc:
            "none | tpm | tpm-proactive | drpm | drpm-proactive | oracle-tpm | oracle-drpm \
             (proactive policies execute compiler hints; oracle-* print the offline-optimal \
             bound instead of simulating)")
  in
  let per_disk = Arg.(value & flag & info [ "per-disk" ] ~doc:"Print per-disk statistics") in
  let timeline =
    Arg.(value & flag & info [ "timeline" ] ~doc:"Render the per-disk power-state chart")
  in
  let faults =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"SEED:RATE:CLASSES"
          ~doc:
            "Arm the deterministic fault injector, e.g. 42:0.01:all or 7:0.05:sm \
             (s spin-up, m media, l latency spike, r stuck RPM, d media decay)")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run the trace-driven disk power simulation")
    Term.(
      const simulate $ source_arg $ procs_arg $ restructured_arg $ mode_arg $ policy
      $ per_disk $ timeline $ faults $ shards_arg $ cache_dir_arg $ no_cache_arg
      $ profile_arg)

let report_cmd =
  let json =
    Arg.(
      value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc:"Also write JSON results")
  in
  let obs =
    Arg.(
      value & flag
      & info [ "obs" ]
          ~doc:
            "Attach per-run observability reports (idle-gap / response-time / \
             standby-residency histograms); they appear under \"obs\" in the JSON output")
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Run the full version matrix for a program and print figures")
    Term.(
      const report $ source_arg $ procs_arg $ jobs_arg $ shards_arg $ json $ obs
      $ cache_dir_arg $ no_cache_arg $ profile_arg)

let fault_sweep_cmd =
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Fault injector seed")
  in
  let rates =
    Arg.(
      value
      & opt (some (list float)) None
      & info [ "rates" ] ~docv:"R1,R2,..."
          ~doc:"Fault rates to sweep (default 0,0.001,0.01,0.05,0.1)")
  in
  let classes =
    Arg.(
      value
      & opt (some string) None
      & info [ "classes" ] ~docv:"CLASSES"
          ~doc:
            "Fault classes: letters from smlr (s spin-up, m media, l latency spike, \
             r stuck RPM, d media decay) or all")
  in
  let json =
    Arg.(
      value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc:"Also write JSON results")
  in
  let obs_jsonl =
    Arg.(
      value
      & opt (some string) None
      & info [ "obs-jsonl" ] ~docv:"FILE"
          ~doc:
            "Write the ramp's gap-histogram artifact (one JSON object per disk per \
             observed run, concatenated in rate then version order) — the input format \
             of 'dpcc obs diff'")
  in
  Cmd.v
    (Cmd.info "fault-sweep"
       ~doc:
         "Re-simulate the version matrix of a program across a fault-rate ramp (same seed \
          at every point) and report energy and degraded time per version")
    Term.(
      const fault_sweep $ source_arg $ procs_arg $ jobs_arg $ shards_arg $ seed $ rates
      $ classes $ json $ obs_jsonl $ cache_dir_arg $ no_cache_arg $ profile_arg)

let emit_cmd =
  let output =
    Arg.(
      value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file")
  in
  Cmd.v
    (Cmd.info "emit" ~doc:"Emit a program back as .dpl source (with its striping)")
    Term.(const emit $ source_arg $ output)

let convert_cmd =
  let input =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"IN" ~doc:"Input trace file (text or binary, auto-detected)")
  in
  let output =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"OUT" ~doc:"Output trace file")
  in
  let format =
    Arg.(
      value
      & opt (some string) None
      & info [ "format" ] ~docv:"text|bin"
          ~doc:"Output format (default: the opposite of the input's)")
  in
  Cmd.v
    (Cmd.info "convert"
       ~doc:
         "Convert a trace file between the text and binary formats (lossless both ways: \
          requests, hints and the fault window all carry over)")
    Term.(const convert $ input $ output $ format)

let serve_cmd =
  let tenants =
    Arg.(
      value & opt int 10
      & info [ "tenants"; "n" ] ~docv:"N"
          ~doc:
            "Number of tenants multiplexed onto the array: every fourth replays a window \
             of one of the six paper applications, the rest are seeded synthetic OLTP \
             streams")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"S"
          ~doc:
            "Master seed: tenant parameters and arrival jitter derive from it, so equal \
             seeds give byte-identical reports")
  in
  let disks =
    Arg.(value & opt int 8 & info [ "disks"; "d" ] ~docv:"N" ~doc:"Array size (I/O nodes)")
  in
  let jitter =
    Arg.(
      value & opt float 30_000.0
      & info [ "jitter-ms" ] ~docv:"MS"
          ~doc:"Tenant start offsets are uniform in [0, MS) — the arrival-time spread")
  in
  let policy =
    Arg.(
      value & opt string "all"
      & info [ "policy" ] ~docv:"P"
          ~doc:
            "Which rows to compute: offline (per-tenant compiler hints executed on the \
             merged stream), online (the epoch-based adaptive policy), oracle (the \
             offline-optimal bound alone), or all")
  in
  let faults =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"SEED:RATE:CLASSES"
          ~doc:
            "Arm the deterministic fault injector for the simulated rows, e.g. \
             42:0.01:all or 7:0.05:smd (s spin-up, m media, l latency spike, r stuck \
             RPM, d media decay).  The oracle bound stays fault-free.")
  in
  let decay =
    Arg.(
      value
      & opt (some string) None
      & info [ "decay" ] ~docv:"SEED:RATE"
          ~doc:
            "Shorthand for --faults SEED:RATE:d — persistent media decay only.  Grown \
             bad sectors are remapped to each disk's spare pool; past the failure \
             threshold the slot is served degraded from its mirror and rebuilt onto a \
             hot spare.  Arms a default 500 ms deadline unless --deadline is given.")
  in
  let scrub =
    Arg.(
      value & opt float 0.0
      & info [ "scrub-ms" ] ~docv:"MS"
          ~doc:
            "Background-scrub budget per idle gap (milliseconds of verification reads, \
             preempted by foreground arrivals); 0 disables scrubbing")
  in
  let spare =
    Arg.(
      value
      & opt (some int) None
      & info [ "spare" ] ~docv:"BLOCKS" ~doc:"Per-disk spare-pool size override")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"MS"
          ~doc:
            "Per-request SLO deadline: responses past it count as violations, past four \
             deadlines as abandoned; media-error retry storms that blow it fail over to \
             the mirror")
  in
  let json =
    Arg.(
      value
      & opt ~vopt:(Some "-") (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the report as JSON to FILE ('-' or no value: stdout, replacing the \
             human table)")
  in
  let obs_jsonl =
    Arg.(
      value
      & opt (some string) None
      & info [ "obs-jsonl" ] ~docv:"FILE"
          ~doc:
            "Write the per-row gap-histogram artifact (one JSON object per disk per \
             simulated row, concatenated in row order) — the input format of 'dpcc obs \
             diff'")
  in
  let live =
    Arg.(
      value & flag
      & info [ "live" ]
          ~doc:
            "Render each simulated row's live per-disk console (plain periodic frames, \
             keyed on simulated time; printed in row order before the report, so output \
             is byte-identical across --jobs)")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Multiplex N tenant workloads onto one disk array and compare offline compiler \
          hints, online adaptation and the oracle bound")
    Term.(
      const serve $ tenants $ seed $ disks $ jitter $ policy $ jobs_arg $ shards_arg
      $ faults $ decay $ scrub $ spare $ deadline $ json $ obs_jsonl $ live
      $ cache_dir_arg $ no_cache_arg $ profile_arg)

let chaos_cmd =
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"S"
          ~doc:
            "Root seed of the soak: scenario N of seed S is always the same scenario, so \
             a soak log line plus this flag is a complete reproducer")
  in
  let budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget" ] ~docv:"N"
          ~doc:
            "Number of scenarios to run (default 100 when neither --budget nor --wall-ms \
             is given)")
  in
  let wall_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "wall-ms" ] ~docv:"MS"
          ~doc:
            "Stop drawing new scenarios once MS milliseconds have elapsed (the scenario \
             in flight finishes) — the nightly-soak budget knob")
  in
  let shrink =
    Arg.(
      value & flag
      & info [ "shrink" ]
          ~doc:
            "Delta-debug every failing scenario before writing its reproducer: drop loop \
             nests and statements, thin the fault schedule, zero the knobs — keeping \
             each step only if the oracle still fails")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"DIR"
          ~doc:
            "Re-run a reproducer directory (written by a previous soak) through the \
             oracle instead of soaking")
  in
  let sabotage =
    Arg.(
      value
      & opt (some string) None
      & info [ "sabotage" ] ~docv:"KIND"
          ~doc:
            "Deliberately break an invariant (test hook): 'energy' skews the observed \
             power-span sum so the conservation check must fire — exercises the \
             catch-shrink-replay path end to end")
  in
  let out_dir =
    Arg.(
      value
      & opt string Dp_chaos.Chaos.default_out_dir
      & info [ "out" ] ~docv:"DIR" ~doc:"Directory reproducer directories are written under")
  in
  let json =
    Arg.(
      value
      & opt ~vopt:(Some "-") (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the soak (or replay) summary as JSON to FILE ('-' or no value: \
             stdout, replacing the human lines)")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Randomized fault-schedule soak: generate scenarios from a seed, run each under \
          paired configurations with differential oracles, shrink failures to minimal \
          reproducer directories")
    Term.(
      const chaos $ seed $ budget $ wall_ms $ shrink $ replay $ sabotage $ out_dir $ json
      $ profile_arg)

let cache_subcommand_docs =
  [
    ("stat", "Entry count, size and the previous run's hit statistics");
    ("clear", "Remove every entry, quarantined file and temp file");
  ]

let cache_cmd =
  let stat_json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the statistics as one JSON object (entries, bytes, quarantined, temp, \
             and the previous run's hit/miss/corrupt/dropped-write counters) instead of \
             the human table")
  in
  let stat_cmd =
    Cmd.v
      (Cmd.info "stat" ~doc:(List.assoc "stat" cache_subcommand_docs))
      Term.(const cache_stat $ cache_dir_arg $ stat_json)
  in
  let clear_cmd =
    Cmd.v
      (Cmd.info "clear" ~doc:(List.assoc "clear" cache_subcommand_docs))
      Term.(const cache_clear $ cache_dir_arg)
  in
  Cmd.group
    (Cmd.info "cache" ~doc:"Inspect or clear the persistent stage cache")
    [ stat_cmd; clear_cmd ]

let obs_subcommand_docs =
  [
    ( "diff",
      "Compare two gap-histogram JSONL artifacts: KS / earth-mover distance per disk \
       and distribution, with energy / response / residency deltas" );
  ]

let obs_cmd =
  (* Plain strings, not Arg.file: cmdliner's existence check exits with
     its own CLI-error status, while a missing artifact should get the
     same one-line exit-2 diagnostic as any other malformed input. *)
  let file_a =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"A" ~doc:"Baseline artifact")
  in
  let file_b =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"B" ~doc:"Candidate artifact")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit one JSON object (per-line shift statistics plus max_ks / max_emd) \
             instead of the human table")
  in
  let threshold =
    Arg.(
      value
      & opt (some float) None
      & info [ "threshold" ] ~docv:"KS"
          ~doc:
            "Exit 1 when the worst KS statistic across every line and distribution \
             exceeds KS (the diff is still printed)")
  in
  let diff_cmd =
    Cmd.v
      (Cmd.info "diff" ~doc:(List.assoc "diff" obs_subcommand_docs))
      Term.(const obs_diff $ file_a $ file_b $ json $ threshold)
  in
  Cmd.group
    (Cmd.info "obs" ~doc:"Analyze observability artifacts")
    [ diff_cmd ]

(* cmdliner's own unknown-command diagnostic is a terse hint; a wrong
   subcommand deserves the full command list.  Scan argv before handing
   over: the first non-flag argument must name a known command. *)
let command_docs =
  [
    ("show", "Parse a program and print its IR, layout and analyses");
    ("restructure", "Print the disk-reuse restructuring of a program");
    ("trace", "Generate the timed I/O request trace of a program");
    ("simulate", "Run the trace-driven disk power simulation");
    ("emit", "Emit a program back as .dpl source (with its striping)");
    ("convert", "Convert a trace file between the text and binary formats");
    ("report", "Run the full version matrix for a program and print figures");
    ("fault-sweep", "Re-simulate the version matrix across a fault-rate ramp");
    ("serve", "Multiplex N tenants onto one array: offline hints vs online adaptation");
    ("chaos", "Randomized fault-schedule soak with differential oracles and shrinking");
    ("cache", "Inspect or clear the persistent stage cache");
    ("obs", "Analyze observability artifacts (diff gap-histogram JSONL files)");
  ]

(* cmdliner accepts unambiguous command prefixes; only a name that
   matches no command at all is truly unknown. *)
let prefix_of arg (name, _) =
  String.length arg <= String.length name
  && String.equal arg (String.sub name 0 (String.length arg))

let unknown_command ~usage ~docs arg =
  Format.eprintf "dpcc: unknown command %S@.@.Usage: %s@.@.Commands:@." arg usage;
  List.iter (fun (n, d) -> Format.eprintf "  %-12s %s@." n d) docs;
  Format.eprintf "@.Run 'dpcc COMMAND --help' for command-specific options.@.";
  exit 2

let check_subcommand () =
  if Array.length Sys.argv > 1 then begin
    let arg = Sys.argv.(1) in
    if String.length arg > 0 && arg.[0] <> '-' then
      match List.filter (prefix_of arg) command_docs with
      | [] -> unknown_command ~usage:"dpcc COMMAND ..." ~docs:command_docs arg
      | [ (name, _) ] -> (
          (* [cache] and [obs] are themselves command groups: vet their
             subcommand too so [dpcc cache bogus] / [dpcc obs bogus] are
             usage errors (exit 2), not cmdliner's generic CLI failure.
             A group is vetted only when the prefix resolves to exactly
             one command — "c" is ambiguous between cache and convert,
             and cmdliner reports that itself. *)
          let groups = [ ("cache", cache_subcommand_docs); ("obs", obs_subcommand_docs) ] in
          match List.assoc_opt name groups with
          | Some docs when Array.length Sys.argv > 2 ->
              let sub = Sys.argv.(2) in
              if
                String.length sub > 0
                && sub.[0] <> '-'
                && not (List.exists (prefix_of sub) docs)
              then
                unknown_command ~usage:(Printf.sprintf "dpcc %s COMMAND ..." name) ~docs
                  sub
          | _ -> ())
      | _ :: _ :: _ -> (* ambiguous prefix: cmdliner lists the candidates *) ()
  end

let () =
  check_subcommand ();
  let info =
    Cmd.info "dpcc" ~version:"1.0.0"
      ~doc:"Compiler-guided disk power reduction (CGO 2006 reproduction)"
  in
  exit
    (Cmd.eval ~term_err:2
       (Cmd.group info
          [
            show_cmd; restructure_cmd; trace_cmd; simulate_cmd; emit_cmd; convert_cmd;
            report_cmd; fault_sweep_cmd; serve_cmd; chaos_cmd; cache_cmd; obs_cmd;
          ]))
