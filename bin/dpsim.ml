(* dpsim — trace-driven disk power simulator.

   Replays a trace file (as produced by [dpcc trace -o ...]) against a
   disk configuration and power-management policy, and reports energy and
   performance statistics.  Compiler power hints embedded in the trace
   ([H ...] lines, from [dpcc trace --hints]) are executed by the
   proactive policies; the oracle policies print the offline-optimal
   energy bound instead of simulating. *)

module Request = Dp_trace.Request
module Engine = Dp_disksim.Engine
module Policy = Dp_disksim.Policy
module Disk_model = Dp_disksim.Disk_model
module Oracle = Dp_oracle.Oracle

open Cmdliner

let run trace_file disks policy_name threshold proactive window downshift per_disk =
  try
    let reqs, hints = Request.load_with_hints trace_file in
    let oracle_space =
      match policy_name with
      | "oracle-tpm" -> Some Oracle.Tpm_space
      | "oracle-drpm" -> Some Oracle.Drpm_space
      | "oracle" -> Some Oracle.Full_space
      | _ -> None
    in
    match oracle_space with
    | Some space ->
        let bound = Oracle.lower_bound ~space ~disks reqs in
        Format.printf "trace: %s (%d requests)@." trace_file (List.length reqs);
        Format.printf "model: %s@." Disk_model.ultrastar_36z15.Disk_model.name;
        Format.printf "%a@." Oracle.pp_bound bound;
        Format.printf "analytic standby floor: %.1f J@."
          (Oracle.standby_floor_j bound.Oracle.base)
    | None ->
        let policy =
          match policy_name with
          | "none" | "base" -> Policy.No_pm
          | "tpm" -> Policy.tpm ?idle_threshold_s:threshold ~proactive ()
          | "drpm" ->
              Policy.drpm ?window_size:window ?downshift_idle_ms:downshift ~proactive ()
          | p ->
              Format.eprintf "dpsim: unknown policy %s@." p;
              exit 1
        in
        let r = Engine.simulate ~hints ~disks policy reqs in
        Format.printf "trace: %s (%d requests, %d hints)@." trace_file (List.length reqs)
          (List.length hints);
        Format.printf "model: %s@." Disk_model.ultrastar_36z15.Disk_model.name;
        Format.printf "policy %s: energy %.1f J, disk I/O time %.1f s, makespan %.1f s@."
          r.Engine.policy r.Engine.energy_j
          (r.Engine.io_time_ms /. 1000.)
          (r.Engine.makespan_ms /. 1000.);
        if per_disk then
          Array.iter (fun d -> Format.printf "%a@." Engine.pp_disk_stats d) r.Engine.per_disk
  with
  | Sys_error msg | Failure msg ->
      Format.eprintf "dpsim: %s@." msg;
      exit 1
  | Invalid_argument msg ->
      Format.eprintf "dpsim: %s@." msg;
      exit 1

let () =
  let trace_file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc:"Trace file")
  in
  let disks =
    Arg.(value & opt int 8 & info [ "disks"; "d" ] ~docv:"N" ~doc:"Number of I/O nodes")
  in
  let policy =
    Arg.(
      value & opt string "none"
      & info [ "policy" ] ~docv:"P"
          ~doc:"none | tpm | drpm | oracle-tpm | oracle-drpm | oracle")
  in
  let threshold =
    Arg.(
      value
      & opt (some float) None
      & info [ "tpm-threshold" ] ~docv:"SECONDS" ~doc:"TPM idleness threshold")
  in
  let proactive =
    Arg.(
      value & flag
      & info [ "proactive" ]
          ~doc:
            "Compiler-directed mode for tpm/drpm: execute the trace's hint stream (or, \
             absent hints, plan gaps from the known schedule)")
  in
  let window =
    Arg.(value & opt (some int) None & info [ "drpm-window" ] ~docv:"N" ~doc:"DRPM window size")
  in
  let downshift =
    Arg.(
      value
      & opt (some float) None
      & info [ "drpm-downshift-ms" ] ~docv:"MS" ~doc:"Idle time per DRPM level decrease")
  in
  let per_disk = Arg.(value & flag & info [ "per-disk" ] ~doc:"Print per-disk statistics") in
  let cmd =
    Cmd.v
      (Cmd.info "dpsim" ~version:"1.0.0" ~doc:"Trace-driven multi-disk power simulator")
      Term.(
        const run $ trace_file $ disks $ policy $ threshold $ proactive $ window $ downshift
        $ per_disk)
  in
  exit (Cmd.eval cmd)
