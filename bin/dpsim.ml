(* dpsim — trace-driven disk power simulator.

   Replays a trace file (as produced by [dpcc trace -o ...]) against a
   disk configuration and power-management policy, and reports energy and
   performance statistics.  Compiler power hints embedded in the trace
   ([H ...] lines, from [dpcc trace --hints]) are executed by the
   proactive policies; an [F seed:rate:classes] line (or the --faults
   flag, which takes precedence) arms the deterministic fault injector;
   the oracle policies print the offline-optimal energy bound instead of
   simulating. *)

module Request = Dp_trace.Request
module Engine = Dp_disksim.Engine
module Policy = Dp_disksim.Policy
module Disk_model = Dp_disksim.Disk_model
module Fault_model = Dp_faults.Fault_model
module Oracle = Dp_oracle.Oracle

open Cmdliner

(* Malformed input (trace, hint or fault lines, bad flag values) is a
   usage-class failure: one-line diagnostic, exit 2 — same code as
   cmdliner's own CLI errors. *)
let usage_error fmt = Format.kasprintf (fun s -> Format.eprintf "dpsim: %s@." s; exit 2) fmt

let reliability_line r =
  let wear, su, media, spikes, degraded =
    Array.fold_left
      (fun (w, s, m, l, d) (ds : Engine.disk_stats) ->
        ( Float.max w (Engine.wear_fraction Disk_model.ultrastar_36z15 ds),
          s + ds.Engine.spin_up_retries,
          m + ds.Engine.media_retries,
          l + ds.Engine.latency_spikes,
          d +. ds.Engine.degraded_ms ))
      (0.0, 0, 0, 0, 0.0) r.Engine.per_disk
  in
  Format.printf
    "reliability: wear %.4f%% of start-stop budget (worst disk), %d spin-up retries, %d \
     media retries, %d latency spikes, degraded %.1f ms@."
    (100.0 *. wear) su media spikes degraded

let run trace_file disks policy_name threshold proactive window downshift faults_spec
    per_disk =
  let reqs, hints, trace_faults =
    match Request.load_result trace_file with
    | Ok parsed -> parsed
    | Error e -> usage_error "%s" (Request.load_error_to_string e)
  in
  let faults =
    match faults_spec with
    | None -> trace_faults
    | Some spec -> (
        match Fault_model.of_spec spec with
        | Ok f -> Some f
        | Error msg -> usage_error "--faults: %s" msg)
  in
  try
    let oracle_space =
      match policy_name with
      | "oracle-tpm" -> Some Oracle.Tpm_space
      | "oracle-drpm" -> Some Oracle.Drpm_space
      | "oracle" -> Some Oracle.Full_space
      | _ -> None
    in
    match oracle_space with
    | Some space ->
        let bound = Oracle.lower_bound ~space ~disks reqs in
        Format.printf "trace: %s (%d requests)@." trace_file (List.length reqs);
        Format.printf "model: %s@." Disk_model.ultrastar_36z15.Disk_model.name;
        Format.printf "%a@." Oracle.pp_bound bound;
        Format.printf "analytic standby floor: %.1f J@."
          (Oracle.standby_floor_j bound.Oracle.base)
    | None ->
        let policy =
          match policy_name with
          | "none" | "base" -> Policy.No_pm
          | "tpm" -> Policy.tpm ?idle_threshold_s:threshold ~proactive ()
          | "drpm" ->
              Policy.drpm ?window_size:window ?downshift_idle_ms:downshift ~proactive ()
          | p -> usage_error "unknown policy %s" p
        in
        let r = Engine.simulate ~hints ?faults ~disks policy reqs in
        Format.printf "trace: %s (%d requests, %d hints)@." trace_file (List.length reqs)
          (List.length hints);
        Format.printf "model: %s@." Disk_model.ultrastar_36z15.Disk_model.name;
        (match faults with
        | Some f -> Format.printf "%a@." Fault_model.pp f
        | None -> ());
        Format.printf "policy %s: energy %.1f J, disk I/O time %.1f s, makespan %.1f s@."
          r.Engine.policy r.Engine.energy_j
          (r.Engine.io_time_ms /. 1000.)
          (r.Engine.makespan_ms /. 1000.);
        reliability_line r;
        if per_disk then
          Array.iter (fun d -> Format.printf "%a@." Engine.pp_disk_stats d) r.Engine.per_disk
  with
  | Sys_error msg | Failure msg ->
      Format.eprintf "dpsim: %s@." msg;
      exit 1
  | Invalid_argument msg ->
      Format.eprintf "dpsim: %s@." msg;
      exit 1

let () =
  let trace_file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc:"Trace file")
  in
  let disks =
    Arg.(value & opt int 8 & info [ "disks"; "d" ] ~docv:"N" ~doc:"Number of I/O nodes")
  in
  let policy =
    Arg.(
      value & opt string "none"
      & info [ "policy" ] ~docv:"P"
          ~doc:"none | tpm | drpm | oracle-tpm | oracle-drpm | oracle")
  in
  let threshold =
    Arg.(
      value
      & opt (some float) None
      & info [ "tpm-threshold" ] ~docv:"SECONDS" ~doc:"TPM idleness threshold")
  in
  let proactive =
    Arg.(
      value & flag
      & info [ "proactive" ]
          ~doc:
            "Compiler-directed mode for tpm/drpm: execute the trace's hint stream (or, \
             absent hints, plan gaps from the known schedule)")
  in
  let window =
    Arg.(value & opt (some int) None & info [ "drpm-window" ] ~docv:"N" ~doc:"DRPM window size")
  in
  let downshift =
    Arg.(
      value
      & opt (some float) None
      & info [ "drpm-downshift-ms" ] ~docv:"MS" ~doc:"Idle time per DRPM level decrease")
  in
  let faults =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"SEED:RATE:CLASSES"
          ~doc:
            "Arm the deterministic fault injector, e.g. 42:0.01:all or 7:0.05:sm \
             (s spin-up, m media, l latency spike, r stuck RPM).  Overrides the \
             trace's F line.")
  in
  let per_disk = Arg.(value & flag & info [ "per-disk" ] ~doc:"Print per-disk statistics") in
  let cmd =
    Cmd.v
      (Cmd.info "dpsim" ~version:"1.0.0" ~doc:"Trace-driven multi-disk power simulator")
      Term.(
        const run $ trace_file $ disks $ policy $ threshold $ proactive $ window $ downshift
        $ faults $ per_disk)
  in
  exit (Cmd.eval ~term_err:2 cmd)
