(* dpsim — trace-driven disk power simulator.

   Replays a trace file (as produced by [dpcc trace -o ...] — the text
   line format or the binary codec, sniffed by magic bytes) against a
   disk configuration and power-management policy, and reports energy and
   performance statistics.  Compiler power hints embedded in the trace
   ([H ...] lines, from [dpcc trace --hints]) are executed by the
   proactive policies; an [F seed:rate:classes] line (or the --faults
   flag, which takes precedence) arms the deterministic fault injector;
   the oracle policies print the offline-optimal energy bound instead of
   simulating. *)

module Request = Dp_trace.Request
module Bin = Dp_trace.Bin
module Engine = Dp_disksim.Engine
module Policy = Dp_disksim.Policy
module Disk_model = Dp_disksim.Disk_model
module Fault_model = Dp_faults.Fault_model
module Repair = Dp_repair.Repair
module Oracle = Dp_oracle.Oracle

open Cmdliner

(* Malformed input (trace, hint or fault lines, bad flag values) is a
   usage-class failure: one-line diagnostic, exit 2 — same code as
   cmdliner's own CLI errors. *)
let usage_error fmt = Format.kasprintf (fun s -> Format.eprintf "dpsim: %s@." s; exit 2) fmt

(* Observability modes: what to do with the engine's event stream. *)
let obs_sink mode reqs out =
  match mode with
  | None -> (Dp_obs.Sink.null, fun _ -> ())
  | Some "gaps" | Some "trace" ->
      (* In-memory recorder, distilled after the run. *)
      (Dp_obs.Sink.ring ~capacity:(max 4096 (64 * (List.length reqs + 64))) (), fun _ -> ())
  | Some "events" ->
      (* Streamed to a temp file and renamed into place on close, so an
         interrupted run never leaves a half-written event log under the
         published name. *)
      let path = Option.value out ~default:"obs-events.jsonl" in
      let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
      let oc = open_out tmp in
      ( Dp_obs.Sink.stream (fun e ->
            output_string oc (Dp_obs.Event.to_json e);
            output_char oc '\n'),
        fun () ->
          close_out oc;
          Sys.rename tmp path;
          Format.printf "observability: event log written to %s@." path )
  | Some m -> usage_error "unknown --obs mode %s (expected gaps | trace | events)" m

let obs_finish mode sink out disks (r : Engine.result) =
  (match Dp_obs.Sink.dropped sink with
  | 0 -> ()
  | n -> Format.eprintf "dpsim: observability ring dropped %d event(s)@." n);
  match mode with
  | Some "gaps" ->
      let reports = Dp_obs.Report.of_events ~disks (Dp_obs.Sink.events sink) in
      Format.printf "%a@." Dp_obs.Report.pp reports;
      (match out with
      | None -> ()
      | Some path ->
          Dp_util.Fsx.atomic_write path (Dp_obs.Report.jsonl reports);
          Format.printf "observability: gap histograms written to %s@." path)
  | Some "trace" ->
      let path = Option.value out ~default:"obs-trace.json" in
      Dp_obs.Chrome.write ~until_ms:r.Engine.makespan_ms path (Dp_obs.Sink.events sink);
      Format.printf "observability: Chrome trace written to %s (load in about:tracing)@."
        path
  | _ -> ()

let run trace_file out disks policy_name threshold proactive window downshift faults_spec
    scrub_ms spare deadline shards per_disk obs_mode live =
  (* Format-sniffing loader: binary traces (by magic) stream through the
     chunked reader, anything else parses as text.  Binary framing
     errors carry the byte offset in the line field. *)
  let reqs, hints, trace_faults =
    match Bin.load_result trace_file with
    | Ok parsed -> parsed
    | Error e -> usage_error "%s" (Request.load_error_to_string e)
  in
  if shards < 1 then usage_error "--shards must be at least 1 (got %d)" shards;
  if live && shards > 1 then
    usage_error
      "--live needs the event stream as it happens; --shards %d would deliver it in \
       per-segment batches"
      shards;
  let faults =
    match faults_spec with
    | None -> trace_faults
    | Some spec -> (
        match Fault_model.of_spec spec with
        | Ok f -> Some f
        | Error msg -> usage_error "--faults: %s" msg)
  in
  if scrub_ms < 0.0 then usage_error "--scrub-ms must be non-negative (got %g)" scrub_ms;
  (match spare with
  | Some n when n < 1 -> usage_error "--spare must be at least 1 block (got %d)" n
  | _ -> ());
  (match deadline with
  | Some d when d <= 0.0 -> usage_error "--deadline must be positive (got %g)" d
  | _ -> ());
  let repair =
    if scrub_ms > 0.0 then Some (Repair.config ~scrub_budget_ms:scrub_ms ()) else None
  in
  let model =
    match spare with
    | None -> Disk_model.ultrastar_36z15
    | Some n -> { Disk_model.ultrastar_36z15 with Disk_model.spare_blocks = n }
  in
  try
    match Oracle.space_of_name policy_name with
    | Some space ->
        if obs_mode <> None || live then
          usage_error
            "%s needs a simulated run; the oracle policies compute an analytic bound"
            (if live then "--live" else "--obs");
        let bound = Oracle.lower_bound ~space ~disks reqs in
        Format.printf "trace: %s (%d requests)@." trace_file (List.length reqs);
        Format.printf "model: %s@." Disk_model.ultrastar_36z15.Disk_model.name;
        Format.printf "%a@." Oracle.pp_bound bound;
        Format.printf "analytic standby floor: %.1f J@."
          (Oracle.standby_floor_j bound.Oracle.base)
    | None ->
        let policy =
          match policy_name with
          | "none" | "base" -> Policy.No_pm
          | "tpm" -> Policy.tpm ?idle_threshold_s:threshold ~proactive ()
          | "drpm" ->
              Policy.drpm ?window_size:window ?downshift_idle_ms:downshift ~proactive ()
          | "online" -> Policy.default_adaptive
          | p -> usage_error "unknown policy %s" p
        in
        let base_sink, close_stream = obs_sink obs_mode reqs out in
        (* The live console composes with any --obs sink at the callback
           level: one stream wrapper forwards each event to both. *)
        let sink, live_finish =
          if not live then (base_sink, fun () -> ())
          else begin
            let lv = Dp_obs.Live.create ~disks () in
            let mode =
              if Unix.isatty Unix.stdout then Dp_obs.Tty.Ansi else Dp_obs.Tty.Plain
            in
            let feed, finish = Dp_obs.Tty.driver ~mode ~out:print_string lv in
            ( Dp_obs.Sink.stream (fun e ->
                  Dp_obs.Sink.emit base_sink e;
                  feed e),
              finish )
          end
        in
        let r =
          Engine.simulate ~model ~obs:sink ~hints ?faults ?repair ?deadline_ms:deadline
            ~shards ~disks policy reqs
        in
        live_finish ();
        close_stream ();
        Format.printf "trace: %s (%d requests, %d hints)@." trace_file (List.length reqs)
          (List.length hints);
        Format.printf "model: %s@." Disk_model.ultrastar_36z15.Disk_model.name;
        if obs_mode <> None then
          Format.printf "policy: %s@." (Policy.describe policy);
        (match faults with
        | Some f -> Format.printf "%a@." Fault_model.pp f
        | None -> ());
        Format.printf "policy %s: energy %.1f J, disk I/O time %.1f s, makespan %.1f s@."
          r.Engine.policy r.Engine.energy_j
          (r.Engine.io_time_ms /. 1000.)
          (r.Engine.makespan_ms /. 1000.);
        Format.printf "%a@." (fun ppf r -> Engine.pp_reliability ppf r) r;
        if per_disk then
          Array.iter (fun d -> Format.printf "%a@." Engine.pp_disk_stats d) r.Engine.per_disk;
        obs_finish obs_mode base_sink out disks r
  with
  | Sys_error msg | Failure msg ->
      Format.eprintf "dpsim: %s@." msg;
      exit 1
  | Invalid_argument msg ->
      Format.eprintf "dpsim: %s@." msg;
      exit 1

let () =
  let trace_file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc:"Trace file")
  in
  let out_file =
    Arg.(
      value
      & pos 1 (some string) None
      & info [] ~docv:"OUT"
          ~doc:
            "Output file for --obs artifacts (default: obs-trace.json for trace, \
             obs-events.jsonl for events; gaps prints to stdout and writes JSONL here \
             only when given)")
  in
  let disks =
    Arg.(value & opt int 8 & info [ "disks"; "d" ] ~docv:"N" ~doc:"Number of I/O nodes")
  in
  let policy =
    Arg.(
      value & opt string "none"
      & info [ "policy" ] ~docv:"P"
          ~doc:"none | tpm | drpm | online | oracle-tpm | oracle-drpm | oracle")
  in
  let threshold =
    Arg.(
      value
      & opt (some float) None
      & info [ "tpm-threshold" ] ~docv:"SECONDS" ~doc:"TPM idleness threshold")
  in
  let proactive =
    Arg.(
      value & flag
      & info [ "proactive" ]
          ~doc:
            "Compiler-directed mode for tpm/drpm: execute the trace's hint stream (or, \
             absent hints, plan gaps from the known schedule)")
  in
  let window =
    Arg.(value & opt (some int) None & info [ "drpm-window" ] ~docv:"N" ~doc:"DRPM window size")
  in
  let downshift =
    Arg.(
      value
      & opt (some float) None
      & info [ "drpm-downshift-ms" ] ~docv:"MS" ~doc:"Idle time per DRPM level decrease")
  in
  let faults =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"SEED:RATE:CLASSES"
          ~doc:
            "Arm the deterministic fault injector, e.g. 42:0.01:all or 7:0.05:sm \
             (s spin-up, m media, l latency spike, r stuck RPM, d media decay).  Overrides the \
             trace's F line.")
  in
  let scrub =
    Arg.(
      value & opt float 0.0
      & info [ "scrub-ms" ] ~docv:"MS"
          ~doc:
            "Background-scrub budget per idle gap (verification reads, preempted by \
             foreground arrivals); 0 disables scrubbing")
  in
  let spare =
    Arg.(
      value
      & opt (some int) None
      & info [ "spare" ] ~docv:"BLOCKS" ~doc:"Per-disk spare-pool size override")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"MS"
          ~doc:
            "Per-request deadline: media-error retry storms that blow it fail over to \
             the disk's mirror; misses are reported as deadline events")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Fan the run across up to N domains (per-segment connected components of the \
             processor-disk interaction graph, rejoining at each segment barrier); \
             results are byte-identical to --shards 1.  Refuses --live.")
  in
  let per_disk = Arg.(value & flag & info [ "per-disk" ] ~doc:"Print per-disk statistics") in
  let obs =
    Arg.(
      value
      & opt (some string) None
      & info [ "obs" ] ~docv:"MODE"
          ~doc:
            "Observe the run: gaps (per-disk idle-gap / response-time / standby-residency \
             histograms, JSONL to OUT when given), trace (Chrome trace_event JSON to OUT, \
             one track per disk), or events (stream every event as JSONL to OUT)")
  in
  let live =
    Arg.(
      value & flag
      & info [ "live" ]
          ~doc:
            "Render a live per-disk console while simulating (power state, residency, \
             arrival rate, response percentiles, energy, fault counters, power-state \
             track).  ANSI repaint on a tty, plain periodic text otherwise.  Composes \
             with --obs; refuses the oracle policies.")
  in
  let cmd =
    Cmd.v
      (Cmd.info "dpsim" ~version:"1.0.0" ~doc:"Trace-driven multi-disk power simulator")
      Term.(
        const run $ trace_file $ out_file $ disks $ policy $ threshold $ proactive $ window
        $ downshift $ faults $ scrub $ spare $ deadline $ shards $ per_disk $ obs $ live)
  in
  exit (Cmd.eval ~term_err:2 cmd)
