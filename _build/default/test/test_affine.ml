(* Tests for affine expressions: canonical form, arithmetic, substitution
   and evaluation. *)

module A = Dp_affine.Affine

let check = Alcotest.check
let affine = Alcotest.testable A.pp A.equal
let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let i = A.var "i"
let j = A.var "j"

let test_canonical () =
  check affine "i + i = 2i" (A.term 2 "i") (A.add i i);
  check affine "i - i = 0" A.zero (A.sub i i);
  check affine "terms sorted" (A.add (A.var "a") (A.var "b")) (A.add (A.var "b") (A.var "a"));
  check affine "of_terms merges" (A.term 3 "i") (A.of_terms [ ("i", 1); ("i", 2) ]);
  check affine "of_terms drops zero" (A.const 4) (A.of_terms ~const:4 [ ("i", 0) ]);
  check Alcotest.bool "is_const" true (A.is_const (A.const 7));
  check Alcotest.bool "var not const" false (A.is_const i)

let test_arith () =
  let e = A.add (A.scale 2 i) (A.add j (A.const 5)) in
  check Alcotest.int "coeff i" 2 (A.coeff e "i");
  check Alcotest.int "coeff j" 1 (A.coeff e "j");
  check Alcotest.int "coeff missing" 0 (A.coeff e "k");
  check Alcotest.int "constant" 5 (A.constant e);
  check Alcotest.(list string) "vars" [ "i"; "j" ] (A.vars e);
  check affine "neg" (A.of_terms ~const:(-5) [ ("i", -2); ("j", -1) ]) (A.neg e);
  check affine "scale 0" A.zero (A.scale 0 e)

let test_subst () =
  (* (2i + j + 5)[i := j - 1] = 3j + 3 *)
  let e = A.add (A.scale 2 i) (A.add j (A.const 5)) in
  let substituted = A.subst "i" (A.sub j (A.const 1)) e in
  check affine "subst" (A.of_terms ~const:3 [ ("j", 3) ]) substituted;
  check affine "subst absent var" e (A.subst "zz" (A.const 9) e);
  let renamed = A.rename (fun v -> if v = "i" then "x" else v) e in
  check affine "rename" (A.of_terms ~const:5 [ ("x", 2); ("j", 1) ]) renamed

let test_eval () =
  let e = A.of_terms ~const:(-1) [ ("i", 3); ("j", -2) ] in
  let env = function "i" -> 4 | "j" -> 5 | _ -> raise Not_found in
  check Alcotest.int "eval" 1 (A.eval env e);
  let partial = A.eval_opt (function "i" -> Some 4 | _ -> None) e in
  check affine "partial eval" (A.of_terms ~const:11 [ ("j", -2) ]) partial

let test_pp () =
  check Alcotest.string "pp plain" "2*i + j - 3"
    (A.to_string (A.of_terms ~const:(-3) [ ("i", 2); ("j", 1) ]));
  check Alcotest.string "pp const" "42" (A.to_string (A.const 42));
  check Alcotest.string "pp negative leading" "-i + 1"
    (A.to_string (A.of_terms ~const:1 [ ("i", -1) ]))

(* Random affine expressions over a fixed small variable pool. *)
let pool = [| "i"; "j"; "k" |]

let affine_gen =
  QCheck2.Gen.(
    map2
      (fun const coeffs ->
        A.of_terms ~const (List.mapi (fun k c -> (pool.(k), c)) coeffs))
      (int_range (-20) 20)
      (list_size (int_range 0 3) (int_range (-10) 10)))

let env_gen = QCheck2.Gen.(array_size (pure 3) (int_range (-30) 30))

let env_of arr v =
  match Array.to_list pool |> List.mapi (fun k p -> (p, arr.(k))) |> List.assoc_opt v with
  | Some x -> x
  | None -> raise Not_found

let prop_eval_add_hom =
  qtest "Affine: eval (a+b) = eval a + eval b"
    QCheck2.Gen.(triple affine_gen affine_gen env_gen)
    (fun (a, b, env) ->
      A.eval (env_of env) (A.add a b) = A.eval (env_of env) a + A.eval (env_of env) b)

let prop_eval_scale_hom =
  qtest "Affine: eval (k*a) = k * eval a"
    QCheck2.Gen.(triple (int_range (-9) 9) affine_gen env_gen)
    (fun (k, a, env) -> A.eval (env_of env) (A.scale k a) = k * A.eval (env_of env) a)

let prop_subst_eval =
  qtest "Affine: eval after subst = eval with bound var"
    QCheck2.Gen.(triple affine_gen affine_gen env_gen)
    (fun (a, repl, env) ->
      (* Substitute i by repl, evaluate; must equal evaluating a with i
         bound to repl's value. *)
      let value_of_repl = A.eval (env_of env) repl in
      let env' v = if v = "i" then value_of_repl else env_of env v in
      A.eval (env_of env) (A.subst "i" repl a) = A.eval env' a)

let prop_canonical_equal =
  qtest "Affine: a - b = 0 iff equal" QCheck2.Gen.(pair affine_gen affine_gen)
    (fun (a, b) -> A.equal a b = A.equal (A.sub a b) A.zero)

let suites =
  [
    ( "affine",
      [
        Alcotest.test_case "canonical form" `Quick test_canonical;
        Alcotest.test_case "arithmetic" `Quick test_arith;
        Alcotest.test_case "substitution" `Quick test_subst;
        Alcotest.test_case "evaluation" `Quick test_eval;
        Alcotest.test_case "printing" `Quick test_pp;
        prop_eval_add_hom;
        prop_eval_scale_hom;
        prop_subst_eval;
        prop_canonical_equal;
      ] );
  ]
