(* Tests for dependence analysis: distance-vector predicates, scalar
   tests, per-nest symbolic analysis and the concrete iteration-instance
   dependence graph. *)

module Depvec = Dp_dependence.Depvec
module Dep_tests = Dp_dependence.Dep_tests
module Linear_solve = Dp_dependence.Linear_solve
module Analysis = Dp_dependence.Analysis
module Concrete = Dp_dependence.Concrete
module Ir = Dp_ir.Ir
module A = Dp_affine.Affine

let check = Alcotest.check
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let i = A.var "i"
let j = A.var "j"
let c = A.const
let d = Depvec.of_dists
let dv = Alcotest.testable Depvec.pp Depvec.equal

(* --- Depvec --- *)

let test_depvec_predicates () =
  check Alcotest.bool "(1,-2) lex positive" true (Depvec.is_lex_positive (d [ 1; -2 ]));
  check Alcotest.bool "(0,*) not lex positive" false
    (Depvec.is_lex_positive [ Depvec.Dist 0; Depvec.Any ]);
  check Alcotest.bool "(0,*) may be negative" true
    (Depvec.may_be_lex_negative [ Depvec.Dist 0; Depvec.Any ]);
  check Alcotest.bool "zero is zero" true (Depvec.is_zero (d [ 0; 0 ]))

let test_depvec_normalize () =
  check Alcotest.(option dv) "zero dropped" None (Depvec.normalize (d [ 0; 0 ]));
  check Alcotest.(option dv) "positive kept" (Some (d [ 1; -3 ]))
    (Depvec.normalize (d [ 1; -3 ]));
  check Alcotest.(option dv) "negative flipped" (Some (d [ 1; 3 ]))
    (Depvec.normalize (d [ -1; -3 ]));
  (* Unknown-sign: zero prefix preserved, the rest widened. *)
  check Alcotest.(option dv) "(0,*,5) widened"
    (Some [ Depvec.Dist 0; Depvec.Any; Depvec.Any ])
    (Depvec.normalize [ Depvec.Dist 0; Depvec.Any; Depvec.Dist 5 ])

let test_depvec_parallelizable () =
  (* Vector (1,0): outer loop carries it, inner parallelizable directly
     and by lex-positive prefix. *)
  let vs = [ d [ 1; 0 ] ] in
  check Alcotest.bool "loop 0 sequential" false (Depvec.loop_parallelizable vs 0);
  check Alcotest.bool "loop 1 parallel" true (Depvec.loop_parallelizable vs 1);
  (* Vector (1,-1): inner entry nonzero, but the prefix (1) is positive:
     condition 2 of Section 6.1. *)
  check Alcotest.bool "carried by outer" true (Depvec.loop_parallelizable [ d [ 1; -1 ] ] 1);
  (* Vector (0,1): outer parallelizable (entry 0), inner not. *)
  let vs = [ d [ 0; 1 ] ] in
  check Alcotest.(option int) "outermost parallel = 0" (Some 0)
    (Depvec.outermost_parallel vs ~depth:2);
  (* Any at position 0 with no positive prefix: nothing provable. *)
  check Alcotest.(option int) "all-Any: none" None
    (Depvec.outermost_parallel [ [ Depvec.Any; Depvec.Any ] ] ~depth:2)

(* --- scalar tests --- *)

let test_gcd_banerjee () =
  check Alcotest.bool "2x+4y=7 impossible" false
    (Dep_tests.gcd_test ~coeffs:[ 2; 4 ] ~rhs:7);
  check Alcotest.bool "2x+4y=6 possible" true (Dep_tests.gcd_test ~coeffs:[ 2; 4 ] ~rhs:6);
  check Alcotest.bool "0=0" true (Dep_tests.gcd_test ~coeffs:[ 0; 0 ] ~rhs:0);
  check Alcotest.bool "0=1 impossible" false (Dep_tests.gcd_test ~coeffs:[ 0 ] ~rhs:1);
  check Alcotest.bool "banerjee inside" true
    (Dep_tests.banerjee_test ~bounds:[ (0, 10); (0, 10) ] ~coeffs:[ 1; -1 ] ~rhs:5);
  check Alcotest.bool "banerjee outside" false
    (Dep_tests.banerjee_test ~bounds:[ (0, 10); (0, 10) ] ~coeffs:[ 1; -1 ] ~rhs:50)

let prop_gcd_sound =
  qtest "gcd_test never rejects a solvable equation"
    QCheck2.Gen.(
      triple (int_range (-6) 6) (int_range (-6) 6)
        (pair (int_range (-9) 9) (int_range (-9) 9)))
    (fun (a, b, (x, y)) ->
      let rhs = (a * x) + (b * y) in
      Dep_tests.gcd_test ~coeffs:[ a; b ] ~rhs)

(* --- linear solve --- *)

let test_linear_solve () =
  (match Linear_solve.solve ~rows:[| [| 1; 0 |]; [| 0; 1 |] |] ~rhs:[| 1; 0 |] with
  | Linear_solve.Classified [ Depvec.Dist 1; Depvec.Dist 0 ] -> ()
  | _ -> Alcotest.fail "expected (1,0)");
  (match Linear_solve.solve ~rows:[| [| 1; 0 |] |] ~rhs:[| 0 |] with
  | Linear_solve.Classified [ Depvec.Dist 0; Depvec.Any ] -> ()
  | _ -> Alcotest.fail "expected (0, *)");
  (match Linear_solve.solve ~rows:[| [| 2 |] |] ~rhs:[| 1 |] with
  | Linear_solve.No_solution -> ()
  | _ -> Alcotest.fail "expected no solution");
  match Linear_solve.solve ~rows:[| [| 1 |]; [| 1 |] |] ~rhs:[| 1; 2 |] with
  | Linear_solve.No_solution -> ()
  | _ -> Alcotest.fail "expected inconsistency"

(* --- symbolic analysis --- *)

let nest_of body = Ir.nest 0 [ Ir.loop "i" (c 0) (c 9); Ir.loop "j" (c 0) (c 9) ] body

let test_stencil_vectors () =
  (* u[i][j] = f(u[i-1][j]): flow dependence (1,0). *)
  let n =
    nest_of [ Ir.stmt 0 [ Ir.read "u" [ A.sub i (c 1); j ]; Ir.write "u" [ i; j ] ] ]
  in
  let vs = Analysis.distance_vectors n in
  check Alcotest.bool "(1,0) found" true (List.mem (d [ 1; 0 ]) vs);
  check Alcotest.(option int) "inner loop parallel" (Some 1)
    (Analysis.outermost_parallel_loop n)

let test_independent_nest () =
  let n = nest_of [ Ir.stmt 0 [ Ir.read "u" [ i; j ]; Ir.write "w" [ i; j ] ] ] in
  check Alcotest.(list dv) "no vectors" [] (Analysis.distance_vectors n);
  check Alcotest.(option int) "outermost parallel" (Some 0)
    (Analysis.outermost_parallel_loop n)

let test_transpose_conservative () =
  (* u[i][j] and u[j][i], one written: not uniformly generated; the
     GCD/Banerjee fallback keeps a conservative all-Any vector. *)
  let n = nest_of [ Ir.stmt 0 [ Ir.read "u" [ i; j ]; Ir.write "u" [ j; i ] ] ] in
  let vs = Analysis.distance_vectors n in
  check Alcotest.bool "conservative vector present" true
    (List.exists (fun v -> List.exists (( = ) Depvec.Any) v) vs);
  check Alcotest.(option int) "no provable parallel loop" None
    (Analysis.outermost_parallel_loop n)

let test_trip_span_refinement () =
  (* u[i+20][j] vs u[i][j] in a 10-trip loop: distance 20 exceeds the
     span, no dependence. *)
  let n =
    nest_of [ Ir.stmt 0 [ Ir.read "u" [ A.add i (c 20); j ]; Ir.write "u" [ i; j ] ] ]
  in
  check Alcotest.(list dv) "refined away" [] (Analysis.distance_vectors n)

let test_dep_kinds () =
  let n =
    nest_of [ Ir.stmt 0 [ Ir.read "u" [ A.sub i (c 1); j ]; Ir.write "u" [ i; j ] ] ]
  in
  let deps = Analysis.nest_dependences n in
  check Alcotest.bool "flow dep present" true
    (List.exists (fun (dep : Analysis.dep) -> dep.kind = Analysis.Flow) deps);
  let n2 = nest_of [ Ir.stmt 0 [ Ir.write "u" [ i; c 0 ] ] ] in
  let deps2 = Analysis.nest_dependences n2 in
  check Alcotest.bool "output dep on column write" true
    (List.exists (fun (dep : Analysis.dep) -> dep.kind = Analysis.Output) deps2)

(* --- concrete graph --- *)

let tiny_program =
  (* nest 0 writes u row-major; nest 1 reads it transposed. *)
  Ir.program
    [ Ir.array_decl "u" [ 3; 3 ] ]
    [
      Ir.nest 0
        [ Ir.loop "i" (c 0) (c 2); Ir.loop "j" (c 0) (c 2) ]
        [ Ir.stmt 0 [ Ir.write "u" [ i; j ] ] ];
      Ir.nest 1
        [ Ir.loop "i" (c 0) (c 2); Ir.loop "j" (c 0) (c 2) ]
        [ Ir.stmt 1 [ Ir.read "u" [ j; i ] ] ];
    ]

let test_concrete_build () =
  let g = Concrete.build tiny_program in
  check Alcotest.int "instances" 18 (Concrete.instance_count g);
  check Alcotest.int "edges" 9 (Concrete.edge_count g);
  (* Instance 9 is nest 1 iteration (0,0), reading u[0][0] written by
     instance 0. *)
  check Alcotest.(array int) "preds of first read" [| 0 |] g.Concrete.preds.(9);
  (* Reader of u[2][1] is nest-1 iteration (1,2) = seq 14; writer is
     nest-0 iteration (2,1) = seq 7. *)
  check Alcotest.(array int) "transposed pred" [| 7 |] g.Concrete.preds.(14)

let test_concrete_anti_output () =
  let prog =
    Ir.program
      [ Ir.array_decl "u" [ 1 ] ]
      [
        Ir.nest 0 [ Ir.loop "i" (c 0) (c 2) ] [ Ir.stmt 0 [ Ir.read "u" [ c 0 ] ] ];
        Ir.nest 1 [ Ir.loop "i" (c 0) (c 1) ] [ Ir.stmt 1 [ Ir.write "u" [ c 0 ] ] ];
      ]
  in
  let g = Concrete.build prog in
  (* First write (seq 3) depends on all three reads (anti); second write
     (seq 4) on the first (output). *)
  check Alcotest.(array int) "anti edges" [| 0; 1; 2 |] g.Concrete.preds.(3);
  check Alcotest.(array int) "output edge" [| 3 |] g.Concrete.preds.(4)

let test_legal_order () =
  let g = Concrete.build tiny_program in
  check Alcotest.bool "original order legal" true
    (Concrete.is_legal_order g (Concrete.original_order g));
  let reversed = Array.init 18 (fun k -> 17 - k) in
  check Alcotest.bool "reversed order illegal" false (Concrete.is_legal_order g reversed);
  check Alcotest.bool "non-permutation rejected" false
    (Concrete.is_legal_order g (Array.make 18 0));
  check Alcotest.bool "wrong length rejected" false (Concrete.is_legal_order g [| 0 |])

let prop_original_always_legal =
  qtest ~count:30 "Concrete: original order legal for random small programs"
    QCheck2.Gen.(pair (int_range 1 4) (int_range 1 4))
    (fun (n, m) ->
      let prog =
        Ir.program
          [ Ir.array_decl "u" [ n + m ] ]
          [
            Ir.nest 0
              [ Ir.loop "i" (c 0) (c (n - 1)) ]
              [ Ir.stmt 0 [ Ir.write "u" [ i ] ] ];
            Ir.nest 1
              [ Ir.loop "i" (c 0) (c (m - 1)) ]
              [ Ir.stmt 1 [ Ir.read "u" [ i ]; Ir.write "u" [ A.add i (c 1) ] ] ];
          ]
      in
      let g = Concrete.build prog in
      Concrete.is_legal_order g (Concrete.original_order g))

let suites =
  [
    ( "dependence.depvec",
      [
        Alcotest.test_case "predicates" `Quick test_depvec_predicates;
        Alcotest.test_case "normalize" `Quick test_depvec_normalize;
        Alcotest.test_case "parallelizable" `Quick test_depvec_parallelizable;
      ] );
    ( "dependence.tests",
      [ Alcotest.test_case "gcd/banerjee" `Quick test_gcd_banerjee; prop_gcd_sound ] );
    ("dependence.solve", [ Alcotest.test_case "classification" `Quick test_linear_solve ]);
    ( "dependence.analysis",
      [
        Alcotest.test_case "stencil" `Quick test_stencil_vectors;
        Alcotest.test_case "independent" `Quick test_independent_nest;
        Alcotest.test_case "transpose conservative" `Quick test_transpose_conservative;
        Alcotest.test_case "trip-span refinement" `Quick test_trip_span_refinement;
        Alcotest.test_case "kinds" `Quick test_dep_kinds;
      ] );
    ( "dependence.concrete",
      [
        Alcotest.test_case "build" `Quick test_concrete_build;
        Alcotest.test_case "anti/output" `Quick test_concrete_anti_output;
        Alcotest.test_case "legal order" `Quick test_legal_order;
        prop_original_always_legal;
      ] );
  ]
