(* Tests for the six Table-2 applications: structural validity and
   fidelity of the modeled request counts. *)

module App = Dp_workloads.App
module Workloads = Dp_workloads.Workloads
module Ir = Dp_ir.Ir
module Layout = Dp_layout.Layout
module Concrete = Dp_dependence.Concrete
module Generate = Dp_trace.Generate

let check = Alcotest.check

let all = Workloads.all ()

let test_registry () =
  check Alcotest.(list string) "six applications"
    [ "AST"; "FFT"; "Cholesky"; "Visuo"; "SCF 3.0"; "RSense 2.0" ]
    (Workloads.names ());
  check Alcotest.bool "lookup by name" true (Workloads.by_name "fft" <> None);
  check Alcotest.bool "unknown name" true (Workloads.by_name "nope" = None)

let test_programs_valid () =
  List.iter
    (fun (app : App.t) ->
      match Ir.validate app.App.program with
      | Ok () -> ()
      | Error es ->
          Alcotest.failf "%s invalid: %a" app.App.name
            (Format.pp_print_list Ir.pp_error)
            es)
    all

let test_overrides_cover_arrays () =
  List.iter
    (fun (app : App.t) ->
      List.iter
        (fun (a : Ir.array_decl) ->
          check Alcotest.bool
            (Printf.sprintf "%s/%s has striping" app.App.name a.Ir.name)
            true
            (List.mem_assoc a.Ir.name app.App.overrides))
        app.App.program.Ir.arrays)
    all

(* Request counts: within 6% of Table 2. *)
let request_count (app : App.t) =
  let g = Concrete.build app.App.program in
  let layout = Layout.make ~default:app.App.striping ~overrides:app.App.overrides app.App.program in
  let reqs =
    Generate.trace layout app.App.program g
      (Generate.single_stream g ~order:(Concrete.original_order g))
  in
  List.length reqs

let test_request_counts () =
  List.iter
    (fun (app : App.t) ->
      let n = request_count app in
      let target = app.App.paper_requests in
      let err = abs (n - target) in
      check Alcotest.bool
        (Printf.sprintf "%s: %d requests vs paper %d (%.1f%% off)" app.App.name n target
           (100.0 *. float_of_int err /. float_of_int target))
        true
        (float_of_int err <= 0.06 *. float_of_int target))
    all

let test_io_fraction () =
  (* The paper: applications spend 75-82% of execution in disk I/O; our
     calibration targets that band loosely (70-92%). *)
  List.iter
    (fun (app : App.t) ->
      let g = Concrete.build app.App.program in
      let layout =
        Layout.make ~default:app.App.striping ~overrides:app.App.overrides app.App.program
      in
      let reqs =
        Generate.trace layout app.App.program g
          (Generate.single_stream g ~order:(Concrete.original_order g))
      in
      let f = Generate.io_fraction (Generate.summarize reqs) in
      check Alcotest.bool
        (Printf.sprintf "%s io fraction %.2f in band" app.App.name f)
        true
        (f >= 0.70 && f <= 0.92))
    all

let test_structures () =
  let nests name = (Option.get (Workloads.by_name name)).App.program.Ir.nests in
  check Alcotest.int "FFT: 4 phases" 4 (List.length (nests "FFT"));
  check Alcotest.int "Visuo: 3 passes" 3 (List.length (nests "Visuo"));
  check Alcotest.int "RSense: 4 queries" 4 (List.length (nests "RSense 2.0"));
  check Alcotest.int "SCF: 2 iterations x 2 passes" 4 (List.length (nests "SCF 3.0"));
  (* Cholesky's panels are triangular: later panels shrink. *)
  let chol = nests "Cholesky" in
  let count n = Ir.iteration_count n in
  check Alcotest.bool "triangular shrink" true
    (count (List.nth chol 2) > count (List.nth chol (List.length chol - 1)));
  (* AST alternates the stencil direction between steps. *)
  let ast = nests "AST" in
  let first_arrays = Ir.arrays_referenced (List.hd ast) in
  let second_arrays = Ir.arrays_referenced (List.nth ast 1) in
  check Alcotest.bool "AST ping-pong" true (first_arrays <> second_arrays)

let test_page_size () =
  List.iter
    (fun (app : App.t) ->
      List.iter
        (fun (a : Ir.array_decl) ->
          check Alcotest.int
            (Printf.sprintf "%s/%s page" app.App.name a.Ir.name)
            App.page_bytes a.Ir.elem_size)
        app.App.program.Ir.arrays)
    all

let test_exported_dpl_in_sync () =
  (* The checked-in .dpl exports must match the built-in models: same
     access sequences, cycles and striping.  Guards against drift when a
     workload is retuned without re-running `dpcc emit`. *)
  let dir = "examples/programs" in
  let dir = if Sys.file_exists dir then dir else Filename.concat ".." dir in
  List.iter
    (fun (name, file) ->
      let path = Filename.concat dir file in
      if not (Sys.file_exists path) then
        Alcotest.failf "%s missing (regenerate with dpcc emit app:%s -o %s)" path name path;
      let app = Option.get (Workloads.by_name name) in
      let { Dp_lang.Resolver.program = loaded; stripes } =
        Dp_lang.Resolver.load_file path
      in
      let refs (p : Ir.program) =
        List.map
          (fun (n : Ir.nest) ->
            (n.Ir.loops, List.concat_map (fun (s : Ir.stmt) -> s.Ir.refs) n.Ir.body))
          p.Ir.nests
      in
      check Alcotest.bool
        (Printf.sprintf "%s: loops and accesses match" name)
        true
        (refs app.App.program = refs loaded);
      List.iter
        (fun (arr, (want : Dp_layout.Striping.t)) ->
          match List.assoc_opt arr stripes with
          | Some (got : Dp_lang.Ast.stripe_spec) ->
              check Alcotest.int (arr ^ " unit") want.Dp_layout.Striping.unit_bytes
                got.Dp_lang.Ast.unit_bytes;
              check Alcotest.int (arr ^ " start") want.Dp_layout.Striping.start_disk
                got.Dp_lang.Ast.start_disk
          | None -> Alcotest.failf "%s/%s: stripe clause missing" name arr)
        app.App.overrides)
    [
      ("AST", "ast.dpl"); ("FFT", "fft.dpl"); ("Cholesky", "cholesky.dpl");
      ("Visuo", "visuo.dpl"); ("SCF 3.0", "scf.dpl"); ("RSense 2.0", "rsense.dpl");
    ]

let test_pipeline_deterministic () =
  (* The whole pipeline is a pure function of the program: two runs give
     bit-identical energy. *)
  let app = Option.get (Workloads.by_name "FFT") in
  let run () =
    let layout =
      Layout.make ~default:app.App.striping ~overrides:app.App.overrides app.App.program
    in
    let g = Concrete.build app.App.program in
    let order =
      (Dp_restructure.Reuse_scheduler.schedule layout app.App.program g)
        .Dp_restructure.Reuse_scheduler.order
    in
    let reqs =
      Generate.trace layout app.App.program g (Generate.single_stream g ~order)
    in
    (Dp_disksim.Engine.simulate ~disks:8 Dp_disksim.Policy.default_drpm reqs)
      .Dp_disksim.Engine.energy_j
  in
  check (Alcotest.float 0.0) "identical energy" (run ()) (run ())

let suites =
  [
    ( "workloads",
      [
        Alcotest.test_case "registry" `Quick test_registry;
        Alcotest.test_case "programs valid" `Quick test_programs_valid;
        Alcotest.test_case "overrides cover arrays" `Quick test_overrides_cover_arrays;
        Alcotest.test_case "page size" `Quick test_page_size;
        Alcotest.test_case "structures" `Quick test_structures;
        Alcotest.test_case "request counts near Table 2" `Slow test_request_counts;
        Alcotest.test_case "io fraction band" `Slow test_io_fraction;
        Alcotest.test_case "exported .dpl in sync" `Slow test_exported_dpl_in_sync;
        Alcotest.test_case "pipeline deterministic" `Slow test_pipeline_deterministic;
      ] );
  ]
