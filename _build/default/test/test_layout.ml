(* Tests for striping and the program-level disk layout. *)

module Striping = Dp_layout.Striping
module Layout = Dp_layout.Layout
module Ir = Dp_ir.Ir

let check = Alcotest.check
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let test_striping_basics () =
  let s = Striping.make ~unit_bytes:1024 ~factor:4 ~start_disk:1 in
  check Alcotest.int "stripe of 0" 0 (Striping.stripe_of_offset s 0);
  check Alcotest.int "stripe of 1023" 0 (Striping.stripe_of_offset s 1023);
  check Alcotest.int "stripe of 1024" 1 (Striping.stripe_of_offset s 1024);
  check Alcotest.int "disk of stripe 0" 1 (Striping.disk_of_stripe s 0);
  check Alcotest.int "disk of stripe 3" 0 (Striping.disk_of_stripe s 3);
  check Alcotest.int "disk of offset 5000" (Striping.disk_of_stripe s 4)
    (Striping.disk_of_offset s 5000);
  check Alcotest.int "table 1 default factor" 8 Striping.default.Striping.factor;
  check Alcotest.int "table 1 default unit" (32 * 1024) Striping.default.Striping.unit_bytes

let expect_invalid f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_striping_validation () =
  expect_invalid (fun () -> Striping.make ~unit_bytes:0 ~factor:4 ~start_disk:0);
  expect_invalid (fun () -> Striping.make ~unit_bytes:8 ~factor:0 ~start_disk:0);
  expect_invalid (fun () -> Striping.make ~unit_bytes:8 ~factor:4 ~start_disk:4)

let test_striping_span () =
  let s = Striping.make ~unit_bytes:100 ~factor:3 ~start_disk:0 in
  let pieces = Striping.span s ~offset:50 ~size:250 in
  check Alcotest.int "three pieces" 3 (List.length pieces);
  check
    Alcotest.(list (triple int int int))
    "pieces"
    [ (0, 50, 50); (1, 100, 100); (2, 200, 100) ]
    pieces;
  check Alcotest.int "sizes sum" 250 (List.fold_left (fun a (_, _, sz) -> a + sz) 0 pieces)

let program =
  Ir.program
    [
      Ir.array_decl ~elem_size:512 "u" [ 4; 8 ] (* row = 4 KB = 1 stripe *);
      Ir.array_decl ~elem_size:512 "w" [ 4; 8 ];
    ]
    []

let stripe_row = Striping.make ~unit_bytes:(8 * 512) ~factor:4 ~start_disk:0

let layout =
  Layout.make ~default:stripe_row
    ~overrides:[ ("w", Striping.make ~unit_bytes:(8 * 512) ~factor:4 ~start_disk:2) ]
    program

let test_layout_mapping () =
  check Alcotest.int "disks" 4 layout.Layout.disk_count;
  check Alcotest.int "u[0][*] disk" 0 (Layout.disk_of_element layout "u" [ 0; 3 ]);
  check Alcotest.int "u[1][*] disk" 1 (Layout.disk_of_element layout "u" [ 1; 0 ]);
  check Alcotest.int "w[0][*] staggered" 2 (Layout.disk_of_element layout "w" [ 0; 0 ]);
  check Alcotest.int "w[3][*]" 1 (Layout.disk_of_element layout "w" [ 3; 0 ]);
  let au = Layout.element_address layout "u" [ 3; 7 ] in
  let aw = Layout.element_address layout "w" [ 0; 0 ] in
  check Alcotest.bool "w after u" true (aw >= au + 512);
  check Alcotest.int "file offset" (9 * 512) (Layout.element_file_offset layout "u" [ 1; 1 ]);
  check Alcotest.int "elements per stripe" 8 (Layout.elements_per_stripe layout "u");
  let d, addr, size = Layout.request_of_element layout "u" [ 2; 1 ] in
  check Alcotest.int "request disk" 2 d;
  check Alcotest.int "request size" 512 size;
  check Alcotest.int "request addr" (Layout.element_address layout "u" [ 2; 1 ]) addr;
  check Alcotest.int "disk_of_address roundtrip" d (Layout.disk_of_address layout addr)

let test_layout_lba () =
  let lba_row0_last = Layout.lba_of_element layout "u" [ 0; 7 ] in
  let lba_row0_first = Layout.lba_of_element layout "u" [ 0; 0 ] in
  check Alcotest.int "within-stripe delta" (7 * 512) (lba_row0_last - lba_row0_first);
  (* Rows 0 and 4 of a taller array sit on the same disk, in adjacent
     stripes: LBA-contiguous although four stripes apart in the file. *)
  let tall = Ir.program [ Ir.array_decl ~elem_size:512 "t" [ 16; 8 ] ] [] in
  let l2 = Layout.make ~default:stripe_row tall in
  let last_of_row0 = Layout.lba_of_element l2 "t" [ 0; 7 ] in
  let first_of_row4 = Layout.lba_of_element l2 "t" [ 4; 0 ] in
  check Alcotest.int "next stripe on same disk is LBA-adjacent" 512
    (first_of_row4 - last_of_row0);
  check Alcotest.int "same disk"
    (Layout.disk_of_element l2 "t" [ 0; 0 ])
    (Layout.disk_of_element l2 "t" [ 4; 0 ])

let test_layout_errors () =
  Alcotest.check_raises "unknown array" Not_found (fun () ->
      ignore (Layout.find layout "zz"));
  expect_invalid (fun () -> Layout.make ~overrides:[ ("zz", stripe_row) ] program);
  expect_invalid (fun () -> Layout.disk_of_element layout "u" [ 9; 0 ])

let prop_disk_in_range =
  qtest "Layout: disk always within factor"
    QCheck2.Gen.(pair (int_range 0 3) (int_range 0 7))
    (fun (i, j) ->
      let d = Layout.disk_of_element layout "u" [ i; j ] in
      d >= 0 && d < 4)

let prop_lba_injective_per_disk =
  qtest "Layout: (disk, lba) identifies the element"
    QCheck2.Gen.(
      pair
        (pair (int_range 0 3) (int_range 0 7))
        (pair (int_range 0 3) (int_range 0 7)))
    (fun ((i1, j1), (i2, j2)) ->
      let l1 = Layout.lba_of_element layout "u" [ i1; j1 ] in
      let l2 = Layout.lba_of_element layout "u" [ i2; j2 ] in
      let d1 = Layout.disk_of_element layout "u" [ i1; j1 ] in
      let d2 = Layout.disk_of_element layout "u" [ i2; j2 ] in
      (not (l1 = l2 && d1 = d2)) || (i1 = i2 && j1 = j2))

(* --- RAID sublayer (hidden second-level striping, Section 2) --- *)

module Raid = Dp_layout.Raid

let test_raid_mapping () =
  let r = Raid.make ~unit_bytes:100 ~disks:4 in
  check Alcotest.(pair int int) "first unit" (0, 50) (Raid.place r 50);
  check Alcotest.(pair int int) "second unit" (1, 10) (Raid.place r 110);
  check Alcotest.(pair int int) "wraps" (0, 105) (Raid.place r 405);
  check Alcotest.int "member" 2 (Raid.member_of_lba r 250);
  check Alcotest.(list int) "span members" [ 0; 1; 2 ] (Raid.members_of_span r ~offset:0 ~size:250);
  check Alcotest.(list int) "full wrap" [ 0; 1; 2; 3 ]
    (Raid.members_of_span r ~offset:50 ~size:1000);
  check Alcotest.(list int) "empty span" [] (Raid.members_of_span r ~offset:0 ~size:0)

let test_raid_single_disk () =
  (* The paper's experimental configuration: one disk per node, identity
     mapping. *)
  let r = Raid.single_disk in
  check Alcotest.(pair int int) "identity" (0, 123456) (Raid.place r 123456);
  check Alcotest.(list int) "one member" [ 0 ]
    (Raid.members_of_span r ~offset:0 ~size:(1 lsl 40))

let prop_raid_bijective =
  qtest "Raid: place is injective"
    QCheck2.Gen.(pair (int_range 0 5000) (int_range 0 5000))
    (fun (a, b) ->
      let r = Raid.make ~unit_bytes:64 ~disks:3 in
      a = b || Raid.place r a <> Raid.place r b)

let suites =
  [
    ( "layout.striping",
      [
        Alcotest.test_case "basics" `Quick test_striping_basics;
        Alcotest.test_case "validation" `Quick test_striping_validation;
        Alcotest.test_case "span" `Quick test_striping_span;
      ] );
    ( "layout",
      [
        Alcotest.test_case "mapping" `Quick test_layout_mapping;
        Alcotest.test_case "lba space" `Quick test_layout_lba;
        Alcotest.test_case "errors" `Quick test_layout_errors;
        prop_disk_in_range;
        prop_lba_injective_per_disk;
      ] );
    ( "layout.raid",
      [
        Alcotest.test_case "mapping" `Quick test_raid_mapping;
        Alcotest.test_case "single disk" `Quick test_raid_single_disk;
        prop_raid_bijective;
      ] );
  ]
