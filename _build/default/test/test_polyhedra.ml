(* Tests for the omega-lite integer set library: constraints, sets,
   unions and loop code generation. *)

module Lincons = Dp_polyhedra.Lincons
module Iset = Dp_polyhedra.Iset
module Union = Dp_polyhedra.Union
module Codegen = Dp_polyhedra.Codegen
module Ir = Dp_ir.Ir
module A = Dp_affine.Affine

let check = Alcotest.check
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let x = A.var "x"
let y = A.var "y"
let c = A.const

(* --- Lincons --- *)

let test_lincons_eval () =
  let env = function "x" -> 7 | "y" -> 2 | _ -> raise Not_found in
  check Alcotest.bool "x - 5 >= 0 at 7" true (Lincons.eval env (Lincons.ge (A.sub x (c 5))));
  check Alcotest.bool "x - y = 5" true (Lincons.eval env (Lincons.eq (A.sub x y) (c 5)));
  check Alcotest.bool "x = 1 (mod 3)" true
    (Lincons.eval env (Lincons.stride (A.sub x (c 1)) 3));
  check Alcotest.bool "x = 0 (mod 3)" false (Lincons.eval env (Lincons.stride x 3));
  check Alcotest.bool "negative operand mod" true
    (Lincons.eval (fun _ -> -3) (Lincons.stride (A.var "x") 3))

let test_lincons_trivial () =
  check Alcotest.bool "3 >= 0 true" true (Lincons.is_trivially_true (Lincons.ge (c 3)));
  check Alcotest.bool "-1 >= 0 false" true
    (Lincons.is_trivially_false (Lincons.ge (c (-1))));
  check Alcotest.bool "mod 1 trivial" true (Lincons.is_trivially_true (Lincons.stride x 1));
  check Alcotest.bool "x >= 0 not trivial" false
    (Lincons.is_trivially_true (Lincons.ge x))

(* Negation covers exactly the complement. *)
let cons_gen =
  QCheck2.Gen.(
    oneof
      [
        map2 (fun a b -> Lincons.ge (A.of_terms ~const:b [ ("x", a) ])) (int_range (-3) 3)
          (int_range (-10) 10);
        map2
          (fun a b -> Lincons.eq (A.of_terms [ ("x", a) ]) (c b))
          (int_range (-3) 3) (int_range (-10) 10);
        map2
          (fun m r -> Lincons.stride (A.sub x (c r)) (m + 1))
          (int_range 1 5) (int_range 0 4);
      ])

let prop_negate_complement =
  qtest "Lincons: v satisfies c xor some negation disjunct"
    QCheck2.Gen.(pair cons_gen (int_range (-30) 30))
    (fun (cstr, v) ->
      let env = function "x" -> v | _ -> raise Not_found in
      let in_c = Lincons.eval env cstr in
      let in_neg = List.exists (Lincons.eval env) (Lincons.negate cstr) in
      in_c <> in_neg)

(* --- Iset --- *)

let box2 xlo xhi ylo yhi =
  Iset.make [ "x"; "y" ]
    [
      Lincons.le (c xlo) x;
      Lincons.le x (c xhi);
      Lincons.le (c ylo) y;
      Lincons.le y (c yhi);
    ]

let test_iset_enumerate_box () =
  let s = box2 0 2 1 2 in
  let pts = Iset.enumerate s in
  check Alcotest.int "6 points" 6 (List.length pts);
  check Alcotest.(array int) "first point" [| 0; 1 |] (List.hd pts);
  check Alcotest.(array int) "last point" [| 2; 2 |] (List.nth pts 5);
  check Alcotest.int "cardinal" 6 (Iset.cardinal s);
  check Alcotest.bool "contains" true (Iset.contains s [| 1; 2 |]);
  check Alcotest.bool "not contains" false (Iset.contains s [| 1; 0 |])

let test_iset_triangle () =
  (* x in [0,3], y in [x,3] *)
  let s =
    Iset.make [ "x"; "y" ]
      [ Lincons.le (c 0) x; Lincons.le x (c 3); Lincons.le x y; Lincons.le y (c 3) ]
  in
  check Alcotest.int "triangle cardinal" 10 (Iset.cardinal s)

let test_iset_stride () =
  let s = Iset.constrain (box2 0 10 0 0) [ Lincons.stride (A.sub x (c 1)) 4 ] in
  let xs = List.map (fun p -> p.(0)) (Iset.enumerate s) in
  check Alcotest.(list int) "x = 1 mod 4" [ 1; 5; 9 ] xs

let test_iset_empty () =
  let s = Iset.constrain (box2 0 5 0 5) [ Lincons.le (c 7) x ] in
  check Alcotest.bool "definitely empty" true (Iset.definitely_empty s);
  check Alcotest.bool "exactly empty" true (Iset.is_empty_exact s);
  (* Integer-empty but rationally nonempty: 1 <= 2x <= 1 has x = 1/2. *)
  let s2 =
    Iset.make [ "x" ]
      [ Lincons.ge (A.sub (A.scale 2 x) (c 1)); Lincons.ge (A.sub (c 1) (A.scale 2 x)) ]
  in
  check Alcotest.bool "rational relaxation cannot prove" false (Iset.definitely_empty s2);
  check Alcotest.bool "scan proves empty" true (Iset.is_empty_exact s2)

let test_iset_eliminate () =
  (* Project {0<=x<=3, x<=y<=x+1} onto x: still 0..3. *)
  let s =
    Iset.make [ "x"; "y" ]
      [
        Lincons.le (c 0) x;
        Lincons.le x (c 3);
        Lincons.le x y;
        Lincons.le y (A.add x (c 1));
      ]
  in
  let p = Iset.eliminate "y" s in
  check Alcotest.(list string) "one var left" [ "x" ] p.Iset.vars;
  check Alcotest.int "projection cardinal" 4 (Iset.cardinal p)

let test_iset_unbounded () =
  let s = Iset.make [ "x" ] [ Lincons.le (c 0) x ] in
  Alcotest.check_raises "unbounded raises" (Iset.Unbounded "x") (fun () ->
      ignore (Iset.enumerate s))

let test_iset_of_nest () =
  let n =
    Ir.nest 0
      [ Ir.loop "i" (c 0) (c 4); Ir.loop "j" (A.var "i") (c 4) ]
      [ Ir.stmt 0 [] ]
  in
  let s = Iset.of_nest n in
  check Alcotest.int "matches enumeration" (Ir.iteration_count n) (Iset.cardinal s)

(* Random small sets over x,y: box plus optional extras. *)
let small_set_gen =
  QCheck2.Gen.(
    let bound = int_range (-4) 6 in
    map2
      (fun (xlo, xhi, ylo, yhi) extras ->
        let base =
          [
            Lincons.le (c xlo) x;
            Lincons.le x (c (max xlo xhi));
            Lincons.le (c ylo) y;
            Lincons.le y (c (max ylo yhi));
          ]
        in
        Iset.make [ "x"; "y" ] (base @ extras))
      (quad bound bound bound bound)
      (list_size (int_range 0 2)
         (oneof
            [
              map2
                (fun a b -> Lincons.ge (A.of_terms ~const:b [ ("x", a); ("y", 1) ]))
                (int_range (-2) 2) (int_range (-5) 5);
              map2
                (fun m r -> Lincons.stride (A.sub (A.add x y) (c r)) (m + 1))
                (int_range 1 3) (int_range 0 3);
            ])))

let brute_force s =
  (* Enumerate candidate points over a generous box and filter. *)
  let pts = ref [] in
  for xv = -10 to 12 do
    for yv = -10 to 12 do
      if Iset.contains s [| xv; yv |] then pts := [| xv; yv |] :: !pts
    done
  done;
  List.rev !pts

let prop_enumerate_exact =
  qtest ~count:120 "Iset: enumerate = brute force" small_set_gen (fun s ->
      let fast = Iset.enumerate s in
      let slow = brute_force s in
      List.sort compare fast = List.sort compare slow)

let prop_eliminate_sound =
  qtest ~count:120 "Iset: projection contains every projected point" small_set_gen
    (fun s ->
      let p = Iset.eliminate "y" s in
      List.for_all (fun pt -> Iset.contains p [| pt.(0) |]) (Iset.enumerate s))

let test_iset_misc () =
  let u = Iset.universe [ "x" ] in
  check Alcotest.bool "universe contains" true (Iset.contains u [| 42 |]);
  let s = box2 0 3 0 3 in
  let renamed = Iset.rename_var s "x" "z" in
  check Alcotest.(list string) "renamed vars" [ "z"; "y" ] renamed.Iset.vars;
  check Alcotest.int "same cardinal" (Iset.cardinal s) (Iset.cardinal renamed);
  (match Iset.intersect s (Iset.universe [ "a"; "b" ]) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mismatched vars rejected");
  match Iset.make [ "x"; "x" ] [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate vars rejected"

let test_union_intersect () =
  let u =
    Union.union (Union.of_iset (box2 0 3 0 0)) (Union.of_iset (box2 10 13 0 0))
  in
  let cut = Union.intersect_iset u (box2 2 11 0 0) in
  check Alcotest.int "clipped cardinal" 4 (Union.cardinal cut);
  check Alcotest.bool "kept point" true (Union.contains cut [| 3; 0 |]);
  check Alcotest.bool "dropped point" false (Union.contains cut [| 0; 0 |])

(* --- Union --- *)

let prop_difference_semantics =
  qtest ~count:80 "Union: u - s has membership (in u) && (not in s)"
    QCheck2.Gen.(pair small_set_gen small_set_gen)
    (fun (a, b) ->
      let diff = Union.difference (Union.of_iset a) b in
      let ok = ref true in
      for xv = -10 to 12 do
        for yv = -10 to 12 do
          let p = [| xv; yv |] in
          let expected = Iset.contains a p && not (Iset.contains b p) in
          if Union.contains diff p <> expected then ok := false
        done
      done;
      !ok)

let test_union_basic () =
  let a = box2 0 2 0 0 and b = box2 2 4 0 0 in
  let u = Union.union (Union.of_iset a) (Union.of_iset b) in
  check Alcotest.int "union dedup cardinal" 5 (Union.cardinal u);
  check Alcotest.bool "not empty" false (Union.is_empty_exact u);
  let nothing = Union.difference u (box2 (-1) 5 0 0) in
  check Alcotest.bool "covered difference empty" true (Union.is_empty_exact nothing)

(* --- Codegen --- *)

let test_codegen_box () =
  let s = box2 0 2 1 2 in
  let code = Codegen.scan s ~payload:"S" in
  let scanned = Codegen.points_of_code code (fun v -> failwith ("free var " ^ v)) in
  check
    Alcotest.(list (array int))
    "codegen scans the box" (Iset.enumerate s) scanned

let test_codegen_stride () =
  let s = Iset.constrain (box2 0 10 0 0) [ Lincons.stride (A.sub x (c 3)) 4 ] in
  let code = Codegen.scan s ~payload:"S" in
  let scanned = Codegen.points_of_code code (fun _ -> 0) in
  check
    Alcotest.(list (array int))
    "strided scan" (Iset.enumerate s) scanned;
  (* The loop header carries the step. *)
  match code with
  | [ Codegen.For { step; _ } ] -> check Alcotest.int "step 4" 4 step
  | _ -> Alcotest.fail "expected a single for"

let prop_codegen_matches_enumerate =
  qtest ~count:120 "Codegen: generated loops scan exactly the set" small_set_gen (fun s ->
      match Codegen.scan s ~payload:"S" with
      | code ->
          let scanned = Codegen.points_of_code code (fun _ -> 0) in
          List.sort compare scanned = List.sort compare (Iset.enumerate s)
          && scanned = Iset.enumerate s (* same lexicographic order *)
      | exception Iset.Unbounded _ -> QCheck2.assume_fail ())

let suites =
  [
    ( "polyhedra.lincons",
      [
        Alcotest.test_case "eval" `Quick test_lincons_eval;
        Alcotest.test_case "trivial" `Quick test_lincons_trivial;
        prop_negate_complement;
      ] );
    ( "polyhedra.iset",
      [
        Alcotest.test_case "box enumeration" `Quick test_iset_enumerate_box;
        Alcotest.test_case "triangle" `Quick test_iset_triangle;
        Alcotest.test_case "stride" `Quick test_iset_stride;
        Alcotest.test_case "emptiness" `Quick test_iset_empty;
        Alcotest.test_case "eliminate" `Quick test_iset_eliminate;
        Alcotest.test_case "unbounded" `Quick test_iset_unbounded;
        Alcotest.test_case "of_nest" `Quick test_iset_of_nest;
        prop_enumerate_exact;
        prop_eliminate_sound;
        Alcotest.test_case "universe/rename/validation" `Quick test_iset_misc;
      ] );
    ( "polyhedra.union",
      [
        Alcotest.test_case "basic" `Quick test_union_basic;
        Alcotest.test_case "intersect" `Quick test_union_intersect;
        prop_difference_semantics;
      ] );
    ( "polyhedra.codegen",
      [
        Alcotest.test_case "box" `Quick test_codegen_box;
        Alcotest.test_case "stride" `Quick test_codegen_stride;
        prop_codegen_matches_enumerate;
      ] );
  ]
