(* Tests for the loop-nest IR: validation, iteration enumeration
   (including triangular bounds) and element-access resolution. *)

module Ir = Dp_ir.Ir
module A = Dp_affine.Affine

let check = Alcotest.check
let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let i = A.var "i"
let j = A.var "j"
let c = A.const

(* A small well-formed program: one rectangular nest, one triangular. *)
let square_nest =
  Ir.nest 0
    [ Ir.loop "i" (c 0) (c 3); Ir.loop "j" (c 0) (c 2) ]
    [ Ir.stmt 0 [ Ir.read "u" [ i; j ]; Ir.write "w" [ j; i ] ] ]

let tri_nest =
  Ir.nest 1
    [ Ir.loop "i" (c 0) (c 3); Ir.loop "j" i (c 3) ]
    [ Ir.stmt 1 [ Ir.read "u" [ i; j ] ] ]

let good_program =
  Ir.program
    [ Ir.array_decl "u" [ 4; 4 ]; Ir.array_decl "w" [ 4; 4 ] ]
    [ square_nest; tri_nest ]

let test_validate_ok () =
  match Ir.validate good_program with
  | Ok () -> ()
  | Error es ->
      Alcotest.failf "expected valid program, got: %a"
        (Format.pp_print_list Ir.pp_error)
        es

let expect_invalid name prog pred =
  match Ir.validate prog with
  | Ok () -> Alcotest.failf "%s: expected validation failure" name
  | Error es ->
      if not (List.exists pred es) then
        Alcotest.failf "%s: expected a specific error, got: %a" name
          (Format.pp_print_list Ir.pp_error)
          es

let test_validate_errors () =
  expect_invalid "unknown array"
    (Ir.program [ Ir.array_decl "u" [ 4 ] ]
       [ Ir.nest 0 [ Ir.loop "i" (c 0) (c 3) ] [ Ir.stmt 0 [ Ir.read "nope" [ i ] ] ] ])
    (function Ir.Unknown_array { array = "nope"; _ } -> true | _ -> false);
  expect_invalid "arity mismatch"
    (Ir.program [ Ir.array_decl "u" [ 4; 4 ] ]
       [ Ir.nest 0 [ Ir.loop "i" (c 0) (c 3) ] [ Ir.stmt 0 [ Ir.read "u" [ i ] ] ] ])
    (function Ir.Arity_mismatch { expected = 2; got = 1; _ } -> true | _ -> false);
  expect_invalid "unbound variable"
    (Ir.program [ Ir.array_decl "u" [ 4 ] ]
       [ Ir.nest 0 [ Ir.loop "i" (c 0) (c 3) ] [ Ir.stmt 0 [ Ir.read "u" [ j ] ] ] ])
    (function Ir.Unbound_variable { var = "j"; _ } -> true | _ -> false);
  expect_invalid "duplicate index"
    (Ir.program [ Ir.array_decl "u" [ 4 ] ]
       [
         Ir.nest 0
           [ Ir.loop "i" (c 0) (c 3); Ir.loop "i" (c 0) (c 1) ]
           [ Ir.stmt 0 [ Ir.read "u" [ i ] ] ];
       ])
    (function Ir.Duplicate_index { var = "i"; _ } -> true | _ -> false);
  expect_invalid "duplicate arrays"
    (Ir.program [ Ir.array_decl "u" [ 4 ]; Ir.array_decl "u" [ 5 ] ] [])
    (function Ir.Duplicate_array "u" -> true | _ -> false);
  expect_invalid "duplicate nest ids"
    (Ir.program [ Ir.array_decl "u" [ 4 ] ]
       [
         Ir.nest 7 [ Ir.loop "i" (c 0) (c 1) ] [ Ir.stmt 0 [ Ir.read "u" [ i ] ] ];
         Ir.nest 7 [ Ir.loop "j" (c 0) (c 1) ] [ Ir.stmt 1 [ Ir.read "u" [ j ] ] ];
       ])
    (function Ir.Duplicate_nest_id 7 -> true | _ -> false);
  expect_invalid "empty nest"
    (Ir.program [] [ Ir.nest 0 [] [] ])
    (function Ir.Empty_nest 0 -> true | _ -> false);
  (* Bound referencing an inner index is unbound at that point. *)
  expect_invalid "forward bound reference"
    (Ir.program [ Ir.array_decl "u" [ 4 ] ]
       [
         Ir.nest 0
           [ Ir.loop "i" (c 0) j; Ir.loop "j" (c 0) (c 3) ]
           [ Ir.stmt 0 [ Ir.read "u" [ i ] ] ];
       ])
    (function Ir.Unbound_variable { var = "j"; _ } -> true | _ -> false)

let test_enumeration_rect () =
  let iters = Ir.nest_iterations square_nest in
  check Alcotest.int "count 4x3" 12 (List.length iters);
  check Alcotest.int "iteration_count agrees" 12 (Ir.iteration_count square_nest);
  check Alcotest.(array int) "first" [| 0; 0 |] (List.hd iters);
  check Alcotest.(array int) "last" [| 3; 2 |] (List.nth iters 11);
  (* Lexicographic order throughout. *)
  let sorted =
    List.sort Dp_util.Ivec.compare_lex iters = iters
  in
  check Alcotest.bool "lexicographic order" true sorted

let test_enumeration_triangular () =
  let iters = Ir.nest_iterations tri_nest in
  (* j from i to 3: 4 + 3 + 2 + 1 = 10 *)
  check Alcotest.int "triangular count" 10 (List.length iters);
  List.iter
    (fun v -> check Alcotest.bool "j >= i" true (v.(1) >= v.(0)))
    iters

let test_element_accesses () =
  let accesses = Ir.element_accesses square_nest [| 2; 1 |] in
  check Alcotest.int "two refs" 2 (List.length accesses);
  let (r1, e1), (r2, e2) = (List.hd accesses, List.nth accesses 1) in
  check Alcotest.string "first array" "u" r1.Ir.array;
  check Alcotest.(list int) "read coords" [ 2; 1 ] e1;
  check Alcotest.string "second array" "w" r2.Ir.array;
  check Alcotest.(list int) "transposed write coords" [ 1; 2 ] e2

let test_queries () =
  check Alcotest.int "array_elems" 16 (Ir.array_elems (Ir.array_decl "u" [ 4; 4 ]));
  check Alcotest.int "array_bytes" 128 (Ir.array_bytes (Ir.array_decl "u" [ 4; 4 ]));
  check Alcotest.int "total_bytes" 256 (Ir.total_bytes good_program);
  check Alcotest.int "depth" 2 (Ir.nest_depth square_nest);
  check Alcotest.(list string) "indices" [ "i"; "j" ] (Ir.nest_indices square_nest);
  check Alcotest.(list string) "arrays_referenced" [ "u"; "w" ]
    (Ir.arrays_referenced square_nest);
  check Alcotest.int "iteration_work default" 1000 (Ir.iteration_work square_nest)

let test_env_of_iteration () =
  let env = Ir.env_of_iteration square_nest [| 3; 1 |] in
  check Alcotest.int "i" 3 (env "i");
  check Alcotest.int "j" 1 (env "j");
  Alcotest.check_raises "unknown" Not_found (fun () -> ignore (env "zz"))

(* Property: enumeration visits exactly the box, each point once. *)
let prop_enumeration_box =
  qtest "Ir: rectangular enumeration is exact"
    QCheck2.Gen.(pair (int_range 0 6) (int_range 0 6))
    (fun (n, m) ->
      let nest =
        Ir.nest 0
          [ Ir.loop "i" (c 0) (c n); Ir.loop "j" (c 0) (c m) ]
          [ Ir.stmt 0 [] ]
      in
      let iters = Ir.nest_iterations nest in
      List.length iters = (n + 1) * (m + 1)
      && List.length (Dp_util.Listx.uniq Dp_util.Ivec.equal iters) = List.length iters)

let prop_triangular_count =
  qtest "Ir: triangular enumeration count = n(n+1)/2" QCheck2.Gen.(int_range 1 12)
    (fun n ->
      let nest =
        Ir.nest 0
          [ Ir.loop "i" (c 1) (c n); Ir.loop "j" (c 1) i ]
          [ Ir.stmt 0 [] ]
      in
      Ir.iteration_count nest = n * (n + 1) / 2)

let suites =
  [
    ( "ir",
      [
        Alcotest.test_case "validate ok" `Quick test_validate_ok;
        Alcotest.test_case "validate errors" `Quick test_validate_errors;
        Alcotest.test_case "rectangular enumeration" `Quick test_enumeration_rect;
        Alcotest.test_case "triangular enumeration" `Quick test_enumeration_triangular;
        Alcotest.test_case "element accesses" `Quick test_element_accesses;
        Alcotest.test_case "queries" `Quick test_queries;
        Alcotest.test_case "env_of_iteration" `Quick test_env_of_iteration;
        prop_enumeration_box;
        prop_triangular_count;
      ] );
  ]
