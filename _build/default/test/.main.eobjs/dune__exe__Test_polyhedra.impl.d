test/test_polyhedra.ml: Alcotest Array Dp_affine Dp_ir Dp_polyhedra List QCheck2 QCheck_alcotest
