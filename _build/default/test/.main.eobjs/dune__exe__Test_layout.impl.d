test/test_layout.ml: Alcotest Dp_ir Dp_layout List QCheck2 QCheck_alcotest
