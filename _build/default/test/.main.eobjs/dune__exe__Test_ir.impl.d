test/test_ir.ml: Alcotest Array Dp_affine Dp_ir Dp_util Format List QCheck2 QCheck_alcotest
