test/test_trace.ml: Alcotest Array Dp_affine Dp_dependence Dp_ir Dp_layout Dp_restructure Dp_trace Dp_workloads Filename Float Fun List Option Sys
