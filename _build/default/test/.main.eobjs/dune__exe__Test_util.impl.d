test/test_util.ml: Alcotest Array Dp_util List QCheck2 QCheck_alcotest
