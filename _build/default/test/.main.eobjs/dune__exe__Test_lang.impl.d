test/test_lang.ml: Alcotest Dp_affine Dp_ir Dp_lang Dp_layout Dp_workloads List Option String
