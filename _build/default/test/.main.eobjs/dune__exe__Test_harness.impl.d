test/test_harness.ml: Alcotest Buffer Dp_affine Dp_harness Dp_ir Dp_workloads Float Format List Printf String
