test/test_disksim.ml: Alcotest Array Dp_disksim Dp_ir Dp_trace List Option Printf QCheck2 QCheck_alcotest String
