test/test_workloads.ml: Alcotest Dp_dependence Dp_disksim Dp_ir Dp_lang Dp_layout Dp_restructure Dp_trace Dp_workloads Filename Format List Option Printf Sys
