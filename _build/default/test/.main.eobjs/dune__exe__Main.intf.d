test/main.mli:
