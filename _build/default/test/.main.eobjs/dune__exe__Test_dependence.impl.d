test/test_dependence.ml: Alcotest Array Dp_affine Dp_dependence Dp_ir List QCheck2 QCheck_alcotest
