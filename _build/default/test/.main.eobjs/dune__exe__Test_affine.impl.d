test/test_affine.ml: Alcotest Array Dp_affine List QCheck2 QCheck_alcotest
