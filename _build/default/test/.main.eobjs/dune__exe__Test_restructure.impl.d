test/test_restructure.ml: Alcotest Array Dp_affine Dp_dependence Dp_ir Dp_layout Dp_polyhedra Dp_restructure Dp_util Dp_workloads Fun List Option Printf QCheck2 QCheck_alcotest
