test/test_cache.ml: Alcotest Dp_cache Dp_ir Dp_trace Dp_util List QCheck2 QCheck_alcotest
