(* Tests for the storage-cache layer: the LRU core, victim policies and
   the closed-loop trace filter. *)

module Lru = Dp_cache.Lru
module Filter = Dp_cache.Filter
module Request = Dp_trace.Request
module Ir = Dp_ir.Ir

let check = Alcotest.check
let qtest ?(count = 150) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let test_lru_basic () =
  let c = Lru.create ~capacity:2 () in
  check Alcotest.bool "first access misses" false (Lru.access c 1);
  check Alcotest.bool "second key misses" false (Lru.access c 2);
  check Alcotest.bool "re-access hits" true (Lru.access c 1);
  (* 1 is now most recent; inserting 3 evicts 2. *)
  check Alcotest.bool "third key misses" false (Lru.access c 3);
  check Alcotest.bool "2 evicted" false (Lru.mem c 2);
  check Alcotest.bool "1 kept" true (Lru.mem c 1);
  check Alcotest.int "size" 2 (Lru.size c);
  check Alcotest.int "hits" 1 (Lru.hits c);
  check Alcotest.int "misses" 3 (Lru.misses c);
  check (Alcotest.float 1e-9) "hit rate" 0.25 (Lru.hit_rate c)

let test_lru_validation () =
  (match Lru.create ~capacity:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 rejected");
  match Lru.create ~tail_window:0 ~capacity:1 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "tail_window 0 rejected"

let test_prefer_policy () =
  (* Prefer evicting even keys. *)
  let prefer a b = compare (a mod 2 = 0) (b mod 2 = 0) in
  let c = Lru.create ~capacity:3 ~tail_window:3 ~policy:(Lru.Prefer prefer) () in
  List.iter (fun k -> ignore (Lru.access c k)) [ 1; 2; 3 ];
  ignore (Lru.access c 4);
  (* 2 is the even key in the tail window: evicted instead of 1. *)
  check Alcotest.bool "even key evicted" false (Lru.mem c 2);
  check Alcotest.bool "odd LRU key kept" true (Lru.mem c 1)

(* LRU reference model: a list, most recent first. *)
let prop_lru_matches_model =
  qtest "Lru: matches a list-based reference model"
    QCheck2.Gen.(
      pair (int_range 1 6) (list_size (int_range 0 120) (int_range 0 12)))
    (fun (cap, keys) ->
      let c = Lru.create ~capacity:cap () in
      let model = ref [] in
      List.for_all
        (fun k ->
          let expect_hit = List.mem k !model in
          let got_hit = Lru.access c k in
          model := k :: List.filter (( <> ) k) !model;
          if List.length !model > cap then
            model := Dp_util.Listx.take cap !model;
          got_hit = expect_hit)
        keys)

(* --- trace filter --- *)

let req ?(proc = 0) ?(mode = Ir.Read) ~addr ~think () =
  {
    Request.arrival_ms = 0.0;
    think_ms = think;
    seg = 0;
    address = addr;
    lba = addr;
    size = 64 * 1024;
    mode;
    proc;
    disk = 0;
  }

let test_filter_absorbs_hits () =
  let reqs =
    [
      req ~addr:0 ~think:1.0 ();
      req ~addr:64 ~think:2.0 ();
      req ~addr:0 ~think:3.0 () (* hit *);
      req ~addr:128 ~think:4.0 ();
    ]
  in
  let survivors, st =
    Filter.apply ~cache:(fun () -> Lru.create ~capacity:8 ()) ~hit_cost_ms:0.5 reqs
  in
  check Alcotest.int "one absorbed" 3 st.Filter.after;
  check Alcotest.int "before" 4 st.Filter.before;
  (* The absorbed request's think (3.0) plus the hit cost folds into the
     next survivor. *)
  let last = List.nth survivors 2 in
  check Alcotest.int "last survivor address" 128 last.Request.address;
  check (Alcotest.float 1e-9) "think folded" 7.5 last.Request.think_ms

let test_filter_writes_pass_through () =
  let reqs =
    [
      req ~mode:Ir.Write ~addr:0 ~think:1.0 ();
      req ~mode:Ir.Write ~addr:0 ~think:1.0 () (* write hit still reaches disk *);
      req ~mode:Ir.Read ~addr:0 ~think:1.0 () (* read of cached block absorbed *);
    ]
  in
  let survivors, st =
    Filter.apply ~cache:(fun () -> Lru.create ~capacity:8 ()) reqs
  in
  check Alcotest.int "writes survive" 2 (List.length survivors);
  check Alcotest.bool "all survivors are writes" true
    (List.for_all (fun (r : Request.t) -> r.Request.mode = Ir.Write) survivors);
  check Alcotest.bool "hit rate counted" true (st.Filter.hit_rate > 0.0)

let test_filter_per_proc_isolation () =
  (* Two processors touching the same block each miss once: caches are
     per-processor. *)
  let reqs =
    [ req ~proc:0 ~addr:0 ~think:1.0 (); req ~proc:1 ~addr:0 ~think:1.0 () ]
  in
  let survivors, _ = Filter.apply ~cache:(fun () -> Lru.create ~capacity:8 ()) reqs in
  check Alcotest.int "both survive" 2 (List.length survivors)

let prop_filter_conserves_think =
  (* Total think time (plus hit costs) is conserved: the filtered trace
     keeps the closed-loop timeline honest. *)
  qtest ~count:100 "Filter: think time conserved"
    QCheck2.Gen.(list_size (int_range 1 60) (pair (int_range 0 7) (int_range 1 50)))
    (fun spec ->
      let reqs =
        List.map (fun (block, think) -> req ~addr:(block * 64) ~think:(float_of_int think) ()) spec
      in
      let survivors, st =
        Filter.apply ~cache:(fun () -> Lru.create ~capacity:3 ()) ~hit_cost_ms:0.0 reqs
      in
      let total l = List.fold_left (fun a (r : Request.t) -> a +. r.Request.think_ms) 0.0 l in
      let absorbed_tail =
        (* Think of trailing absorbed requests (no later survivor) is
           dropped legitimately; all other think must be conserved. *)
        total reqs -. total survivors
      in
      st.Filter.after <= st.Filter.before && absorbed_tail >= -1e-9)

(* --- prefetch (burst shaping) --- *)

module Prefetch = Dp_cache.Prefetch

let test_prefetch_identity () =
  let reqs = [ req ~addr:0 ~think:1.0 (); req ~addr:64 ~think:2.0 () ] in
  check Alcotest.bool "depth 1 is identity" true (Prefetch.apply ~depth:1 reqs = reqs);
  match Prefetch.apply ~depth:0 reqs with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "depth 0 rejected"

let test_prefetch_batches () =
  let reqs =
    [
      req ~addr:0 ~think:1.0 ();
      req ~addr:64 ~think:2.0 ();
      req ~addr:128 ~think:3.0 ();
      req ~addr:192 ~think:4.0 ();
    ]
  in
  let out = Prefetch.apply ~depth:2 reqs in
  check Alcotest.int "same count" 4 (List.length out);
  let thinks = List.map (fun (r : Request.t) -> r.Request.think_ms) out in
  check Alcotest.(list (float 1e-9)) "think collapsed onto heads" [ 3.0; 0.0; 7.0; 0.0 ] thinks;
  (* Addresses preserved in order. *)
  check Alcotest.(list int) "order kept" [ 0; 64; 128; 192 ]
    (List.map (fun (r : Request.t) -> r.Request.address) out);
  (* Total think conserved. *)
  let total l = List.fold_left (fun a (r : Request.t) -> a +. r.Request.think_ms) 0.0 l in
  check (Alcotest.float 1e-9) "think conserved" (total reqs) (total out)

let test_prefetch_write_barrier () =
  let reqs =
    [
      req ~addr:0 ~think:1.0 ();
      req ~mode:Ir.Write ~addr:64 ~think:2.0 ();
      req ~addr:128 ~think:3.0 ();
    ]
  in
  let out = Prefetch.apply ~depth:8 reqs in
  (* The write stays between the reads: no read crosses it. *)
  check Alcotest.(list int) "order kept across barrier" [ 0; 64; 128 ]
    (List.map (fun (r : Request.t) -> r.Request.address) out);
  check Alcotest.bool "write mode preserved" true
    ((List.nth out 1).Request.mode = Ir.Write)

let prop_prefetch_conserves =
  qtest ~count:100 "Prefetch: order and think conserved"
    QCheck2.Gen.(
      pair (int_range 1 10)
        (list_size (int_range 0 50)
           (triple (int_range 0 9) bool (int_range 0 20))))
    (fun (depth, spec) ->
      let reqs =
        List.map
          (fun (block, w, think) ->
            req
              ~mode:(if w then Ir.Write else Ir.Read)
              ~addr:(block * 64) ~think:(float_of_int think) ())
          spec
      in
      let out = Prefetch.apply ~depth reqs in
      let addrs l = List.map (fun (r : Request.t) -> r.Request.address) l in
      let total l = List.fold_left (fun a (r : Request.t) -> a +. r.Request.think_ms) 0.0 l in
      addrs out = addrs reqs && abs_float (total out -. total reqs) < 1e-6)

let suites =
  [
    ( "cache.lru",
      [
        Alcotest.test_case "basic" `Quick test_lru_basic;
        Alcotest.test_case "validation" `Quick test_lru_validation;
        Alcotest.test_case "prefer policy" `Quick test_prefer_policy;
        prop_lru_matches_model;
      ] );
    ( "cache.filter",
      [
        Alcotest.test_case "absorbs hits" `Quick test_filter_absorbs_hits;
        Alcotest.test_case "writes pass through" `Quick test_filter_writes_pass_through;
        Alcotest.test_case "per-proc isolation" `Quick test_filter_per_proc_isolation;
        prop_filter_conserves_think;
      ] );
    ( "cache.prefetch",
      [
        Alcotest.test_case "identity and validation" `Quick test_prefetch_identity;
        Alcotest.test_case "batches" `Quick test_prefetch_batches;
        Alcotest.test_case "write barrier" `Quick test_prefetch_write_barrier;
        prop_prefetch_conserves;
      ] );
  ]
