(* Frontend tests: lexer, parser and resolver of the .dpl language. *)

module Lexer = Dp_lang.Lexer
module Parser = Dp_lang.Parser
module Resolver = Dp_lang.Resolver
module Ast = Dp_lang.Ast
module Token = Dp_lang.Token
module Srcloc = Dp_lang.Srcloc
module Ir = Dp_ir.Ir
module A = Dp_affine.Affine

let check = Alcotest.check

let tokens src =
  List.map fst (Lexer.tokenize ~file:"<test>" src)

let test_lexer_basics () =
  check Alcotest.int "token count (incl. EOF)" 9
    (List.length (tokens "array U[4] elem 8 ;"));
  (match tokens "32K 2M 1G" with
  | [ Token.INT a; Token.INT b; Token.INT c; Token.EOF ] ->
      check Alcotest.int "32K" 32768 a;
      check Alcotest.int "2M" (2 * 1024 * 1024) b;
      check Alcotest.int "1G" (1024 * 1024 * 1024) c
  | _ -> Alcotest.fail "expected three ints");
  (match tokens "for i = 0 .. 9" with
  | [ Token.FOR; Token.IDENT "i"; Token.EQUALS; Token.INT 0; Token.DOTDOT; Token.INT 9; Token.EOF ]
    -> ()
  | _ -> Alcotest.fail "for-loop tokens")

let test_lexer_comments_strings () =
  check Alcotest.int "line comment skipped" 2
    (List.length (tokens "read // everything after is gone\n"));
  check Alcotest.int "block comment skipped" 3
    (List.length (tokens "read /* a \n multi-line \n comment */ write"));
  (match tokens {|"hello \"world\"\n"|} with
  | [ Token.STRING s; Token.EOF ] -> check Alcotest.string "escapes" "hello \"world\"\n" s
  | _ -> Alcotest.fail "string literal")

let expect_lex_error src =
  match Lexer.tokenize ~file:"<t>" src with
  | exception Lexer.Error (_, _) -> ()
  | _ -> Alcotest.failf "expected lexical error on %S" src

let test_lexer_errors () =
  expect_lex_error "@";
  expect_lex_error "\"unterminated";
  expect_lex_error "/* unterminated";
  expect_lex_error ". alone"

let sample =
  {|
// two arrays and two nests
array u[8][8] elem 64K file "u.dat" stripe(unit = 64K, factor = 4, start = 1);
array w[8][8];

nest {
  for i = 0 .. 7 {
    for j = 0 .. i {
      work 500;
      read u[i][j];
      write w[j][2*i - 1] work 700;
    }
  }
}

nest {
  for t = 1 .. 4 {
    read u[t][t];
  }
}
|}

let test_parser_structure () =
  let items = Parser.parse ~file:"<t>" sample in
  check Alcotest.int "four items" 4 (List.length items);
  match items with
  | [ Ast.Array_decl a1; Ast.Array_decl a2; Ast.Nest_decl n1; Ast.Nest_decl n2 ] ->
      check Alcotest.string "name" "u" a1.array_name.Srcloc.value;
      check Alcotest.int "dims" 2 (List.length a1.dims);
      check Alcotest.(option int) "elem" (Some 65536)
        (Option.map (fun (e : int Srcloc.located) -> e.Srcloc.value) a1.elem_size);
      (match a1.stripe with
      | Some sp ->
          check Alcotest.int "unit" 65536 sp.unit_bytes;
          check Alcotest.int "factor" 4 sp.factor;
          check Alcotest.int "start" 1 sp.start_disk
      | None -> Alcotest.fail "expected stripe spec");
      check Alcotest.bool "w has no stripe" true (a2.stripe = None);
      check Alcotest.string "outer index" "i" n1.top.index.Srcloc.value;
      (match n2.top.body with
      | [ Ast.Access a ] ->
          check Alcotest.bool "read" true (a.mode = Ir.Read);
          check Alcotest.string "target" "u" a.target.Srcloc.value
      | _ -> Alcotest.fail "single access in second nest")
  | _ -> Alcotest.fail "unexpected item shapes"

let contains s frag =
  let n = String.length s and m = String.length frag in
  let rec go i = i + m <= n && (String.sub s i m = frag || go (i + 1)) in
  m = 0 || go 0

let expect_parse_error src frag =
  match Parser.parse ~file:"<t>" src with
  | exception Parser.Error (_, msg) ->
      if not (contains msg frag) then
        Alcotest.failf "error %S does not mention %S" msg frag
  | _ -> Alcotest.failf "expected parse error on %S" src

let test_parser_errors () =
  expect_parse_error "array ;" "an array name";
  expect_parse_error "array u;" "dimension";
  expect_parse_error "nest { read u[0]; }" "for";
  expect_parse_error "nest { for i = 0 .. 3 { read u; } }" "subscript";
  expect_parse_error "bogus" "expected 'array' or 'nest'"

let test_resolver_program () =
  let { Resolver.program; stripes } = Resolver.load_string sample in
  (match Ir.validate program with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "resolved program must validate");
  check Alcotest.int "two arrays" 2 (List.length program.Ir.arrays);
  check Alcotest.int "two nests" 2 (List.length program.Ir.nests);
  check Alcotest.int "one stripe" 1 (List.length stripes);
  let n1 = List.hd program.Ir.nests in
  check Alcotest.int "three statements" 3 (List.length n1.Ir.body);
  let cycles = List.map (fun (s : Ir.stmt) -> s.Ir.work_cycles) n1.Ir.body in
  check Alcotest.(list int) "cycles" [ 500; 1000; 700 ] cycles;
  (* The write subscript 2*i - 1 resolves to an affine expression. *)
  let w_stmt = List.nth n1.Ir.body 2 in
  match (List.hd w_stmt.Ir.refs).Ir.subscripts with
  | [ _; e ] ->
      check Alcotest.int "coeff" 2 (A.coeff e "i");
      check Alcotest.int "const" (-1) (A.constant e)
  | _ -> Alcotest.fail "two subscripts"

let expect_resolve_error src frag =
  match Resolver.load_string src with
  | exception Resolver.Error (_, msg) ->
      if not (contains msg frag) then
        Alcotest.failf "error %S does not mention %S" msg frag
  | exception Parser.Error (_, msg) ->
      Alcotest.failf "parse error instead of resolve error: %s" msg
  | _ -> Alcotest.failf "expected resolution error on %S" src

let test_resolver_errors () =
  expect_resolve_error
    "array u[4]; nest { for i = 0 .. 3 { read u[i*i]; } }"
    "nonlinear";
  expect_resolve_error
    "array u[4]; nest { for i = 0 .. 3 { read u[i]; for j = 0 .. 1 { read u[j]; } } }"
    "imperfect";
  expect_resolve_error "array u[4]; array u[5];" "declared twice";
  expect_resolve_error "array u[0];" "positive";
  expect_resolve_error
    "array u[4] stripe(unit = 4K, factor = 2, start = 5);"
    "start disk";
  expect_resolve_error "array u[4]; nest { for i = 0 .. 3 { read v[i]; } }" "undeclared"

let test_emit_roundtrip_exact () =
  (* For resolver-built programs (one access per statement) the emit /
     re-resolve round trip is exact. *)
  let { Resolver.program; stripes } = Resolver.load_string sample in
  let specs = stripes in
  let emitted = Dp_lang.Emit.to_string ~stripes:specs program in
  let { Resolver.program = back; stripes = stripes_back } =
    Resolver.load_string emitted
  in
  check Alcotest.bool "program round-trips" true (program = back);
  check Alcotest.int "stripes survive" (List.length stripes) (List.length stripes_back)

let test_emit_workload_equivalent () =
  (* Hand-built IR may carry several references per statement; the round
     trip preserves the access sequence and per-nest cycle totals. *)
  let app = Option.get (Dp_workloads.Workloads.by_name "FFT") in
  let prog = app.Dp_workloads.App.program in
  let { Resolver.program = back; _ } =
    Resolver.load_string (Dp_lang.Emit.to_string prog)
  in
  check Alcotest.int "same arrays" (List.length prog.Ir.arrays) (List.length back.Ir.arrays);
  check Alcotest.int "same nests" (List.length prog.Ir.nests) (List.length back.Ir.nests);
  List.iter2
    (fun (a : Ir.nest) (b : Ir.nest) ->
      check Alcotest.bool "same loops" true (a.Ir.loops = b.Ir.loops);
      let refs (n : Ir.nest) = List.concat_map (fun (s : Ir.stmt) -> s.Ir.refs) n.Ir.body in
      check Alcotest.bool "same access sequence" true (refs a = refs b);
      let cycles (n : Ir.nest) = Ir.iteration_work n in
      check Alcotest.int "same cycles" (cycles a) (cycles b))
    prog.Ir.nests back.Ir.nests

let test_emit_stripe_spec () =
  let sp =
    Dp_lang.Emit.stripe_spec
      (Dp_layout.Striping.make ~unit_bytes:65536 ~factor:8 ~start_disk:3)
  in
  check Alcotest.int "unit" 65536 sp.Ast.unit_bytes;
  check Alcotest.int "factor" 8 sp.Ast.factor;
  check Alcotest.int "start" 3 sp.Ast.start_disk

let test_resolver_roundtrip_enumeration () =
  (* The triangular nest from the sample enumerates 36 iterations. *)
  let { Resolver.program; _ } = Resolver.load_string sample in
  let n1 = List.hd program.Ir.nests in
  check Alcotest.int "triangular count" 36 (Ir.iteration_count n1)

let suites =
  [
    ( "lang.lexer",
      [
        Alcotest.test_case "basics" `Quick test_lexer_basics;
        Alcotest.test_case "comments and strings" `Quick test_lexer_comments_strings;
        Alcotest.test_case "errors" `Quick test_lexer_errors;
      ] );
    ( "lang.parser",
      [
        Alcotest.test_case "structure" `Quick test_parser_structure;
        Alcotest.test_case "errors" `Quick test_parser_errors;
      ] );
    ( "lang.resolver",
      [
        Alcotest.test_case "program" `Quick test_resolver_program;
        Alcotest.test_case "errors" `Quick test_resolver_errors;
        Alcotest.test_case "enumeration" `Quick test_resolver_roundtrip_enumeration;
      ] );
    ( "lang.emit",
      [
        Alcotest.test_case "exact round-trip" `Quick test_emit_roundtrip_exact;
        Alcotest.test_case "workload equivalence" `Quick test_emit_workload_equivalent;
        Alcotest.test_case "stripe spec" `Quick test_emit_stripe_spec;
      ] );
  ]
