(* Tests for the paper's core algorithms: clustering, the Fig.-3
   disk-reuse scheduler (including the exact Fig.-4 walkthrough), the
   symbolic per-disk sets, and the two parallelization schemes. *)

module Ir = Dp_ir.Ir
module A = Dp_affine.Affine
module Striping = Dp_layout.Striping
module Layout = Dp_layout.Layout
module Concrete = Dp_dependence.Concrete
module Cluster = Dp_restructure.Cluster
module Reuse = Dp_restructure.Reuse_scheduler
module Symbolic = Dp_restructure.Symbolic
module Parallelize = Dp_restructure.Parallelize
module Iset = Dp_polyhedra.Iset

let check = Alcotest.check
let c = A.const
let i = A.var "i"
let j = A.var "j"

(* ------------------------------------------------------------------ *)
(* Figure 4: 13 single-iteration nests over 4 disks with three
   cross-nest dependences (2->9, 6->7, 10->12 in the paper's 1-based
   labels).  Disk assignment of label k is fixed through the element of
   [a] its first reference touches. *)

let fig4_program =
  (* label -> (element of a (disk = elem mod 4), dep action) *)
  let spec =
    [
      (* label, elem, writes B slot, reads B slot *)
      (1, 0, None, None);
      (2, 1, Some 0, None);
      (3, 4, None, None);
      (4, 2, None, None);
      (5, 6, None, None);
      (6, 5, Some 1, None);
      (7, 8, None, Some 1);
      (8, 3, None, None);
      (9, 10, None, Some 0);
      (10, 9, Some 2, None);
      (11, 7, None, None);
      (12, 12, None, Some 2);
      (13, 11, None, None);
    ]
  in
  let nests =
    List.map
      (fun (label, elem, w, r) ->
        let refs =
          [ Ir.read "a" [ c elem ] ]
          @ (match w with Some k -> [ Ir.write "b" [ c k ] ] | None -> [])
          @ (match r with Some k -> [ Ir.read "b" [ c k ] ] | None -> [])
        in
        Ir.nest (label - 1) [ Ir.loop "i" (c 0) (c 0) ] [ Ir.stmt (label - 1) refs ])
      spec
  in
  Ir.program [ Ir.array_decl ~elem_size:64 "a" [ 16 ]; Ir.array_decl ~elem_size:64 "b" [ 4 ] ] nests

let fig4_layout =
  Layout.make ~default:(Striping.make ~unit_bytes:64 ~factor:4 ~start_disk:0) fig4_program

let test_fig4_walkthrough () =
  let g = Concrete.build fig4_program in
  check Alcotest.int "13 instances" 13 (Concrete.instance_count g);
  let s = Reuse.schedule fig4_layout fig4_program g in
  (* Expected: round 1 visits d0 {1,3}, d1 {2,6,10}, d2 {4,5,9},
     d3 {8,11,13}; round 2 visits d0 {7,12}.  seq = label - 1. *)
  check
    Alcotest.(array int)
    "schedule order"
    [| 0; 2; 1; 5; 9; 3; 4; 8; 7; 10; 12; 6; 11 |]
    s.Reuse.order;
  check Alcotest.int "two while-loop rounds" 2 s.Reuse.rounds;
  check
    Alcotest.(list (pair int int))
    "visits" [ (0, 2); (1, 3); (2, 3); (3, 3); (0, 2) ] s.Reuse.visits;
  check Alcotest.bool "legal" true (Concrete.is_legal_order g s.Reuse.order)

(* ------------------------------------------------------------------ *)
(* Dependence-free program: perfect reuse, one round, one visit per
   disk (the ideal of Section 5). *)

let free_program =
  Ir.program
    [ Ir.array_decl ~elem_size:64 "u" [ 16; 4 ] ]
    [
      Ir.nest 0
        [ Ir.loop "i" (c 0) (c 15); Ir.loop "j" (c 0) (c 3) ]
        [ Ir.stmt 0 [ Ir.read "u" [ i; j ] ] ];
    ]

let free_layout =
  (* One row (4 elems x 64 B) per stripe over 4 disks. *)
  Layout.make ~default:(Striping.make ~unit_bytes:256 ~factor:4 ~start_disk:0) free_program

let test_perfect_reuse () =
  let g = Concrete.build free_program in
  let s = Reuse.schedule free_layout free_program g in
  check Alcotest.int "one round" 1 s.Reuse.rounds;
  check Alcotest.int "four visits" 4 (List.length s.Reuse.visits);
  let table = Cluster.build_table free_layout free_program g in
  check Alcotest.int "three switches for four disks" 3
    (Reuse.disk_switches table s.Reuse.order);
  (* Original row-major order alternates disks every row. *)
  let switches_before = Reuse.disk_switches table (Concrete.original_order g) in
  check Alcotest.int "original switches" 15 switches_before

let test_start_disk_rotation () =
  let g = Concrete.build free_program in
  let s = Reuse.schedule ~start_disk:2 free_layout free_program g in
  (match s.Reuse.visits with
  | (first, _) :: _ -> check Alcotest.int "tour starts at disk 2" 2 first
  | [] -> Alcotest.fail "no visits");
  check Alcotest.bool "still legal" true (Concrete.is_legal_order g s.Reuse.order)

let test_schedule_subset () =
  let g = Concrete.build free_program in
  let member seq = seq mod 2 = 0 in
  let s = Reuse.schedule_subset free_layout free_program g ~member in
  check Alcotest.int "half the instances" 32 (Array.length s.Reuse.order);
  check Alcotest.bool "only members" true (Array.for_all member s.Reuse.order);
  let sorted = Array.copy s.Reuse.order in
  Array.sort compare sorted;
  check Alcotest.bool "each member once" true
    (Array.to_list sorted = List.init 32 (fun k -> 2 * k))

(* ------------------------------------------------------------------ *)
(* Clustering policies. *)

let multi_ref_program =
  (* Each iteration touches rows i (disk i mod 4) of u and w; w is
     staggered so the two disks differ. *)
  Ir.program
    [ Ir.array_decl ~elem_size:256 "u" [ 8; 1 ]; Ir.array_decl ~elem_size:256 "w" [ 8; 1 ] ]
    [
      Ir.nest 0
        [ Ir.loop "i" (c 0) (c 7) ]
        [ Ir.stmt 0 [ Ir.read "u" [ i; c 0 ]; Ir.write "w" [ i; c 0 ]; Ir.write "w" [ i; c 0 ] ] ];
    ]

let multi_layout =
  Layout.make
    ~default:(Striping.make ~unit_bytes:256 ~factor:4 ~start_disk:0)
    ~overrides:[ ("w", Striping.make ~unit_bytes:256 ~factor:4 ~start_disk:1) ]
    multi_ref_program

let test_cluster_policies () =
  let g = Concrete.build multi_ref_program in
  let t_first = Cluster.build_table ~policy:Cluster.First_ref multi_layout multi_ref_program g in
  let t_min = Cluster.build_table ~policy:Cluster.Min_disk multi_layout multi_ref_program g in
  let t_maj = Cluster.build_table ~policy:Cluster.Majority multi_layout multi_ref_program g in
  (* Iteration 3: u row 3 -> disk 3, w row 3 -> disk 0 (start 1: (3+1) mod 4). *)
  check Alcotest.int "first-ref key" 3 t_first.Cluster.key.(3);
  check Alcotest.int "min-disk key" 0 t_min.Cluster.key.(3);
  (* w is referenced twice, so majority picks w's disk. *)
  check Alcotest.int "majority key" 0 t_maj.Cluster.key.(3);
  check Alcotest.(list int) "touched" [ 3; 0 ] (Array.to_list t_first.Cluster.touched.(3))

(* ------------------------------------------------------------------ *)
(* Symbolic restructuring (Fig. 2 reproduction). *)

let test_symbolic_sets () =
  let g = Concrete.build free_program in
  let table = Cluster.build_table free_layout free_program g in
  (* Per-disk sets partition the iteration space and agree with the
     concrete clustering. *)
  let total = ref 0 in
  List.iter
    (fun disk ->
      let pts = Symbolic.scheduled_iterations free_layout free_program ~disk ~nest_id:0 in
      total := !total + List.length pts;
      List.iter
        (fun p ->
          (* Find the seq of this iteration: row-major position. *)
          let seq = (p.(0) * 4) + p.(1) in
          check Alcotest.int "symbolic matches concrete key" disk table.Cluster.key.(seq))
        pts)
    [ 0; 1; 2; 3 ];
  check Alcotest.int "sets cover the nest" 64 !total

let test_symbolic_restructure_shape () =
  let ds = Symbolic.restructure free_layout free_program in
  check Alcotest.int "one schedule per disk" 4 (List.length ds);
  List.iteri
    (fun d (sched : Symbolic.disk_schedule) ->
      check Alcotest.int "disk in order" d sched.Symbolic.disk;
      check Alcotest.int "one piece (one nest)" 1 (List.length sched.Symbolic.pieces))
    ds

let test_symbolic_unsupported () =
  (* A self-dependence makes the symbolic path refuse. *)
  let dep_prog =
    Ir.program
      [ Ir.array_decl ~elem_size:64 "u" [ 16 ] ]
      [
        Ir.nest 0
          [ Ir.loop "i" (c 1) (c 15) ]
          [ Ir.stmt 0 [ Ir.read "u" [ A.sub i (c 1) ]; Ir.write "u" [ i ] ] ];
      ]
  in
  let layout =
    Layout.make ~default:(Striping.make ~unit_bytes:64 ~factor:4 ~start_disk:0) dep_prog
  in
  match Symbolic.restructure layout dep_prog with
  | exception Symbolic.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected Unsupported on dependences"

(* ------------------------------------------------------------------ *)
(* Parallelization. *)

let transpose_program =
  Ir.program
    [ Ir.array_decl ~elem_size:64 "u" [ 8; 8 ]; Ir.array_decl ~elem_size:64 "w" [ 8; 8 ] ]
    [
      (* Row access: parallel loop i hits the first subscript. *)
      Ir.nest 0
        [ Ir.loop "i" (c 0) (c 7); Ir.loop "j" (c 0) (c 7) ]
        [ Ir.stmt 0 [ Ir.read "u" [ i; j ]; Ir.write "w" [ i; j ] ] ];
      (* Transposed access to u: parallel loop i hits the second
         subscript -> column-block demand. *)
      Ir.nest 1
        [ Ir.loop "i" (c 0) (c 7); Ir.loop "j" (c 0) (c 7) ]
        [ Ir.stmt 1 [ Ir.read "u" [ j; i ] ] ];
      Ir.nest 2
        [ Ir.loop "i" (c 0) (c 7); Ir.loop "j" (c 0) (c 7) ]
        [ Ir.stmt 2 [ Ir.read "u" [ i; j ] ] ];
    ]

let transpose_layout =
  Layout.make
    ~default:(Striping.make ~unit_bytes:(8 * 64) ~factor:4 ~start_disk:0)
    transpose_program

let test_conventional () =
  let g = Concrete.build transpose_program in
  let a = Parallelize.conventional transpose_program g ~procs:4 in
  check Alcotest.int "procs" 4 a.Parallelize.procs;
  let counts = Parallelize.proc_counts a in
  Array.iter (fun n -> check Alcotest.int "balanced" 48 n) counts;
  (* Nest 0 iteration (5, j) belongs to chunk 5*4/8 = 2. *)
  check Alcotest.int "chunk of row 5" 2 a.Parallelize.owner.(5 * 8)

let test_distributions () =
  check
    Alcotest.(option (testable Parallelize.pp_distribution ( = )))
    "nest 0 demands row-block" (Some Parallelize.Row_block)
    (Parallelize.demanded_distribution (List.hd transpose_program.Ir.nests) "u");
  check
    Alcotest.(option (testable Parallelize.pp_distribution ( = )))
    "nest 1 demands col-block" (Some Parallelize.Col_block)
    (Parallelize.demanded_distribution (List.nth transpose_program.Ir.nests 1) "u");
  check
    (Alcotest.testable Parallelize.pp_distribution ( = ))
    "majority vote: row-block" Parallelize.Row_block
    (Parallelize.unified_distribution transpose_program "u")

(* Localization metric: fraction of element accesses landing on the
   owner's disk share. *)
let localization layout prog g (a : Parallelize.assignment) =
  let disks = layout.Layout.disk_count in
  let hits = ref 0 and total = ref 0 in
  Array.iter
    (fun (inst : Concrete.instance) ->
      let nest = List.find (fun (n : Ir.nest) -> n.Ir.nest_id = inst.Concrete.nest_id) prog.Ir.nests in
      List.iter
        (fun ((r : Ir.array_ref), coords) ->
          incr total;
          let d = Layout.disk_of_element layout r.Ir.array coords in
          if Parallelize.proc_of_disk ~disks ~procs:a.Parallelize.procs d
             = a.Parallelize.owner.(inst.Concrete.seq)
          then incr hits)
        (Ir.element_accesses nest inst.Concrete.iter))
    g.Concrete.instances;
  float_of_int !hits /. float_of_int !total

let test_layout_aware_localizes () =
  let g = Concrete.build transpose_program in
  let conv = Parallelize.conventional transpose_program g ~procs:4 in
  let aware = Parallelize.layout_aware transpose_layout transpose_program g ~procs:4 in
  let lc = localization transpose_layout transpose_program g conv in
  let la = localization transpose_layout transpose_program g aware in
  check Alcotest.bool
    (Printf.sprintf "layout-aware localizes better (%.2f > %.2f)" la lc)
    true (la > lc);
  (* And reasonably balanced: no processor starves. *)
  let counts = Parallelize.proc_counts aware in
  Array.iter (fun n -> check Alcotest.bool "no starvation" true (n > 10)) counts

(* --- loop transformations --- *)

module Transform = Dp_restructure.Transform

let test_interchange_free_nest () =
  (* Column sweep of a dependence-free nest: interchange is legal and
     swaps the headers without touching subscripts. *)
  let n =
    Ir.nest 0
      [ Ir.loop "j" (c 0) (c 3); Ir.loop "i" (c 0) (c 15) ]
      [ Ir.stmt 0 [ Ir.read "u" [ i; j ] ] ]
  in
  check Alcotest.bool "legal" true (Transform.interchange_legal n 0 1);
  let n' = Transform.interchange n 0 1 in
  check Alcotest.(list string) "swapped" [ "i"; "j" ] (Ir.nest_indices n');
  check Alcotest.int "same trips" (Ir.iteration_count n) (Ir.iteration_count n')

let test_interchange_illegal_dep () =
  (* Dependence (1,-1): interchanging would make it (-1,1), lex
     negative. *)
  let n =
    Ir.nest 0
      [ Ir.loop "i" (c 1) (c 8); Ir.loop "j" (c 1) (c 8) ]
      [
        Ir.stmt 0
          [ Ir.read "u" [ A.sub i (c 1); A.add j (c 1) ]; Ir.write "u" [ i; j ] ];
      ]
  in
  check Alcotest.bool "illegal" false (Transform.interchange_legal n 0 1);
  match Transform.interchange n 0 1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "must refuse the interchange"

let test_interchange_triangular_bounds () =
  (* Triangular bounds: the inner bound references the outer index, so
     the swap is rejected on bounds grounds even without dependences. *)
  let n =
    Ir.nest 0
      [ Ir.loop "i" (c 0) (c 7); Ir.loop "j" i (c 7) ]
      [ Ir.stmt 0 [ Ir.read "u" [ i; j ] ] ]
  in
  check Alcotest.bool "triangular swap rejected" false (Transform.interchange_legal n 0 1)

let test_reversal () =
  let n =
    Ir.nest 0
      [ Ir.loop "i" (c 2) (c 5) ]
      [ Ir.stmt 0 [ Ir.read "u" [ i ] ] ]
  in
  check Alcotest.bool "legal" true (Transform.reversal_legal n 0);
  let n' = Transform.reverse n 0 in
  (* The subscript becomes lo + hi - i = 7 - i; the touched element set
     is unchanged. *)
  let elems nest =
    List.map (fun it -> Ir.element_accesses nest it) (Ir.nest_iterations nest)
    |> List.concat_map (List.map snd)
    |> List.sort compare
  in
  check Alcotest.(list (list int)) "same elements" (elems n) (elems n');
  check Alcotest.bool "order actually reversed" true
    (Ir.element_accesses n' [| 2 |] = [ (Ir.read "u" [ A.sub (c 7) i ], [ 5 ]) ])

let test_reversal_illegal () =
  (* Flow dependence (1): reversing makes it (-1). *)
  let n =
    Ir.nest 0
      [ Ir.loop "i" (c 1) (c 8) ]
      [ Ir.stmt 0 [ Ir.read "u" [ A.sub i (c 1) ]; Ir.write "u" [ i ] ] ]
  in
  check Alcotest.bool "illegal" false (Transform.reversal_legal n 0)

let test_normalize_rows_outermost () =
  (* A column-ordered nest gets its row loop rotated to the front; the
     row-ordered one is untouched. *)
  let prog =
    Ir.program
      [ Ir.array_decl ~elem_size:64 "u" [ 16; 4 ] ]
      [
        Ir.nest 0
          [ Ir.loop "j" (c 0) (c 3); Ir.loop "i" (c 0) (c 15) ]
          [ Ir.stmt 0 [ Ir.read "u" [ i; j ] ] ];
        Ir.nest 1
          [ Ir.loop "i" (c 0) (c 15); Ir.loop "j" (c 0) (c 3) ]
          [ Ir.stmt 1 [ Ir.read "u" [ i; j ] ] ];
      ]
  in
  let layout =
    Layout.make ~default:(Striping.make ~unit_bytes:256 ~factor:4 ~start_disk:0) prog
  in
  let prog', changed = Transform.normalize_rows_outermost layout prog in
  check Alcotest.int "one nest changed" 1 changed;
  check Alcotest.(list string) "nest 0 rotated" [ "i"; "j" ]
    (Ir.nest_indices (List.hd prog'.Ir.nests));
  check Alcotest.(list string) "nest 1 untouched" [ "i"; "j" ]
    (Ir.nest_indices (List.nth prog'.Ir.nests 1));
  match Ir.validate prog' with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "transformed program must validate"

let test_strip_mine () =
  let n =
    Ir.nest 0
      [ Ir.loop "i" (c 2) (c 9); Ir.loop "j" (c 0) (c 3) ]
      [ Ir.stmt 0 [ Ir.read "u" [ i; j ] ] ]
  in
  let n' = Transform.strip_mine n ~depth:0 ~width:4 in
  check Alcotest.(list string) "indices" [ "ib"; "ii"; "j" ] (Ir.nest_indices n');
  check Alcotest.int "same trip count" (Ir.iteration_count n) (Ir.iteration_count n');
  (* The element sequence is identical (strip-mining preserves order). *)
  let elems nest =
    List.concat_map
      (fun it -> List.map snd (Ir.element_accesses nest it))
      (Ir.nest_iterations nest)
  in
  check Alcotest.(list (list int)) "same element order" (elems n) (elems n');
  (* Validation of the rejections. *)
  (match Transform.strip_mine n ~depth:0 ~width:3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-dividing width rejected");
  let tri =
    Ir.nest 1
      [ Ir.loop "i" (c 0) (c 7); Ir.loop "j" i (c 7) ]
      [ Ir.stmt 0 [ Ir.read "u" [ i; j ] ] ]
  in
  match Transform.strip_mine tri ~depth:1 ~width:2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-constant bounds rejected"

let test_tile () =
  (* Tile the inner loop of a free nest: block loop hoisted outermost,
     same element multiset. *)
  let n =
    Ir.nest 0
      [ Ir.loop "i" (c 0) (c 3); Ir.loop "j" (c 0) (c 7) ]
      [ Ir.stmt 0 [ Ir.read "u" [ i; j ] ] ]
  in
  let n' = Transform.tile n ~depth:1 ~width:4 in
  check Alcotest.(list string) "block loop outermost" [ "jb"; "i"; "ji" ]
    (Ir.nest_indices n');
  check Alcotest.int "same trips" (Ir.iteration_count n) (Ir.iteration_count n');
  let elems nest =
    List.concat_map
      (fun it -> List.map snd (Ir.element_accesses nest it))
      (Ir.nest_iterations nest)
    |> List.sort compare
  in
  check Alcotest.(list (list int)) "same element multiset" (elems n) (elems n')

(* --- loop fusion baseline --- *)

module Fusion = Dp_restructure.Fusion

let fusable_program =
  (* Three header-matching nests over distinct arrays (legal to fuse)
     followed by one with different bounds. *)
  Ir.program
    [
      Ir.array_decl ~elem_size:64 "u" [ 4; 4 ];
      Ir.array_decl ~elem_size:64 "w" [ 4; 4 ];
    ]
    [
      Ir.nest 0
        [ Ir.loop "i" (c 0) (c 3); Ir.loop "j" (c 0) (c 3) ]
        [ Ir.stmt 0 [ Ir.write "u" [ i; j ] ] ];
      Ir.nest 1
        [ Ir.loop "i" (c 0) (c 3); Ir.loop "j" (c 0) (c 3) ]
        [ Ir.stmt 1 [ Ir.read "u" [ i; j ]; Ir.write "w" [ i; j ] ] ];
      Ir.nest 2
        [ Ir.loop "i" (c 0) (c 3); Ir.loop "j" (c 0) (c 3) ]
        [ Ir.stmt 2 [ Ir.read "w" [ i; j ] ] ];
      Ir.nest 3
        [ Ir.loop "i" (c 0) (c 1) ]
        [ Ir.stmt 3 [ Ir.read "u" [ i; c 0 ] ] ];
    ]

let test_fusion_groups () =
  let g = Concrete.build fusable_program in
  let gs = Fusion.groups fusable_program g in
  check Alcotest.(list int) "group sizes" [ 3; 1 ]
    (List.map List.length gs);
  let order = Fusion.order fusable_program g in
  check Alcotest.bool "fused order legal" true (Concrete.is_legal_order g order);
  (* The fused group interleaves its nests per iteration: the first three
     emitted instances are iteration (0,0) of each nest. *)
  check Alcotest.(list int) "interleaved head" [ 0; 16; 32 ]
    (Array.to_list (Array.sub order 0 3))

let test_fusion_illegal_backward_dep () =
  (* nest 1 writes an element a LATER iteration of nest 0 reads...
     actually the blocking case: nest 1 reads u[i+1][j], written by a
     LATER iteration of nest 0 -> fusing would break the dependence. *)
  let prog =
    Ir.program
      [ Ir.array_decl ~elem_size:64 "u" [ 5; 4 ] ]
      [
        Ir.nest 0
          [ Ir.loop "i" (c 0) (c 3); Ir.loop "j" (c 0) (c 3) ]
          [ Ir.stmt 0 [ Ir.write "u" [ i; j ] ] ];
        Ir.nest 1
          [ Ir.loop "i" (c 0) (c 3); Ir.loop "j" (c 0) (c 3) ]
          [ Ir.stmt 1 [ Ir.read "u" [ A.add i (c 1); j ] ] ];
      ]
  in
  let g = Concrete.build prog in
  let n0 = List.hd prog.Ir.nests and n1 = List.nth prog.Ir.nests 1 in
  check Alcotest.bool "headers match" true (Fusion.headers_match n0 n1);
  check Alcotest.bool "fusion illegal" false (Fusion.fusion_legal g n0 n1);
  check Alcotest.(list int) "stays unfused" [ 1; 1 ]
    (List.map List.length (Fusion.groups prog g));
  check Alcotest.bool "order still legal" true
    (Concrete.is_legal_order g (Fusion.order prog g))

let test_fusion_on_workload () =
  let app = Option.get (Dp_workloads.Workloads.by_name "Visuo") in
  let g = Concrete.build app.Dp_workloads.App.program in
  let order = Fusion.order app.Dp_workloads.App.program g in
  check Alcotest.bool "legal on Visuo" true (Concrete.is_legal_order g order)

(* --- layout optimizer (paper's future work) --- *)

let test_layout_opt () =
  let app = Option.get (Dp_workloads.Workloads.by_name "AST") in
  let prog = app.Dp_workloads.App.program in
  let g = Concrete.build prog in
  let module Opt = Dp_restructure.Layout_opt in
  let res = Opt.optimize ~factor:8 ~initial:app.Dp_workloads.App.overrides prog g in
  (* Every array keeps a striping, and all are valid over 8 nodes. *)
  check Alcotest.int "striping per array" (List.length prog.Ir.arrays)
    (List.length res.Opt.stripings);
  List.iter
    (fun (_, (s : Striping.t)) ->
      check Alcotest.bool "factor 8" true (s.Striping.factor = 8);
      check Alcotest.bool "valid start" true (s.Striping.start_disk < 8))
    res.Opt.stripings;
  (* Coordinate descent can only improve the objective. *)
  check Alcotest.bool
    (Printf.sprintf "cost improves (%.3f <= %.3f)" res.Opt.cost res.Opt.baseline_cost)
    true
    (res.Opt.cost <= res.Opt.baseline_cost +. 1e-9);
  (* The reported cost is the cost of the reported stripings. *)
  check (Alcotest.float 1e-6) "cost consistent" res.Opt.cost
    (Opt.cost prog g ~stripings:res.Opt.stripings);
  (* Deterministic. *)
  let res2 = Opt.optimize ~factor:8 ~initial:app.Dp_workloads.App.overrides prog g in
  check Alcotest.bool "deterministic" true (res.Opt.stripings = res2.Opt.stripings)

let test_layout_opt_validation () =
  let g = Concrete.build free_program in
  match
    Dp_restructure.Layout_opt.optimize ~factor:4 ~initial:[] free_program g
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "missing initial striping must be rejected"

let test_workload_schedules_legal () =
  (* The full pipeline on two real applications: restructured orders are
     legal permutations. *)
  List.iter
    (fun name ->
      let app = Option.get (Dp_workloads.Workloads.by_name name) in
      let layout =
        Layout.make ~default:app.Dp_workloads.App.striping
          ~overrides:app.Dp_workloads.App.overrides app.Dp_workloads.App.program
      in
      let g = Concrete.build app.Dp_workloads.App.program in
      let s = Reuse.schedule layout app.Dp_workloads.App.program g in
      check Alcotest.bool (name ^ " schedule legal") true
        (Concrete.is_legal_order g s.Reuse.order))
    [ "FFT"; "Cholesky" ]

(* --- scheduler fuzzing on random programs and layouts --- *)

(* Random 2-deep rectangular programs over two arrays, with stencil-ish
   subscripts and random read/write modes, under a random row striping.
   Properties: the reuse schedule is a legal permutation, and so are the
   per-processor subsets. *)
let random_program_gen =
  QCheck2.Gen.(
    let subscript rows cols =
      oneofl
        [
          (fun iv jv -> ignore jv; [ iv; A.const 0 ]);
          (fun iv jv -> [ iv; jv ]);
          (fun iv jv -> [ A.add iv (A.const 1); jv ]);
          (fun iv jv -> [ iv; A.add jv (A.const 1) ]);
          (fun iv jv -> ignore (rows, cols); [ jv; iv ]);
        ]
    in
    let nest_gen ~rows ~cols id =
      let* n_stmts = int_range 1 2 in
      let* stmts =
        list_repeat n_stmts
          (let* arr = oneofl [ "u"; "w" ] in
           let* write = bool in
           let* sub = subscript rows cols in
           pure (arr, write, sub))
      in
      let body =
        List.mapi
          (fun k (arr, write, sub) ->
            let r =
              (if write then Ir.write else Ir.read) arr
                (sub (A.var "i") (A.var "j"))
            in
            Ir.stmt ((id * 10) + k) [ r ])
          stmts
      in
      pure
        (Ir.nest id
           [ Ir.loop "i" (c 0) (c (rows - 2)); Ir.loop "j" (c 0) (c (cols - 2)) ]
           body)
    in
    let* rows = int_range 4 9 in
    let* cols = int_range 4 7 in
    let side = max rows cols in
    let* n_nests = int_range 1 3 in
    let* nests =
      List.init n_nests (fun id -> nest_gen ~rows:side ~cols:side id) |> flatten_l
    in
    let* start_u = int_range 0 3 in
    let* start_w = int_range 0 3 in
    let* rows_per_stripe = int_range 1 2 in
    let arrays =
      [ Ir.array_decl ~elem_size:64 "u" [ side; side ];
        Ir.array_decl ~elem_size:64 "w" [ side; side ] ]
    in
    let unit = rows_per_stripe * side * 64 in
    pure
      ( Ir.program arrays nests,
        [
          ("u", Striping.make ~unit_bytes:unit ~factor:4 ~start_disk:start_u);
          ("w", Striping.make ~unit_bytes:unit ~factor:4 ~start_disk:start_w);
        ] ))

let prop_schedule_fuzz =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:80 ~name:"Reuse: random programs schedule legally"
       random_program_gen
       (fun (prog, stripings) ->
         match Ir.validate prog with
         | Error _ -> QCheck2.assume_fail ()
         | Ok () ->
             let layout = Layout.make ~overrides:stripings prog in
             let g = Concrete.build prog in
             let s = Reuse.schedule layout prog g in
             Concrete.is_legal_order g s.Reuse.order
             && s.Reuse.rounds >= 1
             && Dp_util.Listx.sum_by snd s.Reuse.visits
                <= Concrete.instance_count g))

let prop_subset_fuzz =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60 ~name:"Reuse: per-processor subsets partition the program"
       random_program_gen
       (fun (prog, stripings) ->
         match Ir.validate prog with
         | Error _ -> QCheck2.assume_fail ()
         | Ok () ->
             let layout = Layout.make ~overrides:stripings prog in
             let g = Concrete.build prog in
             let a = Parallelize.layout_aware layout prog g ~procs:2 in
             let orders =
               List.map
                 (fun p ->
                   (Reuse.schedule_subset layout prog g ~member:(fun seq ->
                        a.Parallelize.owner.(seq) = p))
                     .Reuse.order)
                 [ 0; 1 ]
             in
             let all = List.concat_map Array.to_list orders |> List.sort compare in
             all = List.init (Concrete.instance_count g) Fun.id))

let suites =
  [
    ( "restructure.scheduler",
      [
        Alcotest.test_case "figure 4 walkthrough" `Quick test_fig4_walkthrough;
        Alcotest.test_case "perfect reuse" `Quick test_perfect_reuse;
        Alcotest.test_case "start-disk rotation" `Quick test_start_disk_rotation;
        Alcotest.test_case "subset scheduling" `Quick test_schedule_subset;
        Alcotest.test_case "workload schedules legal" `Slow test_workload_schedules_legal;
        prop_schedule_fuzz;
        prop_subset_fuzz;
      ] );
    ("restructure.cluster", [ Alcotest.test_case "policies" `Quick test_cluster_policies ]);
    ( "restructure.symbolic",
      [
        Alcotest.test_case "per-disk sets" `Quick test_symbolic_sets;
        Alcotest.test_case "restructured shape" `Quick test_symbolic_restructure_shape;
        Alcotest.test_case "unsupported cases" `Quick test_symbolic_unsupported;
      ] );
    ( "restructure.transform",
      [
        Alcotest.test_case "interchange free nest" `Quick test_interchange_free_nest;
        Alcotest.test_case "interchange illegal dep" `Quick test_interchange_illegal_dep;
        Alcotest.test_case "triangular bounds" `Quick test_interchange_triangular_bounds;
        Alcotest.test_case "reversal" `Quick test_reversal;
        Alcotest.test_case "reversal illegal" `Quick test_reversal_illegal;
        Alcotest.test_case "normalize rows outermost" `Quick test_normalize_rows_outermost;
        Alcotest.test_case "strip-mine" `Quick test_strip_mine;
        Alcotest.test_case "tile" `Quick test_tile;
      ] );
    ( "restructure.fusion",
      [
        Alcotest.test_case "groups and order" `Quick test_fusion_groups;
        Alcotest.test_case "illegal backward dep" `Quick test_fusion_illegal_backward_dep;
        Alcotest.test_case "workload legality" `Slow test_fusion_on_workload;
      ] );
    ( "restructure.layout_opt",
      [
        Alcotest.test_case "optimizer" `Slow test_layout_opt;
        Alcotest.test_case "validation" `Quick test_layout_opt_validation;
      ] );
    ( "restructure.parallelize",
      [
        Alcotest.test_case "conventional" `Quick test_conventional;
        Alcotest.test_case "distributions" `Quick test_distributions;
        Alcotest.test_case "layout-aware localizes" `Quick test_layout_aware_localizes;
      ] );
  ]
