(* Symbolic restructuring demo — the Fig. 2 reproduction.

   Loads the .dpl example of three nests with conflicting access
   patterns, prints the per-disk transformed loop nests produced by the
   omega-lite code generator, and verifies that the generated code scans
   exactly the iterations the concrete scheduler assigns to each disk.

   Run with: dune exec examples/out_of_core_transpose.exe *)

module Ir = Dp_ir.Ir
module Resolver = Dp_lang.Resolver
module Striping = Dp_layout.Striping
module Layout = Dp_layout.Layout
module Symbolic = Dp_restructure.Symbolic
module Codegen = Dp_polyhedra.Codegen

let source = "examples/programs/transpose.dpl"

let () =
  let path = if Sys.file_exists source then source else Filename.concat ".." source in
  let { Resolver.program; stripes } = Resolver.load_file path in
  let overrides =
    List.map
      (fun (name, (sp : Dp_lang.Ast.stripe_spec)) ->
        (name, Striping.make ~unit_bytes:sp.unit_bytes ~factor:sp.factor ~start_disk:sp.start_disk))
      stripes
  in
  let layout = Layout.make ~overrides program in

  Format.printf "=== original program ===@.%a@." Ir.pp_program program;

  (* The transformed code: all of disk 0's work, then disk 1's, ... —
     "it completes all accesses to a disk before moving to the next disk,
     and each disk is visited only once" (Section 5). *)
  let ds = Symbolic.restructure layout program in
  Format.printf "=== restructured (disk by disk) ===@.%a@." Symbolic.pp ds;

  (* Validation: the scanned iteration sets partition each nest. *)
  List.iter
    (fun (n : Ir.nest) ->
      let per_disk =
        List.map
          (fun disk ->
            List.length
              (Symbolic.scheduled_iterations layout program ~disk ~nest_id:n.Ir.nest_id))
          [ 0; 1; 2; 3 ]
      in
      let total = List.fold_left ( + ) 0 per_disk in
      Format.printf "nest %d: per-disk iteration counts %s (total %d, nest has %d)@."
        n.Ir.nest_id
        (String.concat "+" (List.map string_of_int per_disk))
        total (Ir.iteration_count n);
      assert (total = Ir.iteration_count n))
    program.Ir.nests;
  Format.printf "per-disk sets partition every nest: OK@."
