examples/out_of_core_transpose.ml: Dp_ir Dp_lang Dp_layout Dp_polyhedra Dp_restructure Filename Format List String Sys
