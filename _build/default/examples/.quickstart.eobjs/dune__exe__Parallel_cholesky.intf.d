examples/parallel_cholesky.mli:
