examples/out_of_core_transpose.mli:
