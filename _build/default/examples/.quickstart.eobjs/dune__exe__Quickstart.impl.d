examples/quickstart.ml: Dp_affine Dp_dependence Dp_disksim Dp_ir Dp_layout Dp_restructure Dp_trace Format List
