examples/parallel_cholesky.ml: Array Dp_dependence Dp_disksim Dp_harness Dp_ir Dp_layout Dp_restructure Dp_workloads Format List Option
