examples/quickstart.mli:
