examples/layout_tuning.ml: Dp_dependence Dp_disksim Dp_ir Dp_layout Dp_restructure Dp_trace Dp_workloads Format List Option
