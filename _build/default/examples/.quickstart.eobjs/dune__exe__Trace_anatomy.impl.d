examples/trace_anatomy.ml: Dp_dependence Dp_harness Dp_restructure Dp_trace Dp_workloads Filename Format List Option Sys
