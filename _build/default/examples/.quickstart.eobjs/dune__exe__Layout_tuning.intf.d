examples/layout_tuning.mli:
