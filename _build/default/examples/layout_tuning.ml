(* Layout tuning: the paper's future work, running.

   "We plan to extend this work by investigating a framework that
   combines application code restructuring with disk layout
   reorganization under a unified optimizer." (Section 8)

   This example runs that optimizer on the AST workload: it searches
   per-array start disks and stripe heights to minimize a sampled
   co-location + balance objective, then shows what the better layout
   buys the restructured code under DRPM.

   Run with: dune exec examples/layout_tuning.exe *)

module App = Dp_workloads.App
module Layout = Dp_layout.Layout
module Striping = Dp_layout.Striping
module Concrete = Dp_dependence.Concrete
module Opt = Dp_restructure.Layout_opt
module Reuse = Dp_restructure.Reuse_scheduler
module Generate = Dp_trace.Generate
module Engine = Dp_disksim.Engine
module Policy = Dp_disksim.Policy

let () =
  let app = Option.get (Dp_workloads.Workloads.by_name "AST") in
  let prog = app.App.program in
  let g = Concrete.build prog in

  Format.printf "optimizing the layout of %s (%d arrays, 8 I/O nodes)...@." app.App.name
    (List.length prog.Dp_ir.Ir.arrays);
  let res = Opt.optimize ~factor:8 ~initial:app.App.overrides prog g in
  Format.printf "objective: %.3f -> %.3f@." res.Opt.baseline_cost res.Opt.cost;
  List.iter2
    (fun (name, (before : Striping.t)) (_, (after : Striping.t)) ->
      Format.printf "  %-4s start %d -> %d, stripe %3d KB -> %3d KB@." name
        before.Striping.start_disk after.Striping.start_disk
        (before.Striping.unit_bytes / 1024)
        (after.Striping.unit_bytes / 1024))
    app.App.overrides res.Opt.stripings;

  (* Energy consequence: restructure + DRPM under both layouts,
     normalized against the original layout's unmanaged base. *)
  let energy overrides =
    let layout = Layout.make ~default:app.App.striping ~overrides prog in
    let order = (Reuse.schedule layout prog g).Reuse.order in
    let trace t_order = Generate.trace layout prog g (Generate.single_stream g ~order:t_order) in
    let base = Engine.simulate ~disks:8 Policy.No_pm (trace (Concrete.original_order g)) in
    let r = Engine.simulate ~disks:8 Policy.default_drpm (trace order) in
    r.Engine.energy_j /. base.Engine.energy_j
  in
  Format.printf "@.T-DRPM-s normalized energy:@.";
  Format.printf "  original (staggered) layout: %.3f@." (energy app.App.overrides);
  Format.printf "  optimized layout:            %.3f@." (energy res.Opt.stripings);
  Format.printf
    "@.the optimizer co-locates the ping-pong arrays so a stencil iteration's reads and \
     write land on one node, deepening the other nodes' idle periods@."
