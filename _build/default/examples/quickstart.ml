(* Quickstart: the whole pipeline in ~60 lines.

   Build a small out-of-core program, restructure it for disk reuse
   (Section 5 of the paper), and compare disk energy under TPM and DRPM
   with and without the restructuring.

   Run with: dune exec examples/quickstart.exe *)

module Ir = Dp_ir.Ir
module A = Dp_affine.Affine
module Striping = Dp_layout.Striping
module Layout = Dp_layout.Layout
module Concrete = Dp_dependence.Concrete
module Reuse = Dp_restructure.Reuse_scheduler
module Generate = Dp_trace.Generate
module Engine = Dp_disksim.Engine
module Policy = Dp_disksim.Policy

let () =
  (* 1. A program: two sweeps over a disk-resident matrix of 64 KB pages
     — one row-order, one column-order (the classic conflicting pair). *)
  let page = 64 * 1024 in
  let rows, cols = (64, 48) in
  let i = A.var "i" and j = A.var "j" and c = A.const in
  let program =
    Ir.program
      [ Ir.array_decl ~elem_size:page "m" [ rows; cols ] ]
      [
        Ir.nest 0
          [ Ir.loop "i" (c 0) (c (rows - 1)); Ir.loop "j" (c 0) (c (cols - 1)) ]
          [ Ir.stmt 0 ~work_cycles:2_000_000 [ Ir.read "m" [ i; j ] ] ];
        Ir.nest 1
          [ Ir.loop "j" (c 0) (c (cols - 1)); Ir.loop "i" (c 0) (c (rows - 1)) ]
          [ Ir.stmt 1 ~work_cycles:2_000_000 [ Ir.read "m" [ i; j ] ] ];
      ]
  in

  (* 2. A disk layout: one row per stripe, round-robin over 8 I/O nodes
     (the paper's Table-1 system). *)
  let striping = Striping.make ~unit_bytes:(cols * page) ~factor:8 ~start_disk:0 in
  let layout = Layout.make ~default:striping program in

  (* 3. Restructure: cluster iterations disk by disk (Fig. 3). *)
  let graph = Concrete.build program in
  let schedule = Reuse.schedule layout program graph in
  Format.printf "restructured in %d round(s); visits:" schedule.Reuse.rounds;
  List.iter (fun (d, n) -> Format.printf " d%d:%d" d n) schedule.Reuse.visits;
  Format.printf "@.";

  (* 4. Traces for the original and restructured orders. *)
  let trace order = Generate.trace layout program graph (Generate.single_stream graph ~order) in
  let base_trace = trace (Concrete.original_order graph) in
  let reuse_trace = trace schedule.Reuse.order in

  (* 5. Simulate under each policy and report. *)
  let disks = layout.Layout.disk_count in
  let base = Engine.simulate ~disks Policy.No_pm base_trace in
  let report name trace policy =
    let r = Engine.simulate ~disks policy trace in
    Format.printf "%-22s energy %8.1f J  (%.3f of base)  io %.1f s@." name
      r.Engine.energy_j
      (r.Engine.energy_j /. base.Engine.energy_j)
      (r.Engine.io_time_ms /. 1000.)
  in
  Format.printf "base (no PM)           energy %8.1f J  io %.1f s@." base.Engine.energy_j
    (base.Engine.io_time_ms /. 1000.);
  report "TPM on original" base_trace Policy.default_tpm;
  report "DRPM on original" base_trace Policy.default_drpm;
  report "TPM on restructured" reuse_trace (Policy.tpm ~proactive:true ());
  report "DRPM on restructured" reuse_trace Policy.default_drpm
