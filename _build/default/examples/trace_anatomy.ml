(* Trace anatomy: what restructuring does to per-disk idle periods.

   Generates the AST workload's trace in original and restructured order,
   saves/reloads the restructured one through the text format, and prints
   a per-disk idle-gap histogram for both — the quantity every power
   policy feeds on ("most prior techniques become more effective with
   long disk idle periods", Section 1).

   Run with: dune exec examples/trace_anatomy.exe *)

module App = Dp_workloads.App
module Concrete = Dp_dependence.Concrete
module Reuse = Dp_restructure.Reuse_scheduler
module Generate = Dp_trace.Generate
module Request = Dp_trace.Request
module Runner = Dp_harness.Runner

let print_histogram label reqs =
  let h = Dp_trace.Idle_stats.of_requests reqs in
  Format.printf "--- %s (%d gaps, %.0f s idle; %.0f s in TPM-exploitable gaps) ---@.%a@."
    label
    (Dp_trace.Idle_stats.total_gaps h)
    (Dp_trace.Idle_stats.total_mass_s h)
    (Dp_trace.Idle_stats.exploitable_mass_s h ~threshold_s:15.2)
    Dp_trace.Idle_stats.pp h

let () =
  let app = Option.get (Dp_workloads.Workloads.by_name "AST") in
  let ctx = Runner.context app in
  let layout = ctx.Runner.layout and g = ctx.Runner.graph in

  let base_trace =
    Generate.trace layout app.App.program g
      (Generate.single_stream g ~order:(Concrete.original_order g))
  in
  let schedule = Reuse.schedule layout app.App.program g in
  let reuse_trace =
    Generate.trace layout app.App.program g
      (Generate.single_stream g ~order:schedule.Reuse.order)
  in

  (* Round-trip the restructured trace through the text format. *)
  let path = Filename.temp_file "dpower_ast" ".trace" in
  Request.save path reuse_trace;
  let reloaded = Request.load path in
  Sys.remove path;
  assert (List.length reloaded = List.length reuse_trace);
  Format.printf "trace of %d requests round-tripped through %s format@."
    (List.length reloaded) "the text";

  Format.printf
    "@.per-disk idle gaps (the restructured order concentrates idleness into long gaps):@.";
  print_histogram "original" base_trace;
  print_histogram "restructured" reloaded;
  Format.printf
    "@.scheduler: %d rounds (the stencil's inter-step dependences bound each disk visit)@."
    schedule.Reuse.rounds
