module Request = Dp_trace.Request

(** Energy-aware prefetching (after Papathanasiou & Scott, USENIX'04):
    "create burst access patterns, rather than spreading disk accesses
    over the entire execution time."

    The transformation groups each processor's read requests into bursts
    of [depth]: the whole burst is issued where its first member was
    (the members' think times collapse onto the burst head), so the disk
    serves back-to-back and then sees the combined gap.  Writes are
    barriers — a burst never moves a read across a write by the same
    processor (the data might not exist yet). *)

val apply : depth:int -> Request.t list -> Request.t list
(** Reshape a trace.  [depth >= 1]; [depth = 1] is the identity.
    Per-processor order of requests is preserved; only think times move
    (the total per-processor think time is conserved), so the closed-loop
    timeline stays consistent.
    @raise Invalid_argument if [depth < 1]. *)

val burstiness : Request.t list -> float
(** A simple burst measure: the fraction of requests whose think time is
    (near) zero — higher after prefetching. *)
