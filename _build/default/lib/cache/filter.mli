module Request = Dp_trace.Request

(** Storage-cache filtering of an I/O trace: the OS/storage-cache layer
    the related work operates in (Zhu et al., Papathanasiou & Scott).
    Hits are absorbed by the cache — the request never reaches a disk —
    and their think time folds into the next miss of the same processor,
    preserving the closed-loop timeline.

    Write policy is write-through-allocate: writes always reach the disk
    (they are never filtered) but install the block, so later reads of a
    freshly written block hit. *)

type stats = {
  before : int;  (** requests entering the cache layer *)
  after : int;  (** requests surviving to the disks *)
  hit_rate : float;
}

val apply :
  cache:(unit -> Lru.t) ->
  ?hit_cost_ms:float ->
  Request.t list ->
  Request.t list * stats
(** [apply ~cache reqs] runs the trace through one cache instance per
    processor (client-side caches, as in the paper's storage nodes being
    exercised by a single application).  [cache] builds a fresh cache;
    [hit_cost_ms] (default 0.05) is the service time of a hit, folded
    into the following request's think time.  The result preserves the
    per-processor order and the segment structure. *)

(** {1 Power-aware victim selection (PA-LRU, after Zhu et al. HPCA'04)} *)

val pa_lru :
  ?tail_window:int ->
  capacity:int ->
  priority_disk:(Lru.key -> int) ->
  disk_activity:(int -> float) ->
  unit ->
  Lru.t
(** A cache whose eviction prefers blocks living on {e active} disks
    (high [disk_activity], a rate in accesses/s or any monotone proxy):
    blocks from mostly-idle disks stay cached, so those disks see even
    fewer interruptions and can stay in low-power modes longer — the
    PA-LRU idea.  [priority_disk] maps a block key to its disk. *)
