lib/cache/lru.mli:
