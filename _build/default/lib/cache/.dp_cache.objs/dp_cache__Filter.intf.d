lib/cache/filter.mli: Dp_trace Lru
