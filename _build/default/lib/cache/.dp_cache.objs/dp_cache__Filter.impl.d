lib/cache/filter.ml: Dp_ir Dp_trace Float Hashtbl List Lru Option
