lib/cache/prefetch.mli: Dp_trace
