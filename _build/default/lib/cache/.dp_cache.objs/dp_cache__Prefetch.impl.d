lib/cache/prefetch.ml: Dp_ir Dp_trace Hashtbl List
