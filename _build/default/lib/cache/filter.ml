module Request = Dp_trace.Request
module Ir = Dp_ir.Ir

type stats = { before : int; after : int; hit_rate : float }

let apply ~cache ?(hit_cost_ms = 0.05) reqs =
  (* One cache and one pending-think accumulator per processor.  The
     global order of [reqs] preserves each processor's order, so a
     single pass suffices. *)
  let caches = Hashtbl.create 4 in
  let pending = Hashtbl.create 4 in
  let cache_of proc =
    match Hashtbl.find_opt caches proc with
    | Some c -> c
    | None ->
        let c = cache () in
        Hashtbl.add caches proc c;
        c
  in
  let survivors = ref [] in
  let before = ref 0 in
  List.iter
    (fun (r : Request.t) ->
      incr before;
      let c = cache_of r.proc in
      let carried = Option.value ~default:0.0 (Hashtbl.find_opt pending r.proc) in
      let hit = Lru.access c r.address in
      if hit && r.mode = Ir.Read then
        (* Absorbed: its think time (plus the cheap hit) carries over. *)
        Hashtbl.replace pending r.proc (carried +. r.think_ms +. hit_cost_ms)
      else begin
        Hashtbl.replace pending r.proc 0.0;
        survivors := { r with think_ms = r.think_ms +. carried } :: !survivors
      end)
    reqs;
  let survivors = List.rev !survivors in
  let hits, total =
    Hashtbl.fold (fun _ c (h, t) -> (h + Lru.hits c, t + Lru.hits c + Lru.misses c)) caches (0, 0)
  in
  ( survivors,
    {
      before = !before;
      after = List.length survivors;
      hit_rate = (if total = 0 then 0.0 else float_of_int hits /. float_of_int total);
    } )

let pa_lru ?tail_window ~capacity ~priority_disk ~disk_activity () =
  (* Prefer evicting the block on the busier disk: keeping quiet disks'
     blocks cached extends their idle periods. *)
  let prefer a b =
    Float.compare (disk_activity (priority_disk a)) (disk_activity (priority_disk b))
  in
  Lru.create ?tail_window ~policy:(Lru.Prefer prefer) ~capacity ()
