module Request = Dp_trace.Request
module Ir = Dp_ir.Ir

let apply ~depth reqs =
  if depth < 1 then invalid_arg "Prefetch.apply: depth must be >= 1";
  if depth = 1 then reqs
  else begin
    (* Process per (processor, segment) runs; the global list preserves
       per-processor order, so partition and reassemble. *)
    let module Key = struct
      type t = int * int

      let equal = ( = )
      let hash = Hashtbl.hash
    end in
    let module H = Hashtbl.Make (Key) in
    let runs : Request.t list ref H.t = H.create 8 in
    let order = ref [] in
    List.iter
      (fun (r : Request.t) ->
        let key = (r.proc, r.seg) in
        match H.find_opt runs key with
        | Some cell -> cell := r :: !cell
        | None ->
            H.add runs key (ref [ r ]);
            order := key :: !order)
      reqs;
    let reshape run =
      (* Walk the run, batching reads; a write flushes the current
         batch.  Within a batch the head carries the accumulated think
         time and the rest issue immediately. *)
      let out = ref [] in
      let batch = ref [] (* reversed *) in
      let flush () =
        (match List.rev !batch with
        | [] -> ()
        | head :: tail ->
            let think =
              List.fold_left (fun acc (r : Request.t) -> acc +. r.Request.think_ms) 0.0 !batch
            in
            out := { head with Request.think_ms = think } :: !out;
            List.iter (fun r -> out := { r with Request.think_ms = 0.0 } :: !out) tail);
        batch := []
      in
      List.iter
        (fun (r : Request.t) ->
          match r.Request.mode with
          | Ir.Write ->
              flush ();
              out := r :: !out
          | Ir.Read ->
              batch := r :: !batch;
              if List.length !batch >= depth then flush ())
        run;
      flush ();
      List.rev !out
    in
    List.concat_map (fun key -> reshape (List.rev !(H.find runs key))) (List.rev !order)
  end

let burstiness reqs =
  match reqs with
  | [] -> 0.0
  | _ ->
      let zero =
        List.length (List.filter (fun (r : Request.t) -> r.Request.think_ms < 1e-3) reqs)
      in
      float_of_int zero /. float_of_int (List.length reqs)
