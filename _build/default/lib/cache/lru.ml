type key = int

type victim_policy = Lru | Prefer of (key -> key -> int)

(* Doubly-linked list of blocks, most recent at the head, plus a
   hashtable from key to node. *)
type node = {
  key : key;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  cap : int;
  tail_window : int;
  policy : victim_policy;
  table : (key, node) Hashtbl.t;
  mutable head : node option;
  mutable tail : node option;
  mutable count : int;
  mutable hit_count : int;
  mutable miss_count : int;
}

let create ?(tail_window = 16) ?(policy = Lru) ~capacity () =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  if tail_window < 1 then invalid_arg "Lru.create: tail_window must be >= 1";
  {
    cap = capacity;
    tail_window;
    policy;
    table = Hashtbl.create (2 * capacity);
    head = None;
    tail = None;
    count = 0;
    hit_count = 0;
    miss_count = 0;
  }

let capacity t = t.cap
let size t = t.count

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let remove t n =
  unlink t n;
  Hashtbl.remove t.table n.key;
  t.count <- t.count - 1

(* The LRU-tail window, least recent first. *)
let tail_candidates t =
  let rec walk acc k = function
    | None -> List.rev acc
    | Some n -> if k = 0 then List.rev acc else walk (n :: acc) (k - 1) n.prev
  in
  walk [] t.tail_window t.tail

let evict t =
  match t.policy with
  | Lru -> ( match t.tail with Some n -> remove t n | None -> ())
  | Prefer cmp -> (
      match tail_candidates t with
      | [] -> ()
      | first :: rest ->
          (* Maximize cmp; ties keep the least recent (the earlier
             candidate). *)
          let victim =
            List.fold_left (fun best n -> if cmp n.key best.key > 0 then n else best) first rest
          in
          remove t victim)

let access t k =
  match Hashtbl.find_opt t.table k with
  | Some n ->
      t.hit_count <- t.hit_count + 1;
      unlink t n;
      push_front t n;
      true
  | None ->
      t.miss_count <- t.miss_count + 1;
      if t.count >= t.cap then evict t;
      let n = { key = k; prev = None; next = None } in
      Hashtbl.add t.table k n;
      push_front t n;
      t.count <- t.count + 1;
      false

let mem t k = Hashtbl.mem t.table k
let hits t = t.hit_count
let misses t = t.miss_count

let hit_rate t =
  let total = t.hit_count + t.miss_count in
  if total = 0 then 0.0 else float_of_int t.hit_count /. float_of_int total
