(** A block-granularity storage-cache simulator with pluggable victim
    selection — the substrate for the power-aware caching baselines of
    the paper's related work (Zhu et al., HPCA'04 / ICS'04).

    Keys are block identifiers (here: page-aligned global addresses).
    The default victim is the least-recently-used block; a policy may
    instead pick any block out of the LRU tail window it is offered. *)

type key = int

type victim_policy =
  | Lru  (** evict the least-recently-used block *)
  | Prefer of (key -> key -> int)
      (** offered the LRU tail window (least recent first), evict the
          block that maximizes the comparison (a [compare]-style
          function; ties fall back to recency) *)

type t

val create : ?tail_window:int -> ?policy:victim_policy -> capacity:int -> unit -> t
(** [capacity] is in blocks (>= 1); [tail_window] is how deep into the
    LRU tail a [Prefer] policy may look (default 16). *)

val capacity : t -> int
val size : t -> int

val access : t -> key -> bool
(** Touch a block: [true] on hit (block promoted to most recent),
    [false] on miss (block inserted, evicting per the policy when
    full). *)

val mem : t -> key -> bool
(** Presence without promotion. *)

val hits : t -> int
val misses : t -> int
val hit_rate : t -> float
