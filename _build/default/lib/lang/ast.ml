(** Abstract syntax of the [.dpl] mini-language, as produced by
    {!Parser}.  Every node carries its source location so the resolver
    can report errors precisely. *)
module Ir = Dp_ir.Ir


type expr = expr_node Srcloc.located

and expr_node =
  | Int of int
  | Var of string
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Neg of expr

type stripe_spec = {
  unit_bytes : int;
  factor : int;
  start_disk : int;
  stripe_loc : Srcloc.t;
}

type array_item = {
  array_name : string Srcloc.located;
  dims : int Srcloc.located list;
  elem_size : int Srcloc.located option;
  file : string Srcloc.located option;
  stripe : stripe_spec option;
}

type body_item =
  | For of for_loop
  | Access of access
  | Work of int Srcloc.located

and for_loop = {
  index : string Srcloc.located;
  lo : expr;
  hi : expr;
  body : body_item list;
  for_loc : Srcloc.t;
}

and access = {
  mode : Ir.access_mode;
  target : string Srcloc.located;
  subscripts : expr list;
  cycles : int Srcloc.located option;
  access_loc : Srcloc.t;
}

type nest_item = { top : for_loop; nest_loc : Srcloc.t }
type item = Array_decl of array_item | Nest_decl of nest_item
type program = item list

(** Iterate over all accesses of a loop body, depth-first. *)
let rec iter_accesses f = function
  | For l -> List.iter (iter_accesses f) l.body
  | Access a -> f a
  | Work _ -> ()
