(** Recursive-descent parser for the [.dpl] mini-language.

    Grammar (EBNF; [INT] literals accept [K]/[M]/[G] suffixes):
    {v
    program   ::= item* EOF
    item      ::= array | nest
    array     ::= "array" IDENT ("[" INT "]")+
                  ("elem" INT)? ("file" STRING)? stripe? ";"
    stripe    ::= "stripe" "(" "unit" "=" INT ","
                               "factor" "=" INT ","
                               "start" "=" INT ")"
    nest      ::= "nest" "{" for "}"
    for       ::= "for" IDENT "=" expr ".." expr "{" body_item* "}"
    body_item ::= for | access | "work" INT ";"
    access    ::= ("read" | "write") IDENT ("[" expr "]")+ ("work" INT)? ";"
    expr      ::= term (("+" | "-") term)*
    term      ::= factor ("*" factor)*
    factor    ::= INT | IDENT | "-" factor | "(" expr ")"
    v} *)

exception Error of Srcloc.t * string

val parse : file:string -> string -> Ast.program
(** Parse a source buffer.
    @raise Error on a syntax error (with location and expectation).
    @raise Lexer.Error on a lexical error. *)

val parse_file : string -> Ast.program
(** Read and parse a file. @raise Sys_error if unreadable. *)
