type pos = { line : int; col : int }
type t = { file : string; start_pos : pos; end_pos : pos }

let dummy =
  { file = "<none>"; start_pos = { line = 0; col = 0 }; end_pos = { line = 0; col = 0 } }

let make ~file ~start_pos ~end_pos = { file; start_pos; end_pos }

let pos_leq a b = a.line < b.line || (a.line = b.line && a.col <= b.col)

let merge a b =
  {
    file = a.file;
    start_pos = (if pos_leq a.start_pos b.start_pos then a.start_pos else b.start_pos);
    end_pos = (if pos_leq a.end_pos b.end_pos then b.end_pos else a.end_pos);
  }

let pp ppf t = Format.fprintf ppf "%s:%d:%d" t.file t.start_pos.line t.start_pos.col

type 'a located = { value : 'a; loc : t }

let at loc value = { value; loc }
