exception Error of Srcloc.t * string

type state = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let current_pos st : Srcloc.pos = { line = st.line; col = st.col }

let loc_from st (start_pos : Srcloc.pos) =
  Srcloc.make ~file:st.file ~start_pos ~end_pos:(current_pos st)

let error st start_pos msg = raise (Error (loc_from st start_pos, msg))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_trivia st
  | Some '/' when peek2 st = Some '/' ->
      let rec to_eol () =
        match peek st with
        | Some '\n' | None -> ()
        | Some _ ->
            advance st;
            to_eol ()
      in
      to_eol ();
      skip_trivia st
  | Some '/' when peek2 st = Some '*' ->
      let start_pos = current_pos st in
      advance st;
      advance st;
      let rec to_close () =
        match (peek st, peek2 st) with
        | Some '*', Some '/' ->
            advance st;
            advance st
        | Some _, _ ->
            advance st;
            to_close ()
        | None, _ -> error st start_pos "unterminated block comment"
      in
      to_close ();
      skip_trivia st
  | _ -> ()

let lex_int st start_pos =
  let b = Buffer.create 8 in
  let rec digits () =
    match peek st with
    | Some c when is_digit c ->
        Buffer.add_char b c;
        advance st;
        digits ()
    | _ -> ()
  in
  digits ();
  let base =
    match int_of_string_opt (Buffer.contents b) with
    | Some n -> n
    | None -> error st start_pos "integer literal out of range"
  in
  let multiplier =
    match peek st with
    | Some 'K' ->
        advance st;
        1024
    | Some 'M' ->
        advance st;
        1024 * 1024
    | Some 'G' ->
        advance st;
        1024 * 1024 * 1024
    | _ -> 1
  in
  Token.INT (base * multiplier)

let lex_ident st =
  let b = Buffer.create 8 in
  let rec chars () =
    match peek st with
    | Some c when is_ident_char c ->
        Buffer.add_char b c;
        advance st;
        chars ()
    | _ -> ()
  in
  chars ();
  let word = Buffer.contents b in
  match List.assoc_opt word Token.keyword_table with
  | Some kw -> kw
  | None -> Token.IDENT word

let lex_string st start_pos =
  advance st (* opening quote *);
  let b = Buffer.create 16 in
  let rec chars () =
    match peek st with
    | Some '"' ->
        advance st;
        Token.STRING (Buffer.contents b)
    | Some '\n' | None -> error st start_pos "unterminated string literal"
    | Some '\\' -> begin
        advance st;
        match peek st with
        | Some ('"' as c) | Some ('\\' as c) ->
            Buffer.add_char b c;
            advance st;
            chars ()
        | Some 'n' ->
            Buffer.add_char b '\n';
            advance st;
            chars ()
        | _ -> error st start_pos "invalid escape sequence"
      end
    | Some c ->
        Buffer.add_char b c;
        advance st;
        chars ()
  in
  chars ()

let next_token st =
  skip_trivia st;
  let start_pos = current_pos st in
  let simple tok =
    advance st;
    tok
  in
  let tok =
    match peek st with
    | None -> Token.EOF
    | Some c when is_digit c -> lex_int st start_pos
    | Some c when is_ident_start c -> lex_ident st
    | Some '"' -> lex_string st start_pos
    | Some '{' -> simple Token.LBRACE
    | Some '}' -> simple Token.RBRACE
    | Some '[' -> simple Token.LBRACKET
    | Some ']' -> simple Token.RBRACKET
    | Some '(' -> simple Token.LPAREN
    | Some ')' -> simple Token.RPAREN
    | Some ';' -> simple Token.SEMI
    | Some ',' -> simple Token.COMMA
    | Some '=' -> simple Token.EQUALS
    | Some '+' -> simple Token.PLUS
    | Some '-' -> simple Token.MINUS
    | Some '*' -> simple Token.STAR
    | Some '.' ->
        if peek2 st = Some '.' then begin
          advance st;
          advance st;
          Token.DOTDOT
        end
        else error st start_pos "expected '..'"
    | Some c -> error st start_pos (Printf.sprintf "unexpected character %C" c)
  in
  (tok, loc_from st start_pos)

let tokenize ~file src =
  let st = { src; file; pos = 0; line = 1; col = 1 } in
  let rec loop acc =
    let ((tok, _) as t) = next_token st in
    if tok = Token.EOF then List.rev (t :: acc) else loop (t :: acc)
  in
  loop []
