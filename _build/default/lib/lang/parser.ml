module Ir = Dp_ir.Ir
exception Error of Srcloc.t * string

type state = { mutable toks : (Token.t * Srcloc.t) list }

let peek st =
  match st.toks with
  | t :: _ -> t
  | [] -> assert false (* token stream always ends with EOF *)

let peek_tok st = fst (peek st)
let peek_loc st = snd (peek st)

let advance st =
  match st.toks with
  | _ :: ((_ :: _) as rest) -> st.toks <- rest
  | _ -> () (* keep EOF *)

let fail st msg = raise (Error (peek_loc st, msg))

let expect st tok =
  let got, loc = peek st in
  if got = tok then advance st
  else
    raise
      (Error
         ( loc,
           Printf.sprintf "expected %s but found %s" (Token.to_string tok)
             (Token.to_string got) ))

let expect_int st what =
  match peek st with
  | Token.INT n, loc ->
      advance st;
      Srcloc.at loc n
  | got, loc ->
      raise
        (Error (loc, Printf.sprintf "expected %s but found %s" what (Token.to_string got)))

let expect_ident st what =
  match peek st with
  | Token.IDENT s, loc ->
      advance st;
      Srcloc.at loc s
  | got, loc ->
      raise
        (Error (loc, Printf.sprintf "expected %s but found %s" what (Token.to_string got)))

let expect_string st what =
  match peek st with
  | Token.STRING s, loc ->
      advance st;
      Srcloc.at loc s
  | got, loc ->
      raise
        (Error (loc, Printf.sprintf "expected %s but found %s" what (Token.to_string got)))

(* --- expressions --- *)

let rec parse_expr st : Ast.expr =
  let lhs = parse_term st in
  parse_expr_rest st lhs

and parse_expr_rest st lhs =
  match peek_tok st with
  | Token.PLUS ->
      advance st;
      let rhs = parse_term st in
      parse_expr_rest st (Srcloc.at (Srcloc.merge lhs.Srcloc.loc rhs.Srcloc.loc) (Ast.Add (lhs, rhs)))
  | Token.MINUS ->
      advance st;
      let rhs = parse_term st in
      parse_expr_rest st (Srcloc.at (Srcloc.merge lhs.Srcloc.loc rhs.Srcloc.loc) (Ast.Sub (lhs, rhs)))
  | _ -> lhs

and parse_term st =
  let lhs = parse_factor st in
  parse_term_rest st lhs

and parse_term_rest st lhs =
  match peek_tok st with
  | Token.STAR ->
      advance st;
      let rhs = parse_factor st in
      parse_term_rest st (Srcloc.at (Srcloc.merge lhs.Srcloc.loc rhs.Srcloc.loc) (Ast.Mul (lhs, rhs)))
  | _ -> lhs

and parse_factor st =
  match peek st with
  | Token.INT n, loc ->
      advance st;
      Srcloc.at loc (Ast.Int n)
  | Token.IDENT v, loc ->
      advance st;
      Srcloc.at loc (Ast.Var v)
  | Token.MINUS, loc ->
      advance st;
      let e = parse_factor st in
      Srcloc.at (Srcloc.merge loc e.Srcloc.loc) (Ast.Neg e)
  | Token.LPAREN, _ ->
      advance st;
      let e = parse_expr st in
      expect st Token.RPAREN;
      e
  | got, loc ->
      raise
        (Error
           (loc, Printf.sprintf "expected an expression but found %s" (Token.to_string got)))

(* --- declarations --- *)

let parse_dims st =
  let rec loop acc =
    match peek_tok st with
    | Token.LBRACKET ->
        advance st;
        let d = expect_int st "an array extent" in
        expect st Token.RBRACKET;
        loop (d :: acc)
    | _ -> List.rev acc
  in
  let dims = loop [] in
  if dims = [] then fail st "array declaration needs at least one dimension";
  dims

let parse_stripe st : Ast.stripe_spec =
  let start_loc = peek_loc st in
  expect st Token.STRIPE;
  expect st Token.LPAREN;
  expect st Token.UNIT;
  expect st Token.EQUALS;
  let unit_bytes = (expect_int st "a stripe unit size").Srcloc.value in
  expect st Token.COMMA;
  expect st Token.FACTOR;
  expect st Token.EQUALS;
  let factor = (expect_int st "a stripe factor").Srcloc.value in
  expect st Token.COMMA;
  expect st Token.START;
  expect st Token.EQUALS;
  let start_disk = (expect_int st "a start disk").Srcloc.value in
  let end_loc = peek_loc st in
  expect st Token.RPAREN;
  { unit_bytes; factor; start_disk; stripe_loc = Srcloc.merge start_loc end_loc }

let parse_array st : Ast.array_item =
  expect st Token.ARRAY;
  let array_name = expect_ident st "an array name" in
  let dims = parse_dims st in
  let elem_size = ref None and file = ref None and stripe = ref None in
  let rec attrs () =
    match peek_tok st with
    | Token.ELEM ->
        advance st;
        elem_size := Some (expect_int st "an element size");
        attrs ()
    | Token.FILE ->
        advance st;
        file := Some (expect_string st "a file name");
        attrs ()
    | Token.STRIPE ->
        stripe := Some (parse_stripe st);
        attrs ()
    | _ -> ()
  in
  attrs ();
  expect st Token.SEMI;
  { array_name; dims; elem_size = !elem_size; file = !file; stripe = !stripe }

let rec parse_body_item st : Ast.body_item =
  match peek_tok st with
  | Token.FOR -> Ast.For (parse_for st)
  | Token.WORK ->
      advance st;
      let n = expect_int st "a cycle count" in
      expect st Token.SEMI;
      Ast.Work n
  | Token.READ | Token.WRITE -> Ast.Access (parse_access st)
  | got ->
      fail st
        (Printf.sprintf "expected 'for', 'read', 'write' or 'work' but found %s"
           (Token.to_string got))

and parse_for st : Ast.for_loop =
  let for_loc = peek_loc st in
  expect st Token.FOR;
  let index = expect_ident st "a loop index" in
  expect st Token.EQUALS;
  let lo = parse_expr st in
  expect st Token.DOTDOT;
  let hi = parse_expr st in
  expect st Token.LBRACE;
  let rec items acc =
    match peek_tok st with
    | Token.RBRACE -> List.rev acc
    | _ -> items (parse_body_item st :: acc)
  in
  let body = items [] in
  let end_loc = peek_loc st in
  expect st Token.RBRACE;
  { index; lo; hi; body; for_loc = Srcloc.merge for_loc end_loc }

and parse_access st : Ast.access =
  let access_loc = peek_loc st in
  let mode =
    match peek_tok st with
    | Token.READ ->
        advance st;
        Ir.Read
    | Token.WRITE ->
        advance st;
        Ir.Write
    | _ -> assert false
  in
  let target = expect_ident st "an array name" in
  let rec subs acc =
    match peek_tok st with
    | Token.LBRACKET ->
        advance st;
        let e = parse_expr st in
        expect st Token.RBRACKET;
        subs (e :: acc)
    | _ -> List.rev acc
  in
  let subscripts = subs [] in
  if subscripts = [] then fail st "array access needs at least one subscript";
  let cycles =
    match peek_tok st with
    | Token.WORK ->
        advance st;
        Some (expect_int st "a cycle count")
    | _ -> None
  in
  let end_loc = peek_loc st in
  expect st Token.SEMI;
  { mode; target; subscripts; cycles; access_loc = Srcloc.merge access_loc end_loc }

let parse_nest st : Ast.nest_item =
  let nest_loc = peek_loc st in
  expect st Token.NEST;
  expect st Token.LBRACE;
  let top = parse_for st in
  let end_loc = peek_loc st in
  expect st Token.RBRACE;
  { top; nest_loc = Srcloc.merge nest_loc end_loc }

let parse ~file src =
  let st = { toks = Lexer.tokenize ~file src } in
  let rec items acc =
    match peek_tok st with
    | Token.EOF -> List.rev acc
    | Token.ARRAY -> items (Ast.Array_decl (parse_array st) :: acc)
    | Token.NEST -> items (Ast.Nest_decl (parse_nest st) :: acc)
    | got ->
        fail st
          (Printf.sprintf "expected 'array' or 'nest' but found %s" (Token.to_string got))
  in
  items []

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse ~file:path src
