(** Hand-written lexer for the [.dpl] mini-language.

    Supports [//] line comments and [/* ... */] block comments, decimal
    integers with optional [K]/[M]/[G] binary-unit suffixes (so stripe
    sizes read naturally: [32K] is 32768), double-quoted strings, and the
    punctuation of the grammar. *)

exception Error of Srcloc.t * string

val tokenize : file:string -> string -> (Token.t * Srcloc.t) list
(** Tokenize a whole source buffer; the result ends with [EOF].
    @raise Error on an invalid character, unterminated string or comment,
    or integer overflow. *)
