module Ir = Dp_ir.Ir

(** Resolution from the parsed AST to the loop-nest IR.

    Responsibilities:
    - fold AST expressions into affine form, rejecting nonlinear terms
      (products of two non-constant expressions);
    - require perfect nesting (statements only in the innermost loop; at
      most one loop per level), which is the program class every
      downstream pass assumes;
    - collect per-array striping clauses for the layout stage;
    - run {!Ir.validate} on the result and re-report its findings with
      source locations where possible. *)

exception Error of Srcloc.t * string

type resolved = {
  program : Ir.program;
  stripes : (string * Ast.stripe_spec) list;
      (** Arrays that carried an explicit [stripe(...)] clause. *)
}

val resolve : Ast.program -> resolved
(** @raise Error on the first resolution problem. *)

val affine_of_expr : Ast.expr -> Dp_affine.Affine.t
(** Exposed for tests. @raise Error on nonlinear expressions. *)

val load_file : string -> resolved
(** [Parser.parse_file] followed by {!resolve}. *)

val load_string : ?file:string -> string -> resolved
(** Parse and resolve from a string (default [file] is ["<string>"]). *)
