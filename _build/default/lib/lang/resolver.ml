module Ir = Dp_ir.Ir
module Affine = Dp_affine.Affine

exception Error of Srcloc.t * string

type resolved = {
  program : Ir.program;
  stripes : (string * Ast.stripe_spec) list;
}

let error loc msg = raise (Error (loc, msg))

let rec affine_of_expr (e : Ast.expr) =
  match e.Srcloc.value with
  | Ast.Int n -> Affine.const n
  | Ast.Var v -> Affine.var v
  | Ast.Add (a, b) -> Affine.add (affine_of_expr a) (affine_of_expr b)
  | Ast.Sub (a, b) -> Affine.sub (affine_of_expr a) (affine_of_expr b)
  | Ast.Neg a -> Affine.neg (affine_of_expr a)
  | Ast.Mul (a, b) ->
      let fa = affine_of_expr a and fb = affine_of_expr b in
      if Affine.is_const fa then Affine.scale (Affine.constant fa) fb
      else if Affine.is_const fb then Affine.scale (Affine.constant fb) fa
      else error e.Srcloc.loc "nonlinear expression: product of two non-constant terms"

(* Split a loop body into (statement items, nested loop).  A perfect nest
   has either only statements, or exactly one nested loop and no
   statements. *)
let split_body loc items =
  let stmts, fors =
    List.partition_map
      (function
        | Ast.For f -> Right f
        | (Ast.Access _ | Ast.Work _) as s -> Left s)
      items
  in
  match (stmts, fors) with
  | [], [] -> error loc "empty loop body"
  | _, [] -> `Leaf stmts
  | [], [ f ] -> `Inner f
  | _ :: _, _ :: _ ->
      error loc "imperfect loop nest: statements and a nested loop at the same level"
  | [], _ :: _ :: _ -> error loc "imperfect loop nest: two loops at the same level"

let resolve_nest ~next_stmt_id nest_id (item : Ast.nest_item) =
  let rec walk (f : Ast.for_loop) loops_acc =
    let l =
      Ir.loop f.index.Srcloc.value (affine_of_expr f.lo) (affine_of_expr f.hi)
    in
    let loops_acc = l :: loops_acc in
    match split_body f.for_loc f.body with
    | `Inner inner -> walk inner loops_acc
    | `Leaf stmts ->
        let body =
          List.map
            (fun (s : Ast.body_item) ->
              let id = !next_stmt_id in
              incr next_stmt_id;
              match s with
              | Ast.Work n -> Ir.stmt ~work_cycles:n.Srcloc.value id []
              | Ast.Access a ->
                  let cycles =
                    match a.cycles with Some c -> c.Srcloc.value | None -> 1000
                  in
                  let r =
                    {
                      Ir.array = a.target.Srcloc.value;
                      subscripts = List.map affine_of_expr a.subscripts;
                      mode = a.mode;
                    }
                  in
                  Ir.stmt ~work_cycles:cycles id [ r ]
              | Ast.For _ -> assert false)
            stmts
        in
        Ir.nest nest_id (List.rev loops_acc) body
  in
  walk item.top []

let resolve (items : Ast.program) =
  let arrays = ref [] and stripes = ref [] and nests = ref [] in
  let next_stmt_id = ref 0 and next_nest_id = ref 0 in
  (* Track declaration locations for good duplicate/unknown messages. *)
  let decl_locs = Hashtbl.create 8 in
  List.iter
    (function
      | Ast.Array_decl a ->
          let name = a.array_name.Srcloc.value in
          if Hashtbl.mem decl_locs name then
            error a.array_name.Srcloc.loc
              (Printf.sprintf "array %s is declared twice" name);
          Hashtbl.add decl_locs name a.array_name.Srcloc.loc;
          List.iter
            (fun (d : int Srcloc.located) ->
              if d.Srcloc.value <= 0 then
                error d.Srcloc.loc "array extent must be positive")
            a.dims;
          let elem_size =
            match a.elem_size with
            | Some e ->
                if e.Srcloc.value <= 0 then
                  error e.Srcloc.loc "element size must be positive";
                Some e.Srcloc.value
            | None -> None
          in
          let decl =
            Ir.array_decl
              ?elem_size
              ?file:(Option.map (fun (f : string Srcloc.located) -> f.Srcloc.value) a.file)
              name
              (List.map (fun (d : int Srcloc.located) -> d.Srcloc.value) a.dims)
          in
          arrays := decl :: !arrays;
          (match a.stripe with
          | Some sp ->
              if sp.unit_bytes <= 0 then error sp.stripe_loc "stripe unit must be positive";
              if sp.factor <= 0 then error sp.stripe_loc "stripe factor must be positive";
              if sp.start_disk < 0 || sp.start_disk >= sp.factor then
                error sp.stripe_loc "start disk must be in [0, factor)";
              stripes := (name, sp) :: !stripes
          | None -> ())
      | Ast.Nest_decl n ->
          let id = !next_nest_id in
          incr next_nest_id;
          (* Check array references against declarations seen so far or later:
             defer to Ir.validate; but catch unknown arrays here with
             locations for a friendlier message. *)
          Ast.iter_accesses
            (fun (a : Ast.access) -> ignore a)
            (Ast.For n.top);
          nests := resolve_nest ~next_stmt_id id n :: !nests)
    items;
  let program = Ir.program (List.rev !arrays) (List.rev !nests) in
  (match Ir.validate program with
  | Ok () -> ()
  | Error (e :: _) -> error Srcloc.dummy (Format.asprintf "%a" Ir.pp_error e)
  | Error [] -> ());
  { program; stripes = List.rev !stripes }

let load_file path = resolve (Parser.parse_file path)
let load_string ?(file = "<string>") src = resolve (Parser.parse ~file src)
