module Ir = Dp_ir.Ir
module Affine = Dp_affine.Affine

(* Emit an affine expression in .dpl syntax (the parser's expr grammar:
   sums of [k*v] terms and a constant). *)
let emit_affine ppf e =
  let terms = Affine.terms e and const = Affine.constant e in
  if terms = [] then Format.fprintf ppf "%d" const
  else begin
    List.iteri
      (fun k (v, c) ->
        if k = 0 then begin
          if c = 1 then Format.fprintf ppf "%s" v
          else if c = -1 then Format.fprintf ppf "-%s" v
          else Format.fprintf ppf "%d*%s" c v
        end
        else if c = 1 then Format.fprintf ppf " + %s" v
        else if c = -1 then Format.fprintf ppf " - %s" v
        else if c > 0 then Format.fprintf ppf " + %d*%s" c v
        else Format.fprintf ppf " - %d*%s" (-c) v)
      terms;
    if const > 0 then Format.fprintf ppf " + %d" const
    else if const < 0 then Format.fprintf ppf " - %d" (-const)
  end

(* Sizes print with binary suffixes when exact, as the lexer reads them. *)
let emit_size ppf n =
  if n >= 1 lsl 30 && n mod (1 lsl 30) = 0 then Format.fprintf ppf "%dG" (n lsr 30)
  else if n >= 1 lsl 20 && n mod (1 lsl 20) = 0 then Format.fprintf ppf "%dM" (n lsr 20)
  else if n >= 1 lsl 10 && n mod (1 lsl 10) = 0 then Format.fprintf ppf "%dK" (n lsr 10)
  else Format.fprintf ppf "%d" n

let emit_array ppf (a : Ir.array_decl) stripe =
  Format.fprintf ppf "array %s" a.Ir.name;
  List.iter (fun d -> Format.fprintf ppf "[%d]" d) a.Ir.dims;
  Format.fprintf ppf " elem %a file %S" emit_size a.Ir.elem_size a.Ir.file;
  (match stripe with
  | Some (sp : Ast.stripe_spec) ->
      Format.fprintf ppf " stripe(unit = %a, factor = %d, start = %d)" emit_size
        sp.Ast.unit_bytes sp.Ast.factor sp.Ast.start_disk
  | None -> ());
  Format.fprintf ppf ";@,"

let emit_stmt indent ppf (s : Ir.stmt) =
  match s.Ir.refs with
  | [] -> Format.fprintf ppf "%swork %d;@," indent s.Ir.work_cycles
  | refs ->
      (* The grammar attaches one access per statement; a resolver-built
         statement has exactly one reference, but hand-built IR may carry
         several — emit the cycle cost on the first and zero-cost work
         statements would be wrong, so split the cost across them is
         avoided: the first access carries the cycles, the rest carry the
         resolver's default explicitly. *)
      List.iteri
        (fun k (r : Ir.array_ref) ->
          let verb = match r.Ir.mode with Ir.Read -> "read" | Ir.Write -> "write" in
          Format.fprintf ppf "%s%s %s" indent verb r.Ir.array;
          List.iter (fun sub -> Format.fprintf ppf "[%a]" emit_affine sub) r.Ir.subscripts;
          if k = 0 then Format.fprintf ppf " work %d" s.Ir.work_cycles
          else Format.fprintf ppf " work 0";
          Format.fprintf ppf ";@,")
        refs

let emit_nest ppf (n : Ir.nest) =
  Format.fprintf ppf "nest {@,";
  List.iteri
    (fun depth (l : Ir.loop) ->
      Format.fprintf ppf "%sfor %s = %a .. %a {@,"
        (String.make (2 * (depth + 1)) ' ')
        l.Ir.index emit_affine l.Ir.lo emit_affine l.Ir.hi)
    n.Ir.loops;
  let body_indent = String.make (2 * (List.length n.Ir.loops + 1)) ' ' in
  List.iter (emit_stmt body_indent ppf) n.Ir.body;
  List.iteri
    (fun k _ ->
      Format.fprintf ppf "%s}@," (String.make (2 * (List.length n.Ir.loops - k)) ' '))
    n.Ir.loops;
  Format.fprintf ppf "}@,"

let emit_program ?(stripes = []) ppf (p : Ir.program) =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (a : Ir.array_decl) -> emit_array ppf a (List.assoc_opt a.Ir.name stripes))
    p.Ir.arrays;
  Format.fprintf ppf "@,";
  List.iter (fun n -> emit_nest ppf n) p.Ir.nests;
  Format.fprintf ppf "@]"

let to_string ?stripes p = Format.asprintf "%a" (emit_program ?stripes) p

let stripe_spec (s : Dp_layout.Striping.t) =
  {
    Ast.unit_bytes = s.Dp_layout.Striping.unit_bytes;
    factor = s.Dp_layout.Striping.factor;
    start_disk = s.Dp_layout.Striping.start_disk;
    stripe_loc = Srcloc.dummy;
  }
