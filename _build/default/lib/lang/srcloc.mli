(** Source locations and located diagnostics for the [.dpl] frontend. *)

type pos = { line : int; col : int }
(** 1-based line, 1-based column. *)

type t = { file : string; start_pos : pos; end_pos : pos }

val dummy : t
val make : file:string -> start_pos:pos -> end_pos:pos -> t
val merge : t -> t -> t
(** Smallest span covering both locations (assumes same file). *)

val pp : Format.formatter -> t -> unit
(** Renders as [file:line:col]. *)

type 'a located = { value : 'a; loc : t }

val at : t -> 'a -> 'a located
