(** Tokens of the [.dpl] mini-language. *)

type t =
  | ARRAY
  | NEST
  | FOR
  | WORK
  | READ
  | WRITE
  | ELEM
  | FILE
  | STRIPE
  | UNIT
  | FACTOR
  | START
  | IDENT of string
  | INT of int
  | STRING of string
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | LPAREN
  | RPAREN
  | SEMI
  | COMMA
  | EQUALS
  | DOTDOT
  | PLUS
  | MINUS
  | STAR
  | EOF

let keyword_table =
  [
    ("array", ARRAY);
    ("nest", NEST);
    ("for", FOR);
    ("work", WORK);
    ("read", READ);
    ("write", WRITE);
    ("elem", ELEM);
    ("file", FILE);
    ("stripe", STRIPE);
    ("unit", UNIT);
    ("factor", FACTOR);
    ("start", START);
  ]

let to_string = function
  | ARRAY -> "array"
  | NEST -> "nest"
  | FOR -> "for"
  | WORK -> "work"
  | READ -> "read"
  | WRITE -> "write"
  | ELEM -> "elem"
  | FILE -> "file"
  | STRIPE -> "stripe"
  | UNIT -> "unit"
  | FACTOR -> "factor"
  | START -> "start"
  | IDENT s -> Printf.sprintf "identifier %s" s
  | INT n -> Printf.sprintf "integer %d" n
  | STRING s -> Printf.sprintf "string %S" s
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | LPAREN -> "("
  | RPAREN -> ")"
  | SEMI -> ";"
  | COMMA -> ","
  | EQUALS -> "="
  | DOTDOT -> ".."
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | EOF -> "end of input"
