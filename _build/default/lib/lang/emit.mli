module Ir = Dp_ir.Ir

(** Emission of [.dpl] source from the IR — the inverse of {!Resolver}.

    [Resolver.load_string (to_string p)] yields a program structurally
    equal to [p] up to statement/nest renumbering (ids are assigned in
    order on both sides, so in practice the round-trip is exact; this is
    property-tested).  Striping clauses are attached to the arrays they
    describe. *)

val emit_program :
  ?stripes:(string * Ast.stripe_spec) list ->
  Format.formatter ->
  Ir.program ->
  unit

val to_string :
  ?stripes:(string * Ast.stripe_spec) list -> Ir.program -> string

val stripe_spec : Dp_layout.Striping.t -> Ast.stripe_spec
(** Striping clause for a layout striping (location is dummy). *)
