lib/lang/parser.ml: Ast Dp_ir Lexer List Printf Srcloc Token
