lib/lang/emit.mli: Ast Dp_ir Dp_layout Format
