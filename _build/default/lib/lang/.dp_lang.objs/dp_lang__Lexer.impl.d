lib/lang/lexer.ml: Buffer List Printf Srcloc String Token
