lib/lang/resolver.mli: Ast Dp_affine Dp_ir Srcloc
