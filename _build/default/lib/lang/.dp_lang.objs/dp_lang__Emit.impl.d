lib/lang/emit.ml: Ast Dp_affine Dp_ir Dp_layout Format List Srcloc String
