lib/lang/srcloc.ml: Format
