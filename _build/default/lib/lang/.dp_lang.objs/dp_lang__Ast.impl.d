lib/lang/ast.ml: Dp_ir List Srcloc
