lib/lang/parser.mli: Ast Srcloc
