lib/lang/resolver.ml: Ast Dp_affine Dp_ir Format Hashtbl List Option Parser Printf Srcloc
