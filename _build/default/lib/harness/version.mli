(** The seven experimental versions of Section 7.1. *)

type t =
  | Base  (** no power management *)
  | Tpm  (** reactive spin-down, unmodified code *)
  | Drpm  (** dynamic speed setting, unmodified code *)
  | T_tpm_s  (** disk-reuse restructuring (single-CPU algorithm) + TPM *)
  | T_drpm_s  (** disk-reuse restructuring (single-CPU algorithm) + DRPM *)
  | T_tpm_m  (** disk-layout-aware parallelization + per-CPU reuse + TPM *)
  | T_drpm_m  (** disk-layout-aware parallelization + per-CPU reuse + DRPM *)

val name : t -> string
val of_name : string -> t option

val single_cpu : t list
(** The five versions evaluated on one processor (Figs. 9a, 10a). *)

val multi_cpu : t list
(** All seven versions, for the 4-processor experiments (Figs. 9b, 10b). *)

val policy : t -> Dp_disksim.Policy.t
val restructured : t -> bool
val layout_aware : t -> bool
