lib/harness/experiments.ml: Dp_disksim Dp_ir Dp_trace Dp_workloads Format List Printf Runner Tabulate Version
