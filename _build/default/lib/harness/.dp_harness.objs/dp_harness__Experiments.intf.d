lib/harness/experiments.mli: Dp_workloads Format Runner Version
