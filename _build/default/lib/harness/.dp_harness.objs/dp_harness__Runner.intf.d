lib/harness/runner.mli: Dp_dependence Dp_disksim Dp_layout Dp_trace Dp_workloads Version
