lib/harness/json_out.ml: Buffer Char Dp_disksim Dp_workloads Experiments Float Format List Printf Runner String Version
