lib/harness/tabulate.ml: Array Format List Printf String
