lib/harness/runner.ml: Array Dp_dependence Dp_disksim Dp_ir Dp_layout Dp_restructure Dp_trace Dp_workloads List Version
