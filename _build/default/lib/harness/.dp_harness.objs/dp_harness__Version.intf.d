lib/harness/version.mli: Dp_disksim
