lib/harness/tabulate.mli: Format
