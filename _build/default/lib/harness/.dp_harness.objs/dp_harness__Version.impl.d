lib/harness/version.ml: Dp_disksim List String
