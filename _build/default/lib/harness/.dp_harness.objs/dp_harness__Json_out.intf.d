lib/harness/json_out.mli: Experiments Format Runner
