module App = Dp_workloads.App

(** The paper's evaluation, end to end: every table and figure of
    Section 7 as a reproducible report. *)

type matrix = (App.t * (Version.t * Runner.run) list) list
(** One row per application: the runs of every requested version. *)

val build_matrix :
  ?apps:App.t list -> procs:int -> versions:Version.t list -> unit -> matrix
(** Runs the full pipeline for every (app, version) pair.  Defaults to
    the six Table-2 applications. *)

val table1 : Format.formatter -> unit
(** Default simulation parameters (the Table 1 reproduction). *)

val table2 : ?matrix:matrix -> Format.formatter -> unit
(** Application characteristics from the Base runs: modeled data size,
    request count, Base energy and I/O time, with the paper's values for
    side-by-side comparison.  Reuses [matrix] when given (it must contain
    Base runs at 1 processor); otherwise computes one. *)

val fig_energy : matrix -> Format.formatter -> unit
(** Normalized energy per app and version (Figs. 9a / 9b depending on the
    matrix's processor count), plus the cross-application average and the
    implied savings. *)

val fig_perf : matrix -> Format.formatter -> unit
(** Performance degradation (increase in disk I/O time) per app and
    version (Figs. 10a / 10b). *)

val average_energy_saving : matrix -> Version.t -> float
(** 1 - (mean normalized energy) for one version across the matrix. *)

val average_perf_degradation : matrix -> Version.t -> float
