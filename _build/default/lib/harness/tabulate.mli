(** Minimal aligned-ASCII table rendering for the experiment reports. *)

val render :
  Format.formatter -> header:string list -> rows:string list list -> unit
(** Column widths fit the widest cell; numeric-looking cells are
    right-aligned, others left-aligned. *)

val fmt_pct : float -> string
(** [0.1834] renders as ["18.34%"]. *)

val fmt_norm : float -> string
(** Normalized value, 3 decimals. *)
