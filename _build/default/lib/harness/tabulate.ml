let is_numeric s =
  s <> ""
  && String.for_all (fun ch -> (ch >= '0' && ch <= '9') || ch = '.' || ch = '-' || ch = '%' || ch = ',') s

let render ppf ~header ~rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width = Array.make cols 0 in
  List.iter
    (List.iteri (fun i cell -> if String.length cell > width.(i) then width.(i) <- String.length cell))
    all;
  let print_row r =
    List.iteri
      (fun i cell ->
        let pad = width.(i) - String.length cell in
        let cell =
          if is_numeric cell then String.make pad ' ' ^ cell else cell ^ String.make pad ' '
        in
        Format.fprintf ppf "%s%s" (if i = 0 then "" else "  ") cell)
      r;
    Format.fprintf ppf "@,"
  in
  Format.fprintf ppf "@[<v>";
  print_row header;
  print_row (List.init (List.length header) (fun i -> String.make width.(i) '-'));
  List.iter print_row rows;
  Format.fprintf ppf "@]"

let fmt_pct f = Printf.sprintf "%.2f%%" (f *. 100.0)
let fmt_norm f = Printf.sprintf "%.3f" f
