module Ir = Dp_ir.Ir

(** Program-level disk layout: the striping of every array's backing file
    plus a global byte-address space for traces.

    Each array lives in its own file (Section 2's one-to-one mapping) and
    each file is striped independently over the I/O nodes.  Arrays are
    laid out row-major; an element access stands for one page-granularity
    I/O request of the array's [elem_size] bytes. *)

type entry = { decl : Ir.array_decl; striping : Striping.t; base : int }

type t = private {
  entries : entry list;
  disk_count : int;  (** number of I/O nodes (max striping factor) *)
}

val make : ?default:Striping.t -> ?overrides:(string * Striping.t) list -> Ir.program -> t
(** Build a layout for every array of the program.  [default] (Table 1
    values unless given) applies to arrays without an override.  Array
    bases are aligned to the array's full stripe width so stripe 0 of
    every file starts on its [start_disk].
    @raise Invalid_argument for an override naming an unknown array. *)

val find : t -> string -> entry
(** @raise Not_found for an unknown array. *)

val linear_index : entry -> int list -> int
(** Row-major element index.
    @raise Invalid_argument on wrong arity or out-of-bounds coordinates. *)

val element_address : t -> string -> int list -> int
(** Global byte address of an element. *)

val element_file_offset : t -> string -> int list -> int
(** Byte offset of an element within its own file. *)

val disk_of_element : t -> string -> int list -> int
(** I/O node that serves accesses to this element. *)

val request_of_element : t -> string -> int list -> int * int * int
(** [(disk, global_address, size_bytes)] of the element's page request.
    Element pages never straddle stripe units when [elem_size] divides
    the stripe unit; otherwise the request is attributed to the node
    holding its first byte. *)

val lba_of_element : t -> string -> int list -> int
(** Byte position of the element {e on its I/O node}: the stripes a node
    stores are contiguous there, so two file locations a full stripe
    width apart are adjacent on the node.  Seek distances must be
    computed in this space. *)

val elements_per_stripe : t -> string -> int
(** How many consecutive elements share a stripe unit (>= 1). *)

val disk_of_address : t -> int -> int
(** I/O node for a global byte address (resolves the owning array).
    @raise Not_found when the address belongs to no array. *)

val pp : Format.formatter -> t -> unit
