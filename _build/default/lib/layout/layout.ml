module Ir = Dp_ir.Ir

type entry = { decl : Ir.array_decl; striping : Striping.t; base : int }
type t = { entries : entry list; disk_count : int }

let make ?(default = Striping.default) ?(overrides = []) (prog : Ir.program) =
  List.iter
    (fun (name, _) ->
      if Ir.find_array prog name = None then
        invalid_arg (Printf.sprintf "Layout.make: override for unknown array %s" name))
    overrides;
  let next = ref 0 in
  let entries =
    List.map
      (fun (decl : Ir.array_decl) ->
        let striping =
          Option.value ~default (List.assoc_opt decl.name overrides)
        in
        (* Align each file's base so its stripe 0 begins a fresh stripe
           row; addresses within the file are file offsets plus base. *)
        let width = striping.Striping.unit_bytes * striping.Striping.factor in
        let base = (!next + width - 1) / width * width in
        next := base + Ir.array_bytes decl;
        { decl; striping; base })
      prog.arrays
  in
  let disk_count =
    List.fold_left (fun acc e -> max acc e.striping.Striping.factor) 1 entries
  in
  { entries; disk_count }

let find t name =
  match List.find_opt (fun e -> e.decl.Ir.name = name) t.entries with
  | Some e -> e
  | None -> raise Not_found

let linear_index entry coords =
  let dims = entry.decl.Ir.dims in
  if List.length coords <> List.length dims then
    invalid_arg "Layout.linear_index: arity mismatch";
  List.fold_left2
    (fun acc c extent ->
      if c < 0 || c >= extent then
        invalid_arg
          (Printf.sprintf "Layout.linear_index: coordinate %d out of [0, %d) in %s" c extent
             entry.decl.Ir.name);
      (acc * extent) + c)
    0 coords dims

let element_file_offset t name coords =
  let e = find t name in
  linear_index e coords * e.decl.Ir.elem_size

let element_address t name coords =
  let e = find t name in
  e.base + (linear_index e coords * e.decl.Ir.elem_size)

let disk_of_element t name coords =
  let e = find t name in
  Striping.disk_of_offset e.striping (linear_index e coords * e.decl.Ir.elem_size)

let request_of_element t name coords =
  let e = find t name in
  let file_offset = linear_index e coords * e.decl.Ir.elem_size in
  (Striping.disk_of_offset e.striping file_offset, e.base + file_offset, e.decl.Ir.elem_size)

let lba_of_element t name coords =
  let e = find t name in
  let unit = e.striping.Striping.unit_bytes in
  let file_offset = linear_index e coords * e.decl.Ir.elem_size in
  let stripe = file_offset / unit in
  (e.base / e.striping.Striping.factor)
  + (stripe / e.striping.Striping.factor * unit)
  + (file_offset mod unit)

let elements_per_stripe t name =
  let e = find t name in
  max 1 (e.striping.Striping.unit_bytes / e.decl.Ir.elem_size)

let disk_of_address t addr =
  let e =
    match
      List.find_opt
        (fun e -> addr >= e.base && addr < e.base + Ir.array_bytes e.decl)
        t.entries
    with
    | Some e -> e
    | None -> raise Not_found
  in
  Striping.disk_of_offset e.striping (addr - e.base)

let pp ppf t =
  Format.fprintf ppf "@[<v>%d I/O node(s)@," t.disk_count;
  List.iter
    (fun e ->
      Format.fprintf ppf "%s: base=%d, %a@," e.decl.Ir.name e.base Striping.pp e.striping)
    t.entries;
  Format.fprintf ppf "@]"
