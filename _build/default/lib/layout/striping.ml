type t = { unit_bytes : int; factor : int; start_disk : int }

let make ~unit_bytes ~factor ~start_disk =
  if unit_bytes < 1 then invalid_arg "Striping.make: unit_bytes must be >= 1";
  if factor < 1 then invalid_arg "Striping.make: factor must be >= 1";
  if start_disk < 0 || start_disk >= factor then
    invalid_arg "Striping.make: start_disk must be in [0, factor)";
  { unit_bytes; factor; start_disk }

let default = make ~unit_bytes:(32 * 1024) ~factor:8 ~start_disk:0

let stripe_of_offset t offset =
  if offset < 0 then invalid_arg "Striping.stripe_of_offset: negative offset";
  offset / t.unit_bytes

let disk_of_stripe t stripe = (t.start_disk + stripe) mod t.factor
let disk_of_offset t offset = disk_of_stripe t (stripe_of_offset t offset)

let span t ~offset ~size =
  if size < 0 then invalid_arg "Striping.span: negative size";
  let rec pieces offset remaining acc =
    if remaining <= 0 then List.rev acc
    else begin
      let within = offset mod t.unit_bytes in
      let chunk = min remaining (t.unit_bytes - within) in
      pieces (offset + chunk) (remaining - chunk)
        ((disk_of_offset t offset, offset, chunk) :: acc)
    end
  in
  pieces offset size []

let pp ppf t =
  Format.fprintf ppf "stripe(unit=%dB, factor=%d, start=%d)" t.unit_bytes t.factor
    t.start_disk
