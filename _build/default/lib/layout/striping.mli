(** I/O-node-level striping of a file (Section 2).

    A file is cut into consecutive stripe units of [unit_bytes]; unit [u]
    is stored on I/O node [(start_disk + u) mod factor].  This is the
    striping visible to the compiler (the PVFS [pvfs_filestat]
    equivalent: stripe unit, stripe factor, starting iodevice). *)

type t = { unit_bytes : int; factor : int; start_disk : int }

val make : unit_bytes:int -> factor:int -> start_disk:int -> t
(** @raise Invalid_argument unless [unit_bytes >= 1], [factor >= 1] and
    [0 <= start_disk < factor]. *)

val default : t
(** Table 1 defaults: 32 KB unit, 8 disks, starting at the first disk. *)

val stripe_of_offset : t -> int -> int
(** Index of the stripe unit containing a byte offset. *)

val disk_of_offset : t -> int -> int
(** I/O node holding a byte offset. *)

val disk_of_stripe : t -> int -> int

val span : t -> offset:int -> size:int -> (int * int * int) list
(** Decompose a byte range into per-stripe-unit pieces
    [(disk, offset, size)]; a range within one unit yields one piece. *)

val pp : Format.formatter -> t -> unit
