type t = { unit_bytes : int; disks : int }

let make ~unit_bytes ~disks =
  if unit_bytes < 1 then invalid_arg "Raid.make: unit_bytes must be >= 1";
  if disks < 1 then invalid_arg "Raid.make: disks must be >= 1";
  { unit_bytes; disks }

let single_disk = make ~unit_bytes:max_int ~disks:1
let default = make ~unit_bytes:(32 * 1024) ~disks:4

let place t lba =
  if lba < 0 then invalid_arg "Raid.place: negative position";
  let stripe = lba / t.unit_bytes in
  let member = stripe mod t.disks in
  let member_lba = (stripe / t.disks * t.unit_bytes) + (lba mod t.unit_bytes) in
  (member, member_lba)

let member_of_lba t lba = fst (place t lba)

let members_of_span t ~offset ~size =
  if size < 0 then invalid_arg "Raid.members_of_span: negative size";
  if size = 0 then []
  else begin
    let first = offset / t.unit_bytes and last = (offset + size - 1) / t.unit_bytes in
    let members = ref [] in
    let s = ref first in
    (* After [disks] stripes every member is covered. *)
    while !s <= last && List.length !members < t.disks do
      let m = !s mod t.disks in
      if not (List.mem m !members) then members := m :: !members;
      incr s
    done;
    List.sort compare !members
  end

let pp ppf t =
  if t.disks = 1 then Format.pp_print_string ppf "raid(single disk)"
  else Format.fprintf ppf "raid(unit=%dB, disks=%d)" t.unit_bytes t.disks
