(** RAID-level striping inside one I/O node — the second level of the
    paper's two-level scheme (Section 2, Fig. 1): "The stripes assigned
    to an I/O node are further striped at the RAID level...  The RAID
    level striping, however, is hidden from the software."

    The compiler never sees this level; power management operates at
    node granularity regardless ("spinning down a disk" means the whole
    node's disks).  The mapping is still modeled so node-local layouts
    can be inspected and the one-disk-per-node default of the paper's
    experiments is a provable special case. *)

type t = { unit_bytes : int; disks : int }

val make : unit_bytes:int -> disks:int -> t
(** @raise Invalid_argument unless both are positive. *)

val single_disk : t
(** The paper's experimental configuration: "each I/O node has one disk
    and no further striping is applied". *)

val default : t
(** A 4-disk RAID-0 with the Table-1 32 KB unit. *)

val place : t -> int -> int * int
(** [place raid node_lba] maps a node-local byte position to
    [(member_disk, member_lba)]. *)

val member_of_lba : t -> int -> int
val members_of_span : t -> offset:int -> size:int -> int list
(** Distinct member disks a node-local byte range touches, ascending. *)

val pp : Format.formatter -> t -> unit
