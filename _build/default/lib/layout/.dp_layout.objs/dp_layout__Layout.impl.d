lib/layout/layout.ml: Dp_ir Format List Option Printf Striping
