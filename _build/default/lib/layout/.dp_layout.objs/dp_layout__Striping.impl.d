lib/layout/striping.ml: Format List
