lib/layout/raid.mli: Format
