lib/layout/layout.mli: Dp_ir Format Striping
