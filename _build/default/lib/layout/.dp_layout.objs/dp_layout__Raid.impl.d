lib/layout/raid.ml: Format List
