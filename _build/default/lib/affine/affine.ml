type t = { const : int; terms : (string * int) list }
(* [terms] sorted by variable name, no zero coefficients: canonical form. *)

let normalize terms =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (v, c) ->
      let prev = Option.value ~default:0 (Hashtbl.find_opt tbl v) in
      Hashtbl.replace tbl v (prev + c))
    terms;
  Hashtbl.fold (fun v c acc -> if c = 0 then acc else (v, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let const c = { const = c; terms = [] }
let var v = { const = 0; terms = [ (v, 1) ] }
let term c v = { const = 0; terms = normalize [ (v, c) ] }
let of_terms ?(const = 0) terms = { const; terms = normalize terms }
let zero = const 0

let add a b = { const = a.const + b.const; terms = normalize (a.terms @ b.terms) }

let scale k a =
  if k = 0 then zero
  else { const = k * a.const; terms = List.map (fun (v, c) -> (v, k * c)) a.terms }

let neg a = scale (-1) a
let sub a b = add a (neg b)

let coeff a v = Option.value ~default:0 (List.assoc_opt v a.terms)
let constant a = a.const
let terms a = a.terms
let vars a = List.map fst a.terms
let is_const a = a.terms = []
let equal a b = a.const = b.const && a.terms = b.terms
let compare = Stdlib.compare

let subst v e a =
  let c = coeff a v in
  if c = 0 then a
  else
    let without = { a with terms = List.remove_assoc v a.terms } in
    add without (scale c e)

let rename f a =
  { a with terms = normalize (List.map (fun (v, c) -> (f v, c)) a.terms) }

let eval env a =
  List.fold_left (fun acc (v, c) -> acc + (c * env v)) a.const a.terms

let eval_opt env a =
  List.fold_left
    (fun acc (v, c) ->
      match env v with
      | Some value -> { acc with const = acc.const + (c * value) }
      | None -> { acc with terms = (v, c) :: acc.terms })
    { const = a.const; terms = [] }
    a.terms
  |> fun r -> { r with terms = normalize r.terms }

let pp ppf a =
  let pp_term ~first ppf (v, c) =
    if c = 1 then Format.fprintf ppf "%s%s" (if first then "" else " + ") v
    else if c = -1 then Format.fprintf ppf "%s%s" (if first then "-" else " - ") v
    else if c > 0 then Format.fprintf ppf "%s%d*%s" (if first then "" else " + ") c v
    else Format.fprintf ppf "%s%d*%s" (if first then "" else " - ") (abs c) v
  in
  match a.terms with
  | [] -> Format.pp_print_int ppf a.const
  | t0 :: rest ->
      pp_term ~first:true ppf t0;
      List.iter (pp_term ~first:false ppf) rest;
      if a.const > 0 then Format.fprintf ppf " + %d" a.const
      else if a.const < 0 then Format.fprintf ppf " - %d" (abs a.const)

let to_string a = Format.asprintf "%a" pp a

let ( + ) = add
let ( - ) = sub
