(** Affine (linear + constant) integer expressions over named variables.

    These are the subscript and loop-bound expressions the compiler
    manipulates: [c0 + c1*i1 + ... + cn*in].  The representation is
    canonical: terms are sorted by variable name and never carry a zero
    coefficient, so structural equality coincides with semantic equality. *)

type t

val const : int -> t
val var : string -> t
val term : int -> string -> t
(** [term c v] is [c*v]. *)

val of_terms : ?const:int -> (string * int) list -> t
(** Build from (variable, coefficient) bindings; duplicate variables are
    summed, zero coefficients dropped. *)

val zero : t

val add : t -> t -> t
val sub : t -> t -> t
val scale : int -> t -> t
val neg : t -> t

val coeff : t -> string -> int
(** Coefficient of a variable (0 when absent). *)

val constant : t -> int
val terms : t -> (string * int) list
(** Sorted (variable, nonzero coefficient) list. *)

val vars : t -> string list
val is_const : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val subst : string -> t -> t -> t
(** [subst v e t] replaces every occurrence of [v] in [t] by [e]. *)

val rename : (string -> string) -> t -> t

val eval : (string -> int) -> t -> int
(** Evaluate under an environment.
    @raise Not_found if the environment lacks a variable. *)

val eval_opt : (string -> int option) -> t -> t
(** Partially evaluate: substitute the variables the environment knows. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
