lib/affine/affine.mli: Format
