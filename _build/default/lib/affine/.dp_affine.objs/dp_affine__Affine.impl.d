lib/affine/affine.ml: Format Hashtbl List Option Stdlib String
