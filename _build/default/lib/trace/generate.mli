module Ir = Dp_ir.Ir
module Layout = Dp_layout.Layout
module Concrete = Dp_dependence.Concrete
module Parallelize = Dp_restructure.Parallelize

(** Trace generation: turn a (possibly restructured, possibly
    parallelized) execution order into a timed I/O request stream.

    Each processor runs its instance stream with a private clock:
    compute cycles advance it, and every array-element access issues one
    page request at the current time and then waits the nominal service
    time (synchronous I/O at full disk speed — the open-loop arrival
    model of trace-driven simulation). *)

type stream = int array
(** Instance [seq] ids in execution order for one processor. *)

type segments = stream list
(** Barrier-separated phases of one processor: all processors finish
    segment [k] before any starts segment [k+1] (fork-join nests). *)

val trace :
  ?cost:Cost_model.t ->
  Layout.t ->
  Ir.program ->
  Concrete.graph ->
  segments array ->
  Request.t list
(** [trace layout prog g per_proc] with [per_proc.(p)] the segments of
    processor [p].  The result is sorted by arrival time.
    @raise Invalid_argument if the processors' segment counts differ. *)

(** {1 Stream builders} *)

val single_stream : Concrete.graph -> order:int array -> segments array
(** One processor, one segment: the given order. *)

val original_segments :
  Ir.program -> Concrete.graph -> Parallelize.assignment -> segments array
(** Per-processor streams in original execution order, one segment per
    nest (fork-join barriers between nests), under the given
    assignment. *)

val reordered_segments :
  Parallelize.assignment -> order_of_proc:(int -> int array) -> segments array
(** Per-processor single-segment streams from a per-processor order
    (e.g. a per-processor disk-reuse schedule). *)

(** {1 Summary} *)

type summary = {
  requests : int;
  bytes : int;
  makespan_ms : float;  (** last arrival + nominal service *)
  compute_ms : float;  (** total compute time across processors *)
  io_ms : float;  (** total nominal I/O time across processors *)
}

val summarize : ?cost:Cost_model.t -> Request.t list -> summary
val io_fraction : summary -> float
(** Fraction of busy time spent in I/O: the paper reports 75-82% for its
    applications; the workloads are calibrated against this. *)
