lib/trace/cost_model.ml:
