lib/trace/request.mli: Dp_ir Format
