lib/trace/generate.mli: Cost_model Dp_dependence Dp_ir Dp_layout Dp_restructure Request
