lib/trace/idle_stats.ml: Array Cost_model Format Hashtbl List Printf Request
