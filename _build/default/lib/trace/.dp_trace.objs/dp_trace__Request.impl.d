lib/trace/request.ml: Dp_ir Float Format Fun List Printf String
