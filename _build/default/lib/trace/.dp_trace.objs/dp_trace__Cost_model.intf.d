lib/trace/cost_model.mli:
