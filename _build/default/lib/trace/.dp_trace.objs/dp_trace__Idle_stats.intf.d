lib/trace/idle_stats.mli: Cost_model Format Request
