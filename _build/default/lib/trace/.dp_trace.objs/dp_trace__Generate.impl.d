lib/trace/generate.ml: Array Cost_model Dp_affine Dp_dependence Dp_ir Dp_layout Dp_restructure Float Hashtbl List Option Request
