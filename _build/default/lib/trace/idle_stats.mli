(** Per-disk idle-gap statistics of a trace — the quantity every policy
    in the paper feeds on ("most prior techniques to disk power
    management become more effective with long disk idle periods").

    Gaps are measured on the nominal (full-speed) timeline between the
    estimated completion of one request and the arrival of the next on
    the same disk. *)

type histogram = {
  edges : float array;  (** ascending bucket upper edges, seconds *)
  counts : int array;  (** [counts.(k)]: gaps in bucket [k]; one extra
                           final bucket for gaps beyond the last edge *)
  mass_s : float array;  (** total idle seconds per bucket *)
}

val default_edges : float array
(** 1 s, 4 s, 15.2 s (the TPM break-even), 31.6 s (the proactive TPM
    round trip), 120 s. *)

val of_requests :
  ?edges:float array -> ?cost:Cost_model.t -> Request.t list -> histogram

val total_gaps : histogram -> int
val total_mass_s : histogram -> float

val exploitable_mass_s : histogram -> threshold_s:float -> float
(** Idle seconds in gaps at least [threshold_s] long (whole buckets whose
    lower edge reaches the threshold). *)

val pp : Format.formatter -> histogram -> unit
(** One line per bucket: range, gap count, idle mass. *)
