type histogram = {
  edges : float array;
  counts : int array;
  mass_s : float array;
}

let default_edges = [| 1.0; 4.0; 15.2; 31.6; 120.0 |]

let of_requests ?(edges = default_edges) ?(cost = Cost_model.default) reqs =
  let n = Array.length edges + 1 in
  let counts = Array.make n 0 and mass_s = Array.make n 0.0 in
  let last = Hashtbl.create 8 in
  let pos = Hashtbl.create 8 in
  List.iter
    (fun (r : Request.t) ->
      let seek_distance =
        match Hashtbl.find_opt pos r.Request.disk with
        | Some e -> r.Request.lba - e
        | None -> max_int
      in
      Hashtbl.replace pos r.Request.disk (r.Request.lba + r.Request.size);
      let completion =
        r.Request.arrival_ms +. Cost_model.service_ms ~seek_distance cost ~bytes:r.Request.size
      in
      (match Hashtbl.find_opt last r.Request.disk with
      | Some prev_end when r.Request.arrival_ms > prev_end ->
          let gap = (r.Request.arrival_ms -. prev_end) /. 1000.0 in
          let b = ref 0 in
          while !b < Array.length edges && gap >= edges.(!b) do incr b done;
          counts.(!b) <- counts.(!b) + 1;
          mass_s.(!b) <- mass_s.(!b) +. gap
      | _ -> ());
      Hashtbl.replace last r.Request.disk completion)
    reqs;
  { edges; counts; mass_s }

let total_gaps h = Array.fold_left ( + ) 0 h.counts
let total_mass_s h = Array.fold_left ( +. ) 0.0 h.mass_s

let exploitable_mass_s h ~threshold_s =
  let acc = ref 0.0 in
  Array.iteri
    (fun k m ->
      let lower = if k = 0 then 0.0 else h.edges.(k - 1) in
      if lower >= threshold_s then acc := !acc +. m)
    h.mass_s;
  !acc

let pp ppf h =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun k count ->
      let lo = if k = 0 then 0.0 else h.edges.(k - 1) in
      let hi_label =
        if k < Array.length h.edges then Printf.sprintf "%g s" h.edges.(k) else "inf"
      in
      Format.fprintf ppf "%6g s .. %-8s %7d gaps %10.0f s idle@," lo hi_label count
        h.mass_s.(k))
    h.counts;
  Format.fprintf ppf "@]"
