(** Nominal timing used when {e generating} traces: the per-iteration CPU
    cost (cycle annotations at the host clock rate, Section 7.1's SUN
    Blade1000 at 750 MHz) and the full-speed service time of a request,
    used to space arrivals as a synchronous-I/O execution would.

    The power simulator has its own (richer) service model; this one only
    fixes arrival times, exactly like the paper's trace generator. *)

type t = {
  cpu_hz : float;
  seek_ms : float;
  rotation_ms : float;  (** average rotational latency *)
  transfer_mb_s : float;
}

val default : t
(** 750 MHz CPU; IBM Ultrastar 36Z15: 3.4 ms seek, 2 ms rotation,
    55 MB/s transfer. *)

val compute_ms : t -> cycles:int -> float

val service_ms : ?seek_distance:int -> t -> bytes:int -> float
(** Full-speed service time; the seek cost depends on the byte distance
    from the previous request on the same disk (0 = sequential, short
    hops 40% of the average seek, default a full seek). *)
