type t = {
  cpu_hz : float;
  seek_ms : float;
  rotation_ms : float;
  transfer_mb_s : float;
}

let default =
  { cpu_hz = 750e6; seek_ms = 3.4; rotation_ms = 2.0; transfer_mb_s = 55.0 }

let compute_ms t ~cycles = float_of_int cycles /. t.cpu_hz *. 1000.0

let short_seek_bytes = 32 * 1024 * 1024

let seek_ms_of_distance t distance =
  let d = abs distance in
  if d = 0 then 0.0 else if d <= short_seek_bytes then 0.4 *. t.seek_ms else t.seek_ms

let service_ms ?seek_distance t ~bytes =
  (match seek_distance with None -> t.seek_ms | Some d -> seek_ms_of_distance t d)
  +. t.rotation_ms
  +. (float_of_int bytes /. (t.transfer_mb_s *. 1024.0 *. 1024.0) *. 1000.0)
