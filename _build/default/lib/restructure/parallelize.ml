module Ir = Dp_ir.Ir
module Affine = Dp_affine.Affine
module Layout = Dp_layout.Layout
module Analysis = Dp_dependence.Analysis
module Concrete = Dp_dependence.Concrete
module Listx = Dp_util.Listx

type assignment = { procs : int; owner : int array }

let clamp_proc procs p = if p < 0 then 0 else if p >= procs then procs - 1 else p

let nest_by_id (prog : Ir.program) id =
  match List.find_opt (fun (n : Ir.nest) -> n.nest_id = id) prog.nests with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Parallelize: unknown nest id %d" id)

(* Chunk of the block-partitioned loop [k] that iteration [iter] falls
   into; bounds may depend on outer indices (triangular nests). *)
let chunk_of_iteration (n : Ir.nest) k ~procs iter =
  let env = Ir.env_of_iteration n iter in
  let l = List.nth n.loops k in
  let lo = Affine.eval env l.Ir.lo and hi = Affine.eval env l.Ir.hi in
  let total = hi - lo + 1 in
  if total <= 0 then 0
  else clamp_proc procs ((iter.(k) - lo) * procs / total)

let conventional (prog : Ir.program) (g : Concrete.graph) ~procs =
  if procs < 1 then invalid_arg "Parallelize.conventional: procs must be >= 1";
  let parallel_loop = Hashtbl.create 8 in
  List.iter
    (fun (n : Ir.nest) ->
      Hashtbl.add parallel_loop n.nest_id (Analysis.outermost_parallel_loop n))
    prog.nests;
  let owner = Array.make (Concrete.instance_count g) 0 in
  Array.iter
    (fun (inst : Concrete.instance) ->
      let n = nest_by_id prog inst.nest_id in
      match Hashtbl.find parallel_loop inst.nest_id with
      | Some k -> owner.(inst.seq) <- chunk_of_iteration n k ~procs inst.iter
      | None -> owner.(inst.seq) <- 0)
    g.instances;
  { procs; owner }

type distribution = Row_block | Col_block

let pp_distribution ppf = function
  | Row_block -> Format.pp_print_string ppf "row-block"
  | Col_block -> Format.pp_print_string ppf "column-block"

let demanded_distribution (n : Ir.nest) name =
  match Analysis.outermost_parallel_loop n with
  | None -> None
  | Some k -> (
      let indices = Ir.nest_indices n in
      let par_index = List.nth indices k in
      let refs =
        List.concat_map
          (fun (s : Ir.stmt) -> List.filter (fun (r : Ir.array_ref) -> r.array = name) s.refs)
          n.body
      in
      match refs with
      | [] -> None
      | r :: _ -> (
          match r.subscripts with
          | [] -> None
          | first :: rest ->
              if Affine.coeff first par_index <> 0 then Some Row_block
              else if
                List.exists (fun s -> Affine.coeff s par_index <> 0) rest
              then Some Col_block
              else None))

let unified_distribution (prog : Ir.program) name =
  let votes = List.filter_map (fun n -> demanded_distribution n name) prog.nests in
  let rows = List.length (List.filter (( = ) Row_block) votes) in
  let cols = List.length (List.filter (( = ) Col_block) votes) in
  if cols > rows then Col_block else Row_block

let default_anchor (prog : Ir.program) =
  let counts = Hashtbl.create 8 in
  List.iter
    (fun (n : Ir.nest) ->
      List.iter
        (fun (s : Ir.stmt) ->
          List.iter
            (fun (r : Ir.array_ref) ->
              let c = Option.value ~default:0 (Hashtbl.find_opt counts r.array) in
              Hashtbl.replace counts r.array (c + 1))
            s.refs)
        n.body)
    prog.nests;
  let best = ref None in
  List.iter
    (fun (a : Ir.array_decl) ->
      match Hashtbl.find_opt counts a.name with
      | Some c -> (
          match !best with
          | Some (_, bc) when bc >= c -> ()
          | _ -> best := Some (a.name, c))
      | None -> ())
    prog.arrays;
  match !best with
  | Some (name, _) -> name
  | None -> invalid_arg "Parallelize.layout_aware: program references no arrays"

let proc_of_disk ~disks ~procs d = clamp_proc procs (d * procs / disks)

let layout_aware ?anchor layout (prog : Ir.program) (g : Concrete.graph) ~procs =
  if procs < 1 then invalid_arg "Parallelize.layout_aware: procs must be >= 1";
  let anchor = match anchor with Some a -> a | None -> default_anchor prog in
  if Ir.find_array prog anchor = None then
    invalid_arg (Printf.sprintf "Parallelize.layout_aware: unknown anchor array %s" anchor);
  let disks = layout.Layout.disk_count in
  let fallback = conventional prog g ~procs in
  let owner = Array.make (Concrete.instance_count g) 0 in
  let nest_cache = Hashtbl.create 8 in
  let nest_of id =
    match Hashtbl.find_opt nest_cache id with
    | Some n -> n
    | None ->
        let n = nest_by_id prog id in
        Hashtbl.add nest_cache id n;
        n
  in
  (* Plurality vote over the processors whose disk shares hold the
     iteration's accesses; anchor-array accesses count double (they
     define the affinity class).  Ties rotate over the tied processors so
     a tile spanning several shares does not starve any processor. *)
  let tie_break = ref 0 in
  Array.iter
    (fun (inst : Concrete.instance) ->
      let n = nest_of inst.nest_id in
      let accesses = Ir.element_accesses n inst.iter in
      if accesses = [] then owner.(inst.seq) <- fallback.owner.(inst.seq)
      else begin
        let votes = Array.make procs 0 in
        List.iter
          (fun ((r : Ir.array_ref), coords) ->
            let p = proc_of_disk ~disks ~procs (Layout.disk_of_element layout r.array coords) in
            votes.(p) <- votes.(p) + (if r.array = anchor then 2 else 1))
          accesses;
        let best = Array.fold_left max 0 votes in
        let tied = ref [] in
        Array.iteri (fun p v -> if v = best then tied := p :: !tied) votes;
        let tied = List.rev !tied in
        let p = List.nth tied (!tie_break mod List.length tied) in
        incr tie_break;
        owner.(inst.seq) <- p
      end)
    g.instances;
  { procs; owner }

let proc_counts a =
  let counts = Array.make a.procs 0 in
  Array.iter (fun p -> counts.(p) <- counts.(p) + 1) a.owner;
  counts
