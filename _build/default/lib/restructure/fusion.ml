module Ir = Dp_ir.Ir
module Concrete = Dp_dependence.Concrete
module Ivec = Dp_util.Ivec

let headers_match (a : Ir.nest) (b : Ir.nest) = a.Ir.loops = b.Ir.loops

(* seq ranges of each nest in the concrete graph: instances of one nest
   are contiguous and in program order. *)
let seq_ranges (prog : Ir.program) (g : Concrete.graph) =
  let tbl = Hashtbl.create 8 in
  Array.iter
    (fun (inst : Concrete.instance) ->
      let lo, hi =
        Option.value
          ~default:(inst.Concrete.seq, inst.Concrete.seq)
          (Hashtbl.find_opt tbl inst.Concrete.nest_id)
      in
      Hashtbl.replace tbl inst.Concrete.nest_id
        (min lo inst.Concrete.seq, max hi inst.Concrete.seq))
    g.Concrete.instances;
  ignore prog;
  tbl

let fusion_legal (g : Concrete.graph) (a : Ir.nest) (b : Ir.nest) =
  headers_match a b
  &&
  (* Every dependence from an instance of [a] to an instance of [b]
     must go to the same or a later iteration vector. *)
  let ok = ref true in
  Array.iteri
    (fun dst preds ->
      let dst_inst = g.Concrete.instances.(dst) in
      if dst_inst.Concrete.nest_id = b.Ir.nest_id then
        Array.iter
          (fun src ->
            let src_inst = g.Concrete.instances.(src) in
            if src_inst.Concrete.nest_id = a.Ir.nest_id then
              if Ivec.compare_lex src_inst.Concrete.iter dst_inst.Concrete.iter > 0 then
                ok := false)
          preds)
    g.Concrete.preds;
  !ok

let groups (prog : Ir.program) (g : Concrete.graph) =
  let rec build acc current = function
    | [] -> List.rev (List.rev current :: acc)
    | n :: rest -> (
        match current with
        | [] -> build acc [ n ] rest
        | last :: _ ->
            (* Fusing into a group requires legality against every member
               (dependences may skip over the immediate neighbor). *)
            if
              headers_match last n
              && List.for_all (fun m -> fusion_legal g m n) current
            then build acc (n :: current) rest
            else build (List.rev current :: acc) [ n ] rest)
  in
  match prog.Ir.nests with [] -> [] | ns -> build [] [] ns

let order (prog : Ir.program) (g : Concrete.graph) =
  let ranges = seq_ranges prog g in
  let out = Array.make (Concrete.instance_count g) (-1) in
  let pos = ref 0 in
  let emit seq =
    out.(!pos) <- seq;
    incr pos
  in
  List.iter
    (fun group ->
      match group with
      | [ (n : Ir.nest) ] ->
          (match Hashtbl.find_opt ranges n.Ir.nest_id with
          | Some (lo, hi) ->
              for seq = lo to hi do
                emit seq
              done
          | None -> ())
      | nests ->
          (* All members share the iteration space; walk it once and
             emit each member's matching instance, in program order of
             the members. *)
          let bases =
            List.filter_map
              (fun (n : Ir.nest) ->
                Option.map (fun (lo, _) -> lo) (Hashtbl.find_opt ranges n.Ir.nest_id))
              nests
          in
          let count =
            match nests with [] -> 0 | n :: _ -> Ir.iteration_count n
          in
          for k = 0 to count - 1 do
            List.iter (fun base -> emit (base + k)) bases
          done)
    (groups prog g);
  assert (!pos = Array.length out);
  out
