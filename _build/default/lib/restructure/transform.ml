module Ir = Dp_ir.Ir
module Affine = Dp_affine.Affine
module Layout = Dp_layout.Layout
module Depvec = Dp_dependence.Depvec
module Analysis = Dp_dependence.Analysis

let check_perm depth perm =
  if Array.length perm <> depth then invalid_arg "Transform: permutation length mismatch";
  let seen = Array.make depth false in
  Array.iter
    (fun d ->
      if d < 0 || d >= depth || seen.(d) then
        invalid_arg "Transform: not a permutation of the loop depths";
      seen.(d) <- true)
    perm

(* Provably lexicographically non-negative after permutation:
   exact zeros, then either the end (zero vector) or an exact positive
   entry.  Any [Any] before that point may hide a negative leader. *)
let lex_nonneg_certain entries =
  let rec walk = function
    | [] -> true
    | Depvec.Dist 0 :: rest -> walk rest
    | Depvec.Dist d :: _ -> d > 0
    | Depvec.Any :: _ -> false
  in
  walk entries

let permute_vector perm v =
  let arr = Array.of_list v in
  Array.to_list (Array.map (fun d -> if d < Array.length arr then arr.(d) else Depvec.Dist 0) perm)

let bounds_respect_order (n : Ir.nest) perm =
  (* In the new order, a loop's bounds may reference only indices of
     shallower new positions. *)
  let loops = Array.of_list n.Ir.loops in
  let ok = ref true in
  Array.iteri
    (fun new_depth old_depth ->
      let l = loops.(old_depth) in
      let allowed =
        Array.to_list (Array.sub perm 0 new_depth)
        |> List.map (fun d -> loops.(d).Ir.index)
      in
      List.iter
        (fun v -> if not (List.mem v allowed) then ok := false)
        (Affine.vars l.Ir.lo @ Affine.vars l.Ir.hi))
    perm;
  !ok

let permute_legal (n : Ir.nest) perm =
  let depth = Ir.nest_depth n in
  check_perm depth perm;
  bounds_respect_order n perm
  && List.for_all
       (fun v -> lex_nonneg_certain (permute_vector perm v))
       (Analysis.distance_vectors n)

let permute (n : Ir.nest) perm =
  if not (permute_legal n perm) then invalid_arg "Transform.permute: illegal permutation";
  let loops = Array.of_list n.Ir.loops in
  { n with Ir.loops = Array.to_list (Array.map (fun d -> loops.(d)) perm) }

let transposition depth a b =
  Array.init depth (fun d -> if d = a then b else if d = b then a else d)

let interchange_legal n a b = permute_legal n (transposition (Ir.nest_depth n) a b)
let interchange n a b = permute n (transposition (Ir.nest_depth n) a b)

let reversal_legal (n : Ir.nest) k =
  let depth = Ir.nest_depth n in
  if k < 0 || k >= depth then invalid_arg "Transform.reversal_legal: depth out of range";
  List.for_all
    (fun v ->
      let entries =
        List.mapi
          (fun d e ->
            if d <> k then e
            else match e with Depvec.Dist x -> Depvec.Dist (-x) | Depvec.Any -> Depvec.Any)
          v
      in
      lex_nonneg_certain entries)
    (Analysis.distance_vectors n)

let reverse (n : Ir.nest) k =
  if not (reversal_legal n k) then invalid_arg "Transform.reverse: illegal reversal";
  let loops = Array.of_list n.Ir.loops in
  let l = loops.(k) in
  (* Any deeper loop bound or subscript referencing the index must see
     lo + hi - index instead. *)
  let mirrored = Affine.add l.Ir.lo l.Ir.hi in
  let subst e = Affine.subst l.Ir.index (Affine.sub mirrored (Affine.var l.Ir.index)) e in
  List.iteri
    (fun d (other : Ir.loop) ->
      if d <> k && (Affine.coeff other.Ir.lo l.Ir.index <> 0 || Affine.coeff other.Ir.hi l.Ir.index <> 0)
      then invalid_arg "Transform.reverse: another loop's bounds depend on the reversed index")
    n.Ir.loops;
  let body =
    List.map
      (fun (s : Ir.stmt) ->
        {
          s with
          Ir.refs =
            List.map
              (fun (r : Ir.array_ref) -> { r with Ir.subscripts = List.map subst r.Ir.subscripts })
              s.Ir.refs;
        })
      n.Ir.body
  in
  { n with Ir.body = body }

(* Rotation bringing depth k to the front, preserving the relative order
   of the others (less disruptive than a transposition). *)
let rotation depth k =
  Array.init depth (fun d -> if d = 0 then k else if d <= k then d - 1 else d)

let strip_mine (n : Ir.nest) ~depth ~width =
  let loops = Array.of_list n.Ir.loops in
  if depth < 0 || depth >= Array.length loops then
    invalid_arg "Transform.strip_mine: depth out of range";
  if width < 1 then invalid_arg "Transform.strip_mine: width must be >= 1";
  let l = loops.(depth) in
  if not (Affine.is_const l.Ir.lo && Affine.is_const l.Ir.hi) then
    invalid_arg "Transform.strip_mine: bounds must be constant";
  let lo = Affine.constant l.Ir.lo and hi = Affine.constant l.Ir.hi in
  let trips = hi - lo + 1 in
  if trips mod width <> 0 then
    invalid_arg "Transform.strip_mine: width must divide the trip count";
  let taken = Ir.nest_indices n in
  let rec fresh candidate =
    if List.mem candidate taken then fresh (candidate ^ "'") else candidate
  in
  let block = fresh (l.Ir.index ^ "b") in
  (* i = lo + width*block + inner, block in [0, trips/width), inner in
     [0, width).  The body keeps the original index name by substituting
     its reconstruction. *)
  let inner = fresh (l.Ir.index ^ "i") in
  let reconstruction =
    Affine.add (Affine.const lo)
      (Affine.add (Affine.term width block) (Affine.var inner))
  in
  let subst e = Affine.subst l.Ir.index reconstruction e in
  let new_loops =
    List.concat
      (List.mapi
         (fun d (orig : Ir.loop) ->
           if d <> depth then
             [ { orig with Ir.lo = subst orig.Ir.lo; hi = subst orig.Ir.hi } ]
           else
             [
               Ir.loop block (Affine.const 0) (Affine.const ((trips / width) - 1));
               Ir.loop inner (Affine.const 0) (Affine.const (width - 1));
             ])
         n.Ir.loops)
  in
  let body =
    List.map
      (fun (s : Ir.stmt) ->
        {
          s with
          Ir.refs =
            List.map
              (fun (r : Ir.array_ref) ->
                { r with Ir.subscripts = List.map subst r.Ir.subscripts })
              s.Ir.refs;
        })
      n.Ir.body
  in
  { n with Ir.loops = new_loops; body }

let tile (n : Ir.nest) ~depth ~width =
  let stripped = strip_mine n ~depth ~width in
  (* Hoist the block loop (now at [depth]) to the front. *)
  let perm = rotation (Ir.nest_depth stripped) depth in
  permute stripped perm

let row_loop_depth layout (n : Ir.nest) =
  ignore layout;
  let refs = List.concat_map (fun (s : Ir.stmt) -> s.Ir.refs) n.Ir.body in
  match refs with
  | [] -> None
  | (r : Ir.array_ref) :: _ -> (
      match r.Ir.subscripts with
      | [] -> None
      | row :: _ -> (
          match Affine.terms row with
          | [ (v, _) ] -> Dp_util.Listx.index_of (fun (l : Ir.loop) -> l.Ir.index = v) n.Ir.loops
          | _ -> None))

let normalize_rows_outermost layout (prog : Ir.program) =
  let changed = ref 0 in
  let nests =
    List.map
      (fun (n : Ir.nest) ->
        match row_loop_depth layout n with
        | Some k when k > 0 ->
            let perm = rotation (Ir.nest_depth n) k in
            if permute_legal n perm then begin
              incr changed;
              permute n perm
            end
            else n
        | _ -> n)
      prog.Ir.nests
  in
  ({ prog with Ir.nests }, !changed)
