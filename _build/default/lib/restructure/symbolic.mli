module Ir = Dp_ir.Ir
module Layout = Dp_layout.Layout
module Iset = Dp_polyhedra.Iset
module Codegen = Dp_polyhedra.Codegen

(** Symbolic (compile-time) disk-reuse restructuring — the
    omega-lite-backed path of Fig. 3 for dependence-free programs,
    reproducing the shape of the transformed code in Fig. 2(c).

    For every nest, the set of iterations touching I/O node [d] is built
    as an integer set: an auxiliary stripe variable [s] is related to the
    anchor reference's row subscript by [q*s <= row < q*(s+1)] (with [q]
    rows per stripe unit) and constrained to the node's residue class
    [s + start = d (mod factor)].  Scanning those sets disk-by-disk
    yields code that finishes all accesses to one node before touching
    the next. *)

exception Unsupported of string
(** Raised when a program falls outside the symbolic fast path: a nest
    carries a data dependence (handled instead by the concrete
    {!Reuse_scheduler}), a nest's anchor row subscript is not a plain
    affine expression, or the stripe unit does not hold a whole number
    of array rows. *)

val per_disk_set : Layout.t -> Ir.nest -> disk:int -> Iset.t
(** Iterations of the nest whose anchor reference falls on [disk], over
    the variables [stripe_var :: nest indices].
    @raise Unsupported (see above). *)

type piece = { nest_id : int; code : Codegen.code list }
type disk_schedule = { disk : int; pieces : piece list }

val restructure : Layout.t -> Ir.program -> disk_schedule list
(** The transformed program: disks in increasing order, and for each
    disk the scan of every nest's per-disk set (nests in program order).
    @raise Unsupported when some nest has loop-carried dependences or an
    unsupported anchor/striping combination. *)

val pp_disk_schedule : Format.formatter -> disk_schedule -> unit
val pp : Format.formatter -> disk_schedule list -> unit

val scheduled_iterations : Layout.t -> Ir.program -> disk:int -> nest_id:int -> int array list
(** Concrete points of {!per_disk_set} (without the stripe variable) —
    used to validate the symbolic path against the concrete scheduler. *)
