module Ir = Dp_ir.Ir
module Layout = Dp_layout.Layout

(** Classic unimodular loop transformations on the IR — interchange and
    reversal — with distance-vector legality, plus a layout-driven
    normalization pass that rotates each nest so the loop indexing the
    anchor array's {e row} dimension (the dimension striping distributes)
    runs outermost.  Restructuring then clusters along contiguous loop
    ranges, and the generated per-disk code is simpler (compare the
    paper's Fig. 2(c), whose outer loops walk stripes).

    Legality is conservative: a transformed dependence vector must be
    provably lexicographically non-negative; any [Any] entry met before
    the sign is settled rejects the transformation. *)

val permute_legal : Ir.nest -> int array -> bool
(** [permute_legal nest perm] — may the loops be reordered so the loop
    now at depth [d] is the original loop [perm.(d)]?  Checks both the
    dependence condition and that every loop's bounds only reference
    loops outside the nest or at shallower (new) depths.
    @raise Invalid_argument if [perm] is not a permutation of the
    depths. *)

val permute : Ir.nest -> int array -> Ir.nest
(** Apply a loop permutation.  Subscripts are untouched (they reference
    indices by name).  @raise Invalid_argument when not
    [permute_legal]. *)

val interchange_legal : Ir.nest -> int -> int -> bool
val interchange : Ir.nest -> int -> int -> Ir.nest
(** Swap the loops at two depths (a transposition permutation). *)

val reversal_legal : Ir.nest -> int -> bool
(** May loop [k] run backwards? *)

val reverse : Ir.nest -> int -> Ir.nest
(** Run loop [k] from its upper to its lower bound.  Implemented by the
    standard substitution [i := lo + hi - i'], which requires the
    bounds not to depend on deeper loops (always true) and keeps the
    iteration set identical.  @raise Invalid_argument when not
    [reversal_legal] or when another loop's bounds depend on [k]. *)

val strip_mine : Ir.nest -> depth:int -> width:int -> Ir.nest
(** Split the loop at [depth] into a block loop and an intra-block loop
    of [width] iterations ([i] becomes [ib*width + i']); always legal —
    the iteration order is unchanged.  Requires constant bounds whose
    trip count [width] divides (the affine IR cannot express the
    remainder loop's [min] bound).  Fresh indices are derived from the
    original name.
    @raise Invalid_argument on non-constant bounds, non-dividing widths,
    or an out-of-range depth. *)

val tile : Ir.nest -> depth:int -> width:int -> Ir.nest
(** Strip-mine and then hoist the block loop outermost — classic tiling
    of one dimension, legal when the hoisting permutation is (checked
    via {!permute_legal} on the strip-mined nest).
    @raise Invalid_argument when the permutation is illegal or
    {!strip_mine} rejects the shape. *)

val row_loop_depth : Layout.t -> Ir.nest -> int option
(** Depth of the loop whose index (alone) drives the first subscript of
    the nest's first array reference — the striping-relevant loop. *)

val normalize_rows_outermost : Layout.t -> Ir.program -> Ir.program * int
(** Interchange every nest (when legal) so its {!row_loop_depth} loop is
    outermost.  Returns the transformed program and how many nests were
    changed. *)
