module Ir = Dp_ir.Ir
module Layout = Dp_layout.Layout
module Concrete = Dp_dependence.Concrete

(** The paper's core contribution for single-processor execution: the
    disk-reuse code-restructuring algorithm of Fig. 3, realized over the
    concrete iteration-instance dependence graph.

    The algorithm visits I/O nodes round-robin starting from node 0.
    A visit of node [d] schedules — in original execution order — the
    iterations clustered under [d] whose dependence predecessors were all
    scheduled {e when the visit started} (the Omega-computed set Q_di of
    Fig. 3), extended dynamically only by same-nest, same-disk successors
    (the generated loop nest enumerates a nest's iterations in original
    order, so intra-nest dependences are honored by construction).
    Iterations released by another nest or another disk wait for a later
    visit, exactly as in the Fig. 4 walkthrough, where iteration 7 runs
    in the second while-loop round although its predecessor 6 ran in the
    first.  A dependence-free program is fully scheduled in one round,
    visiting each disk exactly once. *)

type schedule = {
  order : int array;
      (** instance [seq] ids in their new execution order (a permutation) *)
  rounds : int;  (** executed iterations of the Fig.-3 while-loop *)
  visits : (int * int) list;
      (** per disk visit in order: (disk, iterations scheduled) — empty
          visits are omitted *)
}

val schedule :
  ?policy:Cluster.policy ->
  ?start_disk:int ->
  Layout.t ->
  Ir.program ->
  Concrete.graph ->
  schedule
(** Restructure the whole program.  Compute-only instances (touching no
    disk) are scheduled greedily as soon as they become ready, attached
    to the current visit.  [start_disk] rotates the round-robin visit
    order (default 0); with several processors each one starts its tour
    on a different disk so the tours do not contend. *)

val schedule_subset :
  ?policy:Cluster.policy ->
  ?start_disk:int ->
  Layout.t ->
  Ir.program ->
  Concrete.graph ->
  member:(int -> bool) ->
  schedule
(** Restructure only the instances selected by [member] (used to apply
    the single-processor algorithm to one processor's share of a
    parallelized program).  Dependences from non-member instances are
    ignored — the caller is responsible for inter-processor ordering. *)

val disk_switches : Cluster.table -> int array -> int
(** Number of adjacent pairs in an order whose clustering keys differ —
    the locality metric the restructuring minimizes (lower is better).
    Compute-only instances ([-1] keys) are transparent. *)
