module Ir = Dp_ir.Ir
module Layout = Dp_layout.Layout
module Concrete = Dp_dependence.Concrete

(** Mapping iteration instances to the I/O nodes they touch, and picking
    the single node an instance is clustered under when it touches
    several (the paper notes perfect disk reuse is impossible when "a
    given loop iteration can access different array elements that reside
    in different disks"; a clustering key resolves this). *)

type policy =
  | First_ref  (** the node of the textually first reference (default) *)
  | Min_disk  (** the smallest-numbered node touched *)
  | Majority  (** the node holding the most of the iteration's accesses *)

val policy_name : policy -> string
val all_policies : policy list

val disks_of_instance :
  Layout.t -> Ir.program -> Concrete.instance -> int list
(** Distinct I/O nodes the instance accesses, in first-touch order.
    Compute-only iterations (no references) yield []. *)

type table = {
  key : int array;  (** seq -> clustering key node (-1 for compute-only) *)
  touched : int array array;  (** seq -> distinct nodes touched *)
}

val build_table : ?policy:policy -> Layout.t -> Ir.program -> Concrete.graph -> table
