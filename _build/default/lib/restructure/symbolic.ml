module Ir = Dp_ir.Ir
module Affine = Dp_affine.Affine
module Layout = Dp_layout.Layout
module Striping = Dp_layout.Striping
module Iset = Dp_polyhedra.Iset
module Lincons = Dp_polyhedra.Lincons
module Codegen = Dp_polyhedra.Codegen
module Analysis = Dp_dependence.Analysis

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

(* The anchor reference of a nest: its textually first array reference. *)
let anchor_ref (n : Ir.nest) =
  let refs = List.concat_map (fun (s : Ir.stmt) -> s.refs) n.body in
  match refs with
  | r :: _ -> r
  | [] -> unsupported "nest %d has no array references" n.nest_id

(* Rows of the anchor array per stripe unit. *)
let rows_per_stripe layout (r : Ir.array_ref) =
  let entry = Layout.find layout r.array in
  let decl = entry.Layout.decl in
  let striping = entry.Layout.striping in
  let ncols =
    match decl.Ir.dims with [] -> 1 | _ :: rest -> List.fold_left ( * ) 1 rest
  in
  let row_bytes = ncols * decl.Ir.elem_size in
  if striping.Striping.unit_bytes mod row_bytes <> 0 then
    unsupported "stripe unit (%d B) does not hold whole rows of %s (%d B each)"
      striping.Striping.unit_bytes r.array row_bytes;
  (striping.Striping.unit_bytes / row_bytes, striping)

let stripe_var (n : Ir.nest) =
  let indices = Ir.nest_indices n in
  let rec fresh candidate = if List.mem candidate indices then fresh (candidate ^ "'") else candidate in
  fresh (Printf.sprintf "s%d" n.nest_id)

let per_disk_set layout (n : Ir.nest) ~disk =
  let r = anchor_ref n in
  let row_expr =
    match r.subscripts with
    | e :: _ -> e
    | [] -> unsupported "anchor reference of nest %d has no subscripts" n.nest_id
  in
  let q, striping = rows_per_stripe layout r in
  if disk < 0 || disk >= striping.Striping.factor then
    unsupported "disk %d outside the stripe factor %d" disk striping.Striping.factor;
  let s = stripe_var n in
  let domain = Iset.of_nest n in
  let vars = s :: domain.Iset.vars in
  let sv = Affine.var s in
  let cons =
    domain.Iset.cons
    @ [
        (* q*s <= row_expr <= q*s + q - 1 *)
        Lincons.ge (Affine.sub row_expr (Affine.scale q sv));
        Lincons.ge
          (Affine.sub
             (Affine.add (Affine.scale q sv) (Affine.const (q - 1)))
             row_expr);
        (* s is on the residue class of [disk]. *)
        Lincons.stride
          (Affine.add sv (Affine.const (striping.Striping.start_disk - disk)))
          striping.Striping.factor;
      ]
  in
  Iset.make vars cons

type piece = { nest_id : int; code : Codegen.code list }
type disk_schedule = { disk : int; pieces : piece list }

let restructure layout (prog : Ir.program) =
  List.iter
    (fun (n : Ir.nest) ->
      if Analysis.distance_vectors n <> [] then
        unsupported
          "nest %d carries data dependences; use the concrete reuse scheduler"
          n.nest_id)
    prog.nests;
  let disk_count = layout.Layout.disk_count in
  List.map
    (fun disk ->
      let pieces =
        List.filter_map
          (fun (n : Ir.nest) ->
            let set = per_disk_set layout n ~disk in
            if Iset.definitely_empty set then None
            else
              let payload = Printf.sprintf "body of nest %d" n.nest_id in
              match Codegen.scan set ~payload with
              | [] -> None
              | code -> Some { nest_id = n.nest_id; code })
          prog.nests
      in
      { disk; pieces })
    (Dp_util.Listx.range 0 (disk_count - 1))

let pp_disk_schedule ppf d =
  Format.fprintf ppf "@[<v>// ---- disk %d ----@," d.disk;
  List.iter
    (fun p -> Format.fprintf ppf "// nest %d@,%a" p.nest_id Codegen.pp p.code)
    d.pieces;
  Format.fprintf ppf "@]"

let pp ppf ds =
  Format.fprintf ppf "@[<v>";
  List.iter (fun d -> Format.fprintf ppf "%a@," pp_disk_schedule d) ds;
  Format.fprintf ppf "@]"

let scheduled_iterations layout prog ~disk ~nest_id =
  let n =
    match List.find_opt (fun (n : Ir.nest) -> n.nest_id = nest_id) prog.Ir.nests with
    | Some n -> n
    | None -> invalid_arg (Printf.sprintf "Symbolic.scheduled_iterations: unknown nest %d" nest_id)
  in
  let set = per_disk_set layout n ~disk in
  (* Drop the leading stripe variable from each point. *)
  List.map
    (fun p -> Array.sub p 1 (Array.length p - 1))
    (Iset.enumerate set)
