module Ir = Dp_ir.Ir
module Layout = Dp_layout.Layout
module Concrete = Dp_dependence.Concrete

type policy = First_ref | Min_disk | Majority

let policy_name = function
  | First_ref -> "first-ref"
  | Min_disk -> "min-disk"
  | Majority -> "majority"

let all_policies = [ First_ref; Min_disk; Majority ]

let nest_by_id (prog : Ir.program) id =
  match List.find_opt (fun (n : Ir.nest) -> n.nest_id = id) prog.nests with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Cluster: unknown nest id %d" id)

let disks_of_instance layout prog (inst : Concrete.instance) =
  let n = nest_by_id prog inst.nest_id in
  let accesses = Ir.element_accesses n inst.iter in
  let disks =
    List.map (fun ((r : Ir.array_ref), coords) -> Layout.disk_of_element layout r.array coords) accesses
  in
  Dp_util.Listx.uniq ( = ) disks

let key_of_disks policy all_disks =
  match all_disks with
  | [] -> -1
  | first :: _ -> (
      match policy with
      | First_ref -> first
      | Min_disk -> List.fold_left min first all_disks
      | Majority -> (
          match
            Dp_util.Listx.max_by
              (fun (_, group) -> List.length group)
              (Dp_util.Listx.group_by Fun.id all_disks)
          with
          | Some (d, _) -> d
          | None -> first))

type table = { key : int array; touched : int array array }

let build_table ?(policy = First_ref) layout prog (g : Concrete.graph) =
  let n = Concrete.instance_count g in
  let key = Array.make n (-1) in
  let touched = Array.make n [||] in
  (* Group instances by nest to avoid re-resolving the nest per instance. *)
  let nest_cache = Hashtbl.create 8 in
  let nest_of id =
    match Hashtbl.find_opt nest_cache id with
    | Some n -> n
    | None ->
        let n = nest_by_id prog id in
        Hashtbl.add nest_cache id n;
        n
  in
  Array.iter
    (fun (inst : Concrete.instance) ->
      let nest = nest_of inst.nest_id in
      let accesses = Ir.element_accesses nest inst.iter in
      let all_disks =
        List.map
          (fun ((r : Ir.array_ref), coords) -> Layout.disk_of_element layout r.array coords)
          accesses
      in
      (* Majority voting looks at every access; [touched] stores the
         distinct nodes only. *)
      key.(inst.seq) <- key_of_disks policy all_disks;
      touched.(inst.seq) <- Array.of_list (Dp_util.Listx.uniq ( = ) all_disks))
    g.instances;
  { key; touched }
