module Ir = Dp_ir.Ir
module Layout = Dp_layout.Layout
module Concrete = Dp_dependence.Concrete

(** Iteration-to-processor assignment for multiprocessor execution.

    {!conventional} is the loop-based parallelization of Section 6.1:
    each nest independently parallelizes its outermost parallelizable
    loop and block-partitions it over the processors, so a processor gets
    the positionally corresponding chunk of every nest.

    {!layout_aware} is the paper's Section 6.2 scheme: every processor
    receives, from {e every} nest, the iterations whose anchor-array
    element lives on the processor's share of the I/O nodes ("this
    parallelization scheme in a sense partitions the disks in the
    storage system across the processors by localizing accesses to each
    disk to a single processor").  The per-nest demanded distributions
    and their majority-vote unification ({!demanded_distribution},
    {!unified_distribution}) characterize the data-space agreement the
    paper derives; the disk partition is their layout-aware refinement:
    with striped files it is the unique block assignment under which a
    processor's region is served by a dedicated disk subset. *)

type assignment = {
  procs : int;
  owner : int array;  (** instance seq -> processor id in [0, procs) *)
}

val conventional : Ir.program -> Concrete.graph -> procs:int -> assignment

type distribution = Row_block | Col_block

val pp_distribution : Format.formatter -> distribution -> unit

val demanded_distribution : Ir.nest -> string -> distribution option
(** The distribution of array [name] that nest's conventional
    parallelization induces: [Row_block] when the nest's parallel loop
    index appears in the first subscript dimension of the references to
    the array, [Col_block] when it appears in a later dimension, [None]
    when the nest does not reference the array or no loop parallelizes. *)

val unified_distribution : Ir.program -> string -> distribution
(** Majority vote of {!demanded_distribution} over all nests (ties and
    the no-information case fall back to [Row_block]). *)

val layout_aware :
  ?anchor:string ->
  Layout.t ->
  Ir.program ->
  Concrete.graph ->
  procs:int ->
  assignment
(** [anchor] selects the array whose placement drives iteration
    assignment; by default the most-referenced array of the program.
    An iteration is owned by the processor whose disk share holds its
    first anchor-array element; iterations not touching the anchor
    follow the first array element they do touch (their affinity
    class); compute-only iterations follow their nest's conventional
    chunk.  Disk [d] of [n] belongs to processor [d * procs / n]. *)

val proc_of_disk : disks:int -> procs:int -> int -> int

val proc_counts : assignment -> int array
(** Instances per processor. *)
