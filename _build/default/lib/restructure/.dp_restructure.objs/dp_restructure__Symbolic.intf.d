lib/restructure/symbolic.mli: Dp_ir Dp_layout Dp_polyhedra Format
