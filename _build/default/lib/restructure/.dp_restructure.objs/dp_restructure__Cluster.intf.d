lib/restructure/cluster.mli: Dp_dependence Dp_ir Dp_layout
