lib/restructure/parallelize.mli: Dp_dependence Dp_ir Dp_layout Format
