lib/restructure/layout_opt.ml: Array Dp_dependence Dp_ir Dp_layout Dp_util Hashtbl List Printf
