lib/restructure/cluster.ml: Array Dp_dependence Dp_ir Dp_layout Dp_util Fun Hashtbl List Printf
