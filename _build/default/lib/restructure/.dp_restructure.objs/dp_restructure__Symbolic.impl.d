lib/restructure/symbolic.ml: Array Dp_affine Dp_dependence Dp_ir Dp_layout Dp_polyhedra Dp_util Format List Printf
