lib/restructure/parallelize.ml: Array Dp_affine Dp_dependence Dp_ir Dp_layout Dp_util Format Hashtbl List Option Printf
