lib/restructure/transform.ml: Array Dp_affine Dp_dependence Dp_ir Dp_layout Dp_util List
