lib/restructure/fusion.ml: Array Dp_dependence Dp_ir Dp_util Hashtbl List Option
