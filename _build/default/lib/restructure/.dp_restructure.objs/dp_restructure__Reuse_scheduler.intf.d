lib/restructure/reuse_scheduler.mli: Cluster Dp_dependence Dp_ir Dp_layout
