lib/restructure/reuse_scheduler.ml: Array Cluster Dp_dependence Dp_ir Dp_layout Dp_util List
