lib/restructure/transform.mli: Dp_ir Dp_layout
