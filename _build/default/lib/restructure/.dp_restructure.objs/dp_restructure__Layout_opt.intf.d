lib/restructure/layout_opt.mli: Dp_dependence Dp_ir Dp_layout
