lib/restructure/fusion.mli: Dp_dependence Dp_ir
