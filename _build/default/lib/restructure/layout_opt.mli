module Ir = Dp_ir.Ir
module Striping = Dp_layout.Striping
module Concrete = Dp_dependence.Concrete

(** Disk-layout reorganization — the paper's stated future work ("a
    framework that combines application code restructuring with disk
    layout reorganization under a unified optimizer"), following the
    authors' ICS'05 layout paper: choose each file's striping parameters
    (start disk and stripe-unit size, here in whole array rows) so the
    restructured code clusters better.

    The optimizer runs coordinate descent over the arrays: for each
    array it tries every start disk and each candidate rows-per-stripe,
    keeping the combination that minimizes a sampled cost

    {v cost = avg distinct I/O nodes touched per iteration
           + imbalance penalty (normalized stddev of per-node load) v}

    The first term is the paper's disk-reuse obstacle (an iteration
    spanning several nodes keeps several nodes awake through its visit);
    the second keeps the optimizer from piling every array onto one node,
    which would serialize the I/O. *)

type result = {
  stripings : (string * Striping.t) list;
  cost : float;  (** final sampled cost *)
  baseline_cost : float;  (** cost of the initial stripings *)
}

val cost :
  ?sample:int ->
  Ir.program ->
  Concrete.graph ->
  stripings:(string * Striping.t) list ->
  float
(** The objective on its own (useful for reporting).  [sample] caps the
    number of iteration instances inspected (default 20,000, evenly
    strided). *)

val optimize :
  ?rows_options:int list ->
  ?sample:int ->
  ?sweeps:int ->
  factor:int ->
  initial:(string * Striping.t) list ->
  Ir.program ->
  Concrete.graph ->
  result
(** [rows_options] are the candidate stripe heights in array rows
    (default [[1; 2; 4]]); [sweeps] is the number of coordinate-descent
    passes (default 2).  [initial] must provide a striping for every
    array of the program.
    @raise Invalid_argument if an array lacks an initial striping. *)
