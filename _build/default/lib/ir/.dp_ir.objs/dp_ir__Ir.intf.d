lib/ir/ir.mli: Dp_affine Dp_util Format
