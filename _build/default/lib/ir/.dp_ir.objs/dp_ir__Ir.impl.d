lib/ir/ir.ml: Array Dp_affine Dp_util Format Hashtbl List Option Printf String
