(** Loop-nest intermediate representation.

    A {!program} is a sequence of perfectly-nested affine loop nests over
    disk-resident arrays — the input class the paper targets (Section 2:
    "large scientific applications that operate on disk-resident arrays
    using nested loops and exhibit regular data access patterns").

    Loop bounds are inclusive affine expressions over the enclosing loop
    indices; subscripts are affine expressions over all indices of the
    owning nest.  One array element stands for one disk page (the paper
    accesses disk-resident data "at a page block granularity"), so an
    array declaration's [elem_size] is the I/O request size its accesses
    generate. *)

type access_mode = Read | Write

type array_ref = {
  array : string;
  subscripts : Dp_affine.Affine.t list;  (** one per array dimension *)
  mode : access_mode;
}

type stmt = {
  stmt_id : int;  (** unique within the program *)
  refs : array_ref list;  (** in textual order *)
  work_cycles : int;  (** CPU cost of one instance, in cycles *)
  label : string option;
}

type loop = {
  index : string;
  lo : Dp_affine.Affine.t;  (** inclusive lower bound *)
  hi : Dp_affine.Affine.t;  (** inclusive upper bound *)
}

type nest = {
  nest_id : int;  (** unique within the program *)
  loops : loop list;  (** outermost first; never empty *)
  body : stmt list;
}

type array_decl = {
  name : string;
  dims : int list;  (** extents, outermost first; never empty *)
  elem_size : int;  (** bytes per element (= per disk page) *)
  file : string;  (** backing file name (one array per file, Section 2) *)
}

type program = { arrays : array_decl list; nests : nest list }

(** {1 Construction helpers} *)

val array_decl : ?elem_size:int -> ?file:string -> string -> int list -> array_decl
(** [elem_size] defaults to 8 (a double); [file] defaults to ["<name>.dat"]. *)

val read : string -> Dp_affine.Affine.t list -> array_ref
val write : string -> Dp_affine.Affine.t list -> array_ref
val stmt : ?label:string -> ?work_cycles:int -> int -> array_ref list -> stmt
(** [stmt id refs]; [work_cycles] defaults to 1000. *)

val loop : string -> Dp_affine.Affine.t -> Dp_affine.Affine.t -> loop
val nest : int -> loop list -> stmt list -> nest
val program : array_decl list -> nest list -> program

(** {1 Validation} *)

type error =
  | Unknown_array of { nest_id : int; array : string }
  | Arity_mismatch of { nest_id : int; array : string; expected : int; got : int }
  | Unbound_variable of { nest_id : int; var : string }
  | Duplicate_index of { nest_id : int; var : string }
  | Duplicate_array of string
  | Duplicate_nest_id of int
  | Empty_nest of int

val pp_error : Format.formatter -> error -> unit
val validate : program -> (unit, error list) result
(** Check well-formedness: declared arrays, subscript arity, variables in
    scope, unique ids.  All passes assume a validated program. *)

(** {1 Queries} *)

val find_array : program -> string -> array_decl option
val array_elems : array_decl -> int
(** Total number of elements (product of extents). *)

val array_bytes : array_decl -> int
val total_bytes : program -> int
val nest_depth : nest -> int
val nest_indices : nest -> string list
val arrays_referenced : nest -> string list
(** Distinct array names, in first-reference order. *)

(** {1 Iteration enumeration}

    Iteration vectors list index values outermost-first, in the order of
    [nest.loops]. *)

val iter_nest : nest -> (Dp_util.Ivec.t -> unit) -> unit
(** Enumerate the nest's iteration vectors in original (lexicographic)
    execution order.  Bounds that reference outer indices (triangular
    loops) are evaluated on the fly. *)

val nest_iterations : nest -> Dp_util.Ivec.t list
(** All iteration vectors, in execution order.  Intended for the scaled
    workloads (up to a few hundred thousand iterations). *)

val iteration_count : nest -> int

val env_of_iteration : nest -> Dp_util.Ivec.t -> string -> int
(** Environment mapping the nest's loop indices to their values in the
    given iteration vector.
    @raise Not_found for a name that is not an index of this nest. *)

val element_accesses : nest -> Dp_util.Ivec.t -> (array_ref * int list) list
(** Concrete (reference, element coordinates) pairs an iteration touches. *)

val iteration_work : nest -> int
(** Total [work_cycles] of one iteration of the nest body. *)

(** {1 Pretty-printing} *)

val pp_ref : Format.formatter -> array_ref -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val pp_nest : Format.formatter -> nest -> unit
val pp_program : Format.formatter -> program -> unit
