module Affine = Dp_affine.Affine
module Ivec = Dp_util.Ivec

type access_mode = Read | Write

type array_ref = {
  array : string;
  subscripts : Affine.t list;
  mode : access_mode;
}

type stmt = {
  stmt_id : int;
  refs : array_ref list;
  work_cycles : int;
  label : string option;
}

type loop = { index : string; lo : Affine.t; hi : Affine.t }
type nest = { nest_id : int; loops : loop list; body : stmt list }

type array_decl = {
  name : string;
  dims : int list;
  elem_size : int;
  file : string;
}

type program = { arrays : array_decl list; nests : nest list }

let array_decl ?(elem_size = 8) ?file name dims =
  let file = Option.value file ~default:(name ^ ".dat") in
  { name; dims; elem_size; file }

let read array subscripts = { array; subscripts; mode = Read }
let write array subscripts = { array; subscripts; mode = Write }
let stmt ?label ?(work_cycles = 1000) stmt_id refs = { stmt_id; refs; work_cycles; label }
let loop index lo hi = { index; lo; hi }
let nest nest_id loops body = { nest_id; loops; body }
let program arrays nests = { arrays; nests }

type error =
  | Unknown_array of { nest_id : int; array : string }
  | Arity_mismatch of { nest_id : int; array : string; expected : int; got : int }
  | Unbound_variable of { nest_id : int; var : string }
  | Duplicate_index of { nest_id : int; var : string }
  | Duplicate_array of string
  | Duplicate_nest_id of int
  | Empty_nest of int

let pp_error ppf = function
  | Unknown_array { nest_id; array } ->
      Format.fprintf ppf "nest %d: reference to undeclared array %s" nest_id array
  | Arity_mismatch { nest_id; array; expected; got } ->
      Format.fprintf ppf "nest %d: array %s has %d dimension(s) but is subscripted with %d"
        nest_id array expected got
  | Unbound_variable { nest_id; var } ->
      Format.fprintf ppf "nest %d: unbound variable %s" nest_id var
  | Duplicate_index { nest_id; var } ->
      Format.fprintf ppf "nest %d: duplicate loop index %s" nest_id var
  | Duplicate_array name -> Format.fprintf ppf "duplicate array declaration %s" name
  | Duplicate_nest_id id -> Format.fprintf ppf "duplicate nest id %d" id
  | Empty_nest id -> Format.fprintf ppf "nest %d has no loops" id

let find_array prog name = List.find_opt (fun a -> a.name = name) prog.arrays

let validate prog =
  let errs = ref [] in
  let err e = errs := e :: !errs in
  let seen_arrays = Hashtbl.create 8 in
  List.iter
    (fun a ->
      if Hashtbl.mem seen_arrays a.name then err (Duplicate_array a.name)
      else Hashtbl.add seen_arrays a.name ())
    prog.arrays;
  let seen_nests = Hashtbl.create 8 in
  List.iter
    (fun n ->
      if Hashtbl.mem seen_nests n.nest_id then err (Duplicate_nest_id n.nest_id)
      else Hashtbl.add seen_nests n.nest_id ();
      if n.loops = [] then err (Empty_nest n.nest_id);
      let indices = Hashtbl.create 8 in
      (* Loop bounds may use outer indices only; subscripts may use all. *)
      List.iter
        (fun l ->
          List.iter
            (fun v ->
              if not (Hashtbl.mem indices v) then
                err (Unbound_variable { nest_id = n.nest_id; var = v }))
            (Affine.vars l.lo @ Affine.vars l.hi);
          if Hashtbl.mem indices l.index then
            err (Duplicate_index { nest_id = n.nest_id; var = l.index })
          else Hashtbl.add indices l.index ())
        n.loops;
      List.iter
        (fun s ->
          List.iter
            (fun r ->
              (match find_array prog r.array with
              | None -> err (Unknown_array { nest_id = n.nest_id; array = r.array })
              | Some decl ->
                  let expected = List.length decl.dims
                  and got = List.length r.subscripts in
                  if expected <> got then
                    err
                      (Arity_mismatch { nest_id = n.nest_id; array = r.array; expected; got }));
              List.iter
                (fun sub ->
                  List.iter
                    (fun v ->
                      if not (Hashtbl.mem indices v) then
                        err (Unbound_variable { nest_id = n.nest_id; var = v }))
                    (Affine.vars sub))
                r.subscripts)
            s.refs)
        n.body)
    prog.nests;
  match List.rev !errs with [] -> Ok () | es -> Error es

let array_elems a = List.fold_left ( * ) 1 a.dims
let array_bytes a = array_elems a * a.elem_size
let total_bytes prog = List.fold_left (fun acc a -> acc + array_bytes a) 0 prog.arrays
let nest_depth n = List.length n.loops
let nest_indices n = List.map (fun l -> l.index) n.loops

let arrays_referenced n =
  let names = List.concat_map (fun s -> List.map (fun r -> r.array) s.refs) n.body in
  Dp_util.Listx.uniq String.equal names

(* Enumerate iteration vectors; bounds of inner loops may reference outer
   indices, so bounds are re-evaluated as the vector is extended. *)
let iter_nest n f =
  let depth = List.length n.loops in
  let current = Array.make depth 0 in
  let loops = Array.of_list n.loops in
  let env_upto k v =
    (* Environment over indices 0..k-1. *)
    let rec find i =
      if i >= k then raise Not_found
      else if loops.(i).index = v then current.(i)
      else find (i + 1)
    in
    find 0
  in
  let rec go k =
    if k = depth then f (Array.copy current)
    else begin
      let lo = Affine.eval (env_upto k) loops.(k).lo in
      let hi = Affine.eval (env_upto k) loops.(k).hi in
      for v = lo to hi do
        current.(k) <- v;
        go (k + 1)
      done
    end
  in
  go 0

let nest_iterations n =
  let acc = ref [] in
  iter_nest n (fun v -> acc := v :: !acc);
  List.rev !acc

let iteration_count n =
  let c = ref 0 in
  iter_nest n (fun _ -> incr c);
  !c

let env_of_iteration n iter =
  let loops = Array.of_list n.loops in
  fun v ->
    let rec find i =
      if i >= Array.length loops then raise Not_found
      else if loops.(i).index = v then iter.(i)
      else find (i + 1)
    in
    find 0

let element_accesses n iter =
  let env = env_of_iteration n iter in
  List.concat_map
    (fun s ->
      List.map (fun r -> (r, List.map (Affine.eval env) r.subscripts)) s.refs)
    n.body

let iteration_work n = Dp_util.Listx.sum_by (fun s -> s.work_cycles) n.body

let pp_ref ppf r =
  Format.fprintf ppf "%s%a%s" r.array
    (fun ppf subs ->
      List.iter (fun s -> Format.fprintf ppf "[%a]" Affine.pp s) subs)
    r.subscripts
    (match r.mode with Read -> "" | Write -> " (w)")

let pp_stmt ppf s =
  Format.fprintf ppf "S%d:" s.stmt_id;
  (match s.label with Some l -> Format.fprintf ppf " (* %s *)" l | None -> ());
  List.iter (fun r -> Format.fprintf ppf " %a" pp_ref r) s.refs;
  Format.fprintf ppf " [%d cyc]" s.work_cycles

let pp_nest ppf n =
  Format.fprintf ppf "@[<v>nest %d:@," n.nest_id;
  List.iteri
    (fun depth l ->
      Format.fprintf ppf "%sfor %s = %a .. %a@,"
        (String.make (2 * depth) ' ')
        l.index Affine.pp l.lo Affine.pp l.hi)
    n.loops;
  let indent = String.make (2 * List.length n.loops) ' ' in
  List.iter (fun s -> Format.fprintf ppf "%s%a@," indent pp_stmt s) n.body;
  Format.fprintf ppf "@]"

let pp_program ppf p =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun a ->
      Format.fprintf ppf "array %s%s : %d-byte elems, file %s@," a.name
        (String.concat "" (List.map (fun d -> Printf.sprintf "[%d]" d) a.dims))
        a.elem_size a.file)
    p.arrays;
  List.iter (fun n -> Format.fprintf ppf "%a@," pp_nest n) p.nests;
  Format.fprintf ppf "@]"
