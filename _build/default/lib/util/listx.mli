(** List helpers shared across the compiler passes. *)

val group_by : ('a -> 'b) -> 'a list -> ('b * 'a list) list
(** Group elements by key, preserving first-occurrence order of keys and
    the relative order of elements within each group. *)

val max_by : ('a -> int) -> 'a list -> 'a option
(** Element maximizing the measure; first winner on ties. *)

val sum_by : ('a -> int) -> 'a list -> int
val take : int -> 'a list -> 'a list
val drop : int -> 'a list -> 'a list
val range : int -> int -> int list
(** [range lo hi] is [lo; lo+1; ...; hi] (empty if [lo > hi]). *)

val index_of : ('a -> bool) -> 'a list -> int option
val cartesian : 'a list -> 'b list -> ('a * 'b) list
val uniq : ('a -> 'a -> bool) -> 'a list -> 'a list
(** Remove duplicates (per the given equality), keeping first occurrences. *)
