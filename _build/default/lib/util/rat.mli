(** Arbitrary-sign rationals over native [int], always kept in normal form
    (positive denominator, numerator and denominator coprime).

    Used by the Fourier-Motzkin elimination in {!Dp_polyhedra} and by the
    DRPM power-model fitting in {!Dp_disksim}.  Native ints (63-bit) are
    ample for the coefficient ranges produced by the compiler passes. *)

type t = private { num : int; den : int }

val make : int -> int -> t
(** [make num den] is the normalized rational [num/den].
    @raise Division_by_zero if [den = 0]. *)

val of_int : int -> t

val zero : t
val one : t
val minus_one : t

val num : t -> int
val den : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero if the divisor is zero. *)

val neg : t -> t
val abs : t -> t
val inv : t -> t
(** @raise Division_by_zero on zero. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_int : t -> bool

val floor : t -> int
(** Largest integer [<=] the rational (true floor, also for negatives). *)

val ceil : t -> int
(** Smallest integer [>=] the rational. *)

val to_float : t -> float
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val min : t -> t -> t
val max : t -> t -> t

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val ( = ) : t -> t -> bool
