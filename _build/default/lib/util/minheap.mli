(** Imperative binary min-heap over integer keys, used by the disk-reuse
    scheduler to pick ready iterations in original execution order. *)

type t

val create : ?capacity:int -> unit -> t
val is_empty : t -> bool
val size : t -> int
val add : t -> int -> unit

val pop_min : t -> int
(** Remove and return the smallest element. @raise Not_found when empty. *)

val peek_min : t -> int
(** @raise Not_found when empty. *)
