(** Integer vectors, used for iteration vectors and dependence distance
    vectors.  A vector is an immutable [int array]; all operations allocate
    fresh arrays. *)

type t = int array

val dim : t -> int
val zero : int -> t
val of_list : int list -> t
val to_list : t -> int list

val add : t -> t -> t
(** @raise Invalid_argument on dimension mismatch. *)

val sub : t -> t -> t
val scale : int -> t -> t
val neg : t -> t
val dot : t -> t -> int
val equal : t -> t -> bool

val compare_lex : t -> t -> int
(** Lexicographic comparison; vectors must have the same dimension. *)

val is_lex_positive : t -> bool
(** True iff the first nonzero entry is positive (the zero vector is not
    lexicographically positive). *)

val is_lex_negative : t -> bool
val is_zero : t -> bool

val first_nonzero : t -> int option
(** Index of the first nonzero entry, if any. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
