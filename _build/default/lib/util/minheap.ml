type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 16) () = { data = Array.make (max capacity 1) 0; len = 0 }
let is_empty h = h.len = 0
let size h = h.len

let swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.data.(i) < h.data.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && h.data.(l) < h.data.(!smallest) then smallest := l;
  if r < h.len && h.data.(r) < h.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let add h x =
  if h.len = Array.length h.data then begin
    let bigger = Array.make (2 * h.len) 0 in
    Array.blit h.data 0 bigger 0 h.len;
    h.data <- bigger
  end;
  h.data.(h.len) <- x;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let peek_min h = if h.len = 0 then raise Not_found else h.data.(0)

let pop_min h =
  if h.len = 0 then raise Not_found;
  let m = h.data.(0) in
  h.len <- h.len - 1;
  if h.len > 0 then begin
    h.data.(0) <- h.data.(h.len);
    sift_down h 0
  end;
  m
