lib/util/minheap.ml: Array
