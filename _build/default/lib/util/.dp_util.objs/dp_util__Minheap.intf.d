lib/util/minheap.mli:
