lib/util/listx.mli:
