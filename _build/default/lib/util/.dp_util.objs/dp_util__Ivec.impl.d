lib/util/ivec.ml: Array Format
