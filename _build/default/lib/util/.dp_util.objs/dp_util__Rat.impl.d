lib/util/rat.ml: Format Stdlib
