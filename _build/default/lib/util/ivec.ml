type t = int array

let dim = Array.length
let zero n = Array.make n 0
let of_list = Array.of_list
let to_list = Array.to_list

let check_dim a b =
  if Array.length a <> Array.length b then
    invalid_arg "Ivec: dimension mismatch"

let add a b = check_dim a b; Array.mapi (fun i x -> x + b.(i)) a
let sub a b = check_dim a b; Array.mapi (fun i x -> x - b.(i)) a
let scale k = Array.map (fun x -> k * x)
let neg = Array.map (fun x -> -x)

let dot a b =
  check_dim a b;
  let s = ref 0 in
  Array.iteri (fun i x -> s := !s + (x * b.(i))) a;
  !s

let equal a b = Array.length a = Array.length b && Array.for_all2 ( = ) a b

let compare_lex a b =
  check_dim a b;
  let n = Array.length a in
  let rec loop i =
    if i >= n then 0
    else
      let c = compare a.(i) b.(i) in
      if c <> 0 then c else loop (i + 1)
  in
  loop 0

let first_nonzero a =
  let n = Array.length a in
  let rec loop i = if i >= n then None else if a.(i) <> 0 then Some i else loop (i + 1) in
  loop 0

let is_lex_positive a =
  match first_nonzero a with Some i -> a.(i) > 0 | None -> false

let is_lex_negative a =
  match first_nonzero a with Some i -> a.(i) < 0 | None -> false

let is_zero a = first_nonzero a = None

let pp ppf a =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_int)
    (Array.to_list a)

let to_string a = Format.asprintf "%a" pp a
