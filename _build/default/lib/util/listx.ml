let group_by key xs =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun x ->
      let k = key x in
      match Hashtbl.find_opt tbl k with
      | Some acc -> Hashtbl.replace tbl k (x :: acc)
      | None ->
          Hashtbl.add tbl k [ x ];
          order := k :: !order)
    xs;
  List.rev_map (fun k -> (k, List.rev (Hashtbl.find tbl k))) !order

let max_by measure = function
  | [] -> None
  | x :: xs ->
      let best, _ =
        List.fold_left
          (fun (bx, bm) y ->
            let m = measure y in
            if m > bm then (y, m) else (bx, bm))
          (x, measure x) xs
      in
      Some best

let sum_by measure xs = List.fold_left (fun acc x -> acc + measure x) 0 xs

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: xs -> x :: take (n - 1) xs

let rec drop n = function
  | xs when n <= 0 -> xs
  | [] -> []
  | _ :: xs -> drop (n - 1) xs

let range lo hi =
  let rec loop i acc = if i < lo then acc else loop (i - 1) (i :: acc) in
  loop hi []

let index_of p xs =
  let rec loop i = function
    | [] -> None
    | x :: rest -> if p x then Some i else loop (i + 1) rest
  in
  loop 0 xs

let cartesian xs ys = List.concat_map (fun x -> List.map (fun y -> (x, y)) ys) xs

let uniq eq xs =
  let rec loop seen = function
    | [] -> List.rev seen
    | x :: rest ->
        if List.exists (eq x) seen then loop seen rest else loop (x :: seen) rest
  in
  loop [] xs
