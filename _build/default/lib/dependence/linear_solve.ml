module Rat = Dp_util.Rat

type outcome = No_solution | Classified of Depvec.entry list

let solve ~rows ~rhs =
  let m = Array.length rows in
  let n = if m = 0 then 0 else Array.length rows.(0) in
  Array.iter
    (fun r -> if Array.length r <> n then invalid_arg "solve: ragged rows")
    rows;
  if Array.length rhs <> m then invalid_arg "solve: rhs length mismatch";
  (* Augmented rational matrix, column n holds the right-hand side. *)
  let a =
    Array.init m (fun i ->
        Array.init (n + 1) (fun j ->
            Rat.of_int (if j = n then rhs.(i) else rows.(i).(j))))
  in
  let pivot_col_of_row = Array.make m (-1) in
  let row = ref 0 in
  for col = 0 to n - 1 do
    if !row < m then begin
      (* Find a pivot in this column at or below !row. *)
      let pivot = ref (-1) in
      for i = !row to m - 1 do
        if !pivot = -1 && Rat.sign a.(i).(col) <> 0 then pivot := i
      done;
      if !pivot >= 0 then begin
        let p = !pivot in
        let tmp = a.(p) in
        a.(p) <- a.(!row);
        a.(!row) <- tmp;
        let inv = Rat.inv a.(!row).(col) in
        for j = col to n do
          a.(!row).(j) <- Rat.mul a.(!row).(j) inv
        done;
        for i = 0 to m - 1 do
          if i <> !row && Rat.sign a.(i).(col) <> 0 then begin
            let f = a.(i).(col) in
            for j = col to n do
              a.(i).(j) <- Rat.sub a.(i).(j) (Rat.mul f a.(!row).(j))
            done
          end
        done;
        pivot_col_of_row.(!row) <- col;
        incr row
      end
    end
  done;
  (* Inconsistency: a zero row with nonzero rhs. *)
  let inconsistent = ref false in
  for i = !row to m - 1 do
    if Rat.sign a.(i).(n) <> 0 then inconsistent := true
  done;
  if !inconsistent then No_solution
  else begin
    let entries = Array.make n Depvec.Any in
    let fractional = ref false in
    for i = 0 to !row - 1 do
      let col = pivot_col_of_row.(i) in
      let alone = ref true in
      for j = 0 to n - 1 do
        if j <> col && Rat.sign a.(i).(j) <> 0 then alone := false
      done;
      if !alone then begin
        let v = a.(i).(n) in
        if Rat.is_int v then entries.(col) <- Depvec.Dist (Rat.num v)
        else fractional := true
      end
    done;
    if !fractional then No_solution else Classified (Array.to_list entries)
  end
