module Ir = Dp_ir.Ir
module Affine = Dp_affine.Affine
module Listx = Dp_util.Listx

type kind = Flow | Anti | Output

type dep = {
  array : string;
  src_stmt : int;
  dst_stmt : int;
  kind : kind;
  vector : Depvec.t;
}

let pp_kind ppf = function
  | Flow -> Format.pp_print_string ppf "flow"
  | Anti -> Format.pp_print_string ppf "anti"
  | Output -> Format.pp_print_string ppf "output"

let pp_dep ppf d =
  Format.fprintf ppf "%a S%d -> S%d on %s %a" pp_kind d.kind d.src_stmt d.dst_stmt
    d.array Depvec.pp d.vector

(* Coefficients of a subscript over the nest's indices, outermost first. *)
let coeff_row indices sub = List.map (Affine.coeff sub) indices

(* Constant loop bounds, when available, for the Banerjee refinement. *)
let const_bounds (n : Ir.nest) =
  List.map
    (fun (l : Ir.loop) ->
      if Affine.is_const l.lo && Affine.is_const l.hi then
        Some (Affine.constant l.lo, Affine.constant l.hi)
      else None)
    n.loops

let kind_of_modes src_mode dst_mode =
  match (src_mode, dst_mode) with
  | Ir.Write, Ir.Read -> Flow
  | Ir.Read, Ir.Write -> Anti
  | Ir.Write, Ir.Write -> Output
  | Ir.Read, Ir.Read -> assert false (* input deps are never enumerated *)

(* Distance vector for an ordered, uniformly generated pair: solve
   A d = c1 - c2 where d = sink_iteration - source_iteration. *)
let uniform_vector indices (r1 : Ir.array_ref) (r2 : Ir.array_ref) =
  let rows =
    List.map (fun s -> Array.of_list (coeff_row indices s)) r1.subscripts
    |> Array.of_list
  in
  let rhs =
    List.map2
      (fun s1 s2 -> Affine.constant s1 - Affine.constant s2)
      r1.subscripts r2.subscripts
    |> Array.of_list
  in
  match Linear_solve.solve ~rows ~rhs with
  | Linear_solve.No_solution -> None
  | Linear_solve.Classified entries -> Some entries

(* Entry-wise refinement: an exact distance larger than a loop's constant
   trip span is impossible. *)
let within_trip_spans bounds vector =
  List.for_all2
    (fun b e ->
      match (b, e) with
      | Some (lo, hi), Depvec.Dist d -> abs d <= hi - lo
      | _, (Depvec.Dist _ | Depvec.Any) -> true)
    bounds vector

(* Fallback existence test for a non-uniform pair: one equation per array
   dimension, over the 2n unknowns (source iteration, sink iteration). *)
let nonuniform_may_depend indices bounds (r1 : Ir.array_ref) (r2 : Ir.array_ref) =
  let box =
    if List.for_all Option.is_some bounds then
      let b = List.map Option.get bounds in
      Some (b @ b)
    else None
  in
  List.for_all2
    (fun s1 s2 ->
      let coeffs = coeff_row indices s1 @ List.map (fun c -> -c) (coeff_row indices s2) in
      let rhs = Affine.constant s2 - Affine.constant s1 in
      Dep_tests.may_depend ~bounds:box ~coeffs ~rhs ())
    r1.subscripts r2.subscripts

let uniformly_generated (r1 : Ir.array_ref) (r2 : Ir.array_ref) indices =
  List.for_all2
    (fun s1 s2 -> coeff_row indices s1 = coeff_row indices s2)
    r1.subscripts r2.subscripts

let nest_dependences (n : Ir.nest) =
  let indices = Ir.nest_indices n in
  let depth = List.length indices in
  let bounds = const_bounds n in
  let refs =
    List.concat_map (fun (s : Ir.stmt) -> List.map (fun r -> (s.stmt_id, r)) s.refs) n.body
  in
  let deps = ref [] in
  List.iter
    (fun (id1, (r1 : Ir.array_ref)) ->
      List.iter
        (fun (id2, (r2 : Ir.array_ref)) ->
          if
            r1.array = r2.array
            && (r1.mode = Ir.Write || r2.mode = Ir.Write)
            && List.length r1.subscripts = List.length r2.subscripts
          then begin
            let raw =
              if uniformly_generated r1 r2 indices then uniform_vector indices r1 r2
              else if nonuniform_may_depend indices bounds r1 r2 then
                Some (List.init depth (fun _ -> Depvec.Any))
              else None
            in
            match raw with
            | None -> ()
            | Some v when not (within_trip_spans bounds v) -> ()
            | Some v -> (
                match Depvec.normalize v with
                | None -> ()
                | Some vector ->
                    (* If normalization flipped the orientation, swap the
                       source and sink roles. *)
                    let flipped =
                      Depvec.is_lex_negative v && Depvec.is_lex_positive vector
                    in
                    let src_stmt, dst_stmt, src_mode, dst_mode =
                      if flipped then (id2, id1, r2.mode, r1.mode)
                      else (id1, id2, r1.mode, r2.mode)
                    in
                    deps :=
                      {
                        array = r1.array;
                        src_stmt;
                        dst_stmt;
                        kind = kind_of_modes src_mode dst_mode;
                        vector;
                      }
                      :: !deps)
          end)
        refs)
    refs;
  Listx.uniq ( = ) (List.rev !deps)

let distance_vectors n =
  Listx.uniq Depvec.equal (List.map (fun d -> d.vector) (nest_dependences n))

let parallel_loops n =
  let vectors = distance_vectors n in
  let depth = Ir.nest_depth n in
  List.init depth (Depvec.loop_parallelizable vectors)

let outermost_parallel_loop n =
  Depvec.outermost_parallel (distance_vectors n) ~depth:(Ir.nest_depth n)
