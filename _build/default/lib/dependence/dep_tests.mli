(** Classic scalar dependence existence tests (Banerjee-style), used as
    fallbacks when a reference pair is not uniformly generated. *)

val gcd_test : coeffs:int list -> rhs:int -> bool
(** May the equation [sum coeffs.(i) * x_i = rhs] have an integer
    solution?  True iff [gcd coeffs] divides [rhs] (with the all-zero
    coefficient case requiring [rhs = 0]). *)

val banerjee_test :
  bounds:(int * int) list -> coeffs:int list -> rhs:int -> bool
(** Range test: may the equation have a solution with each [x_i] inside
    its inclusive [bounds]?  True iff [rhs] lies between the minimum and
    maximum of the linear form over the box.  [coeffs] and [bounds] must
    have equal length. *)

val may_depend :
  ?bounds:(int * int) list option -> coeffs:int list -> rhs:int -> unit -> bool
(** GCD test, refined by the Banerjee range test when bounds are known. *)
