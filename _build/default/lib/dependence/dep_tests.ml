let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let gcd_test ~coeffs ~rhs =
  let g = List.fold_left gcd 0 coeffs in
  if g = 0 then rhs = 0 else rhs mod g = 0

let banerjee_test ~bounds ~coeffs ~rhs =
  if List.length bounds <> List.length coeffs then
    invalid_arg "banerjee_test: bounds/coeffs length mismatch";
  let lo, hi =
    List.fold_left2
      (fun (lo, hi) c (blo, bhi) ->
        if c >= 0 then (lo + (c * blo), hi + (c * bhi))
        else (lo + (c * bhi), hi + (c * blo)))
      (0, 0) coeffs bounds
  in
  rhs >= lo && rhs <= hi

let may_depend ?(bounds = None) ~coeffs ~rhs () =
  gcd_test ~coeffs ~rhs
  &&
  match bounds with
  | Some b -> banerjee_test ~bounds:b ~coeffs ~rhs
  | None -> true
