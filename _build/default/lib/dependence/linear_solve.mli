(** Integer linear-system classification used by the distance-vector
    extraction: given [A d = b], decide whether integer solutions may
    exist and which unknowns they pin down. *)

type outcome =
  | No_solution  (** The system has no integer solution. *)
  | Classified of Depvec.entry list
      (** One entry per unknown: [Dist v] when every solution assigns [v]
          to that unknown, [Any] when the unknown is free or entangled
          with others. *)

val solve : rows:int array array -> rhs:int array -> outcome
(** [solve ~rows ~rhs] classifies the solutions of [rows . d = rhs].
    All rows must have equal length (the number of unknowns).
    Implemented by rational Gauss-Jordan elimination; a pivot row whose
    only nonzero coefficient is its pivot pins its unknown (rejecting the
    system when the pinned value is fractional); any other unknown is
    reported [Any]. *)
