lib/dependence/concrete.ml: Array Dp_ir Dp_util Format Fun Hashtbl List
