lib/dependence/linear_solve.mli: Depvec
