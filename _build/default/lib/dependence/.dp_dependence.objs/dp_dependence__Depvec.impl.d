lib/dependence/depvec.ml: Dp_util Format List
