lib/dependence/dep_tests.ml: List
