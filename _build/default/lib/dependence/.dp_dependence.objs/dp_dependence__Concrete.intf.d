lib/dependence/concrete.mli: Dp_ir Dp_util
