lib/dependence/depvec.mli: Format
