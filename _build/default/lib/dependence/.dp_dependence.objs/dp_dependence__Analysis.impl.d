lib/dependence/analysis.ml: Array Dep_tests Depvec Dp_affine Dp_ir Dp_util Format Linear_solve List Option
