lib/dependence/analysis.mli: Depvec Dp_ir Format
