lib/dependence/linear_solve.ml: Array Depvec Dp_util
