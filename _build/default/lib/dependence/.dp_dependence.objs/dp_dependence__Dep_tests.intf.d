lib/dependence/dep_tests.mli:
