module Ir = Dp_ir.Ir

(** Per-nest symbolic dependence analysis (Section 6.1).

    For every ordered pair of references to the same array with at least
    one write, a distance vector is extracted:

    - {e uniformly generated} pairs (identical iterator coefficients in
      every dimension) are solved exactly with {!Linear_solve}, yielding
      exact distances where the system pins them down;
    - other pairs fall back to the GCD and Banerjee range tests of
      {!Dep_tests}; when a dependence cannot be ruled out, the
      conservative all-[Any] vector is reported.

    Vectors are oriented forward with {!Depvec.normalize}; intra-iteration
    (zero) vectors are dropped since iterations are scheduled atomically
    by the restructurer. *)

type kind = Flow | Anti | Output

type dep = {
  array : string;
  src_stmt : int;
  dst_stmt : int;
  kind : kind;
  vector : Depvec.t;
}

val pp_dep : Format.formatter -> dep -> unit

val nest_dependences : Ir.nest -> dep list
(** All loop-carried dependences of a nest, deduplicated. *)

val distance_vectors : Ir.nest -> Depvec.t list
(** Just the vectors of {!nest_dependences}, deduplicated. *)

val parallel_loops : Ir.nest -> bool list
(** Per-loop parallelizability (outermost first), per the two conditions
    of Section 6.1. *)

val outermost_parallel_loop : Ir.nest -> int option
(** 0-based depth of the outermost parallelizable loop, for coarse-grain
    parallelism. [None] when every loop carries a dependence. *)
