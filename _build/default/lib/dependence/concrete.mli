module Ir = Dp_ir.Ir

(** Concrete, program-wide dependence graph at iteration-instance
    granularity.

    The Fig.-3 restructuring algorithm schedules individual loop
    iterations drawn from {e all} the nests of a program, so it needs
    dependences between iteration instances, including across nests.
    This module builds them exactly, by scanning every array-element
    access in original execution order and recording flow, anti and
    output edges (reads never depend on reads).

    Instances are identified by their position in original execution
    order ([seq]); iterating nests in program order and iterations in
    lexicographic order recovers them. *)

type instance = { seq : int; nest_id : int; iter : Dp_util.Ivec.t }

type graph = {
  instances : instance array;  (** indexed by [seq] *)
  preds : int array array;  (** [preds.(s)]: sorted dependence sources of [s] *)
  succs : int array array;  (** inverse of [preds] *)
}

val build : Ir.program -> graph
(** @raise Invalid_argument if the program fails {!Ir.validate}. *)

val instance_count : graph -> int
val edge_count : graph -> int

val is_legal_order : graph -> int array -> bool
(** [is_legal_order g order] checks that [order] (a permutation of
    [0 .. n-1] listing [seq] ids in their new execution order) schedules
    every instance after all of its dependence predecessors.  Also
    verifies that [order] is a permutation. *)

val original_order : graph -> int array
