(** Dependence distance/direction vectors (Section 6.1 of the paper).

    A vector has one entry per loop of the nest, outermost first.  An
    entry is either an exact distance ([Dist]) or unknown ([Any], the
    direction-vector [*] of the literature), which the analyses treat
    conservatively. *)

type entry = Dist of int | Any
type t = entry list

val of_dists : int list -> t
val equal : t -> t -> bool

val is_lex_positive : t -> bool
(** Definitely lexicographically positive: some prefix of exact zeros
    followed by a positive exact distance. *)

val is_lex_negative : t -> bool
val is_zero : t -> bool
(** All entries exactly zero. *)

val may_be_lex_negative : t -> bool
(** Whether some concretization of the [Any] entries is lexicographically
    negative (or zero is not counted; strictly negative). *)

val negate : t -> t

val normalize : t -> t option
(** Orient a raw solution as a forward dependence: a definitely
    lex-positive vector is kept, a definitely lex-negative one is negated,
    the zero vector is dropped ([None]), and a vector whose sign is
    unknown keeps its exact-zero prefix with everything from the first
    [Any] on widened to [Any] (covering both orientations). *)

val loop_parallelizable : t list -> int -> bool
(** [loop_parallelizable vectors k] decides whether loop [k] (0-based,
    outermost = 0) can run in parallel: for every vector, either entry
    [k] is exactly 0, or the prefix before [k] is definitely
    lexicographically positive (the dependence is carried by an outer
    sequential loop).  Conservative on [Any]. *)

val outermost_parallel : t list -> depth:int -> int option
(** Outermost parallelizable loop under {!loop_parallelizable}, if any. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
