type entry = Dist of int | Any
type t = entry list

let of_dists ds = List.map (fun d -> Dist d) ds
let equal = ( = )

let rec is_lex_positive = function
  | [] -> false
  | Dist 0 :: rest -> is_lex_positive rest
  | Dist d :: _ -> d > 0
  | Any :: _ -> false

let rec is_lex_negative = function
  | [] -> false
  | Dist 0 :: rest -> is_lex_negative rest
  | Dist d :: _ -> d < 0
  | Any :: _ -> false

let is_zero = List.for_all (function Dist 0 -> true | Dist _ | Any -> false)

let rec may_be_lex_negative = function
  | [] -> false
  | Dist 0 :: rest -> may_be_lex_negative rest
  | Dist d :: _ -> d < 0
  | Any :: _ -> true

let negate = List.map (function Dist d -> Dist (-d) | Any -> Any)

(* A vector whose sign is unknown starts with exact zeros followed by an
   [Any]; it stands for solutions in both directions.  Keeping the zero
   prefix and widening everything from the first [Any] on covers both
   orientations without losing the information carried by the prefix. *)
let normalize v =
  if is_zero v then None
  else if is_lex_positive v then Some v
  else if is_lex_negative v then Some (negate v)
  else
    let rec widen = function
      | [] -> []
      | Dist 0 :: rest -> Dist 0 :: widen rest
      | _ :: rest -> Any :: List.map (fun _ -> Any) rest
    in
    Some (widen v)

let loop_parallelizable vectors k =
  let ok v =
    match List.nth_opt v k with
    | None -> true (* vector shorter than depth: no constraint *)
    | Some (Dist 0) -> true
    | Some (Dist _ | Any) -> is_lex_positive (Dp_util.Listx.take k v)
  in
  List.for_all ok vectors

let outermost_parallel vectors ~depth =
  let rec loop k =
    if k >= depth then None
    else if loop_parallelizable vectors k then Some k
    else loop (k + 1)
  in
  loop 0

let pp ppf v =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf -> function
         | Dist d -> Format.pp_print_int ppf d
         | Any -> Format.pp_print_char ppf '*'))
    v

let to_string v = Format.asprintf "%a" pp v
