(** Registry of the six Table-2 applications. *)

let all () =
  [ Ast.app (); Fft.app (); Cholesky.app (); Visuo.app (); Scf.app (); Rsense.app () ]

let by_name name =
  List.find_opt (fun (a : App.t) -> String.lowercase_ascii a.App.name = String.lowercase_ascii name) (all ())

let names () = List.map (fun (a : App.t) -> a.App.name) (all ())
