lib/workloads/ast.ml: App Dp_ir Dp_util List
