lib/workloads/workloads.ml: App Ast Cholesky Fft List Rsense Scf String Visuo
