lib/workloads/rsense.ml: App Dp_affine Dp_ir
