lib/workloads/fft.ml: App Dp_ir
