lib/workloads/visuo.ml: App Dp_ir
