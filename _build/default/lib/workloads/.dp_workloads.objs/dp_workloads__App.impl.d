lib/workloads/app.ml: Dp_affine Dp_ir Dp_layout List
