lib/workloads/scf.ml: App Dp_affine Dp_ir Dp_util List
