lib/workloads/app.mli: Dp_affine Dp_ir Dp_layout
