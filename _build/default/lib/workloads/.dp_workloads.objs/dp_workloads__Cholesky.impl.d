lib/workloads/cholesky.ml: App Dp_ir Dp_util List
