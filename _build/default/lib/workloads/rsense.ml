(** RSense 2.0 — remote sensing database (Table 2: 104.0 GB, 126,990
    requests).

    A query mix over a disk-resident tile store [tiles]: a full scan
    (statistics), a strided band extraction reading every fourth column
    block, a windowed join over the lower half of the store against a
    per-row index [idx] producing [res1], and a post-processing pass over
    the join result.  Three of the four nests are read-dominated with no
    mutual dependences — the read-mostly server workload for which the
    paper's clustering creates the longest idle periods. *)

let rows = 184
let cols = 184

let app () =
  let k = App.counter () in
  let open App in
  let arrays =
    [
      Dp_ir.Ir.array_decl ~elem_size:page_bytes "tiles" [ rows; cols ];
      Dp_ir.Ir.array_decl ~elem_size:page_bytes "idx" [ rows; 1 ];
      Dp_ir.Ir.array_decl ~elem_size:page_bytes "res1" [ rows; cols ];
      Dp_ir.Ir.array_decl ~elem_size:page_bytes "res2" [ rows; cols ];
    ]
  in
  let scan =
    nest k
      [ ("i", c 0, c (rows - 1)); ("j", c 0, c (cols - 1)) ]
      [ stmt k ~cycles:1_400_000 [ rd "tiles" [ v "i"; v "j" ] ] ]
  in
  let band =
    nest k
      [ ("i", c 0, c (rows - 1)); ("jj", c 0, c ((cols / 4) - 1)) ]
      [ stmt k ~cycles:1_400_000 [ rd "tiles" [ v "i"; Dp_affine.Affine.scale 4 (v "jj") ] ] ]
  in
  let join =
    nest k
      [ ("i", c (rows / 2), c (rows - 1)); ("j", c 0, c (cols - 1)) ]
      [
        stmt k ~cycles:1_400_000
          [
            rd "tiles" [ v "i"; v "j" ];
            rd "idx" [ v "i"; c 0 ];
            wr "res1" [ v "i"; v "j" ];
          ];
      ]
  in
  let post =
    nest k
      [ ("i", c (rows / 2), c (rows - 1)); ("j", c 0, c (cols - 1)) ]
      [ stmt k ~cycles:1_400_000 [ rd "res1" [ v "i"; v "j" ]; wr "res2" [ v "i"; v "j" ] ] ]
  in
  let program = Dp_ir.Ir.program arrays [ scan; band; join; post ] in
  {
    App.name = "RSense 2.0";
    description = "Remote Sensing Database";
    program;
    striping = App.striping_of_rows ~row_pages:cols ~rows_per_stripe:1 ();
    overrides = App.staggered_overrides program;
    paper_data_gb = 104.0;
    paper_requests = 126_990;
    paper_base_energy_j = 37_508.2;
    paper_io_time_ms = 419_973.5;
  }
