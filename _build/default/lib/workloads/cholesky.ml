(** Cholesky — out-of-core Cholesky factorization (Table 2: 87.4 GB,
    74,441 requests).

    Left-looking column factorization at page-block granularity: for each
    block column [kc], a panel nest reads the source column of [a] and
    the previously factored column of [l] and writes column [kc] of [l]
    (triangular bounds: only rows at or below the diagonal), then an
    update nest applies the fresh panel to the next column of [a].  The
    tight column-to-column dependence chain makes this the
    dependence-heaviest application of the suite — many short disk
    visits, hence the smallest restructuring headroom. *)

let p = 172

let app () =
  let kc = App.counter () in
  let open App in
  let arrays =
    [
      Dp_ir.Ir.array_decl ~elem_size:page_bytes "a" [ p; p ];
      Dp_ir.Ir.array_decl ~elem_size:page_bytes "l" [ p; p ];
    ]
  in
  (* Column 0 has no predecessor panel. *)
  let first_panel =
    nest kc
      [ ("i", c 0, c (p - 1)) ]
      [ stmt kc ~cycles:2_500_000 [ rd "a" [ v "i"; c 0 ]; wr "l" [ v "i"; c 0 ] ] ]
  in
  let panel col =
    nest kc
      [ ("i", c col, c (p - 1)) ]
      [
        stmt kc ~cycles:2_500_000
          [
            rd "a" [ v "i"; c col ];
            rd "l" [ v "i"; c (col - 1) ];
            wr "l" [ v "i"; c col ];
          ];
      ]
  in
  let update col =
    nest kc
      [ ("i", c (col + 1), c (p - 1)) ]
      [
        stmt kc ~cycles:2_500_000
          [ rd "l" [ v "i"; c col ]; wr "a" [ v "i"; c (col + 1) ] ];
      ]
  in
  let nests =
    first_panel :: update 0
    :: List.concat_map
         (fun col -> if col < p - 1 then [ panel col; update col ] else [ panel col ])
         (Dp_util.Listx.range 1 (p - 1))
  in
  let program = Dp_ir.Ir.program arrays nests in
  {
    App.name = "Cholesky";
    description = "Cholesky Factorization";
    program;
    striping = App.striping_of_rows ~row_pages:p ~rows_per_stripe:1 ();
    overrides = App.staggered_overrides ~rows_per_stripe:2 program;
    paper_data_gb = 87.4;
    paper_requests = 74_441;
    paper_base_energy_j = 20_996.3;
    paper_io_time_ms = 337_028.0;
  }
