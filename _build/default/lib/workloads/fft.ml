(** FFT — out-of-core 2-D fast Fourier transform (Table 2: 96.6 GB,
    81,027 requests).

    The standard transpose-based out-of-core algorithm: a row-wise
    butterfly pass over [x], a transpose into [y], a row-wise pass over
    [y], and a transpose back.  The transposes read rows of one array
    while writing rows of the other in the orthogonal order, so each
    iteration touches two I/O nodes — the case where perfect disk reuse
    is unreachable and the clustering policy matters.  Between phases
    there are whole-array flow dependences; within a phase there are
    none, so each phase clusters freely. *)

let n = 100

let app () =
  let k = App.counter () in
  let open App in
  let arrays =
    [
      Dp_ir.Ir.array_decl ~elem_size:page_bytes "x" [ n; n ];
      Dp_ir.Ir.array_decl ~elem_size:page_bytes "y" [ n; n ];
    ]
  in
  let full = [ ("i", c 0, c (n - 1)); ("j", c 0, c (n - 1)) ] in
  let row_pass name =
    nest k full [ stmt k ~cycles:2_300_000 [ rd name [ v "i"; v "j" ]; wr name [ v "i"; v "j" ] ] ]
  in
  let transpose src dst =
    nest k full
      [ stmt k ~cycles:2_300_000 [ rd src [ v "i"; v "j" ]; wr dst [ v "j"; v "i" ] ] ]
  in
  let nests = [ row_pass "x"; transpose "x" "y"; row_pass "y"; transpose "y" "x" ] in
  let program = Dp_ir.Ir.program arrays nests in
  {
    App.name = "FFT";
    description = "Fast Fourier Transform";
    program;
    striping = App.striping_of_rows ~row_pages:n ~rows_per_stripe:1 ();
    overrides = App.staggered_overrides ~rows_per_stripe:2 program;
    paper_data_gb = 96.6;
    paper_requests = 81_027;
    paper_base_energy_j = 24_570.3;
    paper_io_time_ms = 371_483.1;
  }
