(** Visuo — 3-D visualization (Table 2: 95.5 GB, 86,309 requests).

    Two independent rendering passes over a disk-resident volume [vol]
    (slices x positions at page granularity): a slice-order pass writing
    image [img1], and a ray-order pass — the orthogonal traversal — into
    [img2], followed by a compositing pass that reads both images and
    writes the final frame.  The two volume passes have no mutual
    dependences, so the restructurer can fuse their per-disk work into
    long visits; Visuo is where TPM profits most from clustering. *)

let slices = 112
let width = 110

let app () =
  let k = App.counter () in
  let open App in
  let arrays =
    [
      Dp_ir.Ir.array_decl ~elem_size:page_bytes "vol" [ slices; width ];
      Dp_ir.Ir.array_decl ~elem_size:page_bytes "img1" [ slices; width ];
      Dp_ir.Ir.array_decl ~elem_size:page_bytes "img2" [ width; slices ];
      Dp_ir.Ir.array_decl ~elem_size:page_bytes "frame" [ slices; width ];
    ]
  in
  let slice_pass =
    nest k
      [ ("s", c 0, c (slices - 1)); ("i", c 0, c (width - 1)) ]
      [ stmt k ~cycles:2_100_000 [ rd "vol" [ v "s"; v "i" ]; wr "img1" [ v "s"; v "i" ] ] ]
  in
  let ray_pass =
    nest k
      [ ("i", c 0, c (width - 1)); ("s", c 0, c (slices - 1)) ]
      [ stmt k ~cycles:2_100_000 [ rd "vol" [ v "s"; v "i" ]; wr "img2" [ v "i"; v "s" ] ] ]
  in
  let composite =
    nest k
      [ ("s", c 0, c (slices - 1)); ("i", c 0, c (width - 1)) ]
      [
        stmt k ~cycles:2_100_000
          [
            rd "img1" [ v "s"; v "i" ];
            rd "img2" [ v "i"; v "s" ];
            wr "frame" [ v "s"; v "i" ];
          ];
      ]
  in
  let program = Dp_ir.Ir.program arrays [ slice_pass; ray_pass; composite ] in
  {
    App.name = "Visuo";
    description = "3D Visualization";
    program;
    striping = App.striping_of_rows ~row_pages:width ~rows_per_stripe:1 ();
    overrides = App.staggered_overrides ~rows_per_stripe:2 program;
    paper_data_gb = 95.5;
    paper_requests = 86_309;
    paper_base_energy_j = 26_711.4;
    paper_io_time_ms = 369_649.5;
  }
