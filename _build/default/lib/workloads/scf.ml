(** SCF 3.0 — quantum chemistry self-consistent field (Table 2:
    106.1 GB, 119,862 requests).

    Two SCF iterations, each making two passes over the disk-resident
    two-electron integral file [ints]: a Fock-build pass that streams the
    integrals row-wise, accumulating four integral pages into one update
    of the row's entry in the column vector [fock] (an in-row reduction
    chain), and an exchange pass that re-reads the integrals in the
    transposed order, accumulating four rows at a time into [exch].  The
    second SCF iteration's build pass reads the previous [fock],
    serializing the two iterations — the self-consistency loop that gives
    SCF its revisit structure. *)

let g = 156
let h = 152
let iterations = 2

let app () =
  let k = App.counter () in
  let open App in
  let arrays =
    [
      Dp_ir.Ir.array_decl ~elem_size:page_bytes "ints" [ g; h ];
      Dp_ir.Ir.array_decl ~elem_size:page_bytes "fock" [ g; 1 ];
      Dp_ir.Ir.array_decl ~elem_size:page_bytes "exch" [ h; 1 ];
    ]
  in
  let scale4 = Dp_affine.Affine.scale 4 in
  let build_pass it =
    let extra =
      (* From the second iteration on, the build consumes the previous
         Fock vector: flow dependence across SCF iterations. *)
      if it = 0 then [] else [ rd "fock" [ v "gi"; c 0 ] ]
    in
    nest k
      [ ("gi", c 0, c (g - 1)); ("hb", c 0, c ((h / 4) - 1)) ]
      [
        stmt k ~cycles:4_200_000
          ([
             rd "ints" [ v "gi"; scale4 (v "hb") ];
             rd "ints" [ v "gi"; scale4 (v "hb") +! 1 ];
             rd "ints" [ v "gi"; scale4 (v "hb") +! 2 ];
             rd "ints" [ v "gi"; scale4 (v "hb") +! 3 ];
           ]
          @ extra
          @ [ wr "fock" [ v "gi"; c 0 ] ]);
      ]
  in
  let exchange_pass () =
    nest k
      [ ("hi", c 0, c (h - 1)); ("gb", c 0, c ((g / 4) - 1)) ]
      [
        stmt k ~cycles:4_200_000
          [
            rd "ints" [ scale4 (v "gb"); v "hi" ];
            rd "ints" [ scale4 (v "gb") +! 1; v "hi" ];
            rd "ints" [ scale4 (v "gb") +! 2; v "hi" ];
            rd "ints" [ scale4 (v "gb") +! 3; v "hi" ];
            wr "exch" [ v "hi"; c 0 ];
          ];
      ]
  in
  let nests =
    List.concat_map
      (fun it -> [ build_pass it; exchange_pass () ])
      (Dp_util.Listx.range 0 (iterations - 1))
  in
  let program = Dp_ir.Ir.program arrays nests in
  {
    App.name = "SCF 3.0";
    description = "Quantum Chemistry";
    program;
    striping = App.striping_of_rows ~row_pages:h ~rows_per_stripe:1 ();
    overrides = App.staggered_overrides program;
    paper_data_gb = 106.1;
    paper_requests = 119_862;
    paper_base_energy_j = 36_924.7;
    paper_io_time_ms = 424_118.7;
  }
