type tpm_config = { idle_threshold_s : float; proactive : bool }

type drpm_config = {
  window_size : int;
  downshift_idle_ms : float;
  tolerance : float;
  proactive : bool;
  min_rpm : int option;
}

type t = No_pm | Tpm of tpm_config | Drpm of drpm_config

let tpm ?(idle_threshold_s = Disk_model.ultrastar_36z15.Disk_model.tpm_breakeven_s)
    ?(proactive = false) () =
  Tpm { idle_threshold_s; proactive }

let drpm ?(window_size = 100) ?(downshift_idle_ms = 1_000.0) ?(tolerance = 1.15)
    ?(proactive = false) ?min_rpm () =
  Drpm { window_size; downshift_idle_ms; tolerance; proactive; min_rpm }

let default_tpm = tpm ()
let default_drpm = drpm ()

let name = function
  | No_pm -> "none"
  | Tpm _ -> "TPM"
  | Drpm _ -> "DRPM"
