lib/disksim/disk_model.mli: Format
