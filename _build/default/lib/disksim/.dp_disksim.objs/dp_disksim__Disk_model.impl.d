lib/disksim/disk_model.ml: Format List Printf
