lib/disksim/timeline.ml: Array Buffer Char Disk_model Float List Printf
