lib/disksim/timeline.mli: Disk_model
