lib/disksim/engine.ml: Array Disk_model Dp_trace Float Format List Policy Printf Timeline
