lib/disksim/policy.mli:
