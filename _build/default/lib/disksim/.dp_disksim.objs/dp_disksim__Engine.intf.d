lib/disksim/engine.mli: Disk_model Dp_trace Format Policy Timeline
