lib/disksim/policy.ml: Disk_model
