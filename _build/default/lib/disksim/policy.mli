(** Disk power-management policies (Section 4): none, traditional
    spin-down (TPM), and dynamic speed setting (DRPM). *)

type tpm_config = {
  idle_threshold_s : float;
      (** continuous idleness before spinning down; defaults to the
          disk's break-even time (Table 1: 15.2 s) *)
  proactive : bool;
      (** compiler-directed mode (Son et al., IPDPS'05 — the machinery
          the paper's restructured versions run on): the compiler knows
          the disk access schedule, so it spins a disk down at the start
          of an idle period it predicts to be long enough, and issues the
          spin-up early so the disk is back at full speed exactly when
          the next request arrives — no reactive spin-up stall. *)
}

type drpm_config = {
  window_size : int;  (** requests per response-time window (Table 1: 100) *)
  downshift_idle_ms : float;
      (** continuous idleness consumed per one-level speed decrease *)
  tolerance : float;
      (** upshift one level when a window's average response time exceeds
          [tolerance] x its full-speed service average *)
  proactive : bool;
      (** compiler-directed speed setting: with the schedule known, a
          gap's speed trajectory is planned so the disk drops straight to
          the deepest level whose round trip fits and is back at full
          speed exactly when the next request arrives — every request is
          then served at full speed. *)
  min_rpm : int option;
      (** floor below which the controller never drops; [Some 9000] with
          the Ultrastar's levels gives the two-speed architecture of
          Carrera et al. (ICS'03) that the paper cites as a DRPM
          alternative.  [None]: the drive's minimum. *)
}

type t = No_pm | Tpm of tpm_config | Drpm of drpm_config

val default_tpm : t
val default_drpm : t
val tpm : ?idle_threshold_s:float -> ?proactive:bool -> unit -> t
val drpm :
  ?window_size:int ->
  ?downshift_idle_ms:float ->
  ?tolerance:float ->
  ?proactive:bool ->
  ?min_rpm:int ->
  unit ->
  t
val name : t -> string
