lib/polyhedra/codegen.ml: Array Dp_affine Dp_ir Dp_util Format Iset Lincons List String
