lib/polyhedra/codegen.mli: Dp_affine Dp_ir Format Iset Lincons Union
