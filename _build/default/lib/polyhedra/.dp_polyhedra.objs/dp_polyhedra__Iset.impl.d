lib/polyhedra/iset.ml: Array Dp_affine Dp_ir Dp_util Format Lincons List Printf Set String
