lib/polyhedra/union.mli: Format Iset
