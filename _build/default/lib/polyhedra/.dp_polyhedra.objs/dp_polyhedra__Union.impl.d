lib/polyhedra/union.ml: Dp_util Format Iset Lincons List
