lib/polyhedra/lincons.ml: Dp_affine Format List
