lib/polyhedra/iset.mli: Dp_ir Format Lincons
