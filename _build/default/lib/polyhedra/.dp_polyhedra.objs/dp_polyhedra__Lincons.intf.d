lib/polyhedra/lincons.mli: Dp_affine Format
