module Ir = Dp_ir.Ir

(** Conjunctive integer sets over an ordered variable list — the
    omega-lite core.  A set denotes all integer assignments to [vars]
    satisfying every constraint.

    Projection is rational Fourier–Motzkin (strides mentioning the
    eliminated variable are dropped), which over-approximates the exact
    integer projection; hence {!definitely_empty} is sound when it
    answers [true], and {!enumerate} is exact because it re-checks the
    original constraints pointwise. *)

type t = private { vars : string list; cons : Lincons.t list }

val make : string list -> Lincons.t list -> t
(** @raise Invalid_argument if a constraint mentions a variable outside
    [vars] or [vars] has duplicates. *)

val universe : string list -> t
val constrain : t -> Lincons.t list -> t
val intersect : t -> t -> t
(** @raise Invalid_argument when the variable lists differ. *)

val rename_var : t -> string -> string -> t

val of_nest : Ir.nest -> t
(** Iteration domain of a nest: variables are the loop indices, outermost
    first; constraints are the loop bounds. *)

val contains : t -> int array -> bool
(** Membership of a point given in [vars] order. *)

val simplify : t -> t
(** Drop trivially true constraints and syntactic duplicates.
    Trivially false constraints collapse the set to a canonical empty. *)

val eliminate : string -> t -> t
(** Fourier–Motzkin projection of one variable (see module note). *)

val definitely_empty : t -> bool
(** Sound emptiness: [true] means the set is empty; [false] is unknown. *)

exception Unbounded of string
(** Raised by {!enumerate}/{!is_empty_exact} when a variable has no
    finite lower or upper bound. *)

val enumerate : t -> int array list
(** All points in lexicographic order of [vars].
    @raise Unbounded on unbounded sets. *)

val iter_points : t -> (int array -> unit) -> unit
(** Like {!enumerate} without materializing the list. *)

val is_empty_exact : t -> bool
(** Exact emptiness via bounded scanning (with {!definitely_empty} as a
    fast path). @raise Unbounded on unbounded sets. *)

val cardinal : t -> int
(** Number of points. @raise Unbounded on unbounded sets. *)

val pp : Format.formatter -> t -> unit
