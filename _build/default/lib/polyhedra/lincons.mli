(** Linear constraints over named integer variables: the atoms of the
    omega-lite integer sets. *)

type t =
  | Ge of Dp_affine.Affine.t  (** [e >= 0] *)
  | Eq of Dp_affine.Affine.t  (** [e = 0] *)
  | Stride of { expr : Dp_affine.Affine.t; modulus : int }
      (** [e = 0 (mod m)], with [m >= 1]; captures striping residues. *)

val ge : Dp_affine.Affine.t -> t
val le : Dp_affine.Affine.t -> Dp_affine.Affine.t -> t
(** [le a b] is [b - a >= 0]. *)

val eq : Dp_affine.Affine.t -> Dp_affine.Affine.t -> t
(** [eq a b] is [a - b = 0]. *)

val stride : Dp_affine.Affine.t -> int -> t
(** @raise Invalid_argument when the modulus is not positive. *)

val vars : t -> string list
val subst : string -> Dp_affine.Affine.t -> t -> t

val eval : (string -> int) -> t -> bool
(** Truth of the constraint under a full assignment. *)

val is_trivially_true : t -> bool
(** Constant constraints that always hold (e.g. [3 >= 0]). *)

val is_trivially_false : t -> bool

val negate : t -> t list
(** Disjuncts whose union is the complement: [not (e >= 0)] is
    [-e - 1 >= 0]; [not (e = 0)] is [e - 1 >= 0] or [-e - 1 >= 0];
    [not (e = 0 mod m)] is the [m - 1] residue classes [e - r = 0 mod m],
    [1 <= r < m]. *)

val pp : Format.formatter -> t -> unit
