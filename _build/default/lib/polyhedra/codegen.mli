module Ir = Dp_ir.Ir

(** Loop code generation from integer sets — the omega-lite equivalent of
    the Omega library's [codegen] utility the paper relies on (Fig. 3:
    "Omega_lib generates the loop nests that iterate over the data
    elements in Q_di").

    The generated code scans a set in lexicographic order of its
    variables.  Bounds may involve floor/ceil division (coefficient > 1)
    and loops may have a stride with a residue alignment; anything not
    expressible as a bound or stride becomes an explicit guard. *)

type bound = { expr : Dp_affine.Affine.t; div : int }
(** [expr / div], with ceiling semantics in lower bounds and floor
    semantics in upper bounds; [div >= 1]. *)

type code =
  | For of {
      var : string;
      lo : bound list;  (** max of these (never empty) *)
      hi : bound list;  (** min of these (never empty) *)
      step : int;
      align : Dp_affine.Affine.t option;
          (** when present: iterate only [var = align (mod step)] *)
      body : code list;
    }
  | Guard of Lincons.t list * code list
  | Exec of string  (** opaque statement payload label *)

val scan : Iset.t -> payload:string -> code list
(** Code scanning all points of the set.
    @raise Iset.Unbounded when some variable lacks a symbolic bound. *)

val scan_union : Union.t -> payload:string -> code list
(** One scan per disjunct, in order. *)

val pp : Format.formatter -> code list -> unit

val points_of_code : code list -> (string -> int) -> int array list
(** Interpreter for the generated code (used to validate codegen against
    {!Iset.enumerate}): runs the loops under an environment giving values
    to any free symbols, returning the scanned points in order.  Points
    are reported for each [Exec] reached, as the values of the enclosing
    loop variables, outermost first. *)
