type t = Iset.t list

let of_iset s = [ s ]
let empty = []

let prune = List.filter (fun s -> not (Iset.definitely_empty s))

let intersect_iset u s = prune (List.map (Iset.intersect s) u)
let union a b = a @ b

(* u - s  =  u /\ not s  =  union over constraints c of s of (u /\ not c),
   refined left-to-right so the disjuncts are pairwise disjoint:
   not (c1 /\ c2 /\ ...) = not c1  \/  (c1 /\ not c2)  \/  ... *)
let difference u (s : Iset.t) =
  let rec split kept = function
    | [] -> []
    | c :: rest ->
        let branches =
          List.map
            (fun neg -> List.map (fun d -> Iset.constrain d (neg :: kept)) u)
            (Lincons.negate c)
        in
        List.concat branches @ split (c :: kept) rest
  in
  prune (split [] s.Iset.cons)

let definitely_empty u = List.for_all Iset.definitely_empty u
let is_empty_exact u = List.for_all Iset.is_empty_exact u

let enumerate u =
  List.concat_map Iset.enumerate u
  |> List.sort_uniq (fun a b -> Dp_util.Ivec.compare_lex a b)

let cardinal u = List.length (enumerate u)
let contains u p = List.exists (fun s -> Iset.contains s p) u

let pp ppf u =
  match u with
  | [] -> Format.pp_print_string ppf "{}"
  | _ ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ union ")
        Iset.pp ppf u
