(** Finite unions of conjunctive sets, closed under the operations the
    restructurer needs (notably difference: the Fig.-3 algorithm's
    [Q := Q - Q_di] update). *)

type t = Iset.t list
(** Disjuncts over a common variable list. *)

val of_iset : Iset.t -> t
val empty : t

val intersect_iset : t -> Iset.t -> t
val union : t -> t -> t

val difference : t -> Iset.t -> t
(** [difference u s]: subtract one conjunctive set, distributing the
    complement of [s] ({!Lincons.negate} per constraint) over the
    disjuncts and dropping those that become definitely empty. *)

val definitely_empty : t -> bool
val is_empty_exact : t -> bool
(** @raise Iset.Unbounded on unbounded disjuncts. *)

val enumerate : t -> int array list
(** Points of the union, deduplicated, in lexicographic order.
    @raise Iset.Unbounded on unbounded disjuncts. *)

val cardinal : t -> int
val contains : t -> int array -> bool
val pp : Format.formatter -> t -> unit
