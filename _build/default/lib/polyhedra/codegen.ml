module Ir = Dp_ir.Ir
module Affine = Dp_affine.Affine
module Rat = Dp_util.Rat

type bound = { expr : Affine.t; div : int }

type code =
  | For of {
      var : string;
      lo : bound list;
      hi : bound list;
      step : int;
      align : Affine.t option;
      body : code list;
    }
  | Guard of Lincons.t list * code list
  | Exec of string

(* Split the constraints of projection [p] relevant to variable [vk]:
   symbolic lower/upper bounds, a unit-coefficient stride (if any), and
   residual guards. *)
let bounds_for p vk =
  let lowers = ref [] and uppers = ref [] and strides = ref [] and guards = ref [] in
  let handle_ineq e =
    let c = Affine.coeff e vk in
    if c > 0 then
      (* c*vk + r >= 0   =>   vk >= ceil(-r / c) *)
      lowers := { expr = Affine.neg (Affine.sub e (Affine.term c vk)); div = c } :: !lowers
    else if c < 0 then
      uppers := { expr = Affine.sub e (Affine.term c vk); div = -c } :: !uppers
  in
  List.iter
    (function
      | Lincons.Ge e -> if Affine.coeff e vk <> 0 then handle_ineq e
      | Lincons.Eq e ->
          if Affine.coeff e vk <> 0 then begin
            handle_ineq e;
            handle_ineq (Affine.neg e)
          end
      | Lincons.Stride { expr; modulus } ->
          let c = Affine.coeff expr vk in
          if c = 1 then strides := (expr, modulus) :: !strides
          else if c <> 0 then guards := Lincons.Stride { expr; modulus } :: !guards)
    p.Iset.cons;
  (!lowers, !uppers, !strides, !guards)

let projection_chain_of t =
  let vars = Array.of_list t.Iset.vars in
  let n = Array.length vars in
  let chain = Array.make (max n 1) (Iset.simplify t) in
  if n > 0 then begin
    chain.(n - 1) <- Iset.simplify t;
    for k = n - 2 downto 0 do
      chain.(k) <- Iset.eliminate vars.(k + 1) chain.(k + 1)
    done
  end;
  (vars, chain)

let scan t ~payload =
  let vars, chain = projection_chain_of t in
  let n = Array.length vars in
  if Iset.definitely_empty t then []
  else begin
    let rec level k =
      if k = n then [ Exec payload ]
      else begin
        let vk = vars.(k) in
        let lowers, uppers, strides, guards = bounds_for chain.(k) vk in
        if lowers = [] then raise (Iset.Unbounded vk);
        if uppers = [] then raise (Iset.Unbounded vk);
        let step, align, extra_guards =
          match strides with
          | [] -> (1, None, [])
          | (expr, modulus) :: rest ->
              (* vk + r = 0 (mod m)  =>  vk = -r (mod m).  One stride goes
                 in the loop header, any others become guards. *)
              let r = Affine.sub expr (Affine.var vk) in
              ( modulus,
                Some (Affine.neg r),
                List.map (fun (expr, modulus) -> Lincons.Stride { expr; modulus }) rest )
        in
        let body = level (k + 1) in
        let body =
          match guards @ extra_guards with [] -> body | gs -> [ Guard (gs, body) ]
        in
        [ For { var = vk; lo = lowers; hi = uppers; step; align; body } ]
      end
    in
    level 0
  end

let scan_union u ~payload = List.concat_map (fun s -> scan s ~payload) u

(* --- pretty-printing --- *)

let pp_bound ~ceil ppf b =
  if b.div = 1 then Affine.pp ppf b.expr
  else Format.fprintf ppf "%s(%a, %d)" (if ceil then "ceild" else "floord") Affine.pp b.expr b.div

let pp_bounds ~ceil ~combiner ppf = function
  | [ b ] -> pp_bound ~ceil ppf b
  | bs ->
      Format.fprintf ppf "%s(%a)" combiner
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           (pp_bound ~ceil))
        bs

let rec pp_item indent ppf item =
  let pad = String.make indent ' ' in
  match item with
  | For f ->
      Format.fprintf ppf "%sfor %s = %a .. %a" pad f.var
        (pp_bounds ~ceil:true ~combiner:"max")
        f.lo
        (pp_bounds ~ceil:false ~combiner:"min")
        f.hi;
      if f.step <> 1 then begin
        Format.fprintf ppf " step %d" f.step;
        match f.align with
        | Some a -> Format.fprintf ppf " (with %s = %a mod %d)" f.var Affine.pp a f.step
        | None -> ()
      end;
      Format.fprintf ppf "@,";
      List.iter (pp_item (indent + 2) ppf) f.body
  | Guard (cs, body) ->
      Format.fprintf ppf "%sif (%a)@," pad
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " && ")
           Lincons.pp)
        cs;
      List.iter (pp_item (indent + 2) ppf) body
  | Exec s -> Format.fprintf ppf "%s%s;@," pad s

let pp ppf items =
  Format.fprintf ppf "@[<v>";
  List.iter (pp_item 0 ppf) items;
  Format.fprintf ppf "@]"

(* --- reference interpreter --- *)

let points_of_code items env0 =
  let acc = ref [] in
  let rec run env stack items =
    List.iter
      (fun item ->
        match item with
        | Exec _ -> acc := Array.of_list (List.rev stack) :: !acc
        | Guard (cs, body) ->
            if List.for_all (Lincons.eval env) cs then run env stack body
        | For f ->
            let eval_bound ~ceil b =
              let v = Affine.eval env b.expr in
              if ceil then Rat.ceil (Rat.make v b.div) else Rat.floor (Rat.make v b.div)
            in
            let lo =
              List.fold_left (fun acc b -> max acc (eval_bound ~ceil:true b)) min_int f.lo
            in
            let hi =
              List.fold_left (fun acc b -> min acc (eval_bound ~ceil:false b)) max_int f.hi
            in
            let first =
              match f.align with
              | None -> lo
              | Some a ->
                  let r =
                    let m = f.step in
                    let av = Affine.eval env a in
                    ((av mod m) + m) mod m
                  in
                  let base = lo + (((r - lo) mod f.step + f.step) mod f.step) in
                  base
            in
            let v = ref first in
            while !v <= hi do
              let value = !v in
              let env' x = if x = f.var then value else env x in
              run env' (value :: stack) f.body;
              v := !v + f.step
            done)
      items
  in
  run env0 [] items;
  List.rev !acc
