module Affine = Dp_affine.Affine

type t =
  | Ge of Affine.t
  | Eq of Affine.t
  | Stride of { expr : Affine.t; modulus : int }

let ge e = Ge e
let le a b = Ge (Affine.sub b a)
let eq a b = Eq (Affine.sub a b)

let stride expr modulus =
  if modulus < 1 then invalid_arg "Lincons.stride: modulus must be positive";
  Stride { expr; modulus }

let vars = function Ge e | Eq e | Stride { expr = e; _ } -> Affine.vars e

let subst v repl = function
  | Ge e -> Ge (Affine.subst v repl e)
  | Eq e -> Eq (Affine.subst v repl e)
  | Stride { expr; modulus } -> Stride { expr = Affine.subst v repl expr; modulus }

let eval env = function
  | Ge e -> Affine.eval env e >= 0
  | Eq e -> Affine.eval env e = 0
  | Stride { expr; modulus } ->
      let v = Affine.eval env expr in
      ((v mod modulus) + modulus) mod modulus = 0

let is_trivially_true = function
  | Ge e -> Affine.is_const e && Affine.constant e >= 0
  | Eq e -> Affine.is_const e && Affine.constant e = 0
  | Stride { modulus = 1; _ } -> true
  | Stride { expr; modulus } ->
      Affine.is_const expr && Affine.constant expr mod modulus = 0

let is_trivially_false = function
  | Ge e -> Affine.is_const e && Affine.constant e < 0
  | Eq e -> Affine.is_const e && Affine.constant e <> 0
  | Stride { expr; modulus } ->
      Affine.is_const expr
      && ((Affine.constant expr mod modulus) + modulus) mod modulus <> 0

let negate = function
  | Ge e -> [ Ge Affine.(sub (const (-1)) e) ]
  | Eq e -> [ Ge (Affine.sub e (Affine.const 1)); Ge Affine.(sub (const (-1)) e) ]
  | Stride { expr; modulus } ->
      List.init (modulus - 1) (fun i ->
          Stride { expr = Affine.sub expr (Affine.const (i + 1)); modulus })

let pp ppf = function
  | Ge e -> Format.fprintf ppf "%a >= 0" Affine.pp e
  | Eq e -> Format.fprintf ppf "%a = 0" Affine.pp e
  | Stride { expr; modulus } -> Format.fprintf ppf "%a = 0 (mod %d)" Affine.pp expr modulus
