module Ir = Dp_ir.Ir
module Affine = Dp_affine.Affine
module Rat = Dp_util.Rat

type t = { vars : string list; cons : Lincons.t list }

let check_vars vars cons =
  let module S = Set.Make (String) in
  let vs = S.of_list vars in
  if S.cardinal vs <> List.length vars then invalid_arg "Iset.make: duplicate variables";
  List.iter
    (fun c ->
      List.iter
        (fun v ->
          if not (S.mem v vs) then
            invalid_arg (Printf.sprintf "Iset.make: constraint mentions unknown variable %s" v))
        (Lincons.vars c))
    cons

let make vars cons =
  check_vars vars cons;
  { vars; cons }

let universe vars = make vars []
let constrain t extra = make t.vars (t.cons @ extra)

let intersect a b =
  if a.vars <> b.vars then invalid_arg "Iset.intersect: variable lists differ";
  { a with cons = a.cons @ b.cons }

let rename_var t old_name new_name =
  if old_name = new_name then t
  else
    make
      (List.map (fun v -> if v = old_name then new_name else v) t.vars)
      (List.map (Lincons.subst old_name (Affine.var new_name)) t.cons)

let of_nest (n : Ir.nest) =
  let vars = Ir.nest_indices n in
  let cons =
    List.concat_map
      (fun (l : Ir.loop) ->
        [ Lincons.le l.lo (Affine.var l.index); Lincons.le (Affine.var l.index) l.hi ])
      n.loops
  in
  make vars cons

let env_of t point =
  let arr = Array.of_list t.vars in
  fun v ->
    let rec find i =
      if i >= Array.length arr then raise Not_found
      else if arr.(i) = v then point.(i)
      else find (i + 1)
    in
    find 0

let contains t point =
  if Array.length point <> List.length t.vars then
    invalid_arg "Iset.contains: wrong dimensionality";
  List.for_all (Lincons.eval (env_of t point)) t.cons

(* An obviously empty set over the same variables. *)
let empty_canon vars = { vars; cons = [ Lincons.Ge (Affine.const (-1)) ] }

let simplify t =
  if List.exists Lincons.is_trivially_false t.cons then empty_canon t.vars
  else
    {
      t with
      cons =
        Dp_util.Listx.uniq ( = )
          (List.filter (fun c -> not (Lincons.is_trivially_true c)) t.cons);
    }

(* --- Fourier-Motzkin projection --- *)

let eliminate v t =
  let cons = (simplify t).cons in
  (* Prefer substitution through a unit-coefficient equality: exact. *)
  let unit_eq =
    List.find_opt
      (function
        | Lincons.Eq e -> abs (Affine.coeff e v) = 1
        | Lincons.Ge _ | Lincons.Stride _ -> false)
      cons
  in
  match unit_eq with
  | Some (Lincons.Eq e) ->
      let c = Affine.coeff e v in
      (* c*v + r = 0  =>  v = -r/c with c = +-1. *)
      let r = Affine.sub e (Affine.term c v) in
      let repl = Affine.scale (-c) r in
      let cons' =
        List.filter_map
          (fun cstr ->
            if cstr = Lincons.Eq e then None else Some (Lincons.subst v repl cstr))
          cons
      in
      simplify { vars = List.filter (fun x -> x <> v) t.vars; cons = cons' }
  | _ ->
      (* Turn equalities mentioning v into inequality pairs; drop strides
         mentioning v (over-approximation). *)
      let lowers = ref [] and uppers = ref [] and rest = ref [] in
      let add_ineq e =
        let c = Affine.coeff e v in
        if c > 0 then lowers := (c, Affine.sub e (Affine.term c v)) :: !lowers
        else if c < 0 then uppers := (-c, Affine.sub e (Affine.term c v)) :: !uppers
        else rest := Lincons.Ge e :: !rest
      in
      List.iter
        (function
          | Lincons.Ge e -> add_ineq e
          | Lincons.Eq e ->
              if Affine.coeff e v = 0 then rest := Lincons.Eq e :: !rest
              else begin
                add_ineq e;
                add_ineq (Affine.neg e)
              end
          | Lincons.Stride s ->
              if Affine.coeff s.expr v = 0 then rest := Lincons.Stride s :: !rest)
        cons;
      (* lower: c1*v + r1 >= 0  (v >= -r1/c1); upper: -c2*v + r2' ... stored
         as (c2, r2) meaning c2*v <= r2.  Pair: c2*r1 + c1*r2 >= 0. *)
      let pairs =
        List.concat_map
          (fun (c1, r1) ->
            List.map
              (fun (c2, r2) -> Lincons.Ge (Affine.add (Affine.scale c2 r1) (Affine.scale c1 r2)))
              !uppers)
          !lowers
      in
      simplify { vars = List.filter (fun x -> x <> v) t.vars; cons = pairs @ !rest }

let definitely_empty t =
  let projected = List.fold_left (fun acc v -> eliminate v acc) t t.vars in
  List.exists Lincons.is_trivially_false projected.cons

(* --- Bounded scanning --- *)

exception Unbounded of string

(* Projection chain: chain.(k) constrains variables vars_0..vars_k only
   (inner variables eliminated). *)
let projection_chain t =
  let vars = Array.of_list t.vars in
  let n = Array.length vars in
  let chain = Array.make (max n 1) t in
  if n > 0 then begin
    chain.(n - 1) <- simplify t;
    for k = n - 2 downto 0 do
      chain.(k) <- eliminate vars.(k + 1) chain.(k + 1)
    done
  end;
  chain

(* Integer bounds of variable [vk] in projection [p], with outer values
   fixed by [value.(0..k-1)]. *)
let level_bounds vars value p k =
  let vk = vars.(k) in
  let env v =
    let rec find i =
      if i >= k then None else if vars.(i) = v then Some value.(i) else find (i + 1)
    in
    find 0
  in
  let lo = ref None and hi = ref None in
  let tighten_lo b = match !lo with None -> lo := Some b | Some c -> if b > c then lo := Some b in
  let tighten_hi b = match !hi with None -> hi := Some b | Some c -> if b < c then hi := Some b in
  let handle_ineq e =
    let c = Affine.coeff e vk in
    if c <> 0 then begin
      let r = Affine.eval_opt env (Affine.sub e (Affine.term c vk)) in
      if Affine.is_const r then begin
        let rv = Affine.constant r in
        (* c*vk + rv >= 0 *)
        if c > 0 then tighten_lo (Rat.ceil (Rat.make (-rv) c))
        else tighten_hi (Rat.floor (Rat.make rv (-c)))
      end
    end
  in
  List.iter
    (function
      | Lincons.Ge e -> handle_ineq e
      | Lincons.Eq e ->
          handle_ineq e;
          handle_ineq (Affine.neg e)
      | Lincons.Stride _ -> ())
    p.cons;
  match (!lo, !hi) with
  | Some l, Some h -> (l, h)
  | None, _ | _, None -> raise (Unbounded vk)

let iter_points t f =
  let t = simplify t in
  if List.exists Lincons.is_trivially_false t.cons then ()
  else begin
    let vars = Array.of_list t.vars in
    let n = Array.length vars in
    if n = 0 then begin
      if t.cons = [] then f [||]
    end
    else begin
      let chain = projection_chain t in
      (* A projection that simplified to the canonical empty set proves
         the whole set empty (projections only relax constraints). *)
      let chain_empty =
        Array.exists
          (fun p -> List.exists Lincons.is_trivially_false p.cons)
          chain
      in
      if chain_empty then ()
      else begin
      let value = Array.make n 0 in
      let env_full v =
        let rec find i =
          if i >= n then raise Not_found
          else if vars.(i) = v then value.(i)
          else find (i + 1)
        in
        find 0
      in
      let rec go k =
        if k = n then begin
          if List.for_all (Lincons.eval env_full) t.cons then f (Array.copy value)
        end
        else begin
          let lo, hi = level_bounds vars value chain.(k) k in
          for v = lo to hi do
            value.(k) <- v;
            (* Prune with the projection's own constraints (cheap, and
               makes the scan proportional to the set's real extent). *)
            let env v' =
              let rec find i =
                if i > k then raise Not_found
                else if vars.(i) = v' then value.(i)
                else find (i + 1)
              in
              find 0
            in
            let feasible =
              List.for_all
                (fun c ->
                  match Lincons.eval env c with
                  | ok -> ok
                  | exception Not_found -> true)
                chain.(k).cons
            in
            if feasible then go (k + 1)
          done
        end
      in
      go 0
      end
    end
  end

let enumerate t =
  let acc = ref [] in
  iter_points t (fun p -> acc := p :: !acc);
  List.rev !acc

let is_empty_exact t =
  if definitely_empty t then true
  else begin
    let found = ref false in
    (try iter_points t (fun _ -> found := true; raise Exit) with Exit -> ());
    not !found
  end

let cardinal t =
  let c = ref 0 in
  iter_points t (fun _ -> incr c);
  !c

let pp ppf t =
  Format.fprintf ppf "{ [%s] : %a }"
    (String.concat ", " t.vars)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " and ")
       Lincons.pp)
    t.cons
