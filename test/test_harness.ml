(* End-to-end harness tests: the version matrix on a compact synthetic
   application, plus a full-suite ordering check (slow). *)

module App = Dp_workloads.App
module Version = Dp_harness.Version
module Runner = Dp_harness.Runner
module Experiments = Dp_harness.Experiments
module Tabulate = Dp_harness.Tabulate
module Ir = Dp_ir.Ir
module A = Dp_affine.Affine

let check = Alcotest.check
let c = A.const

(* A compact app (a few thousand requests) exercising every version
   quickly: a ping-pong stencil like AST, scaled down. *)
let mini_app () =
  let k = App.counter () in
  let open App in
  let rows = 24 and cols = 23 and steps = 4 in
  let arrays =
    [
      Ir.array_decl ~elem_size:page_bytes "a" [ rows; cols ];
      Ir.array_decl ~elem_size:page_bytes "b" [ rows; cols ];
    ]
  in
  let sweep step =
    let src, dst = if step mod 2 = 0 then ("a", "b") else ("b", "a") in
    nest k
      [ ("i", c 0, c (rows - 2)); ("j", c 0, c (cols - 1)) ]
      [
        stmt k ~cycles:2_000_000
          [ rd src [ v "i"; v "j" ]; rd src [ v "i" +! 1; v "j" ]; wr dst [ v "i"; v "j" ] ];
      ]
  in
  let program = Ir.program arrays (List.init steps sweep) in
  {
    App.name = "mini";
    description = "scaled stencil for tests";
    program;
    striping = App.striping_of_rows ~row_pages:cols ~rows_per_stripe:1 ();
    overrides = App.staggered_overrides program;
    paper_data_gb = 0.0;
    paper_requests = 0;
    paper_base_energy_j = 0.0;
    paper_io_time_ms = 0.0;
  }

let test_version_names () =
  List.iter
    (fun v ->
      check Alcotest.bool (Version.name v) true (Version.of_name (Version.name v) = Some v))
    (Version.multi_cpu @ Version.oracle);
  check Alcotest.int "five single-CPU versions" 5 (List.length Version.single_cpu);
  check Alcotest.int "seven versions" 7 (List.length Version.multi_cpu);
  check Alcotest.int "two oracle rows" 2 (List.length Version.oracle);
  check Alcotest.bool "base not restructured" false (Version.restructured Version.Base);
  check Alcotest.bool "-m layout aware" true (Version.layout_aware Version.T_drpm_m);
  (* The oracle rows are bounds, not policies: not restructured, tagged
     with their transition space. *)
  List.iter
    (fun v ->
      check Alcotest.bool "oracle not restructured" false (Version.restructured v);
      check Alcotest.bool "oracle space set" true (Version.oracle_space v <> None))
    Version.oracle;
  check Alcotest.bool "paper versions carry no space" true
    (List.for_all (fun v -> Version.oracle_space v = None) Version.multi_cpu)

let test_single_cpu_matrix () =
  let ctx = Runner.context (mini_app ()) in
  let base = Runner.run ctx ~procs:1 Version.Base in
  check (Alcotest.float 1e-9) "base normalizes to 1" 1.0
    (Runner.normalized_energy ~base base);
  check (Alcotest.float 1e-9) "base degradation 0" 0.0 (Runner.perf_degradation ~base base);
  List.iter
    (fun v ->
      let r = Runner.run ctx ~procs:1 v in
      let e = Runner.normalized_energy ~base r in
      check Alcotest.bool
        (Printf.sprintf "%s energy sane (%.3f)" (Version.name v) e)
        true
        (e > 0.2 && e < 1.5);
      if Version.restructured v then
        check Alcotest.bool "restructured reports rounds" true (r.Runner.scheduler_rounds <> None))
    Version.single_cpu

let test_multi_cpu_matrix () =
  let ctx = Runner.context (mini_app ()) in
  let base = Runner.run ctx ~procs:4 Version.Base in
  List.iter
    (fun v ->
      let r = Runner.run ctx ~procs:4 v in
      check Alcotest.bool
        (Printf.sprintf "%s runs at 4 procs" (Version.name v))
        true
        (Runner.normalized_energy ~base r > 0.2))
    Version.multi_cpu;
  (* Layout-aware requires several processors. *)
  match Runner.run ctx ~procs:1 Version.T_tpm_m with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "T-*-m at 1 proc must be rejected"

let test_matrix_and_renderers () =
  let apps = [ mini_app () ] in
  let matrix =
    Experiments.build_matrix ~apps ~procs:1
      ~versions:[ Version.Base; Version.Tpm; Version.T_drpm_s ]
      ()
  in
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Experiments.table1 ppf;
  Experiments.table2 ~matrix ppf;
  Experiments.fig_energy matrix ppf;
  Experiments.fig_perf matrix ppf;
  Format.pp_print_flush ppf ();
  let out = Buffer.contents buf in
  List.iter
    (fun frag ->
      check Alcotest.bool (Printf.sprintf "report mentions %S" frag) true
        (let n = String.length out and m = String.length frag in
         let rec go i = i + m <= n && (String.sub out i m = frag || go (i + 1)) in
         m = 0 || go 0))
    [ "Ultrastar"; "Table 2"; "Figure 9(a)"; "Figure 10(a)"; "T-DRPM-s"; "mini" ];
  let saving = Experiments.average_energy_saving matrix Version.T_drpm_s in
  check Alcotest.bool "saving computed" true (saving > -0.5 && saving < 1.0)

let test_oracle_rows () =
  (* The Oracle-* rows floor their reactive counterparts on the same
     (unmodified-code) trace, and still beat the analytic standby floor. *)
  let ctx = Runner.context (mini_app ()) in
  let base = Runner.run ctx ~procs:1 Version.Base in
  let energy v = (Runner.run ctx ~procs:1 v).Runner.result.Dp_disksim.Engine.energy_j in
  let o_tpm = energy Version.Oracle_tpm and o_drpm = energy Version.Oracle_drpm in
  check Alcotest.bool "Oracle-TPM <= TPM" true (o_tpm <= energy Version.Tpm +. 1e-6);
  check Alcotest.bool "Oracle-TPM <= Base" true
    (o_tpm <= base.Runner.result.Dp_disksim.Engine.energy_j +. 1e-6);
  check Alcotest.bool "Oracle-DRPM <= DRPM" true (o_drpm <= energy Version.Drpm +. 1e-6);
  let floor = Dp_oracle.Oracle.standby_floor_j base.Runner.result in
  check Alcotest.bool "bounds above the standby floor" true
    (floor <= o_tpm && floor <= o_drpm);
  (* Oracle rows slot into the matrix renderers like any other version. *)
  let matrix =
    Experiments.build_matrix ~apps:[ mini_app () ] ~procs:1
      ~versions:([ Version.Base; Version.Tpm; Version.Drpm ] @ Version.oracle)
      ()
  in
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Experiments.fig_energy matrix ppf;
  Format.pp_print_flush ppf ();
  let out = Buffer.contents buf in
  List.iter
    (fun frag ->
      check Alcotest.bool (Printf.sprintf "figure mentions %S" frag) true
        (let n = String.length out and m = String.length frag in
         let rec go i = i + m <= n && (String.sub out i m = frag || go (i + 1)) in
         m = 0 || go 0))
    [ "Oracle-TPM"; "Oracle-DRPM" ]

let test_tabulate () =
  let buf = Buffer.create 64 in
  let ppf = Format.formatter_of_buffer buf in
  Tabulate.render ppf ~header:[ "a"; "bb" ] ~rows:[ [ "1"; "x" ]; [ "22"; "yyy" ] ];
  Format.pp_print_flush ppf ();
  check Alcotest.bool "nonempty" true (String.length (Buffer.contents buf) > 10);
  check Alcotest.string "pct" "18.34%" (Tabulate.fmt_pct 0.18335);
  check Alcotest.string "norm" "0.817" (Tabulate.fmt_norm 0.8166)

(* The headline reproduction claim, on the real suite (slow): on one
   processor, restructuring amplifies both policies and T-DRPM-s wins. *)
let test_headline_orderings () =
  let matrix =
    Experiments.build_matrix ~procs:1
      ~versions:[ Version.Base; Version.Tpm; Version.Drpm; Version.T_tpm_s; Version.T_drpm_s ]
      ()
  in
  let saving = Experiments.average_energy_saving matrix in
  let tpm = saving Version.Tpm
  and drpm = saving Version.Drpm
  and t_tpm = saving Version.T_tpm_s
  and t_drpm = saving Version.T_drpm_s in
  check Alcotest.bool (Printf.sprintf "TPM alone saves nothing (%.3f)" tpm) true
    (abs_float tpm < 0.02);
  check Alcotest.bool (Printf.sprintf "DRPM saves (%.3f)" drpm) true (drpm > 0.02);
  check Alcotest.bool (Printf.sprintf "T-TPM-s beats TPM (%.3f)" t_tpm) true (t_tpm > tpm +. 0.05);
  check Alcotest.bool
    (Printf.sprintf "T-DRPM-s best (%.3f > %.3f, %.3f)" t_drpm drpm t_tpm)
    true
    (t_drpm > drpm && t_drpm >= t_tpm -. 0.01);
  (* Performance stays bounded, as in Fig. 10(a). *)
  let deg = Experiments.average_perf_degradation matrix in
  List.iter
    (fun v ->
      check Alcotest.bool
        (Printf.sprintf "%s perf within 15%%" (Version.name v))
        true
        (abs_float (deg v) < 0.15))
    [ Version.Tpm; Version.Drpm; Version.T_tpm_s; Version.T_drpm_s ]

(* --- fault injection through the harness --- *)

module Fault_model = Dp_faults.Fault_model

let mentions out frags =
  List.iter
    (fun frag ->
      check Alcotest.bool (Printf.sprintf "output mentions %S" frag) true
        (let n = String.length out and m = String.length frag in
         let rec go i = i + m <= n && (String.sub out i m = frag || go (i + 1)) in
         m = 0 || go 0))
    frags

let test_rate_zero_matrix_unchanged () =
  (* A rate-0 injector must leave every row — including the Oracle
     bounds — bit-identical to the fault-free matrix. *)
  let apps = [ mini_app () ] in
  let versions = [ Version.Base; Version.Tpm; Version.T_drpm_s ] @ Version.oracle in
  let clean = Experiments.build_matrix ~apps ~procs:1 ~versions () in
  let faults = Fault_model.make ~seed:42 ~rate:0.0 () in
  let armed = Experiments.build_matrix ~apps ~procs:1 ~faults ~versions () in
  List.iter2
    (fun (_, clean_runs) (_, armed_runs) ->
      List.iter2
        (fun (v, (a : Runner.run)) (_, (b : Runner.run)) ->
          check (Alcotest.float 0.0)
            (Printf.sprintf "%s energy identical" (Version.name v))
            a.Runner.result.Dp_disksim.Engine.energy_j
            b.Runner.result.Dp_disksim.Engine.energy_j;
          check (Alcotest.float 0.0)
            (Printf.sprintf "%s makespan identical" (Version.name v))
            a.Runner.result.Dp_disksim.Engine.makespan_ms
            b.Runner.result.Dp_disksim.Engine.makespan_ms)
        clean_runs armed_runs)
    clean armed

let test_reliability_aggregate () =
  let ctx = Runner.context (mini_app ()) in
  let faults = Fault_model.make ~seed:11 ~rate:0.2 () in
  let r = Runner.run ctx ~faults ~procs:1 Version.Tpm in
  let rel = Runner.reliability r in
  check Alcotest.bool "wear in [0,1]" true
    (rel.Runner.wear >= 0.0 && rel.Runner.wear <= 1.0);
  check Alcotest.bool "some recovery effort at rate 0.2" true
    (rel.Runner.spin_up_retries + rel.Runner.media_retries + rel.Runner.latency_spikes > 0);
  check Alcotest.bool "degraded time non-negative" true (rel.Runner.degraded_ms >= 0.0);
  (* Fault-free runs have a clean reliability block. *)
  let clean = Runner.reliability (Runner.run ctx ~procs:1 Version.Tpm) in
  check Alcotest.int "no retries without faults" 0
    (clean.Runner.spin_up_retries + clean.Runner.media_retries + clean.Runner.latency_spikes);
  check (Alcotest.float 0.0) "no degraded time without faults" 0.0 clean.Runner.degraded_ms

let test_fault_sweep_deterministic () =
  let app = mini_app () in
  let versions = [ Version.Base; Version.Tpm ] in
  let sweep () =
    Experiments.fault_sweep ~seed:9 ~rates:[ 0.0; 0.05 ] ~procs:1 ~versions app
  in
  let a = sweep () and b = sweep () in
  let energies (s : Experiments.sweep) =
    List.map
      (fun (p : Experiments.sweep_point) ->
        ( p.Experiments.rate,
          List.map
            (fun (_, (r : Runner.run)) -> r.Runner.result.Dp_disksim.Engine.energy_j)
            p.Experiments.runs ))
      s.Experiments.points
  in
  check Alcotest.bool "same seed, same sweep" true (energies a = energies b);
  (* The rate-0 point of the sweep equals the fault-free run. *)
  let ctx = Runner.context app in
  let clean = Runner.run ctx ~procs:1 Version.Tpm in
  match a.Experiments.points with
  | p0 :: _ ->
      check (Alcotest.float 0.0) "rate-0 point is the clean run"
        clean.Runner.result.Dp_disksim.Engine.energy_j
        (List.assoc Version.Tpm p0.Experiments.runs).Runner.result
          .Dp_disksim.Engine.energy_j
  | [] -> Alcotest.fail "sweep has no points"

let test_fault_renderers () =
  let apps = [ mini_app () ] in
  let faults = Fault_model.make ~seed:3 ~rate:0.1 () in
  let matrix =
    Experiments.build_matrix ~apps ~procs:1 ~faults
      ~versions:[ Version.Base; Version.Tpm ] ()
  in
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Experiments.fig_reliability ~faults matrix ppf;
  Format.pp_print_flush ppf ();
  mentions (Buffer.contents buf) [ "Wear"; "Degraded"; "mini"; "faults seed 3" ];
  let sweep =
    Experiments.fault_sweep ~seed:3 ~rates:[ 0.0; 0.1 ] ~procs:1
      ~versions:[ Version.Base; Version.Tpm ] (mini_app ())
  in
  Buffer.clear buf;
  let ppf = Format.formatter_of_buffer buf in
  Experiments.fig_sweep sweep ppf;
  Format.pp_print_flush ppf ();
  mentions (Buffer.contents buf) [ "Rate"; "mini" ];
  (* And the sweep serializes. *)
  let json = Dp_harness.Json_out.to_string (Dp_harness.Json_out.of_sweep sweep) in
  mentions json [ "\"rate\""; "\"reliability\""; "degraded_ms"; "mini" ]

let test_json_out () =
  let module J = Dp_harness.Json_out in
  check Alcotest.string "escaping" "{\"a\\\"b\": \"x\\ny\"}"
    (J.to_string (J.Obj [ ("a\"b", J.String "x\ny") ]));
  check Alcotest.string "nan becomes null" "null" (J.to_string (J.Float Float.nan));
  check Alcotest.string "list" "[1, true, null]"
    (J.to_string (J.List [ J.Int 1; J.Bool true; J.Null ]));
  (* Matrix serialization is structurally complete. *)
  let matrix =
    Experiments.build_matrix ~apps:[ mini_app () ] ~procs:1
      ~versions:[ Version.Base; Version.Drpm ] ()
  in
  let json = J.to_string (J.of_matrix matrix) in
  List.iter
    (fun frag ->
      check Alcotest.bool (Printf.sprintf "json mentions %S" frag) true
        (let n = String.length json and m = String.length frag in
         let rec go i = i + m <= n && (String.sub json i m = frag || go (i + 1)) in
         m = 0 || go 0))
    [ "\"app\""; "\"mini\""; "normalized_energy"; "DRPM"; "io_time_ms" ]

(* A tiny JSON reader — just enough grammar for Json_out's own output,
   so the serializer can be checked by parsing what it prints. *)
let parse_json s =
  let module J = Dp_harness.Json_out in
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = Alcotest.fail (Printf.sprintf "json parse: %s at %d" msg !pos) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos else fail (Printf.sprintf "expected %c" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail lit
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' ->
          incr pos;
          Buffer.contents b
      | '\\' ->
          incr pos;
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
              Buffer.add_char b (Char.chr (int_of_string ("0x" ^ String.sub s (!pos + 1) 4)));
              pos := !pos + 4
          | c -> fail (Printf.sprintf "escape \\%c" c));
          incr pos;
          go ()
      | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ()
  in
  let number () =
    let start = !pos in
    while
      !pos < n
      && match s.[!pos] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    do
      incr pos
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> J.Int i
    | None -> J.Float (float_of_string tok)
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          J.Obj []
        end
        else
          let rec fields acc =
            skip_ws ();
            let k = string_lit () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                fields ((k, v) :: acc)
            | Some '}' ->
                incr pos;
                J.Obj (List.rev ((k, v) :: acc))
            | _ -> fail "object"
          in
          fields []
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          J.List []
        end
        else
          let rec elems acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                elems (v :: acc)
            | Some ']' ->
                incr pos;
                J.List (List.rev (v :: acc))
            | _ -> fail "array"
          in
          elems []
    | Some '"' -> J.String (string_lit ())
    | Some 'n' -> literal "null" J.Null
    | Some 't' -> literal "true" (J.Bool true)
    | Some 'f' -> literal "false" (J.Bool false)
    | Some _ -> number ()
    | None -> fail "eof"
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing input";
  v

let test_json_escaping_roundtrip () =
  let module J = Dp_harness.Json_out in
  let tricky =
    J.Obj
      [
        ("we\"ird\nkey", J.String "tab\there, quote\", slash\\, bell\007");
        ("nan", J.Float Float.nan);
        ("inf", J.Float Float.infinity);
        ("empty", J.List []);
      ]
  in
  match parse_json (J.to_string tricky) with
  | J.Obj [ (k, J.String v); ("nan", J.Null); ("inf", J.Null); ("empty", J.List []) ] ->
      check Alcotest.string "key unescaped" "we\"ird\nkey" k;
      check Alcotest.string "value unescaped" "tab\there, quote\", slash\\, bell\007" v
  | _ -> Alcotest.fail "tricky object did not round-trip"

let test_json_obs_roundtrip () =
  let module J = Dp_harness.Json_out in
  let matrix =
    Experiments.build_matrix ~apps:[ mini_app () ] ~procs:1 ~obs:true
      ~versions:[ Version.Base; Version.Tpm ] ()
  in
  let json = J.to_string (J.of_matrix matrix) in
  let parsed = parse_json json in
  (* The printer is stable over its own parse: nothing is lost. *)
  check Alcotest.string "print/parse/print fixed point" json (J.to_string parsed);
  let field k = function
    | J.Obj fields -> (
        match List.assoc_opt k fields with
        | Some v -> v
        | None -> Alcotest.fail (Printf.sprintf "missing field %S" k))
    | _ -> Alcotest.fail (Printf.sprintf "expected object around %S" k)
  in
  let runs =
    match parsed with
    | J.List (app :: _) -> ( match field "runs" app with J.List rs -> rs | _ -> [])
    | _ -> Alcotest.fail "expected app list"
  in
  check Alcotest.int "both runs serialized" 2 (List.length runs);
  (* Parsed obs blocks agree with the in-memory reports. *)
  let in_memory =
    match matrix with
    | [ (_, runs) ] -> List.map (fun (_, (r : Runner.run)) -> Option.get r.Runner.obs) runs
    | _ -> Alcotest.fail "one-app matrix expected"
  in
  List.iter2
    (fun run reports ->
      match field "obs" run with
      | J.List parsed_reports ->
          check Alcotest.int "one entry per disk" (Array.length reports)
            (List.length parsed_reports);
          List.iteri
            (fun d rep ->
              check Alcotest.bool "disk index" true (field "disk" rep = J.Int d);
              check Alcotest.bool "request count survives" true
                (field "requests" rep = J.Int reports.(d).Dp_obs.Report.requests);
              match field "idle_gaps" rep with
              | J.Obj _ as h ->
                  let counts =
                    match field "counts" h with
                    | J.List cs ->
                        List.fold_left
                          (fun acc c -> match c with J.Int i -> acc + i | _ -> acc)
                          0 cs
                    | _ -> -1
                  in
                  check Alcotest.bool "histogram counts sum to n" true
                    (field "count" h = J.Int counts)
              | _ -> Alcotest.fail "idle_gaps histogram missing")
            parsed_reports
      | _ -> Alcotest.fail "run lacks an obs block")
    runs in_memory;
  (* Without obs the field is absent, keeping old consumers untouched. *)
  let plain =
    Experiments.build_matrix ~apps:[ mini_app () ] ~procs:1 ~versions:[ Version.Base ] ()
  in
  match parse_json (J.to_string (J.of_matrix plain)) with
  | J.List [ app ] -> (
      match field "runs" app with
      | J.List [ J.Obj fields ] ->
          check Alcotest.bool "no obs field by default" true
            (List.assoc_opt "obs" fields = None)
      | _ -> Alcotest.fail "expected one run")
  | _ -> Alcotest.fail "expected one app"

let suites =
  [
    ( "harness",
      [
        Alcotest.test_case "version names" `Quick test_version_names;
        Alcotest.test_case "single-CPU matrix" `Quick test_single_cpu_matrix;
        Alcotest.test_case "multi-CPU matrix" `Quick test_multi_cpu_matrix;
        Alcotest.test_case "renderers" `Quick test_matrix_and_renderers;
        Alcotest.test_case "oracle rows" `Quick test_oracle_rows;
        Alcotest.test_case "tabulate" `Quick test_tabulate;
        Alcotest.test_case "json output" `Quick test_json_out;
        Alcotest.test_case "json escaping round-trip" `Quick test_json_escaping_roundtrip;
        Alcotest.test_case "json obs round-trip" `Quick test_json_obs_roundtrip;
        Alcotest.test_case "rate-0 matrix unchanged" `Quick test_rate_zero_matrix_unchanged;
        Alcotest.test_case "reliability aggregate" `Quick test_reliability_aggregate;
        Alcotest.test_case "fault sweep deterministic" `Quick test_fault_sweep_deterministic;
        Alcotest.test_case "fault renderers" `Quick test_fault_renderers;
        Alcotest.test_case "headline orderings" `Slow test_headline_orderings;
      ] );
  ]
