(* Tests for the served-array subsystem: the multiplexer's ordering
   guarantees (QCheck), per-tenant energy attribution, the online
   policy's payoff, and jobs-independence of the report. *)

module Splitmix = Dp_util.Splitmix
module Request = Dp_trace.Request
module Oltp = Dp_serve.Oltp
module Tenant = Dp_serve.Tenant
module Mux = Dp_serve.Mux
module Account = Dp_serve.Account
module Serve = Dp_serve.Serve
module Json_out = Dp_harness.Json_out

let check = Alcotest.check

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* A cheap all-OLTP population built directly (no pipeline): the mux
   properties do not depend on what generated the streams, only on the
   normalized shape (strictly increasing arrivals, proc = 0). *)
let oltp_population ~seed ~tenants ~disks =
  let rng = Splitmix.create seed in
  List.init tenants (fun i ->
      let child = Splitmix.split rng in
      let params = Oltp.draw child in
      let stream = Oltp.generate child ~disks params in
      { Tenant.index = i; kind = Tenant.Oltp params; stream })

let mux_gen =
  QCheck2.Gen.(
    triple (int_range 1 8) (int_range 0 1_000_000)
      (oneof [ pure 0.0; float_range 1.0 60_000.0 ]))

let prop_mux_conserves_and_orders (tenants, seed, jitter_ms) =
  let pop = oltp_population ~seed ~tenants ~disks:4 in
  let merged = Mux.merge ~rng:(Splitmix.create (seed + 1)) ~jitter_ms pop in
  (* Total count conserved. *)
  let total = List.fold_left (fun n t -> n + List.length t.Tenant.stream) 0 pop in
  if List.length merged <> total then QCheck2.Test.fail_report "request count changed";
  (* Globally sorted by arrival. *)
  let rec sorted = function
    | a :: (b :: _ as rest) ->
        a.Request.arrival_ms <= b.Request.arrival_ms && sorted rest
    | _ -> true
  in
  if not (sorted merged) then QCheck2.Test.fail_report "merge not arrival-sorted";
  (* Per-tenant order preserved: the proc-i subsequence carries tenant
     i's addresses in the original order, with arrivals shifted by one
     constant offset. *)
  List.iter
    (fun (t : Tenant.t) ->
      let mine =
        List.filter (fun r -> r.Request.proc = t.Tenant.index) merged
      in
      let key (r : Request.t) = (r.Request.disk, r.Request.lba, r.Request.size) in
      if List.map key mine <> List.map key t.Tenant.stream then
        QCheck2.Test.fail_reportf "tenant %d reordered" t.Tenant.index;
      match (mine, t.Tenant.stream) with
      | first :: _, orig :: _ ->
          let offset = first.Request.arrival_ms -. orig.Request.arrival_ms in
          if offset < 0.0 || offset > jitter_ms then
            QCheck2.Test.fail_reportf "tenant %d offset %g outside [0, %g)"
              t.Tenant.index offset jitter_ms;
          List.iter2
            (fun (m : Request.t) (o : Request.t) ->
              if Float.abs (m.Request.arrival_ms -. (o.Request.arrival_ms +. offset)) > 1e-9
              then QCheck2.Test.fail_reportf "tenant %d spacing changed" t.Tenant.index)
            mine t.Tenant.stream
      | [], [] -> ()
      | _ -> QCheck2.Test.fail_report "per-tenant subsequence length changed")
    pop;
  true

let prop_mux_deterministic (tenants, seed, jitter_ms) =
  let once () =
    Mux.merge
      ~rng:(Splitmix.create (seed + 1))
      ~jitter_ms
      (oltp_population ~seed ~tenants ~disks:4)
  in
  once () = once ()

(* --- the report: jobs-independence, determinism, attribution --- *)

let report_string r = Json_out.to_string (Json_out.of_serve r)

let run_report ?(tenants = 5) ?(selection = Serve.All) ~jobs () =
  Serve.run (Serve.config ~disks:4 ~jobs ~selection ~tenants ~seed:42 ())

let test_report_jobs_identical () =
  let a = run_report ~jobs:1 () and b = run_report ~jobs:4 () in
  check Alcotest.string "jobs 1 = jobs 4" (report_string a) (report_string b)

let test_report_deterministic () =
  let a = run_report ~jobs:2 () and b = run_report ~jobs:2 () in
  check Alcotest.string "same seed, same report" (report_string a) (report_string b)

let test_report_rows () =
  let r = run_report ~jobs:1 () in
  check
    Alcotest.(list string)
    "row labels"
    [ "base"; "offline-tpm"; "offline-drpm"; "online"; "oracle" ]
    (List.map (fun (row : Serve.row) -> row.Serve.label) r.Serve.rows);
  check Alcotest.int "kinds cover every tenant" 5 (Array.length r.Serve.kinds);
  check Alcotest.string "every fourth tenant replays an app" "app:AST" r.Serve.kinds.(3)

let test_attribution_sums () =
  let r = run_report ~jobs:1 () in
  List.iter
    (fun (row : Serve.row) ->
      match row.Serve.summary with
      | None -> check Alcotest.string "only the bound lacks accounting" "oracle" row.Serve.label
      | Some s ->
          (* The summary total is the engine's total, rebuilt from the
             event stream span by span. *)
          check (Alcotest.float 1e-6)
            (row.Serve.label ^ ": accounted energy = engine energy")
            row.Serve.energy_j s.Account.energy_j;
          (* Every joule lands in a tenant pot or the unattributed pot. *)
          check (Alcotest.float 1e-6)
            (row.Serve.label ^ ": attribution sums to the total")
            s.Account.energy_j
            (s.Account.attributed_j +. s.Account.unattributed_j);
          let tenant_sum =
            Array.fold_left
              (fun acc (t : Account.tenant_stats) -> acc +. t.Account.energy_j)
              0.0 s.Account.tenants
          in
          check (Alcotest.float 1e-6)
            (row.Serve.label ^ ": tenant shares sum to attributed")
            s.Account.attributed_j tenant_sum;
          check Alcotest.bool
            (row.Serve.label ^ ": fairness in (0, 1]")
            true
            (s.Account.fairness > 0.0 && s.Account.fairness <= 1.0 +. 1e-9))
    r.Serve.rows

let test_online_saves_energy () =
  let r = run_report ~tenants:8 ~selection:Serve.Online ~jobs:1 () in
  let energy label =
    let row = List.find (fun (row : Serve.row) -> row.Serve.label = label) r.Serve.rows in
    row.Serve.energy_j
  in
  check Alcotest.bool "online adaptation beats no power management" true
    (energy "online" < energy "base")

(* --- the persistent-failure domain through the serve report --- *)

module Fault_model = Dp_faults.Fault_model

let decay_faults ~seed ~rate =
  Fault_model.make ~classes:[ Fault_model.Media_decay ] ~seed ~rate ()

let run_decay ?(rate = 0.3) ?repair ~jobs () =
  Serve.run
    (Serve.config ~disks:4 ~jobs ~selection:Serve.Online ~tenants:4 ~seed:42
       ~faults:(decay_faults ~seed:11 ~rate) ?repair ~deadline_ms:500.0 ())

let test_serve_decay_reports_slo () =
  let r = run_decay ~jobs:1 () in
  List.iter
    (fun (row : Serve.row) ->
      match row.Serve.summary with
      | None -> ()
      | Some s -> (
          match s.Account.slo with
          | None -> Alcotest.failf "%s: deadline armed but no SLO summary" row.Serve.label
          | Some slo ->
              check (Alcotest.float 1e-9)
                (row.Serve.label ^ ": deadline echoed")
                500.0 slo.Account.deadline_ms;
              check Alcotest.bool
                (row.Serve.label ^ ": availability in [0, 1]")
                true
                (slo.Account.availability >= 0.0 && slo.Account.availability <= 1.0);
              check Alcotest.bool
                (row.Serve.label ^ ": abandoned never exceeds violations")
                true
                (slo.Account.abandoned <= slo.Account.violations);
              (* Attribution still sums to the engine total under decay. *)
              check (Alcotest.float 1e-6)
                (row.Serve.label ^ ": attribution conserved under decay")
                s.Account.energy_j
                (s.Account.attributed_j +. s.Account.unattributed_j)))
    r.Serve.rows

let test_serve_decay_jobs_identical () =
  let a = run_decay ~jobs:1 () and b = run_decay ~jobs:4 () in
  check Alcotest.string "decay report jobs 1 = jobs 4" (report_string a) (report_string b)

let test_serve_decay_rate_zero_identity () =
  (* Rate-0 decay with scrub off leaves every row's figures exactly
     where the clean run put them. *)
  let clean =
    Serve.run (Serve.config ~disks:4 ~jobs:1 ~selection:Serve.Online ~tenants:4 ~seed:42 ())
  in
  let armed =
    Serve.run
      (Serve.config ~disks:4 ~jobs:1 ~selection:Serve.Online ~tenants:4 ~seed:42
         ~faults:(decay_faults ~seed:11 ~rate:0.0) ())
  in
  List.iter2
    (fun (a : Serve.row) (b : Serve.row) ->
      check Alcotest.string "labels align" a.Serve.label b.Serve.label;
      check (Alcotest.float 0.0) (a.Serve.label ^ ": energy identical") a.Serve.energy_j
        b.Serve.energy_j;
      check (Alcotest.float 0.0) (a.Serve.label ^ ": makespan identical") a.Serve.makespan_ms
        b.Serve.makespan_ms)
    clean.Serve.rows armed.Serve.rows

let test_serve_reliability_config_validation () =
  let rejects name f = check Alcotest.bool name true (try ignore (f ()); false with Invalid_argument _ -> true) in
  rejects "deadline <= 0" (fun () ->
      Serve.config ~deadline_ms:0.0 ~tenants:1 ~seed:1 ());
  rejects "spare < 1" (fun () -> Serve.config ~spare_blocks:0 ~tenants:1 ~seed:1 ());
  rejects "recorder deadline <= 0" (fun () ->
      Account.recorder ~deadline_ms:(-1.0) ~tenants:1 ~disks:1 ())

let test_percentile () =
  let s = [| 1.0; 2.0; 3.0; 4.0 |] in
  check (Alcotest.float 1e-9) "p0 is the minimum" 1.0 (Account.percentile s 0.0);
  check (Alcotest.float 1e-9) "p50 nearest rank" 2.0 (Account.percentile s 0.5);
  check (Alcotest.float 1e-9) "p100 is the maximum" 4.0 (Account.percentile s 1.0);
  check (Alcotest.float 1e-9) "empty sample" 0.0 (Account.percentile [||] 0.5)

let test_config_validation () =
  let rejects name f = check Alcotest.bool name true (try ignore (f ()); false with Invalid_argument _ -> true) in
  rejects "tenants < 1" (fun () -> Serve.config ~tenants:0 ~seed:1 ());
  rejects "jobs < 1" (fun () -> Serve.config ~jobs:0 ~tenants:1 ~seed:1 ());
  rejects "disks < 1" (fun () -> Serve.config ~disks:0 ~tenants:1 ~seed:1 ());
  rejects "negative jitter" (fun () -> Serve.config ~jitter_ms:(-1.0) ~tenants:1 ~seed:1 ());
  rejects "negative jitter at merge" (fun () ->
      Mux.merge ~rng:(Splitmix.create 1) ~jitter_ms:(-1.0) [])

let suites =
  [
    ( "serve",
      [
        qtest "mux conserves and orders" mux_gen prop_mux_conserves_and_orders;
        qtest ~count:30 "mux deterministic" mux_gen prop_mux_deterministic;
        Alcotest.test_case "percentiles (nearest rank)" `Quick test_percentile;
        Alcotest.test_case "config validation" `Quick test_config_validation;
        Alcotest.test_case "report rows" `Quick test_report_rows;
        Alcotest.test_case "report: jobs-independent" `Quick test_report_jobs_identical;
        Alcotest.test_case "report: deterministic" `Quick test_report_deterministic;
        Alcotest.test_case "attribution sums to the total" `Quick test_attribution_sums;
        Alcotest.test_case "online saves energy" `Quick test_online_saves_energy;
      ] );
    ( "serve.reliability",
      [
        Alcotest.test_case "decay reports SLO and availability" `Quick
          test_serve_decay_reports_slo;
        Alcotest.test_case "decay report: jobs-independent" `Quick
          test_serve_decay_jobs_identical;
        Alcotest.test_case "rate-0 decay identical to clean" `Quick
          test_serve_decay_rate_zero_identity;
        Alcotest.test_case "reliability config validation" `Quick
          test_serve_reliability_config_validation;
      ] );
  ]
