(* Tests for trace generation: request timing, think times, segments,
   the text format, and summaries. *)

module Ir = Dp_ir.Ir
module A = Dp_affine.Affine
module Striping = Dp_layout.Striping
module Layout = Dp_layout.Layout
module Concrete = Dp_dependence.Concrete
module Request = Dp_trace.Request
module Cost_model = Dp_trace.Cost_model
module Generate = Dp_trace.Generate
module Parallelize = Dp_restructure.Parallelize

let check = Alcotest.check
let c = A.const
let i = A.var "i"

let program =
  Ir.program
    [ Ir.array_decl ~elem_size:1024 "u" [ 8 ] ]
    [
      Ir.nest 0
        [ Ir.loop "i" (c 0) (c 3) ]
        [ Ir.stmt 0 ~work_cycles:750_000 [ Ir.read "u" [ i ] ] ];
      Ir.nest 1
        [ Ir.loop "i" (c 0) (c 3) ]
        [ Ir.stmt 1 ~work_cycles:750_000 [ Ir.write "u" [ A.add i (c 4) ] ] ];
    ]

let layout =
  Layout.make ~default:(Striping.make ~unit_bytes:1024 ~factor:2 ~start_disk:0) program

let graph = Concrete.build program

let cost = Cost_model.default (* 750 MHz: 750_000 cycles = 1 ms *)

let single_trace () =
  Generate.trace ~cost layout program graph
    (Generate.single_stream graph ~order:(Concrete.original_order graph))

let test_cost_model () =
  check (Alcotest.float 1e-9) "compute 750k cycles = 1ms" 1.0
    (Cost_model.compute_ms cost ~cycles:750_000);
  let full = Cost_model.service_ms cost ~bytes:0 in
  check (Alcotest.float 1e-9) "0-byte full-seek service" (3.4 +. 2.0) full;
  let seq = Cost_model.service_ms ~seek_distance:0 cost ~bytes:0 in
  check (Alcotest.float 1e-9) "sequential service skips seek" 2.0 seq;
  let near = Cost_model.service_ms ~seek_distance:4096 cost ~bytes:0 in
  check (Alcotest.float 1e-9) "short hop seek is 40%" (0.4 *. 3.4 +. 2.0) near

let test_trace_timing () =
  let reqs = single_trace () in
  check Alcotest.int "8 requests" 8 (List.length reqs);
  let r0 = List.hd reqs in
  check (Alcotest.float 1e-6) "first arrival after compute" 1.0 r0.Request.arrival_ms;
  check (Alcotest.float 1e-6) "first think" 1.0 r0.Request.think_ms;
  check Alcotest.int "element 0 on disk 0" 0 r0.Request.disk;
  (* Arrivals strictly increase for a single processor. *)
  let arrivals = List.map (fun r -> r.Request.arrival_ms) reqs in
  check Alcotest.bool "monotone" true (List.sort compare arrivals = arrivals);
  (* Disk alternates with the element parity. *)
  let disks = List.map (fun r -> r.Request.disk) reqs in
  check Alcotest.(list int) "disks" [ 0; 1; 0; 1; 0; 1; 0; 1 ] disks

let test_trace_roundtrip () =
  let reqs = single_trace () in
  let path = Filename.temp_file "dpower" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Request.save path reqs;
      let back = Request.load path in
      check Alcotest.int "same count" (List.length reqs) (List.length back);
      List.iter2
        (fun (a : Request.t) (b : Request.t) ->
          check Alcotest.int "address" a.address b.address;
          check Alcotest.int "lba" a.lba b.lba;
          check Alcotest.int "disk" a.disk b.disk;
          check Alcotest.int "seg" a.seg b.seg;
          check Alcotest.bool "mode" true (a.mode = b.mode);
          check (Alcotest.float 1e-3) "arrival" a.arrival_ms b.arrival_ms;
          check (Alcotest.float 1e-3) "think" a.think_ms b.think_ms)
        reqs back)

let test_trace_malformed () =
  (match Request.of_lines [ "# comment"; "" ] with
  | [] -> ()
  | _ -> Alcotest.fail "comments and blanks ignored");
  match Request.of_lines [ "1.0 2.0 0 nonsense" ] with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure on malformed line"

(* --- the hint stream riding in the trace file --- *)

module Hint = Dp_trace.Hint

let some_hints =
  [
    { Hint.at_ms = 10.0; disk = 0; action = Hint.Spin_down };
    { Hint.at_ms = 2_500.25; disk = 1; action = Hint.Pre_spin_up 10_900.0 };
    { Hint.at_ms = 40_000.0; disk = 0; action = Hint.Set_rpm 9000 };
  ]

let test_hint_roundtrip () =
  let reqs = single_trace () in
  let path = Filename.temp_file "dpower" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Request.save ~hints:some_hints path reqs;
      let back_reqs, back_hints = Request.load_with_hints path in
      check Alcotest.int "requests preserved" (List.length reqs) (List.length back_reqs);
      check Alcotest.int "hints preserved" (List.length some_hints) (List.length back_hints);
      List.iter2
        (fun (a : Hint.t) (b : Hint.t) ->
          check (Alcotest.float 1e-3) "hint time" a.Hint.at_ms b.Hint.at_ms;
          check Alcotest.int "hint disk" a.Hint.disk b.Hint.disk;
          match (a.Hint.action, b.Hint.action) with
          | Hint.Spin_down, Hint.Spin_down -> ()
          | Hint.Pre_spin_up la, Hint.Pre_spin_up lb ->
              check (Alcotest.float 1e-3) "lead" la lb
          | Hint.Set_rpm ra, Hint.Set_rpm rb -> check Alcotest.int "rpm" ra rb
          | _ -> Alcotest.fail "hint action changed across the roundtrip")
        (List.sort Hint.compare_at some_hints)
        back_hints;
      (* Plain [load] validates but drops the hint lines. *)
      check Alcotest.int "load drops hints" (List.length reqs)
        (List.length (Request.load path)))

let test_hint_malformed () =
  (match Request.of_lines_with_hints [ "H 1.0 0 D" ] with
  | [], [ h ] -> check Alcotest.bool "spin-down parsed" true (h.Hint.action = Hint.Spin_down)
  | _ -> Alcotest.fail "expected one hint");
  List.iter
    (fun line ->
      match Request.of_lines_with_hints [ line ] with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail (Printf.sprintf "expected Failure on %S" line))
    [
      "H nonsense";
      "H 1.0 0 Z" (* unknown action *);
      "H 1.0 0 U" (* missing lead *);
      "H 1.0 0 S notanint";
      "H 1.0" (* truncated *);
    ]

(* --- fault windows riding in the trace file, and result-returning loads --- *)

module Fault_model = Dp_faults.Fault_model

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_fault_line_roundtrip () =
  let reqs = single_trace () in
  let faults = Fault_model.make ~seed:42 ~rate:0.05 ~classes:[ Fault_model.Media_error ] () in
  let path = Filename.temp_file "dpower" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Request.save ~hints:some_hints ~faults path reqs;
      let back_reqs, back_hints, back_faults = Request.load_full path in
      check Alcotest.int "requests preserved" (List.length reqs) (List.length back_reqs);
      check Alcotest.int "hints preserved" (List.length some_hints) (List.length back_hints);
      (match back_faults with
      | Some f ->
          check Alcotest.string "fault spec preserved" (Fault_model.to_spec faults)
            (Fault_model.to_spec f)
      | None -> Alcotest.fail "fault line dropped across the roundtrip");
      (* Plain [load] validates but drops the fault line too. *)
      check Alcotest.int "load drops faults" (List.length reqs)
        (List.length (Request.load path)))

let test_load_result_line_numbers () =
  (* The first malformed line wins and is reported with its number and field. *)
  let good = "1.0 2.0 0 0 0 1024 R 0 0" in
  (match Request.of_lines_res [ good; "# fine"; "1.0 2.0 0 0 0 1024 X 0 0" ] with
  | Error msg ->
      check Alcotest.bool
        (Printf.sprintf "line number in %S" msg)
        true
        (contains ~needle:"line 3" msg && contains ~needle:"mode" msg)
  | Ok _ -> Alcotest.fail "bad mode letter must be rejected");
  (match Request.of_lines_res [ good; "F 1:nope:all" ] with
  | Error msg ->
      check Alcotest.bool
        (Printf.sprintf "fault line error in %S" msg)
        true
        (contains ~needle:"line 2" msg && contains ~needle:"rate" msg)
  | Ok _ -> Alcotest.fail "bad fault line must be rejected");
  match Request.of_lines_res [ good ] with
  | Ok ([ _ ], [], None) -> ()
  | Ok _ -> Alcotest.fail "one request expected"
  | Error msg -> Alcotest.fail msg

let test_load_result_missing_file () =
  match Request.load_result "/nonexistent/dpower.trace" with
  | Error { file; line = 0; msg = _ } ->
      check Alcotest.string "file recorded" "/nonexistent/dpower.trace" file
  | Error e -> Alcotest.failf "expected line 0, got %s" (Request.load_error_to_string e)
  | Ok _ -> Alcotest.fail "missing file must not load"

let test_load_result_reports_file_and_line () =
  let path = Filename.temp_file "dpower" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "# header\n1.0 2.0 0 0 0 notanint R 0 0\n";
      close_out oc;
      match Request.load_result path with
      | Error e ->
          check Alcotest.string "file" path e.Request.file;
          check Alcotest.int "line" 2 e.Request.line;
          check Alcotest.bool "field named" true (contains ~needle:"size" e.Request.msg);
          (* The rendering is the editor-friendly file:line: message shape. *)
          check Alcotest.bool "file:line rendering" true
            (contains ~needle:(path ^ ":2:") (Request.load_error_to_string e))
      | Ok _ -> Alcotest.fail "malformed size must be rejected")

let test_segments_barrier () =
  (* Two processors, two segments; proc 1's first segment is empty, so
     its second-segment work must still start after proc 0's first. *)
  let g = graph in
  let seg0_p0 = [| 0; 1; 2; 3 |] and seg1_p1 = [| 4; 5; 6; 7 |] in
  let per_proc = [| [ seg0_p0; [||] ]; [ [||]; seg1_p1 ] |] in
  let reqs = Generate.trace ~cost layout program g per_proc in
  let p0_last =
    List.filter (fun r -> r.Request.proc = 0) reqs
    |> List.fold_left (fun acc r -> Float.max acc r.Request.arrival_ms) 0.0
  in
  let p1_first =
    List.filter (fun r -> r.Request.proc = 1) reqs
    |> List.fold_left (fun acc r -> Float.min acc r.Request.arrival_ms) infinity
  in
  check Alcotest.bool "barrier respected" true (p1_first > p0_last);
  check Alcotest.bool "segments tagged" true
    (List.for_all (fun r -> r.Request.seg = if r.Request.proc = 0 then 0 else 1) reqs)

let test_original_segments () =
  let a = Parallelize.conventional program graph ~procs:2 in
  let segs = Generate.original_segments program graph a in
  check Alcotest.int "two procs" 2 (Array.length segs);
  Array.iter (fun s -> check Alcotest.int "one segment per nest" 2 (List.length s)) segs;
  (* Every instance appears exactly once across all segments. *)
  let all =
    Array.to_list segs
    |> List.concat_map (fun segs -> List.concat_map Array.to_list segs)
    |> List.sort compare
  in
  check Alcotest.(list int) "partition of instances" (List.init 8 Fun.id) all

let test_summary () =
  let reqs = single_trace () in
  let s = Generate.summarize ~cost reqs in
  check Alcotest.int "requests" 8 s.Generate.requests;
  check Alcotest.int "bytes" (8 * 1024) s.Generate.bytes;
  check Alcotest.bool "positive io" true (s.Generate.io_ms > 0.0);
  check Alcotest.bool "makespan covers arrivals" true
    (s.Generate.makespan_ms
    >= List.fold_left (fun acc r -> Float.max acc r.Request.arrival_ms) 0.0 reqs);
  let f = Generate.io_fraction s in
  check Alcotest.bool "fraction in (0,1)" true (f > 0.0 && f < 1.0)

(* --- idle statistics --- *)

module Idle_stats = Dp_trace.Idle_stats

let test_idle_stats () =
  (* Three requests on one disk with known gaps: ~0.5 s and ~20 s. *)
  let mk arrival =
    {
      Request.arrival_ms = arrival;
      think_ms = 0.0;
      seg = 0;
      address = 0;
      lba = 0;
      size = 0;
      mode = Ir.Read;
      proc = 0;
      disk = 0;
    }
  in
  let svc = Cost_model.service_ms cost ~bytes:0 in
  let reqs = [ mk 0.0; mk (svc +. 500.0); mk (2.0 *. svc +. 500.0 +. 20_000.0) ] in
  let h = Idle_stats.of_requests ~cost reqs in
  check Alcotest.int "two gaps" 2 (Idle_stats.total_gaps h);
  check Alcotest.int "short gap bucket" 1 h.Idle_stats.counts.(0);
  (* 20 s falls in the (15.2, 31.6] bucket. *)
  check Alcotest.int "tpm bucket" 1 h.Idle_stats.counts.(3);
  check (Alcotest.float 0.3) "mass" 20.5 (Idle_stats.total_mass_s h);
  check (Alcotest.float 0.3) "exploitable" 20.0
    (Idle_stats.exploitable_mass_s h ~threshold_s:15.2);
  check (Alcotest.float 1e-9) "nothing beyond 120 s" 0.0
    (Idle_stats.exploitable_mass_s h ~threshold_s:120.0)

let test_idle_stats_restructuring_helps () =
  (* On a real workload, restructuring increases the TPM-exploitable idle
     mass — the mechanism behind every figure. *)
  let app = Option.get (Dp_workloads.Workloads.by_name "FFT") in
  let layout' =
    Dp_layout.Layout.make ~default:app.Dp_workloads.App.striping
      ~overrides:app.Dp_workloads.App.overrides app.Dp_workloads.App.program
  in
  let g = Concrete.build app.Dp_workloads.App.program in
  let trace order =
    Generate.trace layout' app.Dp_workloads.App.program g (Generate.single_stream g ~order)
  in
  let base = trace (Concrete.original_order g) in
  let reuse =
    trace
      (Dp_restructure.Reuse_scheduler.schedule layout' app.Dp_workloads.App.program g)
        .Dp_restructure.Reuse_scheduler.order
  in
  let exploitable reqs =
    Idle_stats.exploitable_mass_s (Idle_stats.of_requests reqs) ~threshold_s:15.2
  in
  check Alcotest.bool "restructured idle mass larger" true
    (exploitable reuse > exploitable base)

(* {1 Binary codec} *)

module Bin = Dp_trace.Bin

let tmp_file name = Filename.concat (Filename.get_temp_dir_name ()) name

let sample_reqs : Request.t list =
  [
    {
      arrival_ms = 0.0;
      think_ms = 1.0;
      seg = 0;
      address = 0;
      lba = 0;
      size = 1024;
      mode = Ir.Read;
      proc = 0;
      disk = 0;
    };
    {
      arrival_ms = 1.5;
      think_ms = 1.0;
      seg = 0;
      address = 1024;
      lba = 1024;
      size = 1024;
      mode = Ir.Read;
      proc = 0;
      disk = 0;
    };
    {
      arrival_ms = 2.125;
      think_ms = 0.1 +. 0.2;
      (* not representable in thousandths: exercises the raw-bits path *)
      seg = 1;
      address = 1 lsl 40;
      lba = 77;
      size = 32768;
      mode = Ir.Write;
      proc = 3;
      disk = 2;
    };
  ]

let sample_hints : Dp_trace.Hint.t list =
  [
    { at_ms = 10.0; disk = 0; action = Dp_trace.Hint.Spin_down };
    { at_ms = 12.5; disk = 1; action = Dp_trace.Hint.Pre_spin_up 10.8 };
    { at_ms = 0.3 *. 3.0; disk = 2; action = Dp_trace.Hint.Set_rpm 9000 };
  ]

let sample_faults = Result.get_ok (Fault_model.of_spec "42:0.25:md")

let bits f = Int64.bits_of_float f

let check_reqs_equal what expected got =
  check Alcotest.int (what ^ ": count") (List.length expected) (List.length got);
  List.iter2
    (fun (a : Request.t) (b : Request.t) ->
      check Alcotest.bool (what ^ ": request") true
        (a = b && bits a.arrival_ms = bits b.arrival_ms && bits a.think_ms = bits b.think_ms))
    expected got

let test_bin_roundtrip () =
  let s = Bin.encode ~rounds:5 ~hints:sample_hints ~faults:sample_faults sample_reqs in
  match Bin.decode s with
  | Error e -> Alcotest.failf "decode: %s" (Bin.error_to_string e)
  | Ok (reqs, hints, faults, rounds) ->
      check_reqs_equal "roundtrip" sample_reqs reqs;
      check Alcotest.bool "hints" true (hints = sample_hints);
      check Alcotest.(option string) "faults"
        (Some (Fault_model.to_spec sample_faults))
        (Option.map Fault_model.to_spec faults);
      check Alcotest.(option int) "rounds" (Some 5) rounds;
      let s' = Bin.encode sample_reqs in
      let _, _, f', r' = Result.get_ok (Bin.decode s') in
      check Alcotest.bool "no faults" true (f' = None);
      check Alcotest.(option int) "no rounds" None r'

let test_bin_file_roundtrip () =
  let path = tmp_file "dpower-bin-roundtrip.dpt" in
  Bin.save ~hints:sample_hints ~faults:sample_faults path sample_reqs;
  check Alcotest.bool "sniff" true (Bin.sniff path);
  (match Bin.load_bin path with
  | Error e -> Alcotest.failf "load_bin: %s" (Bin.error_to_string e)
  | Ok (reqs, hints, faults, rounds) ->
      check_reqs_equal "file" sample_reqs reqs;
      check Alcotest.bool "file hints" true (hints = sample_hints);
      check Alcotest.bool "file faults" true (faults <> None);
      check Alcotest.(option int) "file rounds" None rounds);
  (* The sniffing loader agrees with the text loader on a text file. *)
  let text = tmp_file "dpower-bin-roundtrip.trace" in
  Request.save ~hints:sample_hints ~faults:sample_faults text sample_reqs;
  check Alcotest.bool "text not sniffed" false (Bin.sniff text);
  let via_text = Result.get_ok (Request.load_result text) in
  let via_auto = Result.get_ok (Bin.load_result text) in
  check Alcotest.bool "auto = text loader" true (via_text = via_auto);
  let rb, hb, fb = Result.get_ok (Bin.load_result path) in
  check_reqs_equal "auto bin" sample_reqs rb;
  check Alcotest.bool "auto bin hints" true (hb = sample_hints);
  check Alcotest.bool "auto bin faults" true (fb <> None);
  Sys.remove path;
  Sys.remove text

let test_bin_text_identity () =
  (* text -> bin -> text is byte-identical: quantized requests take the
     thousandths path, whose decode is the same correctly-rounded float the
     text parser produces. *)
  let reqs = single_trace () in
  let text1 = tmp_file "dpower-bin-text1.trace" in
  Request.save ~hints:sample_hints ~faults:sample_faults text1 reqs;
  let r1, h1, f1 = Result.get_ok (Request.load_result text1) in
  let bin = Bin.encode ~hints:h1 ?faults:f1 r1 in
  let r2, h2, f2, _ = Result.get_ok (Bin.decode bin) in
  let text2 = tmp_file "dpower-bin-text2.trace" in
  Request.save ~hints:h2 ?faults:f2 text2 r2;
  let read p = In_channel.with_open_bin p In_channel.input_all in
  check Alcotest.string "text -> bin -> text bytes" (read text1) (read text2);
  Sys.remove text1;
  Sys.remove text2

let test_bin_quantize () =
  let r = List.nth sample_reqs 2 in
  let q = Bin.quantize r in
  check (Alcotest.float 1e-9) "quantize 3 decimals" 0.3 q.think_ms;
  (* A quantized value is exactly what the text format round-trips to. *)
  check Alcotest.bool "quantize = text parse" true
    (bits q.think_ms = bits (float_of_string (Printf.sprintf "%.3f" r.think_ms)));
  let h = Bin.quantize_hint { at_ms = 1.0 /. 3.0; disk = 0; action = Dp_trace.Hint.Pre_spin_up (2.0 /. 3.0) } in
  check Alcotest.bool "hint quantized" true
    (h.at_ms = 0.333 && h.action = Dp_trace.Hint.Pre_spin_up 0.667)

let test_bin_compression () =
  (* Acceptance: binary <= 25% of text across the Table-2 workloads (fixed
     header/chunk overhead is ~30 bytes, so toy traces are excluded). *)
  List.iter
    (fun (app : Dp_workloads.App.t) ->
      let g = Concrete.build app.program in
      let layout' = Dp_layout.Layout.make ~default:app.striping ~overrides:app.overrides app.program in
      let reqs =
        Generate.trace layout' app.program g
          (Generate.single_stream g ~order:(Concrete.original_order g))
      in
      let text =
        Format.asprintf "%a"
          (fun ppf () -> List.iter (fun r -> Format.fprintf ppf "%a\n" Request.pp r) reqs)
          ()
      in
      let bin = Bin.encode (List.map Bin.quantize reqs) in
      let ratio = float_of_int (String.length bin) /. float_of_int (String.length text) in
      if ratio > 0.25 then
        Alcotest.failf "app:%s: binary %d bytes vs text %d bytes (ratio %.2f > 0.25)"
          app.name (String.length bin) (String.length text) ratio)
    (Dp_workloads.Workloads.all ())

let corrupt s pos c =
  let b = Bytes.of_string s in
  Bytes.set b pos c;
  Bytes.to_string b


let test_bin_corruption () =
  let s = Bin.encode ~chunk_bytes:64 ~hints:sample_hints sample_reqs in
  (* Bad magic *)
  (match Bin.decode (corrupt s 0 'X') with
  | Ok _ -> Alcotest.fail "bad magic accepted"
  | Error e ->
      check Alcotest.int "magic offset" 0 e.offset;
      check Alcotest.bool "magic msg" true
        (contains ~needle:"magic" e.msg));
  (* Version skew *)
  (match Bin.decode (corrupt s 4 '\009') with
  | Ok _ -> Alcotest.fail "bad version accepted"
  | Error e ->
      check Alcotest.bool "version msg" true
        (contains ~needle:"version 9" e.msg));
  (* Truncation: every strict prefix must fail, never loop or succeed. *)
  let n = String.length s in
  for cut = 0 to n - 1 do
    match Bin.decode ~file:"t.dpt" (String.sub s 0 cut) with
    | Ok _ -> Alcotest.failf "truncated prefix of %d bytes accepted" cut
    | Error e ->
        check Alcotest.string "truncation names the file" "t.dpt" e.file;
        if e.offset < 0 || e.offset > cut then
          Alcotest.failf "truncation offset %d out of range (prefix %d)" e.offset cut
  done;
  (* Bad checksum: flip one payload byte (first chunk payload starts after
     the 6-byte header + 'C' + 4-byte length). *)
  let pos = 6 + 5 + 2 in
  let flipped = corrupt s pos (Char.chr (Char.code s.[pos] lxor 0xff)) in
  (match Bin.decode flipped with
  | Ok _ -> Alcotest.fail "checksum mismatch accepted"
  | Error e ->
      check Alcotest.bool "checksum msg" true
        (contains ~needle:"checksum" e.msg);
      check Alcotest.int "checksum offset = chunk marker" 6 e.offset);
  (* Trailing bytes after the end marker. *)
  (match Bin.decode (s ^ "x") with
  | Ok _ -> Alcotest.fail "trailing bytes accepted"
  | Error e ->
      check Alcotest.bool "trailing msg" true
        (contains ~needle:"trailing" e.msg))

let test_bin_error_rendering () =
  let path = tmp_file "dpower-bin-truncated.dpt" in
  Bin.save path sample_reqs;
  let full = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub full 0 (String.length full - 3)));
  (match Bin.load_result path with
  | Ok _ -> Alcotest.fail "truncated file accepted"
  | Error e ->
      let rendered = Request.load_error_to_string e in
      check Alcotest.bool "file:offset: msg shape" true
        (String.length rendered > String.length path && String.sub rendered 0 (String.length path + 1) = path ^ ":");
      check Alcotest.bool "offset nonzero" true (e.line > 0));
  Sys.remove path

let arbitrary_trace =
  let open QCheck in
  let float_ms =
    oneof
      [
        map (fun k -> float_of_int k /. 1000.0) (int_range 0 5_000_000);
        map Float.abs (float_bound_exclusive 1e6);
      ]
  in
  let req =
    map
      (fun ((arrival, think, seg, addr), (lba, size, mode, proc, disk)) : Request.t ->
        {
          arrival_ms = arrival;
          think_ms = think;
          seg;
          address = addr;
          lba;
          size;
          mode = (if mode then Ir.Write else Ir.Read);
          proc;
          disk;
        })
      (pair
         (quad float_ms float_ms (int_range 0 8) (int_range 0 (1 lsl 30)))
         (tup5 (int_range 0 (1 lsl 20)) (int_range 0 65536) bool (int_range 0 15)
            (int_range 0 15)))
  in
  QCheck.list_of_size (Gen.int_range 0 200) req

let test_bin_fold_equals_decode =
  QCheck.Test.make ~count:60 ~name:"chunked fold = whole-buffer decode" arbitrary_trace
    (fun reqs ->
      (* Tiny chunks force many chunk boundaries mid-stream. *)
      let s = Bin.encode ~chunk_bytes:48 ~hints:sample_hints ~faults:sample_faults reqs in
      let whole = Result.get_ok (Bin.decode s) in
      let path = tmp_file "dpower-bin-qcheck.dpt" in
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s);
      let folded =
        Result.get_ok
          (Bin.fold_path path ~init:[] ~f:(fun acc r -> r :: acc))
      in
      Sys.remove path;
      let reqs', hints', faults', rounds' =
        let rs, hs, f =
          List.fold_left
            (fun (rs, hs, f) -> function
              | Bin.Req r -> (r :: rs, hs, f)
              | Bin.Hint h -> (rs, h :: hs, f)
              | Bin.Faults fm -> (rs, hs, Some fm))
            ([], [], None) (List.rev (fst folded))
        in
        (List.rev rs, List.rev hs, f, snd folded)
      in
      let wr, wh, wf, wround = whole in
      reqs' = wr && hints' = wh
      && Option.map Fault_model.to_spec faults' = Option.map Fault_model.to_spec wf
      && rounds' = wround && wr = reqs)

let test_bin_streaming_memory () =
  (* A 100x-scale trace folds in constant space: live heap while streaming
     stays bounded by the chunk buffer, far below the materialized list. *)
  let n = 300_000 in
  let path = tmp_file "dpower-bin-large.dpt" in
  let write_large () =
    let reqs =
      List.init n (fun i : Request.t ->
          {
            arrival_ms = float_of_int i /. 4.0;
            think_ms = 1.0;
            seg = 0;
            address = i * 1024;
            lba = i * 1024;
            size = 1024;
            mode = Ir.Read;
            proc = i land 7;
            disk = i land 3;
          })
    in
    Bin.save path reqs
  in
  write_large ();
  Gc.compact ();
  let baseline = (Gc.stat ()).live_words in
  let peak = ref 0 in
  let count =
    Result.get_ok
      (Bin.fold_path path ~init:0 ~f:(fun acc _ ->
           if acc mod 50_000 = 0 then begin
             let live = (Gc.stat ()).live_words - baseline in
             if live > !peak then peak := live
           end;
           acc + 1))
  in
  Sys.remove path;
  check Alcotest.int "all records streamed" n (fst count);
  (* A materialized list of 300k requests is ~30 MWords; the streaming
     reader must stay within a small constant (chunk buffer + decoder). *)
  if !peak > 1_000_000 then
    Alcotest.failf "streaming fold grew live heap by %d words (bound 1M)" !peak

let suites =
  [
    ( "trace",
      [
        Alcotest.test_case "cost model" `Quick test_cost_model;
        Alcotest.test_case "timing" `Quick test_trace_timing;
        Alcotest.test_case "file roundtrip" `Quick test_trace_roundtrip;
        Alcotest.test_case "malformed input" `Quick test_trace_malformed;
        Alcotest.test_case "hint roundtrip" `Quick test_hint_roundtrip;
        Alcotest.test_case "malformed hints" `Quick test_hint_malformed;
        Alcotest.test_case "fault line roundtrip" `Quick test_fault_line_roundtrip;
        Alcotest.test_case "loader line numbers" `Quick test_load_result_line_numbers;
        Alcotest.test_case "loader missing file" `Quick test_load_result_missing_file;
        Alcotest.test_case "loader file:line errors" `Quick
          test_load_result_reports_file_and_line;
        Alcotest.test_case "segment barriers" `Quick test_segments_barrier;
        Alcotest.test_case "original segments" `Quick test_original_segments;
        Alcotest.test_case "summary" `Quick test_summary;
        Alcotest.test_case "idle stats" `Quick test_idle_stats;
        Alcotest.test_case "restructuring lengthens gaps" `Slow
          test_idle_stats_restructuring_helps;
      ] );
    ( "trace.bin",
      [
        Alcotest.test_case "roundtrip" `Quick test_bin_roundtrip;
        Alcotest.test_case "file roundtrip + sniffing loader" `Quick
          test_bin_file_roundtrip;
        Alcotest.test_case "text -> bin -> text byte-identity" `Quick
          test_bin_text_identity;
        Alcotest.test_case "quantize = text precision" `Quick test_bin_quantize;
        Alcotest.test_case "binary <= 25% of text" `Quick test_bin_compression;
        Alcotest.test_case "corruption diagnostics" `Quick test_bin_corruption;
        Alcotest.test_case "file:offset error rendering" `Quick test_bin_error_rendering;
        QCheck_alcotest.to_alcotest test_bin_fold_equals_decode;
        Alcotest.test_case "streaming fold is constant-space" `Slow
          test_bin_streaming_memory;
      ] );
  ]
