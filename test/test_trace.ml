(* Tests for trace generation: request timing, think times, segments,
   the text format, and summaries. *)

module Ir = Dp_ir.Ir
module A = Dp_affine.Affine
module Striping = Dp_layout.Striping
module Layout = Dp_layout.Layout
module Concrete = Dp_dependence.Concrete
module Request = Dp_trace.Request
module Cost_model = Dp_trace.Cost_model
module Generate = Dp_trace.Generate
module Parallelize = Dp_restructure.Parallelize

let check = Alcotest.check
let c = A.const
let i = A.var "i"

let program =
  Ir.program
    [ Ir.array_decl ~elem_size:1024 "u" [ 8 ] ]
    [
      Ir.nest 0
        [ Ir.loop "i" (c 0) (c 3) ]
        [ Ir.stmt 0 ~work_cycles:750_000 [ Ir.read "u" [ i ] ] ];
      Ir.nest 1
        [ Ir.loop "i" (c 0) (c 3) ]
        [ Ir.stmt 1 ~work_cycles:750_000 [ Ir.write "u" [ A.add i (c 4) ] ] ];
    ]

let layout =
  Layout.make ~default:(Striping.make ~unit_bytes:1024 ~factor:2 ~start_disk:0) program

let graph = Concrete.build program

let cost = Cost_model.default (* 750 MHz: 750_000 cycles = 1 ms *)

let single_trace () =
  Generate.trace ~cost layout program graph
    (Generate.single_stream graph ~order:(Concrete.original_order graph))

let test_cost_model () =
  check (Alcotest.float 1e-9) "compute 750k cycles = 1ms" 1.0
    (Cost_model.compute_ms cost ~cycles:750_000);
  let full = Cost_model.service_ms cost ~bytes:0 in
  check (Alcotest.float 1e-9) "0-byte full-seek service" (3.4 +. 2.0) full;
  let seq = Cost_model.service_ms ~seek_distance:0 cost ~bytes:0 in
  check (Alcotest.float 1e-9) "sequential service skips seek" 2.0 seq;
  let near = Cost_model.service_ms ~seek_distance:4096 cost ~bytes:0 in
  check (Alcotest.float 1e-9) "short hop seek is 40%" (0.4 *. 3.4 +. 2.0) near

let test_trace_timing () =
  let reqs = single_trace () in
  check Alcotest.int "8 requests" 8 (List.length reqs);
  let r0 = List.hd reqs in
  check (Alcotest.float 1e-6) "first arrival after compute" 1.0 r0.Request.arrival_ms;
  check (Alcotest.float 1e-6) "first think" 1.0 r0.Request.think_ms;
  check Alcotest.int "element 0 on disk 0" 0 r0.Request.disk;
  (* Arrivals strictly increase for a single processor. *)
  let arrivals = List.map (fun r -> r.Request.arrival_ms) reqs in
  check Alcotest.bool "monotone" true (List.sort compare arrivals = arrivals);
  (* Disk alternates with the element parity. *)
  let disks = List.map (fun r -> r.Request.disk) reqs in
  check Alcotest.(list int) "disks" [ 0; 1; 0; 1; 0; 1; 0; 1 ] disks

let test_trace_roundtrip () =
  let reqs = single_trace () in
  let path = Filename.temp_file "dpower" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Request.save path reqs;
      let back = Request.load path in
      check Alcotest.int "same count" (List.length reqs) (List.length back);
      List.iter2
        (fun (a : Request.t) (b : Request.t) ->
          check Alcotest.int "address" a.address b.address;
          check Alcotest.int "lba" a.lba b.lba;
          check Alcotest.int "disk" a.disk b.disk;
          check Alcotest.int "seg" a.seg b.seg;
          check Alcotest.bool "mode" true (a.mode = b.mode);
          check (Alcotest.float 1e-3) "arrival" a.arrival_ms b.arrival_ms;
          check (Alcotest.float 1e-3) "think" a.think_ms b.think_ms)
        reqs back)

let test_trace_malformed () =
  (match Request.of_lines [ "# comment"; "" ] with
  | [] -> ()
  | _ -> Alcotest.fail "comments and blanks ignored");
  match Request.of_lines [ "1.0 2.0 0 nonsense" ] with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure on malformed line"

(* --- the hint stream riding in the trace file --- *)

module Hint = Dp_trace.Hint

let some_hints =
  [
    { Hint.at_ms = 10.0; disk = 0; action = Hint.Spin_down };
    { Hint.at_ms = 2_500.25; disk = 1; action = Hint.Pre_spin_up 10_900.0 };
    { Hint.at_ms = 40_000.0; disk = 0; action = Hint.Set_rpm 9000 };
  ]

let test_hint_roundtrip () =
  let reqs = single_trace () in
  let path = Filename.temp_file "dpower" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Request.save ~hints:some_hints path reqs;
      let back_reqs, back_hints = Request.load_with_hints path in
      check Alcotest.int "requests preserved" (List.length reqs) (List.length back_reqs);
      check Alcotest.int "hints preserved" (List.length some_hints) (List.length back_hints);
      List.iter2
        (fun (a : Hint.t) (b : Hint.t) ->
          check (Alcotest.float 1e-3) "hint time" a.Hint.at_ms b.Hint.at_ms;
          check Alcotest.int "hint disk" a.Hint.disk b.Hint.disk;
          match (a.Hint.action, b.Hint.action) with
          | Hint.Spin_down, Hint.Spin_down -> ()
          | Hint.Pre_spin_up la, Hint.Pre_spin_up lb ->
              check (Alcotest.float 1e-3) "lead" la lb
          | Hint.Set_rpm ra, Hint.Set_rpm rb -> check Alcotest.int "rpm" ra rb
          | _ -> Alcotest.fail "hint action changed across the roundtrip")
        (List.sort Hint.compare_at some_hints)
        back_hints;
      (* Plain [load] validates but drops the hint lines. *)
      check Alcotest.int "load drops hints" (List.length reqs)
        (List.length (Request.load path)))

let test_hint_malformed () =
  (match Request.of_lines_with_hints [ "H 1.0 0 D" ] with
  | [], [ h ] -> check Alcotest.bool "spin-down parsed" true (h.Hint.action = Hint.Spin_down)
  | _ -> Alcotest.fail "expected one hint");
  List.iter
    (fun line ->
      match Request.of_lines_with_hints [ line ] with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail (Printf.sprintf "expected Failure on %S" line))
    [
      "H nonsense";
      "H 1.0 0 Z" (* unknown action *);
      "H 1.0 0 U" (* missing lead *);
      "H 1.0 0 S notanint";
      "H 1.0" (* truncated *);
    ]

(* --- fault windows riding in the trace file, and result-returning loads --- *)

module Fault_model = Dp_faults.Fault_model

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_fault_line_roundtrip () =
  let reqs = single_trace () in
  let faults = Fault_model.make ~seed:42 ~rate:0.05 ~classes:[ Fault_model.Media_error ] () in
  let path = Filename.temp_file "dpower" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Request.save ~hints:some_hints ~faults path reqs;
      let back_reqs, back_hints, back_faults = Request.load_full path in
      check Alcotest.int "requests preserved" (List.length reqs) (List.length back_reqs);
      check Alcotest.int "hints preserved" (List.length some_hints) (List.length back_hints);
      (match back_faults with
      | Some f ->
          check Alcotest.string "fault spec preserved" (Fault_model.to_spec faults)
            (Fault_model.to_spec f)
      | None -> Alcotest.fail "fault line dropped across the roundtrip");
      (* Plain [load] validates but drops the fault line too. *)
      check Alcotest.int "load drops faults" (List.length reqs)
        (List.length (Request.load path)))

let test_load_result_line_numbers () =
  (* The first malformed line wins and is reported with its number and field. *)
  let good = "1.0 2.0 0 0 0 1024 R 0 0" in
  (match Request.of_lines_res [ good; "# fine"; "1.0 2.0 0 0 0 1024 X 0 0" ] with
  | Error msg ->
      check Alcotest.bool
        (Printf.sprintf "line number in %S" msg)
        true
        (contains ~needle:"line 3" msg && contains ~needle:"mode" msg)
  | Ok _ -> Alcotest.fail "bad mode letter must be rejected");
  (match Request.of_lines_res [ good; "F 1:nope:all" ] with
  | Error msg ->
      check Alcotest.bool
        (Printf.sprintf "fault line error in %S" msg)
        true
        (contains ~needle:"line 2" msg && contains ~needle:"rate" msg)
  | Ok _ -> Alcotest.fail "bad fault line must be rejected");
  match Request.of_lines_res [ good ] with
  | Ok ([ _ ], [], None) -> ()
  | Ok _ -> Alcotest.fail "one request expected"
  | Error msg -> Alcotest.fail msg

let test_load_result_missing_file () =
  match Request.load_result "/nonexistent/dpower.trace" with
  | Error { file; line = 0; msg = _ } ->
      check Alcotest.string "file recorded" "/nonexistent/dpower.trace" file
  | Error e -> Alcotest.failf "expected line 0, got %s" (Request.load_error_to_string e)
  | Ok _ -> Alcotest.fail "missing file must not load"

let test_load_result_reports_file_and_line () =
  let path = Filename.temp_file "dpower" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "# header\n1.0 2.0 0 0 0 notanint R 0 0\n";
      close_out oc;
      match Request.load_result path with
      | Error e ->
          check Alcotest.string "file" path e.Request.file;
          check Alcotest.int "line" 2 e.Request.line;
          check Alcotest.bool "field named" true (contains ~needle:"size" e.Request.msg);
          (* The rendering is the editor-friendly file:line: message shape. *)
          check Alcotest.bool "file:line rendering" true
            (contains ~needle:(path ^ ":2:") (Request.load_error_to_string e))
      | Ok _ -> Alcotest.fail "malformed size must be rejected")

let test_segments_barrier () =
  (* Two processors, two segments; proc 1's first segment is empty, so
     its second-segment work must still start after proc 0's first. *)
  let g = graph in
  let seg0_p0 = [| 0; 1; 2; 3 |] and seg1_p1 = [| 4; 5; 6; 7 |] in
  let per_proc = [| [ seg0_p0; [||] ]; [ [||]; seg1_p1 ] |] in
  let reqs = Generate.trace ~cost layout program g per_proc in
  let p0_last =
    List.filter (fun r -> r.Request.proc = 0) reqs
    |> List.fold_left (fun acc r -> Float.max acc r.Request.arrival_ms) 0.0
  in
  let p1_first =
    List.filter (fun r -> r.Request.proc = 1) reqs
    |> List.fold_left (fun acc r -> Float.min acc r.Request.arrival_ms) infinity
  in
  check Alcotest.bool "barrier respected" true (p1_first > p0_last);
  check Alcotest.bool "segments tagged" true
    (List.for_all (fun r -> r.Request.seg = if r.Request.proc = 0 then 0 else 1) reqs)

let test_original_segments () =
  let a = Parallelize.conventional program graph ~procs:2 in
  let segs = Generate.original_segments program graph a in
  check Alcotest.int "two procs" 2 (Array.length segs);
  Array.iter (fun s -> check Alcotest.int "one segment per nest" 2 (List.length s)) segs;
  (* Every instance appears exactly once across all segments. *)
  let all =
    Array.to_list segs
    |> List.concat_map (fun segs -> List.concat_map Array.to_list segs)
    |> List.sort compare
  in
  check Alcotest.(list int) "partition of instances" (List.init 8 Fun.id) all

let test_summary () =
  let reqs = single_trace () in
  let s = Generate.summarize ~cost reqs in
  check Alcotest.int "requests" 8 s.Generate.requests;
  check Alcotest.int "bytes" (8 * 1024) s.Generate.bytes;
  check Alcotest.bool "positive io" true (s.Generate.io_ms > 0.0);
  check Alcotest.bool "makespan covers arrivals" true
    (s.Generate.makespan_ms
    >= List.fold_left (fun acc r -> Float.max acc r.Request.arrival_ms) 0.0 reqs);
  let f = Generate.io_fraction s in
  check Alcotest.bool "fraction in (0,1)" true (f > 0.0 && f < 1.0)

(* --- idle statistics --- *)

module Idle_stats = Dp_trace.Idle_stats

let test_idle_stats () =
  (* Three requests on one disk with known gaps: ~0.5 s and ~20 s. *)
  let mk arrival =
    {
      Request.arrival_ms = arrival;
      think_ms = 0.0;
      seg = 0;
      address = 0;
      lba = 0;
      size = 0;
      mode = Ir.Read;
      proc = 0;
      disk = 0;
    }
  in
  let svc = Cost_model.service_ms cost ~bytes:0 in
  let reqs = [ mk 0.0; mk (svc +. 500.0); mk (2.0 *. svc +. 500.0 +. 20_000.0) ] in
  let h = Idle_stats.of_requests ~cost reqs in
  check Alcotest.int "two gaps" 2 (Idle_stats.total_gaps h);
  check Alcotest.int "short gap bucket" 1 h.Idle_stats.counts.(0);
  (* 20 s falls in the (15.2, 31.6] bucket. *)
  check Alcotest.int "tpm bucket" 1 h.Idle_stats.counts.(3);
  check (Alcotest.float 0.3) "mass" 20.5 (Idle_stats.total_mass_s h);
  check (Alcotest.float 0.3) "exploitable" 20.0
    (Idle_stats.exploitable_mass_s h ~threshold_s:15.2);
  check (Alcotest.float 1e-9) "nothing beyond 120 s" 0.0
    (Idle_stats.exploitable_mass_s h ~threshold_s:120.0)

let test_idle_stats_restructuring_helps () =
  (* On a real workload, restructuring increases the TPM-exploitable idle
     mass — the mechanism behind every figure. *)
  let app = Option.get (Dp_workloads.Workloads.by_name "FFT") in
  let layout' =
    Dp_layout.Layout.make ~default:app.Dp_workloads.App.striping
      ~overrides:app.Dp_workloads.App.overrides app.Dp_workloads.App.program
  in
  let g = Concrete.build app.Dp_workloads.App.program in
  let trace order =
    Generate.trace layout' app.Dp_workloads.App.program g (Generate.single_stream g ~order)
  in
  let base = trace (Concrete.original_order g) in
  let reuse =
    trace
      (Dp_restructure.Reuse_scheduler.schedule layout' app.Dp_workloads.App.program g)
        .Dp_restructure.Reuse_scheduler.order
  in
  let exploitable reqs =
    Idle_stats.exploitable_mass_s (Idle_stats.of_requests reqs) ~threshold_s:15.2
  in
  check Alcotest.bool "restructured idle mass larger" true
    (exploitable reuse > exploitable base)

let suites =
  [
    ( "trace",
      [
        Alcotest.test_case "cost model" `Quick test_cost_model;
        Alcotest.test_case "timing" `Quick test_trace_timing;
        Alcotest.test_case "file roundtrip" `Quick test_trace_roundtrip;
        Alcotest.test_case "malformed input" `Quick test_trace_malformed;
        Alcotest.test_case "hint roundtrip" `Quick test_hint_roundtrip;
        Alcotest.test_case "malformed hints" `Quick test_hint_malformed;
        Alcotest.test_case "fault line roundtrip" `Quick test_fault_line_roundtrip;
        Alcotest.test_case "loader line numbers" `Quick test_load_result_line_numbers;
        Alcotest.test_case "loader missing file" `Quick test_load_result_missing_file;
        Alcotest.test_case "loader file:line errors" `Quick
          test_load_result_reports_file_and_line;
        Alcotest.test_case "segment barriers" `Quick test_segments_barrier;
        Alcotest.test_case "original segments" `Quick test_original_segments;
        Alcotest.test_case "summary" `Quick test_summary;
        Alcotest.test_case "idle stats" `Quick test_idle_stats;
        Alcotest.test_case "restructuring lengthens gaps" `Slow
          test_idle_stats_restructuring_helps;
      ] );
  ]
