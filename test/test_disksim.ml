(* Tests for the disk model and the closed-loop power simulator. *)

module Disk_model = Dp_disksim.Disk_model
module Policy = Dp_disksim.Policy
module Engine = Dp_disksim.Engine
module Request = Dp_trace.Request
module Ir = Dp_ir.Ir

let check = Alcotest.check
let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let m = Disk_model.ultrastar_36z15

(* --- model --- *)

let test_model_levels () =
  check Alcotest.(list int) "RPM levels"
    [ 3000; 6000; 9000; 12000; 15000 ]
    (Disk_model.rpm_levels m);
  check Alcotest.int "level count" 5 (Disk_model.level_count m);
  check Alcotest.int "top level rpm" 15000 (Disk_model.rpm_of_level m (Disk_model.top_level m))

let test_model_service () =
  let at rpm = Disk_model.service_ms ~seek_distance:0 m ~rpm ~bytes:(64 * 1024) in
  (* Rotation and transfer scale with 15000/rpm. *)
  check (Alcotest.float 1e-9) "5x slower at 3000" (5.0 *. at 15000) (at 3000);
  let full = Disk_model.service_ms m ~rpm:15000 ~bytes:0 in
  check (Alcotest.float 1e-9) "full seek + rotation" (3.4 +. 2.0) full;
  check (Alcotest.float 1e-9) "short seek" (0.4 *. 3.4) (Disk_model.seek_ms_of_distance m 4096);
  check (Alcotest.float 1e-9) "long seek" 3.4
    (Disk_model.seek_ms_of_distance m (1024 * 1024 * 1024))

let test_model_power () =
  check (Alcotest.float 1e-9) "idle at max = datasheet" 10.2
    (Disk_model.idle_power_w m ~rpm:15000);
  check (Alcotest.float 1e-9) "active at max = datasheet" 13.5
    (Disk_model.active_power_w m ~rpm:15000);
  (* Quadratic: at min speed the idle power approaches standby. *)
  let low = Disk_model.idle_power_w m ~rpm:3000 in
  check Alcotest.bool "low idle close to standby" true (low > 2.5 && low < 3.5);
  (* Monotonicity over the levels. *)
  let rec mono = function
    | a :: (b :: _ as rest) ->
        Disk_model.idle_power_w m ~rpm:a < Disk_model.idle_power_w m ~rpm:b && mono rest
    | _ -> true
  in
  check Alcotest.bool "idle power increases with rpm" true (mono (Disk_model.rpm_levels m))

let test_model_transitions () =
  check (Alcotest.float 1e-9) "full spin-up time" 10.9
    (Disk_model.transition_s m ~rpm_from:0 ~rpm_to:15000);
  check (Alcotest.float 1e-6) "one level up time" (10.9 /. 5.)
    (Disk_model.transition_s m ~rpm_from:12000 ~rpm_to:15000);
  check (Alcotest.float 1e-9) "no-op" 0.0 (Disk_model.transition_s m ~rpm_from:9000 ~rpm_to:9000);
  check Alcotest.bool "drpm level transition is fast" true
    (Disk_model.drpm_level_transition_s m < 1.0)

(* --- engine helpers --- *)

let req ?(proc = 0) ?(seg = 0) ?(disk = 0) ?(lba = 0) ~think () =
  {
    Request.arrival_ms = 0.0 (* reference only *);
    think_ms = think;
    seg;
    address = lba;
    lba;
    size = 64 * 1024;
    mode = Ir.Read;
    proc;
    disk;
  }

let service_full = Disk_model.service_ms m ~rpm:15000 ~bytes:(64 * 1024)

let test_engine_base_two_requests () =
  (* Two requests separated by 100 ms of think time, one disk. *)
  let reqs = [ req ~think:10.0 (); req ~think:100.0 ~lba:(1024 * 1024 * 1024) () ] in
  let r = Engine.simulate ~disks:1 Policy.No_pm reqs in
  check Alcotest.int "two served" 2 r.Engine.per_disk.(0).Engine.requests;
  (* io time = two full-seek services (no queueing). *)
  check (Alcotest.float 1e-6) "io = services" (2.0 *. service_full) r.Engine.io_time_ms;
  check (Alcotest.float 1e-6) "makespan = thinks + services"
    (110.0 +. (2.0 *. service_full))
    r.Engine.makespan_ms;
  (* Energy: idle while thinking, active while serving. *)
  let expected =
    (10.2 *. (110.0 /. 1000.)) +. (13.5 *. (2.0 *. service_full /. 1000.))
  in
  check (Alcotest.float 1e-6) "energy by hand" expected r.Engine.energy_j

let test_engine_queueing () =
  (* Two processors issue at t=1ms to the same disk: the second queues. *)
  let reqs = [ req ~proc:0 ~think:1.0 (); req ~proc:1 ~think:1.0 ~lba:(1 lsl 30) () ] in
  let r = Engine.simulate ~disks:1 Policy.No_pm reqs in
  check (Alcotest.float 1e-6) "io includes queueing"
    (service_full +. (2.0 *. service_full))
    r.Engine.io_time_ms

let test_engine_tpm_reactive () =
  (* Gap of 60 s > threshold: spin down, reactive spin-up stalls. *)
  let reqs = [ req ~think:10.0 (); req ~think:60_000.0 ~lba:(1 lsl 30) () ] in
  let r = Engine.simulate ~disks:1 Policy.default_tpm reqs in
  let d = r.Engine.per_disk.(0) in
  check Alcotest.int "one spin down" 1 d.Engine.spin_downs;
  check Alcotest.int "one spin up" 1 d.Engine.spin_ups;
  check Alcotest.bool "standby time" true (d.Engine.standby_ms > 30_000.0);
  (* The second response includes the 10.9 s spin-up. *)
  check Alcotest.bool "stalled response" true (d.Engine.response_ms_max >= 10_900.0);
  (* Energy accounting by hand: idle threshold + spin down + standby +
     spin up + services + initial idle. *)
  let threshold = 15_200.0 and sd = 1_500.0 in
  let standby = 60_000.0 -. threshold -. sd in
  let expected =
    (10.2 *. ((10.0 +. threshold) /. 1000.))
    +. 13.0 +. 135.0
    +. (2.5 *. (standby /. 1000.))
    +. (13.5 *. (2.0 *. service_full /. 1000.))
  in
  check (Alcotest.float 0.5) "TPM energy by hand" expected r.Engine.energy_j

let test_engine_tpm_short_gap () =
  (* Gap below threshold: no transitions at all. *)
  let reqs = [ req ~think:10.0 (); req ~think:10_000.0 ~lba:(1 lsl 30) () ] in
  let r = Engine.simulate ~disks:1 Policy.default_tpm reqs in
  check Alcotest.int "no spin downs" 0 r.Engine.per_disk.(0).Engine.spin_downs;
  let base = Engine.simulate ~disks:1 Policy.No_pm reqs in
  check (Alcotest.float 1e-6) "same energy as base" base.Engine.energy_j r.Engine.energy_j

let test_engine_tpm_proactive () =
  let reqs = [ req ~think:10.0 (); req ~think:60_000.0 ~lba:(1 lsl 30) () ] in
  let reactive = Engine.simulate ~disks:1 Policy.default_tpm reqs in
  let proactive = Engine.simulate ~disks:1 (Policy.tpm ~proactive:true ()) reqs in
  (* No service stall... *)
  check (Alcotest.float 1e-6) "no stall"
    (2.0 *. service_full)
    proactive.Engine.io_time_ms;
  check Alcotest.bool "reactive stalls" true
    (reactive.Engine.io_time_ms > 10_000.0);
  (* ...and at least as much energy saved. *)
  let base = Engine.simulate ~disks:1 Policy.No_pm reqs in
  check Alcotest.bool "saves vs base" true
    (proactive.Engine.energy_j < base.Engine.energy_j);
  check Alcotest.int "spin down occurred" 1 proactive.Engine.per_disk.(0).Engine.spin_downs

let test_engine_drpm_downshift () =
  (* A 10 s gap with a 1 s per-level threshold: several levels down, then
     a serve ramps back up. *)
  let reqs = [ req ~think:10.0 (); req ~think:10_000.0 ~lba:(1 lsl 30) () ] in
  let r = Engine.simulate ~disks:1 Policy.default_drpm reqs in
  let d = r.Engine.per_disk.(0) in
  check Alcotest.bool "speed changed" true (d.Engine.speed_changes > 0);
  let base = Engine.simulate ~disks:1 Policy.No_pm reqs in
  check Alcotest.bool "saves energy" true (r.Engine.energy_j < base.Engine.energy_j);
  (* The second request is served below full speed: some slowdown. *)
  check Alcotest.bool "bounded slowdown" true
    (r.Engine.io_time_ms < 6.0 *. base.Engine.io_time_ms)

let test_engine_drpm_proactive () =
  let reqs = [ req ~think:10.0 (); req ~think:30_000.0 ~lba:(1 lsl 30) () ] in
  let reactive = Engine.simulate ~disks:1 Policy.default_drpm reqs in
  let proactive = Engine.simulate ~disks:1 (Policy.drpm ~proactive:true ()) reqs in
  (* No slowdown at all: both requests served at full speed. *)
  check (Alcotest.float 1e-6) "io = services" (2.0 *. service_full)
    proactive.Engine.io_time_ms;
  let base = Engine.simulate ~disks:1 Policy.No_pm reqs in
  check Alcotest.bool "saves vs base" true (proactive.Engine.energy_j < base.Engine.energy_j);
  check Alcotest.bool "at least as good as reactive" true
    (proactive.Engine.energy_j <= reactive.Engine.energy_j +. 1.0);
  check Alcotest.bool "planned shifts happened" true
    (proactive.Engine.per_disk.(0).Engine.speed_changes >= 2)

let test_engine_validation () =
  (match Engine.simulate ~disks:0 Policy.No_pm [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "disks=0 must be rejected");
  match Engine.simulate ~disks:1 Policy.No_pm [ req ~disk:3 ~think:1.0 () ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range disk must be rejected"

(* Random traces: physical sanity invariants under every policy. *)
let trace_gen =
  QCheck2.Gen.(
    list_size (int_range 1 25)
      (map2
         (fun think disk -> req ~think:(float_of_int think) ~disk ~lba:(disk * 7919 * 4096) ())
         (int_range 1 30_000) (int_range 0 2)))

let energy_bounds policy =
  qtest ~count:60
    (Printf.sprintf "Engine(%s): energy within physical bounds" (Policy.name policy))
    trace_gen
    (fun reqs ->
      let r = Engine.simulate ~disks:3 policy reqs in
      let span_s = r.Engine.makespan_ms /. 1000.0 in
      let upper = 3.0 *. 13.5 *. span_s +. 200.0 (* transitions *) in
      (* standby floor: no disk can consume less than standby power,
         minus nothing; transitions only add. *)
      let lower = 3.0 *. 2.5 *. span_s *. 0.99 in
      r.Engine.energy_j >= lower && r.Engine.energy_j <= upper +. 300.0)

let prop_io_time_consistent =
  qtest ~count:60 "Engine: io time >= sum of minimal services" trace_gen (fun reqs ->
      let r = Engine.simulate ~disks:3 Policy.No_pm reqs in
      let min_total =
        List.fold_left
          (fun acc (rq : Request.t) ->
            acc +. Disk_model.service_ms ~seek_distance:0 m ~rpm:15000 ~bytes:rq.size)
          0.0 reqs
      in
      r.Engine.io_time_ms >= min_total -. 1e-6)

let prop_proactive_never_slower =
  qtest ~count:60 "Engine: proactive TPM never inflates io time" trace_gen (fun reqs ->
      let base = Engine.simulate ~disks:3 Policy.No_pm reqs in
      let pro = Engine.simulate ~disks:3 (Policy.tpm ~proactive:true ()) reqs in
      pro.Engine.io_time_ms <= base.Engine.io_time_ms +. 1e-6
      && pro.Engine.energy_j <= base.Engine.energy_j +. 1e-6)

let prop_proactive_drpm_never_slower =
  qtest ~count:60 "Engine: proactive DRPM never inflates io time" trace_gen (fun reqs ->
      let base = Engine.simulate ~disks:3 Policy.No_pm reqs in
      let pro = Engine.simulate ~disks:3 (Policy.drpm ~proactive:true ()) reqs in
      pro.Engine.io_time_ms <= base.Engine.io_time_ms +. 1e-6)

let test_policy_names () =
  check Alcotest.string "none" "none" (Policy.name Policy.No_pm);
  check Alcotest.string "tpm" "TPM" (Policy.name Policy.default_tpm);
  check Alcotest.string "drpm" "DRPM" (Policy.name Policy.default_drpm)

let test_drpm_two_speed_floor () =
  (* With a 9000 floor, a long gap never reaches the bottom levels. *)
  let reqs = [ req ~think:10.0 (); req ~think:60_000.0 ~lba:(1 lsl 30) () ] in
  let floored = Engine.simulate ~disks:1 (Policy.drpm ~min_rpm:9000 ()) reqs in
  let full = Engine.simulate ~disks:1 Policy.default_drpm reqs in
  check Alcotest.bool "floored saves less" true
    (floored.Engine.energy_j > full.Engine.energy_j);
  (* Two levels down from 15000 to 9000: exactly 2 gap downshifts. *)
  check Alcotest.bool "at most 2 downshifts in the gap" true
    (floored.Engine.per_disk.(0).Engine.speed_changes <= 4)

let test_engine_segments_barrier () =
  (* Two procs, two segments: proc 1's segment-1 request cannot start
     before proc 0 finishes segment 0, even though its think is tiny. *)
  let r0 = req ~proc:0 ~seg:0 ~think:5_000.0 () in
  let r1 = { (req ~proc:1 ~seg:1 ~think:1.0 ~lba:(1 lsl 30) ()) with Request.disk = 0 } in
  let res = Engine.simulate ~disks:1 Policy.No_pm [ r0; r1 ] in
  (* makespan >= 5s + two services. *)
  check Alcotest.bool "barrier enforced" true
    (res.Engine.makespan_ms >= 5_000.0 +. (2.0 *. service_full) -. 1e-6)

(* --- timeline recording --- *)

module Timeline = Dp_disksim.Timeline

let test_timeline_recording () =
  let reqs = [ req ~think:10.0 (); req ~think:60_000.0 ~lba:(1 lsl 30) () ] in
  let r = Engine.simulate ~record_timeline:true ~disks:1 Policy.default_tpm reqs in
  let t = Option.get r.Engine.timeline in
  (* Segments are chronological and contiguous-ish, covering the stats. *)
  let segs = t.(0) in
  check Alcotest.bool "nonempty" true (segs <> []);
  let ordered =
    let rec ok = function
      | (a : Timeline.segment) :: (b :: _ as rest) -> a.stop_ms <= b.start_ms +. 1e-6 && ok rest
      | _ -> true
    in
    ok segs
  in
  check Alcotest.bool "chronological" true ordered;
  let d = r.Engine.per_disk.(0) in
  check (Alcotest.float 1.0) "busy matches stats" d.Engine.busy_ms
    (Timeline.state_time_ms t ~disk:0 Timeline.Busy);
  check (Alcotest.float 1.0) "standby matches stats" d.Engine.standby_ms
    (Timeline.state_time_ms t ~disk:0 Timeline.Standby);
  check (Alcotest.float 1.0) "idle matches stats" d.Engine.idle_ms
    (Timeline.state_time_ms t ~disk:0 (Timeline.Idle (-1)));
  (* The renderer produces one row plus the legend. *)
  let chart = Timeline.render ~width:40 ~model:m ~until_ms:r.Engine.makespan_ms t in
  check Alcotest.int "two lines" 2
    (List.length (String.split_on_char '\n' (String.trim chart)))

let test_timeline_absent_by_default () =
  let r = Engine.simulate ~disks:1 Policy.No_pm [ req ~think:1.0 () ] in
  check Alcotest.bool "no timeline" true (r.Engine.timeline = None)

(* --- fault injection and degraded-mode accounting --- *)

module Fault_model = Dp_faults.Fault_model
module Hint = Dp_trace.Hint

let all_policies =
  [
    Policy.No_pm;
    Policy.default_tpm;
    Policy.default_drpm;
    Policy.tpm ~proactive:true ();
    Policy.drpm ~proactive:true ();
  ]

(* Random traces paired with a random fault configuration. *)
let faulted_gen =
  QCheck2.Gen.(
    triple trace_gen (int_range 0 10_000)
      (map (fun r -> float_of_int r /. 100.0) (int_range 0 40)))

let prop_rate_zero_identity =
  qtest ~count:40 "Engine: rate-0 faults reproduce the fault-free run exactly"
    (QCheck2.Gen.pair trace_gen (QCheck2.Gen.int_range 0 10_000))
    (fun (reqs, seed) ->
      let faults = Fault_model.make ~seed ~rate:0.0 () in
      List.for_all
        (fun policy ->
          Engine.simulate ~record_timeline:true ~disks:3 policy reqs
          = Engine.simulate ~record_timeline:true ~faults ~disks:3 policy reqs)
        all_policies)

let prop_fault_determinism =
  qtest ~count:40 "Engine: same fault seed, same run" faulted_gen (fun (reqs, seed, rate) ->
      let faults = Fault_model.make ~seed ~rate () in
      List.for_all
        (fun policy ->
          Engine.simulate ~faults ~disks:3 policy reqs
          = Engine.simulate ~faults ~disks:3 policy reqs)
        all_policies)

let contiguous segs =
  let rec ok = function
    | (a : Timeline.segment) :: (b :: _ as rest) ->
        Float.abs (b.Timeline.start_ms -. a.Timeline.stop_ms) <= 1e-6
        && b.Timeline.stop_ms >= b.Timeline.start_ms -. 1e-9
        && ok rest
    | _ -> true
  in
  ok segs

let prop_timeline_contiguous =
  qtest ~count:40 "Engine: timeline segments contiguous and non-overlapping under faults"
    faulted_gen (fun (reqs, seed, rate) ->
      let faults = Fault_model.make ~seed ~rate () in
      List.for_all
        (fun policy ->
          let r = Engine.simulate ~record_timeline:true ~faults ~disks:3 policy reqs in
          let t = Option.get r.Engine.timeline in
          Array.for_all contiguous t)
        all_policies)

let prop_energy_conserved =
  qtest ~count:40 "Engine: segment energies sum to the per-disk totals under faults"
    faulted_gen (fun (reqs, seed, rate) ->
      let faults = Fault_model.make ~seed ~rate () in
      List.for_all
        (fun policy ->
          let r = Engine.simulate ~record_timeline:true ~faults ~disks:3 policy reqs in
          let t = Option.get r.Engine.timeline in
          Array.for_all
            (fun (d : Engine.disk_stats) ->
              let tl = Timeline.total_energy_j t ~disk:d.Engine.disk in
              Float.abs (tl -. d.Engine.energy_j)
              <= 1e-6 *. Float.max 1.0 d.Engine.energy_j)
            r.Engine.per_disk)
        all_policies)

let prop_faults_terminate =
  (* Even at rate 1 with every class enabled, bounded retries mean the
     run completes and every request is served. *)
  qtest ~count:30 "Engine: rate-1 faults still terminate, all requests served" trace_gen
    (fun reqs ->
      let faults = Fault_model.make ~seed:1 ~rate:1.0 () in
      List.for_all
        (fun policy ->
          let r = Engine.simulate ~faults ~disks:3 policy reqs in
          let served =
            Array.fold_left (fun acc d -> acc + d.Engine.requests) 0 r.Engine.per_disk
          in
          served = List.length reqs && Float.is_finite r.Engine.makespan_ms)
        all_policies)

let test_spin_up_retries_accounted () =
  (* TPM over a long gap with certain spin-up faults: the reactive
     spin-up needs max_attempts tries, each a full spin-up. *)
  let reqs = [ req ~think:10.0 (); req ~think:60_000.0 ~lba:(1 lsl 30) () ] in
  let faults = Fault_model.make ~classes:[ Fault_model.Spin_up_failure ] ~seed:1 ~rate:1.0 () in
  let retry = Policy.retry ~max_attempts:3 () in
  let clean = Engine.simulate ~disks:1 Policy.default_tpm reqs in
  let r = Engine.simulate ~faults ~retry ~disks:1 Policy.default_tpm reqs in
  let d = r.Engine.per_disk.(0) in
  check Alcotest.int "two failed attempts" 2 d.Engine.spin_up_retries;
  check (Alcotest.float 1e-6) "degraded = failed attempts" (2.0 *. 10_900.0) d.Engine.degraded_ms;
  check (Alcotest.float 0.5) "energy = clean + 2 spin-ups"
    (clean.Engine.energy_j +. (2.0 *. 135.0))
    r.Engine.energy_j;
  check Alcotest.bool "stall grew by the failed attempts" true
    (r.Engine.io_time_ms >= clean.Engine.io_time_ms +. (2.0 *. 10_900.0) -. 1e-6)

let test_media_retries_accounted () =
  let reqs = [ req ~think:10.0 (); req ~think:100.0 ~lba:(1 lsl 30) () ] in
  let faults = Fault_model.make ~classes:[ Fault_model.Media_error ] ~seed:1 ~rate:1.0 () in
  let retry = Policy.retry ~max_attempts:2 ~backoff_base_ms:5.0 () in
  let clean = Engine.simulate ~disks:1 Policy.No_pm reqs in
  let r = Engine.simulate ~faults ~retry ~disks:1 Policy.No_pm reqs in
  let d = r.Engine.per_disk.(0) in
  check Alcotest.int "one retry per request" 2 d.Engine.media_retries;
  let reread = Disk_model.service_ms ~seek_distance:0 m ~rpm:15000 ~bytes:(64 * 1024) in
  check (Alcotest.float 1e-6) "degraded = backoff + re-service"
    (2.0 *. (5.0 +. reread))
    d.Engine.degraded_ms;
  check Alcotest.bool "io time grew" true (r.Engine.io_time_ms > clean.Engine.io_time_ms)

let test_latency_spikes_accounted () =
  let reqs = [ req ~think:10.0 (); req ~think:100.0 ~lba:(1 lsl 30) () ] in
  let faults =
    Fault_model.make ~classes:[ Fault_model.Latency_spike ] ~spike_ms:50.0 ~seed:1 ~rate:1.0 ()
  in
  let r = Engine.simulate ~faults ~disks:1 Policy.No_pm reqs in
  let d = r.Engine.per_disk.(0) in
  check Alcotest.int "every request spikes" 2 d.Engine.latency_spikes;
  check (Alcotest.float 1e-6) "degraded = spikes" 100.0 d.Engine.degraded_ms

let test_stuck_rpm_hinted_fallback () =
  (* A hinted proactive DRPM run whose speed commands are all refused:
     the directives are invalidated, the policy degrades to its reactive
     twin, and the run still completes with every request served. *)
  let r2 = { (req ~think:30_000.0 ~lba:(1 lsl 30) ()) with Request.arrival_ms = 30_010.0 } in
  let reqs = [ req ~think:10.0 (); r2 ] in
  let hints = [ { Hint.at_ms = 30_000.0; disk = 0; action = Hint.Set_rpm 3000 } ] in
  let faults =
    Fault_model.make ~classes:[ Fault_model.Stuck_rpm ] ~stuck_window_ms:1e9 ~seed:1 ~rate:1.0 ()
  in
  let policy = Policy.drpm ~proactive:true () in
  let clean = Engine.simulate ~hints ~disks:1 policy reqs in
  let r = Engine.simulate ~hints ~faults ~disks:1 policy reqs in
  let d = r.Engine.per_disk.(0) in
  check Alcotest.int "both served despite refused shifts" 2 d.Engine.requests;
  check Alcotest.bool "terminates" true (Float.is_finite r.Engine.makespan_ms);
  (* The clean run dips and recovers; the stuck run is pinned at full
     speed (the lock hits before any downshift), so it spends more. *)
  check Alcotest.int "no speed changes under the lock" 0 d.Engine.speed_changes;
  check Alcotest.bool "stuck run spends more" true (r.Engine.energy_j > clean.Engine.energy_j)

let test_rate_zero_with_hints () =
  let r2 = { (req ~think:30_000.0 ~lba:(1 lsl 30) ()) with Request.arrival_ms = 30_010.0 } in
  let reqs = [ req ~think:10.0 (); r2 ] in
  let hints = [ { Hint.at_ms = 30_000.0; disk = 0; action = Hint.Set_rpm 3000 } ] in
  let faults = Fault_model.make ~seed:9 ~rate:0.0 () in
  List.iter
    (fun policy ->
      check Alcotest.bool (Policy.name policy ^ " hinted rate-0 identical") true
        (Engine.simulate ~record_timeline:true ~hints ~disks:1 policy reqs
        = Engine.simulate ~record_timeline:true ~hints ~faults ~disks:1 policy reqs))
    [ Policy.tpm ~proactive:true (); Policy.drpm ~proactive:true () ]

(* --- observability: the event stream is exact --- *)

module Obs_event = Dp_obs.Event
module Sink = Dp_obs.Sink

let prop_events_reproduce_stats =
  (* Summing the Power events' charges per state reproduces the engine's
     per-disk accounting with exact float equality: emission follows the
     stat updates operation for operation, so the same additions happen
     in the same order.  Service/energy events agree likewise. *)
  qtest ~count:40 "Engine: obs event charges sum to the per-disk stats exactly" faulted_gen
    (fun (reqs, seed, rate) ->
      let faults = Fault_model.make ~seed ~rate () in
      List.for_all
        (fun policy ->
          let sink = Sink.ring ~capacity:(1 lsl 20) () in
          let r = Engine.simulate ~obs:sink ~faults ~disks:3 policy reqs in
          let events = Sink.events sink in
          Sink.dropped sink = 0
          && Array.for_all
               (fun (d : Engine.disk_stats) ->
                 let busy = ref 0.0 and idle = ref 0.0 and standby = ref 0.0 in
                 let trans = ref 0.0 and energy = ref 0.0 and served = ref 0 in
                 List.iter
                   (function
                     | Obs_event.Power p when p.disk = d.Engine.disk -> (
                         energy := !energy +. p.energy_j;
                         match p.state with
                         | Obs_event.Active -> busy := !busy +. p.charge_ms
                         | Obs_event.Idle _ -> idle := !idle +. p.charge_ms
                         | Obs_event.Standby -> standby := !standby +. p.charge_ms
                         | Obs_event.Transition -> trans := !trans +. p.charge_ms)
                     | Obs_event.Service s when s.disk = d.Engine.disk -> incr served
                     | _ -> ())
                   events;
                 !busy = d.Engine.busy_ms && !idle = d.Engine.idle_ms
                 && !standby = d.Engine.standby_ms
                 && !trans = d.Engine.transition_ms
                 && !energy = d.Engine.energy_j
                 && !served = d.Engine.requests)
               r.Engine.per_disk)
        all_policies)

let test_wear_fraction () =
  let reqs = [ req ~think:10.0 (); req ~think:60_000.0 ~lba:(1 lsl 30) () ] in
  let r = Engine.simulate ~disks:1 Policy.default_tpm reqs in
  let d = r.Engine.per_disk.(0) in
  check Alcotest.int "one start-stop cycle" 1 d.Engine.spin_downs;
  check (Alcotest.float 1e-12) "wear = downs / rated"
    (1.0 /. float_of_int m.Disk_model.rated_start_stop_cycles)
    (Engine.wear_fraction m d);
  check Alcotest.int "rated budget is 50k" 50_000 m.Disk_model.rated_start_stop_cycles

let test_backoff_bounded () =
  let rc = Policy.retry ~max_attempts:10 ~backoff_base_ms:5.0 ~backoff_cap_ms:80.0 () in
  check (Alcotest.float 1e-9) "first" 5.0 (Policy.backoff_ms rc ~attempt:1);
  check (Alcotest.float 1e-9) "doubles" 10.0 (Policy.backoff_ms rc ~attempt:2);
  check (Alcotest.float 1e-9) "capped" 80.0 (Policy.backoff_ms rc ~attempt:9);
  (match Policy.retry ~max_attempts:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "max_attempts=0 must be rejected");
  (* reactive_fallback strips proactivity and nothing else. *)
  match Policy.reactive_fallback (Policy.drpm ~proactive:true ~min_rpm:9000 ()) with
  | Policy.Drpm c ->
      check Alcotest.bool "proactive cleared" false c.Policy.proactive;
      check Alcotest.(option int) "floor kept" (Some 9000) c.Policy.min_rpm
  | _ -> Alcotest.fail "fallback changed the policy family"

(* --- sharding: component-parallel runs reproduce serial byte for byte --- *)

let shard_counts = [ 1; 2; 4; 8 ]

(* Four procs touring four disjoint disk pairs across three segments:
   every segment splits into four shard groups, so shards > 1 actually
   exercises the parallel path (a single-component trace would just run
   serially whatever the cap says). *)
let disjoint_trace =
  List.concat_map
    (fun p ->
      List.concat_map
        (fun s ->
          List.init 6 (fun i ->
              req ~proc:p ~seg:s
                ~disk:((2 * p) + (i mod 2))
                ~lba:(i * 7919 * 4096)
                ~think:(float_of_int ((p + 1) * 911 * (i + 1) mod 20_000))
                ()))
        [ 0; 1; 2 ])
    [ 0; 1; 2; 3 ]

let test_shards_identity () =
  List.iter
    (fun policy ->
      let serial = Engine.simulate ~record_timeline:true ~disks:8 policy disjoint_trace in
      List.iter
        (fun shards ->
          let sharded =
            Engine.simulate ~record_timeline:true ~shards ~disks:8 policy disjoint_trace
          in
          check Alcotest.bool
            (Printf.sprintf "%s --shards %d = serial" (Policy.name policy) shards)
            true (serial = sharded))
        shard_counts)
    all_policies

let test_shards_identity_faulted () =
  (* Transient faults, media decay (arming the repair domain, which
     collapses observed runs to one group but must stay identical), and
     a deadline with failover — across every shard count. *)
  let cases =
    [
      (Some (Fault_model.make ~seed:7 ~rate:0.05 ()), None);
      ( Some (Fault_model.make ~classes:[ Fault_model.Media_decay ] ~seed:11 ~rate:0.3 ()),
        Some 500.0 );
      (None, Some 200.0);
    ]
  in
  List.iter
    (fun (faults, deadline_ms) ->
      let serial =
        Engine.simulate ~record_timeline:true ?faults ?deadline_ms ~disks:8
          Policy.default_tpm disjoint_trace
      in
      List.iter
        (fun shards ->
          let sharded =
            Engine.simulate ~record_timeline:true ?faults ?deadline_ms ~shards ~disks:8
              Policy.default_tpm disjoint_trace
          in
          check Alcotest.bool
            (Printf.sprintf "faulted --shards %d = serial" shards)
            true (serial = sharded))
        shard_counts)
    cases

let test_shards_obs_order () =
  (* The re-merged event stream must replay the serial emission order
     exactly — same events, same order, not just the same multiset. *)
  let record shards =
    let sink = Dp_obs.Sink.ring ~capacity:65_536 () in
    let r =
      Engine.simulate ~obs:sink ?shards ~disks:8 (Policy.tpm ~proactive:true ())
        disjoint_trace
    in
    (r, Dp_obs.Sink.events sink)
  in
  let r1, e1 = record None in
  check Alcotest.bool "events recorded" true (e1 <> []);
  List.iter
    (fun n ->
      let r2, e2 = record (Some n) in
      check Alcotest.bool (Printf.sprintf "result identical at shards %d" n) true (r1 = r2);
      check Alcotest.bool
        (Printf.sprintf "event stream identical at shards %d" n)
        true (e1 = e2))
    shard_counts

let test_shards_validation () =
  match Engine.simulate ~shards:0 ~disks:1 Policy.No_pm [ req ~think:1.0 () ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "shards=0 must be rejected"

(* Random multi-component traces (proc p owns disk p) under random
   fault seeds: sharded and serial runs stay structurally equal. *)
let sharded_gen =
  QCheck2.Gen.(
    triple
      (list_size (int_range 1 30)
         (map3
            (fun think pd i ->
              req ~proc:pd ~seg:(i mod 3) ~disk:pd ~lba:(i * 7919 * 4096)
                ~think:(float_of_int think) ())
            (int_range 1 30_000) (int_range 0 2) (int_range 0 50)))
      (int_range 0 10_000)
      (map (fun r -> float_of_int r /. 100.0) (int_range 0 40)))

let prop_shards_identity =
  qtest ~count:30 "Engine: sharded faulted runs byte-identical to serial" sharded_gen
    (fun (reqs, seed, rate) ->
      let faults = Fault_model.make ~seed ~rate () in
      List.for_all
        (fun policy ->
          let serial =
            Engine.simulate ~record_timeline:true ~faults ~disks:3 policy reqs
          in
          List.for_all
            (fun shards ->
              serial
              = Engine.simulate ~record_timeline:true ~faults ~shards ~disks:3 policy
                  reqs)
            [ 2; 8 ])
        all_policies)

let suites =
  [
    ( "disksim.model",
      [
        Alcotest.test_case "levels" `Quick test_model_levels;
        Alcotest.test_case "service" `Quick test_model_service;
        Alcotest.test_case "power" `Quick test_model_power;
        Alcotest.test_case "transitions" `Quick test_model_transitions;
      ] );
    ( "disksim.engine",
      [
        Alcotest.test_case "base two requests" `Quick test_engine_base_two_requests;
        Alcotest.test_case "queueing" `Quick test_engine_queueing;
        Alcotest.test_case "TPM reactive" `Quick test_engine_tpm_reactive;
        Alcotest.test_case "TPM short gap" `Quick test_engine_tpm_short_gap;
        Alcotest.test_case "TPM proactive" `Quick test_engine_tpm_proactive;
        Alcotest.test_case "DRPM downshift" `Quick test_engine_drpm_downshift;
        Alcotest.test_case "DRPM proactive" `Quick test_engine_drpm_proactive;
        Alcotest.test_case "validation" `Quick test_engine_validation;
        energy_bounds Policy.No_pm;
        energy_bounds Policy.default_tpm;
        energy_bounds Policy.default_drpm;
        energy_bounds (Policy.tpm ~proactive:true ());
        energy_bounds (Policy.drpm ~proactive:true ());
        prop_io_time_consistent;
        prop_proactive_never_slower;
        prop_proactive_drpm_never_slower;
      ] );
    ( "disksim.policies",
      [
        Alcotest.test_case "names" `Quick test_policy_names;
        Alcotest.test_case "two-speed floor" `Quick test_drpm_two_speed_floor;
        Alcotest.test_case "segment barrier" `Quick test_engine_segments_barrier;
      ] );
    ( "disksim.timeline",
      [
        Alcotest.test_case "recording" `Quick test_timeline_recording;
        Alcotest.test_case "absent by default" `Quick test_timeline_absent_by_default;
      ] );
    ( "disksim.faults",
      [
        prop_rate_zero_identity;
        prop_fault_determinism;
        prop_timeline_contiguous;
        prop_energy_conserved;
        prop_faults_terminate;
        Alcotest.test_case "spin-up retries accounted" `Quick test_spin_up_retries_accounted;
        Alcotest.test_case "media retries accounted" `Quick test_media_retries_accounted;
        Alcotest.test_case "latency spikes accounted" `Quick test_latency_spikes_accounted;
        Alcotest.test_case "stuck-RPM hinted fallback" `Quick test_stuck_rpm_hinted_fallback;
        Alcotest.test_case "rate zero with hints" `Quick test_rate_zero_with_hints;
        Alcotest.test_case "wear fraction" `Quick test_wear_fraction;
        Alcotest.test_case "retry config" `Quick test_backoff_bounded;
      ] );
    ( "disksim.shards",
      [
        Alcotest.test_case "identity across policies" `Quick test_shards_identity;
        Alcotest.test_case "identity under faults/decay/deadline" `Quick
          test_shards_identity_faulted;
        Alcotest.test_case "obs event order" `Quick test_shards_obs_order;
        Alcotest.test_case "validation" `Quick test_shards_validation;
        prop_shards_identity;
      ] );
    ("disksim.obs", [ prop_events_reproduce_stats ]);
  ]
