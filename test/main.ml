let () =
  Alcotest.run "dpower"
    (Test_util.suites @ Test_affine.suites @ Test_ir.suites @ Test_lang.suites
   @ Test_dependence.suites @ Test_polyhedra.suites @ Test_layout.suites
   @ Test_restructure.suites @ Test_trace.suites @ Test_faults.suites
   @ Test_repair.suites @ Test_disksim.suites @ Test_oracle.suites @ Test_cache.suites @ Test_cachefs.suites
   @ Test_workloads.suites
   @ Test_harness.suites @ Test_obs.suites @ Test_pipeline.suites @ Test_serve.suites
   @ Test_chaos.suites @ Test_cli.suites)
