(* The staged pipeline: the domain pool's determinism, the stage
   memoization contract, and golden equivalence between the CLI path
   (dpcc trace) and the Runner path (Pipeline stages) for every matrix
   version at 1, 4 and 8 processors. *)

module Pipeline = Dp_pipeline.Pipeline
module Domain_pool = Dp_pipeline.Domain_pool
module Version = Dp_harness.Version
module Experiments = Dp_harness.Experiments
module Json_out = Dp_harness.Json_out
module Request = Dp_trace.Request
module Policy = Dp_disksim.Policy

let check = Alcotest.check

let programs_dir =
  let dir = "examples/programs" in
  if Sys.file_exists dir then dir else Filename.concat ".." dir

let transpose = Filename.concat programs_dir "transpose.dpl"

(* --- Domain_pool --- *)

let test_pool_order () =
  let xs = List.init 100 Fun.id in
  let expect = List.map (fun x -> x * x) xs in
  List.iter
    (fun jobs ->
      check
        Alcotest.(list int)
        (Printf.sprintf "jobs=%d preserves input order" jobs)
        expect
        (Domain_pool.map ~jobs (fun x -> x * x) xs))
    [ 1; 2; 4; 7 ]

let test_pool_edges () =
  check Alcotest.(list int) "empty input" [] (Domain_pool.map ~jobs:4 Fun.id []);
  check Alcotest.(list int) "singleton input" [ 7 ] (Domain_pool.map ~jobs:4 Fun.id [ 7 ]);
  check Alcotest.bool "jobs < 1 rejected" true
    (match Domain_pool.map ~jobs:0 Fun.id [ 1 ] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check Alcotest.bool "default_jobs >= 1" true (Domain_pool.default_jobs () >= 1)

exception Boom of int

let test_pool_first_error_wins () =
  (* Claims are monotonic in input order, so the lowest failing index is
     always reached before any later one — the parallel map re-raises
     the same exception the serial map would. *)
  let xs = List.init 20 (fun i -> i + 1) in
  let f x = if x mod 3 = 0 then raise (Boom x) else x in
  check Alcotest.int "first failure in input order" 3
    (match Domain_pool.map ~jobs:4 f xs with
    | _ -> Alcotest.fail "expected Boom"
    | exception Boom n -> n)

(* --- stage memoization --- *)

let test_memo_sharing () =
  let ctx = Pipeline.load transpose in
  let versions = Version.multi_cpu @ Version.oracle in
  List.iter (fun v -> ignore (Dp_harness.Runner.run ctx ~procs:4 v)) versions;
  let st = Pipeline.stats ctx in
  check Alcotest.int "graph built once for 9 rows" 1 st.Pipeline.graph_builds;
  (* Three execution-order families -> three stream/trace builds. *)
  check Alcotest.int "one streams build per mode" 3 st.Pipeline.stream_builds;
  check Alcotest.int "one trace build per mode" 3 st.Pipeline.trace_builds;
  (* Only the proactive-TPM rows carry hints: (single, Tpm) and
     (multi, Tpm). *)
  check Alcotest.int "hint streams built per (mode, space)" 2 st.Pipeline.hint_builds;
  check Alcotest.bool "repeat lookups hit the memo" true (st.Pipeline.memo_hits > 0)

let test_memo_same_result () =
  let ctx = Pipeline.load transpose in
  let t1 = Pipeline.trace ctx ~procs:4 Pipeline.Reuse_multi in
  let t2 = Pipeline.trace ctx ~procs:4 Pipeline.Reuse_multi in
  check Alcotest.bool "memoized stage returns the same trace" true (t1 == t2)

let test_derive_shares_graph () =
  let ctx = Pipeline.load transpose in
  let g = Pipeline.graph ctx in
  let layout =
    Dp_layout.Layout.make
      ~default:(Dp_layout.Striping.make ~unit_bytes:65536 ~factor:4 ~start_disk:1)
      (Pipeline.program ctx)
  in
  let dctx = Pipeline.derive ~layout ctx in
  check Alcotest.bool "derived context reuses the built graph" true (Pipeline.graph dctx == g);
  check Alcotest.int "no second graph build" 0 (Pipeline.stats dctx).Pipeline.graph_builds;
  check Alcotest.bool "derived traces differ (layout-dependent)" true
    (Pipeline.trace dctx ~procs:1 Pipeline.Original
    <> Pipeline.trace ctx ~procs:1 Pipeline.Original)

let test_mode_names () =
  List.iter
    (fun m ->
      check Alcotest.bool
        (Printf.sprintf "mode %s round-trips" (Pipeline.mode_name m))
        true
        (Pipeline.mode_of_name (Pipeline.mode_name m) = Some m))
    [ Pipeline.Original; Pipeline.Reuse_single; Pipeline.Reuse_multi ];
  check Alcotest.bool "unknown mode name" true (Pipeline.mode_of_name "bogus" = None)

let test_multi_needs_procs () =
  let ctx = Pipeline.load transpose in
  check Alcotest.bool "Reuse_multi at 1 processor rejected" true
    (match Pipeline.trace ctx ~procs:1 Pipeline.Reuse_multi with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- golden: CLI trace = Runner-path trace, per version and procs --- *)

let cli_flags version =
  match Version.mode version with
  | Pipeline.Original -> []
  | Pipeline.Reuse_single -> [ "--restructure"; "--mode"; "single" ]
  | Pipeline.Reuse_multi -> [ "--restructure"; "--mode"; "multi" ]

let test_cli_matches_runner () =
  let ctx = Pipeline.load transpose in
  List.iter
    (fun procs ->
      List.iter
        (fun version ->
          let mode = Version.mode version in
          if not (mode = Pipeline.Reuse_multi && procs = 1) then begin
            let cli_file = Filename.temp_file "dpower_cli" ".trace" in
            let lib_file = Filename.temp_file "dpower_lib" ".trace" in
            Fun.protect
              ~finally:(fun () ->
                Sys.remove cli_file;
                Sys.remove lib_file)
              (fun () ->
                let code, _, err =
                  Test_cli.run
                    ([ Test_cli.dpcc; "trace"; transpose; "--procs"; string_of_int procs ]
                    @ cli_flags version
                    @ [ "-o"; cli_file ])
                in
                check Alcotest.int
                  (Printf.sprintf "dpcc trace %s/%dp exits 0 (stderr %S)"
                     (Version.name version) procs err)
                  0 code;
                Request.save lib_file (Pipeline.trace ctx ~procs mode);
                check Alcotest.string
                  (Printf.sprintf "trace bytes %s at %d proc(s)" (Version.name version)
                     procs)
                  (Test_cli.slurp lib_file) (Test_cli.slurp cli_file))
          end)
        (Version.multi_cpu @ Version.oracle))
    [ 1; 4; 8 ]

(* --- property: --jobs N output is byte-identical to --jobs 1 --- *)

let sweep_json ~jobs ~seed ~rate app =
  Json_out.to_string
    (Json_out.of_sweep
       (Experiments.fault_sweep ~seed ~rates:[ 0.0; rate ] ~jobs ~procs:4
          ~versions:Version.multi_cpu app))

let matrix_json ~jobs ~faults app =
  Json_out.to_string
    (Json_out.of_matrix
       (Experiments.build_matrix ~apps:[ app ] ~faults ~jobs ~procs:4
          ~versions:(Version.multi_cpu @ Version.oracle) ()))

let test_jobs_deterministic =
  QCheck.Test.make ~count:5 ~name:"matrix and sweep JSON independent of --jobs"
    QCheck.(pair (int_bound 10_000) (int_bound 200))
    (fun (seed, rate_millis) ->
      let rate = float_of_int rate_millis /. 1000.0 in
      let app = Pipeline.app (Pipeline.load transpose) in
      let faults = Dp_faults.Fault_model.make ~seed ~rate () in
      String.equal (matrix_json ~jobs:1 ~faults app) (matrix_json ~jobs:4 ~faults app)
      && String.equal (sweep_json ~jobs:1 ~seed ~rate app)
           (sweep_json ~jobs:4 ~seed ~rate app))

let suites =
  [
    ( "pipeline",
      [
        Alcotest.test_case "pool preserves order" `Quick test_pool_order;
        Alcotest.test_case "pool edge cases" `Quick test_pool_edges;
        Alcotest.test_case "pool first error wins" `Quick test_pool_first_error_wins;
        Alcotest.test_case "stage memo sharing" `Quick test_memo_sharing;
        Alcotest.test_case "memoized trace is shared" `Quick test_memo_same_result;
        Alcotest.test_case "derive shares the graph" `Quick test_derive_shares_graph;
        Alcotest.test_case "mode names round-trip" `Quick test_mode_names;
        Alcotest.test_case "multi mode needs procs > 1" `Quick test_multi_needs_procs;
        Alcotest.test_case "golden: CLI trace = Runner trace" `Slow test_cli_matches_runner;
        QCheck_alcotest.to_alcotest test_jobs_deterministic;
      ] );
  ]
