(* The staged pipeline: the domain pool's determinism, the stage
   memoization contract, and golden equivalence between the CLI path
   (dpcc trace) and the Runner path (Pipeline stages) for every matrix
   version at 1, 4 and 8 processors. *)

module Pipeline = Dp_pipeline.Pipeline
module Domain_pool = Dp_pipeline.Domain_pool
module Version = Dp_harness.Version
module Experiments = Dp_harness.Experiments
module Json_out = Dp_harness.Json_out
module Request = Dp_trace.Request
module Policy = Dp_disksim.Policy

let check = Alcotest.check

let programs_dir =
  let dir = "examples/programs" in
  if Sys.file_exists dir then dir else Filename.concat ".." dir

let transpose = Filename.concat programs_dir "transpose.dpl"

(* --- Domain_pool --- *)

let test_pool_order () =
  let xs = List.init 100 Fun.id in
  let expect = List.map (fun x -> x * x) xs in
  List.iter
    (fun jobs ->
      check
        Alcotest.(list int)
        (Printf.sprintf "jobs=%d preserves input order" jobs)
        expect
        (Domain_pool.map ~jobs (fun x -> x * x) xs))
    [ 1; 2; 4; 7 ]

let test_pool_edges () =
  check Alcotest.(list int) "empty input" [] (Domain_pool.map ~jobs:4 Fun.id []);
  check Alcotest.(list int) "singleton input" [ 7 ] (Domain_pool.map ~jobs:4 Fun.id [ 7 ]);
  check Alcotest.bool "jobs < 1 rejected" true
    (match Domain_pool.map ~jobs:0 Fun.id [ 1 ] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check Alcotest.bool "default_jobs >= 1" true (Domain_pool.default_jobs () >= 1)

exception Boom of int

let test_pool_first_error_wins () =
  let xs = List.init 20 (fun i -> i + 1) in
  let f x = if x mod 3 = 0 then raise (Boom x) else x in
  check Alcotest.int "first failure in input order" 3
    (match Domain_pool.map ~jobs:4 f xs with
    | _ -> Alcotest.fail "expected Boom"
    | exception Boom n -> n)

(* Supervision property: with any subset of tasks failing, the pool
   still fills every non-failing slot (no poisoning, no abandoned
   work), and the exception that escapes is the first in input order —
   however many failed, and whichever failed first in wall time. *)
let test_pool_multi_failure =
  let module Splitmix = Dp_util.Splitmix in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:100 ~name:"pool: multi-failure ordering and sibling isolation"
       QCheck2.Gen.(pair (int_range 1 40) (int_bound 100_000))
       (fun (n, seed) ->
         let rng = Splitmix.create seed in
         let fails = Array.init n (fun _ -> Splitmix.bool rng ~p:0.3) in
         if not (Array.exists Fun.id fails) then fails.(seed mod n) <- true;
         let first =
           let rec go i = if fails.(i) then i else go (i + 1) in
           go 0
         in
         let filled = Array.make n false in
         let f i =
           if fails.(i) then raise (Boom i)
           else begin
             filled.(i) <- true;
             i
           end
         in
         match Domain_pool.map ~jobs:4 f (List.init n Fun.id) with
         | _ -> QCheck2.Test.fail_reportf "no exception escaped"
         | exception Boom k ->
             if k <> first then
               QCheck2.Test.fail_reportf "raised Boom %d, first failing input is %d" k first;
             Array.iteri
               (fun i ok ->
                 if ok = fails.(i) then
                   QCheck2.Test.fail_reportf "slot %d %s" i
                     (if fails.(i) then "filled but should have failed"
                      else "abandoned by the pool"))
               filled;
             true))

let test_pool_transient_retry () =
  (* Two transient failures per task are absorbed by the default retry
     budget... *)
  let attempts = Array.make 5 0 in
  let f i =
    attempts.(i) <- attempts.(i) + 1;
    if attempts.(i) <= 2 then raise (Domain_pool.Transient (Boom i)) else i
  in
  check
    Alcotest.(list int)
    "transient failures retried to success" [ 0; 1; 2; 3; 4 ]
    (Domain_pool.map ~jobs:2 f (List.init 5 Fun.id));
  (* ...but an exhausted budget surfaces the inner exception, not the
     Transient wrapper. *)
  check Alcotest.int "exhausted retries re-raise the inner exception" 42
    (match
       Domain_pool.map ~retries:1 ~jobs:2 (fun _ -> raise (Domain_pool.Transient (Boom 42))) [ 0 ]
     with
    | _ -> Alcotest.fail "expected Boom"
    | exception Boom n -> n);
  check Alcotest.bool "negative retries rejected" true
    (match Domain_pool.map ~retries:(-1) ~jobs:1 Fun.id [ 1 ] with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- stage memoization --- *)

let test_memo_sharing () =
  let ctx = Pipeline.load transpose in
  let versions = Version.multi_cpu @ Version.oracle in
  List.iter (fun v -> ignore (Dp_harness.Runner.run ctx ~procs:4 v)) versions;
  let st = Pipeline.stats ctx in
  check Alcotest.int "graph built once for 9 rows" 1 st.Pipeline.graph_builds;
  (* Three execution-order families -> three stream/trace builds. *)
  check Alcotest.int "one streams build per mode" 3 st.Pipeline.stream_builds;
  check Alcotest.int "one trace build per mode" 3 st.Pipeline.trace_builds;
  (* Only the proactive-TPM rows carry hints: (single, Tpm) and
     (multi, Tpm). *)
  check Alcotest.int "hint streams built per (mode, space)" 2 st.Pipeline.hint_builds;
  check Alcotest.bool "repeat lookups hit the memo" true (st.Pipeline.memo_hits > 0)

let test_memo_same_result () =
  let ctx = Pipeline.load transpose in
  let t1 = Pipeline.trace ctx ~procs:4 Pipeline.Reuse_multi in
  let t2 = Pipeline.trace ctx ~procs:4 Pipeline.Reuse_multi in
  check Alcotest.bool "memoized stage returns the same trace" true (t1 == t2)

let test_derive_shares_graph () =
  let ctx = Pipeline.load transpose in
  let g = Pipeline.graph ctx in
  let layout =
    Dp_layout.Layout.make
      ~default:(Dp_layout.Striping.make ~unit_bytes:65536 ~factor:4 ~start_disk:1)
      (Pipeline.program ctx)
  in
  let dctx = Pipeline.derive ~layout ctx in
  check Alcotest.bool "derived context reuses the built graph" true (Pipeline.graph dctx == g);
  check Alcotest.int "no second graph build" 0 (Pipeline.stats dctx).Pipeline.graph_builds;
  check Alcotest.bool "derived traces differ (layout-dependent)" true
    (Pipeline.trace dctx ~procs:1 Pipeline.Original
    <> Pipeline.trace ctx ~procs:1 Pipeline.Original)

(* --- the persistent stage cache, through the pipeline --- *)

module Cachefs = Dp_cachefs.Cachefs

let cache_dir_counter = ref 0

let fresh_cache_dir () =
  incr cache_dir_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "dpower-pipeline-cache-%d-%d" (Unix.getpid ()) !cache_dir_counter)

let store dir =
  match Cachefs.open_store ~dir () with
  | Ok c -> c
  | Error msg -> Alcotest.failf "open_store: %s" msg

(* Replays what Runner.run asks of a context, in Runner's order (rounds
   before trace), for one restructured cell plus its hint stream. *)
let drive ctx =
  let rounds = Pipeline.rounds ctx ~procs:4 Pipeline.Reuse_multi in
  let trace = Pipeline.trace ctx ~procs:4 Pipeline.Reuse_multi in
  let hints =
    Pipeline.hints ctx ~procs:4 ~space:Dp_oracle.Oracle.Tpm_space Pipeline.Reuse_multi
  in
  (rounds, trace, hints)

let test_disk_cache_warm () =
  let dir = fresh_cache_dir () in
  let ctx1 = Pipeline.load ~cache:(store dir) transpose in
  let r1, t1, h1 = drive ctx1 in
  let st1 = Pipeline.stats ctx1 in
  check Alcotest.bool "cold context probes the disk" true (st1.Pipeline.disk_misses > 0);
  check Alcotest.int "cold context builds the trace" 1 st1.Pipeline.trace_builds;
  (* A fresh handle and context — a later process with a warm cache. *)
  let ctx2 = Pipeline.load ~cache:(store dir) transpose in
  let r2, t2, h2 = drive ctx2 in
  let st2 = Pipeline.stats ctx2 in
  check Alcotest.bool "warm context hits the disk" true (st2.Pipeline.disk_hits > 0);
  check Alcotest.int "no graph build on the warm path" 0 st2.Pipeline.graph_builds;
  check Alcotest.int "no streams build on the warm path" 0 st2.Pipeline.stream_builds;
  check Alcotest.int "no trace build on the warm path" 0 st2.Pipeline.trace_builds;
  check Alcotest.int "no hint build on the warm path" 0 st2.Pipeline.hint_builds;
  check Alcotest.bool "identical rounds" true (r1 = r2);
  check Alcotest.bool "identical trace" true (t1 = t2);
  check Alcotest.bool "identical hints" true (h1 = h2);
  (* Different knobs must never share an entry. *)
  check Alcotest.bool "other cells are not answered by this entry" true
    (Pipeline.trace ctx2 ~procs:1 Pipeline.Original <> t2)

let test_disk_cache_corruption_recovery () =
  let dir = fresh_cache_dir () in
  let ctx1 = Pipeline.load ~cache:(store dir) transpose in
  let _, t1, h1 = drive ctx1 in
  (* Flip one byte in the middle of every cached entry. *)
  Array.iter
    (fun name ->
      if Filename.check_suffix name ".bin" then begin
        let path = Filename.concat dir name in
        let data = Bytes.of_string (Dp_util.Fsx.read_file path) in
        let i = Bytes.length data / 2 in
        Bytes.set data i (Char.chr (Char.code (Bytes.get data i) lxor 0x10));
        let oc = open_out_bin path in
        output_bytes oc data;
        close_out oc
      end)
    (Sys.readdir dir);
  let ctx2 = Pipeline.load ~cache:(store dir) transpose in
  let _, t2, h2 = drive ctx2 in
  let st2 = Pipeline.stats ctx2 in
  check Alcotest.bool "corrupt entries evicted" true (st2.Pipeline.corrupt_evictions > 0);
  check Alcotest.int "trace rebuilt from scratch" 1 st2.Pipeline.trace_builds;
  check Alcotest.bool "identical trace after corruption" true (t1 = t2);
  check Alcotest.bool "identical hints after corruption" true (h1 = h2);
  (* The rebuild wrote fresh entries: a third context runs warm again. *)
  let ctx3 = Pipeline.load ~cache:(store dir) transpose in
  let _, t3, _ = drive ctx3 in
  let st3 = Pipeline.stats ctx3 in
  check Alcotest.bool "store recovered after rewrite" true (st3.Pipeline.disk_hits > 0);
  check Alcotest.int "no rebuild after recovery" 0 st3.Pipeline.trace_builds;
  check Alcotest.bool "identical trace after recovery" true (t1 = t3)

let test_no_cache_matches_cached () =
  let dir = fresh_cache_dir () in
  let cached = Pipeline.load ~cache:(store dir) transpose in
  let plain = Pipeline.load transpose in
  let rc, tc, hc = drive cached in
  let rp, tp, hp = drive plain in
  check Alcotest.bool "rounds unchanged by the cache" true (rc = rp);
  check Alcotest.bool "trace unchanged by the cache" true (tc = tp);
  check Alcotest.bool "hints unchanged by the cache" true (hc = hp);
  check Alcotest.bool "uncached context reports no disk traffic" true
    ((Pipeline.stats plain).Pipeline.disk_misses = 0
    && (Pipeline.stats plain).Pipeline.disk_hits = 0)

let test_digest_stability () =
  let a = Pipeline.load transpose and b = Pipeline.load transpose in
  check Alcotest.string "equal programs digest equally" (Pipeline.digest a)
    (Pipeline.digest b);
  let layout =
    Dp_layout.Layout.make
      ~default:(Dp_layout.Striping.make ~unit_bytes:65536 ~factor:4 ~start_disk:1)
      (Pipeline.program a)
  in
  check Alcotest.bool "different layouts digest differently" true
    (Pipeline.digest (Pipeline.derive ~layout a) <> Pipeline.digest a)

let test_mode_names () =
  List.iter
    (fun m ->
      check Alcotest.bool
        (Printf.sprintf "mode %s round-trips" (Pipeline.mode_name m))
        true
        (Pipeline.mode_of_name (Pipeline.mode_name m) = Some m))
    [ Pipeline.Original; Pipeline.Reuse_single; Pipeline.Reuse_multi ];
  check Alcotest.bool "unknown mode name" true (Pipeline.mode_of_name "bogus" = None)

let test_multi_needs_procs () =
  let ctx = Pipeline.load transpose in
  check Alcotest.bool "Reuse_multi at 1 processor rejected" true
    (match Pipeline.trace ctx ~procs:1 Pipeline.Reuse_multi with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- golden: CLI trace = Runner-path trace, per version and procs --- *)

let cli_flags version =
  match Version.mode version with
  | Pipeline.Original -> []
  | Pipeline.Reuse_single -> [ "--restructure"; "--mode"; "single" ]
  | Pipeline.Reuse_multi -> [ "--restructure"; "--mode"; "multi" ]

let test_cli_matches_runner () =
  let ctx = Pipeline.load transpose in
  List.iter
    (fun procs ->
      List.iter
        (fun version ->
          let mode = Version.mode version in
          if not (mode = Pipeline.Reuse_multi && procs = 1) then begin
            let cli_file = Filename.temp_file "dpower_cli" ".trace" in
            let lib_file = Filename.temp_file "dpower_lib" ".trace" in
            Fun.protect
              ~finally:(fun () ->
                Sys.remove cli_file;
                Sys.remove lib_file)
              (fun () ->
                let code, _, err =
                  Test_cli.run
                    ([ Test_cli.dpcc; "trace"; transpose; "--procs"; string_of_int procs ]
                    @ cli_flags version
                    @ [ "-o"; cli_file ])
                in
                check Alcotest.int
                  (Printf.sprintf "dpcc trace %s/%dp exits 0 (stderr %S)"
                     (Version.name version) procs err)
                  0 code;
                Request.save lib_file (Pipeline.trace ctx ~procs mode);
                check Alcotest.string
                  (Printf.sprintf "trace bytes %s at %d proc(s)" (Version.name version)
                     procs)
                  (Test_cli.slurp lib_file) (Test_cli.slurp cli_file))
          end)
        (Version.multi_cpu @ Version.oracle))
    [ 1; 4; 8 ]

(* --- property: --jobs N output is byte-identical to --jobs 1 --- *)

let sweep_json ~jobs ~seed ~rate app =
  Json_out.to_string
    (Json_out.of_sweep
       (Experiments.fault_sweep ~seed ~rates:[ 0.0; rate ] ~jobs ~procs:4
          ~versions:Version.multi_cpu app))

let matrix_json ~jobs ~faults app =
  Json_out.to_string
    (Json_out.of_matrix
       (Experiments.build_matrix ~apps:[ app ] ~faults ~jobs ~procs:4
          ~versions:(Version.multi_cpu @ Version.oracle) ()))

let test_jobs_deterministic =
  QCheck.Test.make ~count:5 ~name:"matrix and sweep JSON independent of --jobs"
    QCheck.(pair (int_bound 10_000) (int_bound 200))
    (fun (seed, rate_millis) ->
      let rate = float_of_int rate_millis /. 1000.0 in
      let app = Pipeline.app (Pipeline.load transpose) in
      let faults = Dp_faults.Fault_model.make ~seed ~rate () in
      String.equal (matrix_json ~jobs:1 ~faults app) (matrix_json ~jobs:4 ~faults app)
      && String.equal (sweep_json ~jobs:1 ~seed ~rate app)
           (sweep_json ~jobs:4 ~seed ~rate app))

let suites =
  [
    ( "pipeline",
      [
        Alcotest.test_case "pool preserves order" `Quick test_pool_order;
        Alcotest.test_case "pool edge cases" `Quick test_pool_edges;
        Alcotest.test_case "pool first error wins" `Quick test_pool_first_error_wins;
        test_pool_multi_failure;
        Alcotest.test_case "pool transient retry" `Quick test_pool_transient_retry;
        Alcotest.test_case "stage memo sharing" `Quick test_memo_sharing;
        Alcotest.test_case "memoized trace is shared" `Quick test_memo_same_result;
        Alcotest.test_case "derive shares the graph" `Quick test_derive_shares_graph;
        Alcotest.test_case "disk cache: warm context" `Quick test_disk_cache_warm;
        Alcotest.test_case "disk cache: corruption recovery" `Quick
          test_disk_cache_corruption_recovery;
        Alcotest.test_case "disk cache: --no-cache path identical" `Quick
          test_no_cache_matches_cached;
        Alcotest.test_case "digest stability" `Quick test_digest_stability;
        Alcotest.test_case "mode names round-trip" `Quick test_mode_names;
        Alcotest.test_case "multi mode needs procs > 1" `Quick test_multi_needs_procs;
        Alcotest.test_case "golden: CLI trace = Runner trace" `Slow test_cli_matches_runner;
        QCheck_alcotest.to_alcotest test_jobs_deterministic;
      ] );
  ]
