(* The chaos harness: scenario generation determinism, spec
   round-trips, the differential oracle staying green on the real
   engine, the sabotage hook firing, the shrinker minimizing a failing
   scenario, and reproducer directories replaying. *)

module Scenario = Dp_chaos.Scenario
module Check = Dp_chaos.Check
module Shrink = Dp_chaos.Shrink
module Repro = Dp_chaos.Repro
module Chaos = Dp_chaos.Chaos
module Fsx = Dp_util.Fsx

let check = Alcotest.check

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "dpower-chaos-%d-%d" (Unix.getpid ()) !dir_counter)

let in_fresh_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> Fsx.remove_tree dir) (fun () -> f dir)

(* Equality that covers everything a scenario carries: the knob spec
   plus the emitted program with its striping clauses. *)
let render (s : Scenario.t) =
  let stripes =
    List.map (fun (n, st) -> (n, Dp_lang.Emit.stripe_spec st)) s.Scenario.stripes
  in
  Scenario.to_spec s ^ "\n" ^ Dp_lang.Emit.to_string ~stripes s.Scenario.program

let test_generate_deterministic () =
  List.iter
    (fun token ->
      let a = Scenario.generate token and b = Scenario.generate token in
      check Alcotest.string
        (Printf.sprintf "token %Lx regenerates identically" token)
        (render a) (render b))
    [ 0L; 1L; 42L; 0xdeadbeefL; Int64.min_int; -1L ]

let test_generate_distinct () =
  (* Not a collision guarantee — just that the token actually drives
     the draw. *)
  let renders =
    List.map (fun t -> render (Scenario.generate (Int64.of_int t))) [ 1; 2; 3; 4; 5 ]
  in
  check Alcotest.int "5 tokens give 5 scenarios" 5
    (List.length (List.sort_uniq compare renders))

let test_spec_roundtrip () =
  List.iter
    (fun token ->
      let s = Scenario.generate token in
      match
        Scenario.of_spec ~program:s.Scenario.program ~stripes:s.Scenario.stripes
          (Scenario.to_spec s)
      with
      | Error msg -> Alcotest.failf "spec of token %Lx rejected: %s" token msg
      | Ok s' ->
          check Alcotest.string
            (Printf.sprintf "token %Lx spec round-trips" token)
            (render s) (render s'))
    [ 3L; 99L; 7777L ]

let test_spec_errors_echo_value () =
  let s = Scenario.generate 11L in
  let reparse spec =
    match Scenario.of_spec ~program:s.Scenario.program ~stripes:s.Scenario.stripes spec with
    | Ok _ -> Alcotest.fail "bad spec accepted"
    | Error msg -> msg
  in
  let subst key value =
    String.concat "\n"
      (List.map
         (fun line ->
           match String.index_opt line ' ' with
           | Some i when String.sub line 0 i = key -> key ^ " " ^ value
           | _ -> line)
         (String.split_on_char '\n' (Scenario.to_spec s)))
  in
  List.iter
    (fun (key, value) ->
      let msg = reparse (subst key value) in
      check Alcotest.bool
        (Printf.sprintf "bad %s echoes %S (got %S)" key value msg)
        true
        (contains ~needle:value msg))
    [
      ("mode", "bogus-mode");
      ("cluster", "bogus-cluster");
      ("policy", "bogus-policy");
      ("procs", "zero");
      ("scrub-ms", "-3");
      ("deadline-ms", "nope");
      ("token", "xyz");
      (* the fault-spec parser echoes the offending field *)
      ("faults", "nope");
    ];
  let msg = reparse "not a spec at all" in
  check Alcotest.bool
    (Printf.sprintf "missing fields diagnosed (got %S)" msg)
    true
    (contains ~needle:"missing" msg || contains ~needle:"malformed" msg)

let test_oracle_green () =
  (* A handful of tokens spanning the knob space: the paired
     configurations must agree and every invariant must hold on the
     real engine. *)
  List.iter
    (fun token ->
      let s = Scenario.generate token in
      let o = Check.run s in
      check Alcotest.int
        (Printf.sprintf "token %Lx clean (%s): %s" token (Scenario.describe s)
           (String.concat "; "
              (List.map (fun (v : Check.violation) -> v.Check.check) o.Check.violations)))
        0
        (List.length o.Check.violations);
      check Alcotest.bool "multiple engine runs" true (o.Check.runs >= 8);
      check Alcotest.bool "non-empty trace" true (o.Check.requests > 0))
    [ 1L; 5L; 12L; 1234L ]

let test_sabotage_fires () =
  let s = Scenario.generate 21L in
  let o = Check.run ~sabotage:Check.Energy_skew s in
  check Alcotest.bool "sabotaged run has violations" true (o.Check.violations <> []);
  check Alcotest.bool "the energy-conservation check fired" true
    (List.exists
       (fun (v : Check.violation) -> contains ~needle:"energy-conservation" v.Check.check)
       o.Check.violations)

let test_shrink_minimizes () =
  let s = Scenario.generate 21L in
  let small, stats = Shrink.minimize ~sabotage:Check.Energy_skew s in
  check Alcotest.bool "shrunk scenario still fails" true
    ((Check.run ~sabotage:Check.Energy_skew small).Check.violations <> []);
  check Alcotest.bool
    (Printf.sprintf "nests minimized (got %d)" (Scenario.nest_count small))
    true
    (Scenario.nest_count small <= 2);
  check Alcotest.bool
    (Printf.sprintf "fault classes minimized (got %d)" (Scenario.fault_class_count small))
    true
    (Scenario.fault_class_count small <= 1);
  check Alcotest.bool "shrunk scenarios drop their token" true (small.Scenario.token = None);
  check Alcotest.bool "some candidates were kept" true (stats.Shrink.kept > 0);
  check Alcotest.bool "attempts bound kept" true (stats.Shrink.attempts >= stats.Shrink.kept)

let test_shrink_green_is_noop () =
  let s = Scenario.generate 5L in
  let small, stats = Shrink.minimize s in
  check Alcotest.string "green scenario survives untouched" (render s) (render small);
  check Alcotest.int "nothing kept" 0 stats.Shrink.kept

let test_repro_roundtrip () =
  in_fresh_dir @@ fun dir ->
  let s = Scenario.generate 33L in
  let o = Check.run ~sabotage:Check.Energy_skew s in
  Repro.write ~sabotage:Check.Energy_skew ~dir s o;
  List.iter
    (fun file ->
      check Alcotest.bool (file ^ " written") true
        (Sys.file_exists (Filename.concat dir file)))
    [ Repro.program_file; Repro.spec_file; Repro.trace_file; Repro.diff_file; Repro.replay_file ];
  (match Repro.load ~dir with
  | Error msg -> Alcotest.failf "reproducer rejected: %s" msg
  | Ok s' -> check Alcotest.string "reproducer scenario round-trips" (render s) (render s'));
  match Chaos.replay ~sabotage:Check.Energy_skew ~dir () with
  | Error msg -> Alcotest.failf "replay failed: %s" msg
  | Ok (_, o') ->
      check Alcotest.bool "replay reproduces the violation" true (o'.Check.violations <> [])

let test_soak_deterministic_and_green () =
  in_fresh_dir @@ fun dir ->
  let cfg = { Chaos.default_config with Chaos.seed = 42; budget = Some 4; out_dir = dir } in
  let a = Chaos.soak cfg and b = Chaos.soak cfg in
  check Alcotest.int "budget honored" 4 a.Chaos.scenarios;
  check Alcotest.int "no findings on the real engine" 0 (List.length a.Chaos.findings);
  check Alcotest.int "runs deterministic" a.Chaos.runs b.Chaos.runs;
  check Alcotest.bool "no reproducer directories" true (not (Sys.file_exists dir))

let test_soak_sabotage_writes_repros () =
  in_fresh_dir @@ fun dir ->
  let cfg =
    {
      Chaos.default_config with
      Chaos.seed = 7;
      budget = Some 1;
      shrink = true;
      sabotage = Some Check.Energy_skew;
      out_dir = dir;
    }
  in
  let summary = Chaos.soak cfg in
  check Alcotest.int "every scenario fails under sabotage" 1
    (List.length summary.Chaos.findings);
  List.iter
    (fun (f : Chaos.finding) ->
      check Alcotest.bool "reproducer on disk" true
        (Sys.file_exists (Filename.concat f.Chaos.repro_dir Repro.diff_file));
      match f.Chaos.shrunk with
      | None -> Alcotest.fail "shrinking was requested"
      | Some small ->
          check Alcotest.bool "shrunk to <= 2 nests" true (Scenario.nest_count small <= 2))
    summary.Chaos.findings

let suites =
  [
    ( "chaos",
      [
        Alcotest.test_case "generate deterministic" `Quick test_generate_deterministic;
        Alcotest.test_case "generate distinct" `Quick test_generate_distinct;
        Alcotest.test_case "spec round-trip" `Quick test_spec_roundtrip;
        Alcotest.test_case "spec errors echo value" `Quick test_spec_errors_echo_value;
        Alcotest.test_case "oracle green on real engine" `Slow test_oracle_green;
        Alcotest.test_case "sabotage fires" `Quick test_sabotage_fires;
        Alcotest.test_case "shrink minimizes" `Slow test_shrink_minimizes;
        Alcotest.test_case "shrink is a no-op when green" `Slow test_shrink_green_is_noop;
        Alcotest.test_case "reproducer round-trip" `Quick test_repro_roundtrip;
        Alcotest.test_case "soak deterministic and green" `Slow
          test_soak_deterministic_and_green;
        Alcotest.test_case "sabotaged soak writes reproducers" `Slow
          test_soak_sabotage_writes_repros;
      ] );
  ]
