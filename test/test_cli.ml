(* End-to-end checks on the two command-line tools: malformed input and
   unknown flags exit with status 2 after a one-line diagnostic, and the
   usage strings advertise the fault-injection flag.  Runs the binaries
   dune built next to the test. *)

let check = Alcotest.check
let dpsim = Filename.concat (Filename.concat ".." "bin") "dpsim.exe"
let dpcc = Filename.concat (Filename.concat ".." "bin") "dpcc.exe"

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let slurp path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Run [argv], returning (exit code, stdout, stderr). *)
let run argv =
  let out = Filename.temp_file "dpower" ".out" in
  let err = Filename.temp_file "dpower" ".err" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove out;
      Sys.remove err)
    (fun () ->
      let code = Sys.command (Filename.quote_command (List.hd argv) ~stdout:out ~stderr:err (List.tl argv)) in
      (code, slurp out, slurp err))

let with_trace_file contents f =
  let path = Filename.temp_file "dpower" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      f path)

let one_line s =
  (* A single diagnostic line (allowing the trailing newline). *)
  match String.split_on_char '\n' (String.trim s) with [ _ ] -> true | _ -> false

let test_dpsim_malformed_trace () =
  with_trace_file "1.0 2.0 0 0 0 1024 R 0 0\n1.0 2.0 0 0 0 junk R 0 0\n" (fun path ->
      let code, _, err = run [ dpsim; path ] in
      check Alcotest.int "exit code" 2 code;
      check Alcotest.bool "one-line diagnostic" true (one_line err);
      check Alcotest.bool
        (Printf.sprintf "names file:line (got %S)" err)
        true
        (contains ~needle:(path ^ ":2:") err && contains ~needle:"size" err))

let test_dpsim_unknown_flag () =
  let code, _, err = run [ dpsim; "--no-such-flag" ] in
  check Alcotest.int "exit code" 2 code;
  check Alcotest.bool "mentions the flag" true (contains ~needle:"no-such-flag" err)

let test_dpsim_bad_faults_spec () =
  with_trace_file "1.0 2.0 0 0 0 1024 R 0 0\n" (fun path ->
      let code, _, err = run [ dpsim; "--faults"; "1:nope:all"; path ] in
      check Alcotest.int "exit code" 2 code;
      check Alcotest.bool
        (Printf.sprintf "names the field (got %S)" err)
        true
        (contains ~needle:"--faults" err && contains ~needle:"rate" err))

let test_dpsim_usage () =
  let code, out, _ = run [ dpsim; "--help=plain" ] in
  check Alcotest.int "help exits 0" 0 code;
  List.iter
    (fun needle ->
      check Alcotest.bool (Printf.sprintf "usage mentions %s" needle) true
        (contains ~needle out))
    [ "dpsim"; "--faults"; "SEED:RATE:CLASSES"; "--policy" ]

let test_dpsim_runs () =
  with_trace_file "1.0 2.0 0 0 0 1024 R 0 0\n" (fun path ->
      let code, out, _ = run [ dpsim; "--faults"; "7:0.1:all"; path ] in
      check Alcotest.int "exit code" 0 code;
      check Alcotest.bool "reports the fault window" true (contains ~needle:"faults seed 7" out);
      check Alcotest.bool "reports wear" true (contains ~needle:"start-stop budget" out))

let test_dpcc_unknown_flag () =
  let code, _, err = run [ dpcc; "simulate"; "--no-such-flag"; "app:AST" ] in
  check Alcotest.int "exit code" 2 code;
  check Alcotest.bool "mentions the flag" true (contains ~needle:"no-such-flag" err)

let test_dpcc_malformed_source () =
  with_trace_file "1.0 2.0 0 0 junk 1024 R 0 0\n" (fun path ->
      let code, _, err = run [ dpcc; "simulate"; path ] in
      check Alcotest.int "exit code" 2 code;
      check Alcotest.bool
        (Printf.sprintf "names file:line (got %S)" err)
        true
        (contains ~needle:(path ^ ":1:") err))

let test_dpcc_usage () =
  let code, out, _ = run [ dpcc; "fault-sweep"; "--help=plain" ] in
  check Alcotest.int "help exits 0" 0 code;
  List.iter
    (fun needle ->
      check Alcotest.bool (Printf.sprintf "usage mentions %s" needle) true
        (contains ~needle out))
    [ "fault-sweep"; "--rates"; "--seed"; "--json" ]

let suites =
  [
    ( "cli",
      [
        Alcotest.test_case "dpsim malformed trace" `Quick test_dpsim_malformed_trace;
        Alcotest.test_case "dpsim unknown flag" `Quick test_dpsim_unknown_flag;
        Alcotest.test_case "dpsim bad --faults" `Quick test_dpsim_bad_faults_spec;
        Alcotest.test_case "dpsim usage" `Quick test_dpsim_usage;
        Alcotest.test_case "dpsim faulted run" `Quick test_dpsim_runs;
        Alcotest.test_case "dpcc unknown flag" `Quick test_dpcc_unknown_flag;
        Alcotest.test_case "dpcc malformed source" `Quick test_dpcc_malformed_source;
        Alcotest.test_case "dpcc fault-sweep usage" `Quick test_dpcc_usage;
      ] );
  ]
