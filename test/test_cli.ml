(* End-to-end checks on the two command-line tools: malformed input and
   unknown flags exit with status 2 after a one-line diagnostic, and the
   usage strings advertise the fault-injection flag.  Runs the binaries
   dune built next to the test. *)

let check = Alcotest.check
let dpsim = Filename.concat (Filename.concat ".." "bin") "dpsim.exe"
let dpcc = Filename.concat (Filename.concat ".." "bin") "dpcc.exe"

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let slurp path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Run [argv], returning (exit code, stdout, stderr). *)
let run argv =
  let out = Filename.temp_file "dpower" ".out" in
  let err = Filename.temp_file "dpower" ".err" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove out;
      Sys.remove err)
    (fun () ->
      let code = Sys.command (Filename.quote_command (List.hd argv) ~stdout:out ~stderr:err (List.tl argv)) in
      (code, slurp out, slurp err))

let with_trace_file contents f =
  let path = Filename.temp_file "dpower" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      f path)

let one_line s =
  (* A single diagnostic line (allowing the trailing newline). *)
  match String.split_on_char '\n' (String.trim s) with [ _ ] -> true | _ -> false

let test_dpsim_malformed_trace () =
  with_trace_file "1.0 2.0 0 0 0 1024 R 0 0\n1.0 2.0 0 0 0 junk R 0 0\n" (fun path ->
      let code, _, err = run [ dpsim; path ] in
      check Alcotest.int "exit code" 2 code;
      check Alcotest.bool "one-line diagnostic" true (one_line err);
      check Alcotest.bool
        (Printf.sprintf "names file:line (got %S)" err)
        true
        (contains ~needle:(path ^ ":2:") err && contains ~needle:"size" err))

let test_dpsim_unknown_flag () =
  let code, _, err = run [ dpsim; "--no-such-flag" ] in
  check Alcotest.int "exit code" 2 code;
  check Alcotest.bool "mentions the flag" true (contains ~needle:"no-such-flag" err)

let test_dpsim_bad_faults_spec () =
  with_trace_file "1.0 2.0 0 0 0 1024 R 0 0\n" (fun path ->
      let code, _, err = run [ dpsim; "--faults"; "1:nope:all"; path ] in
      check Alcotest.int "exit code" 2 code;
      check Alcotest.bool
        (Printf.sprintf "names the field (got %S)" err)
        true
        (contains ~needle:"--faults" err && contains ~needle:"rate" err))

let test_dpsim_usage () =
  let code, out, _ = run [ dpsim; "--help=plain" ] in
  check Alcotest.int "help exits 0" 0 code;
  List.iter
    (fun needle ->
      check Alcotest.bool (Printf.sprintf "usage mentions %s" needle) true
        (contains ~needle out))
    [ "dpsim"; "--faults"; "SEED:RATE:CLASSES"; "--policy" ]

let test_dpsim_runs () =
  with_trace_file "1.0 2.0 0 0 0 1024 R 0 0\n" (fun path ->
      let code, out, _ = run [ dpsim; "--faults"; "7:0.1:all"; path ] in
      check Alcotest.int "exit code" 0 code;
      check Alcotest.bool "reports the fault window" true (contains ~needle:"faults seed 7" out);
      check Alcotest.bool "reports wear" true (contains ~needle:"start-stop budget" out))

let test_version_flags () =
  List.iter
    (fun bin ->
      let code, out, _ = run [ bin; "--version" ] in
      check Alcotest.int (bin ^ " --version exits 0") 0 code;
      check Alcotest.string (bin ^ " version string") "1.0.0" (String.trim out))
    [ dpsim; dpcc ]

let test_dpcc_unknown_command () =
  let code, _, err = run [ dpcc; "frobnicate" ] in
  check Alcotest.int "exit code" 2 code;
  check Alcotest.bool "names the offender" true (contains ~needle:"frobnicate" err);
  (* The full command list, not just a one-liner. *)
  List.iter
    (fun needle ->
      check Alcotest.bool (Printf.sprintf "usage lists %s" needle) true
        (contains ~needle err))
    [ "Commands:"; "show"; "restructure"; "trace"; "simulate"; "report"; "fault-sweep" ]

let test_dpsim_obs_gaps () =
  with_trace_file "1.0 2.0 0 0 0 65536 R 0 0\n70000.0 60000.0 0 0 1073741824 65536 R 0 0\n"
    (fun path ->
      let out_path = Filename.temp_file "dpower" ".jsonl" in
      Fun.protect
        ~finally:(fun () -> Sys.remove out_path)
        (fun () ->
          let code, out, _ =
            run [ dpsim; path; out_path; "--policy"; "tpm"; "--disks"; "1"; "--obs"; "gaps" ]
          in
          check Alcotest.int "exit code" 0 code;
          check Alcotest.bool "prints the policy" true (contains ~needle:"policy: TPM" out);
          check Alcotest.bool "per-disk report" true (contains ~needle:"disk 0:" out);
          check Alcotest.bool "gap histogram" true (contains ~needle:"idle gaps (ms)" out);
          check Alcotest.bool "standby residency" true
            (contains ~needle:"standby residencies" out);
          let jsonl = slurp out_path in
          check Alcotest.bool "JSONL artifact written" true
            (contains ~needle:"\"idle_gaps\":{\"edges\":" jsonl)))

let test_dpsim_obs_trace () =
  with_trace_file "1.0 2.0 0 0 0 65536 R 0 0\n70000.0 60000.0 0 0 1073741824 65536 R 0 0\n"
    (fun path ->
      let out_path = Filename.temp_file "dpower" ".json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove out_path)
        (fun () ->
          let code, out, _ =
            run [ dpsim; path; out_path; "--policy"; "tpm"; "--disks"; "1"; "--obs"; "trace" ]
          in
          check Alcotest.int "exit code" 0 code;
          check Alcotest.bool "announces the artifact" true
            (contains ~needle:"Chrome trace written" out);
          let json = slurp out_path in
          List.iter
            (fun needle ->
              check Alcotest.bool (Printf.sprintf "trace has %s" needle) true
                (contains ~needle json))
            [
              "\"displayTimeUnit\":\"ms\"";
              "{\"name\":\"disk 0\"}";
              "\"name\":\"STANDBY\"";
              "\"cat\":\"io\"";
            ]))

let test_dpsim_obs_bad_mode () =
  with_trace_file "1.0 2.0 0 0 0 65536 R 0 0\n" (fun path ->
      let code, _, err = run [ dpsim; path; "--obs"; "nope" ] in
      check Alcotest.int "exit code" 2 code;
      check Alcotest.bool "names the mode" true (contains ~needle:"nope" err))

let test_dpsim_obs_oracle_rejected () =
  with_trace_file "1.0 2.0 0 0 0 65536 R 0 0\n" (fun path ->
      let code, _, err = run [ dpsim; path; "--policy"; "oracle"; "--obs"; "gaps" ] in
      check Alcotest.int "exit code" 2 code;
      check Alcotest.bool "explains why" true (contains ~needle:"analytic bound" err))

let test_dpcc_profile () =
  let code, _, err = run [ dpcc; "restructure"; "app:Cholesky"; "--profile" ] in
  check Alcotest.int "exit code" 0 code;
  List.iter
    (fun needle ->
      check Alcotest.bool (Printf.sprintf "profile table has %s" needle) true
        (contains ~needle err))
    [ "pass"; "total (ms)"; "dependence.concrete-build"; "restructure.reuse-schedule" ]

let test_dpcc_unknown_flag () =
  let code, _, err = run [ dpcc; "simulate"; "--no-such-flag"; "app:AST" ] in
  check Alcotest.int "exit code" 2 code;
  check Alcotest.bool "mentions the flag" true (contains ~needle:"no-such-flag" err)

let test_dpcc_malformed_source () =
  with_trace_file "1.0 2.0 0 0 junk 1024 R 0 0\n" (fun path ->
      let code, _, err = run [ dpcc; "simulate"; path ] in
      check Alcotest.int "exit code" 2 code;
      check Alcotest.bool
        (Printf.sprintf "names file:line (got %S)" err)
        true
        (contains ~needle:(path ^ ":1:") err))

let test_dpcc_usage () =
  let code, out, _ = run [ dpcc; "fault-sweep"; "--help=plain" ] in
  check Alcotest.int "help exits 0" 0 code;
  List.iter
    (fun needle ->
      check Alcotest.bool (Printf.sprintf "usage mentions %s" needle) true
        (contains ~needle out))
    [ "fault-sweep"; "--rates"; "--seed"; "--json"; "--jobs" ]

(* --mode: contradictory flag combinations are usage errors (exit 2). *)

let test_dpcc_mode_without_restructure () =
  let code, _, err = run [ dpcc; "trace"; "app:AST"; "--mode"; "single" ] in
  check Alcotest.int "exit code" 2 code;
  check Alcotest.bool
    (Printf.sprintf "points at --restructure (got %S)" err)
    true
    (contains ~needle:"--restructure" err)

let test_dpcc_mode_multi_one_proc () =
  let code, _, err = run [ dpcc; "simulate"; "app:AST"; "--restructure"; "--mode"; "multi" ] in
  check Alcotest.int "exit code" 2 code;
  check Alcotest.bool
    (Printf.sprintf "points at --procs (got %S)" err)
    true
    (contains ~needle:"--procs" err)

let test_dpcc_mode_unknown () =
  let code, _, err =
    run [ dpcc; "trace"; "app:AST"; "--restructure"; "--mode"; "sideways" ]
  in
  check Alcotest.int "exit code" 2 code;
  check Alcotest.bool "names the value and the choices" true
    (contains ~needle:"sideways" err && contains ~needle:"single | multi" err)

let test_dpcc_bad_jobs () =
  let code, _, err = run [ dpcc; "report"; "app:AST"; "--jobs"; "0" ] in
  check Alcotest.int "exit code" 2 code;
  check Alcotest.bool "names --jobs" true (contains ~needle:"--jobs" err)

let test_dpcc_bad_procs () =
  List.iter
    (fun sub ->
      let code, _, err = run [ dpcc; sub; "app:AST"; "--procs"; "0" ] in
      check Alcotest.int (sub ^ " exit code") 2 code;
      check Alcotest.bool
        (Printf.sprintf "%s names --procs (got %S)" sub err)
        true (contains ~needle:"--procs" err);
      check Alcotest.bool (sub ^ " one-line diagnostic") true (one_line err))
    [ "trace"; "simulate"; "report"; "fault-sweep" ]

(* --- the served-array command --- *)

let test_dpcc_serve_json_deterministic () =
  (* 3 tenants: all-OLTP, so no pipeline stages and no cache needed. *)
  let serve jobs =
    run
      [ dpcc; "serve"; "--tenants"; "3"; "--seed"; "42"; "--jobs"; jobs; "--json"; "--no-cache" ]
  in
  let code1, out1, err1 = serve "1" in
  check Alcotest.int (Printf.sprintf "jobs-1 exits 0 (stderr %S)" err1) 0 code1;
  let code4, out4, _ = serve "4" in
  check Alcotest.int "jobs-4 exits 0" 0 code4;
  check Alcotest.string "byte-identical across --jobs" out1 out4;
  List.iter
    (fun needle ->
      check Alcotest.bool (Printf.sprintf "JSON has %s" needle) true
        (contains ~needle out1))
    [
      "\"selection\": \"all\"";
      "\"label\": \"base\"";
      "\"label\": \"offline-tpm\"";
      "\"label\": \"offline-drpm\"";
      "\"label\": \"online\"";
      "\"label\": \"oracle\"";
      "\"attributed_j\"";
      "\"fairness\"";
    ];
  check Alcotest.bool "jobs never leaks into the report" false
    (contains ~needle:"jobs" out1)

let test_dpcc_serve_human_table () =
  let code, out, _ =
    run [ dpcc; "serve"; "--tenants"; "2"; "--seed"; "7"; "--policy"; "online"; "--no-cache" ]
  in
  check Alcotest.int "exit code" 0 code;
  check Alcotest.bool "header names the population" true
    (contains ~needle:"serve: 2 tenants" out);
  check Alcotest.bool "online row present" true (contains ~needle:"online" out)

let test_dpcc_serve_bad_policy () =
  let code, _, err = run [ dpcc; "serve"; "--tenants"; "2"; "--policy"; "psychic" ] in
  check Alcotest.int "exit code" 2 code;
  check Alcotest.bool
    (Printf.sprintf "names the value and the choices (got %S)" err)
    true
    (contains ~needle:"psychic" err && contains ~needle:"oracle" err)

let test_dpcc_serve_bad_faults () =
  (* Malformed --faults on serve: exit 2 with a one-line diagnostic
     naming the offending field. *)
  let code, _, err =
    run [ dpcc; "serve"; "--tenants"; "2"; "--faults"; "1:nope:all" ]
  in
  check Alcotest.int "exit code" 2 code;
  check Alcotest.bool "one-line diagnostic" true (one_line err);
  check Alcotest.bool
    (Printf.sprintf "names the flag and the field (got %S)" err)
    true
    (contains ~needle:"--faults" err && contains ~needle:"rate" err);
  let code, _, err =
    run [ dpcc; "serve"; "--tenants"; "2"; "--faults"; "1:0.1:ss" ]
  in
  check Alcotest.int "duplicate class exits 2" 2 code;
  check Alcotest.bool
    (Printf.sprintf "names the duplicate (got %S)" err)
    true
    (contains ~needle:"duplicate" err)

let test_dpcc_serve_bad_decay () =
  let code, _, err = run [ dpcc; "serve"; "--tenants"; "2"; "--decay"; "1:nope" ] in
  check Alcotest.int "exit code" 2 code;
  check Alcotest.bool
    (Printf.sprintf "names --decay and the field (got %S)" err)
    true
    (contains ~needle:"--decay" err && contains ~needle:"rate" err);
  let code, _, err =
    run
      [ dpcc; "serve"; "--tenants"; "2"; "--decay"; "1:0.1"; "--faults"; "2:0.1:m" ]
  in
  check Alcotest.int "--decay with --faults exits 2" 2 code;
  check Alcotest.bool "explains the exclusion" true
    (contains ~needle:"--decay" err && contains ~needle:"--faults" err)

let test_dpcc_serve_decay_reports_availability () =
  let code, out, err =
    run
      [
        dpcc; "serve"; "--tenants"; "2"; "--seed"; "7"; "--policy"; "online";
        "--decay"; "11:0.2"; "--scrub-ms"; "40"; "--json"; "--no-cache";
      ]
  in
  check Alcotest.int (Printf.sprintf "exit code (stderr %S)" err) 0 code;
  List.iter
    (fun needle ->
      check Alcotest.bool (Printf.sprintf "JSON has %s" needle) true
        (contains ~needle out))
    [
      "\"faults\": \"11:0.2:d\"";
      "\"deadline_ms\": 500";
      "\"scrub_budget_ms\": 40";
      "\"availability\"";
      "\"slo\"";
    ]

let test_dpcc_serve_decay_rate_zero_identical () =
  (* Rate-0 decay with scrub off is byte-identical to the clean serve
     report — the acceptance gate for the failure domain's default-off
     discipline. *)
  let base =
    [ dpcc; "serve"; "--tenants"; "2"; "--seed"; "7"; "--policy"; "online"; "--json"; "--no-cache" ]
  in
  let code0, clean, _ = run base in
  check Alcotest.int "clean exits 0" 0 code0;
  let code1, armed, _ = run (base @ [ "--decay"; "11:0" ]) in
  check Alcotest.int "rate-0 decay exits 0" 0 code1;
  check Alcotest.string "byte-identical to the clean report" clean armed

let test_dpcc_serve_bad_tenants () =
  let code, _, err = run [ dpcc; "serve"; "--tenants"; "0" ] in
  check Alcotest.int "exit code" 2 code;
  check Alcotest.bool "names --tenants" true (contains ~needle:"--tenants" err)

let test_dpcc_serve_bad_deadline () =
  let code, _, err =
    run [ dpcc; "serve"; "--tenants"; "2"; "--deadline"; "0"; "--no-cache" ]
  in
  check Alcotest.int "exit code" 2 code;
  check Alcotest.bool "one-line diagnostic" true (one_line err);
  check Alcotest.bool
    (Printf.sprintf "names --deadline and the constraint (got %S)" err)
    true
    (contains ~needle:"--deadline" err && contains ~needle:"positive" err)

let test_dpcc_serve_bad_scrub () =
  let code, _, err =
    run [ dpcc; "serve"; "--tenants"; "2"; "--scrub-ms=-5"; "--no-cache" ]
  in
  check Alcotest.int "exit code" 2 code;
  check Alcotest.bool "one-line diagnostic" true (one_line err);
  check Alcotest.bool
    (Printf.sprintf "names --scrub-ms and the constraint (got %S)" err)
    true
    (contains ~needle:"--scrub-ms" err && contains ~needle:"non-negative" err)

(* --- the live console and the artifact differ --- *)

let live_trace =
  "1.0 2.0 0 0 0 65536 R 0 0\n70000.0 60000.0 0 0 1073741824 65536 R 0 0\n"

(* A same-shape trace with a very different gap structure, for shift
   detection: closely spaced small reads instead of one 70 s hole. *)
let busy_trace =
  "1.0 2.0 0 0 0 65536 R 0 0\n500.0 2.0 0 0 4194304 65536 R 0 0\n\
   1000.0 2.0 0 0 8388608 65536 R 0 0\n1500.0 2.0 0 0 12582912 65536 R 0 0\n"

let test_dpsim_live_piped () =
  with_trace_file live_trace (fun path ->
      let code, out, err = run [ dpsim; path; "--disks"; "1"; "--live" ] in
      check Alcotest.int (Printf.sprintf "exit code (stderr %S)" err) 0 code;
      check Alcotest.bool "frames present" true (contains ~needle:"dpower live" out);
      check Alcotest.bool "plain separator blocks" true (contains ~needle:"----\n" out);
      check Alcotest.bool "no ANSI escapes when piped" false (contains ~needle:"\x1b[" out);
      check Alcotest.bool "summary still printed" true (contains ~needle:"energy" out))

let test_dpsim_live_oracle_rejected () =
  with_trace_file live_trace (fun path ->
      let code, _, err = run [ dpsim; path; "--policy"; "oracle"; "--live" ] in
      check Alcotest.int "exit code" 2 code;
      check Alcotest.bool "names --live" true (contains ~needle:"--live" err))

let test_dpcc_serve_live_frames () =
  let code, out, err =
    run
      [
        dpcc; "serve"; "--tenants"; "2"; "--seed"; "7"; "--policy"; "online";
        "--no-cache"; "--live";
      ]
  in
  check Alcotest.int (Printf.sprintf "exit code (stderr %S)" err) 0 code;
  check Alcotest.bool "labels each row's console" true
    (contains ~needle:"== live: online ==" out);
  check Alcotest.bool "frames present" true (contains ~needle:"dpower live" out);
  check Alcotest.bool "table still printed" true (contains ~needle:"serve: 2 tenants" out)

(* Run dpsim --obs gaps on [trace] and hand [f] the JSONL artifact. *)
let with_obs_artifact trace f =
  with_trace_file trace (fun path ->
      let out_path = Filename.temp_file "dpower" ".jsonl" in
      Fun.protect
        ~finally:(fun () -> Sys.remove out_path)
        (fun () ->
          let code, _, err =
            run [ dpsim; path; out_path; "--policy"; "tpm"; "--disks"; "1"; "--obs"; "gaps" ]
          in
          check Alcotest.int (Printf.sprintf "artifact run exits 0 (stderr %S)" err) 0 code;
          f out_path))

let test_dpcc_obs_diff_self_zero () =
  with_obs_artifact live_trace (fun a ->
      let code, out, err = run [ dpcc; "obs"; "diff"; a; a; "--json" ] in
      check Alcotest.int (Printf.sprintf "self-diff exits 0 (stderr %S)" err) 0 code;
      check Alcotest.bool "max KS exactly zero" true (contains ~needle:"\"max_ks\":0" out);
      check Alcotest.bool "max EMD exactly zero" true (contains ~needle:"\"max_emd\":0" out);
      check Alcotest.bool "per-line stats present" true (contains ~needle:"\"idle_gaps\"" out))

let test_dpcc_obs_diff_threshold () =
  with_obs_artifact live_trace (fun a ->
      with_obs_artifact busy_trace (fun b ->
          let code, out, _ = run [ dpcc; "obs"; "diff"; a; b ] in
          check Alcotest.int "diff without a gate exits 0" 0 code;
          check Alcotest.bool "summary line present" true (contains ~needle:"max KS" out);
          let code, out, err =
            run [ dpcc; "obs"; "diff"; a; b; "--threshold"; "0.000001" ]
          in
          check Alcotest.int "exceeded gate exits 1" 1 code;
          check Alcotest.bool "diff still printed" true (contains ~needle:"max KS" out);
          check Alcotest.bool
            (Printf.sprintf "gate message names --threshold (got %S)" err)
            true
            (contains ~needle:"--threshold" err)))

let test_dpcc_obs_unknown_sub () =
  let code, _, err = run [ dpcc; "obs"; "bogus" ] in
  check Alcotest.int "exit code" 2 code;
  check Alcotest.bool "names the offender" true (contains ~needle:"bogus" err);
  check Alcotest.bool "lists the obs commands" true (contains ~needle:"diff" err)

let test_dpcc_obs_diff_bad_input () =
  let code, _, err =
    run [ dpcc; "obs"; "diff"; "/nonexistent-a.jsonl"; "/nonexistent-b.jsonl" ]
  in
  check Alcotest.int "missing file exits 2" 2 code;
  check Alcotest.bool "names the file" true (contains ~needle:"nonexistent-a" err);
  with_obs_artifact live_trace (fun a ->
      let code, _, err =
        run [ dpcc; "obs"; "diff"; a; a; "--threshold=-1" ]
      in
      check Alcotest.int "negative threshold exits 2" 2 code;
      check Alcotest.bool "names --threshold" true (contains ~needle:"--threshold" err))

(* --- the persistent stage cache, end to end --- *)

let cache_dir_counter = ref 0

let fresh_cache_dir () =
  incr cache_dir_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "dpower-cli-cache-%d-%d" (Unix.getpid ()) !cache_dir_counter)

(* Flip one byte in the middle of every cache entry. *)
let corrupt_entries dir =
  let n = ref 0 in
  Array.iter
    (fun name ->
      if Filename.check_suffix name ".bin" then begin
        incr n;
        let path = Filename.concat dir name in
        let data = Bytes.of_string (slurp path) in
        let i = Bytes.length data / 2 in
        Bytes.set data i (Char.chr (Char.code (Bytes.get data i) lxor 0x40));
        let oc = open_out_bin path in
        output_bytes oc data;
        close_out oc
      end)
    (Sys.readdir dir);
  !n

let assert_no_residue dir =
  Array.iter
    (fun name ->
      check Alcotest.bool (Printf.sprintf "no temp residue (%s)" name) false
        (contains ~needle:".tmp." name);
      check Alcotest.bool "no lock residue" false (String.equal name "lock"))
    (Sys.readdir dir)

let test_dpcc_cache_stat_clear () =
  let dir = fresh_cache_dir () in
  let code, out, _ = run [ dpcc; "cache"; "stat"; "--cache-dir"; dir ] in
  check Alcotest.int "stat on a missing store exits 0" 0 code;
  check Alcotest.bool "reports zero entries" true (contains ~needle:"entries: 0" out);
  let code, _, _ = run [ dpcc; "report"; "app:AST"; "--cache-dir"; dir ] in
  check Alcotest.int "report exits 0" 0 code;
  let code, out, _ = run [ dpcc; "cache"; "stat"; "--cache-dir"; dir ] in
  check Alcotest.int "stat exits 0" 0 code;
  check Alcotest.bool
    (Printf.sprintf "entries present (got %S)" out)
    false
    (contains ~needle:"entries: 0" out);
  check Alcotest.bool "last-run counters recorded" true (contains ~needle:"last run:" out);
  check Alcotest.bool "misses counted on the cold run" true (contains ~needle:"miss" out);
  let code, out, _ = run [ dpcc; "cache"; "clear"; "--cache-dir"; dir ] in
  check Alcotest.int "clear exits 0" 0 code;
  check Alcotest.bool "clear reports removals" true (contains ~needle:"removed" out);
  let _, out, _ = run [ dpcc; "cache"; "stat"; "--cache-dir"; dir ] in
  check Alcotest.bool "store empty after clear" true (contains ~needle:"entries: 0" out)

let test_dpcc_cache_stat_json () =
  let dir = fresh_cache_dir () in
  let code, out, _ = run [ dpcc; "cache"; "stat"; "--json"; "--cache-dir"; dir ] in
  check Alcotest.int "stat --json on a missing store exits 0" 0 code;
  check Alcotest.bool "zero entries" true (contains ~needle:"\"entries\": 0" out);
  check Alcotest.bool "no last-run counters yet" true
    (contains ~needle:"\"last_run\": null" out);
  let code, _, _ = run [ dpcc; "report"; "app:AST"; "--cache-dir"; dir ] in
  check Alcotest.int "report exits 0" 0 code;
  let code, out, _ = run [ dpcc; "cache"; "stat"; "--json"; "--cache-dir"; dir ] in
  check Alcotest.int "stat --json exits 0" 0 code;
  check Alcotest.bool
    (Printf.sprintf "entries counted (got %S)" out)
    false
    (contains ~needle:"\"entries\": 0" out);
  List.iter
    (fun needle ->
      check Alcotest.bool (Printf.sprintf "counters have %s" needle) true
        (contains ~needle out))
    [ "\"hits\""; "\"misses\""; "\"corrupt\""; "\"dropped_writes\""; "\"quarantined\": 0" ];
  let code, _, _ = run [ dpcc; "cache"; "clear"; "--cache-dir"; dir ] in
  check Alcotest.int "clear exits 0" 0 code

let test_dpcc_cache_unknown_sub () =
  let code, _, err = run [ dpcc; "cache"; "bogus" ] in
  check Alcotest.int "exit code" 2 code;
  check Alcotest.bool "names the offender" true (contains ~needle:"bogus" err);
  check Alcotest.bool "lists the cache commands" true
    (contains ~needle:"stat" err && contains ~needle:"clear" err)

(* The acceptance property: corrupt every entry between two runs — the
   second run must recover (exit 0) and print byte-identical figures,
   matching a --no-cache run exactly. *)
let test_dpcc_cache_corruption_recovery () =
  let dir = fresh_cache_dir () in
  let argv = [ dpcc; "report"; "app:AST"; "--cache-dir"; dir ] in
  let code, cold, err = run argv in
  check Alcotest.int (Printf.sprintf "cold report exits 0 (stderr %S)" err) 0 code;
  check Alcotest.bool "cold run populated the store" true (corrupt_entries dir > 0);
  let code, corrupted, err = run argv in
  check Alcotest.int (Printf.sprintf "corrupted-store report exits 0 (stderr %S)" err) 0 code;
  check Alcotest.string "output identical after corruption" cold corrupted;
  let code, uncached, _ = run [ dpcc; "report"; "app:AST"; "--no-cache" ] in
  check Alcotest.int "--no-cache report exits 0" 0 code;
  check Alcotest.string "output identical to --no-cache" cold uncached;
  let _, stat, _ = run [ dpcc; "cache"; "stat"; "--cache-dir"; dir ] in
  check Alcotest.bool
    (Printf.sprintf "stat shows quarantined corpses (got %S)" stat)
    false
    (contains ~needle:"quarantined: 0," stat);
  (* The recovery rewrote the entries: a third run hits. *)
  let code, warm, _ = run argv in
  check Alcotest.int "recovered report exits 0" 0 code;
  check Alcotest.string "output identical after recovery" cold warm;
  let _, stat, _ = run [ dpcc; "cache"; "stat"; "--cache-dir"; dir ] in
  check Alcotest.bool
    (Printf.sprintf "warm run hit the rewritten entries (got %S)" stat)
    false
    (contains ~needle:"0 hit(s)" stat);
  assert_no_residue dir

(* Two invocations racing on the same empty store: the advisory lock
   serializes publication; both must succeed with identical output and
   leave no temp or lock files behind.  (fcntl locks are per-process,
   so this needs real concurrent processes, not domains.) *)
let test_dpcc_cache_concurrent () =
  let dir = fresh_cache_dir () in
  let spawn out_path =
    let fd = Unix.openfile out_path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    let pid =
      Unix.create_process dpcc
        [| dpcc; "report"; "app:AST"; "--cache-dir"; dir |]
        Unix.stdin fd null
    in
    Unix.close fd;
    Unix.close null;
    pid
  in
  let out1 = Filename.temp_file "dpower" ".out" and out2 = Filename.temp_file "dpower" ".out" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove out1;
      Sys.remove out2)
    (fun () ->
      let p1 = spawn out1 in
      let p2 = spawn out2 in
      let wait pid =
        match snd (Unix.waitpid [] pid) with Unix.WEXITED c -> c | _ -> -1
      in
      check Alcotest.int "first racer exits 0" 0 (wait p1);
      check Alcotest.int "second racer exits 0" 0 (wait p2);
      check Alcotest.string "racing runs print identical output" (slurp out1) (slurp out2);
      assert_no_residue dir)

(* --- trace formats: the binary codec, conversion, auto-detection --- *)

let with_temp_files n f =
  let paths = List.init n (fun _ -> Filename.temp_file "dpower" ".trace") in
  Fun.protect
    ~finally:(fun () -> List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) paths)
    (fun () -> f paths)

(* The nine golden trace shapes of the evaluation matrix: every
   restructuring mode and processor count the version rows replay, with
   and without a hint stream, plus an embedded fault window. *)
let golden_trace_shapes =
  [
    ("base-p1", [ "--procs"; "1" ]);
    ("base-p4", [ "--procs"; "4" ]);
    ("hints-p1", [ "--procs"; "1"; "--hints" ]);
    ("hints-p4", [ "--procs"; "4"; "--hints" ]);
    ("single-p1", [ "--procs"; "1"; "--restructure" ]);
    ("single-p4", [ "--procs"; "4"; "--restructure"; "--mode"; "single" ]);
    ("multi-p4", [ "--procs"; "4"; "--restructure"; "--mode"; "multi" ]);
    ("multi-hints-p4", [ "--procs"; "4"; "--restructure"; "--mode"; "multi"; "--hints" ]);
    ("faulted-p1", [ "--procs"; "1"; "--hints"; "--faults"; "42:0.01:sm" ]);
  ]

let test_dpcc_trace_format_roundtrip () =
  List.iter
    (fun (label, args) ->
      with_temp_files 4 @@ function
      | [ txt; bin; bin2; txt2 ] ->
          let code, _, err =
            run ([ dpcc; "trace"; "app:cholesky"; "-o"; txt; "--no-cache" ] @ args)
          in
          check Alcotest.int (Printf.sprintf "%s: text trace (stderr %S)" label err) 0 code;
          let code, _, _ =
            run
              ([ dpcc; "trace"; "app:cholesky"; "-o"; bin; "--format"; "bin"; "--no-cache" ]
              @ args)
          in
          check Alcotest.int (label ^ ": binary trace exits 0") 0 code;
          (* text -> bin reproduces the directly-emitted binary... *)
          let code, _, _ = run [ dpcc; "convert"; txt; bin2 ] in
          check Alcotest.int (label ^ ": convert to bin exits 0") 0 code;
          check Alcotest.bool (label ^ ": converted binary = direct binary") true
            (slurp bin = slurp bin2);
          (* ...and bin -> text closes the loop byte-identically. *)
          let code, _, _ = run [ dpcc; "convert"; bin; txt2 ] in
          check Alcotest.int (label ^ ": convert to text exits 0") 0 code;
          check Alcotest.bool (label ^ ": text -> bin -> text byte-identical") true
            (slurp txt = slurp txt2);
          check Alcotest.bool (label ^ ": binary is smaller than text") true
            (String.length (slurp bin) < String.length (slurp txt))
      | _ -> assert false)
    golden_trace_shapes

let test_dpcc_trace_bin_needs_output () =
  let code, _, err = run [ dpcc; "trace"; "app:AST"; "--format"; "bin"; "--no-cache" ] in
  check Alcotest.int "exit code" 2 code;
  check Alcotest.bool
    (Printf.sprintf "points at -o (got %S)" err)
    true (contains ~needle:"-o" err);
  let code, _, err = run [ dpcc; "trace"; "app:AST"; "--format"; "xml"; "--no-cache" ] in
  check Alcotest.int "unknown format exits 2" 2 code;
  check Alcotest.bool "names the choices" true (contains ~needle:"text | bin" err)

let test_dpcc_convert_errors () =
  with_temp_files 1 @@ function
  | [ out ] ->
      let code, _, err = run [ dpcc; "convert"; "/nonexistent.trace"; out ] in
      check Alcotest.int "missing input exits 2" 2 code;
      check Alcotest.bool "one-line diagnostic" true (one_line err);
      with_trace_file "1.0 2.0 0 0 0 65536 R 0 0\n" (fun path ->
          let code, _, err = run [ dpcc; "convert"; path; out; "--format"; "xml" ] in
          check Alcotest.int "unknown format exits 2" 2 code;
          check Alcotest.bool "names the choices" true (contains ~needle:"text | bin" err))
  | _ -> assert false

(* Strip dpsim's first stdout line (it names the trace file, which
   differs between the text and binary copies). *)
let drop_first_line s =
  match String.index_opt s '\n' with
  | Some i -> String.sub s (i + 1) (String.length s - i - 1)
  | None -> s

let test_dpsim_bin_autodetect () =
  with_temp_files 2 @@ function
  | [ txt; bin ] ->
      let gen fmt path =
        run
          [
            dpcc; "trace"; "app:cholesky"; "-p"; "2"; "--restructure"; "--hints";
            "--faults"; "7:0.02:m"; "-o"; path; "--format"; fmt; "--no-cache";
          ]
      in
      let code, _, _ = gen "text" txt in
      check Alcotest.int "text trace exits 0" 0 code;
      let code, _, _ = gen "bin" bin in
      check Alcotest.int "binary trace exits 0" 0 code;
      let codea, outa, _ = run [ dpsim; txt; "--policy"; "tpm"; "--proactive" ] in
      let codeb, outb, _ = run [ dpsim; bin; "--policy"; "tpm"; "--proactive" ] in
      check Alcotest.int "text run exits 0" 0 codea;
      check Alcotest.int "binary run exits 0" 0 codeb;
      check Alcotest.string "identical simulation from either format"
        (drop_first_line outa) (drop_first_line outb)
  | _ -> assert false

let test_dpsim_truncated_bin () =
  with_temp_files 2 @@ function
  | [ bin; trunc ] ->
      let code, _, _ =
        run
          [
            dpcc; "trace"; "app:cholesky"; "-o"; bin; "--format"; "bin"; "--no-cache";
          ]
      in
      check Alcotest.int "binary trace exits 0" 0 code;
      let data = slurp bin in
      let oc = open_out_bin trunc in
      output_string oc (String.sub data 0 (String.length data / 2));
      close_out oc;
      let code, _, err = run [ dpsim; trunc ] in
      check Alcotest.int "truncated binary exits 2" 2 code;
      check Alcotest.bool "one-line diagnostic" true (one_line err);
      check Alcotest.bool
        (Printf.sprintf "names file:offset (got %S)" err)
        true
        (contains ~needle:(trunc ^ ":") err && contains ~needle:"truncated" err)
  | _ -> assert false

(* --- intra-run sharding flags --- *)

let test_cli_bad_shards () =
  List.iter
    (fun sub ->
      let code, _, err = run [ dpcc; sub; "app:AST"; "--shards"; "0" ] in
      check Alcotest.int (sub ^ " --shards 0 exit code") 2 code;
      check Alcotest.bool
        (Printf.sprintf "%s names --shards (got %S)" sub err)
        true (contains ~needle:"--shards" err))
    [ "simulate"; "report"; "fault-sweep" ];
  let code, _, err = run [ dpcc; "serve"; "--tenants"; "1"; "--shards"; "0" ] in
  check Alcotest.int "serve --shards 0 exit code" 2 code;
  check Alcotest.bool "serve names --shards" true (contains ~needle:"--shards" err);
  with_trace_file "1.0 2.0 0 0 0 65536 R 0 0\n" (fun path ->
      let code, _, err = run [ dpsim; path; "--shards"; "0" ] in
      check Alcotest.int "dpsim --shards 0 exit code" 2 code;
      check Alcotest.bool "dpsim names --shards" true (contains ~needle:"--shards" err);
      let code, _, err = run [ dpsim; path; "--shards"; "2"; "--live" ] in
      check Alcotest.int "dpsim --live with shards exit code" 2 code;
      check Alcotest.bool "names --live" true (contains ~needle:"--live" err))

let test_dpcc_simulate_shards_identity () =
  let simulate shards =
    run
      ([
         dpcc; "simulate"; "app:cholesky"; "-p"; "4"; "--restructure"; "--mode"; "multi";
         "--policy"; "drpm-proactive"; "--per-disk"; "--timeline"; "--no-cache";
       ]
      @ shards)
  in
  let code1, out1, _ = simulate [] in
  check Alcotest.int "serial exits 0" 0 code1;
  List.iter
    (fun n ->
      let code, out, _ = simulate [ "--shards"; n ] in
      check Alcotest.int (Printf.sprintf "--shards %s exits 0" n) 0 code;
      check Alcotest.string (Printf.sprintf "--shards %s byte-identical" n) out1 out)
    [ "1"; "4" ]

(* --- cache stat: per-format breakdown --- *)

let test_dpcc_cache_stat_formats () =
  let dir = fresh_cache_dir () in
  (* A proactive simulate stores the trace (binary frame) and its hint
     stream (Marshal blob). *)
  let code, _, _ =
    run
      [
        dpcc; "simulate"; "app:cholesky"; "--policy"; "tpm-proactive"; "--cache-dir"; dir;
      ]
  in
  check Alcotest.int "simulate exits 0" 0 code;
  let code, out, _ = run [ dpcc; "cache"; "stat"; "--cache-dir"; dir ] in
  check Alcotest.int "stat exits 0" 0 code;
  check Alcotest.bool
    (Printf.sprintf "breakdown names binary traces (got %S)" out)
    true
    (contains ~needle:"binary traces: 1" out);
  check Alcotest.bool "breakdown names marshal entries" true
    (contains ~needle:"marshal: 1" out);
  check Alcotest.bool "sizes in human units" true
    (contains ~needle:" B)" out || contains ~needle:" KB)" out
   || contains ~needle:" MB)" out);
  let code, out, _ = run [ dpcc; "cache"; "stat"; "--json"; "--cache-dir"; dir ] in
  check Alcotest.int "stat --json exits 0" 0 code;
  List.iter
    (fun needle ->
      check Alcotest.bool (Printf.sprintf "json has %s" needle) true
        (contains ~needle out))
    [ "\"formats\""; "\"trace_bin\""; "\"marshal\"" ];
  let code, _, _ = run [ dpcc; "cache"; "clear"; "--cache-dir"; dir ] in
  check Alcotest.int "clear exits 0" 0 code

(* A warm binary-trace cache reproduces the cold run byte for byte. *)
let test_dpcc_cache_warm_bin_identity () =
  let dir = fresh_cache_dir () in
  let report () =
    run [ dpcc; "report"; "app:cholesky"; "-p"; "2"; "--cache-dir"; dir ]
  in
  let code1, cold, _ = report () in
  check Alcotest.int "cold run exits 0" 0 code1;
  let code2, warm, _ = report () in
  check Alcotest.int "warm run exits 0" 0 code2;
  check Alcotest.string "warm = cold byte for byte" cold warm;
  let code, _, _ = run [ dpcc; "cache"; "clear"; "--cache-dir"; dir ] in
  check Alcotest.int "clear exits 0" 0 code

(* --- fault/knob diagnostics echo the offending value (exit 2) --- *)

let test_cli_fault_spec_echoes_value () =
  (* An out-of-range rate: the diagnostic must carry the offending
     substring, in both binaries. *)
  let code, _, err = run [ dpcc; "simulate"; "app:AST"; "--faults"; "5:1.5:all" ] in
  check Alcotest.int "dpcc exit code" 2 code;
  check Alcotest.bool
    (Printf.sprintf "dpcc echoes the rate (got %S)" err)
    true
    (contains ~needle:"1.5" err && contains ~needle:"--faults" err);
  with_trace_file "1.0 2.0 0 0 0 1024 R 0 0\n" (fun path ->
      let code, _, err = run [ dpsim; path; "--faults"; "5:1.5:all" ] in
      check Alcotest.int "dpsim exit code" 2 code;
      check Alcotest.bool
        (Printf.sprintf "dpsim echoes the rate (got %S)" err)
        true
        (contains ~needle:"1.5" err));
  let code, _, err = run [ dpcc; "simulate"; "app:AST"; "--faults"; "5:0.1:q" ] in
  check Alcotest.int "unknown class exit code" 2 code;
  check Alcotest.bool
    (Printf.sprintf "echoes the class letter (got %S)" err)
    true (contains ~needle:"q" err);
  let code, _, err = run [ dpcc; "serve"; "--tenants"; "1"; "--spare"; "0" ] in
  check Alcotest.int "--spare 0 exit code" 2 code;
  check Alcotest.bool
    (Printf.sprintf "echoes the value (got %S)" err)
    true
    (contains ~needle:"(got 0)" err && contains ~needle:"--spare" err)

(* --- binary-trace truncation points (satellite: framing diagnostics) ---

   Chop a binary trace inside the first chunk header and inside the
   end-of-trace trailer; both dpsim and dpcc convert must exit 2 with a
   one-line file:offset: diagnostic. *)

let test_bin_truncation_points () =
  with_temp_files 3 @@ function
  | [ bin; hdr; trl ] ->
      let code, _, _ =
        run [ dpcc; "trace"; "app:cholesky"; "-o"; bin; "--format"; "bin"; "--no-cache" ]
      in
      check Alcotest.int "binary trace exits 0" 0 code;
      let data = slurp bin in
      let write path contents =
        let oc = open_out_bin path in
        output_string oc contents;
        close_out oc
      in
      (* Offset 5 starts the first chunk header (magic + version byte);
         7 bytes keeps only part of its length field. *)
      write hdr (String.sub data 0 7);
      (* Dropping the final byte leaves the 'E' trailer without its
         record count. *)
      write trl (String.sub data 0 (String.length data - 1));
      List.iter
        (fun (path, needle) ->
          let code, _, err = run [ dpsim; path ] in
          check Alcotest.int (Printf.sprintf "dpsim %s exits 2" needle) 2 code;
          check Alcotest.bool "one-line diagnostic" true (one_line err);
          check Alcotest.bool
            (Printf.sprintf "dpsim names file:offset and %s (got %S)" needle err)
            true
            (contains ~needle:(path ^ ":") err
            && contains ~needle:"truncated" err
            && contains ~needle err);
          let code, _, err = run [ dpcc; "convert"; path; path ^ ".out" ] in
          check Alcotest.int (Printf.sprintf "convert %s exits 2" needle) 2 code;
          check Alcotest.bool
            (Printf.sprintf "convert names file:offset and %s (got %S)" needle err)
            true
            (contains ~needle:(path ^ ":") err
            && contains ~needle:"truncated" err
            && contains ~needle err))
        [ (hdr, "chunk length"); (trl, "end-of-trace") ]
  | _ -> assert false

(* --- the chaos soak --- *)

let chaos_dir_counter = ref 0

let fresh_chaos_dir () =
  incr chaos_dir_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "dpower-cli-chaos-%d-%d" (Unix.getpid ()) !chaos_dir_counter)

let rec remove_tree path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> remove_tree (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let test_dpcc_chaos_green () =
  let dir = fresh_chaos_dir () in
  Fun.protect
    ~finally:(fun () -> remove_tree dir)
    (fun () ->
      let code, out, _ =
        run [ dpcc; "chaos"; "--seed"; "42"; "--budget"; "10"; "--out"; dir ]
      in
      check Alcotest.int "green soak exits 0" 0 code;
      check Alcotest.bool
        (Printf.sprintf "summary reports 0 findings (got %S)" out)
        true
        (contains ~needle:"10 scenarios" out && contains ~needle:"0 findings" out);
      check Alcotest.bool "no reproducers written" true (not (Sys.file_exists dir));
      let code, json, _ =
        run [ dpcc; "chaos"; "--seed"; "42"; "--budget"; "3"; "--out"; dir; "--json" ]
      in
      check Alcotest.int "json soak exits 0" 0 code;
      List.iter
        (fun needle ->
          check Alcotest.bool (Printf.sprintf "json has %s" needle) true
            (contains ~needle json))
        [ "\"seed\": 42"; "\"scenarios\": 3"; "\"findings\": []" ])

let test_dpcc_chaos_bad_flags () =
  let code, _, err = run [ dpcc; "chaos"; "--budget"; "0" ] in
  check Alcotest.int "--budget 0 exits 2" 2 code;
  check Alcotest.bool "names --budget" true (contains ~needle:"--budget" err);
  let code, _, err = run [ dpcc; "chaos"; "--sabotage"; "bogus"; "--budget"; "1" ] in
  check Alcotest.int "unknown --sabotage exits 2" 2 code;
  check Alcotest.bool
    (Printf.sprintf "echoes the kind (got %S)" err)
    true
    (contains ~needle:"bogus" err && contains ~needle:"energy" err);
  let code, _, err = run [ dpcc; "chaos"; "--replay"; "/nonexistent-chaos-dir" ] in
  check Alcotest.int "bad --replay exits 2" 2 code;
  check Alcotest.bool "names the directory" true
    (contains ~needle:"/nonexistent-chaos-dir" err)

(* The acceptance loop: a deliberately broken invariant is caught,
   shrunk to a minimal scenario, and the written reproducer replays the
   violation deterministically. *)
let test_dpcc_chaos_sabotage_shrink_replay () =
  let dir = fresh_chaos_dir () in
  Fun.protect
    ~finally:(fun () -> remove_tree dir)
    (fun () ->
      let code, out, _ =
        run
          [
            dpcc; "chaos"; "--seed"; "7"; "--budget"; "1"; "--shrink"; "--sabotage";
            "energy"; "--out"; dir;
          ]
      in
      check Alcotest.int "sabotaged soak exits 1" 1 code;
      check Alcotest.bool "reports the finding" true (contains ~needle:"1 finding" out);
      let repro =
        match Array.to_list (Sys.readdir dir) with
        | [ d ] -> Filename.concat dir d
        | _ -> Alcotest.fail "expected exactly one reproducer directory"
      in
      let diff = slurp (Filename.concat repro "diff.txt") in
      check Alcotest.bool
        (Printf.sprintf "shrunk to one nest, no faults (got %S)" diff)
        true
        (contains ~needle:"1 nest," diff && contains ~needle:"no faults" diff);
      check Alcotest.bool "diff names the broken invariant" true
        (contains ~needle:"energy-conservation" diff);
      List.iter
        (fun f ->
          check Alcotest.bool (f ^ " present") true
            (Sys.file_exists (Filename.concat repro f)))
        [ "scenario.dpl"; "scenario.spec"; "trace.txt"; "replay.cmd" ];
      (* The emitted replay line reproduces the violation... *)
      let code, out, _ =
        run [ dpcc; "chaos"; "--replay"; repro; "--sabotage"; "energy" ]
      in
      check Alcotest.int "replay under sabotage exits 1" 1 code;
      check Alcotest.bool "replay reports the violation" true
        (contains ~needle:"energy-conservation" out);
      (* ... and the same directory is clean once the hook is off. *)
      let code, out, _ = run [ dpcc; "chaos"; "--replay"; repro ] in
      check Alcotest.int "clean replay exits 0" 0 code;
      check Alcotest.bool "reports clean" true (contains ~needle:"clean" out))

let suites =
  [
    ( "cli",
      [
        Alcotest.test_case "dpsim malformed trace" `Quick test_dpsim_malformed_trace;
        Alcotest.test_case "dpsim unknown flag" `Quick test_dpsim_unknown_flag;
        Alcotest.test_case "dpsim bad --faults" `Quick test_dpsim_bad_faults_spec;
        Alcotest.test_case "dpsim usage" `Quick test_dpsim_usage;
        Alcotest.test_case "dpsim faulted run" `Quick test_dpsim_runs;
        Alcotest.test_case "version flags" `Quick test_version_flags;
        Alcotest.test_case "dpcc unknown command" `Quick test_dpcc_unknown_command;
        Alcotest.test_case "dpsim --obs gaps" `Quick test_dpsim_obs_gaps;
        Alcotest.test_case "dpsim --obs trace" `Quick test_dpsim_obs_trace;
        Alcotest.test_case "dpsim bad --obs mode" `Quick test_dpsim_obs_bad_mode;
        Alcotest.test_case "dpsim --obs with oracle" `Quick test_dpsim_obs_oracle_rejected;
        Alcotest.test_case "dpcc --profile" `Quick test_dpcc_profile;
        Alcotest.test_case "dpcc unknown flag" `Quick test_dpcc_unknown_flag;
        Alcotest.test_case "dpcc malformed source" `Quick test_dpcc_malformed_source;
        Alcotest.test_case "dpcc fault-sweep usage" `Quick test_dpcc_usage;
        Alcotest.test_case "dpcc --mode without --restructure" `Quick
          test_dpcc_mode_without_restructure;
        Alcotest.test_case "dpcc --mode multi at 1 proc" `Quick test_dpcc_mode_multi_one_proc;
        Alcotest.test_case "dpcc unknown --mode" `Quick test_dpcc_mode_unknown;
        Alcotest.test_case "dpcc --jobs 0" `Quick test_dpcc_bad_jobs;
        Alcotest.test_case "dpcc --procs 0" `Quick test_dpcc_bad_procs;
        Alcotest.test_case "dpcc serve --json deterministic" `Quick
          test_dpcc_serve_json_deterministic;
        Alcotest.test_case "dpcc serve human table" `Quick test_dpcc_serve_human_table;
        Alcotest.test_case "dpcc serve unknown --policy" `Quick test_dpcc_serve_bad_policy;
        Alcotest.test_case "dpcc serve --tenants 0" `Quick test_dpcc_serve_bad_tenants;
        Alcotest.test_case "dpcc serve --deadline 0" `Quick test_dpcc_serve_bad_deadline;
        Alcotest.test_case "dpcc serve negative --scrub-ms" `Quick test_dpcc_serve_bad_scrub;
        Alcotest.test_case "dpsim --live piped" `Quick test_dpsim_live_piped;
        Alcotest.test_case "dpsim --live with oracle" `Quick test_dpsim_live_oracle_rejected;
        Alcotest.test_case "dpcc serve --live" `Slow test_dpcc_serve_live_frames;
        Alcotest.test_case "dpcc obs diff self zero" `Quick test_dpcc_obs_diff_self_zero;
        Alcotest.test_case "dpcc obs diff --threshold" `Quick test_dpcc_obs_diff_threshold;
        Alcotest.test_case "dpcc obs unknown subcommand" `Quick test_dpcc_obs_unknown_sub;
        Alcotest.test_case "dpcc obs diff bad input" `Quick test_dpcc_obs_diff_bad_input;
        Alcotest.test_case "dpcc serve bad --faults" `Quick test_dpcc_serve_bad_faults;
        Alcotest.test_case "dpcc serve bad --decay" `Quick test_dpcc_serve_bad_decay;
        Alcotest.test_case "dpcc serve --decay availability" `Slow
          test_dpcc_serve_decay_reports_availability;
        Alcotest.test_case "dpcc serve --decay rate 0 identity" `Slow
          test_dpcc_serve_decay_rate_zero_identical;
        Alcotest.test_case "dpcc cache stat/clear" `Quick test_dpcc_cache_stat_clear;
        Alcotest.test_case "dpcc cache stat --json" `Slow test_dpcc_cache_stat_json;
        Alcotest.test_case "dpcc cache unknown subcommand" `Quick test_dpcc_cache_unknown_sub;
        Alcotest.test_case "dpcc cache corruption recovery" `Slow
          test_dpcc_cache_corruption_recovery;
        Alcotest.test_case "dpcc cache concurrent runs" `Slow test_dpcc_cache_concurrent;
        Alcotest.test_case "dpcc trace text/bin roundtrip" `Slow
          test_dpcc_trace_format_roundtrip;
        Alcotest.test_case "dpcc trace --format bin needs -o" `Quick
          test_dpcc_trace_bin_needs_output;
        Alcotest.test_case "dpcc convert errors" `Quick test_dpcc_convert_errors;
        Alcotest.test_case "dpsim binary auto-detect" `Slow test_dpsim_bin_autodetect;
        Alcotest.test_case "dpsim truncated binary" `Slow test_dpsim_truncated_bin;
        Alcotest.test_case "bad --shards" `Quick test_cli_bad_shards;
        Alcotest.test_case "dpcc simulate --shards identity" `Slow
          test_dpcc_simulate_shards_identity;
        Alcotest.test_case "dpcc cache stat formats" `Slow test_dpcc_cache_stat_formats;
        Alcotest.test_case "dpcc cache warm binary identity" `Slow
          test_dpcc_cache_warm_bin_identity;
        Alcotest.test_case "fault/knob diagnostics echo values" `Quick
          test_cli_fault_spec_echoes_value;
        Alcotest.test_case "binary truncation points" `Slow test_bin_truncation_points;
        Alcotest.test_case "dpcc chaos green soak" `Slow test_dpcc_chaos_green;
        Alcotest.test_case "dpcc chaos bad flags" `Quick test_dpcc_chaos_bad_flags;
        Alcotest.test_case "dpcc chaos sabotage shrink replay" `Slow
          test_dpcc_chaos_sabotage_shrink_replay;
      ] );
  ]
