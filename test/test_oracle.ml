(* Tests for the offline-optimal power scheduler and the compiler hint
   pipeline: per-gap optimality, the energy lower bound sandwich, and
   hint-driven proactive execution. *)

module Disk_model = Dp_disksim.Disk_model
module Policy = Dp_disksim.Policy
module Engine = Dp_disksim.Engine
module Request = Dp_trace.Request
module Hint = Dp_trace.Hint
module Oracle = Dp_oracle.Oracle
module Ir = Dp_ir.Ir

let check = Alcotest.check
let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let m = Disk_model.ultrastar_36z15

let gap ?(start = 0.0) ?(terminal = false) len_s =
  { Oracle.start_ms = start; len_ms = len_s *. 1000.0; terminal }

(* --- best_gap: exact per-gap optima, checked by hand --- *)

let test_best_gap_short () =
  (* 5 s cannot fit the 12.4 s spin round trip: idle at full speed. *)
  let a, e = Oracle.best_gap Oracle.Tpm_space (gap 5.0) in
  check Alcotest.bool "stay idle" true (a = Oracle.Stay_idle);
  check (Alcotest.float 1e-6) "idle energy" (10.2 *. 5.0) e

let test_best_gap_spin_cycle () =
  (* 60 s: spin down (13 J / 1.5 s), standby, spin up (135 J / 10.9 s). *)
  let a, e = Oracle.best_gap Oracle.Tpm_space (gap 60.0) in
  check Alcotest.bool "spin cycle" true (a = Oracle.Spin_cycle);
  check (Alcotest.float 1e-6) "cycle energy"
    (13.0 +. 135.0 +. (2.5 *. (60.0 -. 1.5 -. 10.9)))
    e

let test_best_gap_breakeven () =
  (* The analytic break-even of the cycle-vs-idle tradeoff is ~15.19 s,
     matching the model's tpm_breakeven_s = 15.2. *)
  let a_below, _ = Oracle.best_gap Oracle.Tpm_space (gap 15.0) in
  let a_above, _ = Oracle.best_gap Oracle.Tpm_space (gap 15.4) in
  check Alcotest.bool "below breakeven idles" true (a_below = Oracle.Stay_idle);
  check Alcotest.bool "above breakeven cycles" true (a_above = Oracle.Spin_cycle)

let test_best_gap_terminal () =
  (* A terminal gap never pays the up-leg: cheaper, and beneficial for
     shorter gaps. *)
  let _, e_interior = Oracle.best_gap Oracle.Tpm_space (gap 60.0) in
  let a, e_terminal = Oracle.best_gap Oracle.Tpm_space (gap ~terminal:true 60.0) in
  check Alcotest.bool "terminal still cycles" true (a = Oracle.Spin_cycle);
  check (Alcotest.float 1e-6) "terminal drops spin-up"
    (13.0 +. (2.5 *. (60.0 -. 1.5)))
    e_terminal;
  check Alcotest.bool "terminal cheaper" true (e_terminal < e_interior)

let test_best_gap_drpm_dip () =
  (* A 5 s gap is too short for a spin cycle but fits an RPM dip. *)
  let a, e = Oracle.best_gap Oracle.Drpm_space (gap 5.0) in
  (match a with
  | Oracle.Rpm_dip r ->
      check Alcotest.bool "dips to a real level" true (List.mem r (Disk_model.rpm_levels m))
  | _ -> Alcotest.fail "expected an RPM dip");
  check Alcotest.bool "beats idling" true (e < 10.2 *. 5.0)

let test_best_gap_full_is_min () =
  List.iter
    (fun len ->
      let _, t = Oracle.best_gap Oracle.Tpm_space (gap len) in
      let _, d = Oracle.best_gap Oracle.Drpm_space (gap len) in
      let _, f = Oracle.best_gap Oracle.Full_space (gap len) in
      check (Alcotest.float 1e-9)
        (Printf.sprintf "full = min at %.1f s" len)
        (Float.min t d) f)
    [ 0.5; 5.0; 14.0; 16.0; 60.0; 300.0 ]

let test_schedule_sums () =
  let gaps = [ gap 5.0; gap ~start:20_000.0 60.0; gap ~start:90_000.0 ~terminal:true 30.0 ] in
  let p = Oracle.schedule Oracle.Full_space gaps in
  check Alcotest.int "one step per gap" 3 (List.length p.Oracle.steps);
  let sum =
    List.fold_left (fun acc (s : Oracle.step) -> acc +. s.Oracle.energy_j) 0.0 p.Oracle.steps
  in
  check (Alcotest.float 1e-9) "plan energy is the sum" sum p.Oracle.energy_j

(* --- the lower bound sandwich (the headline property) --- *)

let req ?(proc = 0) ?(disk = 0) ?(lba = 0) ~think () =
  {
    Request.arrival_ms = 0.0;
    think_ms = think;
    seg = 0;
    address = lba;
    lba;
    size = 64 * 1024;
    mode = Ir.Read;
    proc;
    disk;
  }

let trace_gen =
  QCheck2.Gen.(
    list_size (int_range 1 25)
      (map2
         (fun think disk -> req ~think:(float_of_int think) ~disk ~lba:(disk * 7919 * 4096) ())
         (int_range 1 30_000) (int_range 0 2)))

let all_policies =
  [
    Policy.No_pm;
    Policy.default_tpm;
    Policy.tpm ~proactive:true ();
    Policy.default_drpm;
    Policy.drpm ~proactive:true ();
    Policy.drpm ~min_rpm:9000 ();
  ]

let prop_sandwich =
  qtest ~count:60 "Oracle: standby floor <= bound <= every policy" trace_gen (fun reqs ->
      let bound = Oracle.lower_bound ~disks:3 reqs in
      let floor = Oracle.standby_floor_j bound.Oracle.base in
      floor <= bound.Oracle.energy_j +. 1e-6
      && List.for_all
           (fun p ->
             let r = Engine.simulate ~disks:3 p reqs in
             bound.Oracle.energy_j <= r.Engine.energy_j +. 1e-6)
           all_policies)

let prop_space_ordering =
  qtest ~count:60 "Oracle: restricted spaces bound their policies" trace_gen (fun reqs ->
      let e space = Oracle.lower_bound_energy_j ~space ~disks:3 reqs in
      let full = e Oracle.Full_space
      and tpm = e Oracle.Tpm_space
      and drpm = e Oracle.Drpm_space in
      (* The full space subsumes both restrictions... *)
      full <= tpm +. 1e-6
      && full <= drpm +. 1e-6
      (* ...and each restricted oracle bounds its own policy family. *)
      && tpm
         <= (Engine.simulate ~disks:3 Policy.default_tpm reqs).Engine.energy_j +. 1e-6
      && tpm
         <= (Engine.simulate ~disks:3 (Policy.tpm ~proactive:true ()) reqs).Engine.energy_j
            +. 1e-6
      && drpm
         <= (Engine.simulate ~disks:3 Policy.default_drpm reqs).Engine.energy_j +. 1e-6)

let test_bound_on_known_trace () =
  (* One disk, one 60 s gap: the bound is the busy floor plus the
     hand-computed optimal spin cycle (terminal tail gap is tiny). *)
  let reqs = [ req ~think:10.0 (); req ~think:60_000.0 ~lba:(1 lsl 30) () ] in
  let bound = Oracle.lower_bound ~space:Oracle.Tpm_space ~disks:1 reqs in
  let pro = Engine.simulate ~disks:1 (Policy.tpm ~proactive:true ()) reqs in
  check Alcotest.bool "bound <= proactive TPM" true
    (bound.Oracle.energy_j <= pro.Engine.energy_j +. 1e-6);
  (* The proactive policy is optimal here, so the bound is tight. *)
  check (Alcotest.float 1.0) "bound tight on a single long gap" pro.Engine.energy_j
    bound.Oracle.energy_j

(* --- compiler hints --- *)

let test_hints_well_formed () =
  let reqs =
    Oracle.nominalize ~disks:2
      [
        req ~disk:0 ~think:10.0 ();
        req ~disk:1 ~think:10.0 ();
        req ~disk:0 ~think:60_000.0 ~lba:(1 lsl 30) ();
        req ~disk:1 ~think:20_000.0 ~lba:(1 lsl 28) ();
      ]
  in
  let hints = Oracle.hints_of_trace ~disks:2 reqs in
  check Alcotest.bool "nonempty" true (hints <> []);
  let rec nondecreasing = function
    | (a : Hint.t) :: (b :: _ as rest) ->
        a.Hint.at_ms <= b.Hint.at_ms && nondecreasing rest
    | _ -> true
  in
  check Alcotest.bool "sorted by time" true (nondecreasing hints);
  List.iter
    (fun (h : Hint.t) ->
      check Alcotest.bool "disk in range" true (h.Hint.disk >= 0 && h.Hint.disk < 2))
    hints;
  (* Tpm_space hints come as spin-down / pre-spin-up pairs per cycle. *)
  let tpm_hints = Oracle.hints_of_trace ~space:Oracle.Tpm_space ~disks:2 reqs in
  let downs =
    List.length (List.filter (fun h -> h.Hint.action = Hint.Spin_down) tpm_hints)
  in
  let ups =
    List.length
      (List.filter (fun h -> match h.Hint.action with Hint.Pre_spin_up _ -> true | _ -> false)
         tpm_hints)
  in
  check Alcotest.bool "some spin-downs" true (downs > 0);
  (* Terminal gaps spin down without a matching spin-up. *)
  check Alcotest.bool "ups <= downs" true (ups <= downs)

let test_hinted_tpm_no_stall () =
  (* The acceptance scenario: hints let proactive TPM pre-spin the disk,
     eliminating the reactive spin-up stall while saving energy. *)
  let reqs =
    Oracle.nominalize ~disks:1
      [ req ~think:10.0 (); req ~think:60_000.0 ~lba:(1 lsl 30) () ]
  in
  let hints = Oracle.hints_of_trace ~space:Oracle.Tpm_space ~disks:1 reqs in
  let base = Engine.simulate ~disks:1 Policy.No_pm reqs in
  let reactive = Engine.simulate ~disks:1 Policy.default_tpm reqs in
  let hinted = Engine.simulate ~hints ~disks:1 (Policy.tpm ~proactive:true ()) reqs in
  check Alcotest.int "hinted spin down" 1 hinted.Engine.per_disk.(0).Engine.spin_downs;
  (* Stall reduction: reactive eats the 10.9 s spin-up in its io time. *)
  check Alcotest.bool "reactive stalls" true (reactive.Engine.io_time_ms > 10_000.0);
  check (Alcotest.float 1e-6) "hinted does not stall" base.Engine.io_time_ms
    hinted.Engine.io_time_ms;
  check Alcotest.bool "hinted saves energy" true
    (hinted.Engine.energy_j < base.Engine.energy_j);
  check Alcotest.bool "hinted <= reactive energy" true
    (hinted.Engine.energy_j <= reactive.Engine.energy_j +. 1e-6)

let test_hinted_drpm_executes_set_rpm () =
  let reqs =
    Oracle.nominalize ~disks:1
      [ req ~think:10.0 (); req ~think:30_000.0 ~lba:(1 lsl 30) () ]
  in
  let hints = Oracle.hints_of_trace ~space:Oracle.Drpm_space ~disks:1 reqs in
  check Alcotest.bool "emits a set-rpm" true
    (List.exists (fun h -> match h.Hint.action with Hint.Set_rpm _ -> true | _ -> false) hints);
  let base = Engine.simulate ~disks:1 Policy.No_pm reqs in
  let hinted = Engine.simulate ~hints ~disks:1 (Policy.drpm ~proactive:true ()) reqs in
  check (Alcotest.float 1e-6) "served at full speed" base.Engine.io_time_ms
    hinted.Engine.io_time_ms;
  check Alcotest.bool "saves energy" true (hinted.Engine.energy_j < base.Engine.energy_j);
  check Alcotest.bool "speed changed" true
    (hinted.Engine.per_disk.(0).Engine.speed_changes >= 2)

let prop_hinted_never_stalls =
  qtest ~count:60 "Oracle hints: hinted proactive never inflates io time" trace_gen
    (fun reqs ->
      let reqs = Oracle.nominalize ~disks:3 reqs in
      let base = Engine.simulate ~disks:3 Policy.No_pm reqs in
      let tpm_hints = Oracle.hints_of_trace ~space:Oracle.Tpm_space ~disks:3 reqs in
      let drpm_hints = Oracle.hints_of_trace ~space:Oracle.Drpm_space ~disks:3 reqs in
      let t = Engine.simulate ~hints:tpm_hints ~disks:3 (Policy.tpm ~proactive:true ()) reqs in
      let d =
        Engine.simulate ~hints:drpm_hints ~disks:3 (Policy.drpm ~proactive:true ()) reqs
      in
      t.Engine.io_time_ms <= base.Engine.io_time_ms +. 1e-6
      && d.Engine.io_time_ms <= base.Engine.io_time_ms +. 1e-6
      && t.Engine.energy_j <= base.Engine.energy_j +. 1e-6
      && d.Engine.energy_j <= base.Engine.energy_j +. 1e-6)

let prop_nominalize_idempotent =
  qtest ~count:60 "Oracle.nominalize: idempotent, preserves requests" trace_gen (fun reqs ->
      let once = Oracle.nominalize ~disks:3 reqs in
      let twice = Oracle.nominalize ~disks:3 once in
      List.length once = List.length reqs
      && List.for_all2
           (fun (a : Request.t) (b : Request.t) ->
             Float.abs (a.Request.arrival_ms -. b.Request.arrival_ms) < 1e-6
             && a.Request.disk = b.Request.disk
             && a.Request.think_ms = b.Request.think_ms)
           once twice
      (* The reference arrivals change nothing physical: the closed-loop
         engine times off think chains, not arrivals. *)
      && Float.abs
           ((Engine.simulate ~disks:3 Policy.No_pm reqs).Engine.energy_j
           -. (Engine.simulate ~disks:3 Policy.No_pm once).Engine.energy_j)
         < 1e-6)

let test_hint_validation () =
  let reqs = [ req ~think:10.0 () ] in
  let bad = [ { Hint.at_ms = 0.0; disk = 7; action = Hint.Spin_down } ] in
  match Engine.simulate ~hints:bad ~disks:1 Policy.default_tpm reqs with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range hint disk must be rejected"

let suites =
  [
    ( "oracle.gaps",
      [
        Alcotest.test_case "short gap idles" `Quick test_best_gap_short;
        Alcotest.test_case "long gap spin-cycles" `Quick test_best_gap_spin_cycle;
        Alcotest.test_case "breakeven boundary" `Quick test_best_gap_breakeven;
        Alcotest.test_case "terminal gap" `Quick test_best_gap_terminal;
        Alcotest.test_case "drpm dip" `Quick test_best_gap_drpm_dip;
        Alcotest.test_case "full space is the min" `Quick test_best_gap_full_is_min;
        Alcotest.test_case "schedule sums steps" `Quick test_schedule_sums;
      ] );
    ( "oracle.bound",
      [
        Alcotest.test_case "tight on a known trace" `Quick test_bound_on_known_trace;
        prop_sandwich;
        prop_space_ordering;
      ] );
    ( "oracle.hints",
      [
        Alcotest.test_case "well-formed stream" `Quick test_hints_well_formed;
        Alcotest.test_case "hinted TPM avoids the stall" `Quick test_hinted_tpm_no_stall;
        Alcotest.test_case "hinted DRPM sets speed" `Quick test_hinted_drpm_executes_set_rpm;
        Alcotest.test_case "hint validation" `Quick test_hint_validation;
        prop_hinted_never_stalls;
        prop_nominalize_idempotent;
      ] );
  ]
