(* Tests for the observability subsystem: sinks, metrics, reports,
   exporters, and the pass profiler. *)

module Sink = Dp_obs.Sink
module Event = Dp_obs.Event
module Metrics = Dp_obs.Metrics
module Report = Dp_obs.Report
module Live = Dp_obs.Live
module Tty = Dp_obs.Tty
module Diff = Dp_obs.Diff
module Chrome = Dp_obs.Chrome
module Prof = Dp_obs.Prof
module Fault_model = Dp_faults.Fault_model
module Engine = Dp_disksim.Engine
module Policy = Dp_disksim.Policy
module Request = Dp_trace.Request
module Ir = Dp_ir.Ir

let check = Alcotest.check

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let decision d at s = Event.Decision { disk = d; at_ms = at; decision = s }

let power ?(disk = 0) ?(energy = 0.0) state start stop =
  Event.Power
    { disk; state; start_ms = start; stop_ms = stop; charge_ms = stop -. start; energy_j = energy }

let service ?(disk = 0) ?(lba = 0) ~arrival ~start ~stop () =
  Event.Service
    { disk; proc = 0; arrival_ms = arrival; start_ms = start; stop_ms = stop; lba; bytes = 65536 }

let req ?(proc = 0) ?(disk = 0) ?(lba = 0) ~think () =
  {
    Request.arrival_ms = 0.0;
    think_ms = think;
    seg = 0;
    address = lba;
    lba;
    size = 64 * 1024;
    mode = Ir.Read;
    proc;
    disk;
  }

(* --- sinks --- *)

let test_null_sink () =
  check Alcotest.bool "disabled" false (Sink.enabled Sink.null);
  Sink.emit Sink.null (decision 0 0.0 "x");
  check Alcotest.int "no events" 0 (List.length (Sink.events Sink.null));
  check Alcotest.int "no length" 0 (Sink.length Sink.null);
  check Alcotest.int "no drops" 0 (Sink.dropped Sink.null)

let test_ring_sink () =
  let s = Sink.ring ~capacity:4 () in
  check Alcotest.bool "enabled" true (Sink.enabled s);
  for i = 1 to 3 do
    Sink.emit s (decision 0 (float_of_int i) "d")
  done;
  check Alcotest.int "holds three" 3 (Sink.length s);
  check Alcotest.int "nothing dropped" 0 (Sink.dropped s);
  check
    Alcotest.(list (float 0.0))
    "oldest first" [ 1.0; 2.0; 3.0 ]
    (List.map Event.time_ms (Sink.events s));
  for i = 4 to 7 do
    Sink.emit s (decision 0 (float_of_int i) "d")
  done;
  check Alcotest.int "capped at capacity" 4 (Sink.length s);
  check Alcotest.int "three dropped" 3 (Sink.dropped s);
  check
    Alcotest.(list (float 0.0))
    "window slid" [ 4.0; 5.0; 6.0; 7.0 ]
    (List.map Event.time_ms (Sink.events s));
  match Sink.ring ~capacity:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 must be rejected"

let test_stream_sink () =
  let seen = ref [] in
  let s = Sink.stream (fun e -> seen := Event.time_ms e :: !seen) in
  check Alcotest.bool "enabled" true (Sink.enabled s);
  Sink.emit s (decision 0 1.0 "a");
  Sink.emit s (decision 0 2.0 "b");
  check Alcotest.(list (float 0.0)) "callback saw both" [ 2.0; 1.0 ] !seen;
  check Alcotest.int "retains nothing" 0 (List.length (Sink.events s))

let test_sink_kind () =
  (* events/length report retention, not traffic: kind is how a caller
     tells "nothing recorded" from "nothing emitted". *)
  check Alcotest.bool "null" true (Sink.kind Sink.null = Sink.Null);
  check Alcotest.bool "ring" true (Sink.kind (Sink.ring ~capacity:4 ()) = Sink.Ring);
  let s = Sink.stream ignore in
  check Alcotest.bool "stream" true (Sink.kind s = Sink.Stream);
  Sink.emit s (decision 0 1.0 "x");
  check Alcotest.int "stream retains nothing after traffic" 0 (Sink.length s);
  check Alcotest.bool "still enabled" true (Sink.enabled s)

(* --- metrics --- *)

let test_log_edges () =
  let e = Metrics.log_edges ~lo:1.0 ~hi:1e3 () in
  check Alcotest.int "4 edges" 4 (Array.length e);
  Array.iteri
    (fun i v -> check (Alcotest.float 1e-9) "decade edge" (10.0 ** float_of_int i) v)
    e;
  check Alcotest.int "per_decade 2 doubles them"
    7
    (Array.length (Metrics.log_edges ~per_decade:2 ~lo:1.0 ~hi:1e3 ()))

let test_histogram_observe () =
  let h = Metrics.histogram ~edges:[| 1.0; 10.0; 100.0 |] "t" in
  List.iter (Metrics.observe h) [ 0.5; 5.0; 5.0; 50.0; 5000.0 ];
  check Alcotest.(list int) "bucketed" [ 1; 2; 1; 1 ] (Array.to_list h.Metrics.counts);
  check Alcotest.int "n" 5 h.Metrics.n;
  check (Alcotest.float 1e-9) "sum" 5060.5 h.Metrics.sum;
  check (Alcotest.float 1e-9) "max" 5000.0 h.Metrics.vmax;
  check (Alcotest.float 1e-9) "mean" (5060.5 /. 5.0) (Metrics.mean h);
  (* Quantiles resolve to bucket upper edges (vmax for overflow). *)
  check (Alcotest.float 1e-9) "median" 10.0 (Metrics.quantile h 0.5);
  check (Alcotest.float 1e-9) "q=1" 5000.0 (Metrics.quantile h 1.0);
  let h2 = Metrics.histogram ~edges:[| 1.0; 10.0; 100.0 |] "t2" in
  Metrics.observe h2 5.0;
  Metrics.merge_into ~dst:h2 h;
  check Alcotest.int "merged n" 6 h2.Metrics.n;
  check Alcotest.(list int) "merged counts" [ 1; 3; 1; 1 ] (Array.to_list h2.Metrics.counts)

let test_registry () =
  let r = Metrics.registry () in
  let c = Metrics.counter r "events" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  check Alcotest.int "counted" 5 c.Metrics.count;
  check Alcotest.bool "create-on-first-use returns same" true
    (Metrics.counter r "events" == c);
  let g = Metrics.gauge r "depth" in
  Metrics.set g 3.5;
  check (Alcotest.float 0.0) "gauge set" 3.5 g.Metrics.value;
  ignore (Metrics.hist r "gaps");
  check Alcotest.int "one of each" 1 (List.length (Metrics.counters r));
  check Alcotest.int "one gauge" 1 (List.length (Metrics.gauges r));
  check Alcotest.int "one hist" 1 (List.length (Metrics.histograms r));
  match Metrics.gauge r "events" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind clash must be rejected"

(* --- events: JSON wire format --- *)

let test_event_json_escaping () =
  let j = Event.to_json (decision 2 1.5 "a\"b\\c\nd") in
  check Alcotest.bool "quote escaped" true
    (contains ~needle:{|a\"b\\c\nd|} j);
  check Alcotest.bool "no raw newline" false (String.contains j '\n');
  let j2 = Event.to_json (Event.Fault { disk = 0; at_ms = 1.0; kind = "x"; cost_ms = Float.nan }) in
  check Alcotest.bool "NaN becomes null" true
    (contains ~needle:"\"cost_ms\":null" j2)

let test_event_accessors () =
  check Alcotest.int "disk" 3 (Event.disk (service ~disk:3 ~arrival:1.0 ~start:2.0 ~stop:3.0 ()));
  check (Alcotest.float 0.0) "span start is the timestamp" 2.0
    (Event.time_ms (power Event.Standby 2.0 9.0));
  check Alcotest.string "track label" "IDLE@6000" (Event.track_name (Event.Idle 6000));
  check Alcotest.string "state name" "standby" (Event.state_name Event.Standby)

(* --- report --- *)

let test_report_of_events () =
  (* Hand-built disk-0 story: serve 10 ms, idle 1000 ms, standby 500 ms
     (entered via a 10 ms transition), spin up 20 ms, serve again. *)
  let events =
    [
      power Event.Active ~energy:0.135 0.0 10.0;
      service ~arrival:0.0 ~start:0.0 ~stop:10.0 ();
      power (Event.Idle 15000) ~energy:10.2 10.0 1010.0;
      power Event.Transition 1010.0 1020.0;
      power Event.Standby 1020.0 1520.0;
      power Event.Transition 1520.0 1540.0;
      power Event.Active ~energy:0.135 1540.0 1550.0;
      service ~arrival:1535.0 ~start:1540.0 ~stop:1550.0 ();
      Event.Hint_exec { disk = 0; at_ms = 1520.0; action = "pre-spin-up" };
      Event.Fault { disk = 0; at_ms = 1540.0; kind = "latency-spike"; cost_ms = 1.0 };
      decision 0 1010.0 "tpm:threshold-spin-down";
    ]
  in
  let r = (Report.of_events ~disks:1 events).(0) in
  check Alcotest.int "requests" 2 r.Report.requests;
  check (Alcotest.float 1e-9) "busy" 20.0 r.Report.busy_ms;
  check (Alcotest.float 1e-9) "idle" 1000.0 r.Report.idle_ms;
  check (Alcotest.float 1e-9) "standby" 500.0 r.Report.standby_ms;
  check (Alcotest.float 1e-9) "transition" 30.0 r.Report.transition_ms;
  check (Alcotest.float 1e-9) "energy" (10.2 +. 0.27) r.Report.energy_j;
  check Alcotest.int "hints" 1 r.Report.hints;
  check Alcotest.int "faults" 1 r.Report.faults;
  check Alcotest.int "decisions" 1 r.Report.decisions;
  (* One gap: idle at 10 through the spin-up's end at 1540. *)
  check Alcotest.int "one idle gap" 1 r.Report.idle_gap_ms.Metrics.n;
  check (Alcotest.float 1e-9) "gap length" 1530.0 r.Report.idle_gap_ms.Metrics.sum;
  check Alcotest.int "one standby stay" 1 r.Report.standby_residency_ms.Metrics.n;
  check (Alcotest.float 1e-9) "residency" 500.0 r.Report.standby_residency_ms.Metrics.sum;
  (* Responses: 10 and 15 ms (second waited 5 ms for the spin-up). *)
  check Alcotest.int "responses" 2 r.Report.response_ms.Metrics.n;
  check (Alcotest.float 1e-9) "response sum" 25.0 r.Report.response_ms.Metrics.sum

let test_report_jsonl () =
  let events = [ power Event.Active 0.0 10.0; service ~arrival:0.0 ~start:0.0 ~stop:10.0 () ] in
  let lines =
    String.split_on_char '\n' (String.trim (Report.jsonl (Report.of_events ~disks:2 events)))
  in
  check Alcotest.int "one line per disk" 2 (List.length lines);
  check Alcotest.bool "has histograms" true
    (contains ~needle:"\"idle_gaps\":{\"edges\":" (List.hd lines))

let test_report_percentile_edges () =
  (* A disk that served nothing has an all-zero quantile function... *)
  let r0 = (Report.of_events ~disks:1 []).(0) in
  List.iter
    (fun q ->
      check (Alcotest.float 0.0)
        (Printf.sprintf "empty q=%g" q)
        0.0
        (Metrics.quantile r0.Report.response_ms q))
    [ 0.0; 0.5; 0.99; 1.0 ];
  (* ...and a single response answers every quantile with its bucket. *)
  let r1 =
    (Report.of_events ~disks:1 [ service ~arrival:0.0 ~start:0.0 ~stop:7.0 () ]).(0)
  in
  let bucket = Metrics.quantile r1.Report.response_ms 0.5 in
  check Alcotest.bool "single-event bucket covers the response" true (bucket >= 7.0);
  List.iter
    (fun q ->
      check (Alcotest.float 0.0)
        (Printf.sprintf "one-event q=%g" q)
        bucket
        (Metrics.quantile r1.Report.response_ms q))
    [ 0.01; 0.5; 0.99; 1.0 ]

let test_report_builder_incremental () =
  (* builder is of_events, one event at a time. *)
  let events =
    [
      power Event.Active ~energy:0.1 0.0 10.0;
      service ~arrival:0.0 ~start:0.0 ~stop:10.0 ();
      power (Event.Idle 15000) ~energy:5.0 10.0 1010.0;
      power Event.Standby 1010.0 2010.0;
      Event.Hint_exec { disk = 0; at_ms = 1000.0; action = "spin-down" };
    ]
  in
  let feed, finish = Report.builder ~disks:1 in
  List.iter feed events;
  let inc = (finish ()).(0) in
  let batch = (Report.of_events ~disks:1 events).(0) in
  check Alcotest.int "requests agree" batch.Report.requests inc.Report.requests;
  check (Alcotest.float 0.0) "energy agrees" batch.Report.energy_j inc.Report.energy_j;
  check (Alcotest.float 0.0) "standby agrees" batch.Report.standby_ms inc.Report.standby_ms;
  check Alcotest.int "gaps agree" batch.Report.idle_gap_ms.Metrics.n
    inc.Report.idle_gap_ms.Metrics.n;
  check (Alcotest.float 0.0) "gap mass agrees" batch.Report.idle_gap_ms.Metrics.sum
    inc.Report.idle_gap_ms.Metrics.sum;
  check Alcotest.string "jsonl agrees" (Report.jsonl [| batch |]) (Report.jsonl [| inc |])

(* --- live --- *)

(* The hand-built disk-0 story of test_report_of_events, reused. *)
let live_story =
  [
    power Event.Active ~energy:0.135 0.0 10.0;
    service ~arrival:0.0 ~start:0.0 ~stop:10.0 ();
    power (Event.Idle 15000) ~energy:10.2 10.0 1010.0;
    power Event.Transition 1010.0 1020.0;
    power Event.Standby 1020.0 1520.0;
    power Event.Transition 1520.0 1540.0;
    power Event.Active ~energy:0.135 1540.0 1550.0;
    service ~arrival:1535.0 ~start:1540.0 ~stop:1550.0 ();
    Event.Hint_exec { disk = 0; at_ms = 1520.0; action = "pre-spin-up" };
    Event.Fault { disk = 0; at_ms = 1540.0; kind = "latency-spike"; cost_ms = 1.0 };
    Event.Repair { disk = 0; at_ms = 1541.0; op = "remap"; blocks = 1; cost_ms = 2.0 };
    decision 0 1010.0 "tpm:threshold-spin-down";
  ]

let test_live_fold () =
  let t = Live.create ~epoch_ms:100.0 ~disks:1 () in
  List.iter (Live.feed t) live_story;
  let d = (Live.disks t).(0) in
  check Alcotest.bool "ends active" true (d.Live.state = Event.Active);
  check (Alcotest.float 1e-9) "busy" 20.0 d.Live.busy_ms;
  check (Alcotest.float 1e-9) "idle" 1000.0 d.Live.idle_ms;
  check (Alcotest.float 1e-9) "standby" 500.0 d.Live.standby_ms;
  check (Alcotest.float 1e-9) "transition" 30.0 d.Live.transition_ms;
  check (Alcotest.float 1e-9) "energy" (10.2 +. 0.27) d.Live.energy_j;
  check Alcotest.int "requests" 2 d.Live.requests;
  check Alcotest.int "hints" 1 d.Live.hints;
  check Alcotest.int "faults" 1 d.Live.faults;
  check Alcotest.int "repairs" 1 d.Live.repairs;
  check (Alcotest.float 1e-9) "now" 1550.0 (Live.now_ms t);
  check Alcotest.int "events folded" (List.length live_story) (Live.events_seen t);
  (* Residency clock: the active span began at 1540. *)
  check (Alcotest.float 1e-9) "residency" 10.0 (Live.residency_ms t ~disk:0);
  check Alcotest.int "epochs" 15 (Live.epochs_completed t)

let test_live_track () =
  let t = Live.create ~epoch_ms:100.0 ~disks:1 () in
  List.iter (Live.feed t) live_story;
  let track = Bytes.to_string (Live.track_chars t ~disk:0) in
  check Alcotest.int "one char per completed epoch" 15 (String.length track);
  (* Epoch 0 is 10 ms active + 90 ms idle; epochs 1..9 pure idle;
     epoch 10 is 10 idle + 10 transition + 80 standby; 11..14 standby. *)
  check Alcotest.string "dominant states" "iiiiiiiiii....." track;
  (* The ring keeps only the newest [track] epochs. *)
  let small = Live.create ~epoch_ms:100.0 ~track:4 ~disks:1 () in
  List.iter (Live.feed small) live_story;
  check Alcotest.string "ring keeps the tail" "...."
    (Bytes.to_string (Live.track_chars small ~disk:0))

let test_live_window () =
  let t = Live.create ~window:4 ~disks:1 () in
  (* Responses 1..6 ms; the window holds the last four: 3,4,5,6. *)
  for i = 1 to 6 do
    let stop = (float_of_int i *. 1000.0) +. float_of_int i in
    Live.feed t (service ~arrival:(float_of_int i *. 1000.0) ~start:(float_of_int i *. 1000.0) ~stop ())
  done;
  check (Alcotest.float 1e-9) "p50 over window" 4.0 (Live.recent_percentile t ~disk:0 0.5);
  check (Alcotest.float 1e-9) "p100 over window" 6.0 (Live.recent_percentile t ~disk:0 1.0);
  check (Alcotest.float 1e-9) "p1 over window" 3.0 (Live.recent_percentile t ~disk:0 0.01);
  (* EWMA of a constant 1000 ms inter-arrival is 1000 ms -> 1 Hz. *)
  check (Alcotest.float 1e-9) "arrival rate" 1.0 (Live.arrival_rate_hz t ~disk:0);
  check (Alcotest.float 0.0) "no responses yet elsewhere" 0.0
    (Live.recent_percentile (Live.create ~disks:1 ()) ~disk:0 0.5)

let test_live_rejects () =
  (match Live.create ~disks:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "disks 0 must be rejected");
  (match Live.create ~epoch_ms:0.0 ~disks:1 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "epoch 0 must be rejected");
  let t = Live.create ~disks:1 () in
  match Live.feed t (decision 5 0.0 "x") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range disk must be rejected"

(* --- tty --- *)

let test_tty_frame () =
  let t = Live.create ~epoch_ms:100.0 ~disks:1 () in
  List.iter (Live.feed t) live_story;
  let plain = Tty.frame ~mode:Tty.Plain t in
  check Alcotest.string "frames are pure" plain (Tty.frame ~mode:Tty.Plain t);
  check Alcotest.bool "header carries simulated time" true
    (contains ~needle:"t=1.6s" plain);
  check Alcotest.bool "row shows the state" true (contains ~needle:"ACTIVE" plain);
  check Alcotest.bool "row shows the track" true (contains ~needle:"iiiiiiiiii....." plain);
  check Alcotest.bool "plain has no escapes" false (String.contains plain '\x1b');
  let ansi = Tty.frame ~mode:Tty.Ansi t in
  check Alcotest.bool "ansi homes the cursor" true (contains ~needle:"\x1b[H" ansi)

let test_tty_driver () =
  let t = Live.create ~epoch_ms:100.0 ~disks:1 () in
  let frames = ref 0 in
  let buf = Buffer.create 256 in
  let feed, finish =
    Tty.driver ~out:(fun s -> incr frames; Buffer.add_string buf s) t
  in
  List.iter feed live_story;
  (* 15 epochs elapse, but epoch crossings cluster inside single spans:
     each crossing event yields exactly one frame. *)
  let mid = !frames in
  check Alcotest.bool "frames emitted on epoch crossings" true (mid > 0 && mid <= 15);
  finish ();
  check Alcotest.int "finish emits the final frame" (mid + 1) !frames;
  check Alcotest.bool "frames accumulate in order" true
    (contains ~needle:"t=1.6s" (Buffer.contents buf))

(* --- diff --- *)

let two_run_artifacts () =
  let run_a =
    [
      power Event.Active ~energy:0.1 0.0 10.0;
      service ~arrival:0.0 ~start:0.0 ~stop:10.0 ();
      power (Event.Idle 15000) ~energy:5.0 10.0 1010.0;
      power Event.Standby 1010.0 2010.0;
    ]
  in
  let run_b =
    [
      power Event.Active ~energy:0.3 0.0 40.0;
      service ~arrival:0.0 ~start:0.0 ~stop:40.0 ();
      power (Event.Idle 15000) ~energy:9.0 40.0 90.0;
      power Event.Active ~energy:0.1 90.0 100.0;
      service ~arrival:85.0 ~start:90.0 ~stop:100.0 ();
    ]
  in
  ( Report.jsonl (Report.of_events ~disks:1 run_a),
    Report.jsonl (Report.of_events ~disks:1 run_b) )

let test_diff_parse_roundtrip () =
  let a, _ = two_run_artifacts () in
  match Diff.parse a with
  | Error e -> Alcotest.fail e
  | Ok [ side ] ->
      check Alcotest.int "disk" 0 side.Diff.disk;
      check Alcotest.int "requests" 1 side.Diff.requests;
      check (Alcotest.float 1e-9) "busy" 10.0 side.Diff.busy_ms;
      check (Alcotest.float 1e-9) "standby" 1000.0 side.Diff.standby_ms;
      check (Alcotest.float 1e-9) "energy" 5.1 side.Diff.energy_j;
      check Alcotest.int "gap count" side.Diff.idle_gaps.Diff.count 1;
      check Alcotest.bool "edges survive" true
        (side.Diff.idle_gaps.Diff.edges = Report.gap_edges)
  | Ok sides -> Alcotest.fail (Printf.sprintf "expected 1 line, got %d" (List.length sides))

let test_diff_self_zero () =
  let a, _ = two_run_artifacts () in
  let sides = Result.get_ok (Diff.parse a) in
  match Diff.diff ~a:sides ~b:sides with
  | Error e -> Alcotest.fail e
  | Ok r ->
      check (Alcotest.float 0.0) "max ks" 0.0 r.Diff.max_ks;
      check (Alcotest.float 0.0) "max emd" 0.0 r.Diff.max_emd;
      List.iter
        (fun (l : Diff.line_diff) ->
          check (Alcotest.float 0.0) "gaps ks" 0.0 l.Diff.gaps.Diff.ks;
          check (Alcotest.float 0.0) "resp emd" 0.0 l.Diff.resp.Diff.emd;
          check (Alcotest.float 0.0) "energy delta" 0.0 l.Diff.d_energy_j;
          check Alcotest.int "request delta" 0 l.Diff.d_requests;
          check (Alcotest.float 0.0) "standby share delta" 0.0 l.Diff.d_standby_share)
        r.Diff.lines;
      check Alcotest.bool "threshold 0 not exceeded" false (Diff.exceeds ~threshold:0.0 r)

let test_diff_shift () =
  let a, b = two_run_artifacts () in
  let sa = Result.get_ok (Diff.parse a) and sb = Result.get_ok (Diff.parse b) in
  match Diff.diff ~a:sa ~b:sb with
  | Error e -> Alcotest.fail e
  | Ok r ->
      check Alcotest.bool "shift detected" true (r.Diff.max_ks > 0.0);
      check Alcotest.bool "tiny threshold exceeded" true (Diff.exceeds ~threshold:1e-6 r);
      check Alcotest.bool "ks <= 1" true (r.Diff.max_ks <= 1.0);
      let l = List.hd r.Diff.lines in
      (* B spun standby down to zero and added a request. *)
      check Alcotest.int "request delta" 1 l.Diff.d_requests;
      check Alcotest.bool "standby share fell" true (l.Diff.d_standby_share < 0.0);
      (* B never reached standby: empty-vs-nonempty residency is maximal. *)
      check (Alcotest.float 0.0) "residency ks maximal" 1.0 l.Diff.residency.Diff.ks;
      let human = Format.asprintf "%a" Diff.pp r in
      check Alcotest.bool "signed deltas" true
        (contains ~needle:"requests +1" human);
      check Alcotest.bool "summary line" true (contains ~needle:"max KS" human);
      let json = Diff.to_json r in
      check Alcotest.bool "json has max_ks" true (contains ~needle:"\"max_ks\":" json);
      check Alcotest.bool "json lines array" true (contains ~needle:"\"lines\":[{" json)

let test_diff_shift_of_edges () =
  let h edges counts =
    {
      Diff.edges;
      counts;
      count = Array.fold_left ( + ) 0 counts;
      sum = 0.0;
      vmax = 0.0;
    }
  in
  let e = [| 1.0; 10.0; 100.0 |] in
  let empty = h e [| 0; 0; 0; 0 |] in
  let s = Diff.shift_of empty empty in
  check (Alcotest.float 0.0) "empty-empty ks" 0.0 s.Diff.ks;
  check (Alcotest.float 0.0) "empty-empty emd" 0.0 s.Diff.emd;
  let full = h e [| 4; 0; 0; 0 |] in
  let s = Diff.shift_of empty full in
  check (Alcotest.float 0.0) "empty-nonempty ks" 1.0 s.Diff.ks;
  check (Alcotest.float 0.0) "empty-nonempty emd" 4.0 s.Diff.emd;
  (* Mass moved one bucket over: KS 1, EMD exactly one bucket. *)
  let shifted = h e [| 0; 4; 0; 0 |] in
  let s = Diff.shift_of full shifted in
  check (Alcotest.float 1e-9) "one-bucket ks" 1.0 s.Diff.ks;
  check (Alcotest.float 1e-9) "one-bucket emd" 1.0 s.Diff.emd

let test_diff_errors () =
  check Alcotest.bool "bad json names the line" true
    (match Diff.parse "{\"disk\":0}\nnot json\n" with
    | Error e -> contains ~needle:"line 1" e || contains ~needle:"line 2" e
    | Ok _ -> false);
  let a, _ = two_run_artifacts () in
  let sides = Result.get_ok (Diff.parse a) in
  (match Diff.diff ~a:sides ~b:[] with
  | Error e -> check Alcotest.bool "count mismatch named" true (contains ~needle:"line counts" e)
  | Ok _ -> Alcotest.fail "line-count mismatch must be an error");
  let other_disk = List.map (fun (s : Diff.side) -> { s with Diff.disk = 3 }) sides in
  (match Diff.diff ~a:sides ~b:other_disk with
  | Error e -> check Alcotest.bool "disk mismatch named" true (contains ~needle:"disk" e)
  | Ok _ -> Alcotest.fail "disk mismatch must be an error");
  let h edges = { Diff.edges; counts = [| 1; 1 |]; count = 2; sum = 0.0; vmax = 0.0 } in
  match Diff.shift_of (h [| 1.0 |]) (h [| 2.0 |]) with
  | exception _ -> ()
  | _ -> Alcotest.fail "mismatched edges must be rejected"

(* --- live vs report: the rolling percentiles agree post hoc --- *)

let qtest ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let test_live_matches_report =
  (* Whatever a random faulty run emits, the Live aggregator's
     cumulative percentiles, energy and counters at end of run equal the
     post-hoc Report built from a ring recording of the same stream. *)
  qtest "Live agrees with post-hoc Report"
    QCheck2.Gen.(pair (int_range 0 9999) (int_range 0 3))
    (fun (seed, rate_idx) ->
      let rate = [| 0.0; 0.01; 0.05; 0.1 |].(rate_idx) in
      let faults =
        if rate = 0.0 then None
        else
          match Fault_model.of_spec (Printf.sprintf "%d:%g:all" seed rate) with
          | Ok f -> Some f
          | Error e -> failwith e
      in
      let reqs =
        List.init 24 (fun i ->
            req ~proc:(i mod 2) ~disk:(i mod 2)
              ~lba:(i * 131 * 1024)
              ~think:(float_of_int (((seed * 7919) + (i * 104729)) mod 70_000))
              ())
      in
      let live = Live.create ~disks:2 () in
      let ring = Sink.ring ~capacity:65536 () in
      let sink =
        Sink.stream (fun e ->
            Sink.emit ring e;
            Live.feed live e)
      in
      ignore (Engine.simulate ~obs:sink ?faults ~disks:2 Policy.default_tpm reqs);
      let reports = Report.of_events ~disks:2 (Sink.events ring) in
      Array.for_all
        (fun (r : Report.disk_report) ->
          let d = r.Report.disk in
          let dl = (Live.disks live).(d) in
          List.for_all
            (fun q ->
              Metrics.quantile r.Report.response_ms q = Live.percentile live ~disk:d q)
            [ 0.25; 0.5; 0.9; 0.99; 1.0 ]
          && r.Report.requests = dl.Live.requests
          && r.Report.energy_j = dl.Live.energy_j
          && r.Report.faults = dl.Live.faults
          && r.Report.busy_ms = dl.Live.busy_ms
          && r.Report.standby_ms = dl.Live.standby_ms)
        reports)

(* --- engine integration and the Chrome exporter --- *)

let sim_events policy reqs =
  let sink = Sink.ring ~capacity:65536 () in
  let r = Engine.simulate ~obs:sink ~disks:2 policy reqs in
  (r, Sink.events sink)

let test_engine_emits () =
  let reqs =
    [ req ~think:10.0 (); req ~think:60_000.0 ~lba:(1 lsl 30) (); req ~disk:1 ~think:20.0 () ]
  in
  let r, events = sim_events Policy.default_tpm reqs in
  let reports = Report.of_events ~disks:2 events in
  check Alcotest.int "disk 0 served" 2 reports.(0).Report.requests;
  check Alcotest.int "disk 1 served" 1 reports.(1).Report.requests;
  check Alcotest.bool "spin-down decision recorded" true
    (List.exists
       (function Event.Decision d -> d.decision = "tpm:threshold-spin-down" | _ -> false)
       events);
  (* The report's totals agree with the engine's stats. *)
  Array.iter
    (fun (d : Engine.disk_stats) ->
      let rep = reports.(d.Engine.disk) in
      check (Alcotest.float 1e-6) "busy agrees" d.Engine.busy_ms rep.Report.busy_ms;
      check (Alcotest.float 1e-6) "standby agrees" d.Engine.standby_ms rep.Report.standby_ms;
      check (Alcotest.float 1e-6) "energy agrees" d.Engine.energy_j rep.Report.energy_j)
    r.Engine.per_disk

let test_chrome_contiguous () =
  let reqs = [ req ~think:10.0 (); req ~think:60_000.0 ~lba:(1 lsl 30) (); req ~disk:1 ~think:20.0 () ] in
  let r, events = sim_events Policy.default_tpm reqs in
  let make = r.Engine.makespan_ms in
  (* Per-track power spans, clipped as the exporter clips them, must
     tile [0, makespan] exactly. *)
  for d = 0 to 1 do
    let spans =
      List.filter_map
        (function
          | Event.Power p when p.disk = d && Float.min p.stop_ms make > p.start_ms ->
              Some (p.start_ms, Float.min p.stop_ms make)
          | _ -> None)
        events
    in
    check Alcotest.bool "has spans" true (spans <> []);
    let rec walk at = function
      | [] -> check (Alcotest.float 1e-6) "covers makespan" make at
      | (start, stop) :: rest ->
          check (Alcotest.float 1e-6) "contiguous" at start;
          walk stop rest
    in
    walk 0.0 spans
  done;
  let json = Chrome.trace_json ~until_ms:make events in
  check Alcotest.bool "metadata track 0" true
    (contains ~needle:"{\"name\":\"disk 0\"}" json);
  check Alcotest.bool "metadata track 1" true
    (contains ~needle:"{\"name\":\"disk 1\"}" json);
  check Alcotest.bool "standby span present" true
    (contains ~needle:"\"name\":\"STANDBY\"" json);
  check Alcotest.bool "io spans present" true
    (contains ~needle:"\"cat\":\"io\"" json);
  check Alcotest.bool "no NaN leaks" false (contains ~needle:"nan" json)

let test_no_obs_identical () =
  (* The default sink is null: passing it explicitly is the same run. *)
  let reqs = [ req ~think:10.0 (); req ~think:60_000.0 ~lba:(1 lsl 30) () ] in
  List.iter
    (fun policy ->
      check Alcotest.bool (Policy.name policy ^ " unchanged by explicit null") true
        (Engine.simulate ~disks:2 policy reqs
        = Engine.simulate ~obs:Sink.null ~disks:2 policy reqs))
    [ Policy.No_pm; Policy.default_tpm; Policy.default_drpm ]

(* --- profiler --- *)

let test_prof_disabled () =
  Prof.reset ();
  Prof.disable ();
  check Alcotest.int "span still returns" 7 (Prof.span "x" (fun () -> 7));
  Prof.count "x" 3;
  check Alcotest.int "nothing recorded" 0 (List.length (Prof.entries ()))

let test_prof_enabled () =
  Prof.reset ();
  Prof.enable ();
  Fun.protect ~finally:Prof.disable @@ fun () ->
  check Alcotest.int "result threaded" 42 (Prof.span "pass-a" (fun () -> 42));
  ignore (Prof.span "pass-a" (fun () -> Sys.opaque_identity (List.init 100 Fun.id)));
  Prof.count "pass-a" 5;
  (match Prof.span "pass-b" (fun () -> raise Exit) with
  | exception Exit -> ()
  | _ -> Alcotest.fail "exception must propagate");
  let entries = Prof.entries () in
  check Alcotest.int "two entries" 2 (List.length entries);
  let a = List.find (fun e -> e.Prof.p_name = "pass-a") entries in
  check Alcotest.int "calls" 2 a.Prof.calls;
  check Alcotest.int "items" 5 a.Prof.items;
  check Alcotest.bool "time accumulates" true (a.Prof.total_s >= 0.0);
  let b = List.find (fun e -> e.Prof.p_name = "pass-b") entries in
  check Alcotest.int "raising span still counted" 1 b.Prof.calls;
  let table = Format.asprintf "%a" Prof.pp_table () in
  check Alcotest.bool "table lists the pass" true
    (contains ~needle:"pass-a" table)

let suites =
  [
    ( "obs.sink",
      [
        Alcotest.test_case "null" `Quick test_null_sink;
        Alcotest.test_case "ring" `Quick test_ring_sink;
        Alcotest.test_case "stream" `Quick test_stream_sink;
        Alcotest.test_case "kind" `Quick test_sink_kind;
      ] );
    ( "obs.metrics",
      [
        Alcotest.test_case "log edges" `Quick test_log_edges;
        Alcotest.test_case "observe" `Quick test_histogram_observe;
        Alcotest.test_case "registry" `Quick test_registry;
      ] );
    ( "obs.event",
      [
        Alcotest.test_case "json escaping" `Quick test_event_json_escaping;
        Alcotest.test_case "accessors" `Quick test_event_accessors;
      ] );
    ( "obs.report",
      [
        Alcotest.test_case "of_events" `Quick test_report_of_events;
        Alcotest.test_case "jsonl" `Quick test_report_jsonl;
        Alcotest.test_case "percentile edges" `Quick test_report_percentile_edges;
        Alcotest.test_case "incremental builder" `Quick test_report_builder_incremental;
      ] );
    ( "obs.live",
      [
        Alcotest.test_case "fold" `Quick test_live_fold;
        Alcotest.test_case "power-state track" `Quick test_live_track;
        Alcotest.test_case "sliding window" `Quick test_live_window;
        Alcotest.test_case "rejects" `Quick test_live_rejects;
        test_live_matches_report;
      ] );
    ( "obs.tty",
      [
        Alcotest.test_case "frame" `Quick test_tty_frame;
        Alcotest.test_case "driver" `Quick test_tty_driver;
      ] );
    ( "obs.diff",
      [
        Alcotest.test_case "parse roundtrip" `Quick test_diff_parse_roundtrip;
        Alcotest.test_case "self-diff is zero" `Quick test_diff_self_zero;
        Alcotest.test_case "shift detected" `Quick test_diff_shift;
        Alcotest.test_case "ks/emd core" `Quick test_diff_shift_of_edges;
        Alcotest.test_case "errors" `Quick test_diff_errors;
      ] );
    ( "obs.engine",
      [
        Alcotest.test_case "events emitted" `Quick test_engine_emits;
        Alcotest.test_case "chrome spans tile the makespan" `Quick test_chrome_contiguous;
        Alcotest.test_case "explicit null identical" `Quick test_no_obs_identical;
      ] );
    ( "obs.prof",
      [
        Alcotest.test_case "disabled" `Quick test_prof_disabled;
        Alcotest.test_case "enabled" `Quick test_prof_enabled;
      ] );
  ]
