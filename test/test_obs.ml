(* Tests for the observability subsystem: sinks, metrics, reports,
   exporters, and the pass profiler. *)

module Sink = Dp_obs.Sink
module Event = Dp_obs.Event
module Metrics = Dp_obs.Metrics
module Report = Dp_obs.Report
module Chrome = Dp_obs.Chrome
module Prof = Dp_obs.Prof
module Engine = Dp_disksim.Engine
module Policy = Dp_disksim.Policy
module Request = Dp_trace.Request
module Ir = Dp_ir.Ir

let check = Alcotest.check

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let decision d at s = Event.Decision { disk = d; at_ms = at; decision = s }

let power ?(disk = 0) ?(energy = 0.0) state start stop =
  Event.Power
    { disk; state; start_ms = start; stop_ms = stop; charge_ms = stop -. start; energy_j = energy }

let service ?(disk = 0) ?(lba = 0) ~arrival ~start ~stop () =
  Event.Service
    { disk; proc = 0; arrival_ms = arrival; start_ms = start; stop_ms = stop; lba; bytes = 65536 }

(* --- sinks --- *)

let test_null_sink () =
  check Alcotest.bool "disabled" false (Sink.enabled Sink.null);
  Sink.emit Sink.null (decision 0 0.0 "x");
  check Alcotest.int "no events" 0 (List.length (Sink.events Sink.null));
  check Alcotest.int "no length" 0 (Sink.length Sink.null);
  check Alcotest.int "no drops" 0 (Sink.dropped Sink.null)

let test_ring_sink () =
  let s = Sink.ring ~capacity:4 () in
  check Alcotest.bool "enabled" true (Sink.enabled s);
  for i = 1 to 3 do
    Sink.emit s (decision 0 (float_of_int i) "d")
  done;
  check Alcotest.int "holds three" 3 (Sink.length s);
  check Alcotest.int "nothing dropped" 0 (Sink.dropped s);
  check
    Alcotest.(list (float 0.0))
    "oldest first" [ 1.0; 2.0; 3.0 ]
    (List.map Event.time_ms (Sink.events s));
  for i = 4 to 7 do
    Sink.emit s (decision 0 (float_of_int i) "d")
  done;
  check Alcotest.int "capped at capacity" 4 (Sink.length s);
  check Alcotest.int "three dropped" 3 (Sink.dropped s);
  check
    Alcotest.(list (float 0.0))
    "window slid" [ 4.0; 5.0; 6.0; 7.0 ]
    (List.map Event.time_ms (Sink.events s));
  match Sink.ring ~capacity:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 must be rejected"

let test_stream_sink () =
  let seen = ref [] in
  let s = Sink.stream (fun e -> seen := Event.time_ms e :: !seen) in
  check Alcotest.bool "enabled" true (Sink.enabled s);
  Sink.emit s (decision 0 1.0 "a");
  Sink.emit s (decision 0 2.0 "b");
  check Alcotest.(list (float 0.0)) "callback saw both" [ 2.0; 1.0 ] !seen;
  check Alcotest.int "retains nothing" 0 (List.length (Sink.events s))

(* --- metrics --- *)

let test_log_edges () =
  let e = Metrics.log_edges ~lo:1.0 ~hi:1e3 () in
  check Alcotest.int "4 edges" 4 (Array.length e);
  Array.iteri
    (fun i v -> check (Alcotest.float 1e-9) "decade edge" (10.0 ** float_of_int i) v)
    e;
  check Alcotest.int "per_decade 2 doubles them"
    7
    (Array.length (Metrics.log_edges ~per_decade:2 ~lo:1.0 ~hi:1e3 ()))

let test_histogram_observe () =
  let h = Metrics.histogram ~edges:[| 1.0; 10.0; 100.0 |] "t" in
  List.iter (Metrics.observe h) [ 0.5; 5.0; 5.0; 50.0; 5000.0 ];
  check Alcotest.(list int) "bucketed" [ 1; 2; 1; 1 ] (Array.to_list h.Metrics.counts);
  check Alcotest.int "n" 5 h.Metrics.n;
  check (Alcotest.float 1e-9) "sum" 5060.5 h.Metrics.sum;
  check (Alcotest.float 1e-9) "max" 5000.0 h.Metrics.vmax;
  check (Alcotest.float 1e-9) "mean" (5060.5 /. 5.0) (Metrics.mean h);
  (* Quantiles resolve to bucket upper edges (vmax for overflow). *)
  check (Alcotest.float 1e-9) "median" 10.0 (Metrics.quantile h 0.5);
  check (Alcotest.float 1e-9) "q=1" 5000.0 (Metrics.quantile h 1.0);
  let h2 = Metrics.histogram ~edges:[| 1.0; 10.0; 100.0 |] "t2" in
  Metrics.observe h2 5.0;
  Metrics.merge_into ~dst:h2 h;
  check Alcotest.int "merged n" 6 h2.Metrics.n;
  check Alcotest.(list int) "merged counts" [ 1; 3; 1; 1 ] (Array.to_list h2.Metrics.counts)

let test_registry () =
  let r = Metrics.registry () in
  let c = Metrics.counter r "events" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  check Alcotest.int "counted" 5 c.Metrics.count;
  check Alcotest.bool "create-on-first-use returns same" true
    (Metrics.counter r "events" == c);
  let g = Metrics.gauge r "depth" in
  Metrics.set g 3.5;
  check (Alcotest.float 0.0) "gauge set" 3.5 g.Metrics.value;
  ignore (Metrics.hist r "gaps");
  check Alcotest.int "one of each" 1 (List.length (Metrics.counters r));
  check Alcotest.int "one gauge" 1 (List.length (Metrics.gauges r));
  check Alcotest.int "one hist" 1 (List.length (Metrics.histograms r));
  match Metrics.gauge r "events" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind clash must be rejected"

(* --- events: JSON wire format --- *)

let test_event_json_escaping () =
  let j = Event.to_json (decision 2 1.5 "a\"b\\c\nd") in
  check Alcotest.bool "quote escaped" true
    (contains ~needle:{|a\"b\\c\nd|} j);
  check Alcotest.bool "no raw newline" false (String.contains j '\n');
  let j2 = Event.to_json (Event.Fault { disk = 0; at_ms = 1.0; kind = "x"; cost_ms = Float.nan }) in
  check Alcotest.bool "NaN becomes null" true
    (contains ~needle:"\"cost_ms\":null" j2)

let test_event_accessors () =
  check Alcotest.int "disk" 3 (Event.disk (service ~disk:3 ~arrival:1.0 ~start:2.0 ~stop:3.0 ()));
  check (Alcotest.float 0.0) "span start is the timestamp" 2.0
    (Event.time_ms (power Event.Standby 2.0 9.0));
  check Alcotest.string "track label" "IDLE@6000" (Event.track_name (Event.Idle 6000));
  check Alcotest.string "state name" "standby" (Event.state_name Event.Standby)

(* --- report --- *)

let test_report_of_events () =
  (* Hand-built disk-0 story: serve 10 ms, idle 1000 ms, standby 500 ms
     (entered via a 10 ms transition), spin up 20 ms, serve again. *)
  let events =
    [
      power Event.Active ~energy:0.135 0.0 10.0;
      service ~arrival:0.0 ~start:0.0 ~stop:10.0 ();
      power (Event.Idle 15000) ~energy:10.2 10.0 1010.0;
      power Event.Transition 1010.0 1020.0;
      power Event.Standby 1020.0 1520.0;
      power Event.Transition 1520.0 1540.0;
      power Event.Active ~energy:0.135 1540.0 1550.0;
      service ~arrival:1535.0 ~start:1540.0 ~stop:1550.0 ();
      Event.Hint_exec { disk = 0; at_ms = 1520.0; action = "pre-spin-up" };
      Event.Fault { disk = 0; at_ms = 1540.0; kind = "latency-spike"; cost_ms = 1.0 };
      decision 0 1010.0 "tpm:threshold-spin-down";
    ]
  in
  let r = (Report.of_events ~disks:1 events).(0) in
  check Alcotest.int "requests" 2 r.Report.requests;
  check (Alcotest.float 1e-9) "busy" 20.0 r.Report.busy_ms;
  check (Alcotest.float 1e-9) "idle" 1000.0 r.Report.idle_ms;
  check (Alcotest.float 1e-9) "standby" 500.0 r.Report.standby_ms;
  check (Alcotest.float 1e-9) "transition" 30.0 r.Report.transition_ms;
  check (Alcotest.float 1e-9) "energy" (10.2 +. 0.27) r.Report.energy_j;
  check Alcotest.int "hints" 1 r.Report.hints;
  check Alcotest.int "faults" 1 r.Report.faults;
  check Alcotest.int "decisions" 1 r.Report.decisions;
  (* One gap: idle at 10 through the spin-up's end at 1540. *)
  check Alcotest.int "one idle gap" 1 r.Report.idle_gap_ms.Metrics.n;
  check (Alcotest.float 1e-9) "gap length" 1530.0 r.Report.idle_gap_ms.Metrics.sum;
  check Alcotest.int "one standby stay" 1 r.Report.standby_residency_ms.Metrics.n;
  check (Alcotest.float 1e-9) "residency" 500.0 r.Report.standby_residency_ms.Metrics.sum;
  (* Responses: 10 and 15 ms (second waited 5 ms for the spin-up). *)
  check Alcotest.int "responses" 2 r.Report.response_ms.Metrics.n;
  check (Alcotest.float 1e-9) "response sum" 25.0 r.Report.response_ms.Metrics.sum

let test_report_jsonl () =
  let events = [ power Event.Active 0.0 10.0; service ~arrival:0.0 ~start:0.0 ~stop:10.0 () ] in
  let lines =
    String.split_on_char '\n' (String.trim (Report.jsonl (Report.of_events ~disks:2 events)))
  in
  check Alcotest.int "one line per disk" 2 (List.length lines);
  check Alcotest.bool "has histograms" true
    (contains ~needle:"\"idle_gaps\":{\"edges\":" (List.hd lines))

(* --- engine integration and the Chrome exporter --- *)

let req ?(proc = 0) ?(disk = 0) ?(lba = 0) ~think () =
  {
    Request.arrival_ms = 0.0;
    think_ms = think;
    seg = 0;
    address = lba;
    lba;
    size = 64 * 1024;
    mode = Ir.Read;
    proc;
    disk;
  }

let sim_events policy reqs =
  let sink = Sink.ring ~capacity:65536 () in
  let r = Engine.simulate ~obs:sink ~disks:2 policy reqs in
  (r, Sink.events sink)

let test_engine_emits () =
  let reqs =
    [ req ~think:10.0 (); req ~think:60_000.0 ~lba:(1 lsl 30) (); req ~disk:1 ~think:20.0 () ]
  in
  let r, events = sim_events Policy.default_tpm reqs in
  let reports = Report.of_events ~disks:2 events in
  check Alcotest.int "disk 0 served" 2 reports.(0).Report.requests;
  check Alcotest.int "disk 1 served" 1 reports.(1).Report.requests;
  check Alcotest.bool "spin-down decision recorded" true
    (List.exists
       (function Event.Decision d -> d.decision = "tpm:threshold-spin-down" | _ -> false)
       events);
  (* The report's totals agree with the engine's stats. *)
  Array.iter
    (fun (d : Engine.disk_stats) ->
      let rep = reports.(d.Engine.disk) in
      check (Alcotest.float 1e-6) "busy agrees" d.Engine.busy_ms rep.Report.busy_ms;
      check (Alcotest.float 1e-6) "standby agrees" d.Engine.standby_ms rep.Report.standby_ms;
      check (Alcotest.float 1e-6) "energy agrees" d.Engine.energy_j rep.Report.energy_j)
    r.Engine.per_disk

let test_chrome_contiguous () =
  let reqs = [ req ~think:10.0 (); req ~think:60_000.0 ~lba:(1 lsl 30) (); req ~disk:1 ~think:20.0 () ] in
  let r, events = sim_events Policy.default_tpm reqs in
  let make = r.Engine.makespan_ms in
  (* Per-track power spans, clipped as the exporter clips them, must
     tile [0, makespan] exactly. *)
  for d = 0 to 1 do
    let spans =
      List.filter_map
        (function
          | Event.Power p when p.disk = d && Float.min p.stop_ms make > p.start_ms ->
              Some (p.start_ms, Float.min p.stop_ms make)
          | _ -> None)
        events
    in
    check Alcotest.bool "has spans" true (spans <> []);
    let rec walk at = function
      | [] -> check (Alcotest.float 1e-6) "covers makespan" make at
      | (start, stop) :: rest ->
          check (Alcotest.float 1e-6) "contiguous" at start;
          walk stop rest
    in
    walk 0.0 spans
  done;
  let json = Chrome.trace_json ~until_ms:make events in
  check Alcotest.bool "metadata track 0" true
    (contains ~needle:"{\"name\":\"disk 0\"}" json);
  check Alcotest.bool "metadata track 1" true
    (contains ~needle:"{\"name\":\"disk 1\"}" json);
  check Alcotest.bool "standby span present" true
    (contains ~needle:"\"name\":\"STANDBY\"" json);
  check Alcotest.bool "io spans present" true
    (contains ~needle:"\"cat\":\"io\"" json);
  check Alcotest.bool "no NaN leaks" false (contains ~needle:"nan" json)

let test_no_obs_identical () =
  (* The default sink is null: passing it explicitly is the same run. *)
  let reqs = [ req ~think:10.0 (); req ~think:60_000.0 ~lba:(1 lsl 30) () ] in
  List.iter
    (fun policy ->
      check Alcotest.bool (Policy.name policy ^ " unchanged by explicit null") true
        (Engine.simulate ~disks:2 policy reqs
        = Engine.simulate ~obs:Sink.null ~disks:2 policy reqs))
    [ Policy.No_pm; Policy.default_tpm; Policy.default_drpm ]

(* --- profiler --- *)

let test_prof_disabled () =
  Prof.reset ();
  Prof.disable ();
  check Alcotest.int "span still returns" 7 (Prof.span "x" (fun () -> 7));
  Prof.count "x" 3;
  check Alcotest.int "nothing recorded" 0 (List.length (Prof.entries ()))

let test_prof_enabled () =
  Prof.reset ();
  Prof.enable ();
  Fun.protect ~finally:Prof.disable @@ fun () ->
  check Alcotest.int "result threaded" 42 (Prof.span "pass-a" (fun () -> 42));
  ignore (Prof.span "pass-a" (fun () -> Sys.opaque_identity (List.init 100 Fun.id)));
  Prof.count "pass-a" 5;
  (match Prof.span "pass-b" (fun () -> raise Exit) with
  | exception Exit -> ()
  | _ -> Alcotest.fail "exception must propagate");
  let entries = Prof.entries () in
  check Alcotest.int "two entries" 2 (List.length entries);
  let a = List.find (fun e -> e.Prof.p_name = "pass-a") entries in
  check Alcotest.int "calls" 2 a.Prof.calls;
  check Alcotest.int "items" 5 a.Prof.items;
  check Alcotest.bool "time accumulates" true (a.Prof.total_s >= 0.0);
  let b = List.find (fun e -> e.Prof.p_name = "pass-b") entries in
  check Alcotest.int "raising span still counted" 1 b.Prof.calls;
  let table = Format.asprintf "%a" Prof.pp_table () in
  check Alcotest.bool "table lists the pass" true
    (contains ~needle:"pass-a" table)

let suites =
  [
    ( "obs.sink",
      [
        Alcotest.test_case "null" `Quick test_null_sink;
        Alcotest.test_case "ring" `Quick test_ring_sink;
        Alcotest.test_case "stream" `Quick test_stream_sink;
      ] );
    ( "obs.metrics",
      [
        Alcotest.test_case "log edges" `Quick test_log_edges;
        Alcotest.test_case "observe" `Quick test_histogram_observe;
        Alcotest.test_case "registry" `Quick test_registry;
      ] );
    ( "obs.event",
      [
        Alcotest.test_case "json escaping" `Quick test_event_json_escaping;
        Alcotest.test_case "accessors" `Quick test_event_accessors;
      ] );
    ( "obs.report",
      [
        Alcotest.test_case "of_events" `Quick test_report_of_events;
        Alcotest.test_case "jsonl" `Quick test_report_jsonl;
      ] );
    ( "obs.engine",
      [
        Alcotest.test_case "events emitted" `Quick test_engine_emits;
        Alcotest.test_case "chrome spans tile the makespan" `Quick test_chrome_contiguous;
        Alcotest.test_case "explicit null identical" `Quick test_no_obs_identical;
      ] );
    ( "obs.prof",
      [
        Alcotest.test_case "disabled" `Quick test_prof_disabled;
        Alcotest.test_case "enabled" `Quick test_prof_enabled;
      ] );
  ]
