(* Helper process for the cachefs lock-contention test: take the
   advisory [lockf] lock on argv(1), report readiness with one byte on
   stdout, then park until the test kills us.  A separate process is
   required twice over — lockf locks are per-process, and OCaml 5
   forbids [Unix.fork] once any suite has spawned a domain. *)
let () =
  let lock = Sys.argv.(1) in
  let fd = Unix.openfile lock [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  Unix.lockf fd Unix.F_LOCK 0;
  print_string "x";
  flush stdout;
  Unix.sleepf 30.0
