(* Unit and property tests for Dp_util: rationals, integer vectors, list
   helpers and the binary min-heap. *)

module Rat = Dp_util.Rat
module Ivec = Dp_util.Ivec
module Listx = Dp_util.Listx
module Minheap = Dp_util.Minheap

let check = Alcotest.check
let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- Rat --- *)

let rat = Alcotest.testable Rat.pp Rat.equal

let test_rat_normalization () =
  check rat "6/8 = 3/4" (Rat.make 3 4) (Rat.make 6 8);
  check rat "-1/-2 = 1/2" (Rat.make 1 2) (Rat.make (-1) (-2));
  check rat "1/-2 = -1/2" (Rat.make (-1) 2) (Rat.make 1 (-2));
  check Alcotest.int "den of 0 is 1" 1 (Rat.den (Rat.make 0 17));
  Alcotest.check_raises "zero denominator" Division_by_zero (fun () ->
      ignore (Rat.make 1 0))

let test_rat_arith () =
  check rat "1/2 + 1/3" (Rat.make 5 6) (Rat.add (Rat.make 1 2) (Rat.make 1 3));
  check rat "1/2 - 1/3" (Rat.make 1 6) (Rat.sub (Rat.make 1 2) (Rat.make 1 3));
  check rat "2/3 * 3/4" (Rat.make 1 2) (Rat.mul (Rat.make 2 3) (Rat.make 3 4));
  check rat "1/2 / 1/4" (Rat.of_int 2) (Rat.div (Rat.make 1 2) (Rat.make 1 4));
  Alcotest.check_raises "divide by zero" Division_by_zero (fun () ->
      ignore (Rat.div Rat.one Rat.zero))

let test_rat_floor_ceil () =
  check Alcotest.int "floor 7/2" 3 (Rat.floor (Rat.make 7 2));
  check Alcotest.int "floor -7/2" (-4) (Rat.floor (Rat.make (-7) 2));
  check Alcotest.int "ceil 7/2" 4 (Rat.ceil (Rat.make 7 2));
  check Alcotest.int "ceil -7/2" (-3) (Rat.ceil (Rat.make (-7) 2));
  check Alcotest.int "floor of integer" 5 (Rat.floor (Rat.of_int 5));
  check Alcotest.int "ceil of integer" 5 (Rat.ceil (Rat.of_int 5))

let small_rat_gen =
  QCheck2.Gen.(
    map2
      (fun n d -> Rat.make n d)
      (int_range (-1000) 1000)
      (map (fun d -> if d >= 0 then d + 1 else d) (int_range (-1000) 999)))

let prop_rat_add_commutes =
  qtest "Rat: a+b = b+a" QCheck2.Gen.(pair small_rat_gen small_rat_gen) (fun (a, b) ->
      Rat.equal (Rat.add a b) (Rat.add b a))

let prop_rat_mul_inverse =
  qtest "Rat: a * inv a = 1 (a <> 0)" small_rat_gen (fun a ->
      Rat.sign a = 0 || Rat.equal (Rat.mul a (Rat.inv a)) Rat.one)

let prop_rat_floor_le =
  qtest "Rat: floor a <= a <= ceil a" small_rat_gen (fun a ->
      Rat.compare (Rat.of_int (Rat.floor a)) a <= 0
      && Rat.compare a (Rat.of_int (Rat.ceil a)) <= 0
      && Rat.ceil a - Rat.floor a <= 1)

let prop_rat_normal_form =
  qtest "Rat: results are in normal form" QCheck2.Gen.(pair small_rat_gen small_rat_gen)
    (fun (a, b) ->
      let c = Rat.add (Rat.mul a b) (Rat.sub a b) in
      let rec gcd x y = if y = 0 then abs x else gcd y (x mod y) in
      Rat.den c > 0 && gcd (Rat.num c) (Rat.den c) = 1)

(* --- Ivec --- *)

let test_ivec_lex () =
  check Alcotest.bool "(0,1) lex positive" true (Ivec.is_lex_positive [| 0; 1 |]);
  check Alcotest.bool "(0,-1) lex negative" true (Ivec.is_lex_negative [| 0; -1 |]);
  check Alcotest.bool "zero not positive" false (Ivec.is_lex_positive [| 0; 0 |]);
  check Alcotest.bool "zero is zero" true (Ivec.is_zero [| 0; 0 |]);
  check Alcotest.int "compare (1,0) (0,9)" 1
    (compare (Ivec.compare_lex [| 1; 0 |] [| 0; 9 |]) 0);
  check Alcotest.(option int) "first_nonzero" (Some 1) (Ivec.first_nonzero [| 0; 3; 1 |])

let test_ivec_arith () =
  check Alcotest.(array int) "add" [| 4; 6 |] (Ivec.add [| 1; 2 |] [| 3; 4 |]);
  check Alcotest.(array int) "sub" [| -2; -2 |] (Ivec.sub [| 1; 2 |] [| 3; 4 |]);
  check Alcotest.int "dot" 11 (Ivec.dot [| 1; 2 |] [| 3; 4 |]);
  Alcotest.check_raises "dimension mismatch" (Invalid_argument "Ivec: dimension mismatch")
    (fun () -> ignore (Ivec.add [| 1 |] [| 1; 2 |]))

let ivec_gen = QCheck2.Gen.(array_size (int_range 1 6) (int_range (-50) 50))

let prop_ivec_neg_antisym =
  qtest "Ivec: v lex-positive iff -v lex-negative" ivec_gen (fun v ->
      Ivec.is_zero v || Ivec.is_lex_positive v = Ivec.is_lex_negative (Ivec.neg v))

let prop_ivec_compare_total =
  qtest "Ivec: compare_lex total and consistent with negation"
    QCheck2.Gen.(
      pair ivec_gen ivec_gen |> map (fun (a, b) ->
          if Array.length a = Array.length b then (a, b) else (a, Array.copy a)))
    (fun (a, b) ->
      let c = Ivec.compare_lex a b and c' = Ivec.compare_lex b a in
      compare c 0 = -compare c' 0)

(* --- Listx --- *)

let test_listx_group_by () =
  let groups = Listx.group_by (fun x -> x mod 3) [ 1; 2; 3; 4; 5; 6; 7 ] in
  check
    Alcotest.(list (pair int (list int)))
    "groups by residue, first-seen order"
    [ (1, [ 1; 4; 7 ]); (2, [ 2; 5 ]); (0, [ 3; 6 ]) ]
    groups

let test_listx_misc () =
  check Alcotest.(option int) "max_by" (Some (-9)) (Listx.max_by abs [ 3; -9; 7 ]);
  check Alcotest.int "sum_by" 19 (Listx.sum_by abs [ 3; -9; 7 ]);
  check Alcotest.(list int) "take" [ 1; 2 ] (Listx.take 2 [ 1; 2; 3 ]);
  check Alcotest.(list int) "take beyond" [ 1 ] (Listx.take 5 [ 1 ]);
  check Alcotest.(list int) "drop" [ 3 ] (Listx.drop 2 [ 1; 2; 3 ]);
  check Alcotest.(list int) "range" [ 2; 3; 4 ] (Listx.range 2 4);
  check Alcotest.(list int) "empty range" [] (Listx.range 4 2);
  check Alcotest.(option int) "index_of" (Some 1) (Listx.index_of (( = ) 5) [ 4; 5; 6 ]);
  check Alcotest.(list int) "uniq" [ 1; 2; 3 ] (Listx.uniq ( = ) [ 1; 2; 1; 3; 2 ])

let prop_take_drop =
  qtest "Listx: take n @ drop n = id"
    QCheck2.Gen.(pair (int_range 0 20) (list_size (int_range 0 15) small_int))
    (fun (n, l) -> Listx.take n l @ Listx.drop n l = l)

(* --- Minheap --- *)

let test_minheap_basic () =
  let h = Minheap.create () in
  check Alcotest.bool "fresh heap empty" true (Minheap.is_empty h);
  List.iter (Minheap.add h) [ 5; 1; 4; 1; 3 ];
  check Alcotest.int "size" 5 (Minheap.size h);
  check Alcotest.int "peek" 1 (Minheap.peek_min h);
  let drained = List.init 5 (fun _ -> Minheap.pop_min h) in
  check Alcotest.(list int) "drains sorted" [ 1; 1; 3; 4; 5 ] drained;
  Alcotest.check_raises "pop empty" Not_found (fun () -> ignore (Minheap.pop_min h))

let prop_minheap_sorts =
  qtest "Minheap: drain is sorted" QCheck2.Gen.(list_size (int_range 0 200) int)
    (fun l ->
      let h = Minheap.create () in
      List.iter (Minheap.add h) l;
      let out = List.init (List.length l) (fun _ -> Minheap.pop_min h) in
      out = List.sort compare l)

(* --- Splitmix --- *)

module Splitmix = Dp_util.Splitmix

let test_splitmix_deterministic () =
  let a = Splitmix.create 42 and b = Splitmix.create 42 in
  let seq t = List.init 100 (fun _ -> Splitmix.next_int64 t) in
  check Alcotest.bool "same seed, same stream" true (seq a = seq b);
  let c = Splitmix.create 43 in
  check Alcotest.bool "different seed, different stream" true (seq (Splitmix.create 42) <> seq c)

let test_splitmix_split_independent () =
  (* A split stream is independent of further draws on the parent. *)
  let parent = Splitmix.create 7 in
  let child = Splitmix.split parent in
  let expected = List.init 50 (fun _ -> Splitmix.next_int64 child) in
  let parent2 = Splitmix.create 7 in
  let child2 = Splitmix.split parent2 in
  List.iter (fun _ -> ignore (Splitmix.next_int64 parent2)) (List.init 25 Fun.id);
  let got = List.init 50 (fun _ -> Splitmix.next_int64 child2) in
  check Alcotest.bool "child stream fixed at split time" true (expected = got)

let prop_splitmix_float_unit =
  qtest "Splitmix: floats in [0,1)" QCheck2.Gen.int (fun seed ->
      let t = Splitmix.create seed in
      List.for_all
        (fun _ ->
          let f = Splitmix.float t in
          f >= 0.0 && f < 1.0)
        (List.init 100 Fun.id))

let prop_splitmix_bool_edges =
  qtest "Splitmix: bool degenerate probabilities" QCheck2.Gen.int (fun seed ->
      let t = Splitmix.create seed in
      List.for_all
        (fun _ -> (not (Splitmix.bool t ~p:0.0)) && Splitmix.bool t ~p:1.0)
        (List.init 50 Fun.id))

let prop_splitmix_int_bound =
  qtest "Splitmix: int within bound" QCheck2.Gen.(pair int (int_range 1 1000))
    (fun (seed, bound) ->
      let t = Splitmix.create seed in
      List.for_all
        (fun _ ->
          let n = Splitmix.int t ~bound in
          n >= 0 && n < bound)
        (List.init 50 Fun.id))

let test_splitmix_bool_rate_sanity () =
  (* ~10% of draws at p = 0.1, within generous bounds. *)
  let t = Splitmix.create 1234 in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Splitmix.bool t ~p:0.1 then incr hits
  done;
  check Alcotest.bool
    (Printf.sprintf "hit rate plausible (%d/10000)" !hits)
    true
    (!hits > 800 && !hits < 1200)

let suites =
  [
    ( "util.rat",
      [
        Alcotest.test_case "normalization" `Quick test_rat_normalization;
        Alcotest.test_case "arithmetic" `Quick test_rat_arith;
        Alcotest.test_case "floor/ceil" `Quick test_rat_floor_ceil;
        prop_rat_add_commutes;
        prop_rat_mul_inverse;
        prop_rat_floor_le;
        prop_rat_normal_form;
      ] );
    ( "util.ivec",
      [
        Alcotest.test_case "lexicographic" `Quick test_ivec_lex;
        Alcotest.test_case "arithmetic" `Quick test_ivec_arith;
        prop_ivec_neg_antisym;
        prop_ivec_compare_total;
      ] );
    ( "util.listx",
      [
        Alcotest.test_case "group_by" `Quick test_listx_group_by;
        Alcotest.test_case "misc" `Quick test_listx_misc;
        prop_take_drop;
      ] );
    ( "util.minheap",
      [ Alcotest.test_case "basic" `Quick test_minheap_basic; prop_minheap_sorts ] );
    ( "util.splitmix",
      [
        Alcotest.test_case "deterministic" `Quick test_splitmix_deterministic;
        Alcotest.test_case "split independent" `Quick test_splitmix_split_independent;
        Alcotest.test_case "bool rate sanity" `Quick test_splitmix_bool_rate_sanity;
        prop_splitmix_float_unit;
        prop_splitmix_bool_edges;
        prop_splitmix_int_bound;
      ] );
  ]
