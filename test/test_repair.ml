(* Tests for the persistent-failure domain: the bad-sector map, the
   spare-pool/scrub/rebuild state machine, the engine's degraded serving
   paths (remap charges, deadline failover, whole-disk failure and
   rebuild), and the cross-domain determinism of the decay stream. *)

module Badmap = Dp_repair.Badmap
module Repair = Dp_repair.Repair
module Fault_model = Dp_faults.Fault_model
module Injector = Dp_faults.Injector
module Disk_model = Dp_disksim.Disk_model
module Policy = Dp_disksim.Policy
module Engine = Dp_disksim.Engine
module Timeline = Dp_disksim.Timeline
module Request = Dp_trace.Request
module Domain_pool = Dp_pipeline.Domain_pool
module Ir = Dp_ir.Ir

let check = Alcotest.check

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let m = Disk_model.ultrastar_36z15

let req ?(proc = 0) ?(seg = 0) ?(disk = 0) ?(lba = 0) ~think () =
  {
    Request.arrival_ms = 0.0 (* reference only *);
    think_ms = think;
    seg;
    address = lba;
    lba;
    size = 64 * 1024;
    mode = Ir.Read;
    proc;
    disk;
  }

let rejects name f =
  check Alcotest.bool name true
    (try
       ignore (f ());
       false
     with Invalid_argument _ -> true)

(* --- the bad-sector map --- *)

let test_badmap_statuses () =
  let map = Badmap.make ~blocks:8 in
  check Alcotest.int "surface size" 8 (Badmap.blocks map);
  check Alcotest.bool "all good initially" true
    (List.for_all (fun b -> Badmap.status map b = Badmap.Good) [ 0; 3; 7 ]);
  check Alcotest.bool "grow succeeds" true (Badmap.set_bad map 3);
  check Alcotest.bool "grow is idempotent" false (Badmap.set_bad map 3);
  check Alcotest.int "one bad" 1 (Badmap.bad_count map);
  Badmap.set_remapped map 3;
  check Alcotest.bool "remapped" true (Badmap.status map 3 = Badmap.Remapped);
  check Alcotest.int "no longer bad" 0 (Badmap.bad_count map);
  check Alcotest.int "one remapped" 1 (Badmap.remapped_count map);
  check Alcotest.bool "cannot re-grow a remapped block" false (Badmap.set_bad map 3);
  rejects "remap of a good block" (fun () -> Badmap.set_remapped map 0);
  rejects "empty surface" (fun () -> Badmap.make ~blocks:0)

let test_badmap_digest () =
  let a = Badmap.make ~blocks:16 and b = Badmap.make ~blocks:16 in
  check Alcotest.bool "fresh maps agree" true (Badmap.digest a = Badmap.digest b);
  ignore (Badmap.set_bad a 5);
  check Alcotest.bool "a defect changes the digest" false (Badmap.digest a = Badmap.digest b);
  ignore (Badmap.set_bad b 5);
  check Alcotest.bool "same history, same digest" true (Badmap.digest a = Badmap.digest b);
  Badmap.set_remapped a 5;
  check Alcotest.bool "remap changes the digest" false (Badmap.digest a = Badmap.digest b);
  Badmap.clear a;
  let fresh = Badmap.make ~blocks:16 in
  check Alcotest.bool "clear restores the fresh digest" true
    (Badmap.digest a = Badmap.digest fresh)

(* --- the repair state machine --- *)

let test_repair_config_validation () =
  rejects "surface < 1" (fun () -> Repair.config ~surface_blocks:0 ());
  rejects "block bytes < 1" (fun () -> Repair.config ~block_bytes:0 ());
  rejects "negative scrub budget" (fun () -> Repair.config ~scrub_budget_ms:(-1.0) ());
  rejects "scrub chunk < 1" (fun () -> Repair.config ~scrub_chunk_blocks:0 ());
  rejects "rebuild chunk < 1" (fun () -> Repair.config ~rebuild_chunk_blocks:0 ());
  rejects "fail threshold < 1" (fun () -> Repair.config ~fail_threshold:0 ());
  rejects "no disks" (fun () -> Repair.make Repair.default ~disks:0);
  check Alcotest.bool "default scrub is off" true
    (Repair.default.Repair.scrub_budget_ms = 0.0);
  (* Every knob diagnostic names the knob and echoes the offending
     value. *)
  let contains ~needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  let echoes name needles f =
    match f () with
    | _ -> Alcotest.failf "%s: accepted" name
    | exception Invalid_argument msg ->
        List.iter
          (fun needle ->
            check Alcotest.bool
              (Printf.sprintf "%s echoes %S (got %S)" name needle msg)
              true (contains ~needle msg))
          needles
  in
  echoes "surface" [ "surface_blocks"; "(got -3)" ] (fun () ->
      Repair.config ~surface_blocks:(-3) ());
  echoes "scrub chunk" [ "scrub_chunk_blocks"; "(got 0)" ] (fun () ->
      Repair.config ~scrub_chunk_blocks:0 ());
  echoes "scrub budget" [ "scrub_budget_ms"; "(got -2.5)" ] (fun () ->
      Repair.config ~scrub_budget_ms:(-2.5) ());
  echoes "disks" [ "disks"; "(got 0)" ] (fun () -> Repair.make Repair.default ~disks:0)

let test_repair_touch_remap_then_penalty () =
  (* One 4 KiB block grown bad: the first touch remaps it, later touches
     pay the detour. *)
  let t = Repair.make (Repair.config ~surface_blocks:16 ()) ~disks:1 in
  Repair.grow t ~disk:0 ~block:2;
  check Alcotest.int "defect counted" 1 (Repair.grown t 0);
  let first = Repair.touch t ~disk:0 ~spare:8 ~lba:0 ~bytes:(4 * 4096) in
  check Alcotest.int "first touch remaps" 1 first.Repair.remapped;
  check Alcotest.int "no penalty yet" 0 first.Repair.penalty_hits;
  check Alcotest.int "spare consumed" 1 (Repair.spare_used t 0);
  let again = Repair.touch t ~disk:0 ~spare:8 ~lba:0 ~bytes:(4 * 4096) in
  check Alcotest.int "no second remap" 0 again.Repair.remapped;
  check Alcotest.int "detour paid" 1 again.Repair.penalty_hits;
  (* A touch outside the remapped range costs nothing. *)
  let far = Repair.touch t ~disk:0 ~spare:8 ~lba:(8 * 4096) ~bytes:4096 in
  check Alcotest.bool "clean range is free" true
    (far.Repair.remapped = 0 && far.Repair.penalty_hits = 0);
  check Alcotest.int "remap counter" 1 (Repair.counters t 0).Repair.remaps;
  check Alcotest.int "penalty counter" 1 (Repair.counters t 0).Repair.penalty_hits

let test_repair_spare_exhaustion_fails_with_mirror () =
  let cfg = Repair.config ~surface_blocks:8 ~fail_threshold:100 () in
  let two = Repair.make cfg ~disks:2 in
  Repair.grow two ~disk:0 ~block:1;
  Repair.grow two ~disk:0 ~block:2;
  let touched = Repair.touch two ~disk:0 ~spare:1 ~lba:0 ~bytes:(8 * 4096) in
  check Alcotest.int "only one spare to give" 1 touched.Repair.remapped;
  check Alcotest.bool "exhausted pool retires the slot" true (Repair.should_fail two ~disk:0);
  (* The same history on a single-disk array never fails: no mirror. *)
  let one = Repair.make cfg ~disks:1 in
  Repair.grow one ~disk:0 ~block:1;
  Repair.grow one ~disk:0 ~block:2;
  ignore (Repair.touch one ~disk:0 ~spare:1 ~lba:0 ~bytes:(8 * 4096));
  check Alcotest.bool "mirror-less array keeps serving" false (Repair.should_fail one ~disk:0)

let test_repair_threshold_and_mirror_pairs () =
  let t = Repair.make (Repair.config ~surface_blocks:64 ~fail_threshold:2 ()) ~disks:5 in
  check Alcotest.(option int) "0 pairs 1" (Some 1) (Repair.mirror_of t 0);
  check Alcotest.(option int) "1 pairs 0" (Some 0) (Repair.mirror_of t 1);
  check Alcotest.(option int) "2 pairs 3" (Some 3) (Repair.mirror_of t 2);
  check Alcotest.(option int) "trailing odd disk uses its predecessor" (Some 3)
    (Repair.mirror_of t 4);
  let solo = Repair.make Repair.default ~disks:1 in
  check Alcotest.(option int) "single disk has no mirror" None (Repair.mirror_of solo 0);
  Repair.grow t ~disk:2 ~block:0;
  check Alcotest.bool "below threshold" false (Repair.should_fail t ~disk:2);
  Repair.grow t ~disk:2 ~block:1;
  check Alcotest.bool "at threshold" true (Repair.should_fail t ~disk:2);
  Repair.mark_failed t ~disk:2;
  check Alcotest.bool "marked failed" true (Repair.is_failed t 2);
  check Alcotest.bool "failed slot never re-fails" false (Repair.should_fail t ~disk:2);
  (* The hot spare starts with a clean map and pool. *)
  check Alcotest.int "fresh map" 0 (Repair.grown t 2);
  check Alcotest.int "fresh pool" 0 (Repair.spare_used t 2);
  (* With 2 down, 3's mirror is unhealthy: 3 must keep serving. *)
  Repair.grow t ~disk:3 ~block:0;
  Repair.grow t ~disk:3 ~block:1;
  check Alcotest.bool "no failure while the mirror is down" false
    (Repair.should_fail t ~disk:3)

let test_repair_rebuild_cycle () =
  let t =
    Repair.make
      (Repair.config ~surface_blocks:16 ~rebuild_blocks:8 ~rebuild_chunk_blocks:4
         ~fail_threshold:2 ())
      ~disks:2
  in
  rejects "rebuild of a healthy slot" (fun () -> Repair.rebuild_step t ~disk:0 ~blocks:4);
  Repair.grow t ~disk:0 ~block:0;
  Repair.grow t ~disk:0 ~block:1;
  Repair.mark_failed t ~disk:0;
  check Alcotest.bool "first slice incomplete" false (Repair.rebuild_step t ~disk:0 ~blocks:4);
  check Alcotest.bool "second slice restores" true (Repair.rebuild_step t ~disk:0 ~blocks:4);
  check Alcotest.bool "healthy again" false (Repair.is_failed t 0);
  let c = Repair.counters t 0 in
  check Alcotest.int "failure counted" 1 c.Repair.failures;
  check Alcotest.int "rebuild counted" 1 c.Repair.rebuilds;
  check Alcotest.int "two slices" 2 c.Repair.rebuild_chunks

let test_repair_scrub_cursor () =
  (* An 8-block surface scrubbed in 4-block chunks: two commits complete
     one pass; a bad block under the cursor is found and remapped. *)
  let t =
    Repair.make (Repair.config ~surface_blocks:8 ~scrub_chunk_blocks:4 ()) ~disks:1
  in
  Repair.grow t ~disk:0 ~block:2;
  Repair.grow t ~disk:0 ~block:6;
  let blocks, found = Repair.scrub_peek t ~disk:0 ~spare:8 in
  check Alcotest.int "chunk spans 4 blocks" 4 blocks;
  check Alcotest.int "peek sees the first defect" 1 found;
  (* Peek is pure: nothing moved. *)
  let blocks', found' = Repair.scrub_peek t ~disk:0 ~spare:8 in
  check Alcotest.bool "peek is repeatable" true (blocks = blocks' && found = found');
  let done1, pass1 = Repair.scrub_commit t ~disk:0 ~spare:8 in
  check Alcotest.int "first chunk remaps one" 1 done1;
  check Alcotest.bool "pass not complete" false pass1;
  let done2, pass2 = Repair.scrub_commit t ~disk:0 ~spare:8 in
  check Alcotest.int "second chunk remaps the other" 1 done2;
  check Alcotest.bool "pass completes at the wrap" true pass2;
  let c = Repair.counters t 0 in
  check Alcotest.int "chunks counted" 2 c.Repair.scrub_chunks;
  check Alcotest.int "found counted" 2 c.Repair.scrub_found;
  check Alcotest.int "one pass" 1 c.Repair.scrub_passes;
  check Alcotest.int "scrub remaps count as remaps" 2 c.Repair.remaps;
  (* With no spares left, peek finds nothing to remap. *)
  Repair.grow t ~disk:0 ~block:0;
  let _, found_dry = Repair.scrub_peek t ~disk:0 ~spare:2 in
  check Alcotest.int "found capped by the spare pool" 0 found_dry

(* --- the engine's degraded serving paths --- *)

(* Decay at rate 1 over a single-block surface: every request grows (and
   immediately touches) block 0, so the first service pays exactly one
   remap write and each later service exactly one detour penalty. *)
let test_engine_remap_accounting () =
  let reqs =
    [ req ~think:10.0 (); req ~think:100.0 (); req ~think:100.0 () ]
  in
  let faults = Fault_model.make ~classes:[ Fault_model.Media_decay ] ~seed:3 ~rate:1.0 () in
  let repair = Repair.config ~surface_blocks:1 () in
  let clean = Engine.simulate ~disks:1 Policy.No_pm reqs in
  let r = Engine.simulate ~faults ~repair ~disks:1 Policy.No_pm reqs in
  let d = r.Engine.per_disk.(0) in
  check Alcotest.int "one remap" 1 d.Engine.remaps;
  check Alcotest.int "two detours" 2 d.Engine.remap_penalty_hits;
  let remap = Disk_model.remap_ms m ~rpm:15000 ~block_bytes:4096 in
  let extra = remap +. (2.0 *. m.Disk_model.remap_penalty_ms) in
  check (Alcotest.float 1e-6) "degraded time = remap + detours" extra d.Engine.degraded_ms;
  check (Alcotest.float 1e-6) "busy grew by exactly the repair work"
    (clean.Engine.per_disk.(0).Engine.busy_ms +. extra)
    d.Engine.busy_ms;
  (* Every repair millisecond is charged at active power. *)
  check (Alcotest.float 1e-6) "energy = clean + repair at active power"
    (clean.Engine.energy_j +. (13.5 *. extra /. 1000.0))
    r.Engine.energy_j;
  check (Alcotest.float 1e-6) "responses carry the repair time"
    (clean.Engine.io_time_ms +. extra)
    r.Engine.io_time_ms

let test_engine_scrub_in_gaps () =
  (* Grown defects left outside the touched range are cleaned up by the
     background scrubber during think-time gaps. *)
  let reqs =
    List.init 6 (fun i -> req ~think:(if i = 0 then 10.0 else 400.0) ~lba:0 ())
  in
  let faults = Fault_model.make ~classes:[ Fault_model.Media_decay ] ~seed:11 ~rate:1.0 () in
  let repair =
    Repair.config ~surface_blocks:4096 ~scrub_budget_ms:60.0 ~scrub_chunk_blocks:512 ()
  in
  let r =
    Engine.simulate ~record_timeline:true ~faults ~repair ~disks:1 Policy.No_pm reqs
  in
  let d = r.Engine.per_disk.(0) in
  check Alcotest.bool "scrub chunks read" true (d.Engine.scrub_chunks > 0);
  check Alcotest.int "all served" 6 d.Engine.requests;
  (* Conservation and contiguity hold on the scrubbed timeline. *)
  let t = Option.get r.Engine.timeline in
  let segs = t.(0) in
  let rec contiguous = function
    | (a : Timeline.segment) :: (b :: _ as rest) ->
        Float.abs (b.Timeline.start_ms -. a.Timeline.stop_ms) <= 1e-6 && contiguous rest
    | _ -> true
  in
  check Alcotest.bool "timeline contiguous" true (contiguous segs);
  check Alcotest.bool "energy conserved" true
    (Float.abs (Timeline.total_energy_j t ~disk:0 -. d.Engine.energy_j)
    <= 1e-6 *. Float.max 1.0 d.Engine.energy_j);
  (* Scrub keeps the foreground schedule: arrivals are never delayed, so
     io time matches a run without scrubbing. *)
  let no_scrub =
    Engine.simulate ~faults ~repair:(Repair.config ~surface_blocks:4096 ()) ~disks:1
      Policy.No_pm reqs
  in
  check (Alcotest.float 1e-6) "scrub never delays the foreground"
    no_scrub.Engine.io_time_ms r.Engine.io_time_ms

let test_engine_deadline_failover () =
  (* Certain media errors with a generous retry ladder blow a tight
     deadline: the engine abandons the retries and reads the mirror. *)
  let reqs = List.init 4 (fun _ -> req ~disk:0 ~think:50.0 ()) in
  let faults = Fault_model.make ~classes:[ Fault_model.Media_error ] ~seed:5 ~rate:1.0 () in
  let retry = Policy.retry ~max_attempts:5 ~backoff_base_ms:20.0 () in
  let r =
    Engine.simulate ~record_timeline:true ~faults ~retry ~deadline_ms:10.0 ~disks:2
      Policy.No_pm reqs
  in
  let d0 = r.Engine.per_disk.(0) and d1 = r.Engine.per_disk.(1) in
  check Alcotest.int "every request fails over" 4 d0.Engine.failovers;
  check Alcotest.int "origin still owns the services" 4 d0.Engine.requests;
  check Alcotest.bool "mirror did real work" true (d1.Engine.busy_ms > 0.0);
  check Alcotest.bool "terminates" true (Float.is_finite r.Engine.makespan_ms);
  let t = Option.get r.Engine.timeline in
  let rec contiguous = function
    | (a : Timeline.segment) :: (b :: _ as rest) ->
        Float.abs (b.Timeline.start_ms -. a.Timeline.stop_ms) <= 1e-6 && contiguous rest
    | _ -> true
  in
  Array.iteri
    (fun i segs ->
      check Alcotest.bool (Printf.sprintf "disk %d timeline contiguous" i) true
        (contiguous segs))
    t;
  Array.iter
    (fun (d : Engine.disk_stats) ->
      check Alcotest.bool
        (Printf.sprintf "disk %d energy conserved" d.Engine.disk)
        true
        (Float.abs (Timeline.total_energy_j t ~disk:d.Engine.disk -. d.Engine.energy_j)
        <= 1e-6 *. Float.max 1.0 d.Engine.energy_j))
    r.Engine.per_disk

let test_engine_degraded_rebuild_restored () =
  (* A tiny surface and threshold: disk 0 retires after two defects, its
     reads are reconstructed from disk 1, the rebuild stream fills the
     hot spare during think gaps, and the slot returns to service —
     with conservation and contiguity holding through the whole cycle. *)
  (* Think gaps must outlast the hot-spare activation (a full 10.9 s
     spin-up) before rebuild slices can fit, so the cycle completes
     inside the trace. *)
  let reqs = List.init 12 (fun _ -> req ~disk:0 ~think:4_000.0 ()) in
  let faults = Fault_model.make ~classes:[ Fault_model.Media_decay ] ~seed:2 ~rate:1.0 () in
  let repair =
    Repair.config ~surface_blocks:4 ~fail_threshold:2 ~rebuild_blocks:8
      ~rebuild_chunk_blocks:4 ()
  in
  let r =
    Engine.simulate ~record_timeline:true ~faults ~repair ~disks:2 Policy.No_pm reqs
  in
  let d0 = r.Engine.per_disk.(0) and d1 = r.Engine.per_disk.(1) in
  check Alcotest.bool "disk 0 retired" true (d0.Engine.disk_failures >= 1);
  check Alcotest.bool "a full rebuild completed" true (d0.Engine.rebuilds_completed >= 1);
  check Alcotest.bool "at most the final failure still rebuilding" true
    (d0.Engine.disk_failures - d0.Engine.rebuilds_completed <= 1);
  check Alcotest.bool "rebuild slices copied" true (d0.Engine.rebuild_chunks >= 2);
  check Alcotest.bool "mirror served degraded reads" true (d1.Engine.reconstructions >= 1);
  check Alcotest.int "every request served" 12 (d0.Engine.requests + d1.Engine.requests);
  check Alcotest.bool "disk 0 resumed service after the rebuild" true (d0.Engine.requests > 0);
  let t = Option.get r.Engine.timeline in
  let rec contiguous = function
    | (a : Timeline.segment) :: (b :: _ as rest) ->
        Float.abs (b.Timeline.start_ms -. a.Timeline.stop_ms) <= 1e-6 && contiguous rest
    | _ -> true
  in
  Array.iter (fun segs -> check Alcotest.bool "contiguous" true (contiguous segs)) t;
  Array.iter
    (fun (d : Engine.disk_stats) ->
      check Alcotest.bool
        (Printf.sprintf "disk %d energy conserved through the cycle" d.Engine.disk)
        true
        (Float.abs (Timeline.total_energy_j t ~disk:d.Engine.disk -. d.Engine.energy_j)
        <= 1e-6 *. Float.max 1.0 d.Engine.energy_j))
    r.Engine.per_disk

(* --- cross-domain determinism (satellite S3) --- *)

let decay_spec_gen =
  QCheck2.Gen.(pair (int_range 0 100_000) (map (fun r -> float_of_int r /. 100.0) (int_range 0 40)))

(* The decay stream and the maps it grows are a pure function of the
   fault spec: driving the injector+repair state machine on worker
   domains must reproduce the jobs-1 digests exactly. *)
let prop_decay_maps_domain_independent =
  qtest ~count:10 "Repair: decay maps byte-identical under jobs 1 vs 8" decay_spec_gen
    (fun (seed, rate) ->
      let drive copy =
        let faults =
          Fault_model.make ~classes:[ Fault_model.Media_decay ] ~seed:(seed + copy) ~rate ()
        in
        let inj = Injector.make faults ~disks:4 in
        let t = Repair.make (Repair.config ~surface_blocks:128 ()) ~disks:4 in
        for i = 0 to 399 do
          let d = i mod 4 in
          (match Injector.decay_defect inj ~disk:d ~surface:128 with
          | Some b -> Repair.grow t ~disk:d ~block:b
          | None -> ());
          ignore (Repair.touch t ~disk:d ~spare:16 ~lba:(i * 37 mod 128 * 4096) ~bytes:8192)
        done;
        List.init 4 (fun d -> (Repair.map_digest t d, Repair.counters t d))
      in
      let copies = [ 0; 1; 2; 3 ] in
      Domain_pool.map ~jobs:1 drive copies = Domain_pool.map ~jobs:8 drive copies)

let prop_simulate_domain_independent =
  qtest ~count:8 "Engine: decay/repair runs byte-identical under jobs 1 vs 8" decay_spec_gen
    (fun (seed, rate) ->
      let reqs =
        List.init 30 (fun i ->
            req ~disk:(i mod 3) ~lba:(i * 65536) ~think:(float_of_int (20 + (i * 13 mod 400))) ())
      in
      let run copy =
        let faults = Fault_model.make ~seed:(seed + copy) ~rate () in
        let repair = Repair.config ~surface_blocks:64 ~fail_threshold:8 () in
        Engine.simulate ~faults ~repair ~deadline_ms:1000.0 ~disks:3 Policy.default_tpm reqs
      in
      let copies = [ 0; 1; 2; 3 ] in
      Domain_pool.map ~jobs:1 run copies = Domain_pool.map ~jobs:8 run copies)

let suites =
  [
    ( "repair.badmap",
      [
        Alcotest.test_case "status transitions" `Quick test_badmap_statuses;
        Alcotest.test_case "digest" `Quick test_badmap_digest;
      ] );
    ( "repair.state",
      [
        Alcotest.test_case "config validation" `Quick test_repair_config_validation;
        Alcotest.test_case "remap then penalty" `Quick test_repair_touch_remap_then_penalty;
        Alcotest.test_case "spare exhaustion" `Quick test_repair_spare_exhaustion_fails_with_mirror;
        Alcotest.test_case "threshold and mirrors" `Quick test_repair_threshold_and_mirror_pairs;
        Alcotest.test_case "rebuild cycle" `Quick test_repair_rebuild_cycle;
        Alcotest.test_case "scrub cursor" `Quick test_repair_scrub_cursor;
      ] );
    ( "repair.engine",
      [
        Alcotest.test_case "exact remap accounting" `Quick test_engine_remap_accounting;
        Alcotest.test_case "scrub in idle gaps" `Quick test_engine_scrub_in_gaps;
        Alcotest.test_case "deadline failover" `Quick test_engine_deadline_failover;
        Alcotest.test_case "degraded, rebuild, restored" `Quick
          test_engine_degraded_rebuild_restored;
      ] );
    ( "repair.domains",
      [ prop_decay_maps_domain_independent; prop_simulate_domain_independent ] );
  ]
