(* Tests for the fault model and the deterministic injector. *)

module Fault_model = Dp_faults.Fault_model
module Injector = Dp_faults.Injector

let check = Alcotest.check

let test_spec_roundtrip () =
  List.iter
    (fun spec ->
      match Fault_model.of_spec spec with
      | Ok f -> check Alcotest.string spec spec (Fault_model.to_spec f)
      | Error e -> Alcotest.failf "spec %s rejected: %s" spec e)
    [ "42:0.01:all"; "7:0.05:sm"; "0:0:all"; "123:1:lr" ]

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_spec_errors () =
  let rejects spec part =
    match Fault_model.of_spec spec with
    | Ok _ -> Alcotest.failf "spec %s must be rejected" spec
    | Error msg ->
        check Alcotest.bool
          (Printf.sprintf "%s error mentions %s (got %s)" spec part msg)
          true (contains ~needle:part msg)
  in
  rejects "x:0.1:all" "seed";
  rejects "-1:0.1:all" "seed";
  rejects "1:nope:all" "rate";
  rejects "1:2.5:all" "rate";
  rejects "1:0.1:qz" "class";
  rejects "1:0.1:ssm" "duplicate";
  rejects "1:0.1:dd" "duplicate";
  rejects "justonefield" "spec"

let test_classes () =
  (match Fault_model.of_spec "1:0.5:smd" with
  | Ok f ->
      check Alcotest.int "three classes" 3 (List.length f.Fault_model.classes);
      check Alcotest.bool "decay enabled" true
        (List.mem Fault_model.Media_decay f.Fault_model.classes)
  | Error e -> Alcotest.fail e);
  (match Fault_model.of_spec "7:0.1:d" with
  | Ok f -> check Alcotest.string "decay roundtrip" "7:0.1:d" (Fault_model.to_spec f)
  | Error e -> Alcotest.fail e);
  match Fault_model.of_spec "1:0.5:all" with
  | Ok f ->
      check Alcotest.bool "all classes (including decay)" true
        (f.Fault_model.classes = Fault_model.all_classes
        && List.length f.Fault_model.classes = 5)
  | Error e -> Alcotest.fail e

let test_rate_clamped () =
  let f = Fault_model.make ~seed:1 ~rate:7.0 () in
  check (Alcotest.float 0.0) "clamped to 1" 1.0 f.Fault_model.rate;
  let f = Fault_model.make ~seed:1 ~rate:(-3.0) () in
  check (Alcotest.float 0.0) "clamped to 0" 0.0 f.Fault_model.rate

let drain inj ~disks ~n =
  List.init (disks * n) (fun i ->
      let disk = i mod disks in
      ( Injector.spin_up_failures inj ~disk ~max_failures:4,
        Injector.media_retries inj ~disk ~max_retries:4,
        Injector.latency_spike_ms inj ~disk ))

let test_injector_deterministic () =
  let cfg = Fault_model.make ~seed:99 ~rate:0.3 () in
  let a = drain (Injector.make cfg ~disks:3) ~disks:3 ~n:200 in
  let b = drain (Injector.make cfg ~disks:3) ~disks:3 ~n:200 in
  check Alcotest.bool "same seed, same faults" true (a = b);
  let c = drain (Injector.make { cfg with Fault_model.seed = 100 } ~disks:3) ~disks:3 ~n:200 in
  check Alcotest.bool "different seed, different faults" true (a <> c)

let test_injector_rate_zero () =
  let cfg = Fault_model.make ~seed:5 ~rate:0.0 () in
  let inj = Injector.make cfg ~disks:2 in
  for disk = 0 to 1 do
    for _ = 1 to 100 do
      check Alcotest.int "no spin-up failures" 0
        (Injector.spin_up_failures inj ~disk ~max_failures:4);
      check Alcotest.int "no media retries" 0 (Injector.media_retries inj ~disk ~max_retries:4);
      check (Alcotest.float 0.0) "no spikes" 0.0 (Injector.latency_spike_ms inj ~disk);
      check Alcotest.bool "no stuck windows" false (Injector.rpm_locked inj ~disk ~now_ms:0.0)
    done
  done

let test_injector_rate_one_bounded () =
  (* Certain faults still respect the caller's bounds. *)
  let cfg = Fault_model.make ~seed:5 ~rate:1.0 () in
  let inj = Injector.make cfg ~disks:1 in
  for _ = 1 to 50 do
    let f = Injector.spin_up_failures inj ~disk:0 ~max_failures:4 in
    check Alcotest.bool "failures within bound" true (f >= 1 && f <= 4);
    let r = Injector.media_retries inj ~disk:0 ~max_retries:3 in
    check Alcotest.bool "retries within bound" true (r >= 1 && r <= 3)
  done;
  check Alcotest.int "zero bound honoured" 0
    (Injector.spin_up_failures inj ~disk:0 ~max_failures:0)

let test_injector_class_gating () =
  (* Only the enabled classes fire, even at rate 1. *)
  let cfg = Fault_model.make ~classes:[ Fault_model.Media_error ] ~seed:5 ~rate:1.0 () in
  let inj = Injector.make cfg ~disks:1 in
  check Alcotest.int "spin-up disabled" 0 (Injector.spin_up_failures inj ~disk:0 ~max_failures:4);
  check Alcotest.bool "media enabled" true (Injector.media_retries inj ~disk:0 ~max_retries:4 > 0);
  check (Alcotest.float 0.0) "spike disabled" 0.0 (Injector.latency_spike_ms inj ~disk:0);
  check Alcotest.bool "stuck disabled" false (Injector.rpm_locked inj ~disk:0 ~now_ms:0.0)

let test_injector_streams_independent () =
  (* Consuming one class's stream must not shift another's: media draws
     between two spin-up draws leave the spin-up sequence unchanged. *)
  let cfg = Fault_model.make ~seed:7 ~rate:0.4 () in
  let pure = Injector.make cfg ~disks:2 in
  let seq_a = List.init 50 (fun _ -> Injector.spin_up_failures pure ~disk:0 ~max_failures:4) in
  let noisy = Injector.make cfg ~disks:2 in
  let seq_b =
    List.init 50 (fun _ ->
        ignore (Injector.media_retries noisy ~disk:0 ~max_retries:4);
        ignore (Injector.latency_spike_ms noisy ~disk:1);
        Injector.spin_up_failures noisy ~disk:0 ~max_failures:4)
  in
  check Alcotest.bool "per-class streams independent" true (seq_a = seq_b)

let test_decay_stream () =
  (* Decay draws are deterministic, gated on the class, silent at rate
     0, and independent of the other streams. *)
  let cfg = Fault_model.make ~seed:21 ~rate:0.4 () in
  let drain inj =
    List.init 200 (fun i -> Injector.decay_defect inj ~disk:(i mod 2) ~surface:4096)
  in
  let a = drain (Injector.make cfg ~disks:2) in
  let b = drain (Injector.make cfg ~disks:2) in
  check Alcotest.bool "same seed, same defects" true (a = b);
  check Alcotest.bool "some defects at rate 0.4" true (List.exists Option.is_some a);
  check Alcotest.bool "defects within the surface" true
    (List.for_all (function Some b -> b >= 0 && b < 4096 | None -> true) a);
  (* Interleaving other classes' draws leaves the decay schedule alone. *)
  let noisy = Injector.make cfg ~disks:2 in
  let c =
    List.init 200 (fun i ->
        ignore (Injector.media_retries noisy ~disk:0 ~max_retries:4);
        ignore (Injector.latency_spike_ms noisy ~disk:1);
        Injector.decay_defect noisy ~disk:(i mod 2) ~surface:4096)
  in
  check Alcotest.bool "decay stream independent" true (a = c);
  (* Rate 0: never a defect, and no draw consumed. *)
  let z = Injector.make (Fault_model.make ~seed:21 ~rate:0.0 ()) ~disks:2 in
  check Alcotest.bool "rate 0 silent" true
    (List.for_all Option.is_none
       (List.init 100 (fun i -> Injector.decay_defect z ~disk:(i mod 2) ~surface:64)));
  (* Class gating: media-only config never decays even at rate 1. *)
  let m =
    Injector.make
      (Fault_model.make ~classes:[ Fault_model.Media_error ] ~seed:21 ~rate:1.0 ())
      ~disks:1
  in
  check Alcotest.bool "decay disabled" true
    (Option.is_none (Injector.decay_defect m ~disk:0 ~surface:64));
  check Alcotest.bool "surface must be positive" true
    (try
       ignore (Injector.decay_defect (Injector.make cfg ~disks:1) ~disk:0 ~surface:0);
       false
     with Invalid_argument _ -> true)

let test_stuck_window () =
  let cfg = Fault_model.make ~seed:3 ~rate:1.0 ~stuck_window_ms:1_000.0 () in
  let inj = Injector.make cfg ~disks:1 in
  (* At rate 1 the first consult opens a window... *)
  check Alcotest.bool "locks" true (Injector.rpm_locked inj ~disk:0 ~now_ms:0.0);
  (* ...the pure read agrees inside it and disagrees after expiry. *)
  check Alcotest.bool "locked inside window" true (Injector.is_locked inj ~disk:0 ~now_ms:500.0);
  check Alcotest.bool "expired after window" false
    (Injector.is_locked inj ~disk:0 ~now_ms:1_500.0)

let suites =
  [
    ( "faults.model",
      [
        Alcotest.test_case "spec roundtrip" `Quick test_spec_roundtrip;
        Alcotest.test_case "spec errors" `Quick test_spec_errors;
        Alcotest.test_case "classes" `Quick test_classes;
        Alcotest.test_case "rate clamped" `Quick test_rate_clamped;
      ] );
    ( "faults.injector",
      [
        Alcotest.test_case "deterministic" `Quick test_injector_deterministic;
        Alcotest.test_case "rate zero" `Quick test_injector_rate_zero;
        Alcotest.test_case "rate one bounded" `Quick test_injector_rate_one_bounded;
        Alcotest.test_case "class gating" `Quick test_injector_class_gating;
        Alcotest.test_case "streams independent" `Quick test_injector_streams_independent;
        Alcotest.test_case "decay stream" `Quick test_decay_stream;
        Alcotest.test_case "stuck window" `Quick test_stuck_window;
      ] );
  ]
