(* Tests for the crash-safe persistent stage cache: framing round-trips,
   graceful degradation under injected corruption (truncation, bit
   flips, version skew), quarantine, residue-free stores, and the static
   stat/clear maintenance operations. *)

module Cachefs = Dp_cachefs.Cachefs
module Splitmix = Dp_util.Splitmix

let check = Alcotest.check

let qtest ?(count = 150) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* A fresh scratch store per test; everything lives under the system
   temp dir, no shared state between tests. *)
let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "dpower-cachefs-test-%d-%d" (Unix.getpid ()) !dir_counter)

let with_store f =
  let dir = fresh_dir () in
  match Cachefs.open_store ~dir () with
  | Error msg -> Alcotest.failf "open_store %s: %s" dir msg
  | Ok store -> f dir store

let entry_file dir =
  Array.to_list (Sys.readdir dir)
  |> List.find_opt (fun n ->
         String.length n > 6 && String.sub n 0 6 = "entry-" && Filename.check_suffix n ".bin")
  |> function
  | Some n -> Filename.concat dir n
  | None -> Alcotest.fail "no entry file in store"

let no_residue dir =
  Array.iter
    (fun n ->
      let is_sub pat =
        let lp = String.length pat and ln = String.length n in
        let rec go i = i + lp <= ln && (String.sub n i lp = pat || go (i + 1)) in
        go 0
      in
      if is_sub ".tmp." then Alcotest.failf "temp residue: %s" n;
      if n = "lock" then Alcotest.failf "lock residue: %s" n)
    (Sys.readdir dir)

let test_roundtrip () =
  with_store @@ fun dir store ->
  let key = Cachefs.key ~parts:[ "digest"; "trace"; "original"; "1" ] in
  check Alcotest.(option string) "empty store misses" None (Cachefs.get store ~key);
  (* Binary-safe payload: newlines, NULs, high bytes. *)
  let payload = "line1\nline2\x00\xff\n" in
  Cachefs.put store ~key payload;
  check Alcotest.(option string) "roundtrip" (Some payload) (Cachefs.get store ~key);
  let k = Cachefs.counters store in
  check Alcotest.int "one hit" 1 k.Cachefs.hits;
  check Alcotest.int "one miss" 1 k.Cachefs.misses;
  check Alcotest.int "no corruption" 0 k.Cachefs.corrupt;
  check Alcotest.int "no dropped writes" 0 k.Cachefs.write_failures;
  no_residue dir

let test_persistence () =
  with_store @@ fun dir store ->
  let key = Cachefs.key ~parts:[ "shared" ] in
  Cachefs.put store ~key "payload";
  (* A second handle on the same directory — a later process. *)
  match Cachefs.open_store ~dir () with
  | Error msg -> Alcotest.fail msg
  | Ok store2 ->
      check Alcotest.(option string) "entry survives reopen" (Some "payload")
        (Cachefs.get store2 ~key);
      check Alcotest.int "hit counted on new handle" 1 (Cachefs.counters store2).Cachefs.hits

let test_distinct_keys () =
  with_store @@ fun _dir store ->
  let k1 = Cachefs.key ~parts:[ "a"; "b" ] and k2 = Cachefs.key ~parts:[ "ab" ] in
  if String.equal k1 k2 then Alcotest.fail "part boundaries must affect the key";
  Cachefs.put store ~key:k1 "one";
  Cachefs.put store ~key:k2 "two";
  check Alcotest.(option string) "k1" (Some "one") (Cachefs.get store ~key:k1);
  check Alcotest.(option string) "k2" (Some "two") (Cachefs.get store ~key:k2)

(* The tentpole property: whatever a fault does to the entry's bytes,
   [get] never crashes and never returns wrong data — it quarantines and
   misses, and the store recovers on the next write. *)
let mutate_entry rng path =
  let data =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let write s =
    let oc = open_out_bin path in
    output_string oc s;
    close_out oc
  in
  match Splitmix.int rng ~bound:4 with
  | 0 ->
      (* Truncate: a crashed writer that never reached the rename would
         not leave this, but a torn disk might. *)
      let keep = Splitmix.int rng ~bound:(String.length data) in
      write (String.sub data 0 keep);
      "truncate"
  | 1 ->
      (* Flip one bit somewhere. *)
      let i = Splitmix.int rng ~bound:(String.length data) in
      let bit = Splitmix.int rng ~bound:8 in
      let b = Bytes.of_string data in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
      write (Bytes.to_string b);
      "bit-flip"
  | 2 ->
      (* Version skew: a file from a future/past format. *)
      let nl = String.index data '\n' in
      write
        (Printf.sprintf "dpowercache %d%s"
           (Cachefs.format_version + 1 + Splitmix.int rng ~bound:5)
           (String.sub data nl (String.length data - nl)));
      "version-skew"
  | _ ->
      (* Trailing garbage after the checksum line. *)
      write (data ^ "garbage");
      "append"

let corruption_prop seed =
  let rng = Splitmix.create seed in
  with_store @@ fun dir store ->
  let key = Cachefs.key ~parts:[ "prog"; string_of_int seed ] in
  let payload = String.init (1 + Splitmix.int rng ~bound:4096) (fun _ ->
      Char.chr (Splitmix.int rng ~bound:256))
  in
  Cachefs.put store ~key payload;
  let path = entry_file dir in
  let kind = mutate_entry rng path in
  (match Cachefs.get store ~key with
  | None -> ()
  | Some got ->
      (* A mutation may leave the entry intact only if the bytes still
         verify — then they must be the original payload (a bit flip
         cannot produce a valid frame with different content). *)
      if not (String.equal got payload) then
        QCheck2.Test.fail_reportf "%s returned wrong payload" kind);
  (match Cachefs.get store ~key with
  | Some got when not (String.equal got payload) ->
      QCheck2.Test.fail_reportf "%s: second read returned wrong payload" kind
  | _ -> ());
  let k = Cachefs.counters store in
  if k.Cachefs.corrupt > 0 then begin
    (* Quarantined, not deleted: the corpse is kept for inspection and
       never re-read. *)
    if not (Sys.file_exists (path ^ ".corrupt")) then
      QCheck2.Test.fail_reportf "%s: corrupt entry not quarantined" kind;
    if Sys.file_exists path then
      QCheck2.Test.fail_reportf "%s: corrupt entry still live" kind
  end;
  (* Recovery: a rewrite publishes a fresh verified entry. *)
  Cachefs.put store ~key payload;
  (match Cachefs.get store ~key with
  | Some got when String.equal got payload -> ()
  | _ -> QCheck2.Test.fail_reportf "%s: store did not recover after rewrite" kind);
  no_residue dir;
  true

let test_version_skew_counts () =
  with_store @@ fun dir store ->
  let key = Cachefs.key ~parts:[ "skew" ] in
  Cachefs.put store ~key "payload";
  let path = entry_file dir in
  let data = Dp_util.Fsx.read_file path in
  let nl = String.index data '\n' in
  let oc = open_out_bin path in
  output_string oc
    (Printf.sprintf "dpowercache %d%s" (Cachefs.format_version + 1)
       (String.sub data nl (String.length data - nl)));
  close_out oc;
  check Alcotest.(option string) "skewed entry misses" None (Cachefs.get store ~key);
  check Alcotest.int "counted as corrupt" 1 (Cachefs.counters store).Cachefs.corrupt;
  check Alcotest.bool "quarantined" true (Sys.file_exists (path ^ ".corrupt"))

let test_report_undecodable () =
  with_store @@ fun dir store ->
  let key = Cachefs.key ~parts:[ "undecodable" ] in
  Cachefs.put store ~key "frame verifies, payload does not decode";
  let path = entry_file dir in
  Cachefs.report_undecodable store ~key;
  check Alcotest.bool "quarantined" true (Sys.file_exists (path ^ ".corrupt"));
  check Alcotest.(option string) "entry gone" None (Cachefs.get store ~key);
  check Alcotest.int "one corrupt eviction" 1 (Cachefs.counters store).Cachefs.corrupt;
  no_residue dir

let test_open_store_failure () =
  (* A directory that cannot exist: its parent is a file. *)
  match Cachefs.open_store ~dir:"/dev/null/store" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "open_store under /dev/null must fail"

let test_default_dir_env () =
  let saved v = Option.value (Sys.getenv_opt v) ~default:"" in
  let restore =
    let e = saved "DPOWER_CACHE_DIR" and x = saved "XDG_CACHE_HOME" in
    fun () ->
      Unix.putenv "DPOWER_CACHE_DIR" e;
      Unix.putenv "XDG_CACHE_HOME" x
  in
  Fun.protect ~finally:restore (fun () ->
      Unix.putenv "DPOWER_CACHE_DIR" "/explicit/cache";
      check Alcotest.string "DPOWER_CACHE_DIR wins" "/explicit/cache" (Cachefs.default_dir ());
      Unix.putenv "DPOWER_CACHE_DIR" "";
      Unix.putenv "XDG_CACHE_HOME" "/xdg";
      check Alcotest.string "XDG fallback"
        (Filename.concat "/xdg" "dpower")
        (Cachefs.default_dir ()))

let test_usage_and_clear () =
  with_store @@ fun dir store ->
  Cachefs.put store ~key:(Cachefs.key ~parts:[ "a" ]) "aaaa";
  Cachefs.put store ~key:(Cachefs.key ~parts:[ "b" ]) "bbbbbbbb";
  Cachefs.save_run_counters store;
  let u = Cachefs.usage ~dir in
  check Alcotest.int "two entries" 2 u.Cachefs.entries;
  check Alcotest.bool "bytes counted" true (u.Cachefs.bytes > 12);
  check Alcotest.int "nothing quarantined" 0 u.Cachefs.quarantined;
  check Alcotest.int "no temp files" 0 u.Cachefs.temp;
  (match Cachefs.load_run_counters ~dir with
  | None -> Alcotest.fail "saved counters not readable"
  | Some k -> check Alcotest.int "saved misses" 0 k.Cachefs.misses);
  check Alcotest.int "clear removes both" 2 (Cachefs.clear ~dir);
  let u = Cachefs.usage ~dir in
  check Alcotest.int "store empty" 0 u.Cachefs.entries;
  check Alcotest.(option reject) "stats file cleared" None
    (Option.map ignore (Cachefs.load_run_counters ~dir))

let test_missing_dir_maintenance () =
  let dir = fresh_dir () in
  let u = Cachefs.usage ~dir in
  check Alcotest.int "usage of missing dir" 0 (u.Cachefs.entries + u.Cachefs.bytes);
  check Alcotest.int "clear of missing dir" 0 (Cachefs.clear ~dir)

(* A contended advisory lock: lockf locks are per-process, so a helper
   process ([lockholder.exe] — spawned, not forked: OCaml 5 forbids
   fork once another suite has created a domain) holds the store lock
   while our put times out.  The put must degrade (Error, counted,
   store untouched), name the lock file and the holder's age, and
   surface on the observability sink as a fault-class event. *)
let test_lock_timeout () =
  let dir = fresh_dir () in
  let events = ref [] in
  let sink = Dp_obs.Sink.stream (fun e -> events := e :: !events) in
  match Cachefs.open_store ~sink ~lock_timeout_ms:100 ~dir () with
  | Error msg -> Alcotest.failf "open_store %s: %s" dir msg
  | Ok store ->
      let lock = Filename.concat dir "lock" in
      let r, w = Unix.pipe () in
      let holder =
        Filename.concat (Filename.dirname Sys.executable_name) "lockholder.exe"
      in
      let pid = Unix.create_process holder [| holder; lock |] Unix.stdin w Unix.stderr in
      Fun.protect
        ~finally:(fun () ->
          Unix.kill pid Sys.sigkill;
          ignore (Unix.waitpid [] pid);
          Unix.close r;
          Unix.close w)
        (fun () ->
          (* Wait until the holder actually has the lock. *)
          ignore (Unix.read r (Bytes.create 1) 0 1);
              match Cachefs.put_result store ~key:"contended" "payload" with
              | Ok () -> Alcotest.fail "put succeeded under a held lock"
              | Error (Cachefs.Lock_timeout { lock_path; holder_age_s } as err) ->
                  check Alcotest.string "names the contended file" lock lock_path;
                  (match holder_age_s with
                  | None -> Alcotest.fail "holder age missing (lock file exists)"
                  | Some age ->
                      check Alcotest.bool "holder age is non-negative" true (age >= 0.0));
                  check Alcotest.bool "message names the lock file" true
                    (let msg = Cachefs.error_to_string err in
                     let nl = String.length lock and ml = String.length msg in
                     let rec go i =
                       i + nl <= ml && (String.sub msg i nl = lock || go (i + 1))
                     in
                     go 0);
                  check Alcotest.int "dropped write counted" 1
                    (Cachefs.counters store).Cachefs.write_failures;
                  check Alcotest.bool "fault-class event on the obs sink" true
                    (List.exists
                       (function
                         | Dp_obs.Event.Fault { disk; kind; _ } ->
                             disk = -1
                             && String.length kind >= 18
                             && String.sub kind 0 18 = "cache-lock-timeout"
                         | _ -> false)
                       !events);
                  check Alcotest.bool "entry was not written" true
                    (Cachefs.get store ~key:"contended" = None))

let suites =
  [
    ( "cachefs",
      [
        Alcotest.test_case "roundtrip" `Quick test_roundtrip;
        Alcotest.test_case "persistence across handles" `Quick test_persistence;
        Alcotest.test_case "key part boundaries" `Quick test_distinct_keys;
        qtest ~count:200 "corruption never crashes, never lies" QCheck2.Gen.nat
          corruption_prop;
        Alcotest.test_case "version skew quarantines" `Quick test_version_skew_counts;
        Alcotest.test_case "undecodable payload quarantines" `Quick test_report_undecodable;
        Alcotest.test_case "unusable directory is an Error" `Quick test_open_store_failure;
        Alcotest.test_case "default dir from environment" `Quick test_default_dir_env;
        Alcotest.test_case "usage and clear" `Quick test_usage_and_clear;
        Alcotest.test_case "maintenance on missing dir" `Quick test_missing_dir_maintenance;
        Alcotest.test_case "lock timeout degrades" `Quick test_lock_timeout;
      ] );
  ]
