module App = Dp_workloads.App

(** The paper's evaluation, end to end: every table and figure of
    Section 7 as a reproducible report. *)

type matrix = (App.t * (Version.t * Runner.run) list) list
(** One row per application: the runs of every requested version. *)

val build_matrix :
  ?apps:App.t list ->
  ?cache:Dp_cachefs.Cachefs.t ->
  ?faults:Dp_faults.Fault_model.t ->
  ?retry:Dp_disksim.Policy.retry_config ->
  ?obs:bool ->
  ?jobs:int ->
  ?shards:int ->
  procs:int ->
  versions:Version.t list ->
  unit ->
  matrix
(** Runs the full pipeline for every (app, version) pair.  Defaults to
    the six Table-2 applications.  [cache] backs every per-app context
    with a persistent stage store ({!Runner.context}) so a warm
    invocation skips straight to the simulations.  [faults]/[retry]
    perturb every simulated run with the same deterministic injector
    configuration (oracle rows stay fault-free — see {!Runner.run}).
    [obs] attaches per-run observability reports (see {!Runner.run});
    the JSON rendering then carries the histograms.  [jobs] (default 1)
    fans the (app, version) rows out over that many domains
    ({!Dp_pipeline.Domain_pool}); results are returned in the same
    deterministic order regardless of [jobs] — the matrix is
    byte-identical to a serial build.  [shards] additionally fans each
    simulation across domains {e inside} the engine (per-segment shard
    groups, also byte-identical — see
    {!Dp_disksim.Engine.simulate}). *)

val table1 : Format.formatter -> unit
(** Default simulation parameters (the Table 1 reproduction). *)

val table2 : ?matrix:matrix -> Format.formatter -> unit
(** Application characteristics from the Base runs: modeled data size,
    request count, Base energy and I/O time, with the paper's values for
    side-by-side comparison.  Reuses [matrix] when given (it must contain
    Base runs at 1 processor); otherwise computes one. *)

val fig_energy : matrix -> Format.formatter -> unit
(** Normalized energy per app and version (Figs. 9a / 9b depending on the
    matrix's processor count), plus the cross-application average and the
    implied savings. *)

val fig_perf : matrix -> Format.formatter -> unit
(** Performance degradation (increase in disk I/O time) per app and
    version (Figs. 10a / 10b). *)

val fig_reliability : ?faults:Dp_faults.Fault_model.t -> matrix -> Format.formatter -> unit
(** Wear/retry/degraded-time columns per (app, version): spin-down count
    against the rated start-stop budget, fault-recovery effort, and time
    attributable to injected faults.  [faults] only labels the header —
    pass the configuration the matrix was built with. *)

(** {1 Fault sweeps} *)

type sweep_point = { rate : float; runs : (Version.t * Runner.run) list }

type sweep = { app : App.t; procs : int; seed : int; points : sweep_point list }
(** One application re-simulated across a fault-rate ramp; every point
    reuses the same seed, so points differ only by rate. *)

val fault_sweep :
  ?seed:int ->
  ?rates:float list ->
  ?cache:Dp_cachefs.Cachefs.t ->
  ?classes:Dp_faults.Fault_model.class_ list ->
  ?obs:bool ->
  ?jobs:int ->
  ?shards:int ->
  procs:int ->
  versions:Version.t list ->
  App.t ->
  sweep
(** Defaults: seed 42, rates [0, 0.001, 0.01, 0.05, 0.1], all fault
    classes.  [cache], [obs], [jobs] and [shards] as in
    {!build_matrix} — the (rate, version) points fan out over the
    domain pool with deterministic ordering. *)

val fig_sweep : sweep -> Format.formatter -> unit
(** Energy and degraded time per version at each rate of the ramp. *)

val average_energy_saving : matrix -> Version.t -> float
(** 1 - (mean normalized energy) for one version across the matrix. *)

val average_perf_degradation : matrix -> Version.t -> float
