(** The seven experimental versions of Section 7.1, plus the
    offline-optimal oracle rows this reproduction adds on top. *)

type t =
  | Base  (** no power management *)
  | Tpm  (** reactive spin-down, unmodified code *)
  | Drpm  (** dynamic speed setting, unmodified code *)
  | T_tpm_s  (** disk-reuse restructuring (single-CPU algorithm) + TPM *)
  | T_drpm_s  (** disk-reuse restructuring (single-CPU algorithm) + DRPM *)
  | T_tpm_m  (** disk-layout-aware parallelization + per-CPU reuse + TPM *)
  | T_drpm_m  (** disk-layout-aware parallelization + per-CPU reuse + DRPM *)
  | Oracle_tpm
      (** offline-optimal spin-down scheduling on the unmodified code —
          the energy floor of every TPM-style policy *)
  | Oracle_drpm
      (** offline-optimal speed scheduling on the unmodified code — the
          energy floor of every DRPM-style policy *)

val name : t -> string
val of_name : string -> t option

val single_cpu : t list
(** The five versions evaluated on one processor (Figs. 9a, 10a). *)

val multi_cpu : t list
(** The paper's seven versions, for the 4-processor experiments
    (Figs. 9b, 10b). *)

val oracle : t list
(** The two offline-optimal bound rows; append to either list to get a
    "% of oracle" yardstick in the figures. *)

val policy : t -> Dp_disksim.Policy.t
val restructured : t -> bool
val layout_aware : t -> bool

val oracle_space : t -> Dp_oracle.Oracle.space option
(** [Some space] exactly for the oracle rows. *)

val mode : t -> Dp_pipeline.Pipeline.mode
(** The pipeline execution-order family of the version: [Original] for
    the unmodified-code rows (including the oracle bounds),
    [Reuse_single] for T-*-s, [Reuse_multi] for T-*-m. *)
