module App = Dp_workloads.App
module Workloads = Dp_workloads.Workloads
module Engine = Dp_disksim.Engine
module Generate = Dp_trace.Generate

module Domain_pool = Dp_pipeline.Domain_pool

type matrix = (App.t * (Version.t * Runner.run) list) list

(* Split [xs] into consecutive chunks of [size]. *)
let rec chunks size = function
  | [] -> []
  | xs ->
      let rec take k acc = function
        | rest when k = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | x :: rest -> take (k - 1) (x :: acc) rest
      in
      let chunk, rest = take size [] xs in
      chunk :: chunks size rest

let build_matrix ?apps ?cache ?faults ?retry ?obs ?(jobs = 1) ?shards ~procs ~versions () =
  let apps = match apps with Some a -> a | None -> Workloads.all () in
  (* One shared context per app: rows fan out over the domain pool and
     meet again in the context's stage memo tables, so the dependence
     graph and each distinct trace are still built once per app. *)
  let ctxs = List.map (fun app -> (app, Runner.context ?cache app)) apps in
  let cells =
    List.concat_map (fun (_, ctx) -> List.map (fun v -> (ctx, v)) versions) ctxs
  in
  let runs =
    Domain_pool.map ~jobs
      (fun (ctx, v) -> (v, Runner.run ctx ?faults ?retry ?obs ?shards ~procs v))
      cells
  in
  List.map2
    (fun (app, _) runs -> (app, runs))
    ctxs
    (chunks (List.length versions) runs)

let base_of runs =
  match List.assoc_opt Version.Base runs with
  | Some b -> b
  | None -> invalid_arg "Experiments: matrix lacks a Base run"

let table1 ppf =
  let model = Dp_disksim.Disk_model.ultrastar_36z15 in
  Format.fprintf ppf "@[<v>Table 1: default simulation parameters@,%a@,"
    Dp_disksim.Disk_model.pp model;
  Format.fprintf ppf
    "DRPM window size: 100 requests; stripe unit 32 KB, factor 8, start disk 0 (Table 1 \
     defaults; each workload declares its own row-aligned striping)@,@]"

let table2 ?matrix ppf =
  let matrix =
    match matrix with
    | Some m -> m
    | None -> build_matrix ~procs:1 ~versions:[ Version.Base ] ()
  in
  let rows =
    List.map
      (fun ((app : App.t), runs) ->
        let b = base_of runs in
        let s = b.Runner.summary in
        let data_gb =
          float_of_int (Dp_ir.Ir.total_bytes app.App.program) /. (1024. *. 1024. *. 1024.)
        in
        [
          app.App.name;
          Printf.sprintf "%.2f" data_gb;
          Printf.sprintf "%.1f" app.App.paper_data_gb;
          string_of_int s.Generate.requests;
          string_of_int app.App.paper_requests;
          Printf.sprintf "%.1f" b.Runner.result.Engine.energy_j;
          Printf.sprintf "%.1f" app.App.paper_base_energy_j;
          Printf.sprintf "%.1f" b.Runner.result.Engine.io_time_ms;
          Printf.sprintf "%.1f" app.App.paper_io_time_ms;
          Tabulate.fmt_pct (Generate.io_fraction s);
        ])
      matrix
  in
  Format.fprintf ppf "@[<v>Table 2: application characteristics (ours vs paper)@,";
  Tabulate.render ppf
    ~header:
      [
        "Name"; "GB"; "GB(paper)"; "Reqs"; "Reqs(paper)"; "BaseE(J)"; "BaseE(paper)";
        "IO(ms)"; "IO(paper)"; "IO frac";
      ]
    ~rows;
  Format.fprintf ppf "@]"

let versions_of matrix =
  match matrix with [] -> [] | (_, runs) :: _ -> List.map fst runs

let non_base matrix = List.filter (fun v -> v <> Version.Base) (versions_of matrix)

let average_energy_saving matrix version =
  let values =
    List.map
      (fun (_, runs) ->
        let b = base_of runs in
        1.0 -. Runner.normalized_energy ~base:b (List.assoc version runs))
      matrix
  in
  List.fold_left ( +. ) 0.0 values /. float_of_int (List.length values)

let average_perf_degradation matrix version =
  let values =
    List.map
      (fun (_, runs) ->
        let b = base_of runs in
        Runner.perf_degradation ~base:b (List.assoc version runs))
      matrix
  in
  List.fold_left ( +. ) 0.0 values /. float_of_int (List.length values)

let procs_of matrix =
  match matrix with
  | (_, (_, r) :: _) :: _ -> r.Runner.procs
  | _ -> 1

let fig_energy matrix ppf =
  let versions = non_base matrix in
  let header = "App" :: List.map Version.name versions in
  let rows =
    List.map
      (fun ((app : App.t), runs) ->
        let b = base_of runs in
        app.App.name
        :: List.map
             (fun v -> Tabulate.fmt_norm (Runner.normalized_energy ~base:b (List.assoc v runs)))
             versions)
      matrix
  in
  let avg_row =
    "AVERAGE"
    :: List.map
         (fun v -> Tabulate.fmt_norm (1.0 -. average_energy_saving matrix v))
         versions
  in
  Format.fprintf ppf "@[<v>Figure 9%s: normalized disk energy (%d processor%s; Base = 1.000)@,"
    (if procs_of matrix = 1 then "(a)" else "(b)")
    (procs_of matrix)
    (if procs_of matrix = 1 then "" else "s");
  Tabulate.render ppf ~header ~rows:(rows @ [ avg_row ]);
  List.iter
    (fun v ->
      Format.fprintf ppf "average saving %s: %s@," (Version.name v)
        (Tabulate.fmt_pct (average_energy_saving matrix v)))
    versions;
  Format.fprintf ppf "@]"

(* Reliability columns: what the energy figures hide.  Start-stop wear
   is charged against the drive's rated budget even in a fault-free run
   (every spin-down ages the spindle); retries, spikes and degraded time
   appear once a fault window is active. *)
let fig_reliability ?faults matrix ppf =
  let versions = versions_of matrix in
  let header =
    [ "App"; "Version"; "Downs"; "Wear"; "SuRetry"; "MediaRetry"; "Spikes"; "Degraded(ms)" ]
  in
  let rows =
    List.concat_map
      (fun ((app : App.t), runs) ->
        List.map
          (fun v ->
            let rel = Runner.reliability (List.assoc v runs) in
            [
              app.App.name;
              Version.name v;
              string_of_int rel.Runner.spin_downs;
              Tabulate.fmt_pct rel.Runner.wear;
              string_of_int rel.Runner.spin_up_retries;
              string_of_int rel.Runner.media_retries;
              string_of_int rel.Runner.latency_spikes;
              Printf.sprintf "%.1f" rel.Runner.degraded_ms;
            ])
          versions)
      matrix
  in
  Format.fprintf ppf
    "@[<v>Reliability: start-stop wear (of the %d-cycle budget) and fault-recovery effort%a@,"
    Dp_disksim.Disk_model.ultrastar_36z15.Dp_disksim.Disk_model.rated_start_stop_cycles
    (Format.pp_print_option (fun ppf f ->
         Format.fprintf ppf " (%a)" Dp_faults.Fault_model.pp f))
    faults;
  Tabulate.render ppf ~header ~rows;
  Format.fprintf ppf "@]"

(* Fault sweep: the same app and versions re-simulated across a fault
   rate ramp, every point re-seeded identically — how gracefully each
   policy's energy savings and response times degrade as the array gets
   less reliable. *)
type sweep_point = { rate : float; runs : (Version.t * Runner.run) list }
type sweep = { app : App.t; procs : int; seed : int; points : sweep_point list }

let fault_sweep ?(seed = 42) ?(rates = [ 0.0; 0.001; 0.01; 0.05; 0.1 ]) ?cache ?classes
    ?obs ?(jobs = 1) ?shards ~procs ~versions app =
  let ctx = Runner.context ?cache app in
  (* rate x version cells share one context: the injector perturbs only
     the simulation, so every point reuses the same memoized traces. *)
  let cells =
    List.concat_map (fun rate -> List.map (fun v -> (rate, v)) versions) rates
  in
  let runs =
    Domain_pool.map ~jobs
      (fun (rate, v) ->
        let faults = Dp_faults.Fault_model.make ?classes ~seed ~rate () in
        (v, Runner.run ctx ~faults ?obs ?shards ~procs v))
      cells
  in
  let points =
    List.map2 (fun rate runs -> { rate; runs }) rates (chunks (List.length versions) runs)
  in
  { app; procs; seed; points }

let fig_sweep sweep ppf =
  let versions = match sweep.points with [] -> [] | p :: _ -> List.map fst p.runs in
  let header =
    "Rate" :: List.concat_map (fun v -> [ Version.name v ^ " E(J)"; "degr(ms)" ]) versions
  in
  let rows =
    List.map
      (fun p ->
        Printf.sprintf "%g" p.rate
        :: List.concat_map
             (fun v ->
               let r = List.assoc v p.runs in
               let rel = Runner.reliability r in
               [
                 Printf.sprintf "%.1f" r.Runner.result.Engine.energy_j;
                 Printf.sprintf "%.1f" rel.Runner.degraded_ms;
               ])
             versions)
      sweep.points
  in
  Format.fprintf ppf "@[<v>Fault sweep: %s, %d processor%s, seed %d@,"
    sweep.app.App.name sweep.procs
    (if sweep.procs = 1 then "" else "s")
    sweep.seed;
  Tabulate.render ppf ~header ~rows;
  Format.fprintf ppf "@]"

let fig_perf matrix ppf =
  let versions = non_base matrix in
  let header = "App" :: List.map Version.name versions in
  let rows =
    List.map
      (fun ((app : App.t), runs) ->
        let b = base_of runs in
        app.App.name
        :: List.map
             (fun v -> Tabulate.fmt_pct (Runner.perf_degradation ~base:b (List.assoc v runs)))
             versions)
      matrix
  in
  let avg_row =
    "AVERAGE"
    :: List.map (fun v -> Tabulate.fmt_pct (average_perf_degradation matrix v)) versions
  in
  Format.fprintf ppf
    "@[<v>Figure 10%s: performance degradation (increase in disk I/O time, %d processor%s)@,"
    (if procs_of matrix = 1 then "(a)" else "(b)")
    (procs_of matrix)
    (if procs_of matrix = 1 then "" else "s");
  Tabulate.render ppf ~header ~rows:(rows @ [ avg_row ]);
  Format.fprintf ppf "@]"
