(** Minimal JSON rendering of experiment results (no external JSON
    dependency), for scripting against the harness. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val pp : Format.formatter -> t -> unit
(** Valid JSON: strings escaped, floats finite (NaN/inf become null). *)

val to_string : t -> string

val of_matrix : Experiments.matrix -> t
(** One object per application: name, paper reference values, and per
    version the absolute and normalized energy, I/O time, makespan and
    performance degradation. *)

val of_run : Runner.run -> t

val of_sweep : Experiments.sweep -> t
(** The fault sweep as one object: app, seed, and per rate the runs
    (with their reliability aggregates). *)
