(** Minimal JSON rendering of experiment results (no external JSON
    dependency), for scripting against the harness. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val pp : Format.formatter -> t -> unit
(** Valid JSON: strings escaped, floats finite (NaN/inf become null). *)

val to_string : t -> string

val of_matrix : Experiments.matrix -> t
(** One object per application: name, paper reference values, and per
    version the absolute and normalized energy, I/O time, makespan and
    performance degradation. *)

val of_run : Runner.run -> t
(** Includes an ["obs"] field (per-disk totals and idle-gap /
    response-time / standby-residency histograms) when the run carries
    an observability report; the field is absent otherwise. *)

val of_histogram : Dp_obs.Metrics.histogram -> t
val of_disk_report : Dp_obs.Report.disk_report -> t

val of_serve : Dp_serve.Serve.report -> t
(** The served-array report: config echo (without [jobs] — the output
    must be byte-identical across [--jobs] settings), merged request
    count, and per row the energy/makespan plus, for simulated rows, the
    attribution summary with every tenant's share and response
    percentiles. *)

val of_sweep : Experiments.sweep -> t
(** The fault sweep as one object: app, seed, and per rate the runs
    (with their reliability aggregates). *)

val pp_precise : Format.formatter -> t -> unit
(** Like {!pp} but floats render as their shortest round-trip decimal,
    so byte-equal output means bit-equal floats.  The rendering for
    differential artifacts (the chaos oracle's pair comparisons);
    non-finite floats still become null. *)

val to_string_precise : t -> string
