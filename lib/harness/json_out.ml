module App = Dp_workloads.App
module Engine = Dp_disksim.Engine

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec pp ppf = function
  | Null -> Format.pp_print_string ppf "null"
  | Bool b -> Format.pp_print_bool ppf b
  | Int n -> Format.pp_print_int ppf n
  | Float f ->
      if Float.is_finite f then Format.fprintf ppf "%.6g" f
      else Format.pp_print_string ppf "null"
  | String s -> Format.fprintf ppf "\"%s\"" (escape s)
  | List xs ->
      Format.fprintf ppf "[@[<hv>%a@]]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp)
        xs
  | Obj fields ->
      Format.fprintf ppf "{@[<hv>%a@]}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
           (fun ppf (k, v) -> Format.fprintf ppf "\"%s\": %a" (escape k) pp v))
        fields

let to_string t = Format.asprintf "%a" pp t

(* Precise twin of [pp]: floats render as their shortest round-trip
   decimal instead of [%.6g], so two structurally equal values produce
   byte-identical strings exactly when their floats are bit-identical.
   This is what differential checkers (the chaos oracle) compare — the
   readable [%.6g] rendering would mask low-order divergence. *)
let float_precise f =
  let s = Float.to_string f in
  (* [Float.to_string 1.0] is ["1."] — not valid JSON. *)
  if String.length s > 0 && s.[String.length s - 1] = '.' then s ^ "0" else s

let rec pp_precise ppf = function
  | Float f when Float.is_finite f -> Format.pp_print_string ppf (float_precise f)
  | List xs ->
      Format.fprintf ppf "[@[<hv>%a@]]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp_precise)
        xs
  | Obj fields ->
      Format.fprintf ppf "{@[<hv>%a@]}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
           (fun ppf (k, v) -> Format.fprintf ppf "\"%s\": %a" (escape k) pp_precise v))
        fields
  | (Null | Bool _ | Int _ | Float _ | String _) as t -> pp ppf t

let to_string_precise t = Format.asprintf "%a" pp_precise t

let of_histogram (h : Dp_obs.Metrics.histogram) =
  Obj
    [
      ("edges", List (Array.to_list (Array.map (fun e -> Float e) h.Dp_obs.Metrics.edges)));
      ("counts", List (Array.to_list (Array.map (fun c -> Int c) h.Dp_obs.Metrics.counts)));
      ("count", Int h.Dp_obs.Metrics.n);
      ("sum", Float h.Dp_obs.Metrics.sum);
      ("max", Float h.Dp_obs.Metrics.vmax);
    ]

let of_disk_report (r : Dp_obs.Report.disk_report) =
  Obj
    ([
      ("disk", Int r.Dp_obs.Report.disk);
      ("requests", Int r.Dp_obs.Report.requests);
      ("busy_ms", Float r.Dp_obs.Report.busy_ms);
      ("idle_ms", Float r.Dp_obs.Report.idle_ms);
      ("standby_ms", Float r.Dp_obs.Report.standby_ms);
      ("transition_ms", Float r.Dp_obs.Report.transition_ms);
      ("energy_j", Float r.Dp_obs.Report.energy_j);
      ("hints", Int r.Dp_obs.Report.hints);
      ("faults", Int r.Dp_obs.Report.faults);
      ("decisions", Int r.Dp_obs.Report.decisions);
    ]
    @ (if r.Dp_obs.Report.repairs > 0 then [ ("repairs", Int r.Dp_obs.Report.repairs) ]
       else [])
    @ (if r.Dp_obs.Report.deadline_misses > 0 then
         [ ("deadline_misses", Int r.Dp_obs.Report.deadline_misses) ]
       else [])
    @ [
      ("idle_gaps", of_histogram r.Dp_obs.Report.idle_gap_ms);
      ("response", of_histogram r.Dp_obs.Report.response_ms);
      ("standby_residency", of_histogram r.Dp_obs.Report.standby_residency_ms);
    ])

let repair_of_result (res : Engine.result) =
  let remaps, hits, chunks, found, recon, rebuild, fo, fails, rebuilt =
    Array.fold_left
      (fun (a, b, c, d, e, f, g, h, i) (s : Engine.disk_stats) ->
        ( a + s.Engine.remaps,
          b + s.Engine.remap_penalty_hits,
          c + s.Engine.scrub_chunks,
          d + s.Engine.scrub_found,
          e + s.Engine.reconstructions,
          f + s.Engine.rebuild_chunks,
          g + s.Engine.failovers,
          h + s.Engine.disk_failures,
          i + s.Engine.rebuilds_completed ))
      (0, 0, 0, 0, 0, 0, 0, 0, 0) res.Engine.per_disk
  in
  if
    remaps = 0 && hits = 0 && chunks = 0 && recon = 0 && rebuild = 0 && fo = 0 && fails = 0
  then []
  else
    [
      ( "repair",
        Obj
          [
            ("remaps", Int remaps);
            ("remap_penalty_hits", Int hits);
            ("scrub_chunks", Int chunks);
            ("scrub_found", Int found);
            ("reconstructions", Int recon);
            ("rebuild_chunks", Int rebuild);
            ("failovers", Int fo);
            ("disk_failures", Int fails);
            ("rebuilds_completed", Int rebuilt);
          ] );
    ]

let of_run (r : Runner.run) =
  let rel = Runner.reliability r in
  Obj
    ([
       ("version", String (Version.name r.Runner.version));
       ("procs", Int r.Runner.procs);
       ("energy_j", Float r.Runner.result.Engine.energy_j);
       ("io_time_ms", Float r.Runner.result.Engine.io_time_ms);
       ("makespan_ms", Float r.Runner.result.Engine.makespan_ms);
       ( "scheduler_rounds",
         match r.Runner.scheduler_rounds with Some n -> Int n | None -> Null );
       ( "reliability",
         Obj
           [
             ("spin_downs", Int rel.Runner.spin_downs);
             ("wear", Float rel.Runner.wear);
             ("spin_up_retries", Int rel.Runner.spin_up_retries);
             ("media_retries", Int rel.Runner.media_retries);
             ("latency_spikes", Int rel.Runner.latency_spikes);
             ("degraded_ms", Float rel.Runner.degraded_ms);
           ] );
     ]
    @ repair_of_result r.Runner.result
    @
    match r.Runner.obs with
    | None -> []
    | Some reports ->
        [ ("obs", List (List.map of_disk_report (Array.to_list reports))) ])

let of_matrix (matrix : Experiments.matrix) =
  List
    (List.map
       (fun ((app : App.t), runs) ->
         let base = List.assoc Version.Base runs in
         Obj
           [
             ("app", String app.App.name);
             ("description", String app.App.description);
             ( "paper",
               Obj
                 [
                   ("data_gb", Float app.App.paper_data_gb);
                   ("requests", Int app.App.paper_requests);
                   ("base_energy_j", Float app.App.paper_base_energy_j);
                   ("io_time_ms", Float app.App.paper_io_time_ms);
                 ] );
             ( "runs",
               List
                 (List.map
                    (fun (v, r) ->
                      match of_run r with
                      | Obj fields ->
                          Obj
                            (fields
                            @ [
                                ( "normalized_energy",
                                  Float (Runner.normalized_energy ~base r) );
                                ( "perf_degradation",
                                  Float (Runner.perf_degradation ~base r) );
                              ])
                      | other ->
                          ignore v;
                          other)
                    runs) );
           ])
       matrix)

let of_serve_tenant ~kind ~slo (s : Dp_serve.Account.tenant_stats) =
  Obj
    ([
       ("tenant", Int s.Dp_serve.Account.tenant);
       ("kind", String kind);
       ("requests", Int s.Dp_serve.Account.requests);
       ("energy_j", Float s.Dp_serve.Account.energy_j);
       ("response_mean_ms", Float s.Dp_serve.Account.response_mean_ms);
       ("response_p50_ms", Float s.Dp_serve.Account.response_p50_ms);
       ("response_p95_ms", Float s.Dp_serve.Account.response_p95_ms);
       ("response_p99_ms", Float s.Dp_serve.Account.response_p99_ms);
       ("response_max_ms", Float s.Dp_serve.Account.response_max_ms);
     ]
    @
    if slo then
      [
        ("slo_violations", Int s.Dp_serve.Account.slo_violations);
        ("abandoned", Int s.Dp_serve.Account.abandoned);
      ]
    else [])

let of_serve_summary ~kinds (s : Dp_serve.Account.summary) =
  Obj
    ([
      ("attributed_j", Float s.Dp_serve.Account.attributed_j);
      ("unattributed_j", Float s.Dp_serve.Account.unattributed_j);
      ("energy_j", Float s.Dp_serve.Account.energy_j);
      ("fairness", Float s.Dp_serve.Account.fairness);
      ("requests", Int s.Dp_serve.Account.requests);
      ("response_mean_ms", Float s.Dp_serve.Account.response_mean_ms);
      ("response_p50_ms", Float s.Dp_serve.Account.response_p50_ms);
      ("response_p95_ms", Float s.Dp_serve.Account.response_p95_ms);
      ("response_p99_ms", Float s.Dp_serve.Account.response_p99_ms);
      ("response_max_ms", Float s.Dp_serve.Account.response_max_ms);
    ]
    @ (match s.Dp_serve.Account.slo with
      | None -> []
      | Some slo ->
          [
            ( "slo",
              Obj
                [
                  ("deadline_ms", Float slo.Dp_serve.Account.deadline_ms);
                  ("violations", Int slo.Dp_serve.Account.violations);
                  ("abandoned", Int slo.Dp_serve.Account.abandoned);
                  ("availability", Float slo.Dp_serve.Account.availability);
                ] );
          ])
    @ [
        ( "tenants",
          List
            (List.map
               (fun (t : Dp_serve.Account.tenant_stats) ->
                 of_serve_tenant
                   ~kind:kinds.(t.Dp_serve.Account.tenant)
                   ~slo:(s.Dp_serve.Account.slo <> None)
                   t)
               (Array.to_list s.Dp_serve.Account.tenants)) );
      ])

let of_serve (r : Dp_serve.Serve.report) =
  let cfg = r.Dp_serve.Serve.config in
  Obj
    ([
      ("tenants", Int cfg.Dp_serve.Serve.tenants);
      ("seed", Int cfg.Dp_serve.Serve.seed);
      ("disks", Int cfg.Dp_serve.Serve.disks);
      ("jitter_ms", Float cfg.Dp_serve.Serve.jitter_ms);
      ("selection", String (Dp_serve.Serve.selection_name cfg.Dp_serve.Serve.selection));
      ("requests", Int r.Dp_serve.Serve.requests);
     ]
    (* Reliability config extras only when armed: a clean (or rate-0,
       no-deadline) serve JSON stays byte-identical to main. *)
    @ (match cfg.Dp_serve.Serve.faults with
      | Some f when f.Dp_faults.Fault_model.rate > 0.0 ->
          [ ("faults", String (Dp_faults.Fault_model.to_spec f)) ]
      | _ -> [])
    @ (match cfg.Dp_serve.Serve.deadline_ms with
      | Some d -> [ ("deadline_ms", Float d) ]
      | None -> [])
    @ (match cfg.Dp_serve.Serve.repair with
      | Some rc ->
          [ ("scrub_budget_ms", Float rc.Dp_repair.Repair.scrub_budget_ms) ]
      | None -> [])
    @ (match cfg.Dp_serve.Serve.spare_blocks with
      | Some n -> [ ("spare_blocks", Int n) ]
      | None -> [])
    @ [
      ( "rows",
        List
          (List.map
             (fun (row : Dp_serve.Serve.row) ->
               Obj
                 ([
                    ("label", String row.Dp_serve.Serve.label);
                    ("detail", String row.Dp_serve.Serve.detail);
                    ("energy_j", Float row.Dp_serve.Serve.energy_j);
                    ("makespan_ms", Float row.Dp_serve.Serve.makespan_ms);
                  ]
                 @
                 match row.Dp_serve.Serve.summary with
                 | None -> []
                 | Some s ->
                     [ ("summary", of_serve_summary ~kinds:r.Dp_serve.Serve.kinds s) ]))
             r.Dp_serve.Serve.rows) );
      ])

let of_sweep (s : Experiments.sweep) =
  Obj
    [
      ("app", String s.Experiments.app.App.name);
      ("procs", Int s.Experiments.procs);
      ("seed", Int s.Experiments.seed);
      ( "points",
        List
          (List.map
             (fun (p : Experiments.sweep_point) ->
               Obj
                 [
                   ("rate", Float p.Experiments.rate);
                   ("runs", List (List.map (fun (_, r) -> of_run r) p.Experiments.runs));
                 ])
             s.Experiments.points) );
    ]
