module App = Dp_workloads.App
module Engine = Dp_disksim.Engine
module Generate = Dp_trace.Generate
module Pipeline = Dp_pipeline.Pipeline

(** Runs one (application, version, processor-count) cell of the
    evaluation matrix: restructure/parallelize per the version, generate
    the trace, simulate under the version's policy.

    All compilation stages live in {!Dp_pipeline.Pipeline}; the runner
    only maps version semantics ({!Version.mode}, policy, hints) onto
    pipeline stages and drives the engine.  A context is safe to share
    across domains — matrix rows of the same application reuse its
    memoized dependence graph, streams and traces. *)

type ctx = Pipeline.t

val context : ?cache:Dp_cachefs.Cachefs.t -> App.t -> ctx
(** Builds the pipeline context of an application (its layout, and the
    memoized stages on demand); reuse it across versions — graph
    construction and trace generation dominate the cost of a run and
    are shared between rows.  [cache] attaches a persistent stage store
    (see {!Dp_pipeline.Pipeline.create}), sharing traces and hint
    streams across processes as well. *)

type run = {
  version : Version.t;
  procs : int;
  result : Engine.result;
  summary : Generate.summary;
  scheduler_rounds : int option;  (** for restructured versions *)
  obs : Dp_obs.Report.disk_report array option;
      (** per-disk observability report when the run was observed *)
}

val run :
  ctx ->
  ?faults:Dp_faults.Fault_model.t ->
  ?retry:Dp_disksim.Policy.retry_config ->
  ?obs:bool ->
  ?shards:int ->
  procs:int ->
  Version.t ->
  run
(** For the paper's versions: restructure per the version, generate the
    trace, and simulate — the proactive (restructured) versions carry a
    compiler hint stream ({!Dp_trace.Hint}) emitted from the
    restructured trace, which the engine executes in place of its
    omniscient gap planner.  For the [Oracle_*] rows: generate the
    unmodified-code trace and replace the energy of its no-PM reference
    run with the offline-optimal bound ({!Dp_oracle.Oracle}); the
    [result]'s per-disk stats remain those of the reference run.

    [faults]/[retry] seed the engine's deterministic fault injector (see
    {!Dp_disksim.Engine.simulate}).  The oracle rows stay fault-free:
    they are an idealized offline bound, so perturbing them would
    conflate the bound with injector noise.

    [shards] caps the engine's intra-run domain fan-out (per-segment
    shard groups, byte-identical to serial — see
    {!Dp_disksim.Engine.simulate}); it composes with the harness's
    [jobs] row-level fan-out.  The oracle rows ignore it.

    [obs] (default false) attaches a ring sink sized to the trace and
    distills the recorded events into the run's per-disk
    {!Dp_obs.Report.disk_report}s (idle-gap / response-time /
    standby-residency histograms).  The engine's numeric results are
    unaffected.  Oracle rows never run the engine, so their [obs] is
    [None] regardless.
    @raise Invalid_argument for a [T_*_m] version with [procs = 1] (the
    layout-aware scheme is only meaningful with several processors). *)

type reliability = {
  spin_downs : int;
  wear : float;
      (** worst per-disk fraction of the rated start-stop budget
          ({!Dp_disksim.Disk_model.rated_start_stop_cycles}) consumed *)
  spin_up_retries : int;
  media_retries : int;
  latency_spikes : int;
  degraded_ms : float;
}

val reliability : ?model:Dp_disksim.Disk_model.t -> run -> reliability
(** Wear/retry/degraded-time aggregates across the run's disks (counts
    summed, wear the worst disk). *)

val normalized_energy : base:run -> run -> float
(** Energy relative to the Base run of the same processor count. *)

val perf_degradation : base:run -> run -> float
(** Increase in disk I/O time over Base (paper Fig. 10), as a fraction. *)
