type t =
  | Base
  | Tpm
  | Drpm
  | T_tpm_s
  | T_drpm_s
  | T_tpm_m
  | T_drpm_m
  | Oracle_tpm
  | Oracle_drpm

let name = function
  | Base -> "Base"
  | Tpm -> "TPM"
  | Drpm -> "DRPM"
  | T_tpm_s -> "T-TPM-s"
  | T_drpm_s -> "T-DRPM-s"
  | T_tpm_m -> "T-TPM-m"
  | T_drpm_m -> "T-DRPM-m"
  | Oracle_tpm -> "Oracle-TPM"
  | Oracle_drpm -> "Oracle-DRPM"

let all =
  [ Base; Tpm; Drpm; T_tpm_s; T_drpm_s; T_tpm_m; T_drpm_m; Oracle_tpm; Oracle_drpm ]

let of_name s =
  List.find_opt (fun v -> String.lowercase_ascii (name v) = String.lowercase_ascii s) all

let single_cpu = [ Base; Tpm; Drpm; T_tpm_s; T_drpm_s ]
let multi_cpu = [ Base; Tpm; Drpm; T_tpm_s; T_drpm_s; T_tpm_m; T_drpm_m ]
let oracle = [ Oracle_tpm; Oracle_drpm ]

let policy = function
  | Base -> Dp_disksim.Policy.No_pm
  | Tpm -> Dp_disksim.Policy.default_tpm
  (* The restructured versions run on the compiler-directed TPM machinery
     (proactive spin-up — the compiler knows the access schedule). *)
  | T_tpm_s | T_tpm_m -> Dp_disksim.Policy.tpm ~proactive:true ()
  | Drpm | T_drpm_s | T_drpm_m -> Dp_disksim.Policy.default_drpm
  (* Oracle rows are offline bounds, not simulated policies; the runner
     replaces the energy of this no-PM reference run with the bound. *)
  | Oracle_tpm | Oracle_drpm -> Dp_disksim.Policy.No_pm

let restructured = function
  | Base | Tpm | Drpm | Oracle_tpm | Oracle_drpm -> false
  | T_tpm_s | T_drpm_s | T_tpm_m | T_drpm_m -> true

let layout_aware = function
  | T_tpm_m | T_drpm_m -> true
  | Base | Tpm | Drpm | T_tpm_s | T_drpm_s | Oracle_tpm | Oracle_drpm -> false

let oracle_space = function
  | Oracle_tpm -> Some Dp_oracle.Oracle.Tpm_space
  | Oracle_drpm -> Some Dp_oracle.Oracle.Drpm_space
  | Base | Tpm | Drpm | T_tpm_s | T_drpm_s | T_tpm_m | T_drpm_m -> None

(* The version rows map onto the pipeline's three execution-order
   families; the oracle bounds replay the unmodified-code trace. *)
let mode v =
  if not (restructured v) then Dp_pipeline.Pipeline.Original
  else if layout_aware v then Dp_pipeline.Pipeline.Reuse_multi
  else Dp_pipeline.Pipeline.Reuse_single
