module App = Dp_workloads.App
module Layout = Dp_layout.Layout
module Concrete = Dp_dependence.Concrete
module Engine = Dp_disksim.Engine
module Generate = Dp_trace.Generate
module Reuse = Dp_restructure.Reuse_scheduler
module Parallelize = Dp_restructure.Parallelize
module Oracle = Dp_oracle.Oracle
module Policy = Dp_disksim.Policy

type ctx = { app : App.t; layout : Layout.t; graph : Concrete.graph }

let context (app : App.t) =
  let layout =
    Layout.make ~default:app.App.striping ~overrides:app.App.overrides app.App.program
  in
  let graph = Concrete.build app.App.program in
  { app; layout; graph }

type run = {
  version : Version.t;
  procs : int;
  result : Engine.result;
  summary : Generate.summary;
  scheduler_rounds : int option;
  obs : Dp_obs.Report.disk_report array option;
}

(* Per-processor execution streams for a version. *)
let streams ctx ~procs version =
  let prog = ctx.app.App.program in
  if procs = 1 then begin
    if Version.restructured version then begin
      if Version.layout_aware version then
        invalid_arg "Runner.run: layout-aware versions need several processors";
      let s = Reuse.schedule ctx.layout prog ctx.graph in
      (Generate.single_stream ctx.graph ~order:s.Reuse.order, Some s.Reuse.rounds)
    end
    else
      (Generate.single_stream ctx.graph ~order:(Concrete.original_order ctx.graph), None)
  end
  else begin
    let conventional () = Parallelize.conventional prog ctx.graph ~procs in
    if not (Version.restructured version) then
      (* Unmodified code, conventionally parallelized, fork-join nests. *)
      (Generate.original_segments prog ctx.graph (conventional ()), None)
    else begin
      let assignment =
        if Version.layout_aware version then
          Parallelize.layout_aware ctx.layout prog ctx.graph ~procs
        else conventional ()
      in
      let rounds = ref 0 in
      let disks = ctx.layout.Dp_layout.Layout.disk_count in
      (* Each processor begins its disk tour on a different disk so the
         tours do not contend for the same I/O node. *)
      let reuse p ~member =
        let s =
          Reuse.schedule_subset ctx.layout prog ctx.graph
            ~start_disk:(p * disks / procs)
            ~member
        in
        rounds := max !rounds s.Reuse.rounds;
        s.Reuse.order
      in
      let segs =
        if Version.layout_aware version then
          (* Global restructuring: the data-space assignment spans all
             nests, no synchronization between them (Fig. 6(b)). *)
          Generate.reordered_segments assignment ~order_of_proc:(fun p ->
              reuse p ~member:(fun seq -> assignment.Parallelize.owner.(seq) = p))
        else begin
          (* The single-CPU algorithm applied to each processor's share
             of the conventionally parallelized code: the fork-join
             barriers between nests remain, so disk reuse is exploited
             within each nest only. *)
          let nest_ids = List.map (fun (n : Dp_ir.Ir.nest) -> n.Dp_ir.Ir.nest_id) prog.Dp_ir.Ir.nests in
          Array.init procs (fun p ->
              List.map
                (fun nest_id ->
                  reuse p ~member:(fun seq ->
                      assignment.Parallelize.owner.(seq) = p
                      && ctx.graph.Concrete.instances.(seq).Concrete.nest_id = nest_id))
                nest_ids)
        end
      in
      (segs, Some !rounds)
    end
  end

(* Compiler hints for the proactive (restructured) versions: the hint
   emitter replays the nominal trace the restructurer produced and plans
   each predicted gap, so the engine executes directives instead of
   consulting an omniscient gap planner. *)
let hints_for policy ~disks trace =
  match policy with
  | Policy.Tpm { Policy.proactive = true; _ } ->
      Oracle.hints_of_trace ~space:Oracle.Tpm_space ~disks trace
  | Policy.Drpm { Policy.proactive = true; _ } ->
      Oracle.hints_of_trace ~space:Oracle.Drpm_space ~disks trace
  | _ -> []

let run ctx ?faults ?retry ?(obs = false) ~procs version =
  match Version.oracle_space version with
  | Some space ->
      (* Offline-optimal bound on the unmodified code: same trace as the
         corresponding reactive row, energy replaced by the oracle DP.
         The oracle DP never runs the engine, so there is nothing to
         observe — [obs] is ignored for these rows. *)
      let segs, _ = streams ctx ~procs Version.Base in
      let trace = Generate.trace ctx.layout ctx.app.App.program ctx.graph segs in
      let bound = Oracle.lower_bound ~space ~disks:ctx.layout.Layout.disk_count trace in
      let result =
        {
          bound.Oracle.base with
          Engine.policy = Version.name version;
          energy_j = bound.Oracle.energy_j;
        }
      in
      {
        version;
        procs;
        result;
        summary = Generate.summarize trace;
        scheduler_rounds = None;
        obs = None;
      }
  | None ->
      let segs, scheduler_rounds = streams ctx ~procs version in
      let trace = Generate.trace ctx.layout ctx.app.App.program ctx.graph segs in
      let policy = Version.policy version in
      let disks = ctx.layout.Layout.disk_count in
      let hints = if Version.restructured version then hints_for policy ~disks trace else [] in
      let sink =
        if obs then
          (* Room for every span/service/decision of the run: the engine
             emits a handful of events per request plus per-gap decisions,
             so scale with the trace. *)
          Dp_obs.Sink.ring ~capacity:(max 4096 (64 * (List.length trace + 64))) ()
        else Dp_obs.Sink.null
      in
      let result = Engine.simulate ~obs:sink ~hints ?faults ?retry ~disks policy trace in
      let obs =
        if obs then Some (Dp_obs.Report.of_events ~disks (Dp_obs.Sink.events sink))
        else None
      in
      { version; procs; result; summary = Generate.summarize trace; scheduler_rounds; obs }

(* Reliability aggregates over the disks of one run — the wear/retry
   columns of the fault figures. *)
type reliability = {
  spin_downs : int;
  wear : float;  (** worst per-disk start-stop budget fraction consumed *)
  spin_up_retries : int;
  media_retries : int;
  latency_spikes : int;
  degraded_ms : float;
}

let reliability ?(model = Dp_disksim.Disk_model.ultrastar_36z15) (r : run) =
  Array.fold_left
    (fun acc (d : Engine.disk_stats) ->
      {
        spin_downs = acc.spin_downs + d.Engine.spin_downs;
        wear = Float.max acc.wear (Engine.wear_fraction model d);
        spin_up_retries = acc.spin_up_retries + d.Engine.spin_up_retries;
        media_retries = acc.media_retries + d.Engine.media_retries;
        latency_spikes = acc.latency_spikes + d.Engine.latency_spikes;
        degraded_ms = acc.degraded_ms +. d.Engine.degraded_ms;
      })
    {
      spin_downs = 0;
      wear = 0.0;
      spin_up_retries = 0;
      media_retries = 0;
      latency_spikes = 0;
      degraded_ms = 0.0;
    }
    r.result.Engine.per_disk

let normalized_energy ~base r =
  r.result.Engine.energy_j /. base.result.Engine.energy_j

let perf_degradation ~base r =
  (r.result.Engine.io_time_ms -. base.result.Engine.io_time_ms)
  /. base.result.Engine.io_time_ms
