module App = Dp_workloads.App
module Engine = Dp_disksim.Engine
module Generate = Dp_trace.Generate
module Oracle = Dp_oracle.Oracle
module Pipeline = Dp_pipeline.Pipeline

type ctx = Pipeline.t

let context = Pipeline.of_app

type run = {
  version : Version.t;
  procs : int;
  result : Engine.result;
  summary : Generate.summary;
  scheduler_rounds : int option;
  obs : Dp_obs.Report.disk_report array option;
}

let run ctx ?faults ?retry ?(obs = false) ?shards ~procs version =
  match Version.oracle_space version with
  | Some space ->
      (* Offline-optimal bound on the unmodified code: same trace as the
         corresponding reactive row, energy replaced by the oracle DP.
         The oracle DP never runs the engine, so there is nothing to
         observe — [obs] is ignored for these rows. *)
      let trace = Pipeline.trace ctx ~procs Pipeline.Original in
      let bound = Oracle.lower_bound ~space ~disks:(Pipeline.disks ctx) trace in
      let result =
        {
          bound.Oracle.base with
          Engine.policy = Version.name version;
          energy_j = bound.Oracle.energy_j;
        }
      in
      {
        version;
        procs;
        result;
        summary = Generate.summarize trace;
        scheduler_rounds = None;
        obs = None;
      }
  | None ->
      let mode = Version.mode version in
      let scheduler_rounds = Pipeline.rounds ctx ~procs mode in
      let trace = Pipeline.trace ctx ~procs mode in
      let policy = Version.policy version in
      let hints =
        if Version.restructured version then Pipeline.hints_for ctx ~procs ~policy mode
        else []
      in
      let sink =
        if obs then
          (* Room for every span/service/decision of the run: the engine
             emits a handful of events per request plus per-gap decisions,
             so scale with the trace. *)
          Dp_obs.Sink.ring ~capacity:(max 4096 (64 * (List.length trace + 64))) ()
        else Dp_obs.Sink.null
      in
      let result =
        Engine.simulate ~obs:sink ~hints ?faults ?retry ?shards
          ~disks:(Pipeline.disks ctx) policy trace
      in
      let obs =
        if obs then
          Some (Dp_obs.Report.of_events ~disks:(Pipeline.disks ctx) (Dp_obs.Sink.events sink))
        else None
      in
      { version; procs; result; summary = Generate.summarize trace; scheduler_rounds; obs }

(* Reliability aggregates over the disks of one run — the wear/retry
   columns of the fault figures. *)
type reliability = {
  spin_downs : int;
  wear : float;  (** worst per-disk start-stop budget fraction consumed *)
  spin_up_retries : int;
  media_retries : int;
  latency_spikes : int;
  degraded_ms : float;
}

let reliability ?(model = Dp_disksim.Disk_model.ultrastar_36z15) (r : run) =
  Array.fold_left
    (fun acc (d : Engine.disk_stats) ->
      {
        spin_downs = acc.spin_downs + d.Engine.spin_downs;
        wear = Float.max acc.wear (Engine.wear_fraction model d);
        spin_up_retries = acc.spin_up_retries + d.Engine.spin_up_retries;
        media_retries = acc.media_retries + d.Engine.media_retries;
        latency_spikes = acc.latency_spikes + d.Engine.latency_spikes;
        degraded_ms = acc.degraded_ms +. d.Engine.degraded_ms;
      })
    {
      spin_downs = 0;
      wear = 0.0;
      spin_up_retries = 0;
      media_retries = 0;
      latency_spikes = 0;
      degraded_ms = 0.0;
    }
    r.result.Engine.per_disk

let normalized_energy ~base r =
  r.result.Engine.energy_j /. base.result.Engine.energy_j

let perf_degradation ~base r =
  (r.result.Engine.io_time_ms -. base.result.Engine.io_time_ms)
  /. base.result.Engine.io_time_ms
