module Ir = Dp_ir.Ir

type instance = { seq : int; nest_id : int; iter : Dp_util.Ivec.t }

type graph = {
  instances : instance array;
  preds : int array array;
  succs : int array array;
}

(* Dense element keys: arrays get consecutive base offsets, an element's
   key is base + row-major linear index.  Subscripts may run out of the
   declared bounds (the IR does not forbid it); such accesses are hashed
   into the same space modulo the array size, which is conservative. *)
type elem_space = {
  base_of_array : (string, int * int array) Hashtbl.t;
      (* name -> (base offset, dimension extents) *)
  total : int;
}

let make_elem_space (prog : Ir.program) =
  let base_of_array = Hashtbl.create 8 in
  let next = ref 0 in
  List.iter
    (fun (a : Ir.array_decl) ->
      Hashtbl.add base_of_array a.name (!next, Array.of_list a.dims);
      next := !next + Ir.array_elems a)
    prog.arrays;
  { base_of_array; total = !next }

let elem_key space array coords =
  let base, dims = Hashtbl.find space.base_of_array array in
  let n = Array.length dims in
  let lin = ref 0 in
  List.iteri
    (fun k c ->
      if k < n then begin
        let extent = dims.(k) in
        let c = ((c mod extent) + extent) mod extent in
        lin := (!lin * extent) + c
      end)
    coords;
  base + !lin

let build (prog : Ir.program) =
  Dp_obs.Prof.span "dependence.concrete-build" @@ fun () ->
  (match Ir.validate prog with
  | Ok () -> ()
  | Error (e :: _) ->
      invalid_arg (Format.asprintf "Concrete.build: invalid program: %a" Ir.pp_error e)
  | Error [] -> ());
  let space = make_elem_space prog in
  (* Pass 1: enumerate instances and count remaining writes per element,
     so reader lists are only kept while a future write can consume them. *)
  let instances = ref [] in
  let count = ref 0 in
  let writes_left = Array.make space.total 0 in
  List.iter
    (fun (n : Ir.nest) ->
      Ir.iter_nest n (fun iter ->
          let seq = !count in
          incr count;
          instances := { seq; nest_id = n.nest_id; iter } :: !instances;
          List.iter
            (fun ((r : Ir.array_ref), coords) ->
              if r.mode = Ir.Write then
                let k = elem_key space r.array coords in
                writes_left.(k) <- writes_left.(k) + 1)
            (Ir.element_accesses n iter)))
    prog.nests;
  let n_inst = !count in
  let instances = Array.of_list (List.rev !instances) in
  (* Pass 2: scan accesses in order, recording edges. *)
  let last_writer = Array.make space.total (-1) in
  let readers : int list array = Array.make space.total [] in
  let pred_lists : int list array = Array.make n_inst [] in
  let add_edge src dst =
    if src >= 0 && src <> dst then pred_lists.(dst) <- src :: pred_lists.(dst)
  in
  let next_seq = ref 0 in
  List.iter
    (fun (n : Ir.nest) ->
      Ir.iter_nest n (fun iter ->
          let seq = !next_seq in
          incr next_seq;
          assert (Dp_util.Ivec.equal instances.(seq).iter iter);
          List.iter
            (fun ((r : Ir.array_ref), coords) ->
              let k = elem_key space r.array coords in
              match r.mode with
              | Ir.Read ->
                  add_edge last_writer.(k) seq;
                  if writes_left.(k) > 0 then readers.(k) <- seq :: readers.(k)
              | Ir.Write ->
                  add_edge last_writer.(k) seq;
                  List.iter (fun rd -> add_edge rd seq) readers.(k);
                  readers.(k) <- [];
                  last_writer.(k) <- seq;
                  writes_left.(k) <- writes_left.(k) - 1)
            (Ir.element_accesses n iter)))
    prog.nests;
  let preds =
    Array.map
      (fun l -> Array.of_list (List.sort_uniq compare l))
      pred_lists
  in
  let succ_lists : int list array = Array.make n_inst [] in
  Array.iteri
    (fun dst ps -> Array.iter (fun src -> succ_lists.(src) <- dst :: succ_lists.(src)) ps)
    preds;
  let succs = Array.map (fun l -> Array.of_list (List.sort compare l)) succ_lists in
  { instances; preds; succs }

let instance_count g = Array.length g.instances
let edge_count g = Array.fold_left (fun acc p -> acc + Array.length p) 0 g.preds

let is_legal_order g order =
  let n = Array.length g.instances in
  if Array.length order <> n then false
  else begin
    let position = Array.make n (-1) in
    let ok = ref true in
    Array.iteri
      (fun pos seq ->
        if seq < 0 || seq >= n || position.(seq) >= 0 then ok := false
        else position.(seq) <- pos)
      order;
    !ok
    && Array.for_all (fun p -> p >= 0) position
    &&
    let legal = ref true in
    Array.iteri
      (fun dst ps ->
        Array.iter (fun src -> if position.(src) >= position.(dst) then legal := false) ps)
      g.preds;
    !legal
  end

let original_order g = Array.init (Array.length g.instances) Fun.id
