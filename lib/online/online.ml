type config = { epoch_requests : int; alpha : float; guard : float }

let default = { epoch_requests = 16; alpha = 0.25; guard = 2.0 }

let config ?(epoch_requests = default.epoch_requests) ?(alpha = default.alpha)
    ?(guard = default.guard) () =
  if epoch_requests < 1 then
    invalid_arg (Printf.sprintf "Online.config: epoch_requests must be >= 1 (got %d)" epoch_requests);
  if not (alpha > 0.0 && alpha <= 1.0) then
    invalid_arg (Printf.sprintf "Online.config: alpha must be in (0, 1] (got %g)" alpha);
  if guard < 1.0 then
    invalid_arg (Printf.sprintf "Online.config: guard must be >= 1.0 (got %g)" guard);
  { epoch_requests; alpha; guard }

let describe c =
  Printf.sprintf "online adaptive (epoch %d, alpha %.2f, guard %.1f)" c.epoch_requests
    c.alpha c.guard

type hardware = {
  breakeven_ms : float;
  spin_down_ms : float;
  spin_up_ms : float;
  rpm_max : int;
  rpm_min : int;
  rpm_step : int;
  level_ms : float;
}

type mech = Stay | Spin of float | Dip of int * float

let mech_name = function
  | Stay -> "stay"
  | Spin t -> Printf.sprintf "spin(%.0f ms)" t
  | Dip (rpm, t) -> Printf.sprintf "dip(%d rpm, %.0f ms)" rpm t

(* Per-disk learner: the smoothed gap estimate, the arrival that last
   updated it, and the epoch-frozen decision derived from it. *)
type disk_state = {
  mutable last_arrival_ms : float;  (* nan before the first sample *)
  mutable ewma_ms : float;  (* 0 before the first gap sample *)
  mutable samples : int;  (* gap samples folded into the estimate *)
  mutable in_epoch : int;  (* arrivals since the last re-derivation *)
  mutable epochs : int;
  mutable mech : mech;
}

type t = { cfg : config; hw : hardware; per_disk : disk_state array }

let make cfg ~hardware ~disks =
  if disks < 1 then invalid_arg "Online.make: disks must be >= 1";
  {
    cfg;
    hw = hardware;
    per_disk =
      Array.init disks (fun _ ->
          {
            last_arrival_ms = Float.nan;
            ewma_ms = 0.0;
            samples = 0;
            in_epoch = 0;
            epochs = 0;
            (* No evidence yet: stay at speed, never stall the first
               requests of a cold disk. *)
            mech = Stay;
          });
  }

(* Derive the epoch's mechanism from the current estimate.  Order of
   preference mirrors the energy ladder: a full spin cycle saves the
   most when the gap amortizes it; otherwise the deepest feasible RPM
   dip; otherwise nothing. *)
let derive cfg hw ds =
  if ds.samples = 0 then Stay
  else begin
    let predicted = ds.ewma_ms in
    let spin_round_trip = hw.spin_down_ms +. hw.spin_up_ms in
    if predicted >= cfg.guard *. Float.max hw.breakeven_ms spin_round_trip then
      (* Spin earlier than the break-even rule once the stream has shown
         long gaps: a quarter of the predicted gap, never beyond the
         break-even threshold (which is already safe by construction). *)
      Spin (Float.min hw.breakeven_ms (predicted /. 4.0))
    else begin
      let max_levels = (hw.rpm_max - hw.rpm_min) / hw.rpm_step in
      let threshold = hw.level_ms in
      let fits levels =
        (* Ramp down and back up, plus a dwell worth one more level
           transition, all inside the guarded prediction. *)
        predicted
        >= cfg.guard *. ((2.0 *. float_of_int levels *. hw.level_ms) +. threshold)
      in
      let rec deepest l = if l > 0 && not (fits l) then deepest (l - 1) else l in
      let levels = deepest max_levels in
      if levels = 0 then Stay
      else Dip (hw.rpm_max - (levels * hw.rpm_step), threshold)
    end
  end

let observe t ~disk ~now_ms =
  let ds = t.per_disk.(disk) in
  if not (Float.is_nan ds.last_arrival_ms) then begin
    let gap = Float.max 0.0 (now_ms -. ds.last_arrival_ms) in
    if ds.samples = 0 then ds.ewma_ms <- gap
    else ds.ewma_ms <- (t.cfg.alpha *. gap) +. ((1.0 -. t.cfg.alpha) *. ds.ewma_ms);
    ds.samples <- ds.samples + 1
  end;
  ds.last_arrival_ms <- now_ms;
  ds.in_epoch <- ds.in_epoch + 1;
  if ds.in_epoch >= t.cfg.epoch_requests then begin
    ds.in_epoch <- 0;
    ds.epochs <- ds.epochs + 1;
    ds.mech <- derive t.cfg t.hw ds
  end

let decide t ~disk = t.per_disk.(disk).mech
let predicted_gap_ms t ~disk = t.per_disk.(disk).ewma_ms
let epoch t ~disk = t.per_disk.(disk).epochs
