(** Epoch-based online power-management controller.

    The paper's proactive policies know the access schedule at compile
    time.  A multi-tenant server array has no such luxury: the merged
    request stream is shaped by arrival jitter and tenant interleaving
    nobody planned.  This controller learns per-disk idle-threshold and
    rotation-speed decisions from the {e observed} inter-arrival stream
    — the online approach of Behzadnia et al. (arXiv 1703.02591) adapted
    to the TPM/DRPM mechanisms of this reproduction.

    The estimator is deliberately simple and fully deterministic:

    - per disk, an exponentially smoothed estimate of the inter-arrival
      gap (one update per request arrival);
    - decisions are frozen for an {e epoch} of [epoch_requests] arrivals
      per disk, then re-derived from the estimate — the controller never
      flip-flops inside an epoch;
    - the derived decision picks one mechanism per epoch: spin down
      after an adapted threshold when the predicted gap amortizes a full
      stop/start cycle, dip to the deepest RPM whose round trip fits the
      predicted gap, or stay at speed when neither pays.

    The module is a leaf: it knows nothing of the simulator.  The
    engine feeds it arrivals and hardware constants and executes the
    mechanism it selects ({!Dp_disksim.Policy.Adaptive}). *)

type config = {
  epoch_requests : int;
      (** arrivals per disk between decision re-derivations (default 16) *)
  alpha : float;
      (** exponential-smoothing weight of the newest gap sample, in
          (0, 1]; higher adapts faster (default 0.25) *)
  guard : float;
      (** safety factor: a mechanism is selected only when the predicted
          gap exceeds [guard] times its round-trip cost, so a noisy
          estimate does not buy a stall (default 2.0) *)
}

val default : config

val config :
  ?epoch_requests:int -> ?alpha:float -> ?guard:float -> unit -> config
(** @raise Invalid_argument when [epoch_requests < 1], [alpha] outside
    (0, 1], or [guard < 1.0]. *)

val describe : config -> string
(** Human label used by {!Dp_disksim.Policy.describe}. *)

(** The hardware constants a decision needs — plain numbers, so the
    controller stays independent of the simulator's disk model. *)
type hardware = {
  breakeven_ms : float;  (** TPM break-even time *)
  spin_down_ms : float;
  spin_up_ms : float;
  rpm_max : int;
  rpm_min : int;
  rpm_step : int;
  level_ms : float;  (** one-level dynamic speed-change time *)
}

(** What the engine should do with the next idle gap on a disk. *)
type mech =
  | Stay  (** idle at full speed: no mechanism predicted to pay *)
  | Spin of float
      (** [Spin threshold_ms]: spin down after this much continuous
          idleness (adapted; at most the break-even time) *)
  | Dip of int * float
      (** [Dip (rpm, threshold_ms)]: after [threshold_ms] of idleness,
          ramp to [rpm] and dwell there until the next arrival *)

type t
(** Controller state for one simulation run (all disks). *)

val make : config -> hardware:hardware -> disks:int -> t

val observe : t -> disk:int -> now_ms:float -> unit
(** Feed one request arrival.  Updates the disk's gap estimate and, at
    epoch boundaries, re-derives its decision.  Arrivals must be fed in
    per-disk chronological order (as the engine serves them). *)

val decide : t -> disk:int -> mech
(** The disk's current (epoch-frozen) decision. *)

val predicted_gap_ms : t -> disk:int -> float
(** The current smoothed inter-arrival estimate (0 before any sample) —
    exposed for reports and tests. *)

val epoch : t -> disk:int -> int
(** How many epoch boundaries the disk has crossed. *)

val mech_name : mech -> string
(** ["stay"], ["spin(<ms>)"], ["dip(<rpm>,<ms>)"] — used by
    observability decision events. *)
