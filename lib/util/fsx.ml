let rec mkdirs dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdirs parent;
    try Unix.mkdir dir 0o755 with
    | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Unique-enough temp name in the destination's own directory: rename
   must not cross a filesystem boundary.  The pid keeps concurrent
   processes apart; the counter keeps concurrent in-process writers
   apart. *)
let tmp_counter = Atomic.make 0

let tmp_for path =
  Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ()) (Atomic.fetch_and_add tmp_counter 1)

(* Best effort: directory fsync is what makes the rename itself durable,
   but not every filesystem supports opening a directory for it. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd

let atomic_out ?(fsync = false) path write =
  let tmp = tmp_for path in
  let oc = open_out_bin tmp in
  match
    write oc;
    flush oc;
    if fsync then Unix.fsync (Unix.descr_of_out_channel oc)
  with
  | () ->
      close_out oc;
      Sys.rename tmp path;
      if fsync then fsync_dir (Filename.dirname path)
  | exception e ->
      (try close_out oc with _ -> ());
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

let atomic_write ?fsync path data =
  atomic_out ?fsync path (fun oc -> output_string oc data)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec remove_tree path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter
        (fun name -> remove_tree (Filename.concat path name))
        (match Sys.readdir path with exception Sys_error _ -> [||] | names -> names);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
