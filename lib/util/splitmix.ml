type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* The 64-bit finalizer of SplitMix64 (variant 13 of Stafford's mix). *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = next_int64 t }

let float t =
  (* Top 53 bits scaled into [0, 1). *)
  Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) *. 0x1p-53

let bool t ~p = if p <= 0.0 then false else if p >= 1.0 then true else float t < p

let int t ~bound =
  if bound <= 0 then invalid_arg "Splitmix.int: bound must be positive";
  (* Rejection-free modulo is fine here: bounds are tiny relative to 2^62,
     the bias is < 2^-50. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next_int64 t) 1) (Int64.of_int bound))
