(** A splittable deterministic PRNG (SplitMix64, Steele et al., OOPSLA'14).

    The fault injector needs reproducible, independently consumable
    random streams — one per disk per fault class — so that drawing from
    one stream never perturbs another, and the same seed always produces
    the same fault schedule.  The global [Random] state offers neither
    property; this generator carries its own state and supports O(1)
    splitting into statistically independent child streams. *)

type t

val create : int -> t
(** A generator seeded from an integer.  Equal seeds give equal
    streams. *)

val split : t -> t
(** A child generator whose future output is independent of the
    parent's.  Splitting advances the parent by one draw, so a fixed
    split order yields a fixed family of streams. *)

val next_int64 : t -> int64
(** The next 64 raw bits. *)

val float : t -> float
(** Uniform in [0, 1) with 53-bit precision. *)

val bool : t -> p:float -> bool
(** [true] with probability [p] ([p <= 0.] never, [p >= 1.] always). *)

val int : t -> bound:int -> int
(** Uniform in [0, bound).  [bound] must be positive. *)
