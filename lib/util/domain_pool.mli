(** A small supervised pool of OCaml 5 domains for fanning out
    independent experiment rows.

    Results are returned in input order regardless of which domain ran
    which task, so a parallel map over deterministic functions is itself
    deterministic: [map ~jobs:n f xs = map ~jobs:1 f xs] byte for byte.

    {b Supervision}: a task failure is confined to its own slot — it
    never deadlocks the pool or poisons sibling slots.  Every cell is
    still attempted (completed cells keep their results and any
    persistent-cache writes they made); once all domains have drained,
    the calling domain re-raises the {e first} failure in input order
    with the backtrace captured at the original raise site, however many
    tasks failed and whichever failed first in wall time.  The serial
    path ([jobs = 1]) has the same complete-all-then-raise semantics, so
    it stays the byte-identical baseline.

    [jobs = 1] (and singleton/empty inputs) run inline on the calling
    domain — no domain is spawned. *)

exception Transient of exn
(** Wrap an exception in [Transient] to ask the pool to retry the task
    (up to [retries] times) before giving up.  When retries are
    exhausted the {e inner} exception is what the pool records and
    re-raises. *)

val map : ?retries:int -> jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] applies [f] to every element of [xs] on a pool of
    [min jobs (length xs)] domains (the calling domain counts as one)
    and returns the results in input order.

    Tasks are claimed from a shared atomic counter, so an imbalanced
    workload still keeps every domain busy.  A task raising
    {!Transient} is retried up to [retries] times (default 2) before
    its inner exception counts as the task's failure; any other
    exception fails the task immediately.  All cells are attempted
    before the first input-order failure is re-raised — see the
    supervision contract above.
    @raise Invalid_argument if [jobs < 1] or [retries < 0]. *)

val default_jobs : unit -> int
(** A conservative pool size for experiment fan-out:
    [max 1 (recommended_domain_count () - 1)], capped at 8. *)
