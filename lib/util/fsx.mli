(** Crash-safe filesystem helpers.

    Artifacts the tools leave behind — cache entries, JSON reports,
    observability logs — must never be observable half-written: a
    reader either sees the previous complete file or the new complete
    file.  Every writer here goes through the same protocol: write to a
    temporary file in the {e same directory} (rename is only atomic
    within a filesystem), flush, optionally [fsync], then atomically
    rename over the destination.  On any failure the temporary file is
    removed and the destination is untouched. *)

val mkdirs : string -> unit
(** [mkdir -p]: create the directory and its missing parents.  Existing
    directories (including concurrent creation) are not an error.
    @raise Unix.Unix_error when a component cannot be created. *)

val atomic_write : ?fsync:bool -> string -> string -> unit
(** [atomic_write path data] publishes [data] at [path] via
    write-to-temp + rename.  [fsync] (default [false]) forces the data
    to stable storage before the rename, and best-effort syncs the
    directory after it, so a crash straddling the rename cannot leave a
    reachable-but-empty file.  Raises the underlying [Sys_error] /
    [Unix.Unix_error] on failure (temp file already cleaned up). *)

val atomic_out : ?fsync:bool -> string -> (out_channel -> unit) -> unit
(** Like {!atomic_write}, but the caller streams into the temporary
    file's channel.  The destination appears only if the writer returns
    normally. *)

val read_file : string -> string
(** The whole (binary) file contents.  @raise Sys_error. *)

val remove_tree : string -> unit
(** Recursively delete a file or directory tree, best-effort: entries
    that cannot be removed (permissions, concurrent deletion) are
    skipped silently and a missing [path] is not an error.  Symbolic
    links are removed, never followed. *)
