(* Work-stealing-free pool: tasks are claimed off a shared atomic
   counter and results land in a slot array indexed by input position,
   so the output order is the input order whatever the interleaving.

   Supervision: a task failure is confined to its own slot.  Workers
   keep claiming and finishing the remaining cells — partial results
   (and their persistent-cache writes) survive — and only once every
   cell has been attempted does the calling domain re-raise the first
   failure in input order, with the backtrace captured at the original
   raise site. *)

exception Transient of exn

(* One task, with bounded retry for failures the caller classified as
   transient.  Never raises: every outcome is a value, so nothing can
   escape a worker domain and poison its siblings. *)
let attempt ~retries f x =
  let rec go remaining =
    match f x with
    | v -> Ok v
    | exception Transient inner when remaining > 0 ->
        ignore inner;
        go (remaining - 1)
    | exception exn ->
        let bt = Printexc.get_raw_backtrace () in
        let exn = match exn with Transient inner -> inner | e -> e in
        Error (exn, bt)
  in
  go retries

let map ?(retries = 2) ~jobs f xs =
  if jobs < 1 then invalid_arg "Domain_pool.map: jobs must be >= 1";
  if retries < 0 then invalid_arg "Domain_pool.map: retries must be >= 0";
  let n = List.length xs in
  let input = Array.of_list xs in
  let out = Array.make n None in
  (* Per-slot failures — never shared, so no synchronization beyond the
     claim counter and the joins is needed. *)
  let errs = Array.make n None in
  let run i =
    match attempt ~retries f input.(i) with
    | Ok v -> out.(i) <- Some v
    | Error e -> errs.(i) <- Some e
  in
  let jobs = min jobs n in
  if jobs <= 1 then
    for i = 0 to n - 1 do
      run i
    done
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          run i;
          go ()
        end
      in
      go ()
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains
  end;
  let rec first i =
    if i >= n then None
    else match errs.(i) with Some e -> Some e | None -> first (i + 1)
  in
  match first 0 with
  | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
  | None -> Array.to_list (Array.map Option.get out)

let default_jobs () = min 8 (max 1 (Domain.recommended_domain_count () - 1))
