module Ir = Dp_ir.Ir
module Striping = Dp_layout.Striping
module Layout = Dp_layout.Layout
module Concrete = Dp_dependence.Concrete

type result = {
  stripings : (string * Striping.t) list;
  cost : float;
  baseline_cost : float;
}

let nest_table (prog : Ir.program) =
  let tbl = Hashtbl.create 8 in
  List.iter (fun (n : Ir.nest) -> Hashtbl.add tbl n.Ir.nest_id n) prog.Ir.nests;
  tbl

(* Sampled instances: an even stride through the execution, so every
   nest contributes proportionally. *)
let sample_instances (g : Concrete.graph) sample =
  let n = Concrete.instance_count g in
  if n <= sample then Array.to_list g.Concrete.instances
  else begin
    let stride = n / sample in
    List.init sample (fun k -> g.Concrete.instances.(k * stride))
  end

let cost ?(sample = 20_000) (prog : Ir.program) (g : Concrete.graph) ~stripings =
  let layout = Layout.make ~overrides:stripings prog in
  let disks = layout.Layout.disk_count in
  let nests = nest_table prog in
  let load = Array.make disks 0 in
  let distinct_total = ref 0 and instances = ref 0 in
  List.iter
    (fun (inst : Concrete.instance) ->
      let nest = Hashtbl.find nests inst.Concrete.nest_id in
      let accesses = Ir.element_accesses nest inst.Concrete.iter in
      if accesses <> [] then begin
        incr instances;
        let touched = Array.make disks false in
        List.iter
          (fun ((r : Ir.array_ref), coords) ->
            let d = Layout.disk_of_element layout r.Ir.array coords in
            load.(d) <- load.(d) + 1;
            touched.(d) <- true)
          accesses;
        Array.iter (fun t -> if t then incr distinct_total) touched
      end)
    (sample_instances g sample);
  if !instances = 0 then 0.0
  else begin
    let avg_distinct = float_of_int !distinct_total /. float_of_int !instances in
    let total_load = Array.fold_left ( + ) 0 load in
    let mean = float_of_int total_load /. float_of_int disks in
    let var =
      Array.fold_left
        (fun acc l ->
          let d = float_of_int l -. mean in
          acc +. (d *. d))
        0.0 load
      /. float_of_int disks
    in
    let imbalance = if mean > 0.0 then sqrt var /. mean else 0.0 in
    avg_distinct +. imbalance
  end

let optimize ?(rows_options = [ 1; 2; 4 ]) ?(sample = 20_000) ?(sweeps = 2) ~factor
    ~initial (prog : Ir.program) (g : Concrete.graph) =
  Dp_obs.Prof.span "restructure.layout-unification" @@ fun () ->
  List.iter
    (fun (a : Ir.array_decl) ->
      if not (List.mem_assoc a.Ir.name initial) then
        invalid_arg
          (Printf.sprintf "Layout_opt.optimize: no initial striping for %s" a.Ir.name))
    prog.Ir.arrays;
  let row_bytes (a : Ir.array_decl) =
    let cols = match a.Ir.dims with [] -> 1 | _ :: rest -> List.fold_left ( * ) 1 rest in
    cols * a.Ir.elem_size
  in
  let current = ref initial in
  let baseline_cost = cost ~sample prog g ~stripings:!current in
  let best_cost = ref baseline_cost in
  for _sweep = 1 to sweeps do
    List.iter
      (fun (a : Ir.array_decl) ->
        let candidates =
          List.concat_map
            (fun rows ->
              List.map
                (fun start_disk ->
                  Striping.make ~unit_bytes:(rows * row_bytes a) ~factor ~start_disk)
                (Dp_util.Listx.range 0 (factor - 1)))
            rows_options
        in
        List.iter
          (fun striping ->
            let trial =
              (a.Ir.name, striping) :: List.remove_assoc a.Ir.name !current
            in
            let c = cost ~sample prog g ~stripings:trial in
            if c < !best_cost -. 1e-9 then begin
              best_cost := c;
              current := trial
            end)
          candidates)
      prog.Ir.arrays
  done;
  (* Keep the arrays' declaration order in the result. *)
  let stripings =
    List.map (fun (a : Ir.array_decl) -> (a.Ir.name, List.assoc a.Ir.name !current)) prog.Ir.arrays
  in
  { stripings; cost = !best_cost; baseline_cost }
