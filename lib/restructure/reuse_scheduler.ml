module Ir = Dp_ir.Ir
module Layout = Dp_layout.Layout
module Concrete = Dp_dependence.Concrete
module Minheap = Dp_util.Minheap

type schedule = { order : int array; rounds : int; visits : (int * int) list }

(* Semantics of one disk visit, mirroring the Omega-based algorithm of
   Fig. 3: the set of schedulable iterations is computed when the visit
   starts (Q_di restricted to satisfied dependences), then enumerated in
   original execution order.  An iteration whose dependence is satisfied
   {e during} the visit joins the set only when the dependence is
   intra-nest (the generated loop nest enumerates a nest's iterations in
   original order, so such dependences are honored by construction);
   iterations released by another nest — or by another disk's iterations
   — must wait for the next visit (Fig. 4: iteration 7 waits for the
   second round even though its predecessor 6 ran in the first). *)

let schedule_subset ?policy ?(start_disk = 0) layout prog (g : Concrete.graph) ~member =
  Dp_obs.Prof.span "restructure.reuse-schedule" @@ fun () ->
  let n = Concrete.instance_count g in
  let table = Cluster.build_table ?policy layout prog g in
  let disk_count =
    Array.fold_left
      (fun acc k -> max acc (k + 1))
      layout.Layout.disk_count table.Cluster.key
  in
  let indegree = Array.make n 0 in
  let members = ref 0 in
  for seq = 0 to n - 1 do
    if member seq then begin
      incr members;
      Array.iter
        (fun src -> if member src then indegree.(seq) <- indegree.(seq) + 1)
        g.preds.(seq)
    end
  done;
  (* Bucket 0: compute-only instances; bucket d+1: disk d.  [staged]
     holds instances that became ready since the disk's visit started;
     [active] is the frozen visit set (refilled from [staged] when a new
     visit begins). *)
  let staged = Array.init (disk_count + 1) (fun _ -> Minheap.create ()) in
  let active = Array.init (disk_count + 1) (fun _ -> Minheap.create ()) in
  let bucket_of seq =
    let k = table.Cluster.key.(seq) in
    if k < 0 then 0 else k + 1
  in
  for seq = 0 to n - 1 do
    if member seq && indegree.(seq) = 0 then Minheap.add staged.(bucket_of seq) seq
  done;
  let order = Array.make !members (-1) in
  let scheduled = ref 0 in
  let visits = ref [] in
  (* The nest whose iterations the current visit is emitting; used to
     decide whether a newly released instance may chain into the visit. *)
  let current_visit_disk = ref (-1) in
  let release ~from_nest seq =
    Array.iter
      (fun dst ->
        if member dst then begin
          indegree.(dst) <- indegree.(dst) - 1;
          if indegree.(dst) = 0 then begin
            let b = bucket_of dst in
            let same_nest =
              g.Concrete.instances.(dst).Concrete.nest_id = from_nest
            in
            if b = 0 then Minheap.add staged.(0) dst
            else if b - 1 = !current_visit_disk && same_nest then
              Minheap.add active.(b) dst
            else Minheap.add staged.(b) dst
          end
        end)
      g.succs.(seq)
  in
  let emit seq =
    order.(!scheduled) <- seq;
    incr scheduled;
    release ~from_nest:g.Concrete.instances.(seq).Concrete.nest_id seq
  in
  (* Compute-only instances are transparent to disk power: drain them as
     soon as they are ready. *)
  let drain_compute_only () =
    let c = ref 0 in
    while not (Minheap.is_empty staged.(0)) do
      emit (Minheap.pop_min staged.(0));
      incr c
    done;
    !c
  in
  let rounds = ref 0 in
  while !scheduled < !members do
    incr rounds;
    for dd = 0 to disk_count - 1 do
      let d = (start_disk + dd) mod disk_count in
      current_visit_disk := d;
      let in_visit = ref (drain_compute_only ()) in
      (* Freeze the visit set: everything staged before the visit. *)
      while not (Minheap.is_empty staged.(d + 1)) do
        Minheap.add active.(d + 1) (Minheap.pop_min staged.(d + 1))
      done;
      while not (Minheap.is_empty active.(d + 1)) do
        emit (Minheap.pop_min active.(d + 1));
        incr in_visit;
        in_visit := !in_visit + drain_compute_only ()
      done;
      current_visit_disk := -1;
      if !in_visit > 0 then visits := (d, !in_visit) :: !visits
    done
  done;
  Dp_obs.Prof.count "restructure.reuse-schedule" !rounds;
  { order; rounds = !rounds; visits = List.rev !visits }

let schedule ?policy ?start_disk layout prog g =
  schedule_subset ?policy ?start_disk layout prog g ~member:(fun _ -> true)

let disk_switches (table : Cluster.table) order =
  let last = ref (-1) and switches = ref 0 in
  Array.iter
    (fun seq ->
      let k = table.Cluster.key.(seq) in
      if k >= 0 then begin
        if !last >= 0 && k <> !last then incr switches;
        last := k
      end)
    order;
  !switches
