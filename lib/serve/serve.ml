module Splitmix = Dp_util.Splitmix
module Request = Dp_trace.Request
module Hint = Dp_trace.Hint
module Engine = Dp_disksim.Engine
module Policy = Dp_disksim.Policy
module Disk_model = Dp_disksim.Disk_model
module Fault_model = Dp_faults.Fault_model
module Repair = Dp_repair.Repair
module Oracle = Dp_oracle.Oracle
module Domain_pool = Dp_pipeline.Domain_pool

type selection = All | Offline | Online | Oracle_only

let selection_of_name = function
  | "all" -> Some All
  | "offline" -> Some Offline
  | "online" -> Some Online
  | "oracle" -> Some Oracle_only
  | _ -> None

let selection_name = function
  | All -> "all"
  | Offline -> "offline"
  | Online -> "online"
  | Oracle_only -> "oracle"

type config = {
  tenants : int;
  seed : int;
  disks : int;
  jitter_ms : float;
  jobs : int;
  shards : int;
  selection : selection;
  faults : Fault_model.t option;
  repair : Repair.config option;
  deadline_ms : float option;
  spare_blocks : int option;
  obs : bool;
  live : bool;
}

let config ?(disks = 8) ?(jitter_ms = 30_000.0) ?(jobs = 1) ?(shards = 1) ?(selection = All)
    ?faults ?repair ?deadline_ms ?spare_blocks ?(obs = false) ?(live = false) ~tenants
    ~seed () =
  if tenants < 1 then invalid_arg "Serve.config: tenants must be >= 1";
  if disks < 1 then invalid_arg "Serve.config: disks must be >= 1";
  if jobs < 1 then invalid_arg "Serve.config: jobs must be >= 1";
  if shards < 1 then invalid_arg "Serve.config: shards must be >= 1";
  if jitter_ms < 0.0 then invalid_arg "Serve.config: jitter_ms must be >= 0";
  (match deadline_ms with
  | Some d when d <= 0.0 -> invalid_arg "Serve.config: deadline_ms must be > 0"
  | _ -> ());
  (match spare_blocks with
  | Some n when n < 1 -> invalid_arg "Serve.config: spare_blocks must be >= 1"
  | _ -> ());
  {
    tenants;
    seed;
    disks;
    jitter_ms;
    jobs;
    shards;
    selection;
    faults;
    repair;
    deadline_ms;
    spare_blocks;
    obs;
    live;
  }

(* The reliability extras show up in output only when something is
   actually armed, so a clean (or rate-0, scrub-off, no-deadline) serve
   stays byte-identical to what it printed before the failure domain
   existed. *)
let armed cfg =
  (match cfg.faults with Some f -> f.Fault_model.rate > 0.0 | None -> false)
  || cfg.repair <> None || cfg.deadline_ms <> None || cfg.spare_blocks <> None

type row = {
  label : string;
  detail : string;
  energy_j : float;
  makespan_ms : float;
  summary : Account.summary option;
  obs : Dp_obs.Report.disk_report array option;
  frames : string option;
}

type report = {
  config : config;
  requests : int;
  kinds : string array;
  rows : row list;
}

(* One report row to compute: a policy simulation (with the hint space
   its offline variant plans in), or the analytic oracle bound. *)
type spec = Sim of string * Policy.t * Oracle.space option | Bound

let specs = function
  | All ->
      [
        Sim ("base", Policy.No_pm, None);
        Sim ("offline-tpm", Policy.tpm ~proactive:true (), Some Oracle.Tpm_space);
        Sim ("offline-drpm", Policy.drpm ~proactive:true (), Some Oracle.Drpm_space);
        Sim ("online", Policy.default_adaptive, None);
        Bound;
      ]
  | Offline ->
      [
        Sim ("base", Policy.No_pm, None);
        Sim ("offline-tpm", Policy.tpm ~proactive:true (), Some Oracle.Tpm_space);
        Sim ("offline-drpm", Policy.drpm ~proactive:true (), Some Oracle.Drpm_space);
      ]
  | Online ->
      [ Sim ("base", Policy.No_pm, None); Sim ("online", Policy.default_adaptive, None) ]
  | Oracle_only -> [ Bound ]

let run ?cache cfg =
  Dp_obs.Prof.span "serve.run" @@ fun () ->
  let root = Splitmix.create cfg.seed in
  let pop_rng = Splitmix.split root in
  let mux_rng = Splitmix.split root in
  let tenants =
    Tenant.population ?cache ~rng:pop_rng ~tenants:cfg.tenants ~disks:cfg.disks ()
  in
  let merged = Mux.merge ~rng:mux_rng ~jitter_ms:cfg.jitter_ms tenants in
  (* The per-tenant shifted streams, recovered from the merged trace:
     what each tenant's compiler would have planned hints on. *)
  let by_tenant = Array.make cfg.tenants [] in
  List.iter (fun (r : Request.t) -> by_tenant.(r.proc) <- r :: by_tenant.(r.proc)) merged;
  Array.iteri (fun i l -> by_tenant.(i) <- List.rev l) by_tenant;
  let offline_hints space =
    List.stable_sort Hint.compare_at
      (List.concat_map
         (fun stream -> Oracle.hints_of_trace ~space ~disks:cfg.disks stream)
         (Array.to_list by_tenant))
  in
  let run_spec = function
    | Sim (label, policy, hint_space) ->
        let hints =
          match hint_space with None -> [] | Some space -> offline_hints space
        in
        let acct_sink, finish =
          Account.recorder ?deadline_ms:cfg.deadline_ms ~tenants:cfg.tenants
            ~disks:cfg.disks ()
        in
        (* Observability riders compose with the accounting sink at the
           callback level — one stream wrapper forwards each event to
           every consumer.  The report builder and the live renderer are
           both keyed on simulated time and buffered per row, so rows
           stay independent and the fan-out stays deterministic. *)
        let report_finish =
          if not cfg.obs then None
          else Some (Dp_obs.Report.builder ~disks:cfg.disks)
        in
        let frame_buf = Buffer.create (if cfg.live then 4096 else 0) in
        let live_finish =
          if not cfg.live then None
          else begin
            let lv = Dp_obs.Live.create ~disks:cfg.disks () in
            Some
              (Dp_obs.Tty.driver ~mode:Dp_obs.Tty.Plain
                 ~out:(Buffer.add_string frame_buf) lv)
          end
        in
        let sink =
          match (report_finish, live_finish) with
          | None, None -> acct_sink
          | _ ->
              Dp_obs.Sink.stream (fun e ->
                  Dp_obs.Sink.emit acct_sink e;
                  (match report_finish with Some (feed, _) -> feed e | None -> ());
                  match live_finish with Some (feed, _) -> feed e | None -> ())
        in
        let model =
          match cfg.spare_blocks with
          | None -> Disk_model.ultrastar_36z15
          | Some n -> { Disk_model.ultrastar_36z15 with Disk_model.spare_blocks = n }
        in
        let res =
          Engine.simulate ~model ~obs:sink ~hints ?faults:cfg.faults ?repair:cfg.repair
            ?deadline_ms:cfg.deadline_ms ~shards:cfg.shards ~disks:cfg.disks policy merged
        in
        {
          label;
          detail = Policy.describe policy;
          energy_j = res.Engine.energy_j;
          makespan_ms = res.Engine.makespan_ms;
          summary = Some (finish ());
          obs = Option.map (fun (_, fin) -> fin ()) report_finish;
          frames =
            Option.map
              (fun (_, fin) ->
                fin ();
                Buffer.contents frame_buf)
              live_finish;
        }
    | Bound ->
        let b = Oracle.lower_bound ~space:Oracle.Full_space ~disks:cfg.disks merged in
        {
          label = "oracle";
          detail = "offline-optimal lower bound (full space)";
          energy_j = b.Oracle.energy_j;
          makespan_ms = b.Oracle.base.Engine.makespan_ms;
          summary = None;
          obs = None;
          frames = None;
        }
  in
  let rows = Domain_pool.map ~jobs:cfg.jobs run_spec (specs cfg.selection) in
  {
    config = cfg;
    requests = List.length merged;
    kinds = Array.of_list (List.map (fun (t : Tenant.t) -> Tenant.kind_name t.kind) tenants);
    rows;
  }

let pp_row ppf r =
  match r.summary with
  | None ->
      Format.fprintf ppf "%-12s  %10.1f J  %10.1f ms  %s" r.label r.energy_j
        r.makespan_ms r.detail
  | Some s ->
      Format.fprintf ppf
        "%-12s  %10.1f J  %10.1f ms  resp mean %.2f p99 %.2f max %.2f ms  fairness \
         %.3f  attributed %.1f J (+%.1f unattributed)"
        r.label r.energy_j r.makespan_ms s.Account.response_mean_ms
        s.Account.response_p99_ms s.Account.response_max_ms s.Account.fairness
        s.Account.attributed_j s.Account.unattributed_j;
      (match s.Account.slo with
      | Some slo ->
          Format.fprintf ppf "  slo %d violations %d abandoned  availability %.4f"
            slo.Account.violations slo.Account.abandoned slo.Account.availability
      | None -> ())

let pp_report ppf t =
  let oltp =
    Array.fold_left (fun n k -> if k = "oltp" then n + 1 else n) 0 t.kinds
  in
  Format.fprintf ppf
    "@[<v>serve: %d tenants (%d oltp, %d app), seed %d, %d disks, %d requests, jitter \
     %.0f ms"
    t.config.tenants oltp
    (t.config.tenants - oltp)
    t.config.seed t.config.disks t.requests t.config.jitter_ms;
  if armed t.config then begin
    Format.fprintf ppf "@,reliability:";
    (match t.config.faults with
    | Some f when f.Fault_model.rate > 0.0 ->
        Format.fprintf ppf " faults %s" (Fault_model.to_spec f)
    | _ -> ());
    (match t.config.deadline_ms with
    | Some d -> Format.fprintf ppf " deadline %.0f ms" d
    | None -> ());
    (match t.config.repair with
    | Some r -> Format.fprintf ppf " scrub %.0f ms/gap" r.Repair.scrub_budget_ms
    | None -> ());
    (match t.config.spare_blocks with
    | Some n -> Format.fprintf ppf " spare %d blocks" n
    | None -> ())
  end;
  Format.fprintf ppf "@,%a@]" (Format.pp_print_list pp_row) t.rows
