module Splitmix = Dp_util.Splitmix
module Request = Dp_trace.Request
module Ir = Dp_ir.Ir

type params = {
  requests : int;
  mean_gap_ms : float;
  hot_disks : int;
  hot_start : int;
  hot_bias : float;
  write_ratio : float;
  region_bytes : int;
}

let block = 4096

let draw rng =
  {
    requests = 48 + Splitmix.int rng ~bound:65;
    mean_gap_ms = 400.0 +. (Splitmix.float rng *. 3600.0);
    hot_disks = 1 + Splitmix.int rng ~bound:2;
    hot_start = Splitmix.int rng ~bound:64;
    hot_bias = 0.6 +. (Splitmix.float rng *. 0.3);
    write_ratio = 0.1 +. (Splitmix.float rng *. 0.4);
    region_bytes = (16 + Splitmix.int rng ~bound:49) * (1 lsl 20);
  }

(* Inverse-CDF exponential draw; [u] < 1 so the gap is strictly
   positive, and a floor keeps denormal-tiny gaps out of the arrival
   arithmetic. *)
let exp_gap rng ~mean = Float.max 0.01 (-.mean *. Float.log1p (-.Splitmix.float rng))

let generate rng ~disks p =
  if disks < 1 then invalid_arg "Oltp.generate: disks must be >= 1";
  if p.requests < 0 then invalid_arg "Oltp.generate: requests must be >= 0";
  let hot = min (max p.hot_disks 1) disks in
  let hot_start = p.hot_start mod disks in
  let blocks = max 1 (p.region_bytes / block) in
  let arrival = ref 0.0 in
  List.init p.requests (fun _ ->
      let gap = exp_gap rng ~mean:p.mean_gap_ms in
      arrival := !arrival +. gap;
      let disk =
        if Splitmix.bool rng ~p:p.hot_bias then
          (hot_start + Splitmix.int rng ~bound:hot) mod disks
        else Splitmix.int rng ~bound:disks
      in
      let lba = block * Splitmix.int rng ~bound:blocks in
      (* 4, 8, 16, 32 or 64 KB transfers. *)
      let size = block lsl Splitmix.int rng ~bound:5 in
      let mode = if Splitmix.bool rng ~p:p.write_ratio then Ir.Write else Ir.Read in
      {
        Request.arrival_ms = !arrival;
        think_ms = gap;
        seg = 0;
        address = lba;
        lba;
        size;
        mode;
        proc = 0;
        disk;
      })
