module Splitmix = Dp_util.Splitmix
module Request = Dp_trace.Request
module Pipeline = Dp_pipeline.Pipeline

type kind = Oltp of Oltp.params | App of string

type t = { index : int; kind : kind; stream : Request.t list }

let kind_name = function Oltp _ -> "oltp" | App name -> "app:" ^ name

let app_window = 256

let app_names = [| "AST"; "FFT"; "Cholesky"; "Visuo"; "SCF 3.0"; "RSense 2.0" |]

(* Normalize a raw stream to the tenant shape: single proc, single
   segment, disks folded into the array, arrivals rebased to 0 and made
   strictly increasing (a 10 µs bump breaks exact ties so the merged
   sort can never reorder a tenant's requests), think chained to the
   arrival deltas. *)
let normalize ~disks reqs =
  let reqs = List.stable_sort Request.compare_arrival reqs in
  let base = match reqs with [] -> 0.0 | r :: _ -> r.Request.arrival_ms in
  let prev = ref neg_infinity in
  List.map
    (fun (r : Request.t) ->
      let at = r.Request.arrival_ms -. base in
      let at = if at <= !prev then !prev +. 0.01 else at in
      let think = if !prev = neg_infinity then at else at -. !prev in
      prev := at;
      {
        r with
        Request.arrival_ms = at;
        think_ms = think;
        seg = 0;
        proc = 0;
        disk = r.Request.disk mod disks;
      })
    reqs

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let app_stream ?cache ~disks name =
  let ctx = Pipeline.load ?cache ("app:" ^ name) in
  let trace = Pipeline.trace ctx ~procs:1 Pipeline.Original in
  normalize ~disks (take app_window (List.stable_sort Request.compare_arrival trace))

let population ?cache ~rng ~tenants ~disks () =
  if tenants < 1 then invalid_arg "Tenant.population: tenants must be >= 1";
  if disks < 1 then invalid_arg "Tenant.population: disks must be >= 1";
  let windows : (string, Request.t list) Hashtbl.t = Hashtbl.create 8 in
  let window name =
    match Hashtbl.find_opt windows name with
    | Some w -> w
    | None ->
        let w = app_stream ?cache ~disks name in
        Hashtbl.add windows name w;
        w
  in
  List.init tenants (fun i ->
      let child = Splitmix.split rng in
      if i mod 4 = 3 then begin
        let name = app_names.(i / 4 mod Array.length app_names) in
        { index = i; kind = App name; stream = window name }
      end
      else begin
        let params = Oltp.draw child in
        let stream = normalize ~disks (Oltp.generate child ~disks params) in
        { index = i; kind = Oltp params; stream }
      end)
