(** The arrival-time multiplexer: N tenant streams onto one array.

    Each tenant gets a seed-driven start offset (uniform in
    [\[0, jitter_ms)]) and its stream is shifted wholesale; the shifted
    streams are then merged into one trace ordered by
    {!Dp_trace.Request.compare_arrival}.  A tenant's requests keep their
    relative spacing — the offset lands in the first request's
    [think_ms], subsequent think times are untouched — and its id lands
    in [Request.proc], which is what the closed-loop engine issues on
    and what per-tenant accounting keys on.

    Because normalized tenant streams have strictly increasing arrivals
    ({!Tenant.population}) and the shift is constant per tenant, the
    merge preserves every tenant's request order (the QCheck property in
    the test suite).  The merge is serial and a pure function of its
    inputs: the same generator and streams give a byte-identical merged
    trace whatever [--jobs] later fans out over it. *)

val merge :
  rng:Dp_util.Splitmix.t ->
  jitter_ms:float ->
  Tenant.t list ->
  Dp_trace.Request.t list
(** One child generator is split off [rng] per tenant in list order.
    @raise Invalid_argument when [jitter_ms] is negative. *)
