(** Tenant specs and the deterministic tenant population.

    A tenant is one request stream destined for the shared array: either
    a synthetic OLTP stream ({!Oltp}) or a bounded window of one of the
    six paper applications replayed through {!Dp_pipeline.Pipeline}.
    Streams are normalized to a common shape the multiplexer relies on:
    [proc = 0], [seg = 0], arrivals strictly increasing from 0,
    [think_ms] equal to the arrival delta (closed-loop), disks folded
    into the array ([disk mod disks]). *)

type kind =
  | Oltp of Oltp.params
  | App of string  (** a built-in workload name, e.g. ["AST"] *)

type t = {
  index : int;  (** tenant id — becomes [Request.proc] after multiplexing *)
  kind : kind;
  stream : Dp_trace.Request.t list;  (** normalized, see above *)
}

val kind_name : kind -> string
(** ["oltp"] or ["app:<name>"]. *)

val app_window : int
(** Requests kept of an application trace (256): app traces run to
    ~150k requests, far beyond what one tenant contributes to a served
    array, so each app tenant replays this prefix of the 1-processor
    Original trace. *)

val population :
  ?cache:Dp_cachefs.Cachefs.t ->
  rng:Dp_util.Splitmix.t ->
  tenants:int ->
  disks:int ->
  unit ->
  t list
(** The deterministic population for a served-array run: every fourth
    tenant (index [3 mod 4]) replays an application window, cycling
    through the six paper workloads; the rest are OLTP tenants with
    per-tenant parameters drawn from [rng]'s children.  One child is
    split off [rng] per tenant in index order, so the population is a
    pure function of the generator.  App windows are built once per
    application and shared ([cache] forwards to the pipeline's
    persistent store).
    @raise Invalid_argument when [tenants < 1] or [disks < 1]. *)
