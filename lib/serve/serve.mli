(** The served-array experiment: N tenants, one disk array, offline
    hints vs online adaptation vs the oracle bound.

    One {!run} builds the tenant population and the merged trace once
    (serially — the trace is a pure function of the seed) and then fans
    the report rows out over a {!Dp_pipeline.Domain_pool}:

    - [base]: no power management — the energy reference.
    - [offline-tpm] / [offline-drpm]: the paper's compiler-directed
      proactive policies, driven by hints each tenant's compiler planned
      on its {e own} stream ({!Dp_oracle.Oracle.hints_of_trace} per
      tenant, merged by nominal time).  Under multiplexing the planned
      gaps are sliced up by other tenants' arrivals, so directives
      degrade gracefully ([tpm:hint-infeasible] and shallow dips) — this
      row measures exactly how much of the offline plan survives
      interleaving.
    - [online]: the epoch-based adaptive policy
      ({!Dp_disksim.Policy.Adaptive}) learning per-disk thresholds from
      the merged stream it actually observes.
    - [oracle]: {!Dp_oracle.Oracle.lower_bound} over the merged trace —
      the offline-optimal energy floor, unchanged by who generated the
      requests.  An analytic bound, not a run: it carries no per-tenant
      accounting.

    Rows are independent simulations of the same immutable trace, so
    [jobs = 1] and [jobs = 4] produce byte-identical reports. *)

type selection =
  | All
  | Offline  (** base + the two offline-hint rows *)
  | Online  (** base + the online row *)
  | Oracle_only

val selection_of_name : string -> selection option
(** ["all"], ["offline"], ["online"], ["oracle"]. *)

val selection_name : selection -> string

type config = {
  tenants : int;
  seed : int;
  disks : int;  (** array size (default 8) *)
  jitter_ms : float;
      (** tenant start offsets are uniform in [\[0, jitter_ms)]
          (default 30 000) *)
  jobs : int;  (** domain-pool width for the row fan-out *)
  shards : int;
      (** engine-internal domain fan-out per simulated row (per-segment
          shard groups, byte-identical to serial — see
          {!Dp_disksim.Engine.simulate}) *)
  selection : selection;
  faults : Dp_faults.Fault_model.t option;
      (** seeded fault injection for the simulated rows (the oracle
          bound stays fault-free — it is an analytic floor) *)
  repair : Dp_repair.Repair.config option;
      (** persistent-failure domain override (scrub budget etc.); decay
          faults arm {!Dp_repair.Repair.default} implicitly *)
  deadline_ms : float option;  (** per-request SLO deadline *)
  spare_blocks : int option;  (** per-disk spare-pool override *)
  obs : bool;
      (** build a per-disk {!Dp_obs.Report} for every simulated row
          (incrementally — nothing is retained beyond the report) *)
  live : bool;
      (** render {!Dp_obs.Tty.Plain} live frames per simulated row into
          {!row.frames}.  Frames are keyed on simulated time, and rows
          carry their own buffers, so output is byte-identical across
          [jobs] settings. *)
}

val config :
  ?disks:int ->
  ?jitter_ms:float ->
  ?jobs:int ->
  ?shards:int ->
  ?selection:selection ->
  ?faults:Dp_faults.Fault_model.t ->
  ?repair:Dp_repair.Repair.config ->
  ?deadline_ms:float ->
  ?spare_blocks:int ->
  ?obs:bool ->
  ?live:bool ->
  tenants:int ->
  seed:int ->
  unit ->
  config
(** @raise Invalid_argument when [tenants < 1], [disks < 1], [jobs < 1],
    [shards < 1], [jitter_ms < 0], [deadline_ms <= 0] or
    [spare_blocks < 1]. *)

type row = {
  label : string;  (** [base] | [offline-tpm] | [offline-drpm] | [online] | [oracle] *)
  detail : string;  (** policy description, or the bound's *)
  energy_j : float;
  makespan_ms : float;
  summary : Account.summary option;  (** [None] for the oracle bound *)
  obs : Dp_obs.Report.disk_report array option;
      (** per-disk report when {!config.obs}; [None] for the bound *)
  frames : string option;
      (** the row's rendered live frames when {!config.live}; [None]
          for the bound *)
}

type report = {
  config : config;
  requests : int;  (** merged trace length *)
  kinds : string array;  (** per-tenant workload kind ({!Tenant.kind_name}) *)
  rows : row list;
}

val run : ?cache:Dp_cachefs.Cachefs.t -> config -> report
(** [cache] backs the app-tenant pipeline stages (trace windows are
    shared across runs and processes); the synthetic tenants and the
    simulations are cheap enough to rebuild. *)

val pp_report : Format.formatter -> report -> unit
(** The human table: one line per row (energy, makespan, pooled
    response percentiles, fairness, attribution check). *)
