(** Per-tenant accounting over the observability event stream.

    A {!recorder} is a {!Dp_obs.Sink.t} the engine streams into plus a
    finisher that folds what it saw into a {!summary}:

    - {b energy attribution} is demand-based: every power span's energy
      accrues to its disk's pending pot, and a service event drains the
      pot (gap energy plus the busy span) to the issuing tenant — the
      tenant whose arrival terminated the gap pays for it.  Spans after
      a disk's last service go to the tenant it last served; disks never
      serviced at all are reported as [unattributed_j].  Every joule the
      engine emits lands in exactly one tenant pot or the unattributed
      pot, so attribution sums back to the array total (up to float
      regrouping — the engine folds per disk, attribution per tenant).
    - {b response percentiles} are exact nearest-rank over the tenant's
      recorded responses, not histogram-bucket approximations: tenant
      streams are short enough to keep every sample.
    - {b fairness} is Jain's index over per-tenant mean response times.
    - {b SLO accounting} (only under a deadline): a response past the
      deadline is a violation, one past four deadlines is counted
      abandoned — the client gave up — and availability is the fraction
      of requests served within the abandonment horizon.

    Single-threaded, like every sink. *)

type tenant_stats = {
  tenant : int;
  requests : int;
  energy_j : float;  (** demand-attributed share of the array energy *)
  response_mean_ms : float;
  response_p50_ms : float;
  response_p95_ms : float;
  response_p99_ms : float;
  response_max_ms : float;
  slo_violations : int;  (** responses past the deadline (0 without one) *)
  abandoned : int;  (** responses past four deadlines (0 without one) *)
}

(** Deadline bookkeeping across the run, present only when the recorder
    was given a deadline. *)
type slo = {
  deadline_ms : float;
  violations : int;
  abandoned : int;
  availability : float;  (** 1 - abandoned/requests; 1.0 on an empty run *)
}

type summary = {
  tenants : tenant_stats array;  (** indexed by tenant id *)
  attributed_j : float;  (** sum of the tenant shares *)
  unattributed_j : float;  (** energy of disks that never served anyone *)
  energy_j : float;
      (** array total as the engine computes it: per-disk span sums
          folded across disks in disk order — bit-identical to
          [Engine.result.energy_j] for the same run *)
  fairness : float;
      (** Jain's index over per-tenant mean responses, in (0, 1]; 1.0
          when no tenant completed a request *)
  requests : int;  (** services seen across all tenants *)
  response_mean_ms : float;  (** pooled over every response in the run *)
  response_p50_ms : float;
  response_p95_ms : float;
  response_p99_ms : float;
  response_max_ms : float;
  slo : slo option;
}

val recorder :
  ?deadline_ms:float -> tenants:int -> disks:int -> unit -> Dp_obs.Sink.t * (unit -> summary)
(** The sink to pass as [Engine.simulate ~obs] and the finisher to call
    once the run returns.  The finisher is not idempotent — call it
    exactly once.  [deadline_ms] arms SLO accounting.
    @raise Invalid_argument when [tenants < 1], [disks < 1], or
    [deadline_ms <= 0]. *)

val percentile : float array -> float -> float
(** [percentile sorted q]: exact nearest-rank percentile of an
    ascending-sorted sample ([q] in [0, 1]; 0 on an empty sample).
    Exposed for the report path and the tests. *)
