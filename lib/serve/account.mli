(** Per-tenant accounting over the observability event stream.

    A {!recorder} is a {!Dp_obs.Sink.t} the engine streams into plus a
    finisher that folds what it saw into a {!summary}:

    - {b energy attribution} is demand-based: every power span's energy
      accrues to its disk's pending pot, and a service event drains the
      pot (gap energy plus the busy span) to the issuing tenant — the
      tenant whose arrival terminated the gap pays for it.  Spans after
      a disk's last service go to the tenant it last served; disks never
      serviced at all are reported as [unattributed_j].  Every joule the
      engine emits lands in exactly one tenant pot or the unattributed
      pot, so attribution sums back to the array total (up to float
      regrouping — the engine folds per disk, attribution per tenant).
    - {b response percentiles} are exact nearest-rank over the tenant's
      recorded responses, not histogram-bucket approximations: tenant
      streams are short enough to keep every sample.
    - {b fairness} is Jain's index over per-tenant mean response times.

    Single-threaded, like every sink. *)

type tenant_stats = {
  tenant : int;
  requests : int;
  energy_j : float;  (** demand-attributed share of the array energy *)
  response_mean_ms : float;
  response_p50_ms : float;
  response_p95_ms : float;
  response_p99_ms : float;
  response_max_ms : float;
}

type summary = {
  tenants : tenant_stats array;  (** indexed by tenant id *)
  attributed_j : float;  (** sum of the tenant shares *)
  unattributed_j : float;  (** energy of disks that never served anyone *)
  energy_j : float;
      (** array total as the engine computes it: per-disk span sums
          folded across disks in disk order — bit-identical to
          [Engine.result.energy_j] for the same run *)
  fairness : float;
      (** Jain's index over per-tenant mean responses, in (0, 1]; 1.0
          when no tenant completed a request *)
  requests : int;  (** services seen across all tenants *)
  response_mean_ms : float;  (** pooled over every response in the run *)
  response_p50_ms : float;
  response_p95_ms : float;
  response_p99_ms : float;
  response_max_ms : float;
}

val recorder : tenants:int -> disks:int -> Dp_obs.Sink.t * (unit -> summary)
(** The sink to pass as [Engine.simulate ~obs] and the finisher to call
    once the run returns.  The finisher is not idempotent — call it
    exactly once.
    @raise Invalid_argument when [tenants < 1] or [disks < 1]. *)

val percentile : float array -> float -> float
(** [percentile sorted q]: exact nearest-rank percentile of an
    ascending-sorted sample ([q] in [0, 1]; 0 on an empty sample).
    Exposed for the report path and the tests. *)
