module Sink = Dp_obs.Sink
module Event = Dp_obs.Event

type tenant_stats = {
  tenant : int;
  requests : int;
  energy_j : float;
  response_mean_ms : float;
  response_p50_ms : float;
  response_p95_ms : float;
  response_p99_ms : float;
  response_max_ms : float;
  slo_violations : int;
  abandoned : int;
}

type slo = {
  deadline_ms : float;
  violations : int;
  abandoned : int;
  availability : float;
}

type summary = {
  tenants : tenant_stats array;
  attributed_j : float;
  unattributed_j : float;
  energy_j : float;
  fairness : float;
  requests : int;
  response_mean_ms : float;
  response_p50_ms : float;
  response_p95_ms : float;
  response_p99_ms : float;
  response_max_ms : float;
  slo : slo option;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    sorted.(min (n - 1) (max 0 (rank - 1)))
  end

(* A growable float sample buffer: tenant streams are short (tens to a
   few hundred responses), so keeping every sample for exact
   percentiles is cheap. *)
type samples = { mutable buf : float array; mutable len : int }

let sample_add s v =
  if s.len = Array.length s.buf then begin
    let bigger = Array.make (max 16 (2 * s.len)) 0.0 in
    Array.blit s.buf 0 bigger 0 s.len;
    s.buf <- bigger
  end;
  s.buf.(s.len) <- v;
  s.len <- s.len + 1

let sample_sorted s =
  let a = Array.init s.len (Array.get s.buf) in
  Array.sort Float.compare a;
  a

let abandon_factor = 4.0

let jain means =
  let n = Array.length means in
  if n = 0 then 1.0
  else begin
    let sum = Array.fold_left ( +. ) 0.0 means in
    let sq = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 means in
    if sq = 0.0 then 1.0 else sum *. sum /. (float_of_int n *. sq)
  end

let recorder ?deadline_ms ~tenants ~disks () =
  if tenants < 1 then invalid_arg "Account.recorder: tenants must be >= 1";
  if disks < 1 then invalid_arg "Account.recorder: disks must be >= 1";
  (match deadline_ms with
  | Some d when d <= 0.0 -> invalid_arg "Account.recorder: deadline_ms must be > 0"
  | _ -> ());
  let tenant_j = Array.make tenants 0.0 in
  let responses = Array.init tenants (fun _ -> { buf = [||]; len = 0 }) in
  (* SLO accounting: a response past the deadline is a violation; one
     past [abandon_factor] deadlines counts as abandoned — the client
     gave up, so availability is the fraction it actually got served in
     usable time. *)
  let violations = Array.make tenants 0 in
  let abandoned = Array.make tenants 0 in
  (* Energy per disk awaiting a service to claim it, the claimant of a
     disk's trailing spans, and the engine-shaped per-disk totals. *)
  let pending = Array.make disks 0.0 in
  let last_tenant = Array.make disks (-1) in
  let disk_j = Array.make disks 0.0 in
  let sink =
    Sink.stream (fun ev ->
        match ev with
        | Event.Power { disk; energy_j; _ } ->
            pending.(disk) <- pending.(disk) +. energy_j;
            disk_j.(disk) <- disk_j.(disk) +. energy_j
        | Event.Service { disk; proc; arrival_ms; stop_ms; _ } ->
            tenant_j.(proc) <- tenant_j.(proc) +. pending.(disk);
            pending.(disk) <- 0.0;
            last_tenant.(disk) <- proc;
            let resp = stop_ms -. arrival_ms in
            (match deadline_ms with
            | Some d ->
                if resp > d then violations.(proc) <- violations.(proc) + 1;
                if resp > abandon_factor *. d then
                  abandoned.(proc) <- abandoned.(proc) + 1
            | None -> ());
            sample_add responses.(proc) resp
        | Event.Hint_exec _ | Event.Fault _ | Event.Decision _ | Event.Cache _
        | Event.Repair _ | Event.Deadline _ ->
            ())
  in
  let finish () =
    let unattributed = ref 0.0 in
    Array.iteri
      (fun d e ->
        if e <> 0.0 then
          if last_tenant.(d) >= 0 then
            tenant_j.(last_tenant.(d)) <- tenant_j.(last_tenant.(d)) +. e
          else unattributed := !unattributed +. e;
        pending.(d) <- 0.0)
      pending;
    let stats =
      Array.init tenants (fun t ->
          let sorted = sample_sorted responses.(t) in
          let n = Array.length sorted in
          {
            tenant = t;
            requests = n;
            energy_j = tenant_j.(t);
            response_mean_ms =
              (if n = 0 then 0.0
               else Array.fold_left ( +. ) 0.0 sorted /. float_of_int n);
            response_p50_ms = percentile sorted 0.50;
            response_p95_ms = percentile sorted 0.95;
            response_p99_ms = percentile sorted 0.99;
            response_max_ms = (if n = 0 then 0.0 else sorted.(n - 1));
            slo_violations = violations.(t);
            abandoned = abandoned.(t);
          })
    in
    let means =
      Array.of_list
        (List.filter_map
           (fun (s : tenant_stats) ->
             if s.requests > 0 then Some s.response_mean_ms else None)
           (Array.to_list stats))
    in
    let pooled =
      let total = Array.fold_left (fun acc s -> acc + s.len) 0 responses in
      let a = Array.make (max total 1) 0.0 in
      let at = ref 0 in
      Array.iter
        (fun s ->
          Array.blit s.buf 0 a !at s.len;
          at := !at + s.len)
        responses;
      let a = Array.sub a 0 total in
      Array.sort Float.compare a;
      a
    in
    let pooled_n = Array.length pooled in
    {
      tenants = stats;
      attributed_j = Array.fold_left ( +. ) 0.0 tenant_j;
      unattributed_j = !unattributed;
      energy_j = Array.fold_left ( +. ) 0.0 disk_j;
      fairness = jain means;
      requests = pooled_n;
      response_mean_ms =
        (if pooled_n = 0 then 0.0
         else Array.fold_left ( +. ) 0.0 pooled /. float_of_int pooled_n);
      response_p50_ms = percentile pooled 0.50;
      response_p95_ms = percentile pooled 0.95;
      response_p99_ms = percentile pooled 0.99;
      response_max_ms = (if pooled_n = 0 then 0.0 else pooled.(pooled_n - 1));
      slo =
        (match deadline_ms with
        | None -> None
        | Some d ->
            let v = Array.fold_left ( + ) 0 violations in
            let a = Array.fold_left ( + ) 0 abandoned in
            Some
              {
                deadline_ms = d;
                violations = v;
                abandoned = a;
                availability =
                  (if pooled_n = 0 then 1.0
                   else 1.0 -. (float_of_int a /. float_of_int pooled_n));
              })
    }
  in
  (sink, finish)
