(** Deterministic synthetic OLTP-style tenant workload.

    The six paper applications are batch jobs with compiler-predictable
    schedules; a served array also carries tenants nothing was compiled
    for.  This generator produces such a stream: short independent
    requests separated by exponentially distributed think times, skewed
    onto a small per-tenant hot set of disks, with a mixed read/write
    ratio and small transfer sizes.  Everything is drawn from a
    {!Dp_util.Splitmix} stream, so a tenant's workload is a pure
    function of its generator — equal seeds, equal streams. *)

type params = {
  requests : int;  (** stream length *)
  mean_gap_ms : float;  (** mean of the exponential think time *)
  hot_disks : int;  (** size of the tenant's hot set *)
  hot_start : int;
      (** first disk of the hot set (taken mod the array size, so
          different tenants heat different disks) *)
  hot_bias : float;  (** probability a request lands in the hot set *)
  write_ratio : float;
  region_bytes : int;  (** per-disk address region the tenant touches *)
}

val draw : Dp_util.Splitmix.t -> params
(** A plausible tenant: 48–112 requests, 0.4–4 s mean think time, a hot
    set of 1–2 disks receiving 60–90% of the traffic, 10–50% writes,
    a 16–64 MB region.  Consumes a fixed number of draws. *)

val generate : Dp_util.Splitmix.t -> disks:int -> params -> Dp_trace.Request.t list
(** The tenant's request stream: [proc = 0], [seg = 0], nominal
    [arrival_ms] strictly increasing from the first gap, [think_ms] the
    inter-request gap (closed-loop semantics).  [disks] clamps the hot
    set and the cool remainder to the array.
    @raise Invalid_argument when [disks < 1] or [params.requests < 0]. *)
