module Splitmix = Dp_util.Splitmix
module Request = Dp_trace.Request

let merge ~rng ~jitter_ms tenants =
  if jitter_ms < 0.0 then invalid_arg "Mux.merge: jitter_ms must be >= 0";
  let shifted =
    List.concat_map
      (fun (t : Tenant.t) ->
        let child = Splitmix.split rng in
        let offset = if jitter_ms > 0.0 then Splitmix.float child *. jitter_ms else 0.0 in
        let first = ref true in
        List.map
          (fun (r : Request.t) ->
            let think =
              if !first then begin
                first := false;
                (* The offset is dead time before the tenant's first
                   request: it rides in that request's think gap. *)
                offset +. r.Request.arrival_ms
              end
              else r.Request.think_ms
            in
            {
              r with
              Request.proc = t.Tenant.index;
              arrival_ms = offset +. r.Request.arrival_ms;
              think_ms = think;
            })
          t.Tenant.stream)
      tenants
  in
  List.stable_sort Request.compare_arrival shifted
