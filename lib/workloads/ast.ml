(** AST — astrophysics (Table 2: 153.3 GB, 148,526 requests).

    Modeled as a time-stepped 1-D-decomposed stencil over two
    disk-resident state arrays [a] and [b], the classic structure of
    explicit hydrodynamics codes: each time step sweeps the grid reading
    the current state (including a neighbor row) and writing the next
    state into the other array, and every few steps a diagnostic
    reduction scans the freshly written state.  The inter-step flow
    dependences serialize the sweeps, so disk-reuse clustering operates
    within a step — the regime in which the paper reports moderate TPM
    and good DRPM savings. *)

let steps = 14
let rows = 56
let cols = 55
let reduction_every = 4

let app () =
  let k = App.counter () in
  let open App in
  let arrays =
    [
      Dp_ir.Ir.array_decl ~elem_size:page_bytes "a" [ rows; cols ];
      Dp_ir.Ir.array_decl ~elem_size:page_bytes "b" [ rows; cols ];
      Dp_ir.Ir.array_decl ~elem_size:page_bytes "s" [ steps ];
    ]
  in
  let sweep step =
    (* Even steps read [a] and write [b]; odd steps flow back. *)
    let src, dst = if step mod 2 = 0 then ("a", "b") else ("b", "a") in
    sweep_nest k ~cycles:2_600_000 ~src ~dst ~rows ~cols ()
  in
  let reduction step =
    let src = if step mod 2 = 0 then "b" else "a" in
    reduction_nest k ~cycles:1_700_000 ~src ~acc:"s" ~slot:step ~rows ~cols ()
  in
  let nests =
    List.concat_map
      (fun step ->
        let sweeps = [ sweep step ] in
        if (step + 1) mod reduction_every = 0 then sweeps @ [ reduction step ]
        else sweeps)
      (Dp_util.Listx.range 0 (steps - 1))
  in
  let program = Dp_ir.Ir.program arrays nests in
  {
    App.name = "AST";
    description = "Astrophysics";
    program;
    striping = App.striping_of_rows ~row_pages:cols ~rows_per_stripe:1 ();
    overrides = App.staggered_overrides ~rows_per_stripe:2 program;
    paper_data_gb = 153.3;
    paper_requests = 148_526;
    paper_base_energy_j = 44_581.1;
    paper_io_time_ms = 476_278.6;
  }
