module Ir = Dp_ir.Ir
module Striping = Dp_layout.Striping

(** A benchmark application: a loop-nest program modeling the disk access
    pattern of one of the paper's six codes (Table 2), plus the striping
    its arrays use.

    Scaling note (documented in DESIGN.md): one array element is one
    64 KB disk page, and array extents are chosen so the {e number of
    requests} matches Table 2; the byte footprint is correspondingly
    smaller than the paper's 90-150 GB datasets (the paper's absolute
    numbers are not reproducible without its proprietary codes), which
    preserves idle-period structure — the property the experiments
    measure. *)

type t = {
  name : string;
  description : string;  (** Table 2's description column *)
  program : Ir.program;
  striping : Striping.t;  (** default striping for the program's arrays *)
  overrides : (string * Striping.t) list;
      (** per-array striping (staggered start disks: files created at
          different times start on different I/O nodes, so co-accessed
          rows of different arrays live on different disks — the paper's
          "a given loop iteration can access different array elements
          that reside in different disks") *)
  paper_data_gb : float;  (** Table 2: Data Size (GB) *)
  paper_requests : int;  (** Table 2: Number of Disk Reqs *)
  paper_base_energy_j : float;  (** Table 2: Base Energy (J) *)
  paper_io_time_ms : float;  (** Table 2: I/O Time (ms) *)
}

val page_bytes : int
(** 64 KB: the element size of every workload array. *)

val striping_of_rows : ?start_disk:int -> row_pages:int -> rows_per_stripe:int -> unit -> Striping.t
(** Round-robin striping whose unit holds [rows_per_stripe] whole rows of
    [row_pages] pages each, over 8 disks starting at [start_disk]
    (default 0). *)

val staggered_overrides : ?rows_per_stripe:int -> Ir.program -> (string * Striping.t) list
(** One striping per array of the program, with start disks staggered
    0, 2, 4, ... (mod 8) in declaration order and stripe units holding
    [rows_per_stripe] array rows (default 1; a row is the product of the
    trailing dimensions). *)

(** {1 Nest-building helpers} *)

val v : string -> Dp_affine.Affine.t
val c : int -> Dp_affine.Affine.t
val ( +! ) : Dp_affine.Affine.t -> int -> Dp_affine.Affine.t
val rd : string -> Dp_affine.Affine.t list -> Ir.array_ref
val wr : string -> Dp_affine.Affine.t list -> Ir.array_ref

type counter = { mutable next_stmt : int; mutable next_nest : int }

val counter : unit -> counter
val stmt : counter -> ?cycles:int -> Ir.array_ref list -> Ir.stmt
val nest : counter -> (string * Dp_affine.Affine.t * Dp_affine.Affine.t) list -> Ir.stmt list -> Ir.nest
(** [nest k [ (i, lo, hi); ... ] body] with loops outermost first. *)

(** {1 Reusable nest shapes}

    The access-pattern building blocks the workload models (and the
    chaos scenario generator) compose programs from.  All loops are
    rectangular with outermost index ["i"], innermost ["j"]. *)

val sweep_nest :
  counter -> ?cycles:int -> src:string -> dst:string -> rows:int -> cols:int -> unit -> Ir.nest
(** A neighbor stencil: reads rows [i] and [i+1] of [src], writes row
    [i] of [dst].  Needs [rows >= 2]. *)

val copy_nest :
  counter -> ?cycles:int -> src:string -> dst:string -> rows:int -> cols:int -> unit -> Ir.nest
(** A whole-array copy: reads [src[i][j]], writes [dst[i][j]]. *)

val reduction_nest :
  counter -> ?cycles:int -> src:string -> acc:string -> slot:int -> rows:int -> cols:int -> unit -> Ir.nest
(** A diagnostic reduction: scans [src] and accumulates into the 1-D
    array [acc] at [slot]. *)
