module Ir = Dp_ir.Ir
module Affine = Dp_affine.Affine
module Striping = Dp_layout.Striping

type t = {
  name : string;
  description : string;
  program : Ir.program;
  striping : Striping.t;
  overrides : (string * Striping.t) list;
  paper_data_gb : float;
  paper_requests : int;
  paper_base_energy_j : float;
  paper_io_time_ms : float;
}

let page_bytes = 64 * 1024

let striping_of_rows ?(start_disk = 0) ~row_pages ~rows_per_stripe () =
  Striping.make
    ~unit_bytes:(rows_per_stripe * row_pages * page_bytes)
    ~factor:8 ~start_disk

let staggered_overrides ?(rows_per_stripe = 1) (prog : Ir.program) =
  List.mapi
    (fun i (a : Ir.array_decl) ->
      let row_pages =
        match a.Ir.dims with [] -> 1 | _ :: rest -> List.fold_left ( * ) 1 rest
      in
      ( a.Ir.name,
        striping_of_rows ~start_disk:(i * 2 mod 8) ~row_pages ~rows_per_stripe () ))
    prog.Ir.arrays

let v = Affine.var
let c = Affine.const
let ( +! ) e k = Affine.add e (Affine.const k)
let rd name subs = Ir.read name subs
let wr name subs = Ir.write name subs

type counter = { mutable next_stmt : int; mutable next_nest : int }

let counter () = { next_stmt = 0; next_nest = 0 }

let stmt t ?(cycles = 500_000) refs =
  let id = t.next_stmt in
  t.next_stmt <- t.next_stmt + 1;
  Ir.stmt ~work_cycles:cycles id refs

let nest t loops body =
  let id = t.next_nest in
  t.next_nest <- t.next_nest + 1;
  Ir.nest id (List.map (fun (i, lo, hi) -> Ir.loop i lo hi) loops) body

(* --- reusable nest shapes ---

   The access-pattern building blocks the workload models share
   (stencil sweep, diagnostic reduction, array copy).  The chaos
   scenario generator composes random programs from the same shapes, so
   its scenarios stay inside the input class the paper targets. *)

let sweep_nest k ?(cycles = 2_000_000) ~src ~dst ~rows ~cols () =
  nest k
    [ ("i", c 0, c (rows - 2)); ("j", c 0, c (cols - 1)) ]
    [
      stmt k ~cycles
        [ rd src [ v "i"; v "j" ]; rd src [ v "i" +! 1; v "j" ]; wr dst [ v "i"; v "j" ] ];
    ]

let copy_nest k ?(cycles = 1_000_000) ~src ~dst ~rows ~cols () =
  nest k
    [ ("i", c 0, c (rows - 1)); ("j", c 0, c (cols - 1)) ]
    [ stmt k ~cycles [ rd src [ v "i"; v "j" ]; wr dst [ v "i"; v "j" ] ] ]

let reduction_nest k ?(cycles = 1_500_000) ~src ~acc ~slot ~rows ~cols () =
  nest k
    [ ("i", c 0, c (rows - 1)); ("j", c 0, c (cols - 1)) ]
    [ stmt k ~cycles [ rd src [ v "i"; v "j" ]; wr acc [ c slot ] ] ]
