(** Crash-safe persistent stage cache.

    A content-addressed on-disk store for expensive pipeline artifacts
    (traces, hint streams), shared by every [dpcc] invocation.  The
    store must survive what the fault simulations in {!Dp_faults} throw
    at real disks — interrupted writes, bit rot, concurrent writers —
    so every entry is:

    - written to a temporary file, flushed, [fsync]ed and atomically
      renamed into place (a reader sees a complete entry or none);
    - framed with a versioned header and an MD5 checksum trailer, both
      verified on read;
    - guarded by an advisory lock file while being published, so
      concurrent invocations never interleave writes.

    {b Failure contract}: no operation raises.  A missing entry is a
    miss; a short, bit-flipped, version-skewed or otherwise undecodable
    entry is {e quarantined} (renamed to [*.corrupt], never read again)
    and reported as a miss; a write that cannot complete (lock timeout,
    [ENOSPC], permissions) is dropped.  Callers always fall back to
    recomputing in memory — the cache can only ever cost a rebuild,
    never correctness.  Every outcome increments a counter and, when a
    sink is attached, emits an {!Dp_obs.Event.Cache} event. *)

type t
(** An open store rooted at one directory. *)

val format_version : int
(** On-disk entry format version.  It participates in both the entry
    file header and the content address, so a version bump orphans old
    entries instead of misreading them.  Bump it whenever the framing
    {e or} the byte meaning of any cached payload changes. *)

val default_dir : unit -> string
(** The store location when the caller gives none: [$DPOWER_CACHE_DIR]
    if set, else [$XDG_CACHE_HOME/dpower], else [$HOME/.cache/dpower],
    else a [dpower] directory under the system temp dir. *)

val open_store :
  ?sink:Dp_obs.Sink.t -> ?lock_timeout_ms:int -> dir:string -> unit -> (t, string) result
(** Open (creating if needed) a store at [dir].  [sink] (default
    {!Dp_obs.Sink.null}) receives a {!Dp_obs.Event.Cache} event per
    operation; [lock_timeout_ms] (default 2000) bounds how long a
    writer waits for the advisory lock before dropping its write.
    [Error] only when the directory cannot be created or is not
    writable — callers should degrade to running uncached. *)

val dir : t -> string

val key : parts:string list -> string
(** The content address of an entry: a hex digest over [parts] and
    {!format_version}.  Parts order is significant. *)

(** {1 Entries} *)

val get : t -> key:string -> string option
(** The verified payload of an entry, or [None] for a miss.  Any
    integrity failure — unreadable file, truncation, checksum mismatch,
    header version skew — quarantines the entry and returns [None].
    Reads take no lock: writers only ever publish whole files by atomic
    rename, so a reader sees the old entry or the new one, never a
    mixture. *)

(** Why a write was dropped, when the cause is worth naming:
    [Lock_timeout] means another writer held the store's advisory lock
    past [lock_timeout_ms].  [lock_path] is the contended file;
    [holder_age_s] is how long the current holder has owned it (from
    the lock file's mtime; [None] when the holder released between the
    timeout and the probe). *)
type error = Lock_timeout of { lock_path : string; holder_age_s : float option }

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

val put : t -> key:string -> string -> unit
(** Publish a payload under [key], replacing any previous entry.
    Best-effort: on lock timeout or any I/O failure the write is
    dropped (counted in [write_failures]) and the store is left exactly
    as it was. *)

val put_result : t -> key:string -> string -> (unit, error) result
(** {!put} that names a dropped write's cause.  [Error (Lock_timeout _)]
    carries the lock path and the holder's age; the store is untouched
    and the caller simply keeps its in-memory copy (the pipeline
    degrades to recomputing on the next run).  A lock timeout also
    reaches the store's sink as an {!Dp_obs.Event.Fault} line (kind
    [cache-lock-timeout], disk [-1]) so contention shows up in the
    fault track, not silently as a generic write failure.  Plain I/O
    failures remain [Ok ()]: they are counted and reported through the
    [Cache] event as before. *)

val report_undecodable : t -> key:string -> unit
(** Quarantine an entry whose {e payload} the caller failed to decode
    even though the framing verified (e.g. a [Marshal] decode error
    after a code change without a {!format_version} bump).  Counts as a
    corrupt eviction. *)

(** {1 Accounting} *)

type counters = {
  hits : int;
  misses : int;
  corrupt : int;  (** entries quarantined after failing verification *)
  write_failures : int;  (** puts dropped (lock timeout, I/O error) *)
}

val counters : t -> counters
(** This store handle's cumulative operation counts (process-local). *)

val save_run_counters : t -> unit
(** Persist {!counters} to a [last-run.stats] file in the store
    directory (atomically; best-effort) so [dpcc cache stat] can report
    the previous invocation's hit rates. *)

val load_run_counters : dir:string -> counters option
(** The counters of the last completed run, if any. *)

(** {1 Store maintenance (static — no open store needed)} *)

type usage = {
  entries : int;
  bytes : int;  (** total size of live entries *)
  trace_entries : int;
      (** entries whose payload is a binary trace frame (sniffed by the
          {!Dp_trace.Bin.magic} leading bytes) — the rest are Marshal
          blobs *)
  trace_bytes : int;  (** total size of the binary-trace entries *)
  quarantined : int;  (** [*.corrupt] files awaiting inspection *)
  temp : int;  (** leftover [*.tmp*] files (crashed writers) *)
}

val usage : dir:string -> usage
(** Scan a store directory.  All zero when the directory is missing.
    The per-format split reads only each entry's first bytes, so the
    scan stays cheap however large the store. *)

val clear : dir:string -> int
(** Remove every entry, quarantined file, temporary file and stats
    file; returns the number of {e entries} removed.  The directory
    itself and its lock file are kept.  0 when the directory is
    missing. *)
