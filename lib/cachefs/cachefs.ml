module Fsx = Dp_util.Fsx
module Sink = Dp_obs.Sink
module Event = Dp_obs.Event

let format_version = 1
let magic = "dpowercache"

type counters = { hits : int; misses : int; corrupt : int; write_failures : int }

type t = {
  dir : string;
  sink : Sink.t;
  lock_timeout_ms : int;
  mutable hits : int;
  mutable misses : int;
  mutable corrupt : int;
  mutable write_failures : int;
}

let dir t = t.dir

let default_dir () =
  let nonempty = function Some s when s <> "" -> Some s | _ -> None in
  match nonempty (Sys.getenv_opt "DPOWER_CACHE_DIR") with
  | Some d -> d
  | None -> (
      match nonempty (Sys.getenv_opt "XDG_CACHE_HOME") with
      | Some d -> Filename.concat d "dpower"
      | None -> (
          match nonempty (Sys.getenv_opt "HOME") with
          | Some home -> Filename.concat (Filename.concat home ".cache") "dpower"
          | None -> Filename.concat (Filename.get_temp_dir_name ()) "dpower"))

let open_store ?(sink = Sink.null) ?(lock_timeout_ms = 2000) ~dir () =
  match
    Fsx.mkdirs dir;
    (* Probe writability now so every later failure is just a dropped
       write rather than a store that silently never works. *)
    let probe = Filename.concat dir (Printf.sprintf ".probe.%d" (Unix.getpid ())) in
    let oc = open_out_bin probe in
    close_out oc;
    Sys.remove probe
  with
  | () ->
      Ok { dir; sink; lock_timeout_ms; hits = 0; misses = 0; corrupt = 0; write_failures = 0 }
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "cache dir %s: %s" dir (Unix.error_message e))
  | exception Sys_error msg -> Error msg

let key ~parts =
  Digest.to_hex (Digest.string (String.concat "\x00" (string_of_int format_version :: parts)))

let entry_path t key = Filename.concat t.dir ("entry-" ^ key ^ ".bin")

let record t op ~key ~bytes =
  (match op with
  | `Hit -> t.hits <- t.hits + 1
  | `Miss -> t.misses <- t.misses + 1
  | `Corrupt -> t.corrupt <- t.corrupt + 1
  | `Write_failure -> t.write_failures <- t.write_failures + 1);
  if Sink.enabled t.sink then
    let name =
      match op with
      | `Hit -> "hit"
      | `Miss -> "miss"
      | `Corrupt -> "corrupt"
      | `Write_failure -> "write-failure"
    in
    Sink.emit t.sink
      (Event.Cache { at_ms = Unix.gettimeofday () *. 1000.; op = name; key; bytes })

(* --- advisory lock ---

   One lock file per store, exclusive fcntl lock while a writer
   publishes.  The file is unlinked on release so a clean store carries
   no residue; the unlink/re-create race is closed by re-checking after
   acquisition that the fd still names the path's inode (the standard
   lockfile-with-unlink protocol). *)

let lock_path t = Filename.concat t.dir "lock"

let same_inode (a : Unix.stats) (b : Unix.stats) =
  a.Unix.st_ino = b.Unix.st_ino && a.Unix.st_dev = b.Unix.st_dev

let acquire_lock t =
  let path = lock_path t in
  let deadline = Unix.gettimeofday () +. (float_of_int t.lock_timeout_ms /. 1000.) in
  let rec go () =
    match Unix.openfile path [ Unix.O_CREAT; Unix.O_WRONLY; Unix.O_CLOEXEC ] 0o644 with
    | exception Unix.Unix_error _ -> None
    | fd -> (
        match Unix.lockf fd Unix.F_TLOCK 0 with
        | () ->
            (* Locked — but if another process unlinked the file between
               our open and our lock, the lock protects a dead inode. *)
            if
              match Unix.stat path with
              | st -> same_inode st (Unix.fstat fd)
              | exception Unix.Unix_error _ -> false
            then Some fd
            else begin
              Unix.close fd;
              retry ()
            end
        | exception Unix.Unix_error ((Unix.EACCES | Unix.EAGAIN), _, _) ->
            Unix.close fd;
            retry ()
        | exception Unix.Unix_error _ ->
            Unix.close fd;
            None)
  and retry () =
    if Unix.gettimeofday () >= deadline then None
    else begin
      (try Unix.sleepf 0.005 with Unix.Unix_error _ -> ());
      go ()
    end
  in
  go ()

let release_lock t fd =
  (try Unix.unlink (lock_path t) with Unix.Unix_error _ -> ());
  (try Unix.lockf fd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* --- entry framing ---

   entry := "dpowercache <version>\n" "<payload-length>\n" payload
            "<md5-hex-of-payload>\n"
   Verified strictly on read: magic, version, exact length, checksum,
   and nothing after the trailer. *)

let frame payload =
  let b = Buffer.create (String.length payload + 64) in
  Buffer.add_string b (Printf.sprintf "%s %d\n" magic format_version);
  Buffer.add_string b (Printf.sprintf "%d\n" (String.length payload));
  Buffer.add_string b payload;
  Buffer.add_string b (Digest.to_hex (Digest.string payload));
  Buffer.add_char b '\n';
  Buffer.contents b

exception Corrupt of string

let parse_frame data =
  let len = String.length data in
  let line_end from =
    match String.index_from_opt data from '\n' with
    | Some i -> i
    | None -> raise (Corrupt "truncated header")
  in
  let e1 = line_end 0 in
  (match String.split_on_char ' ' (String.sub data 0 e1) with
  | [ m; v ] when m = magic ->
      if int_of_string_opt v <> Some format_version then raise (Corrupt "format version skew")
  | _ -> raise (Corrupt "bad magic"));
  let e2 = line_end (e1 + 1) in
  let payload_len =
    match int_of_string_opt (String.sub data (e1 + 1) (e2 - e1 - 1)) with
    | Some n when n >= 0 -> n
    | _ -> raise (Corrupt "bad length")
  in
  let payload_start = e2 + 1 in
  (* 32 hex digest chars + final newline *)
  if len <> payload_start + payload_len + 33 then raise (Corrupt "short read");
  let payload = String.sub data payload_start payload_len in
  let digest = String.sub data (payload_start + payload_len) 32 in
  if data.[len - 1] <> '\n' then raise (Corrupt "bad trailer");
  if not (String.equal digest (Digest.to_hex (Digest.string payload))) then
    raise (Corrupt "checksum mismatch");
  payload

let quarantine path =
  try Sys.rename path (path ^ ".corrupt")
  with Sys_error _ -> ( try Sys.remove path with Sys_error _ -> ())

let get t ~key =
  let path = entry_path t key in
  if not (Sys.file_exists path) then begin
    record t `Miss ~key ~bytes:0;
    None
  end
  else
    match parse_frame (Fsx.read_file path) with
    | payload ->
        record t `Hit ~key ~bytes:(String.length payload);
        Some payload
    | exception (Corrupt _ | Sys_error _ | End_of_file) ->
        quarantine path;
        record t `Corrupt ~key ~bytes:0;
        None

type error = Lock_timeout of { lock_path : string; holder_age_s : float option }

let error_to_string = function
  | Lock_timeout { lock_path; holder_age_s } ->
      Printf.sprintf "cache lock timeout: %s%s" lock_path
        (match holder_age_s with
        | Some age -> Printf.sprintf " (held for %.1f s)" age
        | None -> " (holder gone)")

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

(* How long the current holder has owned the lock: the lock file's age.
   The holder (re)creates the file when it acquires, and unlinks it on
   release, so mtime marks the start of the current ownership.  [None]
   when the file vanished between the timeout and the stat — the holder
   released just too late. *)
let holder_age_s t =
  match Unix.stat (lock_path t) with
  | st -> Some (Float.max 0.0 (Unix.gettimeofday () -. st.Unix.st_mtime))
  | exception Unix.Unix_error _ -> None

let record_lock_timeout t ~key err =
  t.write_failures <- t.write_failures + 1;
  ignore key;
  (* A lock timeout is contention, not a store defect: surface it on
     the fault track (disk -1: no disk owns a store-level event) so a
     soak run shows the contention alongside the injected faults. *)
  if Sink.enabled t.sink then
    Sink.emit t.sink
      (Event.Fault
         {
           disk = -1;
           at_ms = Unix.gettimeofday () *. 1000.;
           kind = "cache-lock-timeout: " ^ error_to_string err;
           cost_ms = float_of_int t.lock_timeout_ms;
         })

let put_result t ~key payload =
  match acquire_lock t with
  | None ->
      let err = Lock_timeout { lock_path = lock_path t; holder_age_s = holder_age_s t } in
      record_lock_timeout t ~key err;
      Error err
  | Some fd ->
      Fun.protect
        ~finally:(fun () -> release_lock t fd)
        (fun () ->
          match Fsx.atomic_write ~fsync:true (entry_path t key) (frame payload) with
          | () -> Ok ()
          | exception (Sys_error _ | Unix.Unix_error _) ->
              record t `Write_failure ~key ~bytes:(String.length payload);
              Ok ())

let put t ~key payload = match put_result t ~key payload with Ok () | Error _ -> ()

let report_undecodable t ~key =
  quarantine (entry_path t key);
  record t `Corrupt ~key ~bytes:0

let counters t =
  { hits = t.hits; misses = t.misses; corrupt = t.corrupt; write_failures = t.write_failures }

(* --- persisted last-run counters --- *)

let stats_file dir = Filename.concat dir "last-run.stats"

let save_run_counters t =
  let c = counters t in
  try
    Fsx.atomic_write (stats_file t.dir)
      (Printf.sprintf "hits %d\nmisses %d\ncorrupt %d\nwrite_failures %d\n" c.hits c.misses
         c.corrupt c.write_failures)
  with Sys_error _ | Unix.Unix_error _ -> ()

let load_run_counters ~dir =
  match Fsx.read_file (stats_file dir) with
  | exception Sys_error _ -> None
  | data -> (
      let field name line =
        match String.split_on_char ' ' line with
        | [ n; v ] when n = name -> int_of_string_opt v
        | _ -> None
      in
      match String.split_on_char '\n' data with
      | h :: m :: c :: w :: _ -> (
          match (field "hits" h, field "misses" m, field "corrupt" c, field "write_failures" w)
          with
          | Some hits, Some misses, Some corrupt, Some write_failures ->
              Some { hits; misses; corrupt; write_failures }
          | _ -> None)
      | _ -> None)

(* --- static maintenance --- *)

type usage = {
  entries : int;
  bytes : int;
  trace_entries : int;
  trace_bytes : int;
  quarantined : int;
  temp : int;
}

(* [Dp_trace.Bin.magic], mirrored here so the generic store does not
   depend on the trace layer.  Guarded by a test on both sides. *)
let trace_magic = "DPTB"

(* Does the entry's *payload* start with the binary-trace magic?  Reads
   only the first bytes of the file: the frame header is two short
   text lines ("dpowercache <version>\n<payload-length>\n"), so the
   payload start is within the first few dozen bytes. *)
let entry_payload_is_trace path =
  match open_in_bin path with
  | exception Sys_error _ -> false
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match really_input_string ic (min 64 (in_channel_length ic)) with
          | exception (End_of_file | Sys_error _) -> false
          | head -> (
              match String.index_opt head '\n' with
              | None -> false
              | Some e1 -> (
                  match String.index_from_opt head (e1 + 1) '\n' with
                  | None -> false
                  | Some e2 ->
                      let start = e2 + 1 in
                      String.length head >= start + String.length trace_magic
                      && String.sub head start (String.length trace_magic) = trace_magic)))

let is_entry name =
  String.length name > 10
  && String.sub name 0 6 = "entry-"
  && Filename.check_suffix name ".bin"

let is_quarantined name = Filename.check_suffix name ".corrupt"

let is_temp name =
  (* Fsx temp files: "<dest>.tmp.<pid>.<n>" *)
  let rec has_tmp i =
    i >= 0
    && (String.length name - i >= 5
        && String.sub name i 5 = ".tmp."
       || has_tmp (i - 1))
  in
  has_tmp (String.length name - 5)

let scan dir = match Sys.readdir dir with exception Sys_error _ -> [||] | names -> names

let usage ~dir =
  Array.fold_left
    (fun acc name ->
      let size () =
        match (Unix.stat (Filename.concat dir name)).Unix.st_size with
        | n -> n
        | exception Unix.Unix_error _ -> 0
      in
      if is_temp name then { acc with temp = acc.temp + 1 }
      else if is_quarantined name then { acc with quarantined = acc.quarantined + 1 }
      else if is_entry name then begin
        let sz = size () in
        let acc = { acc with entries = acc.entries + 1; bytes = acc.bytes + sz } in
        if entry_payload_is_trace (Filename.concat dir name) then
          {
            acc with
            trace_entries = acc.trace_entries + 1;
            trace_bytes = acc.trace_bytes + sz;
          }
        else acc
      end
      else acc)
    { entries = 0; bytes = 0; trace_entries = 0; trace_bytes = 0; quarantined = 0; temp = 0 }
    (scan dir)

let clear ~dir =
  Array.fold_left
    (fun removed name ->
      let stale =
        is_entry name || is_quarantined name || is_temp name
        || name = Filename.basename (stats_file dir)
      in
      if stale then (
        (try Sys.remove (Filename.concat dir name) with Sys_error _ -> ());
        if is_entry name then removed + 1 else removed)
      else removed)
    0 (scan dir)
