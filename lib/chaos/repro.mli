(** Self-contained reproducer directories.

    A directory holds the (shrunk) scenario's emitted [.dpl] source
    with its striping clauses, the knob spec, the access trace it
    generates (text format, fault window included), the
    expected-vs-got diff of every violation, and a one-line replay
    command.  All files are written atomically, so a reproducer is
    never observed half-built. *)

val program_file : string
val spec_file : string
val trace_file : string
val diff_file : string
val replay_file : string

val replay_command : ?sabotage:Check.sabotage -> dir:string -> unit -> string
(** The [dpcc chaos --replay] line that re-runs the directory. *)

val write : ?sabotage:Check.sabotage -> dir:string -> Scenario.t -> Check.outcome -> unit
(** Materialize the reproducer (creating [dir] as needed). *)

val load : dir:string -> (Scenario.t, string) result
(** Rebuild the scenario from a reproducer directory: parse the [.dpl]
    (program and striping), then the knob spec.  Errors echo the
    offending field or file. *)
