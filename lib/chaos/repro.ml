module Ir = Dp_ir.Ir
module Emit = Dp_lang.Emit
module Layout = Dp_layout.Layout
module Pipeline = Dp_pipeline.Pipeline
module Request = Dp_trace.Request
module Fsx = Dp_util.Fsx

let program_file = "scenario.dpl"
let spec_file = "scenario.spec"
let trace_file = "trace.txt"
let diff_file = "diff.txt"
let replay_file = "replay.cmd"

let replay_command ?sabotage ~dir () =
  Printf.sprintf "dpcc chaos --replay %s%s"
    (Filename.quote dir)
    (match sabotage with
    | Some sb -> " --sabotage " ^ Check.sabotage_name sb
    | None -> "")

let write ?sabotage ~dir (s : Scenario.t) (o : Check.outcome) =
  Fsx.mkdirs dir;
  let file name = Filename.concat dir name in
  let stripes =
    List.map (fun (name, st) -> (name, Emit.stripe_spec st)) s.Scenario.stripes
  in
  Fsx.atomic_write (file program_file) (Emit.to_string ~stripes s.Scenario.program);
  Fsx.atomic_write (file spec_file) (Scenario.to_spec s);
  Fsx.atomic_out (file trace_file) (fun oc ->
      Request.to_channel ?faults:s.Scenario.faults oc (Check.run_trace s));
  let diff =
    String.concat "\n"
      (Printf.sprintf "# %s" (Scenario.describe s)
      :: Printf.sprintf "# token %s, %d engine runs, %d requests" (Scenario.token_string s)
           o.Check.runs o.Check.requests
      :: List.map
           (fun (v : Check.violation) -> Printf.sprintf "%s: %s" v.Check.check v.Check.detail)
           o.Check.violations)
    ^ "\n"
  in
  Fsx.atomic_write (file diff_file) diff;
  Fsx.atomic_write (file replay_file) (replay_command ?sabotage ~dir () ^ "\n")

let load ~dir =
  let ( let* ) = Result.bind in
  let file name = Filename.concat dir name in
  let* ctx =
    match Pipeline.load (file program_file) with
    | ctx -> Ok ctx
    | exception (Failure msg | Sys_error msg) -> Error msg
  in
  let program = Pipeline.program ctx in
  let stripes =
    List.map
      (fun (e : Layout.entry) -> (e.Layout.decl.Ir.name, e.Layout.striping))
      (Pipeline.layout ctx).Layout.entries
  in
  let* spec =
    match Fsx.read_file (file spec_file) with
    | spec -> Ok spec
    | exception Sys_error msg -> Error msg
  in
  Scenario.of_spec ~program ~stripes spec
