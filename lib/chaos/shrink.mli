(** Greedy delta-debugging minimizer for a failing scenario.

    Dimensions shrink in order of leverage: whole loop nests, then
    statements inside surviving nests (unreferenced arrays and their
    striping overrides pruned along the way), then the fault schedule
    (drop entirely, halve the class list, halve rate / spike / stuck
    window), then the scalar knobs (procs to 1, mode to original,
    cluster to first-ref, scrub / spare / deadline off, policy to
    none).  Every candidate re-runs the full oracle and is kept only if
    it still fails, so the result is a genuine smaller witness, not a
    syntactic trim. *)

type stats = { attempts : int; kept : int }

val minimize : ?sabotage:Check.sabotage -> Scenario.t -> Scenario.t * stats
(** The input scenario must already fail {!Check.run} (under the same
    [sabotage]); otherwise minimization returns it unchanged with zero
    kept candidates. *)
