module Splitmix = Dp_util.Splitmix
module Prof = Dp_obs.Prof

type config = {
  seed : int;
  budget : int option;  (** scenario count; [None] means wall-clock bound *)
  wall_ms : float option;
  shrink : bool;
  sabotage : Check.sabotage option;
  out_dir : string;  (** reproducer directories land under here *)
}

let default_out_dir = "chaos-repros"

let default_config =
  {
    seed = 0;
    budget = None;
    wall_ms = None;
    shrink = false;
    sabotage = None;
    out_dir = default_out_dir;
  }

type finding = {
  scenario : Scenario.t;  (** as generated (the shrunk form is in [repro_dir]) *)
  outcome : Check.outcome;
  shrunk : Scenario.t option;
  shrink_stats : Shrink.stats option;
  repro_dir : string;
}

type summary = {
  scenarios : int;
  runs : int;
  findings : finding list;
  elapsed_ms : float;
}

let repro_dir_for cfg (s : Scenario.t) =
  Filename.concat cfg.out_dir ("repro-" ^ Scenario.token_string s)

let handle_failure cfg s outcome =
  let shrunk, shrink_stats =
    if cfg.shrink then begin
      let small, stats = Shrink.minimize ?sabotage:cfg.sabotage s in
      (Some small, Some stats)
    end
    else (None, None)
  in
  let dir = repro_dir_for cfg s in
  let written = Option.value shrunk ~default:s in
  let written_outcome =
    match shrunk with
    | Some small when small != s -> Check.run ?sabotage:cfg.sabotage small
    | _ -> outcome
  in
  Repro.write ?sabotage:cfg.sabotage ~dir written written_outcome;
  { scenario = s; outcome; shrunk; shrink_stats; repro_dir = dir }

let soak ?(progress = fun _ -> ()) cfg =
  let started = Unix.gettimeofday () in
  let elapsed_ms () = (Unix.gettimeofday () -. started) *. 1000.0 in
  let budget =
    match (cfg.budget, cfg.wall_ms) with
    | Some n, _ -> n
    | None, Some _ -> max_int
    | None, None -> 100
  in
  let within_wall () =
    match cfg.wall_ms with None -> true | Some limit -> elapsed_ms () < limit
  in
  let root = Splitmix.create cfg.seed in
  let runs = ref 0 in
  let findings = ref [] in
  let scenarios = ref 0 in
  while !scenarios < budget && within_wall () do
    let token = Splitmix.next_int64 root in
    let s = Prof.span "chaos.generate" (fun () -> Scenario.generate token) in
    let outcome = Check.run ?sabotage:cfg.sabotage s in
    incr scenarios;
    runs := !runs + outcome.Check.runs;
    if outcome.Check.violations <> [] then begin
      let f = handle_failure cfg s outcome in
      findings := f :: !findings
    end;
    progress (!scenarios, s, outcome)
  done;
  {
    scenarios = !scenarios;
    runs = !runs;
    findings = List.rev !findings;
    elapsed_ms = elapsed_ms ();
  }

let replay ?sabotage ~dir () =
  match Repro.load ~dir with
  | Error msg -> Error msg
  | Ok s -> Ok (s, Check.run ?sabotage s)
