(** The differential oracle: run one scenario under paired
    configurations that must agree — serial vs sharded, jobs 1 vs N,
    text vs binary trace, cold vs warm cache, a rate-0 fault window vs
    the clean engine — and check structural invariants on every run
    (energy conservation, per-state charge accounting, monotone event
    time per disk, SLO/availability consistency). *)

type sabotage = Energy_skew
(** Test-only invariant breakers, injected from the CLI so the
    shrinker's catch-and-minimize path can be exercised end to end.
    [Energy_skew] perturbs the observed power-span sum of disk 0 so the
    energy-conservation check must fire. *)

val sabotage_name : sabotage -> string
val sabotage_of_name : string -> sabotage option
val all_sabotages : sabotage list

type violation = { check : string; detail : string }
(** [check] is a stable slug ([pair:shards-4],
    [energy-conservation:base], ...); [detail] is the human line, with
    the first divergence excerpt for pair checks. *)

type outcome = { violations : violation list; runs : int; requests : int }

val run : ?sabotage:sabotage -> Scenario.t -> outcome
(** Execute every pair and every invariant for one scenario.  [runs]
    counts engine executions, [requests] the scenario's trace length. *)

val run_trace : Scenario.t -> Dp_trace.Request.t list
(** The scenario's access trace (for the reproducer directory). *)

val run_direct : Scenario.t -> unit
(** The same paired configurations with no oracle: no invariants, no
    artifacts, no observability.  The bench baseline that bounds the
    oracle's overhead. *)
