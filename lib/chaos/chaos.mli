(** The soak driver: draw scenario tokens from one root seed, run the
    differential oracle on each, shrink failures and materialize
    reproducer directories.

    Determinism contract: the [n]-th scenario of seed [S] is always the
    same, independent of how many failed before it or whether shrinking
    is on — tokens are drawn from the root stream, never from scenario
    work. *)

type config = {
  seed : int;
  budget : int option;  (** scenario count; [None] means wall-clock bound *)
  wall_ms : float option;
  shrink : bool;
  sabotage : Check.sabotage option;
  out_dir : string;  (** reproducer directories land under here *)
}

val default_out_dir : string

val default_config : config
(** seed 0, no shrinking, reproducers under {!default_out_dir}.  With
    neither [budget] nor [wall_ms], {!soak} runs 100 scenarios. *)

type finding = {
  scenario : Scenario.t;  (** as generated (the shrunk form is in [repro_dir]) *)
  outcome : Check.outcome;
  shrunk : Scenario.t option;
  shrink_stats : Shrink.stats option;
  repro_dir : string;
}

type summary = {
  scenarios : int;
  runs : int;  (** engine executions across all scenarios *)
  findings : finding list;
  elapsed_ms : float;
}

val soak :
  ?progress:(int * Scenario.t * Check.outcome -> unit) -> config -> summary
(** Run the soak.  [progress] fires after each scenario with its
    ordinal, the scenario and the oracle outcome. *)

val replay :
  ?sabotage:Check.sabotage ->
  dir:string ->
  unit ->
  (Scenario.t * Check.outcome, string) result
(** Re-run a reproducer directory through the oracle. *)
