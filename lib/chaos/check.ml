module Request = Dp_trace.Request
module Hint = Dp_trace.Hint
module Bin = Dp_trace.Bin
module Engine = Dp_disksim.Engine
module Disk_model = Dp_disksim.Disk_model
module Policy = Dp_disksim.Policy
module Repair = Dp_repair.Repair
module Fault_model = Dp_faults.Fault_model
module Pipeline = Dp_pipeline.Pipeline
module Cachefs = Dp_cachefs.Cachefs
module Account = Dp_serve.Account
module Event = Dp_obs.Event
module Sink = Dp_obs.Sink
module Prof = Dp_obs.Prof
module Report = Dp_obs.Report
module Json_out = Dp_harness.Json_out
module Fsx = Dp_util.Fsx

type sabotage = Energy_skew

let sabotage_name = function Energy_skew -> "energy"
let sabotage_of_name = function "energy" -> Some Energy_skew | _ -> None
let all_sabotages = [ Energy_skew ]

type violation = { check : string; detail : string }
type outcome = { violations : violation list; runs : int; requests : int }

let shard_counts = [ 2; 4; 8 ]

(* --- canonical artifacts ---

   One run rendered as precise JSON (shortest round-trip floats): the
   result header, every per-disk statistic, and the per-disk
   observability report when the run recorded events.  Two runs that
   should be byte-identical must produce equal strings. *)

let json_of_stats (s : Engine.disk_stats) =
  Json_out.Obj
    [
      ("disk", Json_out.Int s.Engine.disk);
      ("requests", Json_out.Int s.Engine.requests);
      ("energy_j", Json_out.Float s.Engine.energy_j);
      ("busy_ms", Json_out.Float s.Engine.busy_ms);
      ("idle_ms", Json_out.Float s.Engine.idle_ms);
      ("standby_ms", Json_out.Float s.Engine.standby_ms);
      ("transition_ms", Json_out.Float s.Engine.transition_ms);
      ("spin_downs", Json_out.Int s.Engine.spin_downs);
      ("spin_ups", Json_out.Int s.Engine.spin_ups);
      ("speed_changes", Json_out.Int s.Engine.speed_changes);
      ("spin_up_retries", Json_out.Int s.Engine.spin_up_retries);
      ("media_retries", Json_out.Int s.Engine.media_retries);
      ("latency_spikes", Json_out.Int s.Engine.latency_spikes);
      ("degraded_ms", Json_out.Float s.Engine.degraded_ms);
      ("remaps", Json_out.Int s.Engine.remaps);
      ("remap_penalty_hits", Json_out.Int s.Engine.remap_penalty_hits);
      ("scrub_chunks", Json_out.Int s.Engine.scrub_chunks);
      ("scrub_found", Json_out.Int s.Engine.scrub_found);
      ("reconstructions", Json_out.Int s.Engine.reconstructions);
      ("rebuild_chunks", Json_out.Int s.Engine.rebuild_chunks);
      ("failovers", Json_out.Int s.Engine.failovers);
      ("disk_failures", Json_out.Int s.Engine.disk_failures);
      ("rebuilds_completed", Json_out.Int s.Engine.rebuilds_completed);
      ("response_ms_total", Json_out.Float s.Engine.response_ms_total);
      ("response_ms_max", Json_out.Float s.Engine.response_ms_max);
      ("last_completion_ms", Json_out.Float s.Engine.last_completion_ms);
    ]

let artifact (r : Engine.result) =
  Json_out.to_string_precise
    (Json_out.Obj
       [
         ("policy", Json_out.String r.Engine.policy);
         ("energy_j", Json_out.Float r.Engine.energy_j);
         ("io_time_ms", Json_out.Float r.Engine.io_time_ms);
         ("makespan_ms", Json_out.Float r.Engine.makespan_ms);
         ("per_disk", Json_out.List (Array.to_list (Array.map json_of_stats r.Engine.per_disk)));
       ])

(* Where two canonical artifacts first diverge, for the reproducer's
   expected-vs-got diff. *)
let first_divergence a b =
  if String.equal a b then None
  else begin
    let n = min (String.length a) (String.length b) in
    let rec go i = if i < n && a.[i] = b.[i] then go (i + 1) else i in
    let at = go 0 in
    let context s =
      let lo = max 0 (at - 40) in
      let hi = min (String.length s) (at + 40) in
      String.sub s lo (hi - lo)
    in
    Some
      (Printf.sprintf "diverges at byte %d: expected ...%s... got ...%s..." at (context a)
         (context b))
  end

(* The observability half of a pair comparison: the event streams must
   match structurally (the engine re-merges shard groups back into
   serial order, so equal runs mean equal streams).  The JSONL report
   is only rendered when they differ — byte-identity diagnostics
   without paying the rendering on every green pair. *)
let compare_observed ~add label (base_r, base_events) (r, events) =
  match first_divergence (artifact base_r) (artifact r) with
  | Some d -> add (Printf.sprintf "pair:%s" label) d
  | None ->
      if base_events <> events then begin
        let disks = Array.length base_r.Engine.per_disk in
        let render evs = Report.jsonl (Report.of_events ~disks evs) in
        let d =
          Option.value
            (first_divergence (render base_events) (render events))
            ~default:
              (Printf.sprintf "event streams differ (%d vs %d events, equal reports)"
                 (List.length base_events) (List.length events))
        in
        add (Printf.sprintf "pair:%s" label) ("obs " ^ d)
      end

(* --- structural invariants of one run --- *)

let close ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. Float.max 1.0 (Float.abs b)

let obs_invariants ?sabotage ~label ~add (r : Engine.result) events =
  let n = Array.length r.Engine.per_disk in
  let e_sum = Array.make n 0.0 in
  let state_ms = Array.make_matrix n 4 0.0 in
  (* Events are emitted when they resolve but timestamped at their
     start (a power span closes long after it began), so global
     per-disk time is not monotone — but within one disk and one event
     category, emission order must follow the clock. *)
  let category = function
    | Event.Power _ -> 0
    | Event.Service _ -> 1
    | Event.Hint_exec _ -> 2
    | Event.Fault _ -> 3
    | Event.Decision _ -> 4
    | Event.Cache _ -> 5
    | Event.Repair _ -> 6
    | Event.Deadline _ -> 7
  in
  let last_t = Array.make_matrix n 8 Float.neg_infinity in
  List.iter
    (fun ev ->
      (match ev with
      | Event.Cache _ -> ()
      | _ ->
          let d = Event.disk ev in
          if d >= 0 && d < n then begin
            let tm = Event.time_ms ev in
            let c = category ev in
            if tm +. 1e-6 < last_t.(d).(c) then
              add
                (Printf.sprintf "monotone-time:%s" label)
                (Printf.sprintf "disk %d: category-%d event at %.6f ms after one at %.6f ms"
                   d c tm last_t.(d).(c));
            if tm > last_t.(d).(c) then last_t.(d).(c) <- tm
          end);
      match ev with
      | Event.Power { disk; state; charge_ms; energy_j; _ } when disk >= 0 && disk < n ->
          e_sum.(disk) <- e_sum.(disk) +. energy_j;
          let slot =
            match state with
            | Event.Active -> 0
            | Event.Idle _ -> 1
            | Event.Standby -> 2
            | Event.Transition -> 3
          in
          state_ms.(disk).(slot) <- state_ms.(disk).(slot) +. charge_ms
      | _ -> ())
    events;
  (match sabotage with
  | Some Energy_skew when n > 0 ->
      (* Test-only hook: skew the observed sum so the conservation
         check must fire — the shrinker's acceptance scenario. *)
      e_sum.(0) <- e_sum.(0) +. 1e-3
  | _ -> ());
  Array.iteri
    (fun d (s : Engine.disk_stats) ->
      if not (close e_sum.(d) s.Engine.energy_j) then
        add
          (Printf.sprintf "energy-conservation:%s" label)
          (Printf.sprintf "disk %d: obs power spans sum to %.9f J, engine accounted %.9f J"
             d e_sum.(d) s.Engine.energy_j);
      List.iteri
        (fun slot (name, accounted) ->
          ignore slot;
          if not (close state_ms.(d).(slot) accounted) then
            add
              (Printf.sprintf "charge-accounting:%s" label)
              (Printf.sprintf "disk %d: obs %s spans sum to %.6f ms, stats say %.6f ms" d
                 name state_ms.(d).(slot) accounted))
        [
          ("busy", s.Engine.busy_ms);
          ("idle", s.Engine.idle_ms);
          ("standby", s.Engine.standby_ms);
          ("transition", s.Engine.transition_ms);
        ])
    r.Engine.per_disk

let slo_invariants ~label ~add (r : Engine.result) (summary : Account.summary) =
  if not (close summary.Account.energy_j r.Engine.energy_j) then
    add
      (Printf.sprintf "slo-energy:%s" label)
      (Printf.sprintf "accounting saw %.9f J, engine %.9f J" summary.Account.energy_j
         r.Engine.energy_j);
  let attributed = summary.Account.attributed_j +. summary.Account.unattributed_j in
  if not (close ~eps:1e-6 attributed summary.Account.energy_j) then
    add
      (Printf.sprintf "slo-attribution:%s" label)
      (Printf.sprintf "attributed %.9f + unattributed %.9f J != total %.9f J"
         summary.Account.attributed_j summary.Account.unattributed_j
         summary.Account.energy_j);
  match summary.Account.slo with
  | None ->
      add (Printf.sprintf "slo-missing:%s" label) "deadline armed but no SLO accounting"
  | Some slo ->
      if slo.Account.abandoned > slo.Account.violations then
        add
          (Printf.sprintf "slo-counts:%s" label)
          (Printf.sprintf "%d abandoned > %d violations" slo.Account.abandoned
             slo.Account.violations);
      if slo.Account.availability < 0.0 || slo.Account.availability > 1.0 then
        add
          (Printf.sprintf "slo-availability:%s" label)
          (Printf.sprintf "availability %.9f outside [0, 1]" slo.Account.availability);
      if summary.Account.requests > 0 then begin
        let expected =
          1.0
          -. (float_of_int slo.Account.abandoned /. float_of_int summary.Account.requests)
        in
        if not (close slo.Account.availability expected) then
          add
            (Printf.sprintf "slo-availability:%s" label)
            (Printf.sprintf "availability %.9f, but 1 - %d/%d = %.9f"
               slo.Account.availability slo.Account.abandoned summary.Account.requests
               expected)
      end

(* --- the differential oracle --- *)

let cache_dir_counter = Atomic.make 0

let run ?sabotage (s : Scenario.t) =
  Prof.span "chaos.check" @@ fun () ->
  let ctx = Scenario.context s in
  let disks = Pipeline.disks ctx in
  let trace = Pipeline.trace ~cluster:s.Scenario.cluster ctx ~procs:s.Scenario.procs s.Scenario.mode in
  let policy = Scenario.policy s in
  let hints =
    Pipeline.hints_for ~cluster:s.Scenario.cluster ctx ~procs:s.Scenario.procs ~policy
      s.Scenario.mode
  in
  let repair =
    if s.Scenario.scrub_ms > 0.0 then Some (Repair.config ~scrub_budget_ms:s.Scenario.scrub_ms ())
    else None
  in
  let model =
    match s.Scenario.spare with
    | None -> Disk_model.ultrastar_36z15
    | Some n -> { Disk_model.ultrastar_36z15 with Disk_model.spare_blocks = n }
  in
  let runs = ref 0 in
  let violations = ref [] in
  let add check detail = violations := { check; detail } :: !violations in
  let simulate ?faults ?obs ?record_timeline ?shards ?(hints = hints) policy =
    incr runs;
    Engine.simulate ~model ?obs ?record_timeline ?shards ~hints ?faults ?repair
      ?deadline_ms:s.Scenario.deadline_ms ~disks policy trace
  in
  (* One observed run: a stream sink collecting every event (in the
     engine's re-merged serial order), optionally fanned into the SLO
     recorder. *)
  let observed ?faults ?shards ?(invariants = true) ?(timeline = false) label =
    Prof.span "chaos.observed" @@ fun () ->
    let acc = ref [] in
    let account =
      match s.Scenario.deadline_ms with
      | Some d when invariants ->
          Some (Account.recorder ~deadline_ms:d ~tenants:(max 1 s.Scenario.procs) ~disks ())
      | _ -> None
    in
    let sink =
      Sink.stream (fun e ->
          acc := e :: !acc;
          match account with Some (snk, _) -> Sink.emit snk e | None -> ())
    in
    let r = simulate ?faults ?shards ~obs:sink ~record_timeline:timeline policy in
    let events = List.rev !acc in
    if invariants then begin
      (* Without a timeline the conservation check still folds the
         per-disk energies; the segment-contiguity half needs the
         recorded timeline and runs on the base leg only. *)
      (match Engine.check_conservation r with
      | Ok () -> ()
      | Error detail -> add (Printf.sprintf "conservation:%s" label) detail);
      obs_invariants ?sabotage ~label ~add r events;
      match account with
      | Some (_, finish) -> slo_invariants ~label ~add r (finish ())
      | None -> ()
    end;
    (r, events)
  in
  let base = observed ?faults:s.Scenario.faults ~timeline:true "base" in
  (* Pair: serial vs sharded {2, 4, 8}.  Invariants run on every
     variant too — a shard-only conservation break should be caught
     even if the artifacts happen to agree. *)
  List.iter
    (fun k ->
      let v = observed ?faults:s.Scenario.faults ~shards:k (Printf.sprintf "shards-%d" k) in
      compare_observed ~add (Printf.sprintf "shards-%d" k) base v)
    shard_counts;
  (* Pair: a rate-0 fault window vs the clean engine. *)
  (match s.Scenario.faults with
  | None -> ()
  | Some f ->
      let zero = { f with Fault_model.rate = 0.0 } in
      let z = observed ~faults:zero ~invariants:false "rate0" in
      let c = observed ~invariants:false "clean" in
      compare_observed ~add "rate0-clean" c z);
  (* Pair: text vs binary trace round-trip (both directions of the
     codec over the quantized trace, hints and fault window). *)
  Prof.span "chaos.pair.textbin" (fun () ->
    let qs = List.map Bin.quantize trace in
    let qh = List.map Bin.quantize_hint hints in
    let render rs = String.concat "\n" (List.map (Format.asprintf "%a" Request.pp) rs) in
    let render_h hs = String.concat "\n" (List.map (Format.asprintf "%a" Hint.pp) hs) in
    match Bin.decode (Bin.encode ~hints:qh ?faults:s.Scenario.faults qs) with
    | Error e -> add "pair:text-bin" (Bin.error_to_string e)
    | Ok (reqs', hints', faults', _) ->
        (* Structural equality first; the text rendering only prices in
           when a divergence needs localising. *)
        (if qs <> reqs' then
           match first_divergence (render qs) (render reqs') with
           | None -> add "pair:text-bin" "requests differ (equal rendering)"
           | Some d -> add "pair:text-bin" ("requests " ^ d));
        (if qh <> hints' then
           match first_divergence (render_h qh) (render_h hints') with
           | None -> add "pair:text-bin" "hints differ (equal rendering)"
           | Some d -> add "pair:text-bin" ("hints " ^ d));
        let spec = Option.map Fault_model.to_spec in
        if spec faults' <> spec s.Scenario.faults then
          add "pair:text-bin"
            (Printf.sprintf "fault window %s round-tripped as %s"
               (Option.value ~default:"-" (spec s.Scenario.faults))
               (Option.value ~default:"-" (spec faults'))));
  (* Pair: cold vs warm persistent cache against the in-memory trace.
     A store that cannot even open (exotic tmp) skips the pair — that
     is an environment failure, not an engine one. *)
  Prof.span "chaos.pair.cache" (fun () ->
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "dpchaos-%d-%d" (Unix.getpid ()) (Atomic.fetch_and_add cache_dir_counter 1))
    in
    Fun.protect
      ~finally:(fun () -> Fsx.remove_tree dir)
      (fun () ->
        match Cachefs.open_store ~dir () with
        | Error _ -> ()
        | Ok store ->
            let fetch label =
              let c = Scenario.context ~cache:store s in
              let t =
                Pipeline.trace ~cluster:s.Scenario.cluster c ~procs:s.Scenario.procs
                  s.Scenario.mode
              in
              if t <> trace then begin
                let render rs =
                  String.concat "\n" (List.map (Format.asprintf "%a" Request.pp) rs)
                in
                match first_divergence (render trace) (render t) with
                | None ->
                    add (Printf.sprintf "pair:cache-%s" label) "traces differ (equal rendering)"
                | Some d -> add (Printf.sprintf "pair:cache-%s" label) d
              end
            in
            fetch "cold";
            fetch "warm"));
  (* Pair: --jobs 1 vs N over the scenario's policy rows (the adaptive
     row always included).  Hint streams are prebuilt so the pool maps
     over pure engine runs. *)
  Prof.span "chaos.pair.jobs" (fun () ->
    let rows = List.sort_uniq compare [ "none"; s.Scenario.policy; "online" ] in
    let prepared =
      List.map
        (fun key ->
          let p = Option.get (Scenario.policy_of_key key) in
          let h =
            Pipeline.hints_for ~cluster:s.Scenario.cluster ctx ~procs:s.Scenario.procs
              ~policy:p s.Scenario.mode
          in
          (key, p, h))
        rows
    in
    let run_row (_, p, h) = artifact (simulate ~hints:h ?faults:s.Scenario.faults p) in
    (* [runs] is bumped inside the pool: count the parallel leg outside
       to keep the counter race-free. *)
    let serial = Prof.span "chaos.pair.jobs.serial" (fun () -> List.map run_row prepared) in
    let n_before = !runs in
    let parallel =
      Prof.span "chaos.pair.jobs.pool" @@ fun () ->
      Dp_util.Domain_pool.map ~jobs:4
        (fun (_, p, h) ->
          Engine.simulate ~model ~hints:h ?faults:s.Scenario.faults ?repair
            ?deadline_ms:s.Scenario.deadline_ms ~disks p trace
          |> artifact)
        prepared
    in
    runs := n_before + List.length prepared;
    List.iteri
      (fun i ((key, _, _), (a, b)) ->
        ignore i;
        match first_divergence a b with
        | None -> ()
        | Some d -> add (Printf.sprintf "pair:jobs-%s" key) d)
      (List.combine prepared (List.combine serial parallel)));
  { violations = List.rev !violations; runs = !runs; requests = List.length trace }

let run_trace (s : Scenario.t) =
  let ctx = Scenario.context s in
  Pipeline.trace ~cluster:s.Scenario.cluster ctx ~procs:s.Scenario.procs s.Scenario.mode

(* The cost baseline the bench section compares the oracle against:
   running the same paired configurations directly, with no invariant
   checking, no artifacts and no observability. *)
let run_direct (s : Scenario.t) =
  let ctx = Scenario.context s in
  let disks = Pipeline.disks ctx in
  let trace = Pipeline.trace ~cluster:s.Scenario.cluster ctx ~procs:s.Scenario.procs s.Scenario.mode in
  let policy = Scenario.policy s in
  let hints =
    Pipeline.hints_for ~cluster:s.Scenario.cluster ctx ~procs:s.Scenario.procs ~policy
      s.Scenario.mode
  in
  let repair =
    if s.Scenario.scrub_ms > 0.0 then Some (Repair.config ~scrub_budget_ms:s.Scenario.scrub_ms ())
    else None
  in
  let model =
    match s.Scenario.spare with
    | None -> Disk_model.ultrastar_36z15
    | Some n -> { Disk_model.ultrastar_36z15 with Disk_model.spare_blocks = n }
  in
  let go ?faults ?shards p h =
    ignore
      (Engine.simulate ~model ?shards ~hints:h ?faults ?repair
         ?deadline_ms:s.Scenario.deadline_ms ~disks p trace)
  in
  go ?faults:s.Scenario.faults policy hints;
  List.iter (fun k -> go ?faults:s.Scenario.faults ~shards:k policy hints) shard_counts;
  (match s.Scenario.faults with
  | None -> ()
  | Some f ->
      go ~faults:{ f with Fault_model.rate = 0.0 } policy hints;
      go policy hints);
  (* The oracle's cache pair re-derives the trace twice through a
     persistent store; the baseline pays the same pipeline cost. *)
  begin
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "dpchaos-direct-%d-%d" (Unix.getpid ())
           (Atomic.fetch_and_add cache_dir_counter 1))
    in
    Fun.protect
      ~finally:(fun () -> Fsx.remove_tree dir)
      (fun () ->
        match Cachefs.open_store ~dir () with
        | Error _ -> ()
        | Ok store ->
            for _ = 1 to 2 do
              let c = Scenario.context ~cache:store s in
              ignore
                (Pipeline.trace ~cluster:s.Scenario.cluster c ~procs:s.Scenario.procs
                   s.Scenario.mode)
            done)
  end;
  (* The jobs pair really does run its second leg on a domain pool —
     the baseline prices that in too, or the gate would charge domain
     spawn-up to the oracle. *)
  let prepared =
    List.map
      (fun key ->
        let p = Option.get (Scenario.policy_of_key key) in
        let h =
          Pipeline.hints_for ~cluster:s.Scenario.cluster ctx ~procs:s.Scenario.procs ~policy:p
            s.Scenario.mode
        in
        (p, h))
      (List.sort_uniq compare [ "none"; s.Scenario.policy; "online" ])
  in
  List.iter (fun (p, h) -> go ?faults:s.Scenario.faults p h) prepared;
  ignore
    (Dp_util.Domain_pool.map ~jobs:4
       (fun (p, h) ->
         Engine.simulate ~model ~hints:h ?faults:s.Scenario.faults ?repair
           ?deadline_ms:s.Scenario.deadline_ms ~disks p trace)
       prepared)
