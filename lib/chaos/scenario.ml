module Ir = Dp_ir.Ir
module App = Dp_workloads.App
module Striping = Dp_layout.Striping
module Cluster = Dp_restructure.Cluster
module Pipeline = Dp_pipeline.Pipeline
module Policy = Dp_disksim.Policy
module Fault_model = Dp_faults.Fault_model
module Splitmix = Dp_util.Splitmix

type t = {
  token : int64 option;
  program : Ir.program;
  stripes : (string * Striping.t) list;
  faults : Fault_model.t option;
  procs : int;
  mode : Pipeline.mode;
  cluster : Cluster.policy;
  policy : string;
  scrub_ms : float;
  spare : int option;
  deadline_ms : float option;
}

let policy_keys = [ "none"; "tpm"; "tpm-proactive"; "drpm"; "drpm-proactive"; "online" ]

let policy_of_key = function
  | "none" -> Some Policy.No_pm
  | "tpm" -> Some Policy.default_tpm
  | "tpm-proactive" -> Some (Policy.tpm ~proactive:true ())
  | "drpm" -> Some Policy.default_drpm
  | "drpm-proactive" -> Some (Policy.drpm ~proactive:true ())
  | "online" -> Some Policy.default_adaptive
  | _ -> None

let policy t =
  match policy_of_key t.policy with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Scenario.policy: unknown key %S" t.policy)

let token_string t =
  match t.token with Some tok -> Printf.sprintf "%016Lx" tok | None -> "-"

(* --- generation ---

   Everything is drawn from sub-streams split off one root, in a fixed
   order, so a token fully determines the scenario and shrinking one
   dimension never perturbs how another would regenerate. *)

let pick rng xs = List.nth xs (Splitmix.int rng ~bound:(List.length xs))

let gen_program rng =
  let k = App.counter () in
  let rows = 4 + Splitmix.int rng ~bound:7 in
  let cols = 3 + Splitmix.int rng ~bound:6 in
  let n_state = 2 + Splitmix.int rng ~bound:2 in
  let state = List.filteri (fun i _ -> i < n_state) [ "a"; "b"; "c" ] in
  let n_nests = 1 + Splitmix.int rng ~bound:4 in
  let arrays =
    List.map
      (fun name -> Ir.array_decl ~elem_size:App.page_bytes name [ rows; cols ])
      state
    @ [ Ir.array_decl ~elem_size:App.page_bytes "s" [ n_nests ] ]
  in
  let nests =
    List.init n_nests (fun slot ->
        let cycles = pick rng [ 600_000; 1_300_000; 2_600_000 ] in
        let src = pick rng state in
        match Splitmix.int rng ~bound:3 with
        | 0 -> App.sweep_nest k ~cycles ~src ~dst:(pick rng state) ~rows ~cols ()
        | 1 -> App.copy_nest k ~cycles ~src ~dst:(pick rng state) ~rows ~cols ()
        | _ -> App.reduction_nest k ~cycles ~src ~acc:"s" ~slot ~rows ~cols ())
  in
  Ir.program arrays nests

let gen_stripes rng (program : Ir.program) =
  List.map
    (fun (a : Ir.array_decl) ->
      let row_pages =
        match a.Ir.dims with [] -> 1 | _ :: rest -> List.fold_left ( * ) 1 rest
      in
      let factor = pick rng [ 4; 8 ] in
      let rows_per_stripe = 1 + Splitmix.int rng ~bound:2 in
      ( a.Ir.name,
        Striping.make
          ~unit_bytes:(rows_per_stripe * row_pages * a.Ir.elem_size)
          ~factor
          ~start_disk:(Splitmix.int rng ~bound:factor) ))
    program.Ir.arrays

let gen_faults rng =
  if not (Splitmix.bool rng ~p:0.75) then None
  else begin
    let classes =
      match List.filter (fun _ -> Splitmix.bool rng ~p:0.5) Fault_model.all_classes with
      | [] -> [ pick rng Fault_model.all_classes ]
      | cs -> cs
    in
    let seed = Splitmix.int rng ~bound:10_000 in
    let rate = pick rng [ 0.01; 0.05; 0.2; 0.5 ] in
    Some (Fault_model.make ~classes ~seed ~rate ())
  end

let generate token =
  let root = Splitmix.create (Int64.to_int token) in
  let prog_rng = Splitmix.split root in
  let layout_rng = Splitmix.split root in
  let fault_rng = Splitmix.split root in
  let knob_rng = Splitmix.split root in
  let program = gen_program prog_rng in
  let stripes = gen_stripes layout_rng program in
  let faults = gen_faults fault_rng in
  let procs = pick knob_rng [ 1; 2; 4 ] in
  let mode =
    if procs = 1 then pick knob_rng [ Pipeline.Original; Pipeline.Reuse_single ]
    else pick knob_rng [ Pipeline.Original; Pipeline.Reuse_single; Pipeline.Reuse_multi ]
  in
  let cluster = pick knob_rng Cluster.all_policies in
  let policy = pick knob_rng policy_keys in
  let scrub_ms = pick knob_rng [ 0.0; 0.0; 25.0 ] in
  let spare = pick knob_rng [ None; None; Some 32 ] in
  let deadline_ms = pick knob_rng [ None; None; Some 400.0 ] in
  {
    token = Some token;
    program;
    stripes;
    faults;
    procs;
    mode;
    cluster;
    policy;
    scrub_ms;
    spare;
    deadline_ms;
  }

(* --- the pipeline context of a scenario --- *)

let context ?cache t =
  Pipeline.create ?cache ~origin:"chaos" ~overrides:t.stripes t.program

(* --- spec (de)serialization ---

   The knob half of a scenario as a small key-value text file; the
   program half travels separately as emitted [.dpl] source (which
   carries the striping clauses).  Together the two files replay a
   scenario exactly — shrunk or not. *)

let cluster_of_name name =
  List.find_opt (fun p -> Cluster.policy_name p = name) Cluster.all_policies

let to_spec t =
  let opt_f = function Some v -> Printf.sprintf "%.17g" v | None -> "-" in
  let opt_i = function Some v -> string_of_int v | None -> "-" in
  String.concat "\n"
    [
      "chaos-scenario 1";
      "token " ^ token_string t;
      ("faults " ^ match t.faults with Some f -> Fault_model.to_spec f | None -> "-");
      Printf.sprintf "procs %d" t.procs;
      "mode " ^ Pipeline.mode_name t.mode;
      "cluster " ^ Cluster.policy_name t.cluster;
      "policy " ^ t.policy;
      Printf.sprintf "scrub-ms %.17g" t.scrub_ms;
      "spare " ^ opt_i t.spare;
      "deadline-ms " ^ opt_f t.deadline_ms;
      "";
    ]

let of_spec ~program ~stripes spec =
  let ( let* ) = Result.bind in
  let lines =
    List.filteri
      (fun _ l -> String.trim l <> "")
      (String.split_on_char '\n' spec)
  in
  let* fields =
    List.fold_left
      (fun acc line ->
        let* acc = acc in
        match String.index_opt line ' ' with
        | Some i ->
            let k = String.sub line 0 i in
            let v = String.sub line (i + 1) (String.length line - i - 1) in
            Ok ((k, String.trim v) :: acc)
        | None -> Error (Printf.sprintf "malformed spec line %S (expected KEY VALUE)" line))
      (Ok []) lines
  in
  let field k =
    match List.assoc_opt k fields with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "spec is missing the %S field" k)
  in
  let* version = field "chaos-scenario" in
  let* () =
    if version = "1" then Ok ()
    else Error (Printf.sprintf "unsupported chaos-scenario version %S" version)
  in
  let* token_s = field "token" in
  let* token =
    if token_s = "-" then Ok None
    else
      match Int64.of_string_opt ("0x" ^ token_s) with
      | Some tok -> Ok (Some tok)
      | None -> Error (Printf.sprintf "bad token %S (expected 16 hex digits)" token_s)
  in
  let* faults_s = field "faults" in
  let* faults =
    if faults_s = "-" then Ok None
    else Result.map Option.some (Fault_model.of_spec faults_s)
  in
  let* procs_s = field "procs" in
  let* procs =
    match int_of_string_opt procs_s with
    | Some n when n >= 1 -> Ok n
    | _ -> Error (Printf.sprintf "bad procs %S (expected a positive integer)" procs_s)
  in
  let* mode_s = field "mode" in
  let* mode =
    match Pipeline.mode_of_name mode_s with
    | Some m -> Ok m
    | None -> Error (Printf.sprintf "bad mode %S (expected original | single | multi)" mode_s)
  in
  let* cluster_s = field "cluster" in
  let* cluster =
    match cluster_of_name cluster_s with
    | Some c -> Ok c
    | None ->
        Error
          (Printf.sprintf "bad cluster %S (expected first-ref | min-disk | majority)"
             cluster_s)
  in
  let* policy_s = field "policy" in
  let* policy =
    if List.mem policy_s policy_keys then Ok policy_s
    else
      Error
        (Printf.sprintf "bad policy %S (expected %s)" policy_s
           (String.concat " | " policy_keys))
  in
  let* scrub_s = field "scrub-ms" in
  let* scrub_ms =
    match float_of_string_opt scrub_s with
    | Some v when v >= 0.0 -> Ok v
    | _ -> Error (Printf.sprintf "bad scrub-ms %S (expected a non-negative float)" scrub_s)
  in
  let* spare_s = field "spare" in
  let* spare =
    if spare_s = "-" then Ok None
    else
      match int_of_string_opt spare_s with
      | Some n when n >= 1 -> Ok (Some n)
      | _ -> Error (Printf.sprintf "bad spare %S (expected a positive integer or -)" spare_s)
  in
  let* deadline_s = field "deadline-ms" in
  let* deadline_ms =
    if deadline_s = "-" then Ok None
    else
      match float_of_string_opt deadline_s with
      | Some v when v > 0.0 -> Ok (Some v)
      | _ ->
          Error (Printf.sprintf "bad deadline-ms %S (expected a positive float or -)" deadline_s)
  in
  let* () =
    if mode = Pipeline.Reuse_multi && procs = 1 then
      Error "mode multi needs procs > 1 (the layout-aware scheme tours disk shares)"
    else Ok ()
  in
  Ok
    {
      token;
      program;
      stripes;
      faults;
      procs;
      mode;
      cluster;
      policy;
      scrub_ms;
      spare;
      deadline_ms;
    }

(* --- shape accounting (what the shrinker minimizes) --- *)

let nest_count t = List.length t.program.Ir.nests
let fault_class_count t =
  match t.faults with None -> 0 | Some f -> List.length f.Fault_model.classes

let describe t =
  Format.asprintf "%d nest%s, %d array%s, %s faults, procs %d, mode %s, %s, policy %s%s%s%s"
    (nest_count t)
    (if nest_count t = 1 then "" else "s")
    (List.length t.program.Ir.arrays)
    (if List.length t.program.Ir.arrays = 1 then "" else "s")
    (match t.faults with Some f -> Fault_model.to_spec f | None -> "no")
    t.procs (Pipeline.mode_name t.mode)
    (Cluster.policy_name t.cluster)
    t.policy
    (if t.scrub_ms > 0.0 then Printf.sprintf ", scrub %g ms" t.scrub_ms else "")
    (match t.spare with Some n -> Printf.sprintf ", spare %d" n | None -> "")
    (match t.deadline_ms with Some d -> Printf.sprintf ", deadline %g ms" d | None -> "")
