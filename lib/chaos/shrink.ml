module Ir = Dp_ir.Ir
module Pipeline = Dp_pipeline.Pipeline
module Cluster = Dp_restructure.Cluster
module Fault_model = Dp_faults.Fault_model
module Prof = Dp_obs.Prof

type stats = { attempts : int; kept : int }

(* A candidate replaces the current scenario when the oracle still
   fails on it.  Greedy delta debugging: program first (the expensive
   dimension), then the fault schedule, then the scalar knobs. *)

let still_fails ?sabotage s =
  match Check.run ?sabotage s with
  | { Check.violations = []; _ } -> false
  | _ -> true
  | exception _ ->
      (* A candidate that crashes the pipeline outright (e.g. a program
         whose only remaining nest no longer references an array) is
         not a smaller witness of the original violation. *)
      false

(* Arrays that no remaining nest references are dropped together with
   their striping overrides, keeping emitted reproducers minimal. *)
let prune_arrays (p : Ir.program) stripes =
  let used = Hashtbl.create 8 in
  List.iter
    (fun n -> List.iter (fun a -> Hashtbl.replace used a true) (Ir.arrays_referenced n))
    p.Ir.nests;
  let arrays = List.filter (fun (a : Ir.array_decl) -> Hashtbl.mem used a.Ir.name) p.Ir.arrays in
  let program = Ir.program arrays p.Ir.nests in
  let stripes = List.filter (fun (name, _) -> Hashtbl.mem used name) stripes in
  (program, stripes)

let with_program (s : Scenario.t) nests =
  let program, stripes =
    prune_arrays (Ir.program s.Scenario.program.Ir.arrays nests) s.Scenario.stripes
  in
  { s with Scenario.token = None; program; stripes }

(* Drop list elements one at a time while the predicate keeps holding;
   each successful drop restarts the scan so later elements are tried
   against the smaller list. *)
let drop_each ~attempts ~kept ~min_len xs ~rebuild ~check =
  let rec go xs i =
    if List.length xs <= min_len || i >= List.length xs then xs
    else begin
      let candidate = List.filteri (fun j _ -> j <> i) xs in
      incr attempts;
      if check (rebuild candidate) then begin
        incr kept;
        go candidate 0
      end
      else go xs (i + 1)
    end
  in
  go xs 0

let shrink_program ~attempts ~kept ~check (s : Scenario.t) =
  (* Whole nests first. *)
  let nests =
    drop_each ~attempts ~kept ~min_len:1 s.Scenario.program.Ir.nests
      ~rebuild:(with_program s)
      ~check
  in
  let s = if nests == s.Scenario.program.Ir.nests then s else with_program s nests in
  (* Then statements inside each surviving nest. *)
  let shrink_nest i (n : Ir.nest) =
    let body =
      drop_each ~attempts ~kept ~min_len:1 n.Ir.body
        ~rebuild:(fun body ->
          let nests =
            List.mapi
              (fun j m -> if j = i then { n with Ir.body } else m)
              s.Scenario.program.Ir.nests
          in
          with_program s nests)
        ~check
    in
    if body == n.Ir.body then n else { n with Ir.body }
  in
  let nests' = List.mapi shrink_nest s.Scenario.program.Ir.nests in
  if List.for_all2 (fun (a : Ir.nest) b -> a == b) s.Scenario.program.Ir.nests nests' then s
  else with_program s nests'

let try_candidate ~attempts ~kept ~check s candidate =
  if candidate = s then s
  else begin
    incr attempts;
    if check candidate then begin
      incr kept;
      candidate
    end
    else s
  end

let shrink_faults ~attempts ~kept ~check (s : Scenario.t) =
  match s.Scenario.faults with
  | None -> s
  | Some _ ->
      let try_c = try_candidate ~attempts ~kept ~check in
      (* No faults at all is the biggest single step. *)
      let s = try_c s { s with Scenario.token = None; faults = None } in
      (match s.Scenario.faults with
      | None -> s
      | Some _ ->
          (* Halve the class list while it shrinks. *)
          let rec halve_classes s (f : Fault_model.t) =
            let n = List.length f.Fault_model.classes in
            if n <= 1 then s
            else begin
              let keep = List.filteri (fun i _ -> i < (n + 1) / 2) f.Fault_model.classes in
              let s' =
                try_c s
                  {
                    s with
                    Scenario.token = None;
                    faults = Some { f with Fault_model.classes = keep };
                  }
              in
              match s'.Scenario.faults with
              | Some f' when s' != s -> halve_classes s' f'
              | _ -> s
            end
          in
          let s = match s.Scenario.faults with Some f -> halve_classes s f | None -> s in
          (* Halve rate, spikes and stuck windows (one step each). *)
          let halve_field s mk =
            match s.Scenario.faults with
            | None -> s
            | Some f -> try_c s { s with Scenario.token = None; faults = Some (mk f) }
          in
          let s = halve_field s (fun f -> { f with Fault_model.rate = f.Fault_model.rate /. 2.0 }) in
          let s =
            halve_field s (fun f -> { f with Fault_model.spike_ms = f.Fault_model.spike_ms /. 2.0 })
          in
          halve_field s (fun f ->
              { f with Fault_model.stuck_window_ms = f.Fault_model.stuck_window_ms /. 2.0 }))

let shrink_knobs ~attempts ~kept ~check (s : Scenario.t) =
  let try_c = try_candidate ~attempts ~kept ~check in
  let s =
    if s.Scenario.procs > 1 then
      try_c s
        {
          s with
          Scenario.token = None;
          procs = 1;
          mode =
            (if s.Scenario.mode = Pipeline.Reuse_multi then Pipeline.Reuse_single
             else s.Scenario.mode);
        }
    else s
  in
  let s =
    if s.Scenario.mode <> Pipeline.Original then
      try_c s { s with Scenario.token = None; mode = Pipeline.Original }
    else s
  in
  let s =
    if s.Scenario.cluster <> Cluster.First_ref then
      try_c s { s with Scenario.token = None; cluster = Cluster.First_ref }
    else s
  in
  let s =
    if s.Scenario.scrub_ms > 0.0 then
      try_c s { s with Scenario.token = None; scrub_ms = 0.0 }
    else s
  in
  let s =
    match s.Scenario.spare with
    | Some _ -> try_c s { s with Scenario.token = None; spare = None }
    | None -> s
  in
  let s =
    match s.Scenario.deadline_ms with
    | Some _ -> try_c s { s with Scenario.token = None; deadline_ms = None }
    | None -> s
  in
  if s.Scenario.policy <> "none" then
    try_c s { s with Scenario.token = None; policy = "none" }
  else s

let minimize ?sabotage (s : Scenario.t) =
  Prof.span "chaos.shrink" @@ fun () ->
  let attempts = ref 0 and kept = ref 0 in
  let check = still_fails ?sabotage in
  let s = shrink_program ~attempts ~kept ~check s in
  let s = shrink_faults ~attempts ~kept ~check s in
  let s = shrink_knobs ~attempts ~kept ~check s in
  (s, { attempts = !attempts; kept = !kept })
