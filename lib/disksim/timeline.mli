(** Per-disk power-state timelines recorded during simulation, with an
    ASCII Gantt renderer — makes the clustering visible: under the
    restructured schedule each disk's busy segments coalesce and the
    others' idle/standby runs stretch. *)

type state =
  | Busy
  | Idle of int  (** powered-up idle at an RPM *)
  | Standby
  | Transition

type segment = {
  start_ms : float;
  stop_ms : float;
  state : state;
  energy_j : float;
      (** energy charged to this span.  The engine records every joule
          it accounts against exactly one segment, so per-disk segment
          energies sum to the per-disk energy total — the conservation
          invariant the fault-injection tests lean on.  Lump charges
          with no duration (a speed change overlapped with servicing)
          appear as zero-length segments. *)
}

type t = segment list array
(** One (chronologically ordered) segment list per disk. *)

val char_of_state : Disk_model.t -> state -> char
(** ['#'] busy, ['~'] transition, ['_'] standby, and for idle a digit:
    the RPM level index (['4'] = full speed for the Ultrastar's five
    levels, ['0'] = slowest). *)

val render : ?width:int -> model:Disk_model.t -> until_ms:float -> t -> string
(** An ASCII chart, one row per disk, [width] characters across the
    [0, until_ms] span (default 96).  Each cell shows the state occupying
    the largest share of its time slot. *)

val state_time_ms : t -> disk:int -> state -> float
(** Total time a disk spent in a state (idle states match on any RPM
    when queried with [Idle (-1)]). *)

val state_energy_j : t -> disk:int -> state -> float
(** Total energy charged to a state, with the same RPM wildcard. *)

val total_energy_j : t -> disk:int -> float
(** Sum of all segment energies of a disk; equals the disk's
    [energy_j] statistic when the timeline was recorded. *)
