type state = Busy | Idle of int | Standby | Transition
type segment = { start_ms : float; stop_ms : float; state : state; energy_j : float }
type t = segment list array

let char_of_state model = function
  | Busy -> '#'
  | Transition -> '~'
  | Standby -> '_'
  | Idle rpm ->
      let level =
        (rpm - model.Disk_model.rpm_min) / model.Disk_model.rpm_step
      in
      Char.chr (Char.code '0' + max 0 (min 9 level))

let render ?(width = 96) ~model ~until_ms t =
  if until_ms <= 0.0 then ""
  else begin
    let buf = Buffer.create ((width + 16) * Array.length t) in
    let slot_ms = until_ms /. float_of_int width in
    Array.iteri
      (fun d segs ->
        Buffer.add_string buf (Printf.sprintf "d%-2d |" d);
        let segs = Array.of_list segs in
        let cursor = ref 0 in
        for w = 0 to width - 1 do
          let slot_start = float_of_int w *. slot_ms in
          let slot_stop = slot_start +. slot_ms in
          (* Accumulate occupancy per state over the slot. *)
          let best_state = ref None and best_time = ref 0.0 in
          while
            !cursor < Array.length segs && segs.(!cursor).stop_ms <= slot_start
          do
            incr cursor
          done;
          let k = ref !cursor in
          while !k < Array.length segs && segs.(!k).start_ms < slot_stop do
            let s = segs.(!k) in
            let overlap = Float.min s.stop_ms slot_stop -. Float.max s.start_ms slot_start in
            if overlap > !best_time then begin
              best_time := overlap;
              best_state := Some s.state
            end;
            incr k
          done;
          Buffer.add_char buf
            (match !best_state with
            | Some s -> char_of_state model s
            | None -> ' ')
        done;
        Buffer.add_string buf "|\n")
      t;
    Buffer.add_string buf
      (Printf.sprintf
         "     0%*s  (#busy ~transition _standby digits: idle RPM level)\n"
         (width - 1)
         (Printf.sprintf "%.0fs" (until_ms /. 1000.)));
    Buffer.contents buf
  end

let matches_state query actual =
  match (query, actual) with Idle -1, Idle _ -> true | a, b -> a = b

let state_time_ms t ~disk state =
  List.fold_left
    (fun acc (s : segment) ->
      if matches_state state s.state then acc +. (s.stop_ms -. s.start_ms) else acc)
    0.0 t.(disk)

let state_energy_j t ~disk state =
  List.fold_left
    (fun acc (s : segment) -> if matches_state state s.state then acc +. s.energy_j else acc)
    0.0 t.(disk)

let total_energy_j t ~disk =
  List.fold_left (fun acc (s : segment) -> acc +. s.energy_j) 0.0 t.(disk)
