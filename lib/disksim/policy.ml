type tpm_config = { idle_threshold_s : float; proactive : bool }

type drpm_config = {
  window_size : int;
  downshift_idle_ms : float;
  tolerance : float;
  proactive : bool;
  min_rpm : int option;
}

type t =
  | No_pm
  | Tpm of tpm_config
  | Drpm of drpm_config
  | Adaptive of Dp_online.Online.config

let tpm ?(idle_threshold_s = Disk_model.ultrastar_36z15.Disk_model.tpm_breakeven_s)
    ?(proactive = false) () =
  Tpm { idle_threshold_s; proactive }

let drpm ?(window_size = 100) ?(downshift_idle_ms = 1_000.0) ?(tolerance = 1.15)
    ?(proactive = false) ?min_rpm () =
  Drpm { window_size; downshift_idle_ms; tolerance; proactive; min_rpm }

let adaptive ?(config = Dp_online.Online.default) () = Adaptive config
let default_tpm = tpm ()
let default_drpm = drpm ()
let default_adaptive = adaptive ()

let name = function
  | No_pm -> "none"
  | Tpm _ -> "TPM"
  | Drpm _ -> "DRPM"
  | Adaptive _ -> "Online"

let describe = function
  | No_pm -> "none (always at full speed)"
  | Adaptive c -> Dp_online.Online.describe c
  | Tpm c ->
      Printf.sprintf "TPM%s (idle threshold %.1f s)"
        (if c.proactive then " proactive" else "")
        c.idle_threshold_s
  | Drpm c ->
      Printf.sprintf "DRPM%s (window %d, downshift %.0f ms, tolerance %.2f%s)"
        (if c.proactive then " proactive" else "")
        c.window_size c.downshift_idle_ms c.tolerance
        (match c.min_rpm with Some r -> Printf.sprintf ", min rpm %d" r | None -> "")

type retry_config = { max_attempts : int; backoff_base_ms : float; backoff_cap_ms : float }

let default_retry = { max_attempts = 5; backoff_base_ms = 5.0; backoff_cap_ms = 80.0 }

let retry ?(max_attempts = default_retry.max_attempts)
    ?(backoff_base_ms = default_retry.backoff_base_ms)
    ?(backoff_cap_ms = default_retry.backoff_cap_ms) () =
  if max_attempts < 1 then invalid_arg "Policy.retry: max_attempts must be >= 1";
  { max_attempts; backoff_base_ms; backoff_cap_ms }

let backoff_ms rc ~attempt =
  if attempt <= 1 then Float.min rc.backoff_base_ms rc.backoff_cap_ms
  else
    Float.min rc.backoff_cap_ms
      (rc.backoff_base_ms *. Float.of_int (1 lsl min 30 (attempt - 1)))

let reactive_fallback = function
  | No_pm -> No_pm
  | Tpm c -> Tpm { c with proactive = false }
  | Drpm c -> Drpm { c with proactive = false }
  (* The online controller is already reactive: it only ever acts on
     observed arrivals, so it is its own fallback. *)
  | Adaptive _ as p -> p
