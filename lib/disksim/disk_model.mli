(** Physical disk model: the IBM Ultrastar 36Z15 figures of Table 1, plus
    the DRPM multi-speed extension of Gurumurthi et al. (ISCA'03), whose
    power at a rotation speed is estimated quadratically in RPM (the
    paper: "As to the power model of DRPM disks, we obtained these values
    using quadratic estimation described in [13]"). *)

type t = {
  name : string;
  capacity_gb : float;
  cache_mb : int;
  rpm_max : int;
  rpm_min : int;
  rpm_step : int;
  seek_ms : float;  (** average seek *)
  rotation_ms : float;  (** average rotational latency at [rpm_max] *)
  transfer_mb_s : float;  (** internal transfer rate at [rpm_max] *)
  power_active_w : float;
  power_idle_w : float;
  power_standby_w : float;
  spin_down_j : float;
  spin_down_s : float;
  spin_up_j : float;
  spin_up_s : float;
  tpm_breakeven_s : float;
  rated_start_stop_cycles : int;
      (** the manufacturer's start-stop budget: how many spin-down/up
          cycles the drive is rated for over its life (Ultrastar class:
          50,000).  Aggressive TPM cycling spends this budget — the wear
          column of the experiments matrix charges against it. *)
  spare_blocks : int;
      (** spare-pool size: how many grown bad sectors the drive can
          remap before the pool is exhausted and the slot must be
          retired (see {!Dp_repair.Repair}) *)
  remap_penalty_ms : float;
      (** detour cost of accessing an already-remapped block: the head
          diverts to the spare area and back (about one average seek
          plus one rotational latency — the arXiv 1908.01167 shape) *)
}

val ultrastar_36z15 : t
(** Table 1 defaults. *)

val rpm_levels : t -> int list
(** Ascending RPM levels, [rpm_min] to [rpm_max] by [rpm_step]
    (3,000 .. 15,000 by 3,000 for the Ultrastar). *)

val level_count : t -> int
val rpm_of_level : t -> int -> int
(** Level 0 is [rpm_min]; the top level is [rpm_max].
    @raise Invalid_argument out of range. *)

val top_level : t -> int

val seek_ms_of_distance : t -> int -> float
(** Seek time as a function of the byte distance from the previous
    request's end: 0 for a sequential access, 40% of the average seek
    for a short hop (within 32 MB — a few cylinders), the full average
    seek beyond. *)

val service_ms : ?seek_distance:int -> t -> rpm:int -> bytes:int -> float
(** Service time of one request at a rotation speed: rotational latency
    and transfer time scale inversely with RPM, plus
    [seek_ms_of_distance] for the given distance (default: a full
    average seek). *)

val remap_ms : t -> rpm:int -> block_bytes:int -> float
(** Cost of remapping one grown bad sector on first touch: a full seek
    to the spare area, the rotational wait and the relocated block's
    write (scaled by the current RPM), plus the seek back. *)

val idle_power_w : t -> rpm:int -> float
(** Quadratic interpolation between standby power (RPM -> 0) and the
    full-speed idle power. *)

val active_power_w : t -> rpm:int -> float
(** Idle power at that speed plus the (quadratically scaled)
    active-minus-idle overhead. *)

val transition_s : t -> rpm_from:int -> rpm_to:int -> float
(** Time of a speed change, scaled linearly from the full spin-up (going
    up) or spin-down (going down) figures by the RPM distance.  Used for
    TPM's full stop/start cycles. *)

val transition_j : t -> rpm_from:int -> rpm_to:int -> float

val drpm_level_transition_s : t -> float
(** Duration of a one-level dynamic speed change (0.4 s): DRPM drives are
    engineered for low-overhead transitions between adjacent RPM levels
    (Gurumurthi et al.), far quicker than a full spin-up from rest. *)

val drpm_transition_j : t -> rpm_from:int -> rpm_to:int -> float
(** Energy of a dynamic speed change: the transition time at the active
    power of the faster of the two levels, per level crossed. *)

val pp : Format.formatter -> t -> unit
