module Request = Dp_trace.Request

(** Trace-driven multi-disk simulation engine.

    Requests are served per I/O node in FIFO arrival order (arrival times
    are fixed by the trace — open-loop, as in the paper's setup).  For
    every inter-request gap the active policy decides the node's power
    trajectory (stay idle, spin down, or shift rotation speed); energy is
    integrated over the full timeline of every node up to the global
    makespan, so savings on one node are never hidden by activity on
    another.

    A run can additionally carry a seeded fault injector (see
    {!Dp_faults}): spin-up failures, transient media errors, latency
    spikes and stuck-RPM windows then perturb the timeline, and the
    policies degrade gracefully — bounded retries with exponential
    backoff, proactive directives falling back to their reactive twins —
    while every joule and millisecond stays accounted. *)

type disk_stats = {
  disk : int;
  requests : int;
  energy_j : float;
  busy_ms : float;  (** time servicing requests *)
  idle_ms : float;  (** powered-up idle (at whatever speed) *)
  standby_ms : float;
  transition_ms : float;  (** spin-up/down / speed-change time *)
  spin_downs : int;
  spin_ups : int;
  speed_changes : int;
  spin_up_retries : int;  (** failed spin-up attempts (injected faults) *)
  media_retries : int;  (** request re-services after media errors *)
  latency_spikes : int;  (** servo recalibration stalls *)
  degraded_ms : float;
      (** time attributable to injected faults: failed spin-up attempts,
          media-retry backoff and re-service, spike stalls, service at a
          fault-pinned (stuck-RPM) reduced speed, and every
          repair-domain charge (remap writes, detour penalties,
          reconstruction reads, failover reads, rebuild slices) *)
  remaps : int;  (** bad blocks remapped to spares (foreground + scrub) *)
  remap_penalty_hits : int;  (** accesses that paid the remapped-block detour *)
  scrub_chunks : int;  (** background verification chunks read *)
  scrub_found : int;  (** bad blocks found (and remapped) by the scrubber *)
  reconstructions : int;
      (** reads this disk served on behalf of its failed mirror *)
  rebuild_chunks : int;  (** rebuild slices copied onto the hot spare *)
  failovers : int;  (** deadline-abandoned requests failed over to the mirror *)
  disk_failures : int;  (** times this slot was retired onto a hot spare *)
  rebuilds_completed : int;
  response_ms_total : float;
  response_ms_max : float;
  last_completion_ms : float;
}

type result = {
  policy : string;
  per_disk : disk_stats array;
  energy_j : float;
  io_time_ms : float;  (** sum of request response times, the paper's
                           "disk I/O time" performance metric *)
  makespan_ms : float;
  timeline : Timeline.t option;  (** present when requested *)
}

val simulate :
  ?model:Disk_model.t ->
  ?record_timeline:bool ->
  ?obs:Dp_obs.Sink.t ->
  ?hints:Dp_trace.Hint.t list ->
  ?faults:Dp_faults.Fault_model.t ->
  ?retry:Policy.retry_config ->
  ?repair:Dp_repair.Repair.config ->
  ?deadline_ms:float ->
  ?shards:int ->
  disks:int ->
  Policy.t ->
  Request.t list ->
  result
(** Simulate a trace on [disks] I/O nodes under a policy.  Requests whose
    [disk] is outside [0, disks) raise [Invalid_argument].  The request
    list need not be sorted.  [record_timeline] (default false) keeps the
    per-disk power-state segments for {!Timeline.render}.

    [shards] (default 1) caps how many domains the engine may fan the
    run across.  Each segment is split into the connected components of
    its processor–disk interaction graph (requests as edges, closed
    under mirror pairing when the repair domain is armed); components
    share no mutable state, run in parallel, and rejoin at the
    segment's fork-join barrier — the epoch boundary.  The result is
    {e byte-identical} to [shards = 1] for every shard count: per-disk
    stats, timelines and repair digests are reproduced exactly, and
    observability events are re-merged into the serial emission order
    (each parallel step's events are tagged with its issue instant and
    processor, the key the serial scheduler executes in).  A trace
    whose segments form a single component — every processor touching
    every disk — simply runs serially whatever [shards] says.

    [obs] (default {!Dp_obs.Sink.null}) receives typed observability
    events as the run unfolds: every power-state span (with the exact
    milliseconds charged to the per-state statistic, so summing spans
    reproduces {!disk_stats} bit for bit), every request service, every
    consumed compiler hint, every injected-fault perturbation and every
    policy decision.  With the null sink no event is ever constructed —
    the hot loop stays allocation-free and the results are byte-identical
    to a run without the parameter.

    [hints] is the compiler's directive stream (see {!Dp_trace.Hint}).
    With a non-empty stream, a [proactive] TPM policy spins a disk down
    exactly when a [Spin_down] directive says its cluster ended and hides
    the spin-up latency per the matching [Pre_spin_up] lead (no directive
    — reactive stall); a [proactive] DRPM policy dips to each gap's
    [Set_rpm] target.  Directives that no longer fit their actual gap
    (closed-loop drift) degrade to plain idling, never to a stall.  With
    an empty stream, proactive policies keep their omniscient built-in
    planning; reactive policies ignore hints entirely.

    [faults] (default none) seeds a deterministic fault injector: the
    same configuration reproduces the same perturbed run bit for bit,
    and a configuration with rate [0.0] reproduces the fault-free run
    byte for byte.  [retry] (default {!Policy.default_retry}) bounds
    how persistently faulted operations are re-attempted.

    [repair] configures the persistent-failure domain (see
    {!Dp_repair.Repair}): grown bad sectors remapped to a per-disk spare
    pool, an idle-window scrubber, whole-disk failure past a defect
    threshold with mirror reconstruction and hot-spare rebuild.  It is
    armed implicitly (with {!Dp_repair.Repair.default} — scrub off) when
    [faults] enables the media-decay class or when [deadline_ms] is set;
    a rate-0 decay run stays byte-identical to a clean one.

    [deadline_ms] serves every request under a deadline: a media-error
    retry storm that has blown it is abandoned and the read fails over
    to the disk's mirror, and responses past the deadline are reported
    as {!Dp_obs.Event.Deadline} misses. *)

val wear_fraction : Disk_model.t -> disk_stats -> float
(** Start-stop wear consumed by a run: [spin_downs] over the drive's
    {!Disk_model.rated_start_stop_cycles}.  An aggressive spin-down
    policy trading energy for wear shows up here. *)

val pp_result : Format.formatter -> result -> unit
val pp_disk_stats : Format.formatter -> disk_stats -> unit

val pp_reliability : ?model:Disk_model.t -> Format.formatter -> result -> unit
(** The one-line wear/retry/degraded-time summary of a run: worst-disk
    {!wear_fraction} plus retry/spike counts and degraded time summed
    across disks (the line both CLIs print after a simulation). *)

(** {1 Conservation accessors}

    The structural identities every simulation result satisfies,
    factored out so external checkers (tests, the chaos oracle) probe
    the engine's own definitions. *)

val accounted_ms : disk_stats -> float
(** [busy_ms + idle_ms + standby_ms + transition_ms] — the four power
    states partition a disk's timeline, so with a recorded timeline
    this equals the sum of its segment spans. *)

val check_conservation : ?eps:float -> result -> (unit, string) Stdlib.result
(** Verify the conservation identities of a result: per-disk energies
    fold to the array total, and — when the run recorded a timeline —
    each disk's segment energies sum to its [energy_j], its segment
    spans sum to {!accounted_ms}, and its segments are chronological and
    gap-free.  [eps] (default [1e-6]) is the relative tolerance.
    [Error] carries every violated identity, semicolon-separated. *)
